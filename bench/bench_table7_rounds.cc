// Reproduces Table 7: the number of while-loop rounds one-k-swap and
// two-k-swap execute per dataset. Expected shape (paper): 2-9 rounds,
// not proportional to graph size, and two-k often needs FEWER rounds than
// one-k because each of its rounds performs more swaps.
#include <cstdio>

#include "bench_common.h"

namespace semis {
namespace bench {
namespace {

int Main() {
  PrintBanner("Table 7: number of rounds in the two swap algorithms",
              "a round = pre-swap scan + swap pass + post-swap scan");

  TablePrinter table({10, 12, 12, 14, 14});
  table.PrintRow(
      {"dataset", "one-k", "two-k", "1k new IS", "2k new IS"});
  table.PrintRule();
  uint64_t twok_fewer_or_equal = 0;
  for (const DatasetSpec& spec : PaperDatasets()) {
    SuiteSelection sel;
    sel.dynamic_update = false;
    sel.stxxl = false;
    sel.baseline_chain = false;
    sel.upper_bound = false;
    SuiteResult s;
    Status st = RunSuite(spec, sel, &s);
    if (!st.ok()) {
      std::fprintf(stderr, "suite failed for %s: %s\n", spec.name.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    uint64_t one_gain = s.one_k_greedy.set_size - s.greedy.set_size;
    uint64_t two_gain = s.two_k_greedy.set_size - s.greedy.set_size;
    table.PrintRow({spec.name, std::to_string(s.one_k_greedy.rounds),
                    std::to_string(s.two_k_greedy.rounds),
                    WithCommas(one_gain), WithCommas(two_gain)});
    if (s.two_k_greedy.rounds <= s.one_k_greedy.rounds) twok_fewer_or_equal++;
  }
  std::printf(
      "\nTWO-K needed <= rounds of ONE-K on %llu/10 datasets (the paper's\n"
      "\"surprising finding\": two-k does more per round, so it converges\n"
      "in fewer rounds despite handling more swap cases).\n",
      static_cast<unsigned long long>(twok_fewer_or_equal));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace semis

int main() { return semis::bench::Main(); }
