// Ablation bench for the design choices called out in DESIGN.md:
//   A. degree-sort preprocessing on/off (GREEDY vs BASELINE quality),
//   B. the ISN^-1 counting trick vs an explicit inverse index (time and
//      memory at identical results),
//   C. early stopping after r rounds vs running to convergence,
//   D. external-sorter fan-in (merge passes vs I/O traffic).
#include <cstdio>

#include "bench_common.h"
#include "core/greedy.h"
#include "core/one_k_swap.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "io/scratch.h"
#include "util/memory_tracker.h"
#include "util/timer.h"

namespace semis {
namespace bench {
namespace {

int Main() {
  const uint64_t n = SweepVertexCount();
  PrintBanner("Ablations: degree sort, counting trick, early stop, fan-in",
              "P(alpha, 2.0) graph of " + WithCommas(n) + " vertices");

  ScratchDir scratch;
  if (!ScratchDir::Create("semis-abl", &scratch).ok()) return 1;
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(n, 2.0), 91);
  std::string unsorted = scratch.NewFilePath("unsorted");
  Status s = WriteGraphToAdjacencyFile(g, unsorted);
  std::string sorted = scratch.NewFilePath("sorted");
  if (s.ok()) s = WriteDegreeSortedFileInMemoryOrder(g, sorted);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("\n-- A: degree-sort preprocessing --\n");
  AlgoResult baseline, greedy;
  s = RunGreedy(unsorted, {}, &baseline);
  if (s.ok()) s = RunGreedy(sorted, {}, &greedy);
  if (!s.ok()) return 1;
  std::printf("baseline (unsorted scan): %s vertices\n",
              WithCommas(baseline.set_size).c_str());
  std::printf("greedy   (sorted scan)  : %s vertices  (+%.2f%%)\n",
              WithCommas(greedy.set_size).c_str(),
              100.0 * (static_cast<double>(greedy.set_size) /
                           static_cast<double>(baseline.set_size) -
                       1.0));

  std::printf("\n-- B: ISN^-1 counting trick (Section 5.4) --\n");
  for (bool trick : {true, false}) {
    OneKSwapOptions opts;
    opts.use_counting_trick = trick;
    AlgoResult res;
    s = RunOneKSwap(sorted, greedy.in_set, opts, &res);
    if (!s.ok()) return 1;
    std::printf("counting_trick=%-5s  |IS|=%s  time=%s  peak-mem=%s\n",
                trick ? "true" : "false", WithCommas(res.set_size).c_str(),
                FormatSeconds(res.seconds).c_str(),
                MemoryTracker::FormatBytes(res.peak_memory_bytes).c_str());
  }
  std::printf("(identical sizes; the trick removes the inverse-index "
              "memory)\n");

  std::printf("\n-- C: early stop after r rounds --\n");
  AlgoResult full;
  s = RunOneKSwap(sorted, greedy.in_set, {}, &full);
  if (!s.ok()) return 1;
  for (uint32_t r = 1; r <= 3; ++r) {
    OneKSwapOptions opts;
    opts.max_rounds = r;
    AlgoResult res;
    s = RunOneKSwap(sorted, greedy.in_set, opts, &res);
    if (!s.ok()) return 1;
    double gain_share =
        full.set_size == greedy.set_size
            ? 1.0
            : static_cast<double>(res.set_size - greedy.set_size) /
                  static_cast<double>(full.set_size - greedy.set_size);
    std::printf("rounds=%u  |IS|=%s  (%.1f%% of converged gain, %s)\n", r,
                WithCommas(res.set_size).c_str(), 100.0 * gain_share,
                FormatSeconds(res.seconds).c_str());
  }
  std::printf("converged: rounds=%llu  |IS|=%s  (%s)\n",
              static_cast<unsigned long long>(full.rounds),
              WithCommas(full.set_size).c_str(),
              FormatSeconds(full.seconds).c_str());

  std::printf("\n-- D: external sorter fan-in --\n");
  for (size_t fan_in : {2, 4, 16}) {
    DegreeSortOptions opts;
    opts.memory_budget_bytes = 1 << 20;  // force multiple runs
    opts.fan_in = fan_in;
    IoStats stats;
    opts.stats = &stats;
    std::string out = scratch.NewFilePath("fan");
    WallTimer timer;
    s = BuildDegreeSortedAdjacencyFile(unsorted, out, opts);
    if (!s.ok()) return 1;
    std::printf("fan_in=%-3zu  passes=%llu  bytes-moved=%s  time=%s\n",
                fan_in, static_cast<unsigned long long>(stats.sort_passes),
                MemoryTracker::FormatBytes(stats.bytes_read +
                                           stats.bytes_written)
                    .c_str(),
                FormatSeconds(timer.ElapsedSeconds()).c_str());
    SEMIS_BENCH_CHECK_OK(RemoveFileIfExists(out));
  }
  std::printf("(smaller fan-in => more merge passes => more I/O: the\n"
              "log_{M/B} term of the paper's Table 1 cost)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace semis

int main() { return semis::bench::Main(); }
