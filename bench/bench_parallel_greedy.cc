// Thread-scaling benchmark of the shard-pipelined GREEDY executor
// (ISSUE 3 / ROADMAP "run GREEDY itself over shards"): Algorithm 1 over a
// sharded PLRG, swept over decoder thread counts.
//
// Two properties are measured/checked:
//   * correctness: every thread count must produce an independent set
//     byte-identical to sequential RunGreedy on the monolithic file (the
//     executor's determinism contract); the bench aborts the timing loop
//     if it does not;
//   * scaling: items/sec (directed edges per wall second) should grow
//     with threads on multi-core hardware, because shard decode I/O
//     overlaps the commit scan. The commit stage is inherently
//     sequential, so the ceiling is decode-bound, not linear; on
//     single-core runners the sweep degenerates to overhead measurement,
//     which is reported, not hidden.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <cstdio>
#include <thread>

#include "core/greedy.h"
#include "core/parallel_greedy.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "graph/graph_io.h"
#include "graph/sharded_adjacency_file.h"
#include "io/scratch.h"
#include "util/bit_vector.h"

namespace semis {
namespace {

// Vertex count knob: SEMIS_PARALLEL_VERTICES (default 250000, which at
// avg degree ~8 yields >= 1M directed edges).
uint64_t BenchVertexCount() {
  const char* env = std::getenv("SEMIS_PARALLEL_VERTICES");
  if (env != nullptr) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 250000;
}

constexpr uint32_t kNumShards = 16;

struct ParallelGreedyEnv {
  ParallelGreedyEnv() {
    SEMIS_BENCH_CHECK_OK(ScratchDir::Create("semis-pgreedybench", &scratch));
    Graph graph =
        GeneratePlrg(PlrgSpec::ForVerticesAndAvgDegree(BenchVertexCount(), 8.0),
                     4321);
    directed_edges = graph.NumDirectedEdges();
    std::string mono = scratch.NewFilePath("graph.adj");
    SEMIS_BENCH_CHECK_OK(WriteGraphToAdjacencyFile(graph, mono));
    sorted_path = scratch.NewFilePath("sorted.sadj");
    SEMIS_BENCH_CHECK_OK(BuildDegreeSortedAdjacencyFile(mono, sorted_path,
                                         DegreeSortOptions{}));
    manifest = scratch.NewFilePath("sharded.sadjs");
    SEMIS_BENCH_CHECK_OK(ShardAdjacencyFile(sorted_path, manifest, kNumShards));
    std::printf(
        "# bench_parallel_greedy: %llu vertices, %llu directed edges, "
        "%u shards, %u hardware threads\n",
        static_cast<unsigned long long>(graph.NumVertices()),
        static_cast<unsigned long long>(directed_edges), kNumShards,
        std::thread::hardware_concurrency());
    // Reference result: the monolithic sequential scan.
    AlgoResult ref;
    SEMIS_BENCH_CHECK_OK(RunGreedy(sorted_path, GreedyOptions{}, &ref));
    reference_set = ref.in_set;
    reference_size = ref.set_size;
  }

  ScratchDir scratch;
  std::string manifest;
  std::string sorted_path;
  uint64_t directed_edges = 0;
  BitVector reference_set;
  uint64_t reference_size = 0;
};

ParallelGreedyEnv& Env() {
  static ParallelGreedyEnv env;
  return env;
}

bool SameSet(const BitVector& a, const BitVector& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.Test(i) != b.Test(i)) return false;
  }
  return true;
}

void BM_ParallelGreedy(benchmark::State& state) {
  ParallelGreedyEnv& env = Env();
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    AlgoResult res;
    ParallelGreedyOptions opts;
    opts.pipeline.num_threads = threads;
    Status s = RunParallelGreedy(env.manifest, opts, &res);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    if (!SameSet(res.in_set, env.reference_set)) {
      state.SkipWithError("result differs from sequential RunGreedy");
      break;
    }
    benchmark::DoNotOptimize(res.set_size);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.directed_edges));
  state.counters["threads"] = threads;
  state.counters["set_size"] = static_cast<double>(env.reference_size);
}
BENCHMARK(BM_ParallelGreedy)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Baseline: the monolithic sequential greedy scan on the same (unsharded)
// input, for the "pipelined executor vs paper implementation" column.
void BM_SequentialGreedy(benchmark::State& state) {
  ParallelGreedyEnv& env = Env();
  for (auto _ : state) {
    AlgoResult res;
    Status s = RunGreedy(env.sorted_path, GreedyOptions{}, &res);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    if (!SameSet(res.in_set, env.reference_set)) {
      state.SkipWithError("sequential result unstable across runs");
      break;
    }
    benchmark::DoNotOptimize(res.set_size);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.directed_edges));
}
BENCHMARK(BM_SequentialGreedy)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace semis

BENCHMARK_MAIN();
