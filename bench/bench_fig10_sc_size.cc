// Reproduces Figure 10: the peak number of vertices held in TWO-K-SWAP's
// SC structures relative to |V|, varying beta. Expected shape (paper):
// a flat curve around |SC| ~ 0.13 |V|, comfortably under Lemma 6's
// |V| - e^alpha bound.
#include <cstdio>

#include "bench_common.h"
#include "core/greedy.h"
#include "core/two_k_swap.h"
#include "gen/plrg.h"
#include "io/scratch.h"
#include "theory/plrg_model.h"
#include "theory/swap_estimate.h"

namespace semis {
namespace bench {
namespace {

int Main() {
  const uint64_t n = SweepVertexCount();
  PrintBanner("Figure 10: SC size of two-k-swap vs beta",
              "peak distinct vertices registered in SC during any pre-swap "
              "scan, on P(alpha,beta) graphs of " + WithCommas(n) +
              " vertices");

  TablePrinter table({6, 12, 12, 10, 16});
  table.PrintRow({"beta", "|SC| peak", "|V|", "|SC|/|V|", "Lemma6 bound/|V|"});
  table.PrintRule();
  ScratchDir scratch;
  Status s = ScratchDir::Create("semis-fig10", &scratch);
  if (!s.ok()) return 1;
  for (double beta : SweepBetas()) {
    Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(n, beta),
                           4000 + static_cast<uint64_t>(beta * 10));
    std::string sorted = scratch.NewFilePath("sorted");
    s = WriteDegreeSortedFileInMemoryOrder(g, sorted);
    if (!s.ok()) break;
    AlgoResult greedy, two_k;
    s = RunGreedy(sorted, {}, &greedy);
    if (!s.ok()) break;
    s = RunTwoKSwap(sorted, greedy.in_set, {}, &two_k);
    if (!s.ok()) break;
    PlrgModel model = PlrgModel::ForVertexCount(n, beta);
    char row[5][32];
    std::snprintf(row[0], 32, "%.1f", beta);
    std::snprintf(row[1], 32, "%s",
                  WithCommas(two_k.sc_peak_vertices).c_str());
    std::snprintf(row[2], 32, "%s", WithCommas(g.NumVertices()).c_str());
    std::snprintf(row[3], 32, "%.3f",
                  static_cast<double>(two_k.sc_peak_vertices) /
                      static_cast<double>(g.NumVertices()));
    std::snprintf(row[4], 32, "%.3f",
                  ScVertexBound(model) / model.ExpectedVertices());
    table.PrintRow({row[0], row[1], row[2], row[3], row[4]});
    SEMIS_BENCH_CHECK_OK(RemoveFileIfExists(sorted));
  }
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "\nExpected shape: the |SC|/|V| column is flat in beta and well under\n"
      "the Lemma 6 bound. The paper reports ~0.13; our SC registers only\n"
      "anchors and pair members, so the flat band sits a bit lower\n"
      "(~0.05-0.08) -- same invariant, tighter storage.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace semis

int main() { return semis::bench::Main(); }
