// Thread-scaling benchmark of the min-id rounds engine (ISSUE 9 /
// ROADMAP "second solve engine"): deterministic Luby-style rounds over a
// sharded PLRG, swept over thread counts.
//
// Three properties are measured/checked:
//   * correctness: every timed run must reproduce the sequential
//     reference loop bit for bit (the engine's determinism-by-
//     construction claim); the bench aborts the timing loop if not;
//   * scaling: rounds/sec and edge throughput should grow with threads,
//     because every pass fans the shards out over the pool. Two full
//     passes per round put the ceiling at roughly half the greedy
//     executor's single-pass decode rate;
//   * quality: min-id ignores degrees, so its set trails degree-greedy.
//     The startup banner prints the |IS| table on the PLRG/ER pair so
//     nightly diffs catch quality drift alongside throughput drift.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <cstdio>
#include <thread>

#include "core/greedy.h"
#include "core/rounds_engine.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "graph/graph_io.h"
#include "graph/sharded_adjacency_file.h"
#include "io/scratch.h"
#include "util/bit_vector.h"

namespace semis {
namespace {

// Vertex count knob: SEMIS_ROUNDS_VERTICES (default 250000, matching
// bench_parallel_greedy so the two engines' columns are comparable).
uint64_t BenchVertexCount() {
  const char* env = std::getenv("SEMIS_ROUNDS_VERTICES");
  if (env != nullptr) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 250000;
}

constexpr uint32_t kNumShards = 16;

struct RoundsEnv {
  RoundsEnv() {
    SEMIS_BENCH_CHECK_OK(ScratchDir::Create("semis-roundsbench", &scratch));
    const uint64_t n = BenchVertexCount();
    Graph plrg =
        GeneratePlrg(PlrgSpec::ForVerticesAndAvgDegree(n, 8.0), 4321);
    directed_edges = plrg.NumDirectedEdges();
    std::string mono = scratch.NewFilePath("plrg.adj");
    SEMIS_BENCH_CHECK_OK(WriteGraphToAdjacencyFile(plrg, mono));
    manifest = scratch.NewFilePath("plrg.sadjs");
    SEMIS_BENCH_CHECK_OK(ShardAdjacencyFile(mono, manifest, kNumShards));
    std::printf(
        "# bench_rounds: %llu vertices, %llu directed edges, %u shards, "
        "%u hardware threads\n",
        static_cast<unsigned long long>(plrg.NumVertices()),
        static_cast<unsigned long long>(directed_edges), kNumShards,
        std::thread::hardware_concurrency());

    // Reference result: the sequential rounds loop. Every timed run is
    // held to this bit for bit.
    AlgoResult ref;
    SEMIS_BENCH_CHECK_OK(
        RunMinIdRoundsReference(manifest, MinIdRoundsOptions{}, &ref,
                                nullptr));
    reference_set = ref.in_set;
    reference_size = ref.set_size;
    reference_rounds = ref.rounds;

    // Quality table: rounds vs degree-greedy on the PLRG and an ER graph
    // of the same scale (the ISSUE 9 quality column). Printed once so
    // tools/bench_diff.py picks drift out of the nightly transcript.
    std::printf("# quality: graph, rounds |IS|, degree-greedy |IS|, ratio\n");
    PrintQualityRow("plrg-avg8", mono, reference_size);
    const uint64_t er_n = n;
    Graph er = GenerateErdosRenyi(
        static_cast<VertexId>(er_n), er_n * 4, 17);
    std::string er_mono = scratch.NewFilePath("er.adj");
    SEMIS_BENCH_CHECK_OK(WriteGraphToAdjacencyFile(er, er_mono));
    std::string er_manifest = scratch.NewFilePath("er.sadjs");
    SEMIS_BENCH_CHECK_OK(ShardAdjacencyFile(er_mono, er_manifest,
                                            kNumShards));
    AlgoResult er_rounds;
    SEMIS_BENCH_CHECK_OK(
        RunMinIdRounds(er_manifest, MinIdRoundsOptions{}, &er_rounds));
    PrintQualityRow("er-avg8", er_mono, er_rounds.set_size);
  }

  void PrintQualityRow(const char* name, const std::string& mono,
                       uint64_t rounds_size) {
    std::string sorted = scratch.NewFilePath(std::string(name) + ".sadj");
    SEMIS_BENCH_CHECK_OK(
        BuildDegreeSortedAdjacencyFile(mono, sorted, DegreeSortOptions{}));
    AlgoResult greedy;
    SEMIS_BENCH_CHECK_OK(RunGreedy(sorted, GreedyOptions{}, &greedy));
    std::printf("# quality: %s, %llu, %llu, %.4f\n", name,
                static_cast<unsigned long long>(rounds_size),
                static_cast<unsigned long long>(greedy.set_size),
                static_cast<double>(rounds_size) /
                    static_cast<double>(greedy.set_size));
  }

  ScratchDir scratch;
  std::string manifest;
  uint64_t directed_edges = 0;
  BitVector reference_set;
  uint64_t reference_size = 0;
  uint64_t reference_rounds = 0;
};

RoundsEnv& Env() {
  static RoundsEnv env;
  return env;
}

bool SameSet(const BitVector& a, const BitVector& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.Test(i) != b.Test(i)) return false;
  }
  return true;
}

void BM_MinIdRounds(benchmark::State& state) {
  RoundsEnv& env = Env();
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  uint64_t rounds = 0;
  for (auto _ : state) {
    AlgoResult res;
    MinIdRoundsOptions opts;
    opts.pipeline.num_threads = threads;
    Status s = RunMinIdRounds(env.manifest, opts, &res);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    if (res.rounds != env.reference_rounds ||
        !SameSet(res.in_set, env.reference_set)) {
      state.SkipWithError("result differs from sequential reference");
      break;
    }
    rounds = res.rounds;
    benchmark::DoNotOptimize(res.set_size);
  }
  // items/sec = directed edges decoded per wall second; every round is
  // two full passes, so the decode volume is 2 * edges * rounds.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(2 * env.directed_edges *
                                               rounds));
  state.counters["threads"] = threads;
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["rounds_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * rounds),
      benchmark::Counter::kIsRate);
  state.counters["set_size"] = static_cast<double>(env.reference_size);
}
BENCHMARK(BM_MinIdRounds)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Baseline: the sequential reference loop on the same sharded input, for
// the "parallel executor vs reference" column.
void BM_SequentialReference(benchmark::State& state) {
  RoundsEnv& env = Env();
  for (auto _ : state) {
    AlgoResult res;
    Status s = RunMinIdRoundsReference(env.manifest, MinIdRoundsOptions{},
                                       &res, nullptr);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    if (!SameSet(res.in_set, env.reference_set)) {
      state.SkipWithError("sequential result unstable across runs");
      break;
    }
    benchmark::DoNotOptimize(res.set_size);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(2 * env.directed_edges *
                                               env.reference_rounds));
}
BENCHMARK(BM_SequentialReference)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace semis

BENCHMARK_MAIN();
