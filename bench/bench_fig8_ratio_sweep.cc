// Reproduces Figure 8: empirical performance ratios of GREEDY, ONE-K-SWAP
// and TWO-K-SWAP against the Algorithm 5 bound on synthetic P(alpha,beta)
// graphs, beta = 1.7 .. 2.7. Expected shape (paper): all three curves
// above ~0.99, swaps above greedy, ratio growing with beta.
#include <cstdio>

#include "bench_common.h"
#include "core/greedy.h"
#include "core/one_k_swap.h"
#include "core/two_k_swap.h"
#include "core/upper_bound.h"
#include "gen/plrg.h"
#include "io/scratch.h"

namespace semis {
namespace bench {
namespace {

int Main() {
  const uint64_t n = SweepVertexCount();
  PrintBanner("Figure 8: empirical ratio of the three algorithms vs beta",
              "ratio = |IS| / Algorithm-5 bound on one P(alpha,beta) graph "
              "of " + WithCommas(n) + " vertices per beta");

  ScratchDir scratch;
  Status s = ScratchDir::Create("semis-fig8", &scratch);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  TablePrinter table({6, 12, 12, 10, 10, 10});
  table.PrintRow({"beta", "|E|", "bound", "greedy", "one-k", "two-k"});
  table.PrintRule();
  for (double beta : SweepBetas()) {
    Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(n, beta),
                           3000 + static_cast<uint64_t>(beta * 10));
    std::string sorted = scratch.NewFilePath("sorted");
    s = WriteDegreeSortedFileInMemoryOrder(g, sorted);
    if (!s.ok()) break;
    uint64_t bound = ComputeIndependenceUpperBound(g);
    AlgoResult greedy, one_k, two_k;
    s = RunGreedy(sorted, {}, &greedy);
    if (!s.ok()) break;
    s = RunOneKSwap(sorted, greedy.in_set, {}, &one_k);
    if (!s.ok()) break;
    s = RunTwoKSwap(sorted, greedy.in_set, {}, &two_k);
    if (!s.ok()) break;
    char row[6][32];
    std::snprintf(row[0], 32, "%.1f", beta);
    std::snprintf(row[1], 32, "%s", WithCommas(g.NumEdges()).c_str());
    std::snprintf(row[2], 32, "%s", WithCommas(bound).c_str());
    std::snprintf(row[3], 32, "%.4f",
                  static_cast<double>(greedy.set_size) / bound);
    std::snprintf(row[4], 32, "%.4f",
                  static_cast<double>(one_k.set_size) / bound);
    std::snprintf(row[5], 32, "%.4f",
                  static_cast<double>(two_k.set_size) / bound);
    table.PrintRow({row[0], row[1], row[2], row[3], row[4], row[5]});
    SEMIS_BENCH_CHECK_OK(RemoveFileIfExists(sorted));
  }
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "\nExpected shape: one-k and two-k sit above greedy for every beta;\n"
      "all ratios rise toward 1.0 as beta grows (sparser graphs).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace semis

int main() { return semis::bench::Main(); }
