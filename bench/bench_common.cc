#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "baselines/dynamic_update.h"
#include "baselines/time_forward.h"
#include "core/greedy.h"
#include "core/one_k_swap.h"
#include "core/two_k_swap.h"
#include "core/upper_bound.h"
#include "graph/graph_io.h"
#include "util/timer.h"

namespace semis {
namespace bench {

Status RunSuite(const DatasetSpec& spec, const SuiteSelection& selection,
                SuiteResult* out) {
  SuiteResult res;
  SEMIS_RETURN_IF_ERROR(MaterializeDataset(
      spec, GlobalScaleFromEnv(), DefaultDatasetCacheDir(), &res.files));

  if (selection.dynamic_update && !spec.in_memory_na) {
    Graph g;
    SEMIS_RETURN_IF_ERROR(
        ReadGraphFromAdjacencyFile(res.files.adjacency_path, &g));
    SEMIS_RETURN_IF_ERROR(RunDynamicUpdate(g, &res.dynamic_update));
    res.ran_dynamic_update = true;
  }
  if (selection.stxxl) {
    SEMIS_RETURN_IF_ERROR(
        RunTimeForwardMIS(res.files.adjacency_path, {}, &res.stxxl));
  }
  if (selection.baseline_chain) {
    SEMIS_RETURN_IF_ERROR(
        RunGreedy(res.files.adjacency_path, {}, &res.baseline));
    OneKSwapOptions one_opts;
    one_opts.max_rounds = selection.max_swap_rounds;
    SEMIS_RETURN_IF_ERROR(RunOneKSwap(res.files.adjacency_path,
                                      res.baseline.in_set, one_opts,
                                      &res.one_k_baseline));
    TwoKSwapOptions two_opts;
    two_opts.max_rounds = selection.max_swap_rounds;
    SEMIS_RETURN_IF_ERROR(RunTwoKSwap(res.files.adjacency_path,
                                      res.baseline.in_set, two_opts,
                                      &res.two_k_baseline));
  }
  if (selection.greedy_chain) {
    SEMIS_RETURN_IF_ERROR(RunGreedy(res.files.sorted_path, {}, &res.greedy));
    OneKSwapOptions one_opts;
    one_opts.max_rounds = selection.max_swap_rounds;
    SEMIS_RETURN_IF_ERROR(RunOneKSwap(res.files.sorted_path,
                                      res.greedy.in_set, one_opts,
                                      &res.one_k_greedy));
    TwoKSwapOptions two_opts;
    two_opts.max_rounds = selection.max_swap_rounds;
    SEMIS_RETURN_IF_ERROR(RunTwoKSwap(res.files.sorted_path,
                                      res.greedy.in_set, two_opts,
                                      &res.two_k_greedy));
  }
  if (selection.upper_bound) {
    SEMIS_RETURN_IF_ERROR(ComputeIndependenceUpperBoundFile(
        res.files.sorted_path, &res.upper_bound));
  }
  *out = res;
  return Status::OK();
}

uint64_t SweepVertexCount() {
  const char* env = std::getenv("SEMIS_BETA_VERTICES");
  if (env == nullptr) return 200000;
  long long v = std::atoll(env);
  if (v < 1000) v = 1000;
  return static_cast<uint64_t>(v);
}

int SweepRepetitions() {
  // The paper averages 10 random graphs per beta; one 200k-vertex graph
  // is already smooth, so the default keeps the suite fast. Raise
  // SEMIS_SWEEP_REPS (and SEMIS_BETA_VERTICES) to approach paper fidelity.
  const char* env = std::getenv("SEMIS_SWEEP_REPS");
  if (env == nullptr) return 1;
  int v = std::atoi(env);
  return v < 1 ? 1 : v;
}

Status WriteDegreeSortedFileInMemoryOrder(const Graph& g,
                                          const std::string& path) {
  std::vector<VertexId> order(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g.Degree(a) < g.Degree(b);
  });
  return WriteGraphToAdjacencyFileInOrder(g, order, kAdjFlagDegreeSorted,
                                          path);
}

std::vector<double> SweepBetas() {
  std::vector<double> betas;
  for (int i = 0; i <= 10; ++i) betas.push_back(1.7 + 0.1 * i);
  return betas;
}

std::string WithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    count++;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1000.0);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else if (seconds < 7200.0) {
    std::snprintf(buf, sizeof(buf), "%.1fmin", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fh", seconds / 3600.0);
  }
  return buf;
}

TablePrinter::TablePrinter(std::vector<int> widths)
    : widths_(std::move(widths)) {}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  std::string line;
  for (size_t i = 0; i < widths_.size(); ++i) {
    const std::string cell = i < cells.size() ? cells[i] : "";
    const int w = widths_[i];
    if (i == 0) {
      line += cell;
      if (static_cast<int>(cell.size()) < w) {
        line += std::string(w - cell.size(), ' ');
      }
    } else {
      if (static_cast<int>(cell.size()) < w) {
        line += std::string(w - cell.size(), ' ');
      }
      line += cell;
    }
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

void TablePrinter::PrintRule() const {
  size_t total = 0;
  for (int w : widths_) total += static_cast<size_t>(w) + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
}

void PrintBanner(const std::string& artifact, const std::string& detail) {
  std::printf("================================================================\n");
  std::printf("semis reproduction | %s\n", artifact.c_str());
  std::printf("%s\n", detail.c_str());
  std::printf("scale: SEMIS_SCALE=%.3g  (datasets are synthetic PLRG\n",
              GlobalScaleFromEnv());
  std::printf("stand-ins, scaled down from the paper's sizes; see DESIGN.md)\n");
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace semis
