// Thread-scaling benchmark of the parallel swap executor (ISSUE 2 /
// ROADMAP "parallel greedy/swap rounds"): two-k swap rounds over a
// sharded PLRG with >= 1M directed edges, swept over thread counts.
//
// Two properties are measured/checked:
//   * correctness: every thread count must produce a byte-identical
//     independent set (the executor's determinism contract); the bench
//     aborts the timing loop if it does not;
//   * scaling: items/sec (directed edges per wall second) should grow
//     with threads on multi-core hardware. Target: >= 2x at 4 threads
//     over 1 thread on an otherwise idle machine. On single-core runners
//     the sweep degenerates to overhead measurement, which is reported,
//     not hidden.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <cstdio>
#include <thread>
#include <vector>

#include "core/greedy.h"
#include "core/parallel_swap.h"
#include "core/two_k_swap.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "graph/graph_io.h"
#include "graph/sharded_adjacency_file.h"
#include "io/scratch.h"
#include "util/bit_vector.h"

namespace semis {
namespace {

// Vertex count knob: SEMIS_PARALLEL_VERTICES (default 250000, which at
// beta ~2 / avg degree ~8 yields >= 1M directed edges).
uint64_t BenchVertexCount() {
  const char* env = std::getenv("SEMIS_PARALLEL_VERTICES");
  if (env != nullptr) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 250000;
}

constexpr uint32_t kNumShards = 16;

struct ParallelEnv {
  ParallelEnv() {
    SEMIS_BENCH_CHECK_OK(ScratchDir::Create("semis-parbench", &scratch));
    Graph graph =
        GeneratePlrg(PlrgSpec::ForVerticesAndAvgDegree(BenchVertexCount(), 8.0),
                     1234);
    directed_edges = graph.NumDirectedEdges();
    std::string mono = scratch.NewFilePath("graph.adj");
    SEMIS_BENCH_CHECK_OK(WriteGraphToAdjacencyFile(graph, mono));
    sorted_path = scratch.NewFilePath("sorted.sadj");
    SEMIS_BENCH_CHECK_OK(BuildDegreeSortedAdjacencyFile(mono, sorted_path,
                                         DegreeSortOptions{}));
    manifest = scratch.NewFilePath("sharded.sadjs");
    SEMIS_BENCH_CHECK_OK(ShardAdjacencyFile(sorted_path, manifest, kNumShards));
    SEMIS_BENCH_CHECK_OK(RunGreedy(sorted_path, GreedyOptions{}, &greedy));
    std::printf(
        "# bench_parallel_swap: %llu vertices, %llu directed edges, "
        "%u shards, %u hardware threads\n",
        static_cast<unsigned long long>(graph.NumVertices()),
        static_cast<unsigned long long>(directed_edges), kNumShards,
        std::thread::hardware_concurrency());
    // Reference result: the sequential path (one thread).
    AlgoResult ref;
    ParallelSwapOptions opts;
    opts.num_threads = 1;
    SEMIS_BENCH_CHECK_OK(RunParallelSwap(manifest, greedy.in_set, opts, &ref));
    reference_set = ref.in_set;
    reference_size = ref.set_size;
  }

  ScratchDir scratch;
  std::string manifest;
  std::string sorted_path;
  AlgoResult greedy;
  uint64_t directed_edges = 0;
  BitVector reference_set;
  uint64_t reference_size = 0;
};

ParallelEnv& Env() {
  static ParallelEnv env;
  return env;
}

bool SameSet(const BitVector& a, const BitVector& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.Test(i) != b.Test(i)) return false;
  }
  return true;
}

void BM_ParallelTwoKSwap(benchmark::State& state) {
  ParallelEnv& env = Env();
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  double rounds = 0;
  for (auto _ : state) {
    AlgoResult res;
    ParallelSwapOptions opts;
    opts.num_threads = threads;
    Status s = RunParallelSwap(env.manifest, env.greedy.in_set, opts, &res);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    if (!SameSet(res.in_set, env.reference_set)) {
      state.SkipWithError("result differs from the sequential path");
      break;
    }
    rounds += static_cast<double>(res.rounds);
    benchmark::DoNotOptimize(res.set_size);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.directed_edges));
  state.counters["threads"] = threads;
  state.counters["set_size"] = static_cast<double>(env.reference_size);
  if (state.iterations() > 0) {
    state.counters["rounds"] = rounds / static_cast<double>(state.iterations());
  }
}
BENCHMARK(BM_ParallelTwoKSwap)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Baseline: the monolithic sequential two-k-swap on the same (unsharded)
// input, for the "parallel executor vs paper implementation" column.
void BM_SequentialTwoKSwap(benchmark::State& state) {
  ParallelEnv& env = Env();
  for (auto _ : state) {
    AlgoResult res;
    Status s =
        RunTwoKSwap(env.sorted_path, env.greedy.in_set, TwoKSwapOptions{}, &res);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(res.set_size);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.directed_edges));
}
BENCHMARK(BM_SequentialTwoKSwap)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace semis

BENCHMARK_MAIN();
