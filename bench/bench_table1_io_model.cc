// Validates Table 1's I/O cost model against measured sequential I/O:
//   Greedy      : (|V|+|E|)/B * (log_{M/B} |V|/B + 2)  -- sort + 1 scan
//   One-k-swap  : O(scan(|V|+|E|))  -- init scan + 2 scans per round
//   Two-k-swap  : O(scan(|V|+|E|))  -- init scan + 3 scans per round
//   STXXL/Zeh   : O(sort(|V|+|E|)) via the external priority queue
// We compare measured bytes moved against (#scans x file size) and the
// sorter's pass count against log_{fan-in}(#runs).
#include <cmath>
#include <cstdio>

#include "baselines/time_forward.h"
#include "bench_common.h"
#include "core/greedy.h"
#include "core/one_k_swap.h"
#include "core/two_k_swap.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "io/scratch.h"
#include "util/memory_tracker.h"

namespace semis {
namespace bench {
namespace {

int Main() {
  const uint64_t n = SweepVertexCount();
  PrintBanner("Table 1: I/O cost model validation",
              "measured sequential I/O vs the model, P(alpha,2.0) graph "
              "of " + WithCommas(n) + " vertices");

  ScratchDir scratch;
  if (!ScratchDir::Create("semis-t1", &scratch).ok()) return 1;
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(n, 2.0), 17);
  std::string unsorted = scratch.NewFilePath("graph");
  Status s = WriteGraphToAdjacencyFile(g, unsorted);
  if (!s.ok()) return 1;
  uint64_t file_size = 0;
  SEMIS_BENCH_CHECK_OK(GetFileSize(unsorted, &file_size));
  std::printf("\nadjacency file: %s (%llu vertices + %llu directed edges)\n",
              MemoryTracker::FormatBytes(file_size).c_str(),
              static_cast<unsigned long long>(g.NumVertices()),
              static_cast<unsigned long long>(g.NumDirectedEdges()));

  // --- preprocessing sort with a deliberately small budget.
  std::string sorted = scratch.NewFilePath("sorted");
  DegreeSortOptions sort_opts;
  sort_opts.memory_budget_bytes = file_size / 8;  // ~8 level-0 runs
  sort_opts.fan_in = 4;
  IoStats sort_io;
  sort_opts.stats = &sort_io;
  s = BuildDegreeSortedAdjacencyFile(unsorted, sorted, sort_opts);
  if (!s.ok()) return 1;
  double expected_passes = std::ceil(std::log(8.0) / std::log(4.0));
  std::printf(
      "\n[sort] budget=M/8, fan-in=4: measured %llu merge passes "
      "(model: ceil(log_4 8) = %.0f);\n       bytes moved %s = %.1fx file "
      "size (model: ~%.0fx)\n",
      static_cast<unsigned long long>(sort_io.sort_passes), expected_passes,
      MemoryTracker::FormatBytes(sort_io.bytes_read + sort_io.bytes_written)
          .c_str(),
      static_cast<double>(sort_io.bytes_read + sort_io.bytes_written) /
          file_size,
      2.0 * (expected_passes + 1));

  // --- greedy: exactly one scan.
  AlgoResult greedy;
  s = RunGreedy(sorted, {}, &greedy);
  if (!s.ok()) return 1;
  std::printf("[greedy] scans=%llu (model: 1), bytes=%.2fx file\n",
              static_cast<unsigned long long>(greedy.io.sequential_scans),
              static_cast<double>(greedy.io.bytes_read) / file_size);

  // --- one-k: 1 init scan + 2 per round (+1 completion).
  AlgoResult one_k;
  s = RunOneKSwap(sorted, greedy.in_set, {}, &one_k);
  if (!s.ok()) return 1;
  std::printf("[one-k] rounds=%llu scans=%llu (model: 1 + 2r + 1 = %llu)\n",
              static_cast<unsigned long long>(one_k.rounds),
              static_cast<unsigned long long>(one_k.io.sequential_scans),
              static_cast<unsigned long long>(2 + 2 * one_k.rounds));

  // --- two-k: 1 init scan + 3 per round (+1 completion).
  AlgoResult two_k;
  s = RunTwoKSwap(sorted, greedy.in_set, {}, &two_k);
  if (!s.ok()) return 1;
  std::printf("[two-k] rounds=%llu scans=%llu (model: 1 + 3r + 1 = %llu)\n",
              static_cast<unsigned long long>(two_k.rounds),
              static_cast<unsigned long long>(two_k.io.sequential_scans),
              static_cast<unsigned long long>(2 + 3 * two_k.rounds));

  // --- external baseline: one scan + queue traffic ~ sort(E).
  AlgoResult tf;
  s = RunTimeForwardMIS(unsorted, {}, &tf);
  if (!s.ok()) return 1;
  std::printf("[stxxl] scans=%llu, total bytes=%.2fx file (queue spills "
              "count toward sort(E))\n",
              static_cast<unsigned long long>(tf.io.sequential_scans),
              static_cast<double>(tf.io.bytes_read + tf.io.bytes_written) /
                  file_size);

  std::printf(
      "\nExpected shape: measured scan counts equal the per-round model\n"
      "exactly; sort bytes track (passes+1) round trips of the file.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace semis

int main() { return semis::bench::Main(); }
