// Reproduces Table 9: accuracy of the Proposition 2 estimate against the
// measured greedy IS size, varying beta. Expected shape (paper):
//   * accuracy = estimate/real >= ~98.7% everywhere,
//   * the estimate is a lower bound (accuracy <= 100%),
//   * |E| and the IS size both SHRINK as beta grows -- the paper's
//     "surprising" observation (more degree-1 vertices join, but far
//     fewer of everything else).
#include <cstdio>

#include "bench_common.h"
#include "core/greedy.h"
#include "gen/plrg.h"
#include "io/scratch.h"
#include "theory/greedy_estimate.h"
#include "theory/plrg_model.h"

namespace semis {
namespace bench {
namespace {

int Main() {
  const uint64_t n = SweepVertexCount();
  const int reps = SweepRepetitions();
  PrintBanner("Table 9: accuracy of the Proposition 2 greedy estimate",
              std::to_string(reps) + " graph(s) of " + WithCommas(n) +
                  " vertices per beta (paper: 10 of 10M)");

  ScratchDir scratch;
  if (!ScratchDir::Create("semis-t9", &scratch).ok()) return 1;

  TablePrinter table({6, 12, 14, 14, 10});
  table.PrintRow({"beta", "edges", "estimation", "real", "accuracy"});
  table.PrintRule();
  double prev_real = 1e18;
  bool sizes_decrease = true;
  for (double beta : SweepBetas()) {
    PlrgModel model = PlrgModel::ForVertexCount(n, beta);
    double estimate = GreedyExpectedSize(model);
    double real_sum = 0;
    uint64_t edges = 0;
    Status s;
    for (int rep = 0; rep < reps; ++rep) {
      Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(n, beta),
                             5000 + static_cast<uint64_t>(beta * 100) + rep);
      edges = g.NumEdges();
      std::string sorted = scratch.NewFilePath("sorted");
      s = WriteDegreeSortedFileInMemoryOrder(g, sorted);
      if (!s.ok()) break;
      AlgoResult greedy;
      s = RunGreedy(sorted, {}, &greedy);
      if (!s.ok()) break;
      real_sum += static_cast<double>(greedy.set_size);
      SEMIS_BENCH_CHECK_OK(RemoveFileIfExists(sorted));
    }
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    double real = real_sum / reps;
    if (real > prev_real) sizes_decrease = false;
    prev_real = real;
    char row[5][32];
    std::snprintf(row[0], 32, "%.1f", beta);
    std::snprintf(row[1], 32, "%s", WithCommas(edges).c_str());
    std::snprintf(row[2], 32, "%.0f", estimate);
    std::snprintf(row[3], 32, "%.0f", real);
    std::snprintf(row[4], 32, "%.1f%%", 100.0 * estimate / real);
    table.PrintRow({row[0], row[1], row[2], row[3], row[4]});
  }
  std::printf(
      "\nIS size monotonically decreasing in beta: %s (paper: yes -- the\n"
      "counter-intuitive Table 9 finding).\n",
      sizes_decrease ? "yes" : "no");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace semis

int main() { return semis::bench::Main(); }
