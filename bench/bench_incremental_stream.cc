// Streaming-update benchmark (ISSUE 4 / ROADMAP "incremental updates
// under edge streams on top of the sharded format"): updates/sec of the
// batched apply -> parallel repair loop, and repair latency as a function
// of the pending delta size, over a sharded PLRG.
//
// Each iteration applies one batch of updates and runs Repair(); the
// delta is force-compacted between iterations (outside the timing), so
// every measured repair sees exactly `batch` pending delta entries --
// that makes the batch sweep a direct "repair latency vs delta size"
// curve, and items/sec the sustained update throughput.
//
// Determinism is asserted inside the timing loop: a 1-thread mirror
// instance consumes the same stream (outside the timing), and the
// measured instance's set must match it byte for byte after every repair
// -- the executor's contract that thread count never changes the result,
// with the 1-thread path being the sequential reference.
//
// All I/O flows through the default (posix) FileSystem seam of io/env.h;
// the fixture aborts if a fault-injection env is armed, and
// BM_SeamAppendSteadyState asserts in-loop that steady-state writes
// through the seam allocate nothing. Allocation counts come from global
// operator new/delete overrides local to this binary, as in
// bench_block_decode.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "core/incremental_stream.h"
#include "core/parallel_greedy.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "graph/graph_io.h"
#include "graph/sharded_adjacency_file.h"
#include "io/env.h"
#include "io/file.h"
#include "io/scratch.h"
#include "util/bit_vector.h"
#include "util/random.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace semis {
namespace {

// Vertex count knob: SEMIS_STREAM_VERTICES (default 100000, ~800k
// directed edges at avg degree 8).
uint64_t BenchVertexCount() {
  const char* env = std::getenv("SEMIS_STREAM_VERTICES");
  if (env != nullptr) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 100000;
}

constexpr uint32_t kNumShards = 16;

struct StreamEnv {
  StreamEnv() {
    bench::RequireDefaultIoEnv();
    SEMIS_BENCH_CHECK_OK(ScratchDir::Create("semis-streambench", &scratch));
    Graph graph = GeneratePlrg(
        PlrgSpec::ForVerticesAndAvgDegree(BenchVertexCount(), 8.0), 777);
    num_vertices = graph.NumVertices();
    directed_edges = graph.NumDirectedEdges();
    std::string mono = scratch.NewFilePath("graph.adj");
    SEMIS_BENCH_CHECK_OK(WriteGraphToAdjacencyFile(graph, mono));
    sorted_path = scratch.NewFilePath("sorted.sadj");
    SEMIS_BENCH_CHECK_OK(BuildDegreeSortedAdjacencyFile(mono, sorted_path,
                                         DegreeSortOptions{}));
    std::printf(
        "# bench_incremental_stream: %llu vertices, %llu directed edges, "
        "%u shards, %u hardware threads, io seam '%s'\n",
        static_cast<unsigned long long>(num_vertices),
        static_cast<unsigned long long>(directed_edges), kNumShards,
        std::thread::hardware_concurrency(), GetFileSystem()->Name());
  }

  // Fresh sharded copy + initial greedy set for one benchmark run
  // (updates mutate the shards, so runs must not share them).
  bool NewShardedCopy(std::string* manifest, BitVector* initial) {
    *manifest = scratch.NewFilePath("stream.sadjs");
    if (!ShardAdjacencyFile(sorted_path, *manifest, kNumShards).ok()) {
      return false;
    }
    AlgoResult greedy;
    ParallelGreedyOptions opts;
    if (!RunParallelGreedy(*manifest, opts, &greedy).ok()) return false;
    *initial = std::move(greedy.in_set);
    return true;
  }

  ScratchDir scratch;
  std::string sorted_path;
  uint64_t num_vertices = 0;
  uint64_t directed_edges = 0;
};

StreamEnv& Env() {
  static StreamEnv env;
  return env;
}

bool SameSet(const BitVector& a, const BitVector& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.Test(i) != b.Test(i)) return false;
  }
  return true;
}

// Generates one batch: ~55% inserts of fresh random pairs, ~45% deletes
// of stream-inserted edges, so the graph stays near its base size and
// deletes are (mostly) effective.
void MakeBatch(Random* rng, uint64_t n,
               std::vector<std::pair<VertexId, VertexId>>* live,
               std::vector<EdgeUpdate>* out, size_t batch) {
  out->clear();
  for (size_t i = 0; i < batch; ++i) {
    if (live->empty() || rng->OneIn(0.55)) {
      VertexId u = static_cast<VertexId>(rng->Uniform(n));
      VertexId v = static_cast<VertexId>(rng->Uniform(n));
      if (u == v) v = (v + 1) % static_cast<VertexId>(n);
      out->push_back(EdgeUpdate::Insert(u, v));
      live->emplace_back(u, v);
    } else {
      size_t idx = static_cast<size_t>(rng->Uniform(live->size()));
      auto [u, v] = (*live)[idx];
      (*live)[idx] = live->back();
      live->pop_back();
      out->push_back(EdgeUpdate::Delete(u, v));
    }
  }
}

void BM_StreamApplyRepair(benchmark::State& state) {
  StreamEnv& env = Env();
  const size_t batch = static_cast<size_t>(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));

  std::string manifest, mirror_manifest;
  BitVector initial, mirror_initial;
  if (!env.NewShardedCopy(&manifest, &initial) ||
      !env.NewShardedCopy(&mirror_manifest, &mirror_initial)) {
    state.SkipWithError("sharded copy setup failed");
    return;
  }
  EnginePipelineOptions opts;
  opts.num_threads = threads;
  auto mis = std::make_unique<ShardedStreamingMis>();
  if (!mis->Initialize(manifest, initial, opts).ok()) {
    state.SkipWithError("Initialize failed");
    return;
  }
  // The sequential reference consuming the identical stream.
  EnginePipelineOptions mirror_opts;
  mirror_opts.num_threads = 1;
  auto mirror = std::make_unique<ShardedStreamingMis>();
  if (!mirror->Initialize(mirror_manifest, mirror_initial, mirror_opts)
           .ok()) {
    state.SkipWithError("mirror Initialize failed");
    return;
  }

  Random rng(2026);
  std::vector<std::pair<VertexId, VertexId>> live;
  std::vector<EdgeUpdate> updates;
  uint64_t allocs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MakeBatch(&rng, env.num_vertices, &live, &updates, batch);
    state.ResumeTiming();
    const uint64_t before = g_allocations.load(std::memory_order_relaxed);
    Status s = mis->ApplyBatch(updates);
    if (s.ok()) s = mis->Repair();
    allocs += g_allocations.load(std::memory_order_relaxed) - before;
    state.PauseTiming();
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      state.ResumeTiming();
      break;
    }
    // Determinism gate: the measured instance must match the 1-thread
    // mirror after every repair.
    s = mirror->ApplyBatch(updates);
    if (s.ok()) s = mirror->Repair();
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      state.ResumeTiming();
      break;
    }
    if (!SameSet(mis->set(), mirror->set())) {
      state.SkipWithError("result differs from the 1-thread repair");
      state.ResumeTiming();
      break;
    }
    // Reset the pending delta so the next repair sees exactly `batch`
    // entries again.
    s = mis->Compact(/*force=*/true);
    if (s.ok()) s = mirror->Compact(/*force=*/true);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      state.ResumeTiming();
      break;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
  state.counters["threads"] = threads;
  state.counters["delta_entries"] = static_cast<double>(batch);
  const double updates_done = static_cast<double>(state.iterations()) *
                              static_cast<double>(batch);
  state.counters["allocs_per_update"] =
      updates_done > 0 ? static_cast<double>(allocs) / updates_done : 0.0;
  const StreamingMisStats& st = mis->stats();
  if (st.repair_passes > 0) {
    state.counters["repair_ms_per_pass"] =
        1e3 * st.repair_seconds / static_cast<double>(st.repair_passes);
  }
  state.counters["set_size"] = static_cast<double>(mis->set_size());
}
BENCHMARK(BM_StreamApplyRepair)
    ->ArgsProduct({{1024, 8192, 65536}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Baseline for the "maintain vs re-solve" argument: one full sharded
// greedy solve of the same graph, i.e. what every batch would cost
// without incremental maintenance.
void BM_FromScratchGreedy(benchmark::State& state) {
  StreamEnv& env = Env();
  std::string manifest;
  BitVector initial;
  if (!env.NewShardedCopy(&manifest, &initial)) {
    state.SkipWithError("sharded copy setup failed");
    return;
  }
  for (auto _ : state) {
    AlgoResult res;
    ParallelGreedyOptions opts;
    opts.pipeline.num_threads = static_cast<uint32_t>(state.range(0));
    Status s = RunParallelGreedy(manifest, opts, &res);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(res.set_size);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.directed_edges));
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FromScratchGreedy)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The write side of the I/O seam in isolation (ISSUE 10): steady-state
// appends through SequentialFileWriter -- buffered memcpy plus a
// FileSystem write per buffer fill -- must allocate nothing once the
// writer is open. The assertion runs inside the timing loop, so a heap
// allocation smuggled into the seam's hot path fails the nightly gate.
// Each iteration rewrites the same scratch file (O_TRUNC on open), so
// disk usage stays bounded no matter how many iterations run.
void BM_SeamAppendSteadyState(benchmark::State& state) {
  StreamEnv& env = Env();
  const std::string path = env.scratch.NewFilePath("seam-append.bin");
  constexpr size_t kAppends = 256;
  std::vector<char> payload(4096, 'x');
  uint64_t total_bytes = 0;
  for (auto _ : state) {
    SequentialFileWriter writer;
    Status s = writer.Open(path);
    if (s.ok()) {
      const uint64_t before = g_allocations.load(std::memory_order_relaxed);
      for (size_t i = 0; s.ok() && i < kAppends; ++i) {
        s = writer.Append(payload.data(), payload.size());
      }
      const uint64_t allocs =
          g_allocations.load(std::memory_order_relaxed) - before;
      if (s.ok() && allocs != 0) {
        state.SkipWithError("steady-state seam append allocated");
        break;
      }
      Status close = writer.Close();
      if (s.ok()) s = close;
      total_bytes += kAppends * payload.size();
    }
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(total_bytes));
  state.counters["allocs_per_append"] = 0.0;
}
BENCHMARK(BM_SeamAppendSteadyState)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace semis

BENCHMARK_MAIN();
