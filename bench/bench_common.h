// Copyright (c) the semis authors.
// Shared plumbing for the paper-reproduction bench binaries: dataset
// loading via the stand-in registry, the six-algorithm suite of Table 5,
// and fixed-width table printing.
#ifndef SEMIS_BENCH_BENCH_COMMON_H_
#define SEMIS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/mis_common.h"
#include "gen/datasets.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "io/env.h"
#include "util/status.h"

namespace semis {
namespace bench {

/// Aborts the bench binary when a setup step fails. Benchmarks have no
/// caller to propagate to, and timing a fixture that silently failed to
/// build produces plausible-looking garbage -- crash loudly instead.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

/// Benchmarks must measure the real posix I/O seam. With a
/// fault-injection FileSystem installed (or SEMIS_FAULT_SPEC armed, which
/// installs one lazily at the first I/O), every throughput and allocation
/// number is garbage -- crash loudly instead of timing a lie.
inline void RequireDefaultIoEnv() {
  if (std::getenv("SEMIS_FAULT_SPEC") != nullptr) {
    std::fprintf(stderr,
                 "bench refuses to run with SEMIS_FAULT_SPEC set: fault "
                 "injection invalidates every measurement\n");
    std::abort();
  }
  if (GetFileSystem() != PosixFileSystem()) {
    std::fprintf(stderr,
                 "bench requires the default posix FileSystem, got '%s'\n",
                 GetFileSystem()->Name());
    std::abort();
  }
}

/// CheckOk with the expression itself as the label.
#define SEMIS_BENCH_CHECK_OK(expr) \
  ::semis::bench::CheckOk((expr), #expr)

/// Results of every paper algorithm on one dataset.
struct SuiteResult {
  DatasetFiles files;
  bool ran_dynamic_update = false;
  AlgoResult dynamic_update;   // DYNAMICUPDATE (in-memory) when feasible
  AlgoResult stxxl;            // time-forward external baseline ("STXXL")
  AlgoResult baseline;         // Algorithm 1 on the id-ordered file
  AlgoResult one_k_baseline;   // one-k-swap after BASELINE
  AlgoResult two_k_baseline;   // two-k-swap after BASELINE
  AlgoResult greedy;           // Algorithm 1 on the degree-sorted file
  AlgoResult one_k_greedy;     // one-k-swap after GREEDY
  AlgoResult two_k_greedy;     // two-k-swap after GREEDY
  uint64_t upper_bound = 0;    // Algorithm 5 on the degree-sorted file
  double greedy_sort_seconds = 0.0;  // preprocessing time charged to GREEDY
};

/// Which parts of the suite to execute (the big tables need all of it;
/// focused benches can skip stages).
struct SuiteSelection {
  bool dynamic_update = true;
  bool stxxl = true;
  bool baseline_chain = true;  // baseline + swaps after baseline
  bool greedy_chain = true;    // greedy + swaps after greedy
  bool upper_bound = true;
  uint32_t max_swap_rounds = 0;  // 0 = converge
};

/// Materializes `spec` (cached) and runs the selected algorithms.
Status RunSuite(const DatasetSpec& spec, const SuiteSelection& selection,
                SuiteResult* out);

/// Number of vertices for the beta-sweep benches:
/// SEMIS_BETA_VERTICES (default 200000).
uint64_t SweepVertexCount();

/// Repetitions for averaging in the sweep benches:
/// SEMIS_SWEEP_REPS (default 3; the paper uses 10).
int SweepRepetitions();

/// The 11 beta values of the paper's sweeps (1.7 .. 2.7 step 0.1).
std::vector<double> SweepBetas();

/// Writes `g` as a degree-sorted adjacency file using an in-memory sort of
/// the record order (sweep benches only; the dataset pipeline uses the
/// real external sort).
Status WriteDegreeSortedFileInMemoryOrder(const Graph& g,
                                          const std::string& path);

/// Formats an integer with thousands separators ("2,151,578").
std::string WithCommas(uint64_t value);

/// Formats a duration like the paper's Table 6 ("57ms", "6.2s", "1.65h").
std::string FormatSeconds(double seconds);

/// Simple fixed-width table printer.
class TablePrinter {
 public:
  /// `widths[i]` = column width; column 0 is left-aligned, the rest right.
  explicit TablePrinter(std::vector<int> widths);
  void PrintRow(const std::vector<std::string>& cells) const;
  void PrintRule() const;

 private:
  std::vector<int> widths_;
};

/// Prints the standard bench banner: which paper artifact this binary
/// regenerates and the scale knobs in effect.
void PrintBanner(const std::string& artifact, const std::string& detail);

}  // namespace bench
}  // namespace semis

#endif  // SEMIS_BENCH_BENCH_COMMON_H_
