// Reproduces Table 4 (dataset characteristics) and Table 5 (number of
// vertices in the independent sets returned by the six algorithms).
// Expected shape (paper):
//   * swaps beat their starting point everywhere,
//   * GREEDY > BASELINE on most datasets,
//   * the external baseline ("STXXL") trails one-k/two-k badly,
//   * two-k(after X) >= one-k(after X).
#include <cstdio>

#include "bench_common.h"

namespace semis {
namespace bench {
namespace {

int Main() {
  PrintBanner("Tables 4 + 5: dataset characteristics & IS sizes",
              "columns follow Table 5; DU = DynamicUpdate (N/A when the "
              "graph exceeds the in-memory budget, as in the paper)");

  std::printf("\n-- Table 4 (stand-in characteristics; paper sizes in "
              "parentheses) --\n");
  TablePrinter t4({10, 12, 12, 9, 26});
  t4.PrintRow({"dataset", "|V|", "|E|", "avg deg", "paper |V| / |E|"});
  t4.PrintRule();

  std::vector<SuiteResult> suites;
  for (const DatasetSpec& spec : PaperDatasets()) {
    SuiteResult suite;
    Status s = RunSuite(spec, SuiteSelection{}, &suite);
    if (!s.ok()) {
      std::fprintf(stderr, "suite failed for %s: %s\n", spec.name.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    char avg[16];
    std::snprintf(avg, sizeof(avg), "%.2f", suite.files.avg_degree);
    t4.PrintRow({spec.name, WithCommas(suite.files.num_vertices),
                 WithCommas(suite.files.num_edges), avg,
                 WithCommas(spec.paper_vertices) + " / " +
                     WithCommas(spec.paper_edges)});
    suites.push_back(std::move(suite));
  }

  std::printf("\n-- Table 5 (IS sizes) --\n");
  TablePrinter t5({10, 11, 11, 11, 11, 11, 11, 11, 11});
  t5.PrintRow({"dataset", "DU", "STXXL", "Baseline", "1k(Base)", "2k(Base)",
               "Greedy", "1k(Grdy)", "2k(Grdy)"});
  t5.PrintRule();
  size_t i = 0;
  for (const DatasetSpec& spec : PaperDatasets()) {
    const SuiteResult& s = suites[i++];
    t5.PrintRow({spec.name,
                 s.ran_dynamic_update ? WithCommas(s.dynamic_update.set_size)
                                      : "N/A",
                 WithCommas(s.stxxl.set_size),
                 WithCommas(s.baseline.set_size),
                 WithCommas(s.one_k_baseline.set_size),
                 WithCommas(s.two_k_baseline.set_size),
                 WithCommas(s.greedy.set_size),
                 WithCommas(s.one_k_greedy.set_size),
                 WithCommas(s.two_k_greedy.set_size)});
  }

  std::printf("\n-- shape checks --\n");
  i = 0;
  int greedy_beats_baseline = 0, swaps_beat_stxxl = 0;
  for (const DatasetSpec& spec : PaperDatasets()) {
    const SuiteResult& s = suites[i++];
    (void)spec;
    if (s.greedy.set_size >= s.baseline.set_size) greedy_beats_baseline++;
    if (s.two_k_greedy.set_size > s.stxxl.set_size) swaps_beat_stxxl++;
  }
  std::printf("GREEDY >= BASELINE on %d/10 datasets (paper: most)\n",
              greedy_beats_baseline);
  std::printf("TWO-K(greedy) > STXXL on %d/10 datasets (paper: all)\n",
              swaps_beat_stxxl);
  std::printf(
      "note: STXXL and BASELINE return the same set by construction (both\n"
      "compute the id-order maximal IS); they differ in the memory model\n"
      "(fully external queue vs O(|V|) states) -- see Table 6.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace semis

int main() { return semis::bench::Main(); }
