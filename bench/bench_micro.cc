// Micro-benchmarks (google-benchmark) for the substrate hot paths:
// adjacency-file scan throughput, external sorter, external priority
// queue, and the greedy scan itself. These are the building blocks whose
// costs the paper's Table 1 I/O model abstracts.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "core/greedy.h"
#include "gen/plrg.h"
#include "graph/adjacency_file.h"
#include "graph/graph_io.h"
#include "io/external_priority_queue.h"
#include "io/external_sorter.h"
#include "io/scratch.h"
#include "util/random.h"

namespace semis {
namespace {

// Shared fixture state: one mid-sized PLRG written to a scratch file.
struct MicroEnv {
  MicroEnv() {
    SEMIS_BENCH_CHECK_OK(ScratchDir::Create("semis-micro", &scratch));
    graph = GeneratePlrg(PlrgSpec::ForVertexCount(100000, 2.0), 7);
    path = scratch.NewFilePath("graph");
    SEMIS_BENCH_CHECK_OK(WriteGraphToAdjacencyFile(graph, path));
  }
  ScratchDir scratch;
  Graph graph;
  std::string path;
};

MicroEnv& Env() {
  static MicroEnv env;
  return env;
}

void BM_AdjacencyScan(benchmark::State& state) {
  MicroEnv& env = Env();
  for (auto _ : state) {
    AdjacencyFileScanner scanner;
    if (!scanner.Open(env.path).ok()) state.SkipWithError("open failed");
    VertexRecord rec;
    bool has_next = false;
    uint64_t sum = 0;
    while (scanner.Next(&rec, &has_next).ok() && has_next) {
      sum += rec.degree;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.graph.NumDirectedEdges()));
}
BENCHMARK(BM_AdjacencyScan)->Unit(benchmark::kMillisecond);

void BM_GreedyScan(benchmark::State& state) {
  MicroEnv& env = Env();
  for (auto _ : state) {
    AlgoResult res;
    if (!RunGreedy(env.path, {}, &res).ok()) {
      state.SkipWithError("greedy failed");
    }
    benchmark::DoNotOptimize(res.set_size);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.graph.NumDirectedEdges()));
}
BENCHMARK(BM_GreedyScan)->Unit(benchmark::kMillisecond);

void BM_ExternalSorter(benchmark::State& state) {
  MicroEnv& env = Env();
  const int64_t records = state.range(0);
  for (auto _ : state) {
    ExternalSorterOptions opts;
    opts.memory_budget_bytes = 1 << 20;
    opts.scratch_dir = env.scratch.path();
    ExternalSorter sorter(opts);
    Random rng(3);
    for (int64_t i = 0; i < records; ++i) {
      uint32_t payload = static_cast<uint32_t>(i);
      if (!sorter.Add(rng.Next64(), &payload, 1).ok()) {
        state.SkipWithError("add failed");
        break;
      }
    }
    if (!sorter.Finish().ok()) state.SkipWithError("finish failed");
    uint64_t key = 0;
    std::vector<uint32_t> payload;
    uint64_t count = 0;
    while (sorter.Next(&key, &payload)) count++;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_ExternalSorter)->Arg(100000)->Arg(500000)
    ->Unit(benchmark::kMillisecond);

void BM_ExternalPriorityQueue(benchmark::State& state) {
  MicroEnv& env = Env();
  const int64_t entries = state.range(0);
  for (auto _ : state) {
    ExternalPriorityQueueOptions opts;
    opts.memory_budget_entries = 1 << 14;
    opts.scratch_dir = env.scratch.path();
    ExternalPriorityQueue pq(opts);
    Random rng(4);
    for (int64_t i = 0; i < entries; ++i) {
      if (!pq.Push(rng.Uniform(1 << 30), 0).ok()) {
        state.SkipWithError("push failed");
        break;
      }
    }
    uint64_t key;
    uint32_t value;
    while (!pq.Empty()) {
      if (!pq.PopMin(&key, &value).ok()) {
        state.SkipWithError("pop failed");
        break;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * entries * 2);
}
BENCHMARK(BM_ExternalPriorityQueue)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semis

BENCHMARK_MAIN();
