// Reproduces Table 2: performance ratio of the GREEDY algorithm by varying
// beta from 1.7 to 2.7, where ratio = Proposition 2 estimate / Algorithm 5
// upper bound averaged over random P(alpha, beta) graphs.
// Paper values: 0.983 - 0.988 across the sweep.
#include <cstdio>

#include "bench_common.h"
#include "core/upper_bound.h"
#include "gen/plrg.h"
#include "theory/greedy_estimate.h"
#include "theory/plrg_model.h"

namespace semis {
namespace bench {
namespace {

int Main() {
  const uint64_t n = SweepVertexCount();
  const int reps = SweepRepetitions();
  PrintBanner("Table 2: greedy performance ratio vs beta",
              "ratio = GR(alpha,beta) [Prop. 2] / Algorithm-5 bound, " +
                  std::to_string(reps) + " graph(s) of " + WithCommas(n) +
                  " vertices per beta (paper: 10 graphs of 10M)");

  TablePrinter table({6, 14, 14, 9, 12});
  table.PrintRow({"beta", "GR (Prop.2)", "bound (Alg.5)", "ratio", "paper"});
  table.PrintRule();
  const double paper_ratio[] = {0.987, 0.986, 0.987, 0.983, 0.983, 0.984,
                                0.986, 0.986, 0.986, 0.988, 0.988};
  int idx = 0;
  for (double beta : SweepBetas()) {
    PlrgModel model = PlrgModel::ForVertexCount(n, beta);
    double estimate = GreedyExpectedSize(model);
    double bound_sum = 0;
    for (int rep = 0; rep < reps; ++rep) {
      Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(n, beta),
                             1000 + idx * 17 + rep);
      bound_sum += static_cast<double>(ComputeIndependenceUpperBound(g));
    }
    double bound = bound_sum / reps;
    char ratio[32], paper[32], est[32], bnd[32], beta_s[16];
    std::snprintf(beta_s, sizeof(beta_s), "%.1f", beta);
    std::snprintf(est, sizeof(est), "%.0f", estimate);
    std::snprintf(bnd, sizeof(bnd), "%.0f", bound);
    std::snprintf(ratio, sizeof(ratio), "%.3f", estimate / bound);
    std::snprintf(paper, sizeof(paper), "%.3f", paper_ratio[idx]);
    table.PrintRow({beta_s, est, bnd, ratio, paper});
    idx++;
  }
  std::printf(
      "\nExpected shape: ratios stay in a narrow band near 0.98 for all\n"
      "beta -- the greedy algorithm is near-optimal on PLR graphs.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace semis

int main() { return semis::bench::Main(); }
