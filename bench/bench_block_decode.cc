// Decode-path benchmark of the zero-copy block pipeline (ISSUE 5): how
// fast a sharded file streams through ManifestOrderedShardCursor's
// arena-backed block ring, and -- the point of the refactor -- how much
// heap allocation the decode hot path performs.
//
// Three decode strategies over the same sharded PLRG:
//   * BM_BlockCursorDecode/T: the block ring with T decoder threads and a
//     persistent RecordBlockPool, i.e. the steady state of a long-running
//     pipeline. Reports records/s plus the ring counters and
//     allocs_per_record.
//   * BM_WholeShardDecode: the RETIRED pre-block strategy (each shard
//     decoded into one freshly allocated flat vector), kept here as the
//     old-vs-new allocation baseline.
//   * BM_SequentialShardDecode: the plain per-record sequential scanner.
// Plus BM_BlockAppendSteadyState, which isolates the block layer and
// aborts (SkipWithError -> nightly gate failure) if a steady-state append
// pass allocates at all: the "zero heap allocations per record" claim,
// enforced in the timing loop.
//
// Allocation counts come from global operator new/delete overrides local
// to this binary; they count every allocation on the calling thread AND
// the decoder threads, so the cursor cannot hide traffic in its workers.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "graph/graph_io.h"
#include "graph/record_block.h"
#include "graph/sharded_adjacency_file.h"
#include "io/env.h"
#include "io/file.h"
#include "io/scratch.h"
#include "util/thread_pool.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace semis {
namespace {

// Vertex count knob: SEMIS_BLOCK_VERTICES (default 200000; ~1.6M directed
// edges at avg degree 8).
uint64_t BenchVertexCount() {
  const char* env = std::getenv("SEMIS_BLOCK_VERTICES");
  if (env != nullptr) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 200000;
}

constexpr uint32_t kNumShards = 16;

// Order-sensitive fold shared by every drain below, so all strategies are
// held to one checksum definition: any reorder, drop, or duplication of a
// record (or a stale copy of this formula) breaks the equality assertion.
void FoldRecord(VertexId id, const VertexId* begin, const VertexId* end,
                uint64_t* position, uint64_t* checksum) {
  *checksum += (++*position) * (id + 1);
  for (const VertexId* p = begin; p != end; ++p) *checksum += *p;
}

struct BlockDecodeEnv {
  BlockDecodeEnv() {
    bench::RequireDefaultIoEnv();
    SEMIS_BENCH_CHECK_OK(ScratchDir::Create("semis-blockbench", &scratch));
    Graph graph = GeneratePlrg(
        PlrgSpec::ForVerticesAndAvgDegree(BenchVertexCount(), 8.0), 987);
    num_vertices = graph.NumVertices();
    directed_edges = graph.NumDirectedEdges();
    std::string mono = scratch.NewFilePath("graph.adj");
    SEMIS_BENCH_CHECK_OK(WriteGraphToAdjacencyFile(graph, mono));
    std::string sorted = scratch.NewFilePath("sorted.sadj");
    SEMIS_BENCH_CHECK_OK(
        BuildDegreeSortedAdjacencyFile(mono, sorted, DegreeSortOptions{}));
    manifest = scratch.NewFilePath("sharded.sadjs");
    SEMIS_BENCH_CHECK_OK(ShardAdjacencyFile(sorted, manifest, kNumShards));
    // Order-sensitive checksum of the reference stream: every strategy
    // below must reproduce it, so a reordering/dropping bug aborts the
    // timing loop instead of producing a fast wrong number.
    reference_checksum = 0;
    ShardedAdjacencyScanner scanner;
    SEMIS_BENCH_CHECK_OK(scanner.Open(manifest));
    VertexRecordView view;
    bool has_next = false;
    uint64_t position = 0;
    while (scanner.Next(&view, &has_next).ok() && has_next) {
      FoldRecord(view.id, view.begin(), view.end(), &position,
                 &reference_checksum);
    }
    std::printf("# bench_block_decode: %llu vertices, %llu directed edges, "
                "%u shards, io seam '%s'\n",
                static_cast<unsigned long long>(num_vertices),
                static_cast<unsigned long long>(directed_edges), kNumShards,
                GetFileSystem()->Name());
  }

  ScratchDir scratch;
  std::string manifest;
  uint64_t num_vertices = 0;
  uint64_t directed_edges = 0;
  uint64_t reference_checksum = 0;
};

BlockDecodeEnv& Env() {
  static BlockDecodeEnv env;
  return env;
}

// The new path: record-granular block ring, persistent block pool.
void BM_BlockCursorDecode(benchmark::State& state) {
  BlockDecodeEnv& env = Env();
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  RecordBlockPool block_pool;  // shared across iterations: steady state
  uint64_t allocs = 0;
  IoStats io;
  for (auto _ : state) {
    ThreadPool pool(threads);
    ManifestOrderedShardCursor cursor(&io);
    BlockRingOptions ring;
    ring.pool = &block_pool;
    Status s = cursor.Open(env.manifest, &pool, ring);
    uint64_t checksum = 0, position = 0;
    if (s.ok()) {
      const uint64_t before = g_allocations.load(std::memory_order_relaxed);
      VertexRecordView view;
      bool has_next = false;
      while (true) {
        s = cursor.Next(&view, &has_next);
        if (!s.ok() || !has_next) break;
        FoldRecord(view.id, view.begin(), view.end(), &position, &checksum);
      }
      allocs += g_allocations.load(std::memory_order_relaxed) - before;
      Status close = cursor.Close();
      if (s.ok()) s = close;
    }
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    if (checksum != env.reference_checksum) {
      state.SkipWithError("block cursor stream differs from the sequential "
                          "sharded scan");
      break;
    }
  }
  const double records = static_cast<double>(state.iterations()) *
                         static_cast<double>(env.num_vertices);
  state.SetItemsProcessed(static_cast<int64_t>(records));
  state.counters["threads"] = threads;
  state.counters["allocs_per_record"] =
      records > 0 ? static_cast<double>(allocs) / records : 0.0;
  state.counters["blocks_decoded"] =
      static_cast<double>(io.blocks_decoded) /
      std::max<int64_t>(state.iterations(), 1);
  state.counters["peak_buffered_bytes"] =
      static_cast<double>(io.peak_buffered_bytes);
  state.counters["arena_bytes"] = static_cast<double>(io.arena_bytes);
}
BENCHMARK(BM_BlockCursorDecode)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The retired pre-block strategy: every shard decoded into one freshly
// allocated flat word vector before the consumer sees a record. Kept as
// the allocation/memory baseline the block ring is diffed against.
void BM_WholeShardDecode(benchmark::State& state) {
  BlockDecodeEnv& env = Env();
  uint64_t allocs = 0;
  size_t peak_shard_bytes = 0;
  for (auto _ : state) {
    ShardedAdjacencyManifest manifest;
    Status s = ReadShardedAdjacencyManifest(env.manifest, &manifest);
    uint64_t checksum = 0, position = 0;
    const uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (uint32_t k = 0; s.ok() && k < manifest.num_shards(); ++k) {
      std::vector<VertexId> words;  // fresh per shard, like the old slots
      AdjacencyShardReader reader;
      s = reader.Open(env.manifest, manifest, k);
      VertexRecordView view;
      bool has_next = false;
      while (s.ok()) {
        s = reader.Next(&view, &has_next);
        if (!s.ok() || !has_next) break;
        words.push_back(view.id);
        words.push_back(view.degree);
        words.insert(words.end(), view.begin(), view.end());
      }
      if (s.ok()) s = reader.Close();
      peak_shard_bytes =
          std::max(peak_shard_bytes, words.size() * sizeof(VertexId));
      for (size_t i = 0; i < words.size();) {
        const uint32_t degree = words[i + 1];
        FoldRecord(words[i], words.data() + i + 2,
                   words.data() + i + 2 + degree, &position, &checksum);
        i += 2 + degree;
      }
    }
    allocs += g_allocations.load(std::memory_order_relaxed) - before;
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    if (checksum != env.reference_checksum) {
      state.SkipWithError("whole-shard decode differs from the sequential "
                          "sharded scan");
      break;
    }
  }
  const double records = static_cast<double>(state.iterations()) *
                         static_cast<double>(env.num_vertices);
  state.SetItemsProcessed(static_cast<int64_t>(records));
  state.counters["allocs_per_record"] =
      records > 0 ? static_cast<double>(allocs) / records : 0.0;
  state.counters["peak_buffered_bytes"] =
      static_cast<double>(peak_shard_bytes);
}
BENCHMARK(BM_WholeShardDecode)->Unit(benchmark::kMillisecond)->UseRealTime();

// The plain per-record sequential scanner, for the throughput column.
void BM_SequentialShardDecode(benchmark::State& state) {
  BlockDecodeEnv& env = Env();
  uint64_t allocs = 0;
  for (auto _ : state) {
    ShardedAdjacencyScanner scanner;
    Status s = scanner.Open(env.manifest);
    uint64_t checksum = 0, position = 0;
    const uint64_t before = g_allocations.load(std::memory_order_relaxed);
    if (s.ok()) {
      VertexRecordView view;
      bool has_next = false;
      while (true) {
        s = scanner.Next(&view, &has_next);
        if (!s.ok() || !has_next) break;
        FoldRecord(view.id, view.begin(), view.end(), &position, &checksum);
      }
    }
    allocs += g_allocations.load(std::memory_order_relaxed) - before;
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
    if (checksum != env.reference_checksum) {
      state.SkipWithError("sequential scan checksum unstable across runs");
      break;
    }
  }
  const double records = static_cast<double>(state.iterations()) *
                         static_cast<double>(env.num_vertices);
  state.SetItemsProcessed(static_cast<int64_t>(records));
  state.counters["allocs_per_record"] =
      records > 0 ? static_cast<double>(allocs) / records : 0.0;
}
BENCHMARK(BM_SequentialShardDecode)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The block layer in isolation: appending records to a pooled block must
// allocate NOTHING once the arena has grown to size. The assertion runs
// inside the timing loop, so a regression fails the nightly gate.
void BM_BlockAppendSteadyState(benchmark::State& state) {
  constexpr uint32_t kRecords = 4096;
  constexpr uint32_t kDegree = 8;
  RecordBlockPool pool;
  {
    // Warm-up pass grows the arena to its steady-state capacity.
    RecordBlock block = pool.Acquire();
    for (uint32_t r = 0; r < kRecords; ++r) {
      VertexId* dst = block.BeginRecord(r, kDegree);
      for (uint32_t j = 0; j < kDegree; ++j) dst[j] = r + j;
      block.CommitRecord();
    }
    pool.Release(std::move(block));
  }
  for (auto _ : state) {
    const uint64_t before = g_allocations.load(std::memory_order_relaxed);
    RecordBlock block = pool.Acquire();
    uint64_t checksum = 0;
    for (uint32_t r = 0; r < kRecords; ++r) {
      VertexId* dst = block.BeginRecord(r, kDegree);
      for (uint32_t j = 0; j < kDegree; ++j) dst[j] = r + j;
      block.CommitRecord();
      checksum += block.view(r).neighbor(0);
    }
    benchmark::DoNotOptimize(checksum);
    pool.Release(std::move(block));
    const uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - before;
    if (allocs != 0) {
      state.SkipWithError("steady-state block append allocated");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * kRecords);
  state.counters["allocs_per_record"] = 0.0;
}
BENCHMARK(BM_BlockAppendSteadyState)->Unit(benchmark::kMicrosecond);

// The I/O seam in isolation (ISSUE 10): streaming a shard through
// SequentialFileReader -- now one virtual FileSystem dispatch per buffer
// fill -- must stay allocation-free in steady state. The seam may cost a
// branch and an indirect call, never a heap allocation; the assertion
// runs inside the timing loop like BM_BlockAppendSteadyState above.
void BM_SeamReadSteadyState(benchmark::State& state) {
  BlockDecodeEnv& env = Env();
  const std::string shard0 = env.manifest + ".shard0";
  std::vector<char> chunk(64 * 1024);
  uint64_t total_bytes = 0;
  for (auto _ : state) {
    SequentialFileReader reader;
    Status s = reader.Open(shard0);
    uint64_t fold = 0;
    if (s.ok()) {
      const uint64_t before = g_allocations.load(std::memory_order_relaxed);
      size_t got = 0;
      do {
        s = reader.Read(chunk.data(), chunk.size(), &got);
        if (got > 0) {
          total_bytes += got;
          fold += static_cast<unsigned char>(chunk[got - 1]);
        }
      } while (s.ok() && got == chunk.size());
      const uint64_t allocs =
          g_allocations.load(std::memory_order_relaxed) - before;
      if (s.ok() && allocs != 0) {
        state.SkipWithError("steady-state seam read allocated");
        break;
      }
      Status close = reader.Close();
      if (s.ok()) s = close;
    }
    benchmark::DoNotOptimize(fold);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      break;
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(total_bytes));
  state.counters["allocs_per_read"] = 0.0;
}
BENCHMARK(BM_SeamReadSteadyState)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace semis

BENCHMARK_MAIN();
