// MisEngine epoch-publication benchmark (ISSUE 6 "resident engine with
// epoch-snapshot publication"): the cost of the reader and publisher
// sides of the RCU path.
//
//   BM_SnapshotAcquire   Snapshot() acquisitions/sec on the reader side
//                        while a mutator thread continuously runs
//                        apply -> repair -> publish cycles underneath --
//                        the "snapshots never block on mutation" claim,
//                        measured. The published-epoch counter proves the
//                        mutator actually made progress during the run.
//   BM_EpochCycle        epochs/sec of the full mutate -> publish cycle
//                        (apply one batch, repair, publish), the
//                        sustained rate at which the engine can turn an
//                        update stream into served epochs. The delta is
//                        force-compacted between iterations (outside the
//                        timing) so every cycle sees exactly `batch`
//                        pending entries.
//
// Both benches run on a sharded PLRG (SEMIS_ENGINE_VERTICES knob,
// default 100000) with the engine adopting a greedy initial set, so no
// solve cost pollutes the numbers.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/parallel_greedy.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "graph/graph_io.h"
#include "graph/sharded_adjacency_file.h"
#include "io/scratch.h"
#include "util/bit_vector.h"
#include "util/random.h"

namespace semis {
namespace {

uint64_t BenchVertexCount() {
  const char* env = std::getenv("SEMIS_ENGINE_VERTICES");
  if (env != nullptr) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 100000;
}

constexpr uint32_t kNumShards = 16;

struct EngineEnv {
  EngineEnv() {
    SEMIS_BENCH_CHECK_OK(ScratchDir::Create("semis-enginebench", &scratch));
    Graph graph = GeneratePlrg(
        PlrgSpec::ForVerticesAndAvgDegree(BenchVertexCount(), 8.0), 777);
    num_vertices = graph.NumVertices();
    std::string mono = scratch.NewFilePath("graph.adj");
    SEMIS_BENCH_CHECK_OK(WriteGraphToAdjacencyFile(graph, mono));
    sorted_path = scratch.NewFilePath("sorted.sadj");
    SEMIS_BENCH_CHECK_OK(BuildDegreeSortedAdjacencyFile(mono, sorted_path,
                                         DegreeSortOptions{}));
    std::printf(
        "# bench_engine_snapshot: %llu vertices, %u shards, "
        "%u hardware threads\n",
        static_cast<unsigned long long>(num_vertices), kNumShards,
        std::thread::hardware_concurrency());
  }

  // Fresh sharded copy + initial greedy set (the engine's mutation arm
  // writes SDELTA logs next to the shards, so runs must not share them).
  bool NewShardedCopy(std::string* manifest, BitVector* initial) {
    *manifest = scratch.NewFilePath("engine.sadjs");
    if (!ShardAdjacencyFile(sorted_path, *manifest, kNumShards).ok()) {
      return false;
    }
    AlgoResult greedy;
    ParallelGreedyOptions opts;
    if (!RunParallelGreedy(*manifest, opts, &greedy).ok()) return false;
    *initial = std::move(greedy.in_set);
    return true;
  }

  ScratchDir scratch;
  std::string sorted_path;
  uint64_t num_vertices = 0;
};

EngineEnv& Env() {
  static EngineEnv env;
  return env;
}

void MakeBatch(Random* rng, uint64_t n,
               std::vector<std::pair<VertexId, VertexId>>* live,
               std::vector<EdgeUpdate>* out, size_t batch) {
  out->clear();
  for (size_t i = 0; i < batch; ++i) {
    if (live->empty() || rng->OneIn(0.55)) {
      VertexId u = static_cast<VertexId>(rng->Uniform(n));
      VertexId v = static_cast<VertexId>(rng->Uniform(n));
      if (u == v) v = (v + 1) % static_cast<VertexId>(n);
      out->push_back(EdgeUpdate::Insert(u, v));
      live->emplace_back(u, v);
    } else {
      size_t idx = static_cast<size_t>(rng->Uniform(live->size()));
      auto [u, v] = (*live)[idx];
      (*live)[idx] = live->back();
      live->pop_back();
      out->push_back(EdgeUpdate::Delete(u, v));
    }
  }
}

void BM_SnapshotAcquire(benchmark::State& state) {
  EngineEnv& env = Env();
  std::string manifest;
  BitVector initial;
  if (!env.NewShardedCopy(&manifest, &initial)) {
    state.SkipWithError("sharded copy setup failed");
    return;
  }
  MisEngineOptions opts;
  opts.pipeline.num_threads = static_cast<uint32_t>(state.range(0));
  // Keep the pending delta bounded however long the reader loop runs.
  opts.pipeline.compact_threshold_entries = 65536;
  MisEngine engine(opts);
  if (!engine.OpenSharded(manifest, initial).ok()) {
    state.SkipWithError("OpenSharded failed");
    return;
  }
  if (!engine.Prepare().ok()) {
    state.SkipWithError("Prepare failed");
    return;
  }

  // Mutator thread: continuous apply -> repair -> publish underneath the
  // measured reader. Mutating calls are serialized on this one thread,
  // as the engine's threading contract requires.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> published{0};
  std::thread mutator([&] {
    Random rng(2026);
    std::vector<std::pair<VertexId, VertexId>> live;
    std::vector<EdgeUpdate> updates;
    while (!stop.load(std::memory_order_relaxed)) {
      MakeBatch(&rng, env.num_vertices, &live, &updates, 512);
      Status s = engine.ApplyBatch(updates);
      if (s.ok()) s = engine.Repair();
      if (!s.ok()) break;
      engine.Publish();
      published.fetch_add(1, std::memory_order_relaxed);
    }
  });

  uint64_t last_epoch = 0;
  for (auto _ : state) {
    EpochSnapshotRef snap = engine.Snapshot();
    benchmark::DoNotOptimize(snap);
    last_epoch = snap->epoch();
  }
  stop.store(true, std::memory_order_relaxed);
  mutator.join();

  state.SetItemsProcessed(state.iterations());
  state.counters["mutator_threads"] = static_cast<double>(state.range(0));
  state.counters["epochs_published"] =
      static_cast<double>(published.load());
  state.counters["last_epoch"] = static_cast<double>(last_epoch);
}
BENCHMARK(BM_SnapshotAcquire)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime();

void BM_EpochCycle(benchmark::State& state) {
  EngineEnv& env = Env();
  const size_t batch = static_cast<size_t>(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));
  std::string manifest;
  BitVector initial;
  if (!env.NewShardedCopy(&manifest, &initial)) {
    state.SkipWithError("sharded copy setup failed");
    return;
  }
  MisEngineOptions opts;
  opts.pipeline.num_threads = threads;
  MisEngine engine(opts);
  if (!engine.OpenSharded(manifest, initial).ok()) {
    state.SkipWithError("OpenSharded failed");
    return;
  }

  Random rng(4242);
  std::vector<std::pair<VertexId, VertexId>> live;
  std::vector<EdgeUpdate> updates;
  for (auto _ : state) {
    state.PauseTiming();
    MakeBatch(&rng, env.num_vertices, &live, &updates, batch);
    state.ResumeTiming();
    Status s = engine.ApplyBatch(updates);
    if (s.ok()) s = engine.Repair();
    EpochSnapshotRef snap;
    if (s.ok()) snap = engine.Publish();
    benchmark::DoNotOptimize(snap);
    state.PauseTiming();
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      state.ResumeTiming();
      break;
    }
    // Bound the pending delta so every cycle repairs exactly `batch`
    // entries (same discipline as bench_incremental_stream).
    s = engine.Compact(/*force=*/true);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      state.ResumeTiming();
      break;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
  state.counters["threads"] = threads;
  state.counters["batch"] = static_cast<double>(batch);
  EpochSnapshotRef last = engine.Snapshot();
  if (last != nullptr) {
    state.counters["set_size"] = static_cast<double>(last->set_size());
    state.counters["epochs"] = static_cast<double>(last->epoch());
  }
}
BENCHMARK(BM_EpochCycle)
    ->ArgsProduct({{1024, 8192}, {1, 2}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace semis

BENCHMARK_MAIN();
