// Reproduces Table 6: running time and memory cost of each algorithm on
// every dataset. Expected shape (paper):
//   * GREEDY is the fastest and uses ~1 byte/vertex,
//   * the swap algorithms use a few words per vertex -- orders of
//     magnitude below the graph size,
//   * DYNAMICUPDATE needs the whole mutable graph in memory (large), and
//     is N/A on the big graphs,
//   * the external baseline's memory is only its queue buffer.
// Absolute times differ from the paper (different machine); the ordering
// and the memory ratios are the reproducible part.
#include <cstdio>

#include "bench_common.h"
#include "util/memory_tracker.h"

namespace semis {
namespace bench {
namespace {

int Main() {
  PrintBanner("Table 6: time and memory cost per algorithm",
              "memory = logical bytes of algorithm-owned structures "
              "(MemoryTracker), the paper's accounting");

  TablePrinter time_table({10, 10, 10, 10, 10, 10});
  std::printf("\n-- time --\n");
  time_table.PrintRow({"dataset", "DU", "STXXL", "Greedy", "One-k", "Two-k"});
  time_table.PrintRule();

  std::vector<SuiteResult> suites;
  for (const DatasetSpec& spec : PaperDatasets()) {
    SuiteSelection sel;
    sel.baseline_chain = false;  // Table 6 reports the greedy chain
    SuiteResult suite;
    Status s = RunSuite(spec, sel, &suite);
    if (!s.ok()) {
      std::fprintf(stderr, "suite failed for %s: %s\n", spec.name.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    time_table.PrintRow(
        {spec.name,
         suite.ran_dynamic_update ? FormatSeconds(suite.dynamic_update.seconds)
                                  : "N/A",
         FormatSeconds(suite.stxxl.seconds),
         FormatSeconds(suite.greedy.seconds),
         FormatSeconds(suite.one_k_greedy.seconds),
         FormatSeconds(suite.two_k_greedy.seconds)});
    suites.push_back(std::move(suite));
  }

  std::printf("\n-- memory --\n");
  TablePrinter mem_table({10, 11, 11, 11, 11, 11, 12});
  mem_table.PrintRow({"dataset", "DU", "STXXL", "Greedy", "One-k", "Two-k",
                      "graph-on-disk"});
  mem_table.PrintRule();
  size_t i = 0;
  for (const DatasetSpec& spec : PaperDatasets()) {
    const SuiteResult& s = suites[i++];
    uint64_t disk = 0;
    SEMIS_BENCH_CHECK_OK(GetFileSize(s.files.adjacency_path, &disk));
    mem_table.PrintRow(
        {spec.name,
         s.ran_dynamic_update
             ? MemoryTracker::FormatBytes(s.dynamic_update.peak_memory_bytes)
             : "N/A",
         MemoryTracker::FormatBytes(s.stxxl.peak_memory_bytes),
         MemoryTracker::FormatBytes(s.greedy.peak_memory_bytes),
         MemoryTracker::FormatBytes(s.one_k_greedy.peak_memory_bytes),
         MemoryTracker::FormatBytes(s.two_k_greedy.peak_memory_bytes),
         MemoryTracker::FormatBytes(disk)});
  }

  std::printf("\n-- I/O (sequential scans: greedy / one-k / two-k) --\n");
  i = 0;
  for (const DatasetSpec& spec : PaperDatasets()) {
    const SuiteResult& s = suites[i++];
    std::printf("%-10s  %3llu / %3llu / %3llu scans, %s read by two-k\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(s.greedy.io.sequential_scans),
                static_cast<unsigned long long>(
                    s.one_k_greedy.io.sequential_scans),
                static_cast<unsigned long long>(
                    s.two_k_greedy.io.sequential_scans),
                MemoryTracker::FormatBytes(s.two_k_greedy.io.bytes_read)
                    .c_str());
  }
  std::printf(
      "\nExpected shape: semi-external memory is a tiny fraction of the\n"
      "on-disk graph (the paper's 469MB-for-1.57GB headline), while the\n"
      "in-memory baseline exceeds the graph size or is N/A.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace semis

int main() { return semis::bench::Main(); }
