// Reproduces Figure 9: TWO-K-SWAP's independent-set size against the
// Algorithm 5 optimal bound on every dataset (log-scale bars in the
// paper). Expected shape: two-k reaches ~96-99% of the bound everywhere.
#include <cstdio>

#include "bench_common.h"

namespace semis {
namespace bench {
namespace {

int Main() {
  PrintBanner("Figure 9: two-k-swap vs the optimal bound per dataset",
              "bound = Algorithm 5 (appendix) on the degree-sorted file");

  TablePrinter table({10, 14, 14, 9});
  table.PrintRow({"dataset", "two-k-swap", "optimal bound", "ratio"});
  table.PrintRule();
  double min_ratio = 1.0;
  for (const DatasetSpec& spec : PaperDatasets()) {
    SuiteSelection sel;
    sel.dynamic_update = false;
    sel.stxxl = false;
    sel.baseline_chain = false;
    SuiteResult s;
    Status st = RunSuite(spec, sel, &s);
    if (!st.ok()) {
      std::fprintf(stderr, "suite failed for %s: %s\n", spec.name.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    double ratio = static_cast<double>(s.two_k_greedy.set_size) /
                   static_cast<double>(s.upper_bound);
    if (ratio < min_ratio) min_ratio = ratio;
    char ratio_s[16];
    std::snprintf(ratio_s, sizeof(ratio_s), "%.4f", ratio);
    table.PrintRow({spec.name, WithCommas(s.two_k_greedy.set_size),
                    WithCommas(s.upper_bound), ratio_s});
  }
  std::printf(
      "\nworst ratio: %.4f (paper: ~0.96 on Twitter-like graphs, ~0.99 on\n"
      "the sparser datasets).\n",
      min_ratio);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace semis

int main() { return semis::bench::Main(); }
