// Reproduces Table 8: swapped vertices in the first three rounds of
// ONE-K-SWAP and the fraction of the total gain they capture ("early
// stop"). Expected shape (paper): >= ~90% of the gain lands in round 1
// and >= ~97% within three rounds on every dataset.
#include <cstdio>

#include "bench_common.h"

namespace semis {
namespace bench {
namespace {

int Main() {
  PrintBanner("Table 8: early-stop behaviour of one-k-swap",
              "new IS vertices after rounds 1-3 and their share of the "
              "converged gain");

  TablePrinter table({10, 12, 9, 12, 9, 12, 9, 10, 10});
  table.PrintRow({"dataset", "round1", "%", "round2", "%", "round3", "%",
                  "1k time", "2k time"});
  table.PrintRule();
  for (const DatasetSpec& spec : PaperDatasets()) {
    SuiteSelection sel;
    sel.dynamic_update = false;
    sel.stxxl = false;
    sel.baseline_chain = false;
    sel.upper_bound = false;
    SuiteResult s;
    Status st = RunSuite(spec, sel, &s);
    if (!st.ok()) {
      std::fprintf(stderr, "suite failed for %s: %s\n", spec.name.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    const uint64_t total_gain =
        s.one_k_greedy.set_size - s.greedy.set_size;
    uint64_t cumulative = 0;
    std::vector<std::string> row = {spec.name};
    for (int r = 0; r < 3; ++r) {
      if (r < static_cast<int>(s.one_k_greedy.round_stats.size())) {
        const RoundStats& rs = s.one_k_greedy.round_stats[r];
        cumulative += rs.new_is_vertices - rs.removed_is_vertices;
      }
      char pct[16];
      if (total_gain == 0) {
        std::snprintf(pct, sizeof(pct), "100%%");
      } else {
        std::snprintf(pct, sizeof(pct), "%.2f%%",
                      100.0 * static_cast<double>(cumulative) /
                          static_cast<double>(total_gain));
      }
      row.push_back(WithCommas(cumulative));
      row.push_back(pct);
    }
    row.push_back(FormatSeconds(s.one_k_greedy.seconds));
    row.push_back(FormatSeconds(s.two_k_greedy.seconds));
    table.PrintRow(row);
  }
  std::printf(
      "\nExpected shape: the third-round column reaches ~97-100%% of the\n"
      "converged gain on every dataset, justifying the paper's early-stop\n"
      "recommendation (stop after 3 rounds).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace semis

int main() { return semis::bench::Main(); }
