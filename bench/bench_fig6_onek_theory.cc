// Reproduces Figure 6: the analytical performance ratio of one round of
// ONE-K-SWAP (Proposition 5) on top of GREEDY (Proposition 2), varying
// beta from 1.7 to 2.7. Paper: the curve sits at or above ~0.995 --
// roughly 1-1.5% above the greedy-only ratio of Table 2.
#include <cstdio>

#include "bench_common.h"
#include "core/upper_bound.h"
#include "gen/plrg.h"
#include "theory/greedy_estimate.h"
#include "theory/plrg_model.h"
#include "theory/swap_estimate.h"

namespace semis {
namespace bench {
namespace {

int Main() {
  const uint64_t n = SweepVertexCount();
  const int reps = SweepRepetitions();
  PrintBanner("Figure 6: one-k-swap analytical ratio vs beta",
              "ratio = (GR + SG) [Props. 2+5] / Algorithm-5 bound at " +
                  WithCommas(n) + " vertices");

  TablePrinter table({6, 14, 12, 10, 12, 12});
  table.PrintRow(
      {"beta", "GR", "SG (Prop.5)", "ds", "greedy-ratio", "one-k ratio"});
  table.PrintRule();
  for (double beta : SweepBetas()) {
    PlrgModel model = PlrgModel::ForVertexCount(n, beta);
    double gr = GreedyExpectedSize(model);
    double sg = OneKSwapExpectedGain(model);
    double ds = SwapDegreeLimit(model);
    double bound_sum = 0;
    for (int rep = 0; rep < reps; ++rep) {
      Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(n, beta),
                             2000 + static_cast<uint64_t>(beta * 100) + rep);
      bound_sum += static_cast<double>(ComputeIndependenceUpperBound(g));
    }
    double bound = bound_sum / reps;
    char row[6][32];
    std::snprintf(row[0], 32, "%.1f", beta);
    std::snprintf(row[1], 32, "%.0f", gr);
    std::snprintf(row[2], 32, "%.0f", sg);
    std::snprintf(row[3], 32, "%.1f", ds);
    std::snprintf(row[4], 32, "%.4f", gr / bound);
    std::snprintf(row[5], 32, "%.4f", (gr + sg) / bound);
    table.PrintRow({row[0], row[1], row[2], row[3], row[4], row[5]});
  }
  std::printf(
      "\nExpected shape: the one-k column exceeds the greedy column for\n"
      "every beta (the paper's ~1%% margin, Figure 6 vs Table 2).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace semis

int main() { return semis::bench::Main(); }
