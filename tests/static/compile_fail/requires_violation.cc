// Copyright (c) the semis authors.
// MUST NOT COMPILE under clang -Wthread-safety -Werror: calling an
// EXCLUDES(mu_) function while already holding mu_ (the self-deadlock
// the annotation exists to prevent), and calling a REQUIRES(mu_)
// function without the lock.
#include "util/thread_annotations.h"

namespace {

class Engine {
 public:
  void Publish() EXCLUDES(mu_) {
    semis::MutexLock lock(&mu_);
    epoch_++;
  }

  void PublishTwice() EXCLUDES(mu_) {
    semis::MutexLock lock(&mu_);
    Publish();  // -Wthread-safety: Publish() excludes mu_, which is held
  }

  void BumpLocked() REQUIRES(mu_) { epoch_++; }

  void BumpUnlocked() EXCLUDES(mu_) {
    BumpLocked();  // -Wthread-safety: BumpLocked() requires mu_
  }

 private:
  semis::Mutex mu_;
  int epoch_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Engine e;
  e.PublishTwice();
  e.BumpUnlocked();
  return 0;
}
