// Copyright (c) the semis authors.
// MUST NOT COMPILE under clang -Wthread-safety -Werror: a GUARDED_BY
// member read and written without holding its mutex.
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    count_++;  // -Wthread-safety: writing count_ requires holding mu_
  }

  int Get() const {
    return count_;  // -Wthread-safety: reading count_ requires holding mu_
  }

 private:
  mutable semis::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Get();
}
