// Copyright (c) the semis authors.
// MUST NOT COMPILE (-Werror=unused-result): a StatusOr<T> return dropped
// on the floor, which loses both the value and the error.
#include "util/status.h"

namespace {

semis::StatusOr<int> MightReturn() { return 7; }

void Oops() {
  MightReturn();  // naked discard -- the [[nodiscard]] contract fires here
}

}  // namespace

int main() {
  Oops();
  return 0;
}
