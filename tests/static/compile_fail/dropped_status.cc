// Copyright (c) the semis authors.
// MUST NOT COMPILE (-Werror=unused-result): a Status return dropped on
// the floor. The fix is to propagate it (SEMIS_RETURN_IF_ERROR), check
// it, or call .IgnoreError() with a justification.
#include "util/status.h"

namespace {

semis::Status MightFail() { return semis::Status::IOError("disk on fire"); }

void Oops() {
  MightFail();  // naked discard -- the [[nodiscard]] contract fires here
}

}  // namespace

int main() {
  Oops();
  return 0;
}
