// Copyright (c) the semis authors.
// Positive control for the compile-contract harness: correct use of the
// Status and thread-annotation vocabulary. This file must compile under
// the same flags that make the sibling violation files fail; if it stops
// compiling, the harness is broken (bad include path, flag typo), not
// the contracts.
#include <utility>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace {

semis::Status MightFail() { return semis::Status::OK(); }

semis::StatusOr<int> MightReturn() { return 42; }

semis::Status ConsumeEverything() {
  SEMIS_RETURN_IF_ERROR(MightFail());
  int value = 0;
  SEMIS_ASSIGN_OR_RETURN(value, MightReturn());
  (void)value;
  MightFail().IgnoreError();  // the sanctioned escape hatch
  return semis::Status::OK();
}

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    semis::MutexLock lock(&mu_);
    count_++;
  }

  int Get() const EXCLUDES(mu_) {
    semis::MutexLock lock(&mu_);
    return count_;
  }

 private:
  mutable semis::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

int UseAll() {
  ConsumeEverything().IgnoreError();
  Counter c;
  c.Increment();
  return c.Get();
}

}  // namespace

int main() { return UseAll() == 1 ? 0 : 1; }
