#!/usr/bin/env bash
# Kill-point recovery fuzz harness for the epoch-journaled shard store.
#
#   crash_recovery_test.sh <path-to-semis_cli>
#
# For every crash site in the commit protocol (SEMIS_CRASH_POINT=<n>
# kills the n-th site reached -- see src/util/crash_point.h), run
# `semis_cli update --stream ... --compact --resort` until it dies at
# that site, then prove the survivor state recovers:
#
#   1. `fsck --gc` must exit 0 (root resolves, epoch validates, the
#      fallback -- if any -- is made durable, orphans are collected);
#   2. an empty-stream `update --verify` must serve EXACTLY the set the
#      uncrashed pipeline produces (the commit protocol is storage-only:
#      every crash point sits after the full stream was logged durably,
#      so the maintained set is checkpoint-independent);
#   3. a second `fsck` must report zero orphaned files.
#
# The sweep walks n = 1, 2, ... until a run survives (exit 0), so new
# crash sites are covered automatically; MAX_POINTS only bounds runaway.
#
# Environment knobs (the nightly sweep widens all three):
#   CRASH_SEEDS        graph seeds, space-separated        (default "7")
#   CRASH_GEOMS        "shards:threads" pairs              (default "1:1 3:2")
#   MAX_POINTS         sweep upper bound per geometry      (default 64)
#   CRASH_SCRATCH_DIR  scratch root; kept (not deleted) when set, so CI
#                      can upload the tree of a failing sweep
set -u

CLI="$1"

if [ -n "${CRASH_SCRATCH_DIR:-}" ]; then
  work="$CRASH_SCRATCH_DIR"
  mkdir -p "$work"
else
  work="$(mktemp -d "${TMPDIR:-/tmp}/semis-crash.XXXXXX")"
  trap 'rm -rf "$work"' EXIT
fi

SEEDS="${CRASH_SEEDS:-7}"
GEOMS="${CRASH_GEOMS:-1:1 3:2}"
MAX_POINTS="${MAX_POINTS:-64}"

fail() {
  echo "FAIL: $*" >&2
  echo "FAIL: scratch tree: $work" >&2
  exit 1
}

# The update stream: inserts and deletes that change degrees, so the
# forced compaction clears the degree-sorted flag and --resort has a
# re-sort to publish (maximizing the crash sites a sweep visits).
cat > "$work/updates.txt" <<'EOF'
+ 0 1999
+ 1 1998
+ 2 1997
- 0 1999
+ 5 1500
+ 7 8
+ 100 200
+ 3 1996
- 7 8
+ 11 1200
EOF
# Recovery applies no updates: it must serve what the store committed.
printf '# empty recovery stream\n' > "$work/empty.txt"

total_crashes=0
for seed in $SEEDS; do
  "$CLI" generate --vertices 2000 --avg-degree 4 --seed "$seed" \
      --out "$work/g$seed.adj" >/dev/null || fail "generate (seed $seed)"
  "$CLI" sort "$work/g$seed.adj" "$work/g$seed.sadj" --memory-mb 8 \
      >/dev/null || fail "sort (seed $seed)"

  for geom in $GEOMS; do
    shards="${geom%%:*}"
    threads="${geom##*:}"
    ctx="seed=$seed shards=$shards threads=$threads"
    pristine="$work/p_${seed}_${shards}.sadjs"
    if [ ! -e "$pristine" ]; then
      "$CLI" shard "$work/g$seed.sadj" "$pristine" --shards "$shards" \
          >/dev/null || fail "shard ($ctx)"
    fi

    # Uncrashed golden: the maintained set after stream + compact +
    # re-sort. Byte-compared against every recovery below.
    golden_store="$work/golden_${seed}_${shards}_${threads}.sadjs"
    cp "$pristine" "$golden_store"
    for f in "$pristine".shard*; do
      cp "$f" "$golden_store${f#"$pristine"}"
    done
    "$CLI" update "$golden_store" --stream "$work/updates.txt" --batch 3 \
        --threads "$threads" --compact --resort --verify \
        --out "$work/golden_${seed}_${shards}_${threads}.txt" >/dev/null \
        || fail "uncrashed golden run ($ctx)"

    survived=""
    for n in $(seq 1 "$MAX_POINTS"); do
      run="$work/run_${seed}_${shards}_${threads}_$n"
      store="$run/s.sadjs"
      mkdir -p "$run"
      cp "$pristine" "$store"
      for f in "$pristine".shard*; do
        cp "$f" "$store${f#"$pristine"}"
      done

      SEMIS_CRASH_POINT="$n" "$CLI" update "$store" \
          --stream "$work/updates.txt" --batch 3 --threads "$threads" \
          --compact --resort --out "$run/out.txt" \
          >"$run/run.log" 2>"$run/run.err"
      status=$?
      if [ "$status" -eq 0 ]; then
        # Sweep exhausted: n-1 sites exist on this command line.
        survived="$n"
        rm -rf "$run"
        break
      fi
      [ "$status" -eq 137 ] \
          || fail "crash point $n exited $status, want 137 ($ctx)"
      grep -q "SEMIS_CRASH_POINT $n: dying at site" "$run/run.err" \
          || fail "crash point $n died without announcing its site ($ctx)"
      total_crashes=$((total_crashes + 1))

      # Recovery step 1: fsck repairs the root and collects orphans.
      "$CLI" fsck "$store" --gc >"$run/fsck.log" 2>&1 \
          || fail "fsck --gc failed after crash point $n ($ctx)"
      # Recovery step 2: the served set is exactly the golden set.
      "$CLI" update "$store" --stream "$work/empty.txt" --compact --verify \
          --threads "$threads" --out "$run/rec.txt" \
          >"$run/rec.log" 2>&1 \
          || fail "recovery update failed after crash point $n ($ctx)"
      cmp -s "$run/rec.txt" \
          "$work/golden_${seed}_${shards}_${threads}.txt" \
          || fail "recovered set differs from golden at crash point $n ($ctx)"
      # Recovery step 3: nothing was left behind.
      "$CLI" fsck "$store" >"$run/fsck2.log" 2>&1 \
          || fail "post-recovery fsck failed at crash point $n ($ctx)"
      grep -q "no orphaned files" "$run/fsck2.log" \
          || fail "orphans survived recovery at crash point $n ($ctx)"
      rm -rf "$run"
    done
    [ -n "$survived" ] \
        || fail "sweep hit MAX_POINTS=$MAX_POINTS without surviving ($ctx)"
    echo "swept $((survived - 1)) crash points ($ctx)"
  done
done

# A sweep that never actually killed anything proves nothing -- guard
# against the instrumentation rotting away.
[ "$total_crashes" -gt 0 ] || fail "no crash point ever fired"

echo "PASS: $total_crashes crash states recovered"
