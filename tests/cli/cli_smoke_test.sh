#!/usr/bin/env bash
# End-to-end smoke test for semis_cli, registered with CTest.
#
#   cli_smoke_test.sh <path-to-semis_cli>
#
# Covers the usage exit-code contract (bad usage -> non-zero, --help -> 0)
# and the full pipeline: generate -> convert -> sort -> solve --verify.
set -u

CLI="$1"
work="$(mktemp -d "${TMPDIR:-/tmp}/semis-cli-smoke.XXXXXX")"
trap 'rm -rf "$work"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# --- usage exit codes and streams ------------------------------------------
"$CLI" >/dev/null 2>&1 && fail "no-argument invocation exited 0"
"$CLI" frobnicate >/dev/null 2>&1 && fail "unknown command exited 0"
"$CLI" solve >/dev/null 2>&1 && fail "solve with no input exited 0"
"$CLI" generate >/dev/null 2>&1 && fail "generate with no flags exited 0"
"$CLI" --help >/dev/null 2>&1 || fail "--help exited non-zero"
"$CLI" help >/dev/null 2>&1 || fail "help exited non-zero"
"$CLI" solve --help >/dev/null 2>&1 || fail "solve --help exited non-zero"
# Help goes to stdout; usage-on-error goes to stderr only.
[ -n "$("$CLI" --help 2>/dev/null)" ] || fail "--help printed nothing on stdout"
[ -z "$("$CLI" frobnicate 2>/dev/null)" ] || fail "usage error wrote to stdout"
[ -n "$("$CLI" frobnicate 2>&1 >/dev/null)" ] || fail "usage error silent on stderr"

# --- pipeline on a generated PLRG graph ------------------------------------
set -e
"$CLI" generate --vertices 2000 --avg-degree 4 --seed 7 --out "$work/g.adj"
"$CLI" stats "$work/g.adj"
"$CLI" bound "$work/g.adj"
"$CLI" sort "$work/g.adj" "$work/g.sadj" --memory-mb 8
"$CLI" solve "$work/g.sadj" --algo twok --verify --out "$work/set.txt"
[ -s "$work/set.txt" ] || fail "solve --out produced an empty member list"

# --- sharded / parallel path ------------------------------------------------
"$CLI" shard "$work/g.sadj" "$work/g.sadjs" --shards 4
[ -s "$work/g.sadjs" ] || fail "shard produced no manifest"
[ -s "$work/g.sadjs.shard0" ] || fail "shard produced no shard files"
"$CLI" solve "$work/g.sadj" --algo twok --shards 4 --threads 2 --verify \
    --stats --out "$work/set_par.txt" > "$work/solve_par.log" \
    || fail "parallel solve exited non-zero"
[ -s "$work/set_par.txt" ] || fail "parallel solve produced an empty list"
# --stats must surface the block-decode pipeline counters with real
# (non-zero) decode traffic on the sharded path.
grep -q "decode pipeline: " "$work/solve_par.log" \
    || fail "solve --stats printed no decode pipeline line"
grep -q "block ring     : 0 blocks" "$work/solve_par.log" \
    && fail "sharded solve --stats reported zero decoded blocks"
# Determinism contract: thread count must not change the result.
"$CLI" solve "$work/g.sadj" --algo twok --shards 4 --threads 1 \
    --out "$work/set_seq.txt"
cmp -s "$work/set_par.txt" "$work/set_seq.txt" \
    || fail "parallel result differs between 1 and 2 threads"

# Sharded GREEDY contract: with no swap stage the sharded, multi-threaded
# pipeline must reproduce the plain sequential solve byte for byte, for
# every shard/thread combination.
"$CLI" solve "$work/g.sadj" --algo greedy --out "$work/greedy_seq.txt"
for shards in 1 3; do
  for threads in 1 2; do
    "$CLI" solve "$work/g.sadj" --algo greedy --shards "$shards" \
        --threads "$threads" --out "$work/greedy_par.txt"
    cmp -s "$work/greedy_par.txt" "$work/greedy_seq.txt" \
        || fail "sharded greedy differs at $shards shards / $threads threads"
  done
done

# --- streaming edge updates (shard -> stream -> compact -> solve) ----------
cat > "$work/updates.txt" <<'EOF'
# mixed insert/delete stream; ids are valid for the 2000-vertex graph
+ 0 1
+ 12 1500
- 0 1
+ 7 8
+ 3 1999
- 3 4
+ 100 200
- 12 1500
EOF
# One sharded copy per invocation: update mutates the overlay in place.
for t in 1 2; do
  "$CLI" shard "$work/g.sadj" "$work/gu$t.sadjs" --shards 4 >/dev/null
  "$CLI" update "$work/gu$t.sadjs" --stream "$work/updates.txt" \
      --threads "$t" --batch 3 --out "$work/upd$t.txt" >/dev/null
  [ -s "$work/upd$t.txt" ] || fail "update --out produced an empty list"
done
# Determinism contract: thread count must not change the maintained set.
cmp -s "$work/upd1.txt" "$work/upd2.txt" \
    || fail "update result differs between 1 and 2 threads"

# Round trip: compact folds the delta into the shards; unshard + sort +
# solve consume the updated graph end to end.
"$CLI" shard "$work/g.sadj" "$work/gc.sadjs" --shards 4 >/dev/null
"$CLI" update "$work/gc.sadjs" --stream "$work/updates.txt" --threads 2 \
    --batch 3 --compact --verify --out "$work/updc.txt"
cmp -s "$work/updc.txt" "$work/upd1.txt" \
    || fail "compaction changed the maintained set"
"$CLI" unshard "$work/gc.sadjs" "$work/gc.adj"
"$CLI" sort "$work/gc.adj" "$work/gc.sadj" --memory-mb 8
"$CLI" solve "$work/gc.sadj" --algo twok --verify >/dev/null
# update also accepts a monolithic input (shards it next to itself).
"$CLI" update "$work/g.sadj" --stream "$work/updates.txt" --shards 3 \
    --threads 2 --batch 4 --compact --verify >/dev/null
[ -s "$work/g.sadj.sadjs" ] || fail "update did not shard the monolithic input"
# Bad streams are rejected with a clean error.
printf 'x 1 2\n' > "$work/bad.txt"
"$CLI" shard "$work/g.sadj" "$work/gb.sadjs" --shards 2 >/dev/null
if "$CLI" update "$work/gb.sadjs" --stream "$work/bad.txt" >/dev/null 2>&1; then
  fail "malformed update stream exited 0"
fi

# --- pipeline from a hand-written edge list --------------------------------
printf '# toy graph\n0\t1\n1\t2\n2\t0\n2\t3\n3\t4\n4\t0\n' > "$work/edges.txt"
"$CLI" convert "$work/edges.txt" "$work/e.adj" --memory-mb 8
"$CLI" sort "$work/e.adj" "$work/e.sadj" --memory-mb 8
"$CLI" solve "$work/e.sadj" --algo onek --verify

echo "PASS"
