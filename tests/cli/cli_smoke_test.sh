#!/usr/bin/env bash
# End-to-end smoke test for semis_cli, registered with CTest.
#
#   cli_smoke_test.sh <path-to-semis_cli>
#
# Covers the usage exit-code contract (bad usage -> non-zero, --help -> 0)
# and the full pipeline: generate -> convert -> sort -> solve --verify.
set -u

CLI="$1"
work="$(mktemp -d "${TMPDIR:-/tmp}/semis-cli-smoke.XXXXXX")"
trap 'rm -rf "$work"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# --- usage exit codes and streams ------------------------------------------
"$CLI" >/dev/null 2>&1 && fail "no-argument invocation exited 0"
"$CLI" frobnicate >/dev/null 2>&1 && fail "unknown command exited 0"
"$CLI" solve >/dev/null 2>&1 && fail "solve with no input exited 0"
"$CLI" generate >/dev/null 2>&1 && fail "generate with no flags exited 0"
"$CLI" --help >/dev/null 2>&1 || fail "--help exited non-zero"
"$CLI" help >/dev/null 2>&1 || fail "help exited non-zero"
"$CLI" solve --help >/dev/null 2>&1 || fail "solve --help exited non-zero"
# Help goes to stdout; usage-on-error goes to stderr only.
[ -n "$("$CLI" --help 2>/dev/null)" ] || fail "--help printed nothing on stdout"
[ -z "$("$CLI" frobnicate 2>/dev/null)" ] || fail "usage error wrote to stdout"
[ -n "$("$CLI" frobnicate 2>&1 >/dev/null)" ] || fail "usage error silent on stderr"

# --- pipeline on a generated PLRG graph ------------------------------------
set -e
"$CLI" generate --vertices 2000 --avg-degree 4 --seed 7 --out "$work/g.adj"
"$CLI" stats "$work/g.adj"
"$CLI" bound "$work/g.adj"
"$CLI" sort "$work/g.adj" "$work/g.sadj" --memory-mb 8
"$CLI" solve "$work/g.sadj" --algo twok --verify --out "$work/set.txt"
[ -s "$work/set.txt" ] || fail "solve --out produced an empty member list"

# --- sharded / parallel path ------------------------------------------------
"$CLI" shard "$work/g.sadj" "$work/g.sadjs" --shards 4
[ -s "$work/g.sadjs" ] || fail "shard produced no manifest"
[ -s "$work/g.sadjs.shard0" ] || fail "shard produced no shard files"
"$CLI" solve "$work/g.sadj" --algo twok --shards 4 --threads 2 --verify \
    --stats --out "$work/set_par.txt" > "$work/solve_par.log" \
    || fail "parallel solve exited non-zero"
[ -s "$work/set_par.txt" ] || fail "parallel solve produced an empty list"
# --stats must surface the block-decode pipeline counters with real
# (non-zero) decode traffic on the sharded path.
grep -q "decode pipeline: " "$work/solve_par.log" \
    || fail "solve --stats printed no decode pipeline line"
grep -q "block ring     : 0 blocks" "$work/solve_par.log" \
    && fail "sharded solve --stats reported zero decoded blocks"
# Determinism contract: thread count must not change the result.
"$CLI" solve "$work/g.sadj" --algo twok --shards 4 --threads 1 \
    --out "$work/set_seq.txt"
cmp -s "$work/set_par.txt" "$work/set_seq.txt" \
    || fail "parallel result differs between 1 and 2 threads"

# Sharded GREEDY contract: with no swap stage the sharded, multi-threaded
# pipeline must reproduce the plain sequential solve byte for byte, for
# every shard/thread combination.
"$CLI" solve "$work/g.sadj" --algo greedy --out "$work/greedy_seq.txt"
for shards in 1 3; do
  for threads in 1 2; do
    "$CLI" solve "$work/g.sadj" --algo greedy --shards "$shards" \
        --threads "$threads" --out "$work/greedy_par.txt"
    cmp -s "$work/greedy_par.txt" "$work/greedy_seq.txt" \
        || fail "sharded greedy differs at $shards shards / $threads threads"
  done
done

# --- rounds engine -----------------------------------------------------------
# Unknown engines are rejected with exit 1 before any I/O happens.
if "$CLI" solve "$work/g.sadj" --engine frobnicate >/dev/null 2>&1; then
  fail "unknown --engine exited 0"
fi
# The min-id rounds engine solves, verifies, and reports its counters.
"$CLI" solve "$work/g.sadj" --engine rounds --algo greedy --shards 4 \
    --threads 2 --verify --stats --out "$work/rounds.txt" \
    > "$work/rounds.log" || fail "solve --engine rounds exited non-zero"
[ -s "$work/rounds.txt" ] || fail "rounds solve produced an empty list"
grep -q "rounds engine" "$work/rounds.log" \
    || fail "rounds --stats printed no rounds-engine counters"
grep -q "final frontier 0" "$work/rounds.log" \
    || fail "rounds --stats reported a non-empty final frontier"
# Determinism contract: the set AND the algorithmic transcript lines
# (set sizes, stage counts, rounds counters -- everything but wall time
# and geometry-scaled IO counters) are invariant across every
# shard/thread geometry (min-id rounds is a pure function of the graph,
# unlike the swap stage it can feed).
algo_lines() {
  grep -E "independent set:|stage :|degree_sorted=|rounds engine" "$1"
}
algo_lines "$work/rounds.log" > "$work/rounds.norm"
for shards in 1 3; do
  for threads in 1 2; do
    "$CLI" solve "$work/g.sadj" --engine rounds --algo greedy \
        --shards "$shards" --threads "$threads" --stats \
        --out "$work/rounds_g.txt" > "$work/rounds_g.log" \
        || fail "rounds solve exited non-zero ($shards/$threads)"
    cmp -s "$work/rounds_g.txt" "$work/rounds.txt" \
        || fail "rounds set differs at $shards shards / $threads threads"
    algo_lines "$work/rounds_g.log" > "$work/rounds_g.norm"
    cmp -s "$work/rounds_g.norm" "$work/rounds.norm" \
        || fail "rounds transcript differs at $shards shards / $threads threads"
  done
done
# The full pipeline (rounds seeding the two-k swap) verifies too.
"$CLI" solve "$work/g.sadj" --engine rounds --algo twok --shards 4 \
    --threads 2 --verify >/dev/null \
    || fail "rounds + twok pipeline failed --verify"

# --- streaming edge updates (shard -> stream -> compact -> solve) ----------
cat > "$work/updates.txt" <<'EOF'
# mixed insert/delete stream; ids are valid for the 2000-vertex graph
+ 0 1
+ 12 1500
- 0 1
+ 7 8
+ 3 1999
- 3 4
+ 100 200
- 12 1500
EOF
# One sharded copy per invocation: update mutates the overlay in place.
for t in 1 2; do
  "$CLI" shard "$work/g.sadj" "$work/gu$t.sadjs" --shards 4 >/dev/null
  "$CLI" update "$work/gu$t.sadjs" --stream "$work/updates.txt" \
      --threads "$t" --batch 3 --out "$work/upd$t.txt" >/dev/null
  [ -s "$work/upd$t.txt" ] || fail "update --out produced an empty list"
done
# Determinism contract: thread count must not change the maintained set.
cmp -s "$work/upd1.txt" "$work/upd2.txt" \
    || fail "update result differs between 1 and 2 threads"

# Round trip: compact folds the delta into the shards; unshard + sort +
# solve consume the updated graph end to end.
"$CLI" shard "$work/g.sadj" "$work/gc.sadjs" --shards 4 >/dev/null
"$CLI" update "$work/gc.sadjs" --stream "$work/updates.txt" --threads 2 \
    --batch 3 --compact --verify --out "$work/updc.txt"
cmp -s "$work/updc.txt" "$work/upd1.txt" \
    || fail "compaction changed the maintained set"
"$CLI" unshard "$work/gc.sadjs" "$work/gc.adj"
"$CLI" sort "$work/gc.adj" "$work/gc.sadj" --memory-mb 8
"$CLI" solve "$work/gc.sadj" --algo twok --verify >/dev/null

# --- degraded-order reporting -----------------------------------------------
# The compaction above rewrote records, clearing gc.sadjs's degree-sorted
# flag: sorted-order algorithms must warn on stderr and report the flag
# under --stats.
"$CLI" solve "$work/gc.sadjs" --algo greedy --stats \
    > "$work/deg.log" 2> "$work/deg.err" \
    || fail "solve on a compacted manifest exited non-zero"
grep -q "degree_sorted=false" "$work/deg.log" \
    || fail "solve --stats did not report degree_sorted=false"
grep -q "not degree-sorted" "$work/deg.err" \
    || fail "solve printed no degraded-order warning on stderr"
"$CLI" update "$work/gc.sadjs" --stream "$work/updates.txt" --batch 8 \
    --stats > "$work/updeg.log" 2> "$work/updeg.err" \
    || fail "update on a compacted manifest exited non-zero"
grep -q "degree_sorted=false" "$work/updeg.log" \
    || fail "update --stats did not report degree_sorted=false"
grep -q "not degree-sorted" "$work/updeg.err" \
    || fail "update printed no degraded-order warning on stderr"
# A freshly sharded (still degree-sorted) manifest: flag true, no warning.
"$CLI" shard "$work/g.sadj" "$work/gs.sadjs" --shards 2 >/dev/null
"$CLI" solve "$work/gs.sadjs" --algo greedy --stats \
    > "$work/degok.log" 2> "$work/degok.err" \
    || fail "solve on a sorted manifest exited non-zero"
grep -q "degree_sorted=true" "$work/degok.log" \
    || fail "solve --stats did not report degree_sorted=true"
grep -q "not degree-sorted" "$work/degok.err" \
    && fail "solve warned about a sorted manifest"
# The degraded-order warning reports the re-sort status so the operator
# knows whether the order will come back on its own.
grep -q "Background re-sort: not scheduled" "$work/updeg.err" \
    || fail "update warning did not report the re-sort status"

# --- background re-sort + fsck ----------------------------------------------
# gc.sadjs is still not degree-sorted: an update with --resort announces
# the plan at open time, restores (degree, id) order off the back of the
# compaction, and reports completion on stderr.
"$CLI" update "$work/gc.sadjs" --stream "$work/updates.txt" --batch 8 \
    --compact --resort --verify --stats \
    > "$work/resort.log" 2> "$work/resort.err" \
    || fail "update --resort exited non-zero"
grep -q "Background re-sort: scheduled" "$work/resort.err" \
    || fail "update --resort did not announce the scheduled re-sort"
grep -q "background re-sort complete" "$work/resort.err" \
    || fail "update --resort reported no completion"
grep -q "degree-sorted order restored" "$work/resort.err" \
    || fail "update --resort did not confirm the restored order"
grep -q "degree_sorted=true" "$work/resort.log" \
    || fail "update --stats did not report degree_sorted=true after re-sort"
# Storage-only contract: the re-sorted store solves to the same set as
# the compacted one did before the re-sort.
"$CLI" solve "$work/gc.sadjs" --algo greedy --stats > "$work/degsrt.log" \
    2> "$work/degsrt.err" || fail "solve after re-sort exited non-zero"
grep -q "degree_sorted=true" "$work/degsrt.log" \
    || fail "solve --stats does not see the restored flag"
grep -q "not degree-sorted" "$work/degsrt.err" \
    && fail "solve warned about a re-sorted manifest"

# fsck: the compacted store is epoch-journaled and clean; a freshly
# sharded one is still the legacy layout.
"$CLI" fsck "$work/gc.sadjs" > "$work/fsck.log" \
    || fail "fsck on a journaled store exited non-zero"
grep -q "journaled store" "$work/fsck.log" \
    || fail "fsck did not identify the journaled store"
grep -q "no orphaned files" "$work/fsck.log" \
    || fail "fsck found orphans after a clean re-sort"
"$CLI" fsck "$work/gc.sadjs" --gc >/dev/null || fail "fsck --gc exited non-zero"
"$CLI" fsck "$work/gs.sadjs" > "$work/fsck_legacy.log" \
    || fail "fsck on a legacy store exited non-zero"
grep -q "legacy store" "$work/fsck_legacy.log" \
    || fail "fsck did not identify the legacy store"
"$CLI" fsck >/dev/null 2>&1 && fail "fsck with no input exited 0"

# --- engine lifecycle session ------------------------------------------------
cat > "$work/session.txt" <<'EOF'
# scripted open -> serve -> mutate -> republish session
query 0 1 2
+ 0 1
+ 7 8
apply
repair
publish
- 0 1
apply
repair
compact
publish
query 0 1
EOF
for t in 1 2; do
  "$CLI" shard "$work/g.sadj" "$work/ge$t.sadjs" --shards 4 >/dev/null
  "$CLI" engine "$work/ge$t.sadjs" --script "$work/session.txt" \
      --algo greedy --threads "$t" --stats --out "$work/eng$t.txt" \
      > "$work/eng$t.log" || fail "engine session exited non-zero ($t threads)"
  [ -s "$work/eng$t.txt" ] || fail "engine --out produced an empty list"
done
# Determinism contract: the epoch sequence (and the whole session
# transcript) is thread-count independent.
cmp -s "$work/eng1.txt" "$work/eng2.txt" \
    || fail "engine result differs between 1 and 2 threads"
# (normalize the per-run file paths the transcript embeds)
for t in 1 2; do
  sed -e "s|ge$t\.sadjs|geN.sadjs|" -e "s|eng$t\.txt|engN.txt|" \
      "$work/eng$t.log" > "$work/eng$t.norm"
done
cmp -s "$work/eng1.norm" "$work/eng2.norm" \
    || fail "engine transcript differs between 1 and 2 threads"
grep -q "^opened .*epoch 1" "$work/eng1.log" || fail "engine printed no open line"
grep -q "^published epoch 2:" "$work/eng1.log" \
    || fail "engine published no epoch 2"
grep -q "^published epoch 3:" "$work/eng1.log" \
    || fail "engine published no epoch 3"
grep -q "^session end: epoch 3" "$work/eng1.log" \
    || fail "engine session did not end on epoch 3"
grep -q "degree_sorted=true" "$work/eng1.log" \
    || fail "engine --stats did not report degree_sorted"
# Bad scripts are rejected with a clean error.
printf 'frobnicate\n' > "$work/badsession.txt"
if "$CLI" engine "$work/ge1.sadjs" --script "$work/badsession.txt" \
    >/dev/null 2>&1; then
  fail "malformed session script exited 0"
fi
# update also accepts a monolithic input (shards it next to itself).
"$CLI" update "$work/g.sadj" --stream "$work/updates.txt" --shards 3 \
    --threads 2 --batch 4 --compact --verify >/dev/null
[ -s "$work/g.sadj.sadjs" ] || fail "update did not shard the monolithic input"
# Bad streams are rejected with a clean error.
printf 'x 1 2\n' > "$work/bad.txt"
"$CLI" shard "$work/g.sadj" "$work/gb.sadjs" --shards 2 >/dev/null
if "$CLI" update "$work/gb.sadjs" --stream "$work/bad.txt" >/dev/null 2>&1; then
  fail "malformed update stream exited 0"
fi

# --- pipeline from a hand-written edge list --------------------------------
printf '# toy graph\n0\t1\n1\t2\n2\t0\n2\t3\n3\t4\n4\t0\n' > "$work/edges.txt"
"$CLI" convert "$work/edges.txt" "$work/e.adj" --memory-mb 8
"$CLI" sort "$work/e.adj" "$work/e.sadj" --memory-mb 8
"$CLI" solve "$work/e.sadj" --algo onek --verify

echo "PASS"
