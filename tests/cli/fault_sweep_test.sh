#!/usr/bin/env bash
# Errno-injection sweep for the I/O seam -- the errno twin of
# crash_recovery_test.sh.
#
#   fault_sweep_test.sh <path-to-semis_cli>
#
# For every I/O operation class and site index n, run
# `semis_cli update --stream ... --compact --resort` with
# SEMIS_FAULT_SPEC="<op>:<n>:ENOSPC:sticky" (see src/io/env.h): from the
# n-th operation of that class on, every one fails with ENOSPC -- a disk
# that fills at site n and stays full. The run must then prove:
#
#   1. it fails CLEANLY: exit 0 (fault absorbed or op class exhausted) or
#      exit 1 (Status error reported) -- never a signal, a hang, or a
#      usage error;
#   2. the store it leaves behind passes `fsck --gc` (no torn publish,
#      every orphan collectable) and still serves a consistent set via an
#      empty-stream `update --verify` -- both run fault-free;
#   3. a fresh pristine copy retried without faults reproduces the golden
#      output byte for byte (the fault left no trace outside its store);
#   4. if the faulted run exited 0 WITH a fault injected, its own output
#      already equals the golden bytes (absorbed means absorbed).
#
# A second, transient sweep replays the retryable sites (open / sync /
# syncdir / rename) with a once-only EIO: the retry policy must absorb
# every one of them -- exit 0 and golden-identical output, with the
# injection announced on stderr.
#
# The sweep walks n = 1, 2, ... until a run no longer reaches op #n
# (exit 0 with no "SEMIS_FAULT_INJECTED" announcement on stderr), so new
# I/O sites are covered automatically; MAX_SITES only bounds runaway.
#
# Environment knobs (the nightly sweep widens these):
#   FAULT_OPS          op classes to sweep (default
#                      "open write sync syncdir rename link remove")
#   FAULT_SEEDS        graph seeds, space-separated        (default "7")
#   FAULT_GEOMS        "shards:threads" pairs              (default "1:1 3:2")
#   MAX_SITES          sweep upper bound per op class      (default 400)
#   FAULT_SCRATCH_DIR  scratch root; kept (not deleted) when set, so CI
#                      can upload the tree of a failing sweep
set -u

CLI="$1"

if [ -n "${FAULT_SCRATCH_DIR:-}" ]; then
  work="$FAULT_SCRATCH_DIR"
  mkdir -p "$work"
else
  work="$(mktemp -d "${TMPDIR:-/tmp}/semis-fault.XXXXXX")"
  trap 'rm -rf "$work"' EXIT
fi

OPS="${FAULT_OPS:-open write sync syncdir rename link remove}"
SEEDS="${FAULT_SEEDS:-7}"
GEOMS="${FAULT_GEOMS:-1:1 3:2}"
MAX_SITES="${MAX_SITES:-400}"

fail() {
  echo "FAIL: $*" >&2
  echo "FAIL: scratch tree: $work" >&2
  exit 1
}

# Same stream as the crash sweep: degree-changing inserts and deletes so
# --compact clears the sorted flag and --resort re-sorts (maximizing the
# I/O sites a sweep visits).
cat > "$work/updates.txt" <<'EOF'
+ 0 1999
+ 1 1998
+ 2 1997
- 0 1999
+ 5 1500
+ 7 8
+ 100 200
+ 3 1996
- 7 8
+ 11 1200
EOF
printf '# empty recovery stream\n' > "$work/empty.txt"

# copy_store <src-manifest> <dst-manifest>: manifest + shard payloads.
copy_store() {
  cp "$1" "$2"
  local f
  for f in "$1".shard*; do
    cp "$f" "$2${f#"$1"}"
  done
}

total_faults=0
total_absorbed=0
for seed in $SEEDS; do
  "$CLI" generate --vertices 2000 --avg-degree 4 --seed "$seed" \
      --out "$work/g$seed.adj" >/dev/null || fail "generate (seed $seed)"
  "$CLI" sort "$work/g$seed.adj" "$work/g$seed.sadj" --memory-mb 8 \
      >/dev/null || fail "sort (seed $seed)"

  for geom in $GEOMS; do
    shards="${geom%%:*}"
    threads="${geom##*:}"
    ctx="seed=$seed shards=$shards threads=$threads"
    pristine="$work/p_${seed}_${shards}.sadjs"
    if [ ! -e "$pristine" ]; then
      "$CLI" shard "$work/g$seed.sadj" "$pristine" --shards "$shards" \
          >/dev/null || fail "shard ($ctx)"
    fi

    # Fault-free golden run: every retried/absorbed run below must
    # reproduce these bytes.
    golden="$work/golden_${seed}_${shards}_${threads}.txt"
    golden_store="$work/gs_${seed}_${shards}_${threads}.sadjs"
    copy_store "$pristine" "$golden_store"
    "$CLI" update "$golden_store" --stream "$work/updates.txt" --batch 3 \
        --threads "$threads" --compact --resort --verify --out "$golden" \
        >/dev/null || fail "golden run ($ctx)"

    # ---- permanent sweep: sticky ENOSPC at every site of every op ----
    for op in $OPS; do
      exhausted=""
      for n in $(seq 1 "$MAX_SITES"); do
        run="$work/run_${seed}_${shards}_${threads}_${op}_$n"
        store="$run/s.sadjs"
        mkdir -p "$run"
        copy_store "$pristine" "$store"

        SEMIS_FAULT_SPEC="$op:$n:ENOSPC:sticky" "$CLI" update "$store" \
            --stream "$work/updates.txt" --batch 3 --threads "$threads" \
            --compact --resort --out "$run/out.txt" \
            >"$run/run.log" 2>"$run/run.err"
        status=$?

        if ! grep -q "SEMIS_FAULT_INJECTED op=$op" "$run/run.err"; then
          # Op #n was never reached: the op class is swept end to end.
          [ "$status" -eq 0 ] \
              || fail "$op:$n never fired yet exited $status ($ctx)"
          exhausted="$n"
          rm -rf "$run"
          break
        fi
        total_faults=$((total_faults + 1))

        # 1. Clean failure contract: a Status error or a survived run --
        # never a crash (signals land at 128+N), never usage (2).
        if [ "$status" -ne 0 ] && [ "$status" -ne 1 ]; then
          fail "$op:$n exited $status, want 0 or 1 ($ctx)"
        fi
        if [ "$status" -eq 0 ]; then
          # 4. Survived WITH the fault injected: only acceptable if the
          # output is already golden (the fault was genuinely absorbed).
          cmp -s "$run/out.txt" "$golden" \
              || fail "$op:$n survived but output differs from golden ($ctx)"
          total_absorbed=$((total_absorbed + 1))
        else
          grep -qi "error" "$run/run.err" \
              || fail "$op:$n failed without reporting an error ($ctx)"
        fi

        # 2. The store is never torn: fsck --gc passes and an empty
        # stream serves a consistent, verifiable set (both fault-free).
        "$CLI" fsck "$store" --gc >"$run/fsck.log" 2>&1 \
            || fail "fsck --gc failed after $op:$n ($ctx)"
        "$CLI" update "$store" --stream "$work/empty.txt" --compact --verify \
            --threads "$threads" --out "$run/served.txt" \
            >"$run/serve.log" 2>&1 \
            || fail "store unservable after $op:$n ($ctx)"

        # 3. A pristine retry without faults reproduces the golden bytes.
        retry="$run/retry.sadjs"
        copy_store "$pristine" "$retry"
        "$CLI" update "$retry" --stream "$work/updates.txt" --batch 3 \
            --threads "$threads" --compact --resort --verify \
            --out "$run/retry.txt" >"$run/retry.log" 2>&1 \
            || fail "pristine retry failed after $op:$n ($ctx)"
        cmp -s "$run/retry.txt" "$golden" \
            || fail "pristine retry differs from golden after $op:$n ($ctx)"

        rm -rf "$run"
      done
      [ -n "$exhausted" ] \
          || fail "$op sweep hit MAX_SITES=$MAX_SITES ($ctx)"
      echo "swept $((exhausted - 1)) $op sites ($ctx)"
    done

    # ---- transient sweep: once-only EIO at every retryable site ------
    # (rename is excluded: only the epoch root-pointer rename retries --
    # the in-process journal tests cover it -- while manifest renames
    # propagate the first error by design.)
    for op in open sync syncdir; do
      for n in $(seq 1 "$MAX_SITES"); do
        run="$work/t_${seed}_${shards}_${threads}_${op}_$n"
        store="$run/s.sadjs"
        mkdir -p "$run"
        copy_store "$pristine" "$store"

        SEMIS_FAULT_SPEC="$op:$n:EIO" "$CLI" update "$store" \
            --stream "$work/updates.txt" --batch 3 --threads "$threads" \
            --compact --resort --verify --out "$run/out.txt" \
            >"$run/run.log" 2>"$run/run.err"
        status=$?

        if ! grep -q "SEMIS_FAULT_INJECTED op=$op" "$run/run.err"; then
          [ "$status" -eq 0 ] \
              || fail "transient $op:$n never fired yet exited $status ($ctx)"
          rm -rf "$run"
          break
        fi
        total_faults=$((total_faults + 1))
        # Every retryable site must absorb a single transient hiccup and
        # still produce the golden bytes.
        [ "$status" -eq 0 ] \
            || fail "transient $op:$n was not absorbed (exit $status) ($ctx)"
        cmp -s "$run/out.txt" "$golden" \
            || fail "transient $op:$n absorbed but output differs ($ctx)"
        total_absorbed=$((total_absorbed + 1))
        rm -rf "$run"
      done
    done
  done
done

# A sweep that never injected anything proves nothing -- guard against
# the announcement (or the injection machinery) rotting away.
[ "$total_faults" -gt 0 ] || fail "no fault was ever injected"
[ "$total_absorbed" -gt 0 ] || fail "no fault was ever absorbed by a retry"

echo "PASS: $total_faults faulted runs survived cleanly" \
     "($total_absorbed absorbed)"
