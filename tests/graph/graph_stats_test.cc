#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/plrg.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

TEST(GraphStatsTest, StarStatistics) {
  Graph g = GenerateStar(101);
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_vertices, 101u);
  EXPECT_EQ(s.num_edges, 100u);
  EXPECT_EQ(s.max_degree, 100u);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.isolated_vertices, 0u);
  EXPECT_EQ(s.degree_histogram[1], 100u);
  EXPECT_EQ(s.degree_histogram[100], 1u);
  EXPECT_NEAR(s.avg_degree, 200.0 / 101.0, 1e-9);
}

TEST(GraphStatsTest, IsolatedVerticesCounted) {
  Graph g = Graph::FromEdges(10, {{0, 1}});
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.isolated_vertices, 8u);
  EXPECT_EQ(s.min_degree, 0u);
}

TEST(GraphStatsTest, BetaEstimateRecoversGeneratorParameter) {
  for (double beta : {1.8, 2.2}) {
    Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(200000, beta), 7);
    GraphStats s = ComputeGraphStats(g);
    // The matching model + simplification bends the tail, so the fit is
    // loose; shape recovery within 0.35 is enough to tell 1.8 from 2.7.
    EXPECT_NEAR(s.EstimateBeta(), beta, 0.35) << "beta=" << beta;
  }
}

TEST(GraphStatsTest, BetaEstimateDegenerateCases) {
  GraphStats empty;
  EXPECT_EQ(empty.EstimateBeta(), 0.0);
  // Single populated degree: underdetermined.
  Graph g = GenerateCycle(10);
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.EstimateBeta(), 0.0);
}

class GraphStatsFileTest : public ScratchTest {};

TEST_F(GraphStatsFileTest, FileStatsMatchInMemoryStats) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 13);
  std::string path = WriteGraphFile(&scratch_, g);
  GraphStats mem = ComputeGraphStats(g);
  GraphStats file;
  ASSERT_OK(ComputeGraphStatsFromFile(path, &file));
  EXPECT_EQ(file.num_vertices, mem.num_vertices);
  EXPECT_EQ(file.num_edges, mem.num_edges);
  EXPECT_EQ(file.max_degree, mem.max_degree);
  EXPECT_EQ(file.degree_histogram, mem.degree_histogram);
  EXPECT_DOUBLE_EQ(file.avg_degree, mem.avg_degree);
}

}  // namespace
}  // namespace semis
