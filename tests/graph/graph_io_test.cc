#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/plrg.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;

class GraphIoTest : public ScratchTest {};

bool GraphsEqual(const Graph& a, const Graph& b) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    auto na = a.Neighbors(v);
    auto nb = b.Neighbors(v);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
  }
  return true;
}

TEST_F(GraphIoTest, GraphFileRoundtrip) {
  Graph g = GenerateErdosRenyi(200, 600, 42);
  std::string path = NewPath("g");
  ASSERT_OK(WriteGraphToAdjacencyFile(g, path));
  Graph back;
  ASSERT_OK(ReadGraphFromAdjacencyFile(path, &back));
  EXPECT_TRUE(GraphsEqual(g, back));
}

TEST_F(GraphIoTest, ExplicitOrderPreservesContent) {
  Graph g = GenerateCycle(10);
  std::vector<VertexId> order = {9, 0, 8, 1, 7, 2, 6, 3, 5, 4};
  std::string path = NewPath("g");
  ASSERT_OK(WriteGraphToAdjacencyFileInOrder(g, order, 0, path));
  Graph back;
  ASSERT_OK(ReadGraphFromAdjacencyFile(path, &back));
  EXPECT_TRUE(GraphsEqual(g, back));
}

TEST_F(GraphIoTest, BadOrderRejected) {
  Graph g = GenerateCycle(4);
  std::string path = NewPath("g");
  EXPECT_TRUE(WriteGraphToAdjacencyFileInOrder(g, {0, 1, 2}, 0, path)
                  .IsInvalidArgument());
  EXPECT_TRUE(WriteGraphToAdjacencyFileInOrder(g, {0, 1, 2, 9}, 0, path)
                  .IsInvalidArgument());
}

TEST_F(GraphIoTest, EdgeListTextRoundtrip) {
  Graph g = GenerateErdosRenyi(50, 120, 7);
  std::string path = NewPath("edges.txt");
  ASSERT_OK(WriteEdgeListText(g, path));
  Graph back;
  ASSERT_OK(ReadEdgeListText(path, &back));
  // Vertex count may shrink if the top ids are isolated; this generator
  // keeps them only if they have edges, so compare edges per vertex.
  ASSERT_GE(g.NumVertices(), back.NumVertices());
  EXPECT_EQ(g.NumEdges(), back.NumEdges());
  for (VertexId v = 0; v < back.NumVertices(); ++v) {
    auto na = g.Neighbors(v);
    auto nb = back.Neighbors(v);
    EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

TEST_F(GraphIoTest, EdgeListParserSkipsCommentsAndBlanks) {
  std::string path = NewPath("snap.txt");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    const char* text =
        "# Comment line\n"
        "\n"
        "0 1\n"
        "  2\t3 \n"
        "# trailing comment\n"
        "1 2\n";
    ASSERT_OK(w.Append(text, strlen(text)));
    ASSERT_OK(w.Close());
  }
  Graph g;
  ASSERT_OK(ReadEdgeListText(path, &g));
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_TRUE(g.HasEdge(2, 3));
}

TEST_F(GraphIoTest, MalformedEdgeListRejected) {
  std::string path = NewPath("bad.txt");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    const char* text = "0 1\nnot numbers\n";
    ASSERT_OK(w.Append(text, strlen(text)));
    ASSERT_OK(w.Close());
  }
  Graph g;
  EXPECT_TRUE(ReadEdgeListText(path, &g).IsCorruption());
}

TEST_F(GraphIoTest, ConvertEdgeListMatchesInMemoryBuild) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(3000, 2.0), 99);
  std::string edges = NewPath("edges.txt");
  ASSERT_OK(WriteEdgeListText(g, edges));

  std::string adj = NewPath("conv.adj");
  EdgeListConvertOptions opts;
  opts.memory_budget_bytes = 4096;  // force external sorting
  ASSERT_OK(ConvertEdgeListToAdjacencyFile(edges, adj, opts));
  Graph back;
  ASSERT_OK(ReadGraphFromAdjacencyFile(adj, &back));
  // The conversion may materialize fewer trailing vertices (isolated ones
  // past the max edge id); PLRG assigns edges to all ids in practice.
  EXPECT_TRUE(GraphsEqual(g, back));
}

TEST_F(GraphIoTest, ConvertDeduplicatesAndDropsSelfLoops) {
  std::string edges = NewPath("dups.txt");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(edges));
    const char* text = "0 1\n1 0\n0 1\n2 2\n1 2\n";
    ASSERT_OK(w.Append(text, strlen(text)));
    ASSERT_OK(w.Close());
  }
  std::string adj = NewPath("dedup.adj");
  ASSERT_OK(ConvertEdgeListToAdjacencyFile(edges, adj, {}));
  Graph g;
  ASSERT_OK(ReadGraphFromAdjacencyFile(adj, &g));
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);  // {0,1} and {1,2}
  EXPECT_FALSE(g.HasEdge(2, 2));
}

TEST_F(GraphIoTest, ConvertKeepsIsolatedVertexRecords) {
  // Vertex 1 never appears in an edge; id space is 0..3.
  std::string edges = NewPath("iso.txt");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(edges));
    const char* text = "0 2\n2 3\n";
    ASSERT_OK(w.Append(text, strlen(text)));
    ASSERT_OK(w.Close());
  }
  std::string adj = NewPath("iso.adj");
  ASSERT_OK(ConvertEdgeListToAdjacencyFile(edges, adj, {}));
  AdjacencyFileScanner scanner;
  ASSERT_OK(scanner.Open(adj));
  EXPECT_EQ(scanner.header().num_vertices, 4u);
  int records = 0;
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    ASSERT_OK(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    records++;
    if (rec.id == 1) {
      EXPECT_EQ(rec.degree, 0u);
    }
  }
  EXPECT_EQ(records, 4);
}

}  // namespace
}  // namespace semis
