// Crash-recovery contract of the sharded store (graph/shard_store.h):
// root resolution over the legacy and journaled layouts, epoch fallback,
// and the GC edge cases the epoch journal must survive -- a reader
// holding the old epoch across a commit, an interrupted GC, a root
// pointer naming a missing epoch, and back-to-back compactions retiring
// epochs N and N+1. Process-kill crash points are exercised end to end by
// tests/cli/crash_recovery_test.sh; this suite covers the states those
// crashes leave behind.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/incremental_stream.h"
#include "gen/plrg.h"
#include "graph/shard_store.h"
#include "graph/sharded_adjacency_file.h"
#include "io/edge_delta_file.h"
#include "io/epoch_journal.h"
#include "io/file.h"
#include "test_util.h"
#include "util/random.h"

namespace semis {
namespace {

using testing_util::RandomMaximalSet;
using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

bool FileExists(const std::string& path) {
  uint64_t size = 0;
  return GetFileSize(path, &size).ok();
}

std::vector<uint32_t> ToVector(const BitVector& set) {
  std::vector<uint32_t> out;
  for (size_t v = 0; v < set.size(); ++v) {
    if (set.Test(v)) out.push_back(static_cast<uint32_t>(v));
  }
  return out;
}

void WriteJunkFile(const std::string& path) {
  SequentialFileWriter w;
  EXPECT_OK(w.Open(path));
  EXPECT_OK(w.Append("junk", 4));
  EXPECT_OK(w.Close());
}

class ShardStoreTest : public ScratchTest {
 protected:
  // Creates a legacy sharded store at `*root` and returns a maximal
  // initial set over its graph.
  BitVector MakeStore(uint32_t num_shards, std::string* root) {
    g_ = GeneratePlrg(PlrgSpec::ForVertexCount(200, 2.0), 7);
    std::string mono = WriteGraphFile(&scratch_, g_);
    *root = NewPath("store.sadjs");
    EXPECT_OK(ShardAdjacencyFile(mono, *root, num_shards));
    return RandomMaximalSet(g_, 3);
  }

  // A deterministic batch that changes degrees, parameterized so
  // successive batches are distinct.
  std::vector<EdgeUpdate> SomeUpdates(uint64_t salt) {
    std::vector<EdgeUpdate> updates;
    Random rng(100 + salt);
    for (int i = 0; i < 30; ++i) {
      const auto u = static_cast<VertexId>(rng.Uniform(g_.NumVertices()));
      const auto v = static_cast<VertexId>(rng.Uniform(g_.NumVertices()));
      if (u != v) updates.push_back(EdgeUpdate::Insert(u, v));
    }
    return updates;
  }

  Graph g_;
};

TEST_F(ShardStoreTest, LegacyStoreResolvesInPlace) {
  std::string root;
  MakeStore(3, &root);
  ResolvedShardStore store;
  ASSERT_OK(ResolveShardStore(root, &store));
  EXPECT_FALSE(store.journaled);
  EXPECT_EQ(store.manifest_path, root);
  EXPECT_EQ(store.current_epoch, 0u);
  ASSERT_OK(ValidateShardStoreEpoch(store.manifest_path));
  std::vector<std::string> orphans;
  ASSERT_OK(ListShardStoreOrphans(store, &orphans));
  EXPECT_TRUE(orphans.empty());
}

TEST_F(ShardStoreTest, FirstCompactionConvertsToJournal) {
  std::string root;
  BitVector initial = MakeStore(3, &root);
  ShardedStreamingMis mis;
  ASSERT_OK(mis.Initialize(root, initial, EnginePipelineOptions{}));
  ASSERT_OK(mis.ApplyBatch(SomeUpdates(1)));
  ASSERT_OK(mis.Compact(/*force=*/true));

  uint32_t magic = 0;
  ASSERT_OK(ProbeFileMagic(root, &magic));
  EXPECT_EQ(magic, kEpochRootMagic);
  ResolvedShardStore store;
  ASSERT_OK(ResolveShardStore(root, &store));
  EXPECT_TRUE(store.journaled);
  EXPECT_EQ(store.current_epoch, 1u);
  EXPECT_EQ(store.previous_epoch, 0u);
  EXPECT_EQ(store.manifest_path, EpochManifestPath(root, 1));
  ASSERT_OK(ValidateShardStoreEpoch(store.manifest_path));
  // The conversion's trailing GC removed the stale legacy names...
  EXPECT_FALSE(FileExists(root + ".shard0"));
  EXPECT_FALSE(FileExists(root + ".delta"));
  std::vector<std::string> orphans;
  ASSERT_OK(ListShardStoreOrphans(store, &orphans));
  EXPECT_TRUE(orphans.empty());

  // ...and a restarted session serves exactly the committed state.
  ShardedStreamingMis second;
  ASSERT_OK(second.Initialize(root, mis.set(), EnginePipelineOptions{}));
  EXPECT_EQ(ToVector(second.set()), ToVector(mis.set()));
}

TEST_F(ShardStoreTest, BackToBackCompactionsKeepOnePreviousEpoch) {
  std::string root;
  BitVector initial = MakeStore(2, &root);
  ShardedStreamingMis mis;
  ASSERT_OK(mis.Initialize(root, initial, EnginePipelineOptions{}));

  ASSERT_OK(mis.ApplyBatch(SomeUpdates(1)));
  ASSERT_OK(mis.Compact(/*force=*/true));  // epoch 1
  ASSERT_OK(mis.ApplyBatch(SomeUpdates(2)));
  ASSERT_OK(mis.Compact(/*force=*/true));  // epoch 2, epoch 1 kept
  EpochRootPointer ptr;
  ASSERT_OK(ReadEpochRootPointer(root, &ptr));
  EXPECT_EQ(ptr.current_epoch, 2u);
  EXPECT_EQ(ptr.previous_epoch, 1u);
  // The previous epoch survives its successor's GC so a reader that
  // resolved just before the commit can finish.
  EXPECT_TRUE(FileExists(EpochManifestPath(root, 1)));
  ResolvedShardStore store;
  ASSERT_OK(ResolveShardStore(root, &store));
  std::vector<std::string> orphans;
  ASSERT_OK(ListShardStoreOrphans(store, &orphans));
  EXPECT_TRUE(orphans.empty());

  ASSERT_OK(mis.ApplyBatch(SomeUpdates(3)));
  ASSERT_OK(mis.Compact(/*force=*/true));  // epoch 3 retires epoch 1
  ASSERT_OK(ReadEpochRootPointer(root, &ptr));
  EXPECT_EQ(ptr.current_epoch, 3u);
  EXPECT_EQ(ptr.previous_epoch, 2u);
  EXPECT_FALSE(FileExists(EpochManifestPath(root, 1)));
  EXPECT_FALSE(FileExists(EpochManifestPath(root, 1) + ".shard0"));
}

TEST_F(ShardStoreTest, ReaderHoldingOldEpochSurvivesOneCommit) {
  std::string root;
  BitVector initial = MakeStore(2, &root);
  ShardedStreamingMis mis;
  ASSERT_OK(mis.Initialize(root, initial, EnginePipelineOptions{}));
  ASSERT_OK(mis.ApplyBatch(SomeUpdates(1)));
  ASSERT_OK(mis.Compact(/*force=*/true));  // epoch 1

  // The reader resolves the store at epoch 1 and starts scanning.
  IoStats io;
  ShardedAdjacencyScanner scanner(&io);
  ASSERT_OK(scanner.Open(root));
  const uint64_t expected = scanner.header().num_vertices;

  // A commit happens underneath it: epoch 2 is published and GC runs.
  ASSERT_OK(mis.ApplyBatch(SomeUpdates(2)));
  ASSERT_OK(mis.Compact(/*force=*/true));

  // Epoch 1's files were kept as the previous epoch, so the scan drains
  // completely instead of hitting unlinked files.
  uint64_t records = 0;
  VertexRecordView rec;
  bool has_next = false;
  while (true) {
    ASSERT_OK(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    records++;
  }
  EXPECT_EQ(records, expected);
}

TEST_F(ShardStoreTest, RootNamingMissingEpochFallsBack) {
  std::string root;
  BitVector initial = MakeStore(2, &root);
  ShardedStreamingMis mis;
  ASSERT_OK(mis.Initialize(root, initial, EnginePipelineOptions{}));
  ASSERT_OK(mis.ApplyBatch(SomeUpdates(1)));
  ASSERT_OK(mis.Compact(/*force=*/true));  // epoch 1
  ASSERT_OK(mis.ApplyBatch(SomeUpdates(2)));
  ASSERT_OK(mis.Compact(/*force=*/true));  // epoch 2, previous 1

  // A commit that died between the root flip and writing epoch 3's files
  // cannot happen (files are staged first) -- but a scribbled or
  // restored-from-backup root CAN name a missing epoch. Forge one.
  ASSERT_OK(WriteEpochRootPointer(root, {3, 2}));
  ResolvedShardStore store;
  ASSERT_OK(ResolveShardStore(root, &store));
  EXPECT_TRUE(store.fell_back);
  EXPECT_EQ(store.current_epoch, 2u);
  EXPECT_EQ(store.manifest_path, EpochManifestPath(root, 2));
  // Read-only resolution did not touch the root...
  EpochRootPointer ptr;
  ASSERT_OK(ReadEpochRootPointer(root, &ptr));
  EXPECT_EQ(ptr.current_epoch, 3u);

  // ...recovery makes the fallback durable and GCs what epoch 2 no
  // longer references.
  ShardStoreRecovery recovery;
  ASSERT_OK(RecoverShardStore(root, &store, &recovery));
  EXPECT_TRUE(recovery.fell_back);
  ASSERT_OK(ReadEpochRootPointer(root, &ptr));
  EXPECT_EQ(ptr.current_epoch, 2u);
  EXPECT_EQ(ptr.previous_epoch, 0u);
  ASSERT_OK(ResolveShardStore(root, &store));
  EXPECT_FALSE(store.fell_back);
  ASSERT_OK(ValidateShardStoreEpoch(store.manifest_path));

  // With no fallback epoch left, a missing current epoch is terminal.
  ASSERT_OK(WriteEpochRootPointer(root, {9, 0}));
  EXPECT_TRUE(ResolveShardStore(root, &store).IsCorruption());
}

TEST_F(ShardStoreTest, InterruptedGcIsRepairedIdempotently) {
  std::string root;
  BitVector initial = MakeStore(2, &root);
  ShardedStreamingMis mis;
  ASSERT_OK(mis.Initialize(root, initial, EnginePipelineOptions{}));
  ASSERT_OK(mis.ApplyBatch(SomeUpdates(1)));
  ASSERT_OK(mis.Compact(/*force=*/true));
  const std::vector<uint32_t> committed = ToVector(mis.set());

  // Litter the directory the way dead mutations do: root-pointer
  // staging, a half-staged future epoch, an interrupted re-sort run.
  WriteJunkFile(root + ".tmp");
  WriteJunkFile(EpochManifestPath(root, 9) + ".shard0");
  WriteJunkFile(EpochManifestPath(root, 1) + ".resort0");
  ResolvedShardStore store;
  ASSERT_OK(ResolveShardStore(root, &store));
  std::vector<std::string> orphans;
  ASSERT_OK(ListShardStoreOrphans(store, &orphans));
  ASSERT_EQ(orphans.size(), 3u);

  // A GC that died after removing one orphan leaves a partial state;
  // recovery finishes the job and is a no-op when run again.
  ASSERT_OK(RemoveFileIfExists(orphans[0]));
  ShardStoreRecovery recovery;
  ASSERT_OK(RecoverShardStore(root, &store, &recovery));
  EXPECT_EQ(recovery.orphan_files_removed, 2u);
  ASSERT_OK(ListShardStoreOrphans(store, &orphans));
  EXPECT_TRUE(orphans.empty());
  ASSERT_OK(RecoverShardStore(root, &store, &recovery));
  EXPECT_EQ(recovery.orphan_files_removed, 0u);

  // The litter never touched the committed state.
  ShardedStreamingMis second;
  ASSERT_OK(second.Initialize(root, mis.set(), EnginePipelineOptions{}));
  EXPECT_EQ(ToVector(second.set()), committed);
}

TEST_F(ShardStoreTest, OrphanClassificationIsConservative) {
  std::string root;
  BitVector initial = MakeStore(2, &root);
  ShardedStreamingMis mis;
  ASSERT_OK(mis.Initialize(root, initial, EnginePipelineOptions{}));
  ASSERT_OK(mis.ApplyBatch(SomeUpdates(1)));
  ASSERT_OK(mis.Compact(/*force=*/true));

  // Names that belong to the live epoch or to nobody's naming scheme
  // must never be collected.
  WriteJunkFile(root + ".epochnote");   // digits missing: not our naming
  WriteJunkFile(root + ".backup");      // unrecognized suffix
  WriteJunkFile(root + "-sibling");     // no "<base>." prefix at all
  ResolvedShardStore store;
  ASSERT_OK(ResolveShardStore(root, &store));
  std::vector<std::string> orphans;
  ASSERT_OK(ListShardStoreOrphans(store, &orphans));
  EXPECT_TRUE(orphans.empty());
  EXPECT_TRUE(FileExists(EpochManifestPath(root, 1)));
  EXPECT_TRUE(FileExists(root + ".epochnote"));
  EXPECT_TRUE(FileExists(root + ".backup"));
  EXPECT_TRUE(FileExists(root + "-sibling"));
}

TEST_F(ShardStoreTest, ValidateDetectsWrongShardSize) {
  std::string root;
  MakeStore(2, &root);
  ASSERT_OK(ValidateShardStoreEpoch(root));
  // Shard files have exact manifest-implied sizes; one byte of growth is
  // as corrupt as truncation.
  {
    SequentialFileWriter w;
    ASSERT_OK(w.OpenAppend(root + ".shard0"));
    ASSERT_OK(w.Append("x", 1));
    ASSERT_OK(w.Close());
  }
  EXPECT_TRUE(ValidateShardStoreEpoch(root).IsCorruption());
}

}  // namespace
}  // namespace semis
