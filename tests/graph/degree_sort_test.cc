#include "graph/degree_sort.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/adjacency_file.h"
#include "graph/graph_io.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

class DegreeSortTest : public ScratchTest {};

TEST_F(DegreeSortTest, RecordsComeOutInDegreeIdOrder) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(2000, 2.0), 17);
  std::string input = WriteGraphFile(&scratch_, g);
  std::string output = NewPath("sorted");
  DegreeSortOptions opts;
  ASSERT_OK(BuildDegreeSortedAdjacencyFile(input, output, opts));

  AdjacencyFileScanner scanner;
  ASSERT_OK(scanner.Open(output));
  EXPECT_TRUE(scanner.header().IsDegreeSorted());
  EXPECT_EQ(scanner.header().num_vertices, g.NumVertices());
  EXPECT_EQ(scanner.header().num_directed_edges, g.NumDirectedEdges());

  VertexRecord rec;
  bool has_next = false;
  uint64_t prev_key = 0;
  uint64_t records = 0;
  BitVector seen(g.NumVertices());
  while (true) {
    ASSERT_OK(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    uint64_t key = (static_cast<uint64_t>(rec.degree) << 32) | rec.id;
    EXPECT_GE(key, prev_key);
    prev_key = key;
    EXPECT_EQ(rec.degree, g.Degree(rec.id));  // lists travel with their id
    EXPECT_FALSE(seen.Test(rec.id));          // each vertex exactly once
    seen.Set(rec.id);
    records++;
  }
  EXPECT_EQ(records, g.NumVertices());
}

TEST_F(DegreeSortTest, GraphContentUnchanged) {
  Graph g = GenerateErdosRenyi(500, 2000, 3);
  std::string input = WriteGraphFile(&scratch_, g);
  std::string output = NewPath("sorted");
  ASSERT_OK(BuildDegreeSortedAdjacencyFile(input, output, {}));
  Graph back;
  ASSERT_OK(ReadGraphFromAdjacencyFile(output, &back));
  ASSERT_EQ(back.NumVertices(), g.NumVertices());
  ASSERT_EQ(back.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto na = g.Neighbors(v);
    auto nb = back.Neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

TEST_F(DegreeSortTest, TinyMemoryBudgetForcesExternalRuns) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(3000, 1.9), 5);
  std::string input = WriteGraphFile(&scratch_, g);
  std::string output = NewPath("sorted");
  DegreeSortOptions opts;
  opts.memory_budget_bytes = 2048;  // many spill runs
  opts.fan_in = 3;                  // and multiple merge passes
  IoStats stats;
  opts.stats = &stats;
  ASSERT_OK(BuildDegreeSortedAdjacencyFile(input, output, opts));
  EXPECT_GT(stats.sort_passes, 1u);

  AdjacencyFileScanner scanner;
  ASSERT_OK(scanner.Open(output));
  VertexRecord rec;
  bool has_next = false;
  uint32_t prev_degree = 0;
  while (true) {
    ASSERT_OK(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    EXPECT_GE(rec.degree, prev_degree);
    prev_degree = rec.degree;
  }
}

TEST_F(DegreeSortTest, IoCostPropotionalToScans) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.1), 29);
  std::string input = WriteGraphFile(&scratch_, g);
  uint64_t file_size = 0;
  ASSERT_OK(GetFileSize(input, &file_size));
  std::string output = NewPath("sorted");
  DegreeSortOptions opts;
  IoStats stats;
  opts.stats = &stats;
  ASSERT_OK(BuildDegreeSortedAdjacencyFile(input, output, opts));
  // One read of the input + one write of the output, +- headers and runs:
  // with an in-memory-sized budget the total traffic stays within 3x the
  // file size (the paper's "few sequential scans" claim).
  EXPECT_LE(stats.bytes_read, 3 * file_size);
  EXPECT_LE(stats.bytes_written, 3 * file_size);
}

TEST_F(DegreeSortTest, EmptyGraph) {
  Graph g = Graph::FromEdges(0, {});
  std::string input = WriteGraphFile(&scratch_, g);
  std::string output = NewPath("sorted");
  ASSERT_OK(BuildDegreeSortedAdjacencyFile(input, output, {}));
  AdjacencyFileScanner scanner;
  ASSERT_OK(scanner.Open(output));
  EXPECT_EQ(scanner.header().num_vertices, 0u);
}

}  // namespace
}  // namespace semis
