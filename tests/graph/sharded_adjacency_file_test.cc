#include "graph/sharded_adjacency_file.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

class ShardedAdjacencyFileTest : public ScratchTest {};

// Reads every record of every shard in index order into (id, neighbors).
std::vector<std::pair<VertexId, std::vector<VertexId>>> DrainSharded(
    const std::string& manifest_path) {
  std::vector<std::pair<VertexId, std::vector<VertexId>>> out;
  ShardedAdjacencyScanner scanner;
  Status s = scanner.Open(manifest_path);
  EXPECT_TRUE(s.ok()) << s.ToString();
  if (!s.ok()) return out;
  VertexRecord rec;
  bool has_next = false;
  while (scanner.Next(&rec, &has_next).ok() && has_next) {
    out.emplace_back(rec.id, std::vector<VertexId>(
                                 rec.neighbors, rec.neighbors + rec.degree));
  }
  return out;
}

std::vector<std::pair<VertexId, std::vector<VertexId>>> DrainMonolithic(
    const std::string& path) {
  std::vector<std::pair<VertexId, std::vector<VertexId>>> out;
  AdjacencyFileScanner scanner;
  Status s = scanner.Open(path);
  EXPECT_TRUE(s.ok()) << s.ToString();
  if (!s.ok()) return out;
  VertexRecord rec;
  bool has_next = false;
  while (scanner.Next(&rec, &has_next).ok() && has_next) {
    out.emplace_back(rec.id, std::vector<VertexId>(
                                 rec.neighbors, rec.neighbors + rec.degree));
  }
  return out;
}

TEST_F(ShardedAdjacencyFileTest, RoundtripPreservesGlobalOrder) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 21);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 7));
  auto expected = DrainMonolithic(mono);
  auto actual = DrainSharded(manifest);
  ASSERT_EQ(actual.size(), expected.size());
  // Concatenating the shards must reproduce the monolithic record stream
  // exactly -- ids, order, and neighbor lists.
  EXPECT_EQ(actual, expected);
}

TEST_F(ShardedAdjacencyFileTest, ManifestTotalsMatchHeader) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(3000, 2.2), 22);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 4));
  ShardedAdjacencyManifest m;
  ASSERT_OK(ReadShardedAdjacencyManifest(manifest, &m));
  ASSERT_EQ(m.num_shards(), 4u);
  uint64_t records = 0, edges = 0;
  for (const ShardInfo& s : m.shards) {
    records += s.num_records;
    edges += s.num_directed_edges;
  }
  EXPECT_EQ(records, m.header.num_vertices);
  EXPECT_EQ(edges, m.header.num_directed_edges);
  EXPECT_EQ(m.header.num_vertices, g.NumVertices());
}

TEST_F(ShardedAdjacencyFileTest, ShardsAreBalancedByPayload) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.0), 23);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  const uint32_t kShards = 8;
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, kShards));
  ShardedAdjacencyManifest m;
  ASSERT_OK(ReadShardedAdjacencyManifest(manifest, &m));
  const uint64_t total_words =
      2 * m.header.num_vertices + m.header.num_directed_edges;
  const uint64_t budget = (total_words + kShards - 1) / kShards;
  for (uint32_t i = 0; i < kShards; ++i) {
    const uint64_t words =
        2 * m.shards[i].num_records + m.shards[i].num_directed_edges;
    // Every shard stays within budget + one max-size record of slack.
    EXPECT_LE(words, budget + 2 + m.header.max_degree) << "shard " << i;
    EXPECT_GT(m.shards[i].num_records, 0u) << "shard " << i;
  }
}

TEST_F(ShardedAdjacencyFileTest, DegreeSortedFlagSurvivesSharding) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(2000, 2.0), 24);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string sorted = NewPath("sorted");
  ASSERT_OK(BuildDegreeSortedAdjacencyFile(mono, sorted, DegreeSortOptions{}));
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(sorted, manifest, 3));
  ShardedAdjacencyScanner scanner;
  ASSERT_OK(scanner.Open(manifest));
  EXPECT_TRUE(scanner.header().IsDegreeSorted());
  // And the records really are in ascending (degree, id) order globally.
  VertexRecord rec;
  bool has_next = false;
  uint64_t prev_key = 0;
  while (true) {
    ASSERT_OK(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    uint64_t key = (static_cast<uint64_t>(rec.degree) << 32) | rec.id;
    EXPECT_GE(key, prev_key);
    prev_key = key;
  }
}

TEST_F(ShardedAdjacencyFileTest, MoreShardsThanRecordsYieldsEmptyShards) {
  Graph g = GenerateErdosRenyi(5, 4, 25);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 16));
  ShardedAdjacencyManifest m;
  ASSERT_OK(ReadShardedAdjacencyManifest(manifest, &m));
  ASSERT_EQ(m.num_shards(), 16u);
  auto records = DrainSharded(manifest);
  EXPECT_EQ(records.size(), 5u);
}

TEST_F(ShardedAdjacencyFileTest, SingleShardIsValid) {
  Graph g = GenerateErdosRenyi(100, 300, 26);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 1));
  EXPECT_EQ(DrainSharded(manifest), DrainMonolithic(mono));
}

TEST_F(ShardedAdjacencyFileTest, ShardCountOutOfRangeRejected) {
  Graph g = GenerateErdosRenyi(10, 9, 27);
  std::string mono = WriteGraphFile(&scratch_, g);
  EXPECT_TRUE(
      ShardAdjacencyFile(mono, NewPath("sharded"), 0).IsInvalidArgument());
  // A wrapped-negative or fat-fingered count must not ask the writer to
  // materialize millions of files.
  EXPECT_TRUE(ShardAdjacencyFile(mono, NewPath("sharded"),
                                 kMaxAdjacencyShards + 1)
                  .IsInvalidArgument());
  EXPECT_TRUE(ShardAdjacencyFile(mono, NewPath("sharded"), 0xFFFFFFFFu)
                  .IsInvalidArgument());
}

TEST_F(ShardedAdjacencyFileTest, CorruptManifestRejected) {
  // A monolithic adjacency file is not a manifest.
  Graph g = GenerateErdosRenyi(10, 9, 28);
  std::string mono = WriteGraphFile(&scratch_, g);
  ShardedAdjacencyManifest m;
  EXPECT_TRUE(ReadShardedAdjacencyManifest(mono, &m).IsCorruption());
}

TEST_F(ShardedAdjacencyFileTest, CursorYieldsManifestOrderAtEveryPoolSize) {
  // The manifest-ordered cursor contract: identical record stream to the
  // sequential sharded scanner, for any pool size and buffer window.
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 30);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 5));
  auto expected = DrainSharded(manifest);

  for (size_t pool_size : {1u, 2u, 4u}) {
    ThreadPool pool(pool_size);
    ManifestOrderedShardCursor cursor;
    ASSERT_OK(cursor.Open(manifest, &pool));
    std::vector<std::pair<VertexId, std::vector<VertexId>>> got;
    VertexRecord rec;
    bool has_next = false;
    while (true) {
      ASSERT_OK(cursor.Next(&rec, &has_next));
      if (!has_next) break;
      got.emplace_back(rec.id, std::vector<VertexId>(
                                   rec.neighbors, rec.neighbors + rec.degree));
    }
    ASSERT_OK(cursor.Close());
    EXPECT_EQ(got, expected) << "pool size " << pool_size;
    EXPECT_GT(cursor.peak_buffered_bytes(), 0u);
  }
}

TEST_F(ShardedAdjacencyFileTest, CursorBoundedWindowAndEarlyClose) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(4000, 2.0), 31);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 8));
  {
    // A budget of one byte must still drain everything, even with more
    // workers than the ring can hold (the starvation override keeps the
    // consumer's shard publishable).
    ThreadPool pool(4);
    ManifestOrderedShardCursor cursor;
    BlockRingOptions ring;
    ring.max_buffered_bytes = 1;
    ASSERT_OK(cursor.Open(manifest, &pool, ring));
    uint64_t records = 0;
    VertexRecord rec;
    bool has_next = false;
    while (true) {
      ASSERT_OK(cursor.Next(&rec, &has_next));
      if (!has_next) break;
      records++;
    }
    EXPECT_EQ(records, g.NumVertices());
    ASSERT_OK(cursor.Close());
  }
  {
    // Abandoning a scan mid-way (destructor-driven Close) must not hang
    // on workers blocked at the window.
    ThreadPool pool(4);
    ManifestOrderedShardCursor cursor;
    BlockRingOptions ring;
    ring.max_buffered_bytes = 1;
    ASSERT_OK(cursor.Open(manifest, &pool, ring));
    VertexRecord rec;
    bool has_next = false;
    ASSERT_OK(cursor.Next(&rec, &has_next));
    EXPECT_TRUE(has_next);
  }
}

TEST_F(ShardedAdjacencyFileTest, CursorMergesWorkerIoAndCountsOneScan) {
  Graph g = GenerateErdosRenyi(1000, 3000, 32);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 4));
  IoStats io;
  ThreadPool pool(3);
  ManifestOrderedShardCursor cursor(&io);
  ASSERT_OK(cursor.Open(manifest, &pool));
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    ASSERT_OK(cursor.Next(&rec, &has_next));
    if (!has_next) break;
  }
  ASSERT_OK(cursor.Close());
  EXPECT_EQ(io.sequential_scans, 1u);
  EXPECT_GE(io.files_opened, 5u);  // manifest + 4 shards
  uint64_t manifest_size = 0, shard0_size = 0;
  ASSERT_OK(GetFileSize(manifest, &manifest_size));
  ASSERT_OK(GetFileSize(ShardFilePath(manifest, 0), &shard0_size));
  EXPECT_GT(io.bytes_read, manifest_size + shard0_size);
}

TEST_F(ShardedAdjacencyFileTest, CursorRequiresPoolAndRejectsDoubleOpen) {
  Graph g = GenerateErdosRenyi(10, 9, 33);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 2));
  ManifestOrderedShardCursor cursor;
  EXPECT_TRUE(cursor.Open(manifest, nullptr).IsInvalidArgument());
  ThreadPool pool(2);
  ASSERT_OK(cursor.Open(manifest, &pool));
  EXPECT_TRUE(cursor.Open(manifest, &pool).IsInvalidArgument());
  ASSERT_OK(cursor.Close());
}

// Drains `cursor` through the view API into (id, neighbors).
std::vector<std::pair<VertexId, std::vector<VertexId>>> DrainCursor(
    ManifestOrderedShardCursor* cursor) {
  std::vector<std::pair<VertexId, std::vector<VertexId>>> got;
  VertexRecordView view;
  bool has_next = false;
  while (cursor->Next(&view, &has_next).ok() && has_next) {
    got.emplace_back(view.id,
                     std::vector<VertexId>(view.begin(), view.end()));
  }
  return got;
}

// Degenerate block geometry: a block capacity smaller than one record's
// neighbor list (a star center has degree ~ |V|) must still deliver the
// exact sequential stream -- the block grows for the oversized record.
TEST_F(ShardedAdjacencyFileTest, CursorBlockSmallerThanOneRecord) {
  Graph g = GenerateStar(300);  // center degree 299 >> 8-byte blocks
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 3));
  auto expected = DrainSharded(manifest);
  for (size_t budget : {size_t{1}, size_t{1} << 20}) {
    ThreadPool pool(4);
    ManifestOrderedShardCursor cursor;
    BlockRingOptions ring;
    ring.block_bytes = 8;
    ring.max_buffered_bytes = budget;
    ASSERT_OK(cursor.Open(manifest, &pool, ring));
    EXPECT_EQ(DrainCursor(&cursor), expected) << "budget " << budget;
    ASSERT_OK(cursor.Close());
  }
}

// A single-block ring (the budget admits exactly one block at a time)
// degenerates to strict hand-over-hand pipelining and must stay
// byte-identical to the sequential scan.
TEST_F(ShardedAdjacencyFileTest, CursorSingleBlockRing) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(3000, 2.0), 35);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 6));
  auto expected = DrainSharded(manifest);
  ThreadPool pool(3);
  ManifestOrderedShardCursor cursor;
  BlockRingOptions ring;
  ring.block_bytes = 512;
  ring.max_buffered_bytes = 512;  // one block in flight
  ASSERT_OK(cursor.Open(manifest, &pool, ring));
  EXPECT_EQ(DrainCursor(&cursor), expected);
  ASSERT_OK(cursor.Close());
  EXPECT_GT(cursor.blocks_decoded(), 1u);
}

// Empty shards in the MIDDLE of the manifest (the sharding writer only
// produces trailing empties, but compaction can empty any shard): both
// the sequential scanner and the cursor must cross them transparently.
TEST_F(ShardedAdjacencyFileTest, InteriorEmptyShardsYieldSequentialStream) {
  Graph g = GenerateErdosRenyi(200, 600, 36);
  std::string mono = WriteGraphFile(&scratch_, g);
  auto expected = DrainMonolithic(mono);
  ASSERT_EQ(expected.size(), 200u);

  // Hand-build a 4-shard file: [records 0..99][empty][records 100..199]
  // [empty] so one empty shard sits inside and one trails.
  std::string manifest = NewPath("holey");
  ShardedAdjacencyManifest m;
  AdjacencyFileScanner probe;
  ASSERT_OK(probe.Open(mono));
  m.header = probe.header();
  ASSERT_OK(probe.Close());
  m.shards.resize(4);
  const size_t split = 100;
  for (uint32_t k = 0; k < 4; ++k) {
    SequentialFileWriter writer;
    ASSERT_OK(writer.Open(ShardFilePath(manifest, k)));
    ASSERT_OK(WriteAdjacencyShardHeader(&writer, k, m.header.num_vertices));
    const size_t begin = k == 0 ? 0 : (k == 2 ? split : expected.size());
    const size_t end = k == 0 ? split : (k == 2 ? expected.size() : begin);
    for (size_t i = begin; i < end; ++i) {
      ASSERT_OK(writer.AppendU32(expected[i].first));
      ASSERT_OK(writer.AppendU32(
          static_cast<uint32_t>(expected[i].second.size())));
      if (!expected[i].second.empty()) {
        ASSERT_OK(writer.Append(expected[i].second.data(),
                                expected[i].second.size() *
                                    sizeof(VertexId)));
      }
      m.shards[k].num_records++;
      m.shards[k].num_directed_edges += expected[i].second.size();
    }
    ASSERT_OK(writer.Close());
  }
  ASSERT_OK(WriteShardedAdjacencyManifest(manifest, m));

  EXPECT_EQ(DrainSharded(manifest), expected);
  for (size_t pool_size : {1u, 2u, 4u}) {
    ThreadPool pool(pool_size);
    ManifestOrderedShardCursor cursor;
    ASSERT_OK(cursor.Open(manifest, &pool));
    EXPECT_EQ(DrainCursor(&cursor), expected) << "pool " << pool_size;
    ASSERT_OK(cursor.Close());
  }
}

// Close() racing workers blocked on the ring's byte budget (and a
// consumer mid-scan): must neither hang nor crash, at any pool size, under
// ASan/TSan-style repetition. The concurrent Next either keeps yielding
// records or fails cleanly once the cancel lands.
TEST_F(ShardedAdjacencyFileTest, CursorConcurrentCloseStress) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(3000, 2.0), 37);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 8));
  for (size_t pool_size : {1u, 2u, 8u}) {
    for (int rep = 0; rep < 20; ++rep) {
      ThreadPool pool(pool_size);
      ManifestOrderedShardCursor cursor;
      BlockRingOptions ring;
      ring.block_bytes = 256;
      ring.max_buffered_bytes = 256;  // keeps decoders parked on space_cv_
      ASSERT_OK(cursor.Open(manifest, &pool, ring));
      VertexRecordView view;
      bool has_next = false;
      ASSERT_OK(cursor.Next(&view, &has_next));
      std::atomic<bool> closed{false};
      std::thread closer([&] {
        Status s = cursor.Close();
        EXPECT_TRUE(s.ok()) << s.ToString();
        closed.store(true);
      });
      // Keep consuming into the teeth of the concurrent Close; every
      // outcome except a hang or a crash is legal.
      uint64_t drained = 0;
      while (true) {
        Status s = cursor.Next(&view, &has_next);
        if (!s.ok() || !has_next) break;
        drained++;
      }
      closer.join();
      EXPECT_TRUE(closed.load());
      ASSERT_OK(cursor.Close());  // idempotent after the race
      (void)drained;
    }
  }
}

// An abandoned scan must hand the consumer's in-flight block back to an
// external pool (via destruction or reopen) instead of stranding its
// warmed arena -- otherwise every early-closed scan erodes the pool's
// steady-state zero-allocation property.
TEST_F(ShardedAdjacencyFileTest, ExternalPoolRecyclesAbandonedBlock) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(4000, 2.0), 39);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 4));
  RecordBlockPool shared_pool;
  {
    ThreadPool pool(2);
    ManifestOrderedShardCursor cursor;
    BlockRingOptions ring;
    ring.pool = &shared_pool;
    ASSERT_OK(cursor.Open(manifest, &pool, ring));
    VertexRecordView view;
    bool has_next = false;
    ASSERT_OK(cursor.Next(&view, &has_next));  // consumer now holds a block
    ASSERT_TRUE(has_next);
    ASSERT_OK(cursor.Close());
  }  // destructor must return the held block to shared_pool
  const uint64_t created_after_abandon = shared_pool.blocks_created();
  EXPECT_GT(shared_pool.pooled_capacity_bytes(), 0u);

  // A full second scan over the same pool reuses the recycled arenas.
  ThreadPool pool(2);
  ManifestOrderedShardCursor cursor;
  BlockRingOptions ring;
  ring.pool = &shared_pool;
  ASSERT_OK(cursor.Open(manifest, &pool, ring));
  uint64_t records = 0;
  VertexRecordView view;
  bool has_next = false;
  while (true) {
    ASSERT_OK(cursor.Next(&view, &has_next));
    if (!has_next) break;
    records++;
  }
  ASSERT_OK(cursor.Close());
  EXPECT_EQ(records, g.NumVertices());
  EXPECT_GE(shared_pool.blocks_created(), created_after_abandon);
}

TEST_F(ShardedAdjacencyFileTest, CursorCountersSurfaceInIoStats) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.0), 38);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 4));
  IoStats io;
  ThreadPool pool(2);
  ManifestOrderedShardCursor cursor(&io);
  BlockRingOptions ring;
  ring.block_bytes = 1024;
  ASSERT_OK(cursor.Open(manifest, &pool, ring));
  uint64_t records = 0;
  VertexRecordView view;
  bool has_next = false;
  while (true) {
    ASSERT_OK(cursor.Next(&view, &has_next));
    if (!has_next) break;
    records++;
  }
  ASSERT_OK(cursor.Close());
  EXPECT_EQ(records, g.NumVertices());
  EXPECT_EQ(io.records_decoded, g.NumVertices());
  EXPECT_GT(io.blocks_decoded, 0u);
  EXPECT_EQ(io.blocks_decoded, cursor.blocks_decoded());
  EXPECT_GT(io.arena_bytes, 0u);
  EXPECT_GT(io.peak_buffered_bytes, 0u);
  // The ring budget, not the largest shard, bounds the buffering: with
  // 1 KiB blocks the default budget (plus the bounded overshoot of the
  // starvation override) stays far below one shard of this graph.
  uint64_t min_shard_bytes = UINT64_MAX;
  for (const ShardInfo& s : cursor.manifest().shards) {
    min_shard_bytes = std::min(
        min_shard_bytes,
        (2 * s.num_records + s.num_directed_edges) * sizeof(VertexId));
  }
  EXPECT_LT(io.peak_buffered_bytes, min_shard_bytes);
}

TEST_F(ShardedAdjacencyFileTest, CloseReportsErrorOfUnconsumedShard) {
  // Regression: an abandoned scan used to swallow a decode error in a
  // shard the consumer never reached -- Close() returned OK and a
  // truncated shard went entirely unreported. Close must surface the
  // first such error.
  Graph g = GenerateErdosRenyi(2000, 6000, 34);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 4));
  // Chop the tail off the LAST shard, so the damage sits in a shard the
  // consumer (which reads nothing at all here) never gets near.
  const std::string shard3 = ShardFilePath(manifest, 3);
  uint64_t size = 0;
  ASSERT_OK(GetFileSize(shard3, &size));
  ASSERT_GT(size, 16u);
  std::filesystem::resize_file(shard3, size - 7);

  ThreadPool pool(2);
  ManifestOrderedShardCursor cursor;
  BlockRingOptions ring;
  // A budget far above the whole file: no decoder ever stalls on
  // back-pressure, so WaitForCompletion below is deterministic.
  ring.max_buffered_bytes = 16u << 20;
  ASSERT_OK(cursor.Open(manifest, &pool, ring));
  // Let every decoder run to completion, so shard 3 has recorded its
  // error before Close inspects the streams.
  pool.WaitForCompletion();
  Status closed = cursor.Close();
  EXPECT_FALSE(closed.ok()) << "truncated unconsumed shard reported OK";
  // Close stays idempotent: the error is reported once, not latched.
  EXPECT_OK(cursor.Close());
}

TEST_F(ShardedAdjacencyFileTest, TruncatedShardSurfacesThroughNext) {
  // The in-band flavor of the same contract: a consumer that DOES reach
  // the damaged shard gets the error from Next, after every record of
  // the healthy shards before it.
  Graph g = GenerateErdosRenyi(2000, 6000, 35);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 3));
  ShardedAdjacencyManifest m;
  ASSERT_OK(ReadShardedAdjacencyManifest(manifest, &m));
  const std::string shard1 = ShardFilePath(manifest, 1);
  uint64_t size = 0;
  ASSERT_OK(GetFileSize(shard1, &size));
  std::filesystem::resize_file(shard1, size - 7);

  ThreadPool pool(2);
  ManifestOrderedShardCursor cursor;
  ASSERT_OK(cursor.Open(manifest, &pool));
  VertexRecordView view;
  bool has_next = false;
  uint64_t yielded = 0;
  Status s;
  while ((s = cursor.Next(&view, &has_next)).ok() && has_next) yielded++;
  EXPECT_FALSE(s.ok()) << "scan over a truncated shard completed OK";
  // Every record of the healthy shard 0 was delivered before the error.
  EXPECT_GE(yielded, m.shards[0].num_records);
  // The scan never reached the end, so Close re-reports the failure.
  EXPECT_FALSE(cursor.Close().ok());
}

TEST_F(ShardedAdjacencyFileTest, ShardReaderValidatesIndex) {
  Graph g = GenerateErdosRenyi(50, 100, 29);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 2));
  ShardedAdjacencyManifest m;
  ASSERT_OK(ReadShardedAdjacencyManifest(manifest, &m));
  AdjacencyShardReader reader;
  EXPECT_TRUE(reader.Open(manifest, m, 2).IsInvalidArgument());
}

}  // namespace
}  // namespace semis
