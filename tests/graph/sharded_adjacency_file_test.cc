#include "graph/sharded_adjacency_file.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

class ShardedAdjacencyFileTest : public ScratchTest {};

// Reads every record of every shard in index order into (id, neighbors).
std::vector<std::pair<VertexId, std::vector<VertexId>>> DrainSharded(
    const std::string& manifest_path) {
  std::vector<std::pair<VertexId, std::vector<VertexId>>> out;
  ShardedAdjacencyScanner scanner;
  Status s = scanner.Open(manifest_path);
  EXPECT_TRUE(s.ok()) << s.ToString();
  if (!s.ok()) return out;
  VertexRecord rec;
  bool has_next = false;
  while (scanner.Next(&rec, &has_next).ok() && has_next) {
    out.emplace_back(rec.id, std::vector<VertexId>(
                                 rec.neighbors, rec.neighbors + rec.degree));
  }
  return out;
}

std::vector<std::pair<VertexId, std::vector<VertexId>>> DrainMonolithic(
    const std::string& path) {
  std::vector<std::pair<VertexId, std::vector<VertexId>>> out;
  AdjacencyFileScanner scanner;
  Status s = scanner.Open(path);
  EXPECT_TRUE(s.ok()) << s.ToString();
  if (!s.ok()) return out;
  VertexRecord rec;
  bool has_next = false;
  while (scanner.Next(&rec, &has_next).ok() && has_next) {
    out.emplace_back(rec.id, std::vector<VertexId>(
                                 rec.neighbors, rec.neighbors + rec.degree));
  }
  return out;
}

TEST_F(ShardedAdjacencyFileTest, RoundtripPreservesGlobalOrder) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 21);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 7));
  auto expected = DrainMonolithic(mono);
  auto actual = DrainSharded(manifest);
  ASSERT_EQ(actual.size(), expected.size());
  // Concatenating the shards must reproduce the monolithic record stream
  // exactly -- ids, order, and neighbor lists.
  EXPECT_EQ(actual, expected);
}

TEST_F(ShardedAdjacencyFileTest, ManifestTotalsMatchHeader) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(3000, 2.2), 22);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 4));
  ShardedAdjacencyManifest m;
  ASSERT_OK(ReadShardedAdjacencyManifest(manifest, &m));
  ASSERT_EQ(m.num_shards(), 4u);
  uint64_t records = 0, edges = 0;
  for (const ShardInfo& s : m.shards) {
    records += s.num_records;
    edges += s.num_directed_edges;
  }
  EXPECT_EQ(records, m.header.num_vertices);
  EXPECT_EQ(edges, m.header.num_directed_edges);
  EXPECT_EQ(m.header.num_vertices, g.NumVertices());
}

TEST_F(ShardedAdjacencyFileTest, ShardsAreBalancedByPayload) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.0), 23);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  const uint32_t kShards = 8;
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, kShards));
  ShardedAdjacencyManifest m;
  ASSERT_OK(ReadShardedAdjacencyManifest(manifest, &m));
  const uint64_t total_words =
      2 * m.header.num_vertices + m.header.num_directed_edges;
  const uint64_t budget = (total_words + kShards - 1) / kShards;
  for (uint32_t i = 0; i < kShards; ++i) {
    const uint64_t words =
        2 * m.shards[i].num_records + m.shards[i].num_directed_edges;
    // Every shard stays within budget + one max-size record of slack.
    EXPECT_LE(words, budget + 2 + m.header.max_degree) << "shard " << i;
    EXPECT_GT(m.shards[i].num_records, 0u) << "shard " << i;
  }
}

TEST_F(ShardedAdjacencyFileTest, DegreeSortedFlagSurvivesSharding) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(2000, 2.0), 24);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string sorted = NewPath("sorted");
  ASSERT_OK(BuildDegreeSortedAdjacencyFile(mono, sorted, DegreeSortOptions{}));
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(sorted, manifest, 3));
  ShardedAdjacencyScanner scanner;
  ASSERT_OK(scanner.Open(manifest));
  EXPECT_TRUE(scanner.header().IsDegreeSorted());
  // And the records really are in ascending (degree, id) order globally.
  VertexRecord rec;
  bool has_next = false;
  uint64_t prev_key = 0;
  while (true) {
    ASSERT_OK(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    uint64_t key = (static_cast<uint64_t>(rec.degree) << 32) | rec.id;
    EXPECT_GE(key, prev_key);
    prev_key = key;
  }
}

TEST_F(ShardedAdjacencyFileTest, MoreShardsThanRecordsYieldsEmptyShards) {
  Graph g = GenerateErdosRenyi(5, 4, 25);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 16));
  ShardedAdjacencyManifest m;
  ASSERT_OK(ReadShardedAdjacencyManifest(manifest, &m));
  ASSERT_EQ(m.num_shards(), 16u);
  auto records = DrainSharded(manifest);
  EXPECT_EQ(records.size(), 5u);
}

TEST_F(ShardedAdjacencyFileTest, SingleShardIsValid) {
  Graph g = GenerateErdosRenyi(100, 300, 26);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 1));
  EXPECT_EQ(DrainSharded(manifest), DrainMonolithic(mono));
}

TEST_F(ShardedAdjacencyFileTest, ShardCountOutOfRangeRejected) {
  Graph g = GenerateErdosRenyi(10, 9, 27);
  std::string mono = WriteGraphFile(&scratch_, g);
  EXPECT_TRUE(
      ShardAdjacencyFile(mono, NewPath("sharded"), 0).IsInvalidArgument());
  // A wrapped-negative or fat-fingered count must not ask the writer to
  // materialize millions of files.
  EXPECT_TRUE(ShardAdjacencyFile(mono, NewPath("sharded"),
                                 kMaxAdjacencyShards + 1)
                  .IsInvalidArgument());
  EXPECT_TRUE(ShardAdjacencyFile(mono, NewPath("sharded"), 0xFFFFFFFFu)
                  .IsInvalidArgument());
}

TEST_F(ShardedAdjacencyFileTest, CorruptManifestRejected) {
  // A monolithic adjacency file is not a manifest.
  Graph g = GenerateErdosRenyi(10, 9, 28);
  std::string mono = WriteGraphFile(&scratch_, g);
  ShardedAdjacencyManifest m;
  EXPECT_TRUE(ReadShardedAdjacencyManifest(mono, &m).IsCorruption());
}

TEST_F(ShardedAdjacencyFileTest, CursorYieldsManifestOrderAtEveryPoolSize) {
  // The manifest-ordered cursor contract: identical record stream to the
  // sequential sharded scanner, for any pool size and buffer window.
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 30);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 5));
  auto expected = DrainSharded(manifest);

  for (size_t pool_size : {1u, 2u, 4u}) {
    ThreadPool pool(pool_size);
    ManifestOrderedShardCursor cursor;
    ASSERT_OK(cursor.Open(manifest, &pool));
    std::vector<std::pair<VertexId, std::vector<VertexId>>> got;
    VertexRecord rec;
    bool has_next = false;
    while (true) {
      ASSERT_OK(cursor.Next(&rec, &has_next));
      if (!has_next) break;
      got.emplace_back(rec.id, std::vector<VertexId>(
                                   rec.neighbors, rec.neighbors + rec.degree));
    }
    ASSERT_OK(cursor.Close());
    EXPECT_EQ(got, expected) << "pool size " << pool_size;
    EXPECT_GT(cursor.peak_buffered_bytes(), 0u);
  }
}

TEST_F(ShardedAdjacencyFileTest, CursorBoundedWindowAndEarlyClose) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(4000, 2.0), 31);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 8));
  {
    // A window of one shard must still drain everything, even with more
    // workers than slots.
    ThreadPool pool(4);
    ManifestOrderedShardCursor cursor;
    ASSERT_OK(cursor.Open(manifest, &pool, /*max_buffered_shards=*/1));
    uint64_t records = 0;
    VertexRecord rec;
    bool has_next = false;
    while (true) {
      ASSERT_OK(cursor.Next(&rec, &has_next));
      if (!has_next) break;
      records++;
    }
    EXPECT_EQ(records, g.NumVertices());
    ASSERT_OK(cursor.Close());
  }
  {
    // Abandoning a scan mid-way (destructor-driven Close) must not hang
    // on workers blocked at the window.
    ThreadPool pool(4);
    ManifestOrderedShardCursor cursor;
    ASSERT_OK(cursor.Open(manifest, &pool, /*max_buffered_shards=*/1));
    VertexRecord rec;
    bool has_next = false;
    ASSERT_OK(cursor.Next(&rec, &has_next));
    EXPECT_TRUE(has_next);
  }
}

TEST_F(ShardedAdjacencyFileTest, CursorMergesWorkerIoAndCountsOneScan) {
  Graph g = GenerateErdosRenyi(1000, 3000, 32);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 4));
  IoStats io;
  ThreadPool pool(3);
  ManifestOrderedShardCursor cursor(&io);
  ASSERT_OK(cursor.Open(manifest, &pool));
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    ASSERT_OK(cursor.Next(&rec, &has_next));
    if (!has_next) break;
  }
  ASSERT_OK(cursor.Close());
  EXPECT_EQ(io.sequential_scans, 1u);
  EXPECT_GE(io.files_opened, 5u);  // manifest + 4 shards
  uint64_t manifest_size = 0, shard0_size = 0;
  ASSERT_OK(GetFileSize(manifest, &manifest_size));
  ASSERT_OK(GetFileSize(ShardFilePath(manifest, 0), &shard0_size));
  EXPECT_GT(io.bytes_read, manifest_size + shard0_size);
}

TEST_F(ShardedAdjacencyFileTest, CursorRequiresPoolAndRejectsDoubleOpen) {
  Graph g = GenerateErdosRenyi(10, 9, 33);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 2));
  ManifestOrderedShardCursor cursor;
  EXPECT_TRUE(cursor.Open(manifest, nullptr).IsInvalidArgument());
  ThreadPool pool(2);
  ASSERT_OK(cursor.Open(manifest, &pool));
  EXPECT_TRUE(cursor.Open(manifest, &pool).IsInvalidArgument());
  ASSERT_OK(cursor.Close());
}

TEST_F(ShardedAdjacencyFileTest, ShardReaderValidatesIndex) {
  Graph g = GenerateErdosRenyi(50, 100, 29);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("sharded");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 2));
  ShardedAdjacencyManifest m;
  ASSERT_OK(ReadShardedAdjacencyManifest(manifest, &m));
  AdjacencyShardReader reader;
  EXPECT_TRUE(reader.Open(manifest, m, 2).IsInvalidArgument());
}

}  // namespace
}  // namespace semis
