#include "graph/adjacency_file.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;

class AdjacencyFileTest : public ScratchTest {};

TEST_F(AdjacencyFileTest, WriteAndScanRoundtrip) {
  std::string path = NewPath("adj");
  IoStats stats;
  {
    AdjacencyFileWriter w(&stats);
    ASSERT_OK(w.Open(path, 3, 4, 2, kAdjFlagDegreeSorted));
    VertexId n0[] = {1, 2};
    VertexId n1[] = {0};
    VertexId n2[] = {0};
    ASSERT_OK(w.AppendVertex(1, n1, 1));
    ASSERT_OK(w.AppendVertex(2, n2, 1));
    ASSERT_OK(w.AppendVertex(0, n0, 2));
    ASSERT_OK(w.Finish());
  }
  AdjacencyFileScanner scanner(&stats);
  ASSERT_OK(scanner.Open(path));
  EXPECT_EQ(scanner.header().num_vertices, 3u);
  EXPECT_EQ(scanner.header().num_directed_edges, 4u);
  EXPECT_EQ(scanner.header().max_degree, 2u);
  EXPECT_TRUE(scanner.header().IsDegreeSorted());

  VertexRecord rec;
  bool has_next = false;
  ASSERT_OK(scanner.Next(&rec, &has_next));
  ASSERT_TRUE(has_next);
  EXPECT_EQ(rec.id, 1u);  // file order preserved, not id order
  EXPECT_EQ(rec.degree, 1u);
  EXPECT_EQ(rec.neighbors[0], 0u);
  ASSERT_OK(scanner.Next(&rec, &has_next));
  EXPECT_EQ(rec.id, 2u);
  ASSERT_OK(scanner.Next(&rec, &has_next));
  EXPECT_EQ(rec.id, 0u);
  EXPECT_EQ(rec.degree, 2u);
  ASSERT_OK(scanner.Next(&rec, &has_next));
  EXPECT_FALSE(has_next);
  EXPECT_EQ(stats.sequential_scans, 1u);
}

TEST_F(AdjacencyFileTest, RewindCountsScan) {
  std::string path = NewPath("adj");
  IoStats stats;
  {
    AdjacencyFileWriter w;
    ASSERT_OK(w.Open(path, 1, 0, 0, 0));
    ASSERT_OK(w.AppendVertex(0, nullptr, 0));
    ASSERT_OK(w.Finish());
  }
  AdjacencyFileScanner scanner(&stats);
  ASSERT_OK(scanner.Open(path));
  ASSERT_OK(scanner.Rewind());
  ASSERT_OK(scanner.Rewind());
  EXPECT_EQ(stats.sequential_scans, 3u);
  VertexRecord rec;
  bool has_next = false;
  ASSERT_OK(scanner.Next(&rec, &has_next));
  EXPECT_TRUE(has_next);
  EXPECT_EQ(rec.id, 0u);
}

TEST_F(AdjacencyFileTest, WriterValidatesCounts) {
  {
    AdjacencyFileWriter w;
    ASSERT_OK(w.Open(NewPath("v"), 2, 0, 0, 0));
    ASSERT_OK(w.AppendVertex(0, nullptr, 0));
    EXPECT_TRUE(w.Finish().IsInvalidArgument());  // missing one vertex
  }
  {
    AdjacencyFileWriter w;
    ASSERT_OK(w.Open(NewPath("e"), 1, 5, 5, 0));
    ASSERT_OK(w.AppendVertex(0, nullptr, 0));
    EXPECT_TRUE(w.Finish().IsInvalidArgument());  // declared 5 edges
  }
  {
    AdjacencyFileWriter w;
    ASSERT_OK(w.Open(NewPath("r"), 1, 0, 0, 0));
    EXPECT_TRUE(w.AppendVertex(3, nullptr, 0).IsInvalidArgument());
  }
  {
    AdjacencyFileWriter w;
    ASSERT_OK(w.Open(NewPath("d"), 2, 2, 0, 0));  // max_degree 0
    VertexId nb[] = {1};
    EXPECT_TRUE(w.AppendVertex(0, nb, 1).IsInvalidArgument());
  }
}

TEST_F(AdjacencyFileTest, BadMagicRejected) {
  std::string path = NewPath("junk");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    for (int i = 0; i < 10; ++i) ASSERT_OK(w.AppendU32(0x12345678));
    ASSERT_OK(w.Close());
  }
  AdjacencyFileScanner scanner;
  EXPECT_TRUE(scanner.Open(path).IsCorruption());
}

TEST_F(AdjacencyFileTest, TruncatedFileDetected) {
  std::string full = NewPath("full");
  {
    AdjacencyFileWriter w;
    ASSERT_OK(w.Open(full, 2, 2, 1, 0));
    VertexId n0[] = {1};
    VertexId n1[] = {0};
    ASSERT_OK(w.AppendVertex(0, n0, 1));
    ASSERT_OK(w.AppendVertex(1, n1, 1));
    ASSERT_OK(w.Finish());
  }
  // Copy all but the last 6 bytes.
  std::string truncated = NewPath("trunc");
  {
    uint64_t size = 0;
    ASSERT_OK(GetFileSize(full, &size));
    SequentialFileReader r;
    ASSERT_OK(r.Open(full));
    std::vector<char> bytes(size - 6);
    ASSERT_OK(r.ReadExact(bytes.data(), bytes.size()));
    SequentialFileWriter w;
    ASSERT_OK(w.Open(truncated));
    ASSERT_OK(w.Append(bytes.data(), bytes.size()));
    ASSERT_OK(w.Close());
  }
  AdjacencyFileScanner scanner;
  ASSERT_OK(scanner.Open(truncated));
  VertexRecord rec;
  bool has_next = false;
  Status s = scanner.Next(&rec, &has_next);  // first record is intact
  if (s.ok()) s = scanner.Next(&rec, &has_next);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(AdjacencyFileTest, OutOfRangeNeighborDetected) {
  std::string path = NewPath("oor");
  {
    // Hand-craft a file whose record references vertex 9 out of 2.
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.AppendU32(0x4A444153u));  // magic
    ASSERT_OK(w.AppendU32(1));            // version
    ASSERT_OK(w.AppendU64(2));            // vertices
    ASSERT_OK(w.AppendU64(2));            // directed edges
    ASSERT_OK(w.AppendU32(0));            // flags
    ASSERT_OK(w.AppendU32(1));            // max degree
    ASSERT_OK(w.AppendU32(0));            // id
    ASSERT_OK(w.AppendU32(1));            // degree
    ASSERT_OK(w.AppendU32(9));            // neighbor out of range
    ASSERT_OK(w.AppendU32(1));
    ASSERT_OK(w.AppendU32(0));
    ASSERT_OK(w.Close());
  }
  AdjacencyFileScanner scanner;
  ASSERT_OK(scanner.Open(path));
  VertexRecord rec;
  bool has_next = false;
  EXPECT_TRUE(scanner.Next(&rec, &has_next).IsCorruption());
}

TEST_F(AdjacencyFileTest, UnsupportedVersionRejected) {
  std::string path = NewPath("ver");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.AppendU32(0x4A444153u));
    ASSERT_OK(w.AppendU32(99));  // future version
    ASSERT_OK(w.AppendU64(0));
    ASSERT_OK(w.AppendU64(0));
    ASSERT_OK(w.AppendU32(0));
    ASSERT_OK(w.AppendU32(0));
    ASSERT_OK(w.Close());
  }
  AdjacencyFileScanner scanner;
  Status s = scanner.Open(path);
  EXPECT_EQ(s.code(), Status::Code::kNotSupported);
}

TEST_F(AdjacencyFileTest, EmptyGraphFile) {
  std::string path = NewPath("empty");
  {
    AdjacencyFileWriter w;
    ASSERT_OK(w.Open(path, 0, 0, 0, 0));
    ASSERT_OK(w.Finish());
  }
  AdjacencyFileScanner scanner;
  ASSERT_OK(scanner.Open(path));
  VertexRecord rec;
  bool has_next = true;
  ASSERT_OK(scanner.Next(&rec, &has_next));
  EXPECT_FALSE(has_next);
}

}  // namespace
}  // namespace semis
