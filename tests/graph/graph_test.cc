#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace semis {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g = Graph::FromEdges(0, {});
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
}

TEST(GraphTest, VerticesWithoutEdges) {
  Graph g = Graph::FromEdges(5, {});
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.NumEdges(), 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.Degree(v), 0u);
}

TEST(GraphTest, BasicTriangle) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.NumDirectedEdges(), 6u);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.Degree(v), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_EQ(g.MaxDegree(), 2u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0);
}

TEST(GraphTest, SelfLoopsDropped) {
  Graph g = Graph::FromEdges(3, {{0, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, DuplicateEdgesDropped) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 0}, {0, 1}, {0, 2}});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(GraphTest, OutOfRangeEdgesDropped) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {0, 7}, {9, 1}});
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphTest, NeighborsAreSortedAscending) {
  Graph g = Graph::FromEdges(6, {{3, 5}, {3, 1}, {3, 4}, {3, 0}, {3, 2}});
  auto nbrs = g.Neighbors(3);
  ASSERT_EQ(nbrs.size(), 5u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.MaxDegree(), 5u);
}

TEST(GraphTest, HasEdgeUsesSmallerList) {
  // Star: center 0 has large degree; HasEdge must work both directions.
  std::vector<Edge> edges;
  for (VertexId v = 1; v < 100; ++v) edges.push_back({0, v});
  Graph g = Graph::FromEdges(100, edges);
  EXPECT_TRUE(g.HasEdge(0, 57));
  EXPECT_TRUE(g.HasEdge(57, 0));
  EXPECT_FALSE(g.HasEdge(57, 58));
  EXPECT_FALSE(g.HasEdge(0, 100));  // out of range id
}

TEST(GraphTest, MemoryBytesScalesWithSize) {
  Graph small = Graph::FromEdges(10, {{0, 1}});
  Graph big = Graph::FromEdges(10000, {{0, 1}});
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

}  // namespace
}  // namespace semis
