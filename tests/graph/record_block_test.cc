#include "graph/record_block.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace semis {
namespace {

std::vector<VertexId> Neighbors(const VertexRecordView& view) {
  return std::vector<VertexId>(view.begin(), view.end());
}

TEST(RecordBlockTest, AppendAndViewRoundtrip) {
  RecordBlock block;
  const std::vector<VertexId> a = {3, 5, 9};
  VertexId* dst = block.BeginRecord(1, 3);
  std::memcpy(dst, a.data(), a.size() * sizeof(VertexId));
  block.CommitRecord();
  dst = block.BeginRecord(7, 0);
  (void)dst;
  block.CommitRecord();
  const std::vector<VertexId> b = {2};
  dst = block.BeginRecord(4, 1);
  dst[0] = b[0];
  block.CommitRecord();

  ASSERT_EQ(block.num_records(), 3u);
  EXPECT_EQ(block.view(0).id, 1u);
  EXPECT_EQ(block.view(0).degree, 3u);
  EXPECT_EQ(Neighbors(block.view(0)), a);
  EXPECT_EQ(block.view(1).id, 7u);
  EXPECT_EQ(block.view(1).degree, 0u);
  EXPECT_EQ(block.view(2).id, 4u);
  EXPECT_EQ(Neighbors(block.view(2)), b);
}

TEST(RecordBlockTest, AbandonRollsTheArenaBack) {
  RecordBlock block;
  VertexId* dst = block.BeginRecord(1, 2);
  dst[0] = 10;
  dst[1] = 11;
  block.CommitRecord();
  const size_t committed = block.payload_bytes();

  // A staged-then-abandoned record must leave no trace: same payload, and
  // the next record lands where the abandoned one started.
  dst = block.BeginRecord(2, 5);
  dst[0] = 99;
  block.AbandonRecord();
  EXPECT_EQ(block.num_records(), 1u);
  EXPECT_EQ(block.payload_bytes(), committed);

  dst = block.BeginRecord(3, 1);
  dst[0] = 42;
  block.CommitRecord();
  ASSERT_EQ(block.num_records(), 2u);
  EXPECT_EQ(Neighbors(block.view(0)), (std::vector<VertexId>{10, 11}));
  EXPECT_EQ(Neighbors(block.view(1)), (std::vector<VertexId>{42}));
}

TEST(RecordBlockTest, PayloadCountsArenaAndIndex) {
  RecordBlock block;
  EXPECT_EQ(block.payload_bytes(), 0u);
  VertexId* dst = block.BeginRecord(0, 4);
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<VertexId>(i);
  // Staged but uncommitted records are not payload yet.
  EXPECT_EQ(block.payload_bytes(), 0u);
  block.CommitRecord();
  EXPECT_GE(block.payload_bytes(), 4 * sizeof(VertexId));
  block.Clear();
  EXPECT_EQ(block.payload_bytes(), 0u);
  EXPECT_EQ(block.num_records(), 0u);
  EXPECT_GT(block.capacity_bytes(), 0u);  // Clear keeps the arena
}

TEST(RecordBlockTest, PoolRecyclesCapacity) {
  RecordBlockPool pool;
  RecordBlock block = pool.Acquire();
  EXPECT_EQ(pool.blocks_created(), 1u);
  VertexId* dst = block.BeginRecord(0, 1000);
  for (int i = 0; i < 1000; ++i) dst[i] = 0;
  block.CommitRecord();
  const size_t grown = block.capacity_bytes();
  EXPECT_GE(grown, 1000 * sizeof(VertexId));
  pool.Release(std::move(block));
  EXPECT_GE(pool.pooled_capacity_bytes(), grown);

  // Steady state: re-acquiring hands back the same arena, empty but with
  // capacity intact, and creates no new block.
  RecordBlock again = pool.Acquire();
  EXPECT_EQ(pool.blocks_created(), 1u);
  EXPECT_TRUE(again.empty());
  EXPECT_EQ(again.capacity_bytes(), grown);
  pool.Release(std::move(again));

  // A second concurrent checkout does create a block.
  RecordBlock a = pool.Acquire();
  RecordBlock b = pool.Acquire();
  EXPECT_EQ(pool.blocks_created(), 2u);
  pool.Release(std::move(a));
  pool.Release(std::move(b));
}

TEST(RecordBlockTest, OversizedRecordGrowsBeyondNominalCapacity) {
  // Block geometry is a target, not a limit: one record larger than any
  // configured block size must still be representable.
  RecordBlock block;
  const uint32_t degree = 100000;
  VertexId* dst = block.BeginRecord(5, degree);
  for (uint32_t i = 0; i < degree; ++i) dst[i] = i;
  block.CommitRecord();
  ASSERT_EQ(block.num_records(), 1u);
  const VertexRecordView view = block.view(0);
  EXPECT_EQ(view.degree, degree);
  EXPECT_EQ(view.neighbor(degree - 1), degree - 1);
  EXPECT_GE(block.payload_bytes(), degree * sizeof(VertexId));
}

}  // namespace
}  // namespace semis
