#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace semis {
namespace {

TEST(RandomTest, SameSeedSameStream) {
  Random a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) equal++;
  }
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, ReseedRestartsStream) {
  Random a(7);
  uint64_t first = a.Next64();
  a.Next64();
  a.Reseed(7);
  EXPECT_EQ(a.Next64(), first);
}

TEST(RandomTest, UniformInRange) {
  Random rng(3);
  for (uint64_t n : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(n), n);
    }
  }
}

TEST(RandomTest, UniformCoversAllResidues) {
  Random rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 5000; ++i) seen[rng.Uniform(10)]++;
  for (int count : seen) {
    EXPECT_GT(count, 300);  // expectation 500; loose tolerance
    EXPECT_LT(count, 700);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, ShuffleIsPermutation) {
  std::vector<int> data(257);
  std::iota(data.begin(), data.end(), 0);
  Random rng(9);
  rng.Shuffle(data.data(), data.size());
  std::vector<int> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 257; ++i) EXPECT_EQ(sorted[i], i);
  // And it actually moved something.
  bool moved = false;
  for (int i = 0; i < 257; ++i) {
    if (data[i] != i) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(RandomTest, ShuffleEmptyAndSingleton) {
  std::vector<int> empty;
  Random rng(1);
  rng.Shuffle(empty.data(), 0);  // must not crash
  std::vector<int> one{42};
  rng.Shuffle(one.data(), 1);
  EXPECT_EQ(one[0], 42);
}

}  // namespace
}  // namespace semis
