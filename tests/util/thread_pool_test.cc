#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace semis {
namespace {

TEST(ThreadPoolTest, RunsEveryItemExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr size_t kItems = 1000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.ParallelFor(kItems, [&](size_t item, size_t worker) {
    EXPECT_LT(worker, 4u);
    hits[item].fetch_add(1);
  });
  for (size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, SingleWorkerProcessesInOrder) {
  // The sequential-reference property the parallel executor relies on.
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(100, [&](size_t item, size_t) { order.push_back(item); });
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.ParallelFor(17, [&](size_t, size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ThreadPoolTest, EmptyJobReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, BeginWaitSplitAllowsProducerConsumer) {
  // The submitting thread keeps running between Begin and Wait -- the
  // pipeline shape the manifest-ordered shard cursor is built on.
  ThreadPool pool(2);
  constexpr size_t kItems = 64;
  std::vector<std::atomic<int>> produced(kItems);
  for (auto& p : produced) p.store(0);
  pool.BeginParallelFor(kItems,
                        [&](size_t item, size_t) { produced[item].store(1); });
  // Consume from the submitting thread while workers produce.
  size_t seen = 0;
  while (seen < kItems) {
    seen = 0;
    for (auto& p : produced) seen += static_cast<size_t>(p.load());
  }
  pool.WaitForCompletion();
  for (auto& p : produced) EXPECT_EQ(p.load(), 1);
}

TEST(ThreadPoolTest, WaitWithoutBeginIsNoOp) {
  ThreadPool pool(2);
  pool.WaitForCompletion();
  pool.BeginParallelFor(0, [&](size_t, size_t) {});
  pool.WaitForCompletion();  // empty job never became active
  std::atomic<size_t> count{0};
  pool.ParallelFor(5, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 5u);
}

TEST(ThreadPoolTest, BeginWaitReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  for (int job = 0; job < 20; ++job) {
    pool.BeginParallelFor(11, [&](size_t, size_t) { total.fetch_add(1); });
    pool.WaitForCompletion();
  }
  EXPECT_EQ(total.load(), 20u * 11u);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<size_t> count{0};
  pool.ParallelFor(10, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10u);
}

}  // namespace
}  // namespace semis
