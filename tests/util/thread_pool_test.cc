#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace semis {
namespace {

TEST(ThreadPoolTest, RunsEveryItemExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr size_t kItems = 1000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.ParallelFor(kItems, [&](size_t item, size_t worker) {
    EXPECT_LT(worker, 4u);
    hits[item].fetch_add(1);
  });
  for (size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, SingleWorkerProcessesInOrder) {
  // The sequential-reference property the parallel executor relies on.
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(100, [&](size_t item, size_t) { order.push_back(item); });
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.ParallelFor(17, [&](size_t, size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ThreadPoolTest, EmptyJobReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<size_t> count{0};
  pool.ParallelFor(10, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10u);
}

}  // namespace
}  // namespace semis
