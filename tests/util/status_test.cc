#include "util/status.h"

#include <gtest/gtest.h>

namespace semis {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryCodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status io = Status::IOError("disk on fire");
  EXPECT_FALSE(io.ok());
  EXPECT_TRUE(io.IsIOError());
  EXPECT_EQ(io.message(), "disk on fire");
  EXPECT_EQ(io.ToString(), "IOError: disk on fire");

  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_EQ(Status::NotSupported("x").code(), Status::Code::kNotSupported);
}

TEST(StatusTest, CodesAreDistinct) {
  EXPECT_NE(Status::IOError("a").code(), Status::Corruption("a").code());
  EXPECT_NE(Status::NotFound("a").code(),
            Status::InvalidArgument("a").code());
}

Status FailsThrough() {
  SEMIS_RETURN_IF_ERROR(Status::Corruption("inner"));
  return Status::OK();  // unreachable
}

Status Succeeds() {
  SEMIS_RETURN_IF_ERROR(Status::OK());
  return Status::InvalidArgument("reached the end");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThrough().IsCorruption());
  EXPECT_TRUE(Succeeds().IsInvalidArgument());
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::NotFound("gone");
  Status b = a;
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(b.message(), "gone");
}

}  // namespace
}  // namespace semis
