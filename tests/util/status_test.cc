#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "test_util.h"

namespace semis {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryCodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status io = Status::IOError("disk on fire");
  EXPECT_FALSE(io.ok());
  EXPECT_TRUE(io.IsIOError());
  EXPECT_EQ(io.message(), "disk on fire");
  EXPECT_EQ(io.ToString(), "IOError: disk on fire");

  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_EQ(Status::NotSupported("x").code(), Status::Code::kNotSupported);
}

TEST(StatusTest, CodesAreDistinct) {
  EXPECT_NE(Status::IOError("a").code(), Status::Corruption("a").code());
  EXPECT_NE(Status::NotFound("a").code(),
            Status::InvalidArgument("a").code());
}

Status FailsThrough() {
  SEMIS_RETURN_IF_ERROR(Status::Corruption("inner"));
  return Status::OK();  // unreachable
}

Status Succeeds() {
  SEMIS_RETURN_IF_ERROR(Status::OK());
  return Status::InvalidArgument("reached the end");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThrough().IsCorruption());
  EXPECT_TRUE(Succeeds().IsInvalidArgument());
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::NotFound("gone");
  Status b = a;
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(b.message(), "gone");
}

TEST(StatusTest, IgnoreErrorIsANoOpEscapeHatch) {
  // Exists so destructor/cleanup paths can drop a Status *visibly*; it
  // must not mutate or invalidate the status.
  Status s = Status::IOError("dropped on purpose");
  s.IgnoreError();
  EXPECT_TRUE(s.IsIOError());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> got = 42;
  ASSERT_TRUE(got.ok());
  EXPECT_OK(got.status());
  EXPECT_EQ(got.value(), 42);
  EXPECT_EQ(*got, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> got = Status::NotFound("no such vertex");
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound());
  EXPECT_EQ(got.status().message(), "no such vertex");
}

TEST(StatusOrTest, MoveOnlyValueMovesOut) {
  StatusOr<std::unique_ptr<int>> got = std::make_unique<int>(7);
  ASSERT_TRUE(got.ok());
  std::unique_ptr<int> owned = std::move(got).value();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, ArrowOperatorReachesMembers) {
  StatusOr<std::string> got = std::string("abc");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 3u);
}

StatusOr<int> ParsePositive(int raw) {
  if (raw <= 0) return Status::InvalidArgument("not positive");
  return raw;
}

Status DoubleIt(int raw, int* out) {
  int value = 0;
  SEMIS_ASSIGN_OR_RETURN(value, ParsePositive(raw));
  *out = 2 * value;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_OK(DoubleIt(21, &out));
  EXPECT_EQ(out, 42);
  out = 0;
  EXPECT_TRUE(DoubleIt(-1, &out).IsInvalidArgument());
  EXPECT_EQ(out, 0);  // the macro returned before the write
}

}  // namespace
}  // namespace semis
