#include "util/bit_vector.h"

#include <gtest/gtest.h>

namespace semis {
namespace {

TEST(BitVectorTest, StartsClear) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.Count(), 0u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(bv.Test(i));
}

TEST(BitVectorTest, SetTestClear) {
  BitVector bv(200);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(199);
  EXPECT_TRUE(bv.Test(0));
  EXPECT_TRUE(bv.Test(63));
  EXPECT_TRUE(bv.Test(64));
  EXPECT_TRUE(bv.Test(199));
  EXPECT_FALSE(bv.Test(1));
  EXPECT_EQ(bv.Count(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Test(63));
  EXPECT_EQ(bv.Count(), 3u);
}

TEST(BitVectorTest, ResetClearsEverything) {
  BitVector bv(100);
  for (size_t i = 0; i < 100; i += 3) bv.Set(i);
  bv.Reset();
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVectorTest, ResizeReinitializes) {
  BitVector bv(10);
  bv.Set(5);
  bv.Resize(1000);
  EXPECT_EQ(bv.size(), 1000u);
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVectorTest, CountAcrossWordBoundaries) {
  BitVector bv(256);
  for (size_t i = 0; i < 256; ++i) bv.Set(i);
  EXPECT_EQ(bv.Count(), 256u);
}

TEST(BitVectorTest, MemoryBytesIsWordGranular) {
  EXPECT_EQ(BitVector(0).MemoryBytes(), 0u);
  EXPECT_EQ(BitVector(1).MemoryBytes(), 8u);
  EXPECT_EQ(BitVector(64).MemoryBytes(), 8u);
  EXPECT_EQ(BitVector(65).MemoryBytes(), 16u);
}

}  // namespace
}  // namespace semis
