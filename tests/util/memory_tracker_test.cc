#include "util/memory_tracker.h"

#include <gtest/gtest.h>

namespace semis {
namespace {

TEST(MemoryTrackerTest, AddAndPeak) {
  MemoryTracker mt;
  mt.Add("a", 100);
  mt.Add("b", 50);
  EXPECT_EQ(mt.CurrentBytes(), 150u);
  EXPECT_EQ(mt.PeakBytes(), 150u);
  mt.Sub("a", 100);
  EXPECT_EQ(mt.CurrentBytes(), 50u);
  EXPECT_EQ(mt.PeakBytes(), 150u);  // peak sticks
  mt.Add("a", 200);
  EXPECT_EQ(mt.PeakBytes(), 250u);
}

TEST(MemoryTrackerTest, PerCategoryAccounting) {
  MemoryTracker mt;
  mt.Add("state", 10);
  mt.Add("isn", 40);
  EXPECT_EQ(mt.CategoryBytes("state"), 10u);
  EXPECT_EQ(mt.CategoryBytes("isn"), 40u);
  EXPECT_EQ(mt.CategoryBytes("missing"), 0u);
  mt.Sub("isn", 15);
  EXPECT_EQ(mt.CategoryBytes("isn"), 25u);
  EXPECT_EQ(mt.CategoryPeakBytes("isn"), 40u);
}

TEST(MemoryTrackerTest, SubClampsAtZero) {
  MemoryTracker mt;
  mt.Add("a", 10);
  mt.Sub("a", 100);  // over-release must not underflow
  EXPECT_EQ(mt.CategoryBytes("a"), 0u);
  EXPECT_EQ(mt.CurrentBytes(), 0u);
}

TEST(MemoryTrackerTest, SetMovesBothDirections) {
  MemoryTracker mt;
  mt.Set("sc", 1000);
  EXPECT_EQ(mt.CategoryBytes("sc"), 1000u);
  mt.Set("sc", 400);
  EXPECT_EQ(mt.CategoryBytes("sc"), 400u);
  EXPECT_EQ(mt.CategoryPeakBytes("sc"), 1000u);
  mt.Set("sc", 1200);
  EXPECT_EQ(mt.PeakBytes(), 1200u);
}

TEST(MemoryTrackerTest, CategoriesSorted) {
  MemoryTracker mt;
  mt.Add("zeta", 1);
  mt.Add("alpha", 1);
  auto cats = mt.Categories();
  ASSERT_EQ(cats.size(), 2u);
  EXPECT_EQ(cats[0], "alpha");
  EXPECT_EQ(cats[1], "zeta");
}

TEST(MemoryTrackerTest, FormatBytes) {
  EXPECT_EQ(MemoryTracker::FormatBytes(512), "512B");
  EXPECT_EQ(MemoryTracker::FormatBytes(4608), "4.5KB");
  EXPECT_EQ(MemoryTracker::FormatBytes(5 << 20), "5.0MB");
  EXPECT_EQ(MemoryTracker::FormatBytes(3ull << 30), "3.00GB");
}

}  // namespace
}  // namespace semis
