#include "theory/zeta.h"

#include <gtest/gtest.h>

#include <cmath>

namespace semis {
namespace {

TEST(ZetaTest, HarmonicNumbers) {
  // zeta(1, y) is the harmonic number H_y.
  EXPECT_DOUBLE_EQ(GeneralizedHarmonic(1.0, 1), 1.0);
  EXPECT_NEAR(GeneralizedHarmonic(1.0, 2), 1.5, 1e-12);
  EXPECT_NEAR(GeneralizedHarmonic(1.0, 4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(ZetaTest, ZeroExponentCounts) {
  // zeta(0, y) = y.
  EXPECT_NEAR(GeneralizedHarmonic(0.0, 1000), 1000.0, 1e-9);
}

TEST(ZetaTest, NegativeExponentSums) {
  // zeta(-1, y) = y (y+1) / 2.
  EXPECT_NEAR(GeneralizedHarmonic(-1.0, 100), 5050.0, 1e-9);
}

TEST(ZetaTest, ConvergesTowardRiemannZeta) {
  // zeta(2, inf) = pi^2/6.
  double z = GeneralizedHarmonic(2.0, 10000000);
  EXPECT_NEAR(z, M_PI * M_PI / 6.0, 1e-6);
}

TEST(ZetaTest, EmptySum) { EXPECT_EQ(GeneralizedHarmonic(2.0, 0), 0.0); }

TEST(ZetaTest, MonotoneInY) {
  double prev = 0;
  for (uint64_t y = 1; y < 100; ++y) {
    double z = GeneralizedHarmonic(1.7, y);
    EXPECT_GT(z, prev);
    prev = z;
  }
}

TEST(ZetaTest, TailApproximationContinuity) {
  // Values just below and above the exact-summation limit must agree
  // smoothly (the limit is 5e7; compare growth rates at reachable sizes).
  double a = GeneralizedHarmonic(1.1, 49999999);
  double b = GeneralizedHarmonic(1.1, 60000000);
  EXPECT_GT(b, a);
  EXPECT_LT(b - a, 0.05);
}

}  // namespace
}  // namespace semis
