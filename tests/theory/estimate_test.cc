#include <gtest/gtest.h>

#include "core/greedy.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "test_util.h"
#include "theory/greedy_estimate.h"
#include "theory/plrg_model.h"
#include "theory/swap_estimate.h"
#include "theory/zeta.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

TEST(PlrgModelTest, ForVertexCountSolvesAlpha) {
  for (double beta : {1.7, 2.0, 2.7}) {
    PlrgModel m = PlrgModel::ForVertexCount(10000000, beta);
    EXPECT_NEAR(m.ExpectedVertices() / 1e7, 1.0, 0.001) << "beta " << beta;
  }
}

TEST(PlrgModelTest, EdgeCountDecreasesWithBeta) {
  // Table 9: beta 1.7 -> 215M edges, beta 2.7 -> 15M (10M vertices).
  double prev = 1e18;
  for (double beta = 1.7; beta <= 2.71; beta += 0.1) {
    PlrgModel m = PlrgModel::ForVertexCount(10000000, beta);
    double edges = m.ExpectedDegreeSum() / 2.0;
    EXPECT_LT(edges, prev);
    prev = edges;
  }
  // Order-of-magnitude agreement with Table 9 at the endpoints.
  PlrgModel lo = PlrgModel::ForVertexCount(10000000, 1.7);
  EXPECT_NEAR(lo.ExpectedDegreeSum() / 2.0, 215e6, 120e6);
  PlrgModel hi = PlrgModel::ForVertexCount(10000000, 2.7);
  EXPECT_NEAR(hi.ExpectedDegreeSum() / 2.0, 15e6, 10e6);
}

TEST(GreedyEstimateTest, PerDegreeCountsAreBounded) {
  PlrgModel m = PlrgModel::ForVertexCount(1000000, 2.0);
  for (uint64_t i = 1; i <= 20; ++i) {
    double gr_i = GreedyExpectedAtDegree(m, i);
    EXPECT_GE(gr_i, 0.0);
    EXPECT_LE(gr_i, m.CountWithDegree(static_cast<double>(i)) + 1e-6);
  }
  // Degree-1 vertices almost all enter the set.
  EXPECT_GT(GreedyExpectedAtDegree(m, 1), 0.9 * m.CountWithDegree(1.0));
}

TEST(GreedyEstimateTest, TotalIsMostOfTheGraphButNotAll) {
  for (double beta : {1.7, 2.0, 2.7}) {
    PlrgModel m = PlrgModel::ForVertexCount(1000000, beta);
    double gr = GreedyExpectedSize(m);
    EXPECT_GT(gr, 0.5 * m.ExpectedVertices()) << "beta " << beta;
    EXPECT_LT(gr, 1.0 * m.ExpectedVertices()) << "beta " << beta;
  }
}

class EstimateVsEmpiricalTest : public ScratchTest {};

TEST_F(EstimateVsEmpiricalTest, Proposition2TracksRealGreedy) {
  // Table 9's experiment in miniature: the analytical estimate must land
  // within ~6% of the measured greedy size (the paper reports ~1%
  // accuracy at 10M vertices; small graphs are noisier, and the matching
  // model loses some multi-edges).
  for (double beta : {1.9, 2.3}) {
    const uint64_t n = 200000;
    PlrgModel model = PlrgModel::ForVertexCount(n, beta);
    double estimate = GreedyExpectedSize(model);

    Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(n, beta), 17);
    std::string unsorted = WriteGraphFile(&scratch_, g);
    std::string sorted = NewPath("sorted");
    ASSERT_OK(BuildDegreeSortedAdjacencyFile(unsorted, sorted, {}));
    AlgoResult res;
    ASSERT_OK(RunGreedy(sorted, {}, &res));
    EXPECT_NEAR(estimate / static_cast<double>(res.set_size), 1.0, 0.06)
        << "beta " << beta;
  }
}

TEST(SwapEstimateTest, CopyFractionInUnitRange) {
  for (double beta : {1.7, 2.2, 2.7}) {
    PlrgModel m = PlrgModel::ForVertexCount(1000000, beta);
    double c = CopyFractionC(m);
    EXPECT_GT(c, 0.0);
    // At most half of all copies can belong to IS vertices (each edge has
    // at least one non-IS endpoint), and c is measured in units of
    // zeta(beta-1, Delta) * e^alpha copies.
    double zeta_b1 = GeneralizedHarmonic(m.beta - 1.0, m.MaxDegree());
    EXPECT_LT(c, 0.5 * zeta_b1 + 1e-9) << "beta " << beta;
  }
}

TEST(SwapEstimateTest, SwapDegreeLimitIsLogarithmic) {
  PlrgModel small = PlrgModel::ForVertexCount(100000, 2.0);
  PlrgModel big = PlrgModel::ForVertexCount(10000000, 2.0);
  double ds_small = SwapDegreeLimit(small);
  double ds_big = SwapDegreeLimit(big);
  EXPECT_GE(ds_small, 2.0);
  EXPECT_GT(ds_big, ds_small);          // grows with |V| ...
  EXPECT_LT(ds_big, 3.0 * ds_small);    // ... but only logarithmically
  EXPECT_LT(ds_big, 200.0);
}

TEST(SwapEstimateTest, BinsAndBallsProbabilityIsAProbability) {
  for (double m1 : {1.0, 3.0, 10.0}) {
    for (double m2 : {1.0, 5.0}) {
      for (double n : {10.0, 100.0}) {
        for (double d : {2.0, 5.0}) {
          double p = BinsAndBallsProbability(m1, m2, n, d);
          EXPECT_GE(p, 0.0);
          EXPECT_LE(p, 1.0);
        }
      }
    }
  }
  EXPECT_EQ(BinsAndBallsProbability(0.5, 1, 10, 2), 0.0);  // no balls
  // More balls of each type -> more likely the first bin is hit.
  double few = BinsAndBallsProbability(2, 2, 50, 3);
  double many = BinsAndBallsProbability(10, 10, 50, 3);
  EXPECT_GT(many, few);
}

TEST(SwapEstimateTest, GainIsPositiveAndSmall) {
  for (double beta : {1.7, 2.0, 2.5}) {
    PlrgModel m = PlrgModel::ForVertexCount(1000000, beta);
    double gr = GreedyExpectedSize(m);
    double sg = OneKSwapExpectedGain(m);
    EXPECT_GE(sg, 0.0) << "beta " << beta;
    // Figure 6 vs Table 2: one round of swaps buys ~0.5-2% -- never more
    // than 10% of the greedy size.
    EXPECT_LT(sg, 0.1 * gr) << "beta " << beta;
  }
}

TEST(SwapEstimateTest, Lemma6BoundsAreSane) {
  PlrgModel m = PlrgModel::ForVertexCount(1000000, 2.0);
  double d2k = TwoKSwapDegreeLimit(m);
  EXPECT_GE(d2k, 2.0);
  EXPECT_LT(d2k, 500.0);  // O(log |V|)
  double sc = ScVertexBound(m);
  EXPECT_GT(sc, 0.0);
  EXPECT_LT(sc, m.ExpectedVertices());
}

}  // namespace
}  // namespace semis
