#include "gen/datasets.h"

#include <gtest/gtest.h>

#include "graph/adjacency_file.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;

TEST(DatasetsTest, RegistryMatchesTable4) {
  const auto& datasets = PaperDatasets();
  ASSERT_EQ(datasets.size(), 10u);
  EXPECT_EQ(datasets.front().name, "astroph");
  EXPECT_EQ(datasets.back().name, "clueweb12");
  // Paper-reported sizes are preserved verbatim for the bench headers.
  const DatasetSpec* fb = FindDataset("facebook");
  ASSERT_NE(fb, nullptr);
  EXPECT_EQ(fb->paper_vertices, 59220000u);
  EXPECT_TRUE(fb->in_memory_na);
  EXPECT_EQ(FindDataset("nope"), nullptr);
}

class DatasetMaterializeTest : public ScratchTest {};

TEST_F(DatasetMaterializeTest, MaterializeProducesBothFiles) {
  const DatasetSpec* spec = FindDataset("astroph");
  ASSERT_NE(spec, nullptr);
  DatasetFiles files;
  // Scale down hard so the test is fast: 0.05 * default scale.
  ASSERT_OK(MaterializeDataset(*spec, 0.05, scratch_.path(), &files));
  EXPECT_GT(files.num_vertices, 500u);
  EXPECT_GT(files.num_edges, files.num_vertices / 2);

  AdjacencyFileScanner unsorted, sorted;
  ASSERT_OK(unsorted.Open(files.adjacency_path));
  ASSERT_OK(sorted.Open(files.sorted_path));
  EXPECT_FALSE(unsorted.header().IsDegreeSorted());
  EXPECT_TRUE(sorted.header().IsDegreeSorted());
  EXPECT_EQ(unsorted.header().num_vertices, sorted.header().num_vertices);
  EXPECT_EQ(unsorted.header().num_directed_edges,
            sorted.header().num_directed_edges);
  // Average degree lands near the paper's column.
  EXPECT_NEAR(files.avg_degree / spec->paper_avg_degree, 1.0, 0.35);
}

TEST_F(DatasetMaterializeTest, CacheReusesFiles) {
  const DatasetSpec* spec = FindDataset("dblp");
  ASSERT_NE(spec, nullptr);
  DatasetFiles first;
  ASSERT_OK(MaterializeDataset(*spec, 0.02, scratch_.path(), &first));
  uint64_t size_before = 0;
  ASSERT_OK(GetFileSize(first.adjacency_path, &size_before));
  DatasetFiles second;
  ASSERT_OK(MaterializeDataset(*spec, 0.02, scratch_.path(), &second));
  EXPECT_EQ(first.adjacency_path, second.adjacency_path);
  uint64_t size_after = 0;
  ASSERT_OK(GetFileSize(second.adjacency_path, &size_after));
  EXPECT_EQ(size_before, size_after);
  EXPECT_EQ(first.num_edges, second.num_edges);
}

TEST(DatasetsTest, GlobalScaleParsesEnvironment) {
  // Only checks the default path; the env override is exercised by the
  // bench harness.
  double scale = GlobalScaleFromEnv();
  EXPECT_GE(scale, 0.01);
  EXPECT_LE(scale, 1000.0);
}

}  // namespace
}  // namespace semis
