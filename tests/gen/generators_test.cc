#include "gen/generators.h"

#include <gtest/gtest.h>

#include "gen/paper_figures.h"

namespace semis {
namespace {

TEST(GeneratorsTest, ErdosRenyiEdgeCount) {
  Graph g = GenerateErdosRenyi(100, 300, 1);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_EQ(g.NumEdges(), 300u);
}

TEST(GeneratorsTest, ErdosRenyiClampsToCompleteGraph) {
  Graph g = GenerateErdosRenyi(5, 1000, 1);
  EXPECT_EQ(g.NumEdges(), 10u);
}

TEST(GeneratorsTest, GnpExtremes) {
  EXPECT_EQ(GenerateGnp(20, 0.0, 1).NumEdges(), 0u);
  EXPECT_EQ(GenerateGnp(20, 1.0, 1).NumEdges(), 190u);
}

TEST(GeneratorsTest, StarShape) {
  Graph g = GenerateStar(10);
  EXPECT_EQ(g.Degree(0), 9u);
  for (VertexId v = 1; v < 10; ++v) EXPECT_EQ(g.Degree(v), 1u);
}

TEST(GeneratorsTest, PathAndCycle) {
  Graph p = GeneratePath(5);
  EXPECT_EQ(p.NumEdges(), 4u);
  EXPECT_EQ(p.Degree(0), 1u);
  EXPECT_EQ(p.Degree(2), 2u);
  Graph c = GenerateCycle(5);
  EXPECT_EQ(c.NumEdges(), 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(c.Degree(v), 2u);
}

TEST(GeneratorsTest, CompleteAndBipartite) {
  Graph k = GenerateComplete(6);
  EXPECT_EQ(k.NumEdges(), 15u);
  Graph b = GenerateCompleteBipartite(3, 4);
  EXPECT_EQ(b.NumVertices(), 7u);
  EXPECT_EQ(b.NumEdges(), 12u);
  EXPECT_FALSE(b.HasEdge(0, 1));      // within left side
  EXPECT_FALSE(b.HasEdge(3, 4));      // within right side
  EXPECT_TRUE(b.HasEdge(0, 3));
}

TEST(GeneratorsTest, TrianglesStructure) {
  Graph g = GenerateTriangles(4);
  EXPECT_EQ(g.NumVertices(), 12u);
  EXPECT_EQ(g.NumEdges(), 12u);
  for (VertexId v = 0; v < 12; ++v) EXPECT_EQ(g.Degree(v), 2u);
}

TEST(GeneratorsTest, CascadeSwapStructure) {
  Graph g = GenerateCascadeSwap(3);
  ASSERT_EQ(g.NumVertices(), 9u);
  EXPECT_EQ(g.NumEdges(), 8u);  // 3*2 within triples + 2 bridges
  // a_i adjacent to b_i and c_i.
  for (VertexId i = 0; i < 3; ++i) {
    EXPECT_TRUE(g.HasEdge(3 * i, 3 * i + 1));
    EXPECT_TRUE(g.HasEdge(3 * i, 3 * i + 2));
  }
  // Bridges b_i - a_{i+1}.
  EXPECT_TRUE(g.HasEdge(1, 3));
  EXPECT_TRUE(g.HasEdge(4, 6));
  EXPECT_FALSE(g.HasEdge(7, 9 % 9));  // no wrap-around
}

TEST(GeneratorsTest, CaterpillarShape) {
  Graph g = GenerateCaterpillar(4, 3);
  EXPECT_EQ(g.NumVertices(), 16u);
  EXPECT_EQ(g.NumEdges(), 3u + 12u);
  EXPECT_EQ(g.Degree(0), 4u);  // spine end: 1 spine edge + 3 legs
  EXPECT_EQ(g.Degree(1), 5u);  // middle spine: 2 + 3
}

TEST(PaperFiguresTest, Figure1Shape) {
  PaperExample ex = Figure1Example();
  EXPECT_EQ(ex.graph.NumVertices(), 5u);
  EXPECT_EQ(ex.graph.NumEdges(), 3u);
  EXPECT_EQ(ex.graph.Degree(0), 3u);  // v1 is the star center
  EXPECT_EQ(ex.graph.Degree(1), 0u);  // v2 isolated
  EXPECT_EQ(ex.initial_set.size(), 2u);
}

TEST(PaperFiguresTest, Figure2Shape) {
  PaperExample ex = Figure2Example();
  EXPECT_EQ(ex.graph.NumVertices(), 6u);
  EXPECT_EQ(ex.graph.NumEdges(), 5u);
  EXPECT_TRUE(ex.graph.HasEdge(2, 5));  // the conflict edge v3 - v6
  EXPECT_EQ(ex.scan_order.size(), 6u);
}

TEST(PaperFiguresTest, Figure7Shape) {
  PaperExample ex = Figure7Example();
  EXPECT_EQ(ex.graph.NumVertices(), 8u);
  // v4 and v8 are anchors: adjacent to both v2 and v3.
  EXPECT_TRUE(ex.graph.HasEdge(3, 1));
  EXPECT_TRUE(ex.graph.HasEdge(3, 2));
  EXPECT_TRUE(ex.graph.HasEdge(7, 1));
  EXPECT_TRUE(ex.graph.HasEdge(7, 2));
  // v7 conflicts with v5 and v6.
  EXPECT_TRUE(ex.graph.HasEdge(6, 4));
  EXPECT_TRUE(ex.graph.HasEdge(6, 5));
}

}  // namespace
}  // namespace semis
