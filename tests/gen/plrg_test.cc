#include "gen/plrg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph_stats.h"

namespace semis {
namespace {

TEST(PlrgSpecTest, ForVertexCountHitsTarget) {
  for (double beta : {1.7, 2.0, 2.7}) {
    for (uint64_t target : {1000ull, 50000ull, 1000000ull}) {
      PlrgSpec spec = PlrgSpec::ForVertexCount(target, beta);
      double realized = static_cast<double>(spec.TargetVertices());
      EXPECT_NEAR(realized / static_cast<double>(target), 1.0, 0.02)
          << "beta=" << beta << " target=" << target;
    }
  }
}

TEST(PlrgSpecTest, MaxDegreeFollowsAlphaOverBeta) {
  PlrgSpec spec{.alpha = 10.0, .beta = 2.0};
  EXPECT_EQ(spec.MaxDegree(), static_cast<uint32_t>(std::exp(5.0)));
}

TEST(PlrgSpecTest, ForVerticesAndAvgDegree) {
  for (double avg : {5.0, 20.0}) {
    PlrgSpec spec = PlrgSpec::ForVerticesAndAvgDegree(100000, avg);
    double realized_avg = static_cast<double>(spec.TargetDegreeSum()) /
                          static_cast<double>(spec.TargetVertices());
    EXPECT_NEAR(realized_avg / avg, 1.0, 0.15) << "avg=" << avg;
  }
}

TEST(PlrgTest, GeneratedGraphIsSimpleAndSized) {
  PlrgSpec spec = PlrgSpec::ForVertexCount(20000, 2.0);
  Graph g = GeneratePlrg(spec, 11);
  EXPECT_NEAR(static_cast<double>(g.NumVertices()) / 20000.0, 1.0, 0.02);
  // Matching-model simplification loses some edges, but not most of them.
  EXPECT_GT(g.NumEdges(), spec.TargetDegreeSum() / 2 * 7 / 10);
  // Simplicity: no self-loop, sorted unique neighbors.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_NE(nbrs[i], v);
      if (i > 0) {
        EXPECT_LT(nbrs[i - 1], nbrs[i]);
      }
    }
  }
}

TEST(PlrgTest, DeterministicPerSeed) {
  PlrgSpec spec = PlrgSpec::ForVertexCount(5000, 2.1);
  Graph a = GeneratePlrg(spec, 42);
  Graph b = GeneratePlrg(spec, 42);
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    auto na = a.Neighbors(v);
    auto nb = b.Neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
  Graph c = GeneratePlrg(spec, 43);
  EXPECT_NE(a.NumEdges(), 0u);
  bool identical = a.NumEdges() == c.NumEdges();
  if (identical) {
    bool all_same = true;
    for (VertexId v = 0; v < a.NumVertices() && all_same; ++v) {
      auto na = a.Neighbors(v);
      auto nc = c.Neighbors(v);
      all_same = std::equal(na.begin(), na.end(), nc.begin(), nc.end());
    }
    identical = all_same;
  }
  EXPECT_FALSE(identical) << "different seeds produced identical graphs";
}

TEST(PlrgTest, IdOrderCarriesNoDegreeSignal) {
  // Ids are randomly permuted: the first half of ids should not have a
  // systematically different average degree from the second half.
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.0), 3);
  const VertexId n = g.NumVertices();
  double first = 0, second = 0;
  for (VertexId v = 0; v < n / 2; ++v) first += g.Degree(v);
  for (VertexId v = n / 2; v < n; ++v) second += g.Degree(v);
  first /= n / 2;
  second /= n - n / 2;
  EXPECT_NEAR(first / second, 1.0, 0.2);
}

TEST(PlrgTest, DegreeDistributionIsHeavyTailed) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(50000, 2.0), 8);
  GraphStats s = ComputeGraphStats(g);
  // Power law: degree-1 vertices dominate; max degree far above average.
  EXPECT_GT(s.degree_histogram[1], s.num_vertices / 3);
  EXPECT_GT(s.max_degree, 10 * s.avg_degree);
}

}  // namespace
}  // namespace semis
