// Copyright (c) the semis authors.
// Shared helpers for the test suite.
#ifndef SEMIS_TESTS_TEST_UTIL_H_
#define SEMIS_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_io.h"
#include "io/scratch.h"
#include "util/bit_vector.h"
#include "util/random.h"
#include "util/status.h"

namespace semis {
namespace testing_util {

/// gtest assertion wrapper: ASSERT_OK(status).
#define ASSERT_OK(expr)                                 \
  do {                                                  \
    ::semis::Status _s = (expr);                        \
    ASSERT_TRUE(_s.ok()) << _s.ToString();              \
  } while (0)

#define EXPECT_OK(expr)                                 \
  do {                                                  \
    ::semis::Status _s = (expr);                        \
    EXPECT_TRUE(_s.ok()) << _s.ToString();              \
  } while (0)

/// Test fixture mixin owning a scratch directory.
class ScratchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(ScratchDir::Create("semis-test", &scratch_));
  }
  std::string NewPath(const std::string& tag) {
    return scratch_.NewFilePath(tag);
  }
  ScratchDir scratch_;
};

/// Writes `graph` to a new adjacency file under `scratch` in id order.
inline std::string WriteGraphFile(ScratchDir* scratch, const Graph& graph) {
  std::string path = scratch->NewFilePath("graph.adj");
  Status s = WriteGraphToAdjacencyFile(graph, path);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return path;
}

/// Writes `graph` in an explicit record order with `flags`.
inline std::string WriteGraphFileInOrder(ScratchDir* scratch,
                                         const Graph& graph,
                                         const std::vector<VertexId>& order,
                                         uint32_t flags = 0) {
  std::string path = scratch->NewFilePath("graph.adj");
  Status s = WriteGraphToAdjacencyFileInOrder(graph, order, flags, path);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return path;
}

/// Builds a maximal independent set by greedy over a seeded random vertex
/// order (reference implementation; used to produce arbitrary valid
/// initial sets for the swap algorithms).
inline BitVector RandomMaximalSet(const Graph& graph, uint64_t seed) {
  std::vector<VertexId> order(graph.NumVertices());
  std::iota(order.begin(), order.end(), 0);
  Random rng(seed);
  rng.Shuffle(order.data(), order.size());
  BitVector set(graph.NumVertices());
  std::vector<uint8_t> blocked(graph.NumVertices(), 0);
  for (VertexId v : order) {
    if (blocked[v]) continue;
    set.Set(v);
    blocked[v] = 1;
    for (VertexId u : graph.Neighbors(v)) blocked[u] = 1;
  }
  return set;
}

/// Exhaustive independence number for very small graphs (n <= 24),
/// independent of the baselines/exact implementation.
inline uint64_t BruteForceAlpha(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  EXPECT_LE(n, 24u);
  std::vector<uint32_t> adj(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : graph.Neighbors(v)) adj[v] |= (1u << u);
  }
  uint64_t best = 0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    bool ok = true;
    for (VertexId v = 0; v < n && ok; ++v) {
      if ((mask >> v) & 1u) {
        if ((adj[v] & mask) != 0) ok = false;
      }
    }
    if (ok) {
      uint64_t size = __builtin_popcount(mask);
      if (size > best) best = size;
    }
  }
  return best;
}

/// Converts a bit vector to a sorted id list (nicer gtest failure output).
inline std::vector<VertexId> SetToVector(const BitVector& set) {
  std::vector<VertexId> out;
  for (size_t v = 0; v < set.size(); ++v) {
    if (set.Test(v)) out.push_back(static_cast<VertexId>(v));
  }
  return out;
}

}  // namespace testing_util
}  // namespace semis

#endif  // SEMIS_TESTS_TEST_UTIL_H_
