#include "baselines/time_forward.h"

#include <gtest/gtest.h>

#include "core/verify.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

class TimeForwardTest : public ScratchTest {};

// Reference: the lexicographically-first maximal IS (greedy in id order).
BitVector LexFirstMis(const Graph& g) {
  BitVector set(g.NumVertices());
  std::vector<uint8_t> blocked(g.NumVertices(), 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (blocked[v]) continue;
    set.Set(v);
    for (VertexId u : g.Neighbors(v)) blocked[u] = 1;
  }
  return set;
}

TEST_F(TimeForwardTest, MatchesLexicographicReference) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = GenerateErdosRenyi(400, 1200, seed);
    std::string path = WriteGraphFile(&scratch_, g);
    AlgoResult res;
    ASSERT_OK(RunTimeForwardMIS(path, {}, &res));
    BitVector ref = LexFirstMis(g);
    ASSERT_EQ(res.set_size, ref.Count()) << "seed " << seed;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ASSERT_EQ(res.in_set.Test(v), ref.Test(v)) << "seed " << seed
                                                 << " vertex " << v;
    }
  }
}

TEST_F(TimeForwardTest, ResultIsMaximalIndependentSet) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 3);
  std::string path = WriteGraphFile(&scratch_, g);
  AlgoResult res;
  ASSERT_OK(RunTimeForwardMIS(path, {}, &res));
  VerifyResult vr = VerifyIndependentSet(g, res.in_set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
}

TEST_F(TimeForwardTest, TinyQueueBudgetForcesSpillsSameResult) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(3000, 1.9), 4);
  std::string path = WriteGraphFile(&scratch_, g);
  TimeForwardOptions big, tiny;
  tiny.pq_memory_entries = 64;
  AlgoResult a, b;
  ASSERT_OK(RunTimeForwardMIS(path, big, &a));
  ASSERT_OK(RunTimeForwardMIS(path, tiny, &b));
  EXPECT_EQ(a.set_size, b.set_size);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_EQ(a.in_set.Test(v), b.in_set.Test(v));
  }
}

TEST_F(TimeForwardTest, RejectsPermutedRecordOrder) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(1000, 2.0), 5);
  std::string unsorted = WriteGraphFile(&scratch_, g);
  std::string sorted = NewPath("sorted");
  ASSERT_OK(BuildDegreeSortedAdjacencyFile(unsorted, sorted, {}));
  AlgoResult res;
  Status s = RunTimeForwardMIS(sorted, {}, &res);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(TimeForwardTest, QualityTrailsDegreeAwareAlgorithms) {
  // The point of the paper's Table 5: the external baseline cannot use
  // degree information, so it loses to GREEDY on power-law graphs.
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.0), 6);
  std::string unsorted = WriteGraphFile(&scratch_, g);
  AlgoResult tf;
  ASSERT_OK(RunTimeForwardMIS(unsorted, {}, &tf));
  BitVector ref = LexFirstMis(g);
  EXPECT_EQ(tf.set_size, ref.Count());
}

}  // namespace
}  // namespace semis
