#include "baselines/dynamic_update.h"

#include <gtest/gtest.h>

#include "baselines/exact.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "test_util.h"

namespace semis {
namespace {

TEST(DynamicUpdateTest, PathPicksEndpointsFirst) {
  // 0-1-2: endpoints have degree 1 and are selected; optimal size 2.
  Graph g = GeneratePath(3);
  AlgoResult res;
  ASSERT_OK(RunDynamicUpdate(g, &res));
  EXPECT_EQ(res.set_size, 2u);
  EXPECT_TRUE(res.in_set.Test(0));
  EXPECT_TRUE(res.in_set.Test(2));
}

TEST(DynamicUpdateTest, StarPicksLeaves) {
  Graph g = GenerateStar(30);
  AlgoResult res;
  ASSERT_OK(RunDynamicUpdate(g, &res));
  EXPECT_EQ(res.set_size, 29u);
  EXPECT_FALSE(res.in_set.Test(0));
}

TEST(DynamicUpdateTest, AlwaysValidMaximalSet) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = GenerateErdosRenyi(300, 900 + seed * 50, seed);
    AlgoResult res;
    ASSERT_OK(RunDynamicUpdate(g, &res));
    VerifyResult vr = VerifyIndependentSet(g, res.in_set);
    EXPECT_TRUE(vr.independent) << "seed " << seed;
    EXPECT_TRUE(vr.maximal) << "seed " << seed;
  }
}

TEST(DynamicUpdateTest, NearOptimalOnTinyGraphs) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = GenerateErdosRenyi(18, 40, seed);
    AlgoResult res;
    ASSERT_OK(RunDynamicUpdate(g, &res));
    ExactResult exact;
    ASSERT_OK(ExactMaxIndependentSet(g, &exact));
    EXPECT_LE(res.set_size, exact.alpha);
    // Min-degree greedy is a strong heuristic on sparse graphs.
    EXPECT_GE(res.set_size + 2, exact.alpha) << "seed " << seed;
  }
}

TEST(DynamicUpdateTest, DegreeUpdatesMatter) {
  // Caterpillar: with dynamic updates the greedy picks all legs then the
  // isolated-by-removal spine alternation; quality >= static greedy.
  Graph g = GenerateCaterpillar(10, 2);
  AlgoResult res;
  ASSERT_OK(RunDynamicUpdate(g, &res));
  EXPECT_GE(res.set_size, 20u);  // all legs at minimum
}

TEST(DynamicUpdateTest, MemoryIncludesGraph) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.0), 3);
  AlgoResult res;
  ASSERT_OK(RunDynamicUpdate(g, &res));
  // The in-memory baseline must account the CSR arrays -- that is the
  // paper's Table 6 comparison point.
  EXPECT_GE(res.peak_memory_bytes, g.MemoryBytes());
}

TEST(DynamicUpdateTest, EmptyAndEdgelessGraphs) {
  AlgoResult res;
  ASSERT_OK(RunDynamicUpdate(Graph::FromEdges(0, {}), &res));
  EXPECT_EQ(res.set_size, 0u);
  ASSERT_OK(RunDynamicUpdate(Graph::FromEdges(5, {}), &res));
  EXPECT_EQ(res.set_size, 5u);
}

}  // namespace
}  // namespace semis
