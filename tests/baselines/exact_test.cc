#include "baselines/exact.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::BruteForceAlpha;

uint64_t Alpha(const Graph& g) {
  ExactResult res;
  Status s = ExactMaxIndependentSet(g, &res);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return res.alpha;
}

TEST(ExactTest, KnownFamilies) {
  EXPECT_EQ(Alpha(GenerateComplete(7)), 1u);
  EXPECT_EQ(Alpha(GenerateStar(12)), 11u);
  EXPECT_EQ(Alpha(GeneratePath(9)), 5u);    // ceil(9/2)
  EXPECT_EQ(Alpha(GeneratePath(10)), 5u);   // ceil(10/2)
  EXPECT_EQ(Alpha(GenerateCycle(9)), 4u);   // floor(9/2)
  EXPECT_EQ(Alpha(GenerateCycle(10)), 5u);
  EXPECT_EQ(Alpha(GenerateCompleteBipartite(4, 9)), 9u);
  EXPECT_EQ(Alpha(GenerateTriangles(6)), 6u);
  EXPECT_EQ(Alpha(Graph::FromEdges(13, {})), 13u);
  EXPECT_EQ(Alpha(Graph::FromEdges(0, {})), 0u);
}

TEST(ExactTest, CascadeSwapAlphaIsTwoThirds) {
  // Each triple contributes {b_i, c_i}: alpha = 2k.
  EXPECT_EQ(Alpha(GenerateCascadeSwap(5)), 10u);
}

TEST(ExactTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Graph g = GenerateErdosRenyi(15, 25 + seed * 2, seed);
    EXPECT_EQ(Alpha(g), BruteForceAlpha(g)) << "seed " << seed;
  }
}

TEST(ExactTest, WitnessIsAValidSetOfReportedSize) {
  Graph g = GenerateErdosRenyi(20, 60, 9);
  ExactResult res;
  ASSERT_OK(ExactMaxIndependentSet(g, &res));
  EXPECT_EQ(res.witness.size(), res.alpha);
  for (size_t i = 0; i < res.witness.size(); ++i) {
    for (size_t j = i + 1; j < res.witness.size(); ++j) {
      EXPECT_FALSE(g.HasEdge(res.witness[i], res.witness[j]));
    }
  }
}

TEST(ExactTest, RejectsLargeGraphs) {
  Graph g = GeneratePath(65);
  ExactResult res;
  EXPECT_TRUE(ExactMaxIndependentSet(g, &res).IsInvalidArgument());
}

TEST(ExactTest, PruningExploresFewNodes) {
  // Sanity on the bound: the complete graph should be nearly free.
  Graph g = GenerateComplete(20);
  ExactResult res;
  ASSERT_OK(ExactMaxIndependentSet(g, &res));
  EXPECT_LT(res.nodes_explored, 100u);
}

TEST(ExactTest, SixtyFourVertexBoundary) {
  Graph g = GeneratePath(64);
  ExactResult res;
  ASSERT_OK(ExactMaxIndependentSet(g, &res));
  EXPECT_EQ(res.alpha, 32u);
}

}  // namespace
}  // namespace semis
