// Robustness suite for the SDELTA readers (io/edge_delta_file.h): the
// delta manifest and shard logs are the only inputs the streaming update
// pipeline accepts from the outside world, so hostile bytes -- truncated
// files, flipped bits, out-of-range ids, self-loops, duplicate/garbage
// ops -- must come back as clean Status errors, never as a crash or an
// out-of-bounds read. The whole file runs under ASan/UBSan in CI.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "io/edge_delta_file.h"
#include "io/file.h"
#include "test_util.h"
#include "util/random.h"

namespace semis {
namespace {

using testing_util::ScratchTest;

class EdgeDeltaFileTest : public ScratchTest {};

constexpr uint64_t kVertices = 100;

// Builds a small valid overlay: 2 shards, 3 entries in shard 0 and 2 in
// shard 1 (entry seq 1 is a cross-shard update routed to both).
EdgeDeltaManifest WriteValidDelta(const std::string& delta_path) {
  EdgeDeltaManifest m;
  m.num_vertices = kVertices;
  m.next_sequence = 4;
  m.shard_entries = {3, 2};
  EXPECT_OK(CreateEdgeDeltaShardLog(delta_path, 0, kVertices));
  EXPECT_OK(CreateEdgeDeltaShardLog(delta_path, 1, kVertices));
  {
    EdgeDeltaShardWriter w;
    EXPECT_OK(w.Open(delta_path, 0, kVertices));
    EXPECT_OK(w.Append({0, EdgeDeltaOp::kInsert, 1, 2}));
    EXPECT_OK(w.Append({1, EdgeDeltaOp::kInsert, 3, 50}));
    EXPECT_OK(w.Append({3, EdgeDeltaOp::kDelete, 1, 2}));
    EXPECT_OK(w.Close());
  }
  {
    EdgeDeltaShardWriter w;
    EXPECT_OK(w.Open(delta_path, 1, kVertices));
    EXPECT_OK(w.Append({1, EdgeDeltaOp::kInsert, 3, 50}));
    EXPECT_OK(w.Append({2, EdgeDeltaOp::kDelete, 60, 61}));
    EXPECT_OK(w.Close());
  }
  EXPECT_OK(WriteEdgeDeltaManifest(delta_path, m));
  return m;
}

std::vector<char> ReadAllBytes(const std::string& path) {
  std::vector<char> bytes;
  SequentialFileReader r;
  EXPECT_OK(r.Open(path));
  char buf[4096];
  size_t n = 0;
  while (true) {
    EXPECT_OK(r.Read(buf, sizeof(buf), &n));
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  return bytes;
}

void WriteAllBytes(const std::string& path, const std::vector<char>& bytes) {
  SequentialFileWriter w;
  EXPECT_OK(w.Open(path));
  if (!bytes.empty()) EXPECT_OK(w.Append(bytes.data(), bytes.size()));
  EXPECT_OK(w.Close());
}

Status DrainShardLog(const std::string& delta_path,
                     const EdgeDeltaManifest& manifest, uint32_t index,
                     std::vector<EdgeDeltaEntry>* out = nullptr) {
  std::vector<EdgeDeltaEntry> entries;
  Status s = ReadEdgeDeltaShardLog(delta_path, manifest, index, &entries);
  if (out != nullptr) *out = std::move(entries);
  return s;
}

TEST_F(EdgeDeltaFileTest, RoundTrip) {
  const std::string delta = NewPath("g.sadjs.delta");
  EdgeDeltaManifest written = WriteValidDelta(delta);
  EdgeDeltaManifest read;
  ASSERT_OK(ReadEdgeDeltaManifest(delta, &read));
  EXPECT_EQ(read.num_vertices, written.num_vertices);
  EXPECT_EQ(read.next_sequence, written.next_sequence);
  ASSERT_EQ(read.num_shards(), 2u);
  EXPECT_EQ(read.shard_entries[0], 3u);
  EXPECT_EQ(read.shard_entries[1], 2u);
  std::vector<EdgeDeltaEntry> entries;
  ASSERT_OK(DrainShardLog(delta, read, 0, &entries));
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].seq, 0u);
  EXPECT_EQ(entries[0].op, EdgeDeltaOp::kInsert);
  EXPECT_EQ(entries[2].op, EdgeDeltaOp::kDelete);
  entries.clear();
  ASSERT_OK(DrainShardLog(delta, read, 1, &entries));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].seq, 1u);  // routed copy shares the sequence number
}

TEST_F(EdgeDeltaFileTest, WriterRejectsInvalidEntries) {
  const std::string delta = NewPath("w.delta");
  ASSERT_OK(CreateEdgeDeltaShardLog(delta, 0, kVertices));
  EdgeDeltaShardWriter w;
  ASSERT_OK(w.Open(delta, 0, kVertices));
  EXPECT_TRUE(w.Append({0, EdgeDeltaOp::kInsert, 5, 5}).IsInvalidArgument());
  EXPECT_TRUE(w.Append({0, EdgeDeltaOp::kInsert, 5, kVertices})
                  .IsInvalidArgument());
  ASSERT_OK(w.Close());
}

TEST_F(EdgeDeltaFileTest, AppendToMissingLogIsNotFound) {
  EdgeDeltaShardWriter w;
  EXPECT_TRUE(w.Open(NewPath("nope.delta"), 0, kVertices).IsNotFound());
}

TEST_F(EdgeDeltaFileTest, MissingFilesAreCleanErrors) {
  const std::string delta = NewPath("missing.delta");
  EdgeDeltaManifest m;
  EXPECT_FALSE(ReadEdgeDeltaManifest(delta, &m).ok());
  m = WriteValidDelta(delta);
  ASSERT_OK(RemoveFileIfExists(EdgeDeltaShardPath(delta, 1)));
  EXPECT_FALSE(DrainShardLog(delta, m, 1).ok());
}

TEST_F(EdgeDeltaFileTest, ManifestRejectsGarbageHeaders) {
  const std::string delta = NewPath("m.delta");
  EdgeDeltaManifest valid = WriteValidDelta(delta);
  std::vector<char> bytes = ReadAllBytes(delta);

  {  // wrong magic
    std::vector<char> bad = bytes;
    bad[0] ^= 0x5A;
    WriteAllBytes(delta, bad);
    EdgeDeltaManifest m;
    EXPECT_TRUE(ReadEdgeDeltaManifest(delta, &m).IsCorruption());
  }
  {  // unsupported version
    std::vector<char> bad = bytes;
    bad[4] = 99;
    WriteAllBytes(delta, bad);
    EdgeDeltaManifest m;
    EXPECT_FALSE(ReadEdgeDeltaManifest(delta, &m).ok());
  }
  {  // zero shards
    std::vector<char> bad = bytes;
    for (int i = 0; i < 4; ++i) bad[24 + i] = 0;
    WriteAllBytes(delta, bad);
    EdgeDeltaManifest m;
    EXPECT_TRUE(ReadEdgeDeltaManifest(delta, &m).IsCorruption());
  }
  {  // impossible shard count: must be rejected BEFORE any allocation
    std::vector<char> bad = bytes;
    for (int i = 0; i < 4; ++i) bad[24 + i] = static_cast<char>(0xFF);
    WriteAllBytes(delta, bad);
    EdgeDeltaManifest m;
    EXPECT_TRUE(ReadEdgeDeltaManifest(delta, &m).IsCorruption());
  }
  {  // trailing bytes
    std::vector<char> bad = bytes;
    bad.push_back('x');
    WriteAllBytes(delta, bad);
    EdgeDeltaManifest m;
    EXPECT_TRUE(ReadEdgeDeltaManifest(delta, &m).IsCorruption());
  }
  {  // per-shard count exceeding the update count
    std::vector<char> bad = bytes;
    bad[32] = 120;  // shard 0 entry count; next_sequence is 4
    WriteAllBytes(delta, bad);
    EdgeDeltaManifest m;
    EXPECT_TRUE(ReadEdgeDeltaManifest(delta, &m).IsCorruption());
  }
  // Restore and confirm the baseline still reads.
  WriteAllBytes(delta, bytes);
  EdgeDeltaManifest m;
  ASSERT_OK(ReadEdgeDeltaManifest(delta, &m));
  EXPECT_EQ(m.next_sequence, valid.next_sequence);
}

TEST_F(EdgeDeltaFileTest, ShardLogRejectsHostileEntries) {
  const std::string delta = NewPath("s.delta");
  EdgeDeltaManifest m = WriteValidDelta(delta);
  const std::string log0 = EdgeDeltaShardPath(delta, 0);
  std::vector<char> bytes = ReadAllBytes(log0);
  // Header is 24 bytes; entries are 20 bytes: u64 seq, u32 op, u32 u,
  // u32 v.
  const size_t kHeader = 24;
  const size_t kEntry = 20;
  ASSERT_EQ(bytes.size(), kHeader + 3 * kEntry);

  auto expect_corrupt = [&](const std::vector<char>& bad) {
    WriteAllBytes(log0, bad);
    Status s = DrainShardLog(delta, m, 0);
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  };

  {  // unknown op code
    std::vector<char> bad = bytes;
    bad[kHeader + 8] = 7;
    expect_corrupt(bad);
  }
  {  // self-loop entry (u == v)
    std::vector<char> bad = bytes;
    bad[kHeader + 12] = bad[kHeader + 16];  // u := v (low byte; rest is 0)
    expect_corrupt(bad);
  }
  {  // vertex id out of range
    std::vector<char> bad = bytes;
    bad[kHeader + 12] = static_cast<char>(0xFF);
    bad[kHeader + 13] = static_cast<char>(0xFF);
    expect_corrupt(bad);
  }
  {  // sequence numbers not strictly increasing (duplicate entry seq)
    std::vector<char> bad = bytes;
    bad[kHeader + kEntry] = 0;  // second entry's seq 1 -> 0
    expect_corrupt(bad);
  }
  {  // sequence number beyond the manifest's update count
    std::vector<char> bad = bytes;
    bad[kHeader + 2 * kEntry] = 100;  // third entry's seq 3 -> 100
    expect_corrupt(bad);
  }
  {  // shard index mismatch
    std::vector<char> bad = bytes;
    bad[8] = 1;
    expect_corrupt(bad);
  }
  {  // vertex-count disagreement with the manifest
    std::vector<char> bad = bytes;
    bad[16] = 99;
    expect_corrupt(bad);
  }
  {  // bad magic / version
    std::vector<char> bad = bytes;
    bad[1] ^= 0x40;
    expect_corrupt(bad);
    bad = bytes;
    bad[4] = 42;
    WriteAllBytes(log0, bad);
    EXPECT_FALSE(DrainShardLog(delta, m, 0).ok());
  }
  {  // trailing bytes after the declared entries
    std::vector<char> bad = bytes;
    bad.push_back('z');
    expect_corrupt(bad);
  }
  // Restore and confirm the baseline still reads.
  WriteAllBytes(log0, bytes);
  ASSERT_OK(DrainShardLog(delta, m, 0));
}

TEST_F(EdgeDeltaFileTest, TruncationSweepNeverCrashes) {
  // Every proper prefix of a valid log (and manifest) must be reported as
  // an error: the manifest's counts are authoritative, so losing any byte
  // of a declared entry is Corruption.
  const std::string delta = NewPath("t.delta");
  EdgeDeltaManifest m = WriteValidDelta(delta);
  const std::string log0 = EdgeDeltaShardPath(delta, 0);
  const std::vector<char> log_bytes = ReadAllBytes(log0);
  for (size_t len = 0; len < log_bytes.size(); ++len) {
    WriteAllBytes(log0, {log_bytes.begin(), log_bytes.begin() + len});
    Status s = DrainShardLog(delta, m, 0);
    EXPECT_FALSE(s.ok()) << "truncated log of " << len << " bytes read OK";
  }
  WriteAllBytes(log0, log_bytes);

  const std::vector<char> man_bytes = ReadAllBytes(delta);
  for (size_t len = 0; len < man_bytes.size(); ++len) {
    WriteAllBytes(delta, {man_bytes.begin(), man_bytes.begin() + len});
    EdgeDeltaManifest out;
    Status s = ReadEdgeDeltaManifest(delta, &out);
    EXPECT_FALSE(s.ok()) << "truncated manifest of " << len
                         << " bytes read OK";
  }
  WriteAllBytes(delta, man_bytes);
  EdgeDeltaManifest out;
  ASSERT_OK(ReadEdgeDeltaManifest(delta, &out));
}

TEST_F(EdgeDeltaFileTest, ByteFlipFuzzNeverCrashes) {
  // Seeded random single- and multi-byte corruption of both files. Any
  // Status is acceptable (some flips keep the file valid); the point is
  // that no input crashes, over-reads, or loops -- ASan/UBSan in CI turn
  // silent violations into failures here.
  const std::string delta = NewPath("f.delta");
  EdgeDeltaManifest m = WriteValidDelta(delta);
  const std::string log0 = EdgeDeltaShardPath(delta, 0);
  const std::vector<char> log_bytes = ReadAllBytes(log0);
  const std::vector<char> man_bytes = ReadAllBytes(delta);
  Random rng(20260728);
  for (int round = 0; round < 400; ++round) {
    std::vector<char> bad = (round % 2 == 0) ? log_bytes : man_bytes;
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < flips; ++i) {
      bad[rng.Uniform(bad.size())] ^= static_cast<char>(rng.Uniform(255) + 1);
    }
    if (round % 2 == 0) {
      WriteAllBytes(log0, bad);
      // Fuzz contract: must not crash; the status itself is arbitrary.
      DrainShardLog(delta, m, 0).IgnoreError();
      WriteAllBytes(log0, log_bytes);
    } else {
      WriteAllBytes(delta, bad);
      EdgeDeltaManifest out;
      Status s = ReadEdgeDeltaManifest(delta, &out);
      if (s.ok()) {
        // A still-valid manifest must at least keep the readers in
        // bounds.
        DrainShardLog(delta, out, 0).IgnoreError();  // fuzz: any status
      }
      WriteAllBytes(delta, man_bytes);
    }
  }
  ASSERT_OK(DrainShardLog(delta, m, 0));
}

TEST_F(EdgeDeltaFileTest, RemoveEdgeDeltaClearsEverything) {
  const std::string delta = NewPath("r.delta");
  WriteValidDelta(delta);
  ASSERT_OK(RemoveEdgeDelta(delta, 2));
  uint64_t size = 0;
  EXPECT_FALSE(GetFileSize(delta, &size).ok());
  EXPECT_FALSE(GetFileSize(EdgeDeltaShardPath(delta, 0), &size).ok());
  EXPECT_FALSE(GetFileSize(EdgeDeltaShardPath(delta, 1), &size).ok());
  // Removing an already-absent overlay is fine.
  ASSERT_OK(RemoveEdgeDelta(delta, 2));
}

}  // namespace
}  // namespace semis
