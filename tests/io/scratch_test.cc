#include "io/scratch.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include "test_util.h"

namespace semis {
namespace {

// Saves/restores TMPDIR around a test so the suite can mutate it freely.
class TmpdirGuard {
 public:
  TmpdirGuard() {
    const char* cur = std::getenv("TMPDIR");
    had_value_ = cur != nullptr;
    if (had_value_) saved_ = cur;
  }
  ~TmpdirGuard() {
    if (had_value_) {
      ::setenv("TMPDIR", saved_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv("TMPDIR");
    }
  }

 private:
  bool had_value_ = false;
  std::string saved_;
};

TEST(ScratchDirTest, CreateMakesWritableDirectory) {
  ScratchDir dir;
  ASSERT_OK(ScratchDir::Create("semis-scratch-test", &dir));
  ASSERT_FALSE(dir.path().empty());
  EXPECT_TRUE(std::filesystem::is_directory(dir.path()));

  std::string file = dir.NewFilePath("spill");
  std::ofstream(file) << "payload";
  EXPECT_TRUE(std::filesystem::exists(file));
}

TEST(ScratchDirTest, NullOutIsInvalidArgumentNotACrash) {
  Status s = ScratchDir::Create("semis-scratch-test", nullptr);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(ScratchDirTest, TrailingSlashInTmpdirIsNormalized) {
  TmpdirGuard guard;
  ScratchDir base;
  ASSERT_OK(ScratchDir::Create("semis-scratch-base", &base));

  for (const char* suffix : {"/", "///"}) {
    ::setenv("TMPDIR", (base.path() + suffix).c_str(), /*overwrite=*/1);
    ScratchDir dir;
    ASSERT_OK(ScratchDir::Create("slash", &dir));
    EXPECT_EQ(dir.path().find("//"), std::string::npos) << dir.path();
    EXPECT_EQ(dir.path().rfind(base.path() + "/slash.", 0), 0) << dir.path();
    EXPECT_TRUE(std::filesystem::is_directory(dir.path()));
  }
}

TEST(ScratchDirTest, EmptyTmpdirFallsBackToTmp) {
  TmpdirGuard guard;
  ::setenv("TMPDIR", "", /*overwrite=*/1);
  ScratchDir dir;
  ASSERT_OK(ScratchDir::Create("semis-scratch-empty", &dir));
  EXPECT_EQ(dir.path().rfind("/tmp/semis-scratch-empty.", 0), 0) << dir.path();
}

TEST(ScratchDirTest, NewFilePathsAreUnique) {
  ScratchDir dir;
  ASSERT_OK(ScratchDir::Create("semis-scratch-test", &dir));
  std::string a = dir.NewFilePath("run");
  std::string b = dir.NewFilePath("run");
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind(dir.path() + "/run.", 0), 0) << a;
}

TEST(ScratchDirTest, RemoveDeletesTreeAndDestructorIsIdempotent) {
  std::string path;
  {
    ScratchDir dir;
    ASSERT_OK(ScratchDir::Create("semis-scratch-test", &dir));
    path = dir.path();
    std::ofstream(dir.NewFilePath("spill")) << "payload";
    ASSERT_OK(dir.Remove());
    EXPECT_TRUE(dir.path().empty());
    EXPECT_FALSE(std::filesystem::exists(path));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ScratchDirTest, MoveTransfersOwnership) {
  ScratchDir a;
  ASSERT_OK(ScratchDir::Create("semis-scratch-test", &a));
  std::string path = a.path();

  ScratchDir b = std::move(a);
  EXPECT_TRUE(a.path().empty());
  EXPECT_EQ(b.path(), path);
  EXPECT_TRUE(std::filesystem::is_directory(path));

  ScratchDir c;
  c = std::move(b);
  EXPECT_EQ(c.path(), path);
  ASSERT_OK(c.Remove());
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ScratchDirTest, RemoveReportsUndeletableTree) {
  // Regression: Remove() used to return void, so a directory that could
  // not be deleted was silently leaked (and MisEngine::Close() had no
  // way to report it). Failure is injected by dropping write permission
  // on the directory, which makes unlinking its children fail -- that
  // does not stop root, so skip there (CI runners are unprivileged).
  if (::geteuid() == 0) {
    GTEST_SKIP() << "permission-based failure injection is a no-op as root";
  }
  ScratchDir dir;
  ASSERT_OK(ScratchDir::Create("semis-scratch-test", &dir));
  std::string path = dir.path();
  std::ofstream(dir.NewFilePath("spill")) << "payload";
  std::filesystem::permissions(path, std::filesystem::perms::owner_read |
                                         std::filesystem::perms::owner_exec);
  Status s = dir.Remove();
  EXPECT_FALSE(s.ok()) << "undeletable scratch tree reported OK";
  // The path is dropped even on failure, so Remove never retries forever.
  EXPECT_TRUE(dir.path().empty());
  // Clean up behind the injected failure.
  std::filesystem::permissions(path, std::filesystem::perms::owner_all);
  std::filesystem::remove_all(path);
}

TEST(ScratchDirTest, CreateIntoExistingScratchReplacesIt) {
  ScratchDir dir;
  ASSERT_OK(ScratchDir::Create("semis-scratch-test", &dir));
  std::string first = dir.path();
  ASSERT_OK(ScratchDir::Create("semis-scratch-test", &dir));
  EXPECT_NE(dir.path(), first);
  EXPECT_FALSE(std::filesystem::exists(first));
  EXPECT_TRUE(std::filesystem::is_directory(dir.path()));
}

}  // namespace
}  // namespace semis
