// The epoch root pointer (io/epoch_journal.h) is the commit point of
// every multi-file store mutation, so its reader must treat any byte the
// writer did not produce -- torn writes, flipped bits, impossible epoch
// pairs -- as Corruption, never as a bogus epoch number. The suite also
// locks in the rename-over atomicity the commit protocol relies on.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <string>
#include <vector>

#include "io/env.h"
#include "io/epoch_journal.h"
#include "io/file.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;

class EpochJournalTest : public ScratchTest {};

std::vector<char> ReadAllBytes(const std::string& path) {
  std::vector<char> bytes;
  SequentialFileReader r;
  EXPECT_OK(r.Open(path));
  char buf[4096];
  size_t n = 0;
  do {
    EXPECT_OK(r.Read(buf, sizeof(buf), &n));
    bytes.insert(bytes.end(), buf, buf + n);
  } while (n > 0);
  EXPECT_OK(r.Close());
  return bytes;
}

void WriteAllBytes(const std::string& path, const std::vector<char>& bytes) {
  SequentialFileWriter w;
  EXPECT_OK(w.Open(path));
  EXPECT_OK(w.Append(bytes.data(), bytes.size()));
  EXPECT_OK(w.Close());
}

TEST_F(EpochJournalTest, RoundTrip) {
  const std::string root = NewPath("store.sadjs");
  EpochRootPointer out;
  out.current_epoch = 7;
  out.previous_epoch = 6;
  ASSERT_OK(WriteEpochRootPointer(root, out));
  EpochRootPointer in;
  ASSERT_OK(ReadEpochRootPointer(root, &in));
  EXPECT_EQ(in.current_epoch, 7u);
  EXPECT_EQ(in.previous_epoch, 6u);
  // The staging file was consumed by the rename.
  uint64_t size = 0;
  EXPECT_TRUE(GetFileSize(root + ".tmp", &size).IsNotFound());
}

TEST_F(EpochJournalTest, RewriteReplacesAtomically) {
  const std::string root = NewPath("store.sadjs");
  ASSERT_OK(WriteEpochRootPointer(root, {1, 0}));
  ASSERT_OK(WriteEpochRootPointer(root, {2, 1}));
  EpochRootPointer in;
  ASSERT_OK(ReadEpochRootPointer(root, &in));
  EXPECT_EQ(in.current_epoch, 2u);
  EXPECT_EQ(in.previous_epoch, 1u);
}

TEST_F(EpochJournalTest, EpochManifestNaming) {
  EXPECT_EQ(EpochManifestPath("/x/g.sadjs", 1), "/x/g.sadjs.epoch1");
  EXPECT_EQ(EpochManifestPath("g", 42), "g.epoch42");
}

TEST_F(EpochJournalTest, MissingFileIsNotFound) {
  EpochRootPointer in;
  EXPECT_TRUE(ReadEpochRootPointer(NewPath("nope"), &in).IsNotFound());
}

TEST_F(EpochJournalTest, EveryFlippedByteIsCorruption) {
  // The pointer is magic + version + two epochs + checksum; flipping ANY
  // byte must be caught (magic/version mismatch or checksum failure),
  // because a scribbled root silently naming the wrong epoch would serve
  // the wrong graph.
  const std::string root = NewPath("store.sadjs");
  ASSERT_OK(WriteEpochRootPointer(root, {3, 2}));
  const std::vector<char> good = ReadAllBytes(root);
  ASSERT_FALSE(good.empty());
  const std::string mutated = NewPath("mutated");
  for (size_t i = 0; i < good.size(); ++i) {
    std::vector<char> bytes = good;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x40);
    WriteAllBytes(mutated, bytes);
    EpochRootPointer in;
    Status s = ReadEpochRootPointer(mutated, &in);
    EXPECT_FALSE(s.ok()) << "flipped byte " << i << " was accepted";
  }
}

TEST_F(EpochJournalTest, TruncationAndTrailingBytesAreCorruption) {
  const std::string root = NewPath("store.sadjs");
  ASSERT_OK(WriteEpochRootPointer(root, {3, 2}));
  const std::vector<char> good = ReadAllBytes(root);
  const std::string mutated = NewPath("mutated");
  for (size_t keep = 0; keep < good.size(); ++keep) {
    WriteAllBytes(mutated,
                  std::vector<char>(good.begin(), good.begin() + keep));
    EpochRootPointer in;
    EXPECT_FALSE(ReadEpochRootPointer(mutated, &in).ok())
        << "truncation to " << keep << " bytes was accepted";
  }
  std::vector<char> padded = good;
  padded.push_back('\0');
  WriteAllBytes(mutated, padded);
  EpochRootPointer in;
  EXPECT_TRUE(ReadEpochRootPointer(mutated, &in).IsCorruption());
}

// Re-derives the writer's FNV-1a field checksum so the test can forge
// correctly-checksummed pointers with impossible epoch pairs (the writer
// itself refuses to produce them).
uint64_t ForgedChecksum(uint64_t current, uint64_t previous) {
  uint64_t h = 1469598103934665603ull;
  const uint64_t words[4] = {kEpochRootMagic, kEpochRootVersion, current,
                             previous};
  for (uint64_t w : words) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (w >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

TEST_F(EpochJournalTest, ImpossibleEpochPairsAreRejected) {
  const std::string root = NewPath("store.sadjs");
  // current must be >= 1 and previous strictly older -- enforced at BOTH
  // ends: the writer refuses to produce such a pointer, and the reader
  // rejects a forged one even when its checksum is valid.
  const uint64_t bad_pairs[][2] = {{0, 0}, {2, 2}, {2, 3}};
  for (const auto& pair : bad_pairs) {
    EXPECT_TRUE(WriteEpochRootPointer(root, {pair[0], pair[1]})
                    .IsInvalidArgument());
    SequentialFileWriter w;
    ASSERT_OK(w.Open(root));
    ASSERT_OK(w.AppendU32(kEpochRootMagic));
    ASSERT_OK(w.AppendU32(kEpochRootVersion));
    ASSERT_OK(w.AppendU64(pair[0]));
    ASSERT_OK(w.AppendU64(pair[1]));
    ASSERT_OK(w.AppendU64(ForgedChecksum(pair[0], pair[1])));
    ASSERT_OK(w.Close());
    EpochRootPointer in;
    EXPECT_TRUE(ReadEpochRootPointer(root, &in).IsCorruption())
        << "current=" << pair[0] << " previous=" << pair[1];
  }
}

// ------------------------------------------------------ fault injection --
// The root pointer is the commit point, so its write path gets the full
// per-op fault matrix: whichever single operation fails, the OLD root must
// still read back intact -- a faulted commit never publishes a torn or
// half-new pointer.

FaultSpec JournalSpec(const std::string& text) {
  FaultSpec out;
  Status s = FaultSpec::Parse(text, &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST_F(EpochJournalTest, EveryWriteSideFaultLeavesOldRootIntact) {
  // All of these strike before the rename lands, so the old pointer must
  // survive byte-for-byte. Permanent errnos so the retry sites cannot
  // absorb the fault.
  const char* kSpecs[] = {
      "open:1:EACCES@.tmp",   // staging-file create
      "write:1:ENOSPC",       // staging-file payload write
      "sync:1:EROFS",         // staging-file fsync
      "rename:1:EACCES",      // the commit rename itself
  };
  for (const char* text : kSpecs) {
    const std::string root = NewPath(std::string("store-") +
                                     std::to_string(&text - kSpecs));
    ASSERT_OK(WriteEpochRootPointer(root, {1, 0}));
    const std::vector<char> before = ReadAllBytes(root);

    FaultInjectionFileSystem fs(PosixFileSystem(), JournalSpec(text));
    Status s;
    {
      ScopedFileSystem scoped(&fs);
      s = WriteEpochRootPointer(root, {2, 1});
    }
    EXPECT_TRUE(s.IsIOError()) << text << ": " << s.ToString();
    EXPECT_EQ(fs.faults_injected(), 1u) << text;

    EpochRootPointer in;
    Status read_back = ReadEpochRootPointer(root, &in);
    ASSERT_TRUE(read_back.ok()) << text << ": " << read_back.ToString();
    EXPECT_EQ(in.current_epoch, 1u) << text;
    EXPECT_EQ(in.previous_epoch, 0u) << text;
    EXPECT_EQ(ReadAllBytes(root), before) << text;
  }
}

TEST_F(EpochJournalTest, DirSyncFaultReportsErrorButPointerStaysValid) {
  // The directory fsync happens AFTER the rename: a fault there must be
  // reported (durability is not proven), but the pointer on disk is the
  // fully-renamed new one -- valid either way, never torn.
  const std::string root = NewPath("store.sadjs");
  ASSERT_OK(WriteEpochRootPointer(root, {1, 0}));
  FaultInjectionFileSystem fs(PosixFileSystem(),
                              JournalSpec("syncdir:1:EROFS:sticky"));
  Status s;
  {
    ScopedFileSystem scoped(&fs);
    s = WriteEpochRootPointer(root, {2, 1});
  }
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EpochRootPointer in;
  ASSERT_OK(ReadEpochRootPointer(root, &in));
  EXPECT_EQ(in.current_epoch, 2u);
  EXPECT_EQ(in.previous_epoch, 1u);
}

TEST_F(EpochJournalTest, TransientRenameFaultIsRetriedAndCommits) {
  // The commit rename is atomic, so re-issuing it after a transient error
  // is sound -- and the only rename retry site in the tree.
  const std::string root = NewPath("store.sadjs");
  ASSERT_OK(WriteEpochRootPointer(root, {1, 0}));
  FaultInjectionFileSystem fs(PosixFileSystem(), JournalSpec("rename:1:EIO"));
  IoStats stats;
  {
    ScopedFileSystem scoped(&fs);
    ASSERT_OK(WriteEpochRootPointer(root, {2, 1}, &stats));
  }
  EXPECT_EQ(fs.faults_injected(), 1u);
  EXPECT_EQ(stats.io_retries, 1u);
  EpochRootPointer in;
  ASSERT_OK(ReadEpochRootPointer(root, &in));
  EXPECT_EQ(in.current_epoch, 2u);
}

TEST_F(EpochJournalTest, ReadFaultIsIOErrorNotCorruption) {
  // A failing device on the read side must surface as IOError -- not as
  // Corruption (the bytes are fine) and never as a bogus epoch number.
  const std::string root = NewPath("store.sadjs");
  ASSERT_OK(WriteEpochRootPointer(root, {3, 2}));
  FaultInjectionFileSystem fs(PosixFileSystem(),
                              JournalSpec("read:1:EIO:sticky"));
  EpochRootPointer in;
  in.current_epoch = 999;
  Status s;
  {
    ScopedFileSystem scoped(&fs);
    s = ReadEpochRootPointer(root, &in);
  }
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(in.current_epoch, 999u) << "faulted read must not fill the out";
  // With the fault gone the same pointer reads back fine.
  ASSERT_OK(ReadEpochRootPointer(root, &in));
  EXPECT_EQ(in.current_epoch, 3u);
}

TEST_F(EpochJournalTest, ProbeFileMagic) {
  const std::string root = NewPath("store.sadjs");
  ASSERT_OK(WriteEpochRootPointer(root, {1, 0}));
  uint32_t magic = 0;
  ASSERT_OK(ProbeFileMagic(root, &magic));
  EXPECT_EQ(magic, kEpochRootMagic);
  // Shorter than 4 bytes: magic 0, not an error (the caller routes on it).
  const std::string shorty = NewPath("shorty");
  WriteAllBytes(shorty, {'S', 'E'});
  ASSERT_OK(ProbeFileMagic(shorty, &magic));
  EXPECT_EQ(magic, 0u);
  EXPECT_TRUE(ProbeFileMagic(NewPath("missing"), &magic).IsNotFound());
}

}  // namespace
}  // namespace semis
