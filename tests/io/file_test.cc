#include "io/file.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <string>
#include <vector>

#include "io/env.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;

class FileTest : public ScratchTest {};

FaultSpec MustParseSpec(const std::string& spec) {
  FaultSpec out;
  Status s = FaultSpec::Parse(spec, &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST_F(FileTest, WriteReadRoundtrip) {
  std::string path = NewPath("roundtrip");
  IoStats stats;
  {
    SequentialFileWriter w(&stats);
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.AppendU32(0xDEADBEEF));
    ASSERT_OK(w.AppendU64(0x0123456789ABCDEFull));
    const char text[] = "hello";
    ASSERT_OK(w.Append(text, 5));
    EXPECT_EQ(w.BytesWritten(), 4u + 8u + 5u);
    ASSERT_OK(w.Close());
  }
  {
    SequentialFileReader r(&stats);
    ASSERT_OK(r.Open(path));
    uint32_t u32 = 0;
    uint64_t u64 = 0;
    char buf[6] = {0};
    ASSERT_OK(r.ReadU32(&u32));
    ASSERT_OK(r.ReadU64(&u64));
    ASSERT_OK(r.ReadExact(buf, 5));
    EXPECT_EQ(u32, 0xDEADBEEF);
    EXPECT_EQ(u64, 0x0123456789ABCDEFull);
    EXPECT_EQ(std::string(buf), "hello");
    EXPECT_TRUE(r.AtEof());
  }
  EXPECT_EQ(stats.bytes_written, 17u);
  EXPECT_EQ(stats.bytes_read, 17u);
  EXPECT_EQ(stats.files_opened, 2u);
}

TEST_F(FileTest, LargePayloadCrossesBufferBoundary) {
  std::string path = NewPath("large");
  std::vector<uint32_t> data(300000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint32_t>(i);
  {
    SequentialFileWriter w(nullptr, /*buffer_bytes=*/4096);  // tiny buffer
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.Append(data.data(), data.size() * sizeof(uint32_t)));
    ASSERT_OK(w.Close());
  }
  std::vector<uint32_t> back(data.size());
  SequentialFileReader r(nullptr, /*buffer_bytes=*/4096);
  ASSERT_OK(r.Open(path));
  ASSERT_OK(r.ReadExact(back.data(), back.size() * sizeof(uint32_t)));
  EXPECT_TRUE(r.AtEof());
  EXPECT_EQ(back, data);
}

TEST_F(FileTest, ReadExactOnTruncatedFileIsCorruption) {
  std::string path = NewPath("short");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.AppendU32(7));
    ASSERT_OK(w.Close());
  }
  SequentialFileReader r;
  ASSERT_OK(r.Open(path));
  uint64_t v = 0;
  Status s = r.ReadU64(&v);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(FileTest, OpenMissingFileFails) {
  SequentialFileReader r;
  Status s = r.Open(NewPath("does-not-exist"));
  EXPECT_FALSE(s.ok());
}

TEST_F(FileTest, PartialReadReportsCount) {
  std::string path = NewPath("partial");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.Append("abc", 3));
    ASSERT_OK(w.Close());
  }
  SequentialFileReader r;
  ASSERT_OK(r.Open(path));
  char buf[10];
  size_t got = 0;
  ASSERT_OK(r.Read(buf, 10, &got));
  EXPECT_EQ(got, 3u);
  ASSERT_OK(r.Read(buf, 10, &got));
  EXPECT_EQ(got, 0u);
}

TEST_F(FileTest, EmptyFileIsImmediatelyEof) {
  std::string path = NewPath("empty");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.Close());
  }
  SequentialFileReader r;
  ASSERT_OK(r.Open(path));
  EXPECT_TRUE(r.AtEof());
}

TEST_F(FileTest, GetFileSizeAndRemove) {
  std::string path = NewPath("sized");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.Append("0123456789", 10));
    ASSERT_OK(w.Close());
  }
  uint64_t size = 0;
  ASSERT_OK(GetFileSize(path, &size));
  EXPECT_EQ(size, 10u);
  ASSERT_OK(RemoveFileIfExists(path));
  EXPECT_FALSE(GetFileSize(path, &size).ok());
  ASSERT_OK(RemoveFileIfExists(path));  // second remove is fine
}

TEST_F(FileTest, DoubleOpenRejected) {
  std::string path = NewPath("dbl");
  SequentialFileWriter w;
  ASSERT_OK(w.Open(path));
  EXPECT_TRUE(w.Open(path).IsInvalidArgument());
  ASSERT_OK(w.Close());
}

// --------------------------------------------------- error-path contract --

TEST_F(FileTest, MidFileReadErrorIsSurfacedNotTruncated) {
  // Regression: a read error after the first buffer fill used to be
  // swallowed -- AtEof() saw an empty buffer and reported a clean end of
  // file, silently truncating the data. The reader must latch the error,
  // report "not EOF", and surface it from every later call.
  std::string path = NewPath("midfile");
  std::vector<char> data(10000, 'a');
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.Append(data.data(), data.size()));
    ASSERT_OK(w.Close());
  }
  // Reader buffer of 4096: the file takes three fills. Fault fill #2.
  FaultInjectionFileSystem fs(PosixFileSystem(),
                              MustParseSpec("read:2:EIO:sticky"));
  ScopedFileSystem scoped(&fs);
  SequentialFileReader r(nullptr, /*buffer_bytes=*/4096);
  ASSERT_OK(r.Open(path));
  char buf[4096];
  size_t got = 0;
  ASSERT_OK(r.Read(buf, sizeof(buf), &got));
  EXPECT_EQ(got, 4096u);

  Status s = r.Read(buf, sizeof(buf), &got);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(got, 0u);
  EXPECT_FALSE(r.AtEof()) << "an I/O error must not read as end of file";
  // The error is sticky: later reads and Close keep reporting it.
  EXPECT_TRUE(r.Read(buf, sizeof(buf), &got).IsIOError());
  EXPECT_TRUE(r.Close().IsIOError());
}

TEST_F(FileTest, AtEofPeekErrorIsLatchedForTheNextRead) {
  // The failure can also first strike inside AtEof()'s peek: it must
  // return false and leave the error for the next Read to report.
  std::string path = NewPath("peek");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.Append("abc", 3));
    ASSERT_OK(w.Close());
  }
  FaultInjectionFileSystem fs(PosixFileSystem(),
                              MustParseSpec("read:1:EIO:sticky"));
  ScopedFileSystem scoped(&fs);
  SequentialFileReader r;
  ASSERT_OK(r.Open(path));
  EXPECT_FALSE(r.AtEof());
  char buf[4];
  size_t got = 0;
  EXPECT_TRUE(r.Read(buf, sizeof(buf), &got).IsIOError());
}

TEST_F(FileTest, FlushFailureCarriesErrnoAndPoisonsWriter) {
  // A failed flush must (a) name the errno in the message, (b) poison the
  // writer so Close() reports the ORIGINAL error rather than masking it
  // with a second (possibly byte-duplicating) write attempt.
  FaultInjectionFileSystem fs(PosixFileSystem(),
                              MustParseSpec("write:1:ENOSPC:sticky"));
  ScopedFileSystem scoped(&fs);
  SequentialFileWriter w;
  ASSERT_OK(w.Open(NewPath("nospace")));
  ASSERT_OK(w.Append("x", 1));  // buffered; no write yet
  Status s = w.Flush();
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(s.sys_errno(), ENOSPC);

  // Every later call reports the same latched error...
  EXPECT_EQ(w.Append("y", 1).ToString(), s.ToString());
  Status close_status = w.Close();
  EXPECT_EQ(close_status.ToString(), s.ToString());
  // ...and exactly one write was attempted: Close did not re-flush.
  EXPECT_EQ(fs.ops_matched(), 1u);
}

TEST_F(FileTest, WriteFaultMatrixExactCategories) {
  // One writer life-cycle op at a time: open / write / sync each fail
  // independently with IOError carrying the injected errno.
  struct Case {
    const char* spec;
  } kCases[] = {{"open:1:EACCES"}, {"write:1:ENOSPC"}, {"sync:1:EROFS"}};
  for (const auto& c : kCases) {
    FaultSpec spec = MustParseSpec(c.spec);
    FaultInjectionFileSystem fs(PosixFileSystem(), spec);
    ScopedFileSystem scoped(&fs);
    SequentialFileWriter w;
    Status s = w.Open(NewPath(std::string("m-") + IoOpName(spec.op)));
    if (s.ok()) {
      s = w.Append("payload", 7);
      if (s.ok()) s = w.Sync();
    }
    EXPECT_TRUE(s.IsIOError()) << c.spec << ": " << s.ToString();
    EXPECT_EQ(s.sys_errno(), spec.fault_errno) << c.spec;
    EXPECT_EQ(fs.faults_injected(), 1u) << c.spec;
  }
}

TEST_F(FileTest, ReaderOpenFaultMatrix) {
  std::string path = NewPath("ro");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.Append("abc", 3));
    ASSERT_OK(w.Close());
  }
  FaultInjectionFileSystem fs(PosixFileSystem(),
                              MustParseSpec("open:1:EACCES"));
  ScopedFileSystem scoped(&fs);
  SequentialFileReader r;
  Status s = r.Open(path);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(s.sys_errno(), EACCES);
}

TEST_F(FileTest, HelperFaultMatrix) {
  // The free helpers (rename / link / remove / stat) route through the
  // seam too -- each fails cleanly with the injected error.
  std::string src = NewPath("h-src");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(src));
    ASSERT_OK(w.Append("x", 1));
    ASSERT_OK(w.Close());
  }
  {
    FaultInjectionFileSystem fs(PosixFileSystem(),
                                MustParseSpec("rename:1:EACCES"));
    ScopedFileSystem scoped(&fs);
    EXPECT_TRUE(RenameFile(src, NewPath("h-dst")).IsIOError());
  }
  {
    FaultInjectionFileSystem fs(PosixFileSystem(),
                                MustParseSpec("link:1:EACCES"));
    ScopedFileSystem scoped(&fs);
    EXPECT_TRUE(HardLinkFile(src, NewPath("h-lnk")).IsIOError());
  }
  {
    FaultInjectionFileSystem fs(PosixFileSystem(),
                                MustParseSpec("remove:1:EACCES"));
    ScopedFileSystem scoped(&fs);
    EXPECT_TRUE(RemoveFileIfExists(src).IsIOError());
  }
  {
    FaultInjectionFileSystem fs(PosixFileSystem(),
                                MustParseSpec("stat:1:EACCES"));
    ScopedFileSystem scoped(&fs);
    uint64_t size = 0;
    EXPECT_TRUE(GetFileSize(src, &size).IsIOError());
  }
  // After all that, the file is untouched.
  uint64_t size = 0;
  ASSERT_OK(GetFileSize(src, &size));
  EXPECT_EQ(size, 1u);
}

TEST_F(FileTest, ScratchDirCleansUpOnDestruction) {
  std::string dir_path;
  {
    ScratchDir dir;
    ASSERT_OK(ScratchDir::Create("semis-cleanup", &dir));
    dir_path = dir.path();
    SequentialFileWriter w;
    ASSERT_OK(w.Open(dir.NewFilePath("f")));
    ASSERT_OK(w.Append("x", 1));
    ASSERT_OK(w.Close());
    uint64_t size;
    EXPECT_OK(GetFileSize(dir_path + "/f.0", &size));
  }
  uint64_t size;
  EXPECT_FALSE(GetFileSize(dir_path + "/f.0", &size).ok());
}

}  // namespace
}  // namespace semis
