#include "io/file.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;

class FileTest : public ScratchTest {};

TEST_F(FileTest, WriteReadRoundtrip) {
  std::string path = NewPath("roundtrip");
  IoStats stats;
  {
    SequentialFileWriter w(&stats);
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.AppendU32(0xDEADBEEF));
    ASSERT_OK(w.AppendU64(0x0123456789ABCDEFull));
    const char text[] = "hello";
    ASSERT_OK(w.Append(text, 5));
    EXPECT_EQ(w.BytesWritten(), 4u + 8u + 5u);
    ASSERT_OK(w.Close());
  }
  {
    SequentialFileReader r(&stats);
    ASSERT_OK(r.Open(path));
    uint32_t u32 = 0;
    uint64_t u64 = 0;
    char buf[6] = {0};
    ASSERT_OK(r.ReadU32(&u32));
    ASSERT_OK(r.ReadU64(&u64));
    ASSERT_OK(r.ReadExact(buf, 5));
    EXPECT_EQ(u32, 0xDEADBEEF);
    EXPECT_EQ(u64, 0x0123456789ABCDEFull);
    EXPECT_EQ(std::string(buf), "hello");
    EXPECT_TRUE(r.AtEof());
  }
  EXPECT_EQ(stats.bytes_written, 17u);
  EXPECT_EQ(stats.bytes_read, 17u);
  EXPECT_EQ(stats.files_opened, 2u);
}

TEST_F(FileTest, LargePayloadCrossesBufferBoundary) {
  std::string path = NewPath("large");
  std::vector<uint32_t> data(300000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint32_t>(i);
  {
    SequentialFileWriter w(nullptr, /*buffer_bytes=*/4096);  // tiny buffer
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.Append(data.data(), data.size() * sizeof(uint32_t)));
    ASSERT_OK(w.Close());
  }
  std::vector<uint32_t> back(data.size());
  SequentialFileReader r(nullptr, /*buffer_bytes=*/4096);
  ASSERT_OK(r.Open(path));
  ASSERT_OK(r.ReadExact(back.data(), back.size() * sizeof(uint32_t)));
  EXPECT_TRUE(r.AtEof());
  EXPECT_EQ(back, data);
}

TEST_F(FileTest, ReadExactOnTruncatedFileIsCorruption) {
  std::string path = NewPath("short");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.AppendU32(7));
    ASSERT_OK(w.Close());
  }
  SequentialFileReader r;
  ASSERT_OK(r.Open(path));
  uint64_t v = 0;
  Status s = r.ReadU64(&v);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(FileTest, OpenMissingFileFails) {
  SequentialFileReader r;
  Status s = r.Open(NewPath("does-not-exist"));
  EXPECT_FALSE(s.ok());
}

TEST_F(FileTest, PartialReadReportsCount) {
  std::string path = NewPath("partial");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.Append("abc", 3));
    ASSERT_OK(w.Close());
  }
  SequentialFileReader r;
  ASSERT_OK(r.Open(path));
  char buf[10];
  size_t got = 0;
  ASSERT_OK(r.Read(buf, 10, &got));
  EXPECT_EQ(got, 3u);
  ASSERT_OK(r.Read(buf, 10, &got));
  EXPECT_EQ(got, 0u);
}

TEST_F(FileTest, EmptyFileIsImmediatelyEof) {
  std::string path = NewPath("empty");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.Close());
  }
  SequentialFileReader r;
  ASSERT_OK(r.Open(path));
  EXPECT_TRUE(r.AtEof());
}

TEST_F(FileTest, GetFileSizeAndRemove) {
  std::string path = NewPath("sized");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.Append("0123456789", 10));
    ASSERT_OK(w.Close());
  }
  uint64_t size = 0;
  ASSERT_OK(GetFileSize(path, &size));
  EXPECT_EQ(size, 10u);
  ASSERT_OK(RemoveFileIfExists(path));
  EXPECT_FALSE(GetFileSize(path, &size).ok());
  ASSERT_OK(RemoveFileIfExists(path));  // second remove is fine
}

TEST_F(FileTest, DoubleOpenRejected) {
  std::string path = NewPath("dbl");
  SequentialFileWriter w;
  ASSERT_OK(w.Open(path));
  EXPECT_TRUE(w.Open(path).IsInvalidArgument());
  ASSERT_OK(w.Close());
}

TEST_F(FileTest, ScratchDirCleansUpOnDestruction) {
  std::string dir_path;
  {
    ScratchDir dir;
    ASSERT_OK(ScratchDir::Create("semis-cleanup", &dir));
    dir_path = dir.path();
    SequentialFileWriter w;
    ASSERT_OK(w.Open(dir.NewFilePath("f")));
    ASSERT_OK(w.Append("x", 1));
    ASSERT_OK(w.Close());
    uint64_t size;
    EXPECT_OK(GetFileSize(dir_path + "/f.0", &size));
  }
  uint64_t size;
  EXPECT_FALSE(GetFileSize(dir_path + "/f.0", &size).ok());
}

}  // namespace
}  // namespace semis
