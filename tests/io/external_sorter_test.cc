#include "io/external_sorter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "test_util.h"
#include "util/memory_tracker.h"
#include "util/random.h"

namespace semis {
namespace {

using testing_util::ScratchTest;

class ExternalSorterTest : public ScratchTest {};

std::vector<std::pair<uint64_t, std::vector<uint32_t>>> Drain(
    ExternalSorter* sorter) {
  std::vector<std::pair<uint64_t, std::vector<uint32_t>>> out;
  uint64_t key = 0;
  std::vector<uint32_t> payload;
  while (sorter->Next(&key, &payload)) {
    out.emplace_back(key, payload);
  }
  EXPECT_OK(sorter->status());
  return out;
}

TEST_F(ExternalSorterTest, InMemorySort) {
  ExternalSorterOptions opts;
  opts.scratch_dir = scratch_.path();
  ExternalSorter sorter(opts);
  uint32_t p1[] = {10, 11};
  uint32_t p2[] = {20};
  ASSERT_OK(sorter.Add(5, p1, 2));
  ASSERT_OK(sorter.Add(1, p2, 1));
  ASSERT_OK(sorter.AddKey(3));
  ASSERT_OK(sorter.Finish());
  EXPECT_EQ(sorter.NumInitialRuns(), 0u);  // never spilled
  auto out = Drain(&sorter);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, 1u);
  EXPECT_EQ(out[0].second, std::vector<uint32_t>{20});
  EXPECT_EQ(out[1].first, 3u);
  EXPECT_TRUE(out[1].second.empty());
  EXPECT_EQ(out[2].first, 5u);
  EXPECT_EQ(out[2].second, (std::vector<uint32_t>{10, 11}));
}

TEST_F(ExternalSorterTest, SpillingProducesSortedPermutation) {
  ExternalSorterOptions opts;
  opts.memory_budget_bytes = 1024;  // force many runs
  opts.scratch_dir = scratch_.path();
  IoStats stats;
  opts.stats = &stats;
  ExternalSorter sorter(opts);
  Random rng(77);
  std::map<uint64_t, int> expected;
  const int kRecords = 5000;
  for (int i = 0; i < kRecords; ++i) {
    uint64_t key = rng.Uniform(1000);
    uint32_t payload = static_cast<uint32_t>(key * 2 + 1);
    ASSERT_OK(sorter.Add(key, &payload, 1));
    expected[key]++;
  }
  ASSERT_OK(sorter.Finish());
  EXPECT_GT(sorter.NumInitialRuns(), 1u);
  auto out = Drain(&sorter);
  ASSERT_EQ(out.size(), static_cast<size_t>(kRecords));
  uint64_t prev = 0;
  std::map<uint64_t, int> seen;
  for (auto& [key, payload] : out) {
    EXPECT_GE(key, prev);
    prev = key;
    ASSERT_EQ(payload.size(), 1u);
    EXPECT_EQ(payload[0], key * 2 + 1);  // payload stays attached to key
    seen[key]++;
  }
  EXPECT_EQ(seen, expected);
  EXPECT_GT(stats.bytes_written, 0u);
}

TEST_F(ExternalSorterTest, MultiPassMergeRespectsFanIn) {
  ExternalSorterOptions opts;
  opts.memory_budget_bytes = 256;  // ~18 records per run
  opts.fan_in = 2;                 // force intermediate passes
  opts.scratch_dir = scratch_.path();
  ExternalSorter sorter(opts);
  const int kRecords = 2000;
  for (int i = kRecords - 1; i >= 0; --i) {
    ASSERT_OK(sorter.AddKey(static_cast<uint64_t>(i)));
  }
  ASSERT_OK(sorter.Finish());
  EXPECT_GT(sorter.MergePasses(), 0u);
  auto out = Drain(&sorter);
  ASSERT_EQ(out.size(), static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(out[i].first, static_cast<uint64_t>(i));
  }
}

TEST_F(ExternalSorterTest, EmptyInput) {
  ExternalSorterOptions opts;
  opts.scratch_dir = scratch_.path();
  ExternalSorter sorter(opts);
  ASSERT_OK(sorter.Finish());
  uint64_t key;
  std::vector<uint32_t> payload;
  EXPECT_FALSE(sorter.Next(&key, &payload));
  EXPECT_OK(sorter.status());
}

TEST_F(ExternalSorterTest, DuplicateKeysAllSurvive) {
  ExternalSorterOptions opts;
  opts.memory_budget_bytes = 512;
  opts.scratch_dir = scratch_.path();
  ExternalSorter sorter(opts);
  for (int i = 0; i < 300; ++i) {
    uint32_t payload = static_cast<uint32_t>(i);
    ASSERT_OK(sorter.Add(42, &payload, 1));
  }
  ASSERT_OK(sorter.Finish());
  auto out = Drain(&sorter);
  ASSERT_EQ(out.size(), 300u);
  std::vector<bool> seen(300, false);
  for (auto& [key, payload] : out) {
    EXPECT_EQ(key, 42u);
    seen[payload[0]] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST_F(ExternalSorterTest, ZeroBudgetRejected) {
  // A zero budget used to silently degenerate to one spilled run per
  // record; it is now an input error.
  ExternalSorterOptions opts;
  opts.memory_budget_bytes = 0;
  opts.scratch_dir = scratch_.path();
  ExternalSorter sorter(opts);
  EXPECT_TRUE(sorter.AddKey(1).IsInvalidArgument());
  EXPECT_TRUE(sorter.Finish().IsInvalidArgument());
}

TEST_F(ExternalSorterTest, FanInBelowTwoRejected) {
  // fan_in < 2 used to be silently clamped to 2; it is now an input error
  // surfaced on the first call, whether or not any record was added.
  for (size_t fan_in : {0u, 1u}) {
    ExternalSorterOptions opts;
    opts.fan_in = fan_in;
    opts.scratch_dir = scratch_.path();
    ExternalSorter sorter(opts);
    EXPECT_TRUE(sorter.AddKey(1).IsInvalidArgument()) << "fan_in " << fan_in;
    EXPECT_TRUE(sorter.Finish().IsInvalidArgument()) << "fan_in " << fan_in;
  }
  ExternalSorterOptions ok_opts;
  ok_opts.fan_in = 2;  // the smallest legal fan-in still works
  ok_opts.scratch_dir = scratch_.path();
  ExternalSorter sorter(ok_opts);
  ASSERT_OK(sorter.AddKey(2));
  ASSERT_OK(sorter.AddKey(1));
  ASSERT_OK(sorter.Finish());
  auto out = Drain(&sorter);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, 1u);
  EXPECT_EQ(out[1].first, 2u);
}

TEST_F(ExternalSorterTest, ReportsMemoryToTracker) {
  ExternalSorterOptions opts;
  opts.memory_budget_bytes = 1024;  // force spills
  opts.scratch_dir = scratch_.path();
  MemoryTracker memory;
  opts.memory = &memory;
  ExternalSorter sorter(opts);
  for (int i = 0; i < 500; ++i) {
    uint32_t payload = static_cast<uint32_t>(i);
    ASSERT_OK(sorter.Add(static_cast<uint64_t>(500 - i), &payload, 1));
  }
  ASSERT_OK(sorter.Finish());
  // The run buffer filled to (at least) the budget before each spill, and
  // merge cursors were charged during Finish.
  EXPECT_GE(memory.CategoryPeakBytes("sort-buffer"), 1024u);
  EXPECT_GT(memory.CategoryPeakBytes("sort-cursors"), 0u);
  EXPECT_GE(memory.PeakBytes(), 1024u);
  auto out = Drain(&sorter);
  EXPECT_EQ(out.size(), 500u);
}

TEST_F(ExternalSorterTest, AddAfterFinishRejected) {
  ExternalSorterOptions opts;
  opts.scratch_dir = scratch_.path();
  ExternalSorter sorter(opts);
  ASSERT_OK(sorter.Finish());
  EXPECT_TRUE(sorter.AddKey(1).IsInvalidArgument());
}

TEST_F(ExternalSorterTest, VariableLengthPayloads) {
  ExternalSorterOptions opts;
  opts.memory_budget_bytes = 2048;
  opts.scratch_dir = scratch_.path();
  ExternalSorter sorter(opts);
  Random rng(5);
  std::map<uint64_t, std::vector<uint32_t>> expected;
  for (uint64_t k = 0; k < 200; ++k) {
    std::vector<uint32_t> payload(rng.Uniform(50));
    for (auto& p : payload) p = static_cast<uint32_t>(rng.Uniform(1000));
    ASSERT_OK(sorter.Add(k, payload.data(),
                         static_cast<uint32_t>(payload.size())));
    expected[k] = payload;
  }
  ASSERT_OK(sorter.Finish());
  auto out = Drain(&sorter);
  ASSERT_EQ(out.size(), 200u);
  for (auto& [key, payload] : out) {
    EXPECT_EQ(payload, expected[key]) << "key " << key;
  }
}

}  // namespace
}  // namespace semis
