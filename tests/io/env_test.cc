// The FileSystem seam (io/env.h) is what makes the error path testable:
// every fault the sweep harness can inject from the shell via
// SEMIS_FAULT_SPEC is exercised here in-process through the same
// FaultInjectionFileSystem. The suite locks in the spec grammar, the
// exact Nth-match/sticky/path-filter semantics, torn transfers, and the
// retry policy's transient-vs-permanent line.
#include "io/env.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "io/file.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;

class EnvTest : public ScratchTest {};

FaultSpec MustParse(const std::string& spec) {
  FaultSpec out;
  Status s = FaultSpec::Parse(spec, &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

// ------------------------------------------------------------ FaultSpec --

TEST(FaultSpecTest, ParsesMinimalSpec) {
  FaultSpec spec = MustParse("write:3");
  EXPECT_EQ(spec.op, IoOp::kWrite);
  EXPECT_FALSE(spec.any_op);
  EXPECT_EQ(spec.nth, 3u);
  EXPECT_EQ(spec.fault_errno, EIO);  // the default
  EXPECT_FALSE(spec.sticky);
  EXPECT_FALSE(spec.short_transfer);
  EXPECT_TRUE(spec.path_substr.empty());
}

TEST(FaultSpecTest, ParsesEveryField) {
  FaultSpec spec = MustParse("rename:2:ENOSPC:sticky:short@.epoch");
  EXPECT_EQ(spec.op, IoOp::kRename);
  EXPECT_EQ(spec.nth, 2u);
  EXPECT_EQ(spec.fault_errno, ENOSPC);
  EXPECT_TRUE(spec.sticky);
  EXPECT_TRUE(spec.short_transfer);
  EXPECT_EQ(spec.path_substr, ".epoch");
}

TEST(FaultSpecTest, ParsesEveryOpToken) {
  const struct {
    const char* token;
    IoOp op;
  } kCases[] = {
      {"open", IoOp::kOpen},       {"read", IoOp::kRead},
      {"write", IoOp::kWrite},     {"sync", IoOp::kSync},
      {"syncdir", IoOp::kSyncDir}, {"rename", IoOp::kRename},
      {"link", IoOp::kLink},       {"remove", IoOp::kRemove},
      {"stat", IoOp::kStat},       {"mkdir", IoOp::kMkdir},
      {"rmtree", IoOp::kRemoveTree},
  };
  for (const auto& c : kCases) {
    FaultSpec spec = MustParse(std::string(c.token) + ":1");
    EXPECT_EQ(spec.op, c.op) << c.token;
    EXPECT_EQ(IoOpName(spec.op), std::string(c.token));
  }
  EXPECT_TRUE(MustParse("any:1").any_op);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  const char* kBad[] = {
      "",            // empty
      "write",       // missing index
      "bogus:1",     // unknown op
      "write:0",     // index must be >= 1
      "write:x",     // non-numeric index
      "write:1:EBOGUS",   // unknown errno
      "write:1:sticky:x", // trailing junk token
  };
  for (const char* spec : kBad) {
    FaultSpec out;
    out.nth = 77;  // sentinel: Parse must leave *out untouched on error
    EXPECT_TRUE(FaultSpec::Parse(spec, &out).IsInvalidArgument()) << spec;
    EXPECT_EQ(out.nth, 77u) << spec;
  }
}

TEST(FaultSpecTest, ToStringRoundTrips) {
  const char* kSpecs[] = {
      "write:3:EIO",
      "rename:2:ENOSPC:sticky",
      "read:5:EIO:short@.sadjs",
      "any:1:EACCES",
  };
  for (const char* text : kSpecs) {
    FaultSpec spec = MustParse(text);
    EXPECT_EQ(spec.ToString(), text);
    // And the round-trip reparses to the same semantics.
    FaultSpec again = MustParse(spec.ToString());
    EXPECT_EQ(again.ToString(), spec.ToString());
  }
}

// ---------------------------------------------------------- seam wiring --

TEST(FileSystemSeamTest, DefaultIsPosix) {
  // The suite runs without SEMIS_FAULT_SPEC, so the default resolution
  // must land on the real POSIX implementation.
  EXPECT_STREQ(GetFileSystem()->Name(), "posix");
}

TEST(FileSystemSeamTest, ScopedOverrideInstallsAndRestores) {
  FaultInjectionFileSystem fs(PosixFileSystem(), MustParse("write:1"));
  {
    ScopedFileSystem scoped(&fs);
    EXPECT_EQ(GetFileSystem(), &fs);
    EXPECT_STREQ(GetFileSystem()->Name(), "fault-injection");
  }
  EXPECT_STREQ(GetFileSystem()->Name(), "posix");
}

// -------------------------------------------- FaultInjectionFileSystem --

TEST_F(EnvTest, NthMatchingOperationFaults) {
  // open:2:ENOSPC -- the second open fails, the first and third succeed.
  // ENOSPC is permanent, so the writer's open-retry cannot mask it.
  FaultInjectionFileSystem fs(PosixFileSystem(), MustParse("open:2:ENOSPC"));
  ScopedFileSystem scoped(&fs);

  std::unique_ptr<RawFile> f;
  ASSERT_OK(fs.NewWritableFile(NewPath("a"), &f));
  ASSERT_OK(f->Close());

  Status s = fs.NewWritableFile(NewPath("b"), &f);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(s.sys_errno(), ENOSPC);

  ASSERT_OK(fs.NewWritableFile(NewPath("c"), &f));
  ASSERT_OK(f->Close());

  EXPECT_EQ(fs.ops_matched(), 3u);
  EXPECT_EQ(fs.faults_injected(), 1u);
}

TEST_F(EnvTest, StickyFaultsEveryOperationFromNthOn) {
  FaultInjectionFileSystem fs(PosixFileSystem(),
                              MustParse("open:2:ENOSPC:sticky"));
  ScopedFileSystem scoped(&fs);

  std::unique_ptr<RawFile> f;
  ASSERT_OK(fs.NewWritableFile(NewPath("a"), &f));
  ASSERT_OK(f->Close());
  EXPECT_FALSE(fs.NewWritableFile(NewPath("b"), &f).ok());
  EXPECT_FALSE(fs.NewWritableFile(NewPath("c"), &f).ok());
  EXPECT_EQ(fs.faults_injected(), 2u);
}

TEST_F(EnvTest, PathFilterRestrictsMatching) {
  FaultSpec spec = MustParse("open:1:ENOSPC@victim");
  FaultInjectionFileSystem fs(PosixFileSystem(), spec);
  ScopedFileSystem scoped(&fs);

  std::unique_ptr<RawFile> f;
  ASSERT_OK(fs.NewWritableFile(NewPath("bystander"), &f));
  ASSERT_OK(f->Close());
  EXPECT_EQ(fs.ops_matched(), 0u);  // filter excludes non-matching paths

  Status s = fs.NewWritableFile(NewPath("victim"), &f);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(fs.ops_matched(), 1u);
  EXPECT_EQ(fs.faults_injected(), 1u);
}

TEST_F(EnvTest, MetadataOperationFaultMatrix) {
  // Every metadata op class faults independently with the exact injected
  // errno -- the in-process mirror of one sweep step per op.
  const std::string src = NewPath("src");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(src));
    ASSERT_OK(w.Append("x", 1));
    ASSERT_OK(w.Close());
  }

  struct Case {
    const char* spec;
    std::function<Status(FileSystem*)> run;
  };
  const Case kCases[] = {
      {"stat:1:EACCES",
       [&](FileSystem* fs) {
         uint64_t size = 0;
         return fs->GetFileSize(src, &size);
       }},
      {"remove:1:EACCES", [&](FileSystem* fs) { return fs->RemoveFile(src); }},
      {"sync:1:EROFS", [&](FileSystem* fs) { return fs->SyncFile(src); }},
      {"syncdir:1:EROFS",
       [&](FileSystem* fs) { return fs->SyncDirectory(scratch_.path()); }},
      {"rename:1:EACCES",
       [&](FileSystem* fs) { return fs->RenameFile(src, NewPath("dst")); }},
      {"link:1:EACCES",
       [&](FileSystem* fs) { return fs->HardLinkFile(src, NewPath("lnk")); }},
      {"mkdir:1:EACCES",
       [&](FileSystem* fs) {
         std::string out;
         return fs->CreateTempDir(NewPath("t-XXXXXX"), &out);
       }},
      {"rmtree:1:EACCES",
       [&](FileSystem* fs) { return fs->RemoveTree(scratch_.path()); }},
  };
  for (const auto& c : kCases) {
    FaultSpec spec = MustParse(c.spec);
    FaultInjectionFileSystem fs(PosixFileSystem(), spec);
    Status s = c.run(&fs);
    EXPECT_TRUE(s.IsIOError()) << c.spec << ": " << s.ToString();
    EXPECT_EQ(s.sys_errno(), spec.fault_errno) << c.spec;
    EXPECT_EQ(fs.faults_injected(), 1u) << c.spec;
    // The same op against the untouched base succeeds (proving the fault
    // was injected, not real), except the destructive ones we skip.
  }
  // All of the above left the source file intact: metadata faults are
  // clean rejections, not partial mutations.
  uint64_t size = 0;
  ASSERT_OK(GetFileSize(src, &size));
  EXPECT_EQ(size, 1u);
}

TEST_F(EnvTest, ShortWriteTearsTheTransfer) {
  // write:1:ENOSPC:short must land HALF the bytes in the file before
  // failing -- a torn write, exactly what a full disk does mid-transfer.
  FaultInjectionFileSystem fs(PosixFileSystem(),
                              MustParse("write:1:ENOSPC:short"));
  const std::string path = NewPath("torn");
  std::unique_ptr<RawFile> f;
  ASSERT_OK(fs.NewWritableFile(path, &f));
  const char payload[8] = {'0', '1', '2', '3', '4', '5', '6', '7'};
  Status s = f->Write(payload, sizeof(payload));
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(s.sys_errno(), ENOSPC);
  ASSERT_OK(f->Close());

  uint64_t size = 0;
  ASSERT_OK(GetFileSize(path, &size));
  EXPECT_EQ(size, sizeof(payload) / 2);
}

TEST_F(EnvTest, ShortReadReturnsPartialBytesThenError) {
  const std::string path = NewPath("shortread");
  {
    SequentialFileWriter w;
    ASSERT_OK(w.Open(path));
    ASSERT_OK(w.Append("01234567", 8));
    ASSERT_OK(w.Close());
  }
  FaultInjectionFileSystem fs(PosixFileSystem(), MustParse("read:1:EIO:short"));
  std::unique_ptr<RawFile> f;
  ASSERT_OK(fs.NewReadableFile(path, &f));
  char buf[8] = {0};
  size_t got = 0;
  Status s = f->Read(buf, sizeof(buf), &got);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(got, 4u);  // half the request moved before the error
  EXPECT_EQ(std::string(buf, got), "0123");
}

// ----------------------------------------------------------- retry policy --

TEST(RetryPolicyTest, TransientClassification) {
  EXPECT_TRUE(IsTransientIoError(Status::IOError("x", EINTR)));
  EXPECT_TRUE(IsTransientIoError(Status::IOError("x", EAGAIN)));
  EXPECT_TRUE(IsTransientIoError(Status::IOError("x", EIO)));
  // Permanent: retrying cannot help.
  EXPECT_FALSE(IsTransientIoError(Status::IOError("x", ENOSPC)));
  EXPECT_FALSE(IsTransientIoError(Status::IOError("x", EACCES)));
  EXPECT_FALSE(IsTransientIoError(Status::IOError("x", EROFS)));
  // No errno captured: cannot prove it is transient.
  EXPECT_FALSE(IsTransientIoError(Status::IOError("x")));
  // Non-I/O categories never retry.
  EXPECT_FALSE(IsTransientIoError(Status::Corruption("x")));
  EXPECT_FALSE(IsTransientIoError(Status::OK()));
}

TEST(RetryPolicyTest, AbsorbsTransientErrors) {
  RetryPolicy policy{/*max_attempts=*/3, /*backoff_us=*/0};
  IoStats stats;
  int calls = 0;
  Status s = RetryIo(policy, &stats, [&] {
    ++calls;
    return calls < 3 ? Status::IOError("flaky", EIO) : Status::OK();
  });
  EXPECT_OK(s);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.io_retries, 2u);
}

TEST(RetryPolicyTest, GivesUpAfterMaxAttempts) {
  RetryPolicy policy{/*max_attempts=*/3, /*backoff_us=*/0};
  IoStats stats;
  int calls = 0;
  Status s = RetryIo(policy, &stats, [&] {
    ++calls;
    return Status::IOError("always", EIO);
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.io_retries, 2u);
}

TEST(RetryPolicyTest, PermanentErrorsAreNotRetried) {
  RetryPolicy policy{/*max_attempts=*/5, /*backoff_us=*/0};
  IoStats stats;
  int calls = 0;
  Status s = RetryIo(policy, &stats, [&] {
    ++calls;
    return Status::IOError("disk full", ENOSPC);
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(calls, 1);  // first failure is final
  EXPECT_EQ(stats.io_retries, 0u);
}

TEST(RetryPolicyTest, NullStatsIsAccepted) {
  RetryPolicy policy{/*max_attempts=*/2, /*backoff_us=*/0};
  int calls = 0;
  EXPECT_OK(RetryIo(policy, nullptr, [&] {
    ++calls;
    return calls < 2 ? Status::IOError("flaky", EINTR) : Status::OK();
  }));
  EXPECT_EQ(calls, 2);
}

TEST_F(EnvTest, WriterOpenAbsorbsOneTransientFault) {
  // A once-only EIO at open is exactly what the retry policy exists for:
  // the writer's Open survives it and charges one retry to the stats.
  FaultInjectionFileSystem fs(PosixFileSystem(), MustParse("open:1:EIO"));
  ScopedFileSystem scoped(&fs);
  IoStats stats;
  SequentialFileWriter w(&stats);
  ASSERT_OK(w.Open(NewPath("retried")));
  ASSERT_OK(w.Append("x", 1));
  ASSERT_OK(w.Close());
  EXPECT_EQ(stats.io_retries, 1u);
  EXPECT_EQ(fs.faults_injected(), 1u);
}

TEST_F(EnvTest, WriterSyncAbsorbsOneTransientFault) {
  FaultInjectionFileSystem fs(PosixFileSystem(), MustParse("sync:1:EIO"));
  ScopedFileSystem scoped(&fs);
  IoStats stats;
  SequentialFileWriter w(&stats);
  ASSERT_OK(w.Open(NewPath("synced")));
  ASSERT_OK(w.Append("x", 1));
  ASSERT_OK(w.Sync());
  ASSERT_OK(w.Close());
  EXPECT_EQ(stats.io_retries, 1u);
}

TEST_F(EnvTest, StickyPermanentSyncFaultPoisonsTheWriter) {
  FaultInjectionFileSystem fs(PosixFileSystem(),
                              MustParse("sync:1:EROFS:sticky"));
  ScopedFileSystem scoped(&fs);
  SequentialFileWriter w;
  ASSERT_OK(w.Open(NewPath("poisoned")));
  ASSERT_OK(w.Append("x", 1));
  Status s = w.Sync();
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(s.sys_errno(), EROFS);
  // The writer is poisoned: every later call reports the original error.
  EXPECT_TRUE(w.Append("y", 1).IsIOError());
  EXPECT_TRUE(w.Close().IsIOError());
}

TEST(RetryPolicyTest, DefaultPolicyIsSane) {
  const RetryPolicy& policy = DefaultRetryPolicy();
  EXPECT_GE(policy.max_attempts, 1);
}

}  // namespace
}  // namespace semis
