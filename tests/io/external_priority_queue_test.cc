#include "io/external_priority_queue.h"

#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "test_util.h"
#include "util/random.h"

namespace semis {
namespace {

using testing_util::ScratchTest;

class ExternalPqTest : public ScratchTest {};

TEST_F(ExternalPqTest, BasicOrdering) {
  ExternalPriorityQueueOptions opts;
  opts.scratch_dir = scratch_.path();
  ExternalPriorityQueue pq(opts);
  ASSERT_OK(pq.Push(5, 50));
  ASSERT_OK(pq.Push(1, 10));
  ASSERT_OK(pq.Push(3, 30));
  EXPECT_EQ(pq.Size(), 3u);
  uint64_t key;
  uint32_t value;
  ASSERT_OK(pq.PopMin(&key, &value));
  EXPECT_EQ(key, 1u);
  EXPECT_EQ(value, 10u);
  ASSERT_OK(pq.PopMin(&key, &value));
  EXPECT_EQ(key, 3u);
  ASSERT_OK(pq.PopMin(&key, &value));
  EXPECT_EQ(key, 5u);
  EXPECT_TRUE(pq.Empty());
}

TEST_F(ExternalPqTest, PeekDoesNotRemove) {
  ExternalPriorityQueueOptions opts;
  opts.scratch_dir = scratch_.path();
  ExternalPriorityQueue pq(opts);
  ASSERT_OK(pq.Push(9, 1));
  uint64_t key;
  uint32_t value;
  ASSERT_OK(pq.PeekMin(&key, &value));
  EXPECT_EQ(key, 9u);
  EXPECT_EQ(pq.Size(), 1u);
  ASSERT_OK(pq.PopMin(&key, &value));
  EXPECT_TRUE(pq.Empty());
}

TEST_F(ExternalPqTest, PopOnEmptyFails) {
  ExternalPriorityQueueOptions opts;
  opts.scratch_dir = scratch_.path();
  ExternalPriorityQueue pq(opts);
  uint64_t key;
  uint32_t value;
  EXPECT_TRUE(pq.PopMin(&key, &value).IsInvalidArgument());
  EXPECT_TRUE(pq.PeekMin(&key, &value).IsInvalidArgument());
}

TEST_F(ExternalPqTest, SpillingMatchesReferenceHeap) {
  ExternalPriorityQueueOptions opts;
  opts.memory_budget_entries = 64;  // force spills
  opts.scratch_dir = scratch_.path();
  ExternalPriorityQueue pq(opts);
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<>> ref;
  Random rng(123);
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.Uniform(100000);
    ASSERT_OK(pq.Push(key, static_cast<uint32_t>(key & 0xFFFF)));
    ref.push(key);
  }
  EXPECT_GT(pq.RunsCreated(), 0u);
  while (!ref.empty()) {
    uint64_t key;
    uint32_t value;
    ASSERT_OK(pq.PopMin(&key, &value));
    ASSERT_EQ(key, ref.top());
    EXPECT_EQ(value, static_cast<uint32_t>(key & 0xFFFF));
    ref.pop();
  }
  EXPECT_TRUE(pq.Empty());
}

TEST_F(ExternalPqTest, InterleavedPushPopWithSpills) {
  // Time-forward usage pattern: pushes with monotonically growing keys
  // interleaved with pops of the current minimum.
  ExternalPriorityQueueOptions opts;
  opts.memory_budget_entries = 32;
  opts.scratch_dir = scratch_.path();
  ExternalPriorityQueue pq(opts);
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<>> ref;
  Random rng(321);
  uint64_t watermark = 0;
  for (int step = 0; step < 2000; ++step) {
    if (ref.empty() || rng.OneIn(0.6)) {
      uint64_t key = watermark + rng.Uniform(50);
      ASSERT_OK(pq.Push(key, 0));
      ref.push(key);
    } else {
      uint64_t key;
      uint32_t value;
      ASSERT_OK(pq.PopMin(&key, &value));
      ASSERT_EQ(key, ref.top());
      ref.pop();
      watermark = key;
    }
  }
  while (!ref.empty()) {
    uint64_t key;
    uint32_t value;
    ASSERT_OK(pq.PopMin(&key, &value));
    ASSERT_EQ(key, ref.top());
    ref.pop();
  }
  EXPECT_TRUE(pq.Empty());
}

TEST_F(ExternalPqTest, DuplicateKeysAllPopped) {
  ExternalPriorityQueueOptions opts;
  opts.memory_budget_entries = 16;
  opts.scratch_dir = scratch_.path();
  ExternalPriorityQueue pq(opts);
  for (int i = 0; i < 100; ++i) ASSERT_OK(pq.Push(7, static_cast<uint32_t>(i)));
  uint64_t key;
  uint32_t value;
  int popped = 0;
  while (!pq.Empty()) {
    ASSERT_OK(pq.PopMin(&key, &value));
    EXPECT_EQ(key, 7u);
    popped++;
  }
  EXPECT_EQ(popped, 100);
}

}  // namespace
}  // namespace semis
