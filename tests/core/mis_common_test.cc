#include "core/mis_common.h"

#include <gtest/gtest.h>

namespace semis {
namespace {

TEST(MisCommonTest, StateTagsMatchTable3) {
  // Table 3's notation: I, N, A, C, P, R (plus our INITIAL as '0').
  EXPECT_EQ(VStateChar(VState::kInitial), '0');
  EXPECT_EQ(VStateChar(VState::kI), 'I');
  EXPECT_EQ(VStateChar(VState::kN), 'N');
  EXPECT_EQ(VStateChar(VState::kA), 'A');
  EXPECT_EQ(VStateChar(VState::kP), 'P');
  EXPECT_EQ(VStateChar(VState::kC), 'C');
  EXPECT_EQ(VStateChar(VState::kR), 'R');
}

TEST(MisCommonTest, StatesToStringRendersInOrder) {
  std::vector<VState> states = {VState::kI, VState::kN, VState::kA,
                                VState::kP, VState::kC, VState::kR};
  EXPECT_EQ(StatesToString(states), "INAPCR");
}

TEST(MisCommonTest, ExtractIndependentSetCountsOnlyI) {
  std::vector<VState> states = {VState::kI, VState::kN, VState::kI,
                                VState::kA, VState::kP};
  BitVector set;
  uint64_t size = 0;
  ExtractIndependentSet(states, &set, &size);
  EXPECT_EQ(size, 2u);
  EXPECT_TRUE(set.Test(0));
  EXPECT_FALSE(set.Test(1));
  EXPECT_TRUE(set.Test(2));
  EXPECT_FALSE(set.Test(3));
  EXPECT_FALSE(set.Test(4));  // P is not yet committed
}

TEST(MisCommonTest, RoundStatsDefaultsToZero) {
  RoundStats r;
  EXPECT_EQ(r.one_k_swaps + r.two_k_swaps + r.zero_one_swaps + r.conflicts +
                r.denied_promotions + r.new_is_vertices +
                r.removed_is_vertices + r.follower_joins,
            0u);
}

TEST(MisCommonTest, VStateFitsInOneByte) {
  // The semi-external memory argument (1 byte/vertex for greedy) depends
  // on this.
  EXPECT_EQ(sizeof(VState), 1u);
}

}  // namespace
}  // namespace semis
