// Background re-sort (ShardedStreamingMis::Resort): after a
// degree-changing compaction clears the degree-sorted flag, Resort must
// restore it and produce a store byte-identical to a fresh
// unshard -> degree-sort -> re-shard rebuild of the same effective
// graph -- at every thread and shard count, so the GREEDY order a
// re-sorted store serves is indistinguishable from a from-scratch
// preprocess. Exercised at 1/2/8 threads x 1/3/7 shards.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/incremental_stream.h"
#include "core/solver.h"
#include "core/verify.h"
#include "gen/plrg.h"
#include "graph/adjacency_file.h"
#include "graph/degree_sort.h"
#include "graph/graph_io.h"
#include "graph/shard_store.h"
#include "graph/sharded_adjacency_file.h"
#include "io/epoch_journal.h"
#include "io/file.h"
#include "test_util.h"
#include "util/random.h"

namespace semis {
namespace {

using testing_util::RandomMaximalSet;
using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

std::vector<char> ReadAllBytes(const std::string& path) {
  std::vector<char> bytes;
  SequentialFileReader r;
  EXPECT_OK(r.Open(path));
  char buf[1 << 16];
  size_t n = 0;
  do {
    EXPECT_OK(r.Read(buf, sizeof(buf), &n));
    bytes.insert(bytes.end(), buf, buf + n);
  } while (n > 0);
  EXPECT_OK(r.Close());
  return bytes;
}

std::vector<uint32_t> ToVector(const BitVector& set) {
  std::vector<uint32_t> out;
  for (size_t v = 0; v < set.size(); ++v) {
    if (set.Test(v)) out.push_back(static_cast<uint32_t>(v));
  }
  return out;
}

class ResortTest : public ScratchTest {
 protected:
  void SetUp() override {
    ScratchTest::SetUp();
    g_ = GeneratePlrg(PlrgSpec::ForVertexCount(400, 2.0), 11);
    mono_ = WriteGraphFile(&scratch_, g_);
    initial_ = RandomMaximalSet(g_, 5);
  }

  // Fresh degree-sorted store with `num_shards` shards (the state a
  // from-scratch preprocess leaves behind).
  std::string MakeSortedStore(const std::string& tag, uint32_t num_shards) {
    const std::string sorted = NewPath(tag + ".sadj");
    DegreeSortOptions sort_options;
    EXPECT_OK(BuildDegreeSortedAdjacencyFile(mono_, sorted, sort_options));
    const std::string root = NewPath(tag + ".sadjs");
    EXPECT_OK(ShardAdjacencyFile(sorted, root, num_shards));
    return root;
  }

  // The SAME degree-changing batch for every geometry: inserts plus
  // deletions of edges known to exist, so compaction genuinely breaks
  // the (degree, id) order.
  std::vector<EdgeUpdate> Updates() const {
    std::vector<EdgeUpdate> updates;
    Random rng(23);
    for (int i = 0; i < 120; ++i) {
      const auto u = static_cast<VertexId>(rng.Uniform(g_.NumVertices()));
      const auto v = static_cast<VertexId>(rng.Uniform(g_.NumVertices()));
      if (u != v) updates.push_back(EdgeUpdate::Insert(u, v));
    }
    int deletions = 0;
    for (VertexId v = 0; v < g_.NumVertices() && deletions < 40; v += 7) {
      auto neighbors = g_.Neighbors(v);
      if (neighbors.empty()) continue;
      updates.push_back(EdgeUpdate::Delete(v, neighbors[0]));
      deletions++;
    }
    return updates;
  }

  // From-scratch rebuild of the compacted store at `root`: unshard the
  // served epoch into a monolithic file, degree-sort it, re-shard with
  // the same shard count. This is the golden the re-sorted store must
  // match byte for byte.
  std::string RebuildReference(const std::string& root, const std::string& tag,
                               uint32_t num_shards) {
    IoStats io;
    ShardedAdjacencyScanner scanner(&io);
    EXPECT_OK(scanner.Open(root));
    const AdjacencyFileHeader& h = scanner.header();
    const std::string unsharded = NewPath(tag + ".ref.adj");
    AdjacencyFileWriter writer(&io);
    EXPECT_OK(writer.Open(unsharded, h.num_vertices, h.num_directed_edges,
                          h.max_degree, h.flags));
    VertexRecordView rec;
    bool has_next = false;
    while (true) {
      EXPECT_OK(scanner.Next(&rec, &has_next));
      if (!has_next) break;
      EXPECT_OK(writer.AppendVertex(rec.id, rec.neighbors, rec.degree));
    }
    EXPECT_OK(writer.Finish());
    const std::string sorted = NewPath(tag + ".ref.sadj");
    DegreeSortOptions sort_options;
    EXPECT_OK(BuildDegreeSortedAdjacencyFile(unsharded, sorted, sort_options));
    const std::string manifest = NewPath(tag + ".ref.sadjs");
    EXPECT_OK(ShardAdjacencyFile(sorted, manifest, num_shards));
    return manifest;
  }

  Graph g_;
  std::string mono_;
  BitVector initial_;
};

TEST_F(ResortTest, RestoresSortByteIdenticalToFreshRebuildEverywhere) {
  const uint32_t shard_counts[] = {1, 3, 7};
  const uint32_t thread_counts[] = {1, 2, 8};
  for (uint32_t num_shards : shard_counts) {
    // Shard bytes and solve output must agree across thread counts for a
    // fixed shard count (and match the fresh rebuild, checked per
    // geometry). Across shard counts the bytes differ by construction
    // (different split points), and the swap stage's round structure is
    // geometry-dependent, so no cross-shard-count solve identity is
    // asserted -- that is not part of the determinism contract.
    std::vector<std::vector<char>> shard_reference;
    std::vector<uint32_t> solve_reference;
    for (uint32_t num_threads : thread_counts) {
      SCOPED_TRACE("shards=" + std::to_string(num_shards) +
                   " threads=" + std::to_string(num_threads));
      const std::string tag =
          "s" + std::to_string(num_shards) + "t" + std::to_string(num_threads);
      const std::string root = MakeSortedStore(tag, num_shards);
      EnginePipelineOptions options;
      options.num_threads = num_threads;
      ShardedStreamingMis mis;
      ASSERT_OK(mis.Initialize(root, initial_, options));
      ASSERT_OK(mis.ApplyBatch(Updates()));
      ASSERT_OK(mis.Repair());
      ASSERT_OK(mis.Compact(/*force=*/true));

      // The degree-changing compaction cleared the flag.
      ShardedAdjacencyManifest manifest;
      ASSERT_OK(ReadShardStoreManifest(root, &manifest));
      ASSERT_FALSE(manifest.header.IsDegreeSorted());

      const std::string reference = RebuildReference(root, tag, num_shards);
      ASSERT_OK(mis.Resort());
      EXPECT_EQ(mis.stats().resorts, 1u);
      ASSERT_OK(ReadShardStoreManifest(root, &manifest));
      EXPECT_TRUE(manifest.header.IsDegreeSorted());

      ResolvedShardStore store;
      ASSERT_OK(ResolveShardStore(root, &store));
      EXPECT_EQ(ReadAllBytes(store.manifest_path), ReadAllBytes(reference));
      for (uint32_t k = 0; k < num_shards; ++k) {
        SCOPED_TRACE("shard " + std::to_string(k));
        std::vector<char> bytes =
            ReadAllBytes(ShardFilePath(store.manifest_path, k));
        EXPECT_EQ(bytes, ReadAllBytes(ShardFilePath(reference, k)));
        if (shard_reference.size() <= k) {
          shard_reference.push_back(bytes);
        } else {
          EXPECT_EQ(bytes, shard_reference[k]);
        }
      }
      // The re-sorted store left nothing behind (runs, staging, stale
      // epochs beyond the kept previous one).
      std::vector<std::string> orphans;
      ASSERT_OK(ListShardStoreOrphans(store, &orphans));
      EXPECT_TRUE(orphans.empty()) << orphans.front();

      // The maintained set is still valid over the re-sorted store, and
      // a from-scratch solve is geometry-independent.
      VerifyResult verified;
      ASSERT_OK(VerifyIndependentSetShardedFile(root, mis.set(), &verified));
      EXPECT_TRUE(verified.independent && verified.maximal);
      SolverOptions solver_options;
      solver_options.pipeline.num_threads = num_threads;
      Solver solver{solver_options};
      SolveResult result;
      ASSERT_OK(solver.SolveShardedFile(root, &result));
      SolveResult fresh;
      ASSERT_OK(solver.SolveShardedFile(reference, &fresh));
      std::vector<uint32_t> members = ToVector(result.set);
      EXPECT_EQ(members, ToVector(fresh.set));
      if (solve_reference.empty()) {
        solve_reference = members;
      } else {
        EXPECT_EQ(members, solve_reference);
      }
    }
  }
}

TEST_F(ResortTest, AutoResortRunsOffTheBackOfCompaction) {
  const std::string root = MakeSortedStore("auto", 3);
  EnginePipelineOptions options;
  options.auto_resort = true;
  ShardedStreamingMis mis;
  ASSERT_OK(mis.Initialize(root, initial_, options));
  ASSERT_OK(mis.ApplyBatch(Updates()));
  ASSERT_OK(mis.Repair());
  // Compact clears the flag, then chains straight into the re-sort and
  // publishes the sorted epoch.
  ASSERT_OK(mis.Compact(/*force=*/true));
  EXPECT_EQ(mis.stats().resorts, 1u);
  ShardedAdjacencyManifest manifest;
  ASSERT_OK(ReadShardStoreManifest(root, &manifest));
  EXPECT_TRUE(manifest.header.IsDegreeSorted());
}

TEST_F(ResortTest, ResortIsANoOpOnASortedStore) {
  const std::string root = MakeSortedStore("noop", 3);
  ShardedStreamingMis mis;
  ASSERT_OK(mis.Initialize(root, initial_, EnginePipelineOptions{}));
  ASSERT_OK(mis.Resort());
  EXPECT_EQ(mis.stats().resorts, 0u);
  // Nothing was published: the store is still the legacy layout.
  uint32_t magic = 0;
  ASSERT_OK(ProbeFileMagic(root, &magic));
  EXPECT_EQ(magic, kShardManifestMagic);
}

TEST_F(ResortTest, ResortSurvivesARestartBetweenBatches) {
  // Stream, compact, re-sort, then hand the store to a fresh session:
  // the epoch-journaled root plus the restored order must let it pick up
  // exactly where the first session stopped.
  const std::string root = MakeSortedStore("restart", 3);
  EnginePipelineOptions options;
  options.num_threads = 2;
  ShardedStreamingMis first;
  ASSERT_OK(first.Initialize(root, initial_, options));
  ASSERT_OK(first.ApplyBatch(Updates()));
  ASSERT_OK(first.Repair());
  ASSERT_OK(first.Compact(/*force=*/true));
  ASSERT_OK(first.Resort());

  ShardedStreamingMis second;
  ASSERT_OK(second.Initialize(root, first.set(), options));
  EXPECT_EQ(ToVector(second.set()), ToVector(first.set()));
  ASSERT_OK(second.Repair());
  VerifyResult verified;
  ASSERT_OK(VerifyIndependentSetShardedFile(root, second.set(), &verified));
  EXPECT_TRUE(verified.independent && verified.maximal);
}

}  // namespace
}  // namespace semis
