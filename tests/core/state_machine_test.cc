// Verifies that every state transition performed by the swap algorithms
// is a legal edge of the paper's Figure 3 state-transition diagram,
// per phase, on randomized inputs. Uses the PhaseObserver hook.
//
// Legal transitions by phase:
//   pre-swap  : A -> {A,C,P}, I -> {I,R}; N, C, R unchanged
//               (C/R do not exist entering a round; kept strict below)
//   swap      : P -> I (one-k) or P -> {I,C} (two-k, denial), R -> N;
//               everything else unchanged
//   post-swap : N -> {N,A,I}, C -> {C? no: A,N}, A -> {A,N}; I unchanged
//   completion: any non-I may become I; nothing else changes
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/greedy.h"
#include "core/one_k_swap.h"
#include "core/two_k_swap.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::RandomMaximalSet;
using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

class StateMachineTest : public ScratchTest {};

// Transition-legality oracle: phase -> (from -> allowed set of to).
bool Allowed(const std::string& phase, VState from, VState to, bool two_k) {
  if (from == to) {
    // Self-transitions are always fine except that P and R must be
    // consumed by the swap phase that follows their creation.
    if (phase == "swap" && (from == VState::kP || from == VState::kR)) {
      return false;
    }
    return true;
  }
  auto is = [&](VState a, VState b) { return from == a && to == b; };
  if (phase == "pre-swap") {
    return is(VState::kA, VState::kC) || is(VState::kA, VState::kP) ||
           is(VState::kI, VState::kR);
  }
  if (phase == "swap") {
    if (is(VState::kP, VState::kI) || is(VState::kR, VState::kN)) return true;
    if (two_k && is(VState::kP, VState::kC)) return true;  // denied race
    return false;
  }
  if (phase == "post-swap") {
    return is(VState::kN, VState::kA) || is(VState::kN, VState::kI) ||
           is(VState::kC, VState::kA) || is(VState::kC, VState::kN) ||
           is(VState::kA, VState::kN);
  }
  if (phase == "completion") {
    return to == VState::kI;
  }
  return false;
}

// Runs an algorithm with the observer attached and records every illegal
// transition.
template <typename Options, typename RunFn>
std::vector<std::string> CollectViolations(const std::string& path,
                                           const BitVector& initial,
                                           bool two_k, RunFn run) {
  std::vector<std::string> violations;
  std::vector<VState> prev;
  std::string prev_phase = "init";
  Options opts;
  opts.observer = [&](const char* phase, uint64_t round,
                      const std::vector<VState>& states) {
    if (!prev.empty()) {
      // The snapshot pair (prev_phase -> phase) attributes transitions to
      // the phase that just ran.
      for (size_t v = 0; v < states.size(); ++v) {
        if (!Allowed(phase, prev[v], states[v], two_k)) {
          violations.push_back(std::string(prev_phase) + "->" + phase +
                               " round " + std::to_string(round) +
                               " vertex " + std::to_string(v) + ": " +
                               VStateChar(prev[v]) + " -> " +
                               VStateChar(states[v]));
        }
      }
    }
    prev = states;
    prev_phase = phase;
  };
  AlgoResult res;
  Status s = run(path, initial, opts, &res);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return violations;
}

TEST_F(StateMachineTest, OneKSwapFollowsFigure3) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = GenerateErdosRenyi(150, 400, seed);
    std::string path = WriteGraphFile(&scratch_, g);
    BitVector initial = RandomMaximalSet(g, seed + 40);
    auto violations = CollectViolations<OneKSwapOptions>(
        path, initial, /*two_k=*/false, RunOneKSwap);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ", first: " << violations.front();
  }
}

TEST_F(StateMachineTest, TwoKSwapFollowsFigure3) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = GenerateErdosRenyi(150, 400, seed);
    std::string path = WriteGraphFile(&scratch_, g);
    BitVector initial = RandomMaximalSet(g, seed + 80);
    auto violations = CollectViolations<TwoKSwapOptions>(
        path, initial, /*two_k=*/true, RunTwoKSwap);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ", first: " << violations.front();
  }
}

TEST_F(StateMachineTest, PowerLawGraphsToo) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(2000, 2.0), 5);
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector initial = RandomMaximalSet(g, 3);
  auto one_k = CollectViolations<OneKSwapOptions>(path, initial, false,
                                                  RunOneKSwap);
  EXPECT_TRUE(one_k.empty()) << one_k.front();
  auto two_k = CollectViolations<TwoKSwapOptions>(path, initial, true,
                                                  RunTwoKSwap);
  EXPECT_TRUE(two_k.empty()) << two_k.front();
}

TEST_F(StateMachineTest, ObserverSeesAllPhases) {
  Graph g = GenerateCycle(20);
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector initial = RandomMaximalSet(g, 1);
  std::set<std::string> phases;
  OneKSwapOptions opts;
  opts.observer = [&](const char* phase, uint64_t, const std::vector<VState>&) {
    phases.insert(phase);
  };
  AlgoResult res;
  ASSERT_OK(RunOneKSwap(path, initial, opts, &res));
  EXPECT_TRUE(phases.count("init"));
  EXPECT_TRUE(phases.count("pre-swap"));
  EXPECT_TRUE(phases.count("swap"));
  EXPECT_TRUE(phases.count("post-swap"));
  EXPECT_TRUE(phases.count("completion"));
}

}  // namespace
}  // namespace semis
