#include "core/one_k_swap.h"

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "gen/paper_figures.h"
#include "gen/plrg.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::RandomMaximalSet;
using testing_util::ScratchTest;
using testing_util::SetToVector;
using testing_util::WriteGraphFile;
using testing_util::WriteGraphFileInOrder;

class OneKSwapTest : public ScratchTest {};

BitVector MakeSet(size_t n, std::initializer_list<VertexId> members) {
  BitVector set(n);
  for (VertexId v : members) set.Set(v);
  return set;
}

TEST_F(OneKSwapTest, Figure1SwapRecoversMaximum) {
  // {v1, v2} is maximal with size 2; swapping v1 for the three leaves
  // yields the maximum {v2, v3, v4, v5}.
  PaperExample ex = Figure1Example();
  std::string path = WriteGraphFileInOrder(&scratch_, ex.graph, ex.scan_order);
  BitVector initial = MakeSet(5, {0, 1});
  AlgoResult res;
  ASSERT_OK(RunOneKSwap(path, initial, {}, &res));
  EXPECT_EQ(res.set_size, 4u);
  EXPECT_EQ(SetToVector(res.in_set), (std::vector<VertexId>{1, 2, 3, 4}));
}

TEST_F(OneKSwapTest, Figure2ConflictAllowsExactlyOneSwap) {
  // Example 1: two 1-2 skeletons conflict through the edge v3-v6; one
  // swap must fire, growing the set from 2 to 3. (The paper's narrated
  // final set {v2,v3,v4} assumes v3 is processed before v6; the published
  // access order processes v6 first, which yields the equally-sized set
  // {v2,v5,v6} -- conflict resolution is scan-order dependent by design.)
  PaperExample ex = Figure2Example();
  std::string path = WriteGraphFileInOrder(&scratch_, ex.graph, ex.scan_order);
  BitVector initial = MakeSet(6, {0, 3});
  AlgoResult res;
  ASSERT_OK(RunOneKSwap(path, initial, {}, &res));
  EXPECT_EQ(res.set_size, 3u);
  VerifyResult vr = VerifyIndependentSet(ex.graph, res.in_set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
  EXPECT_GE(res.round_stats.at(0).one_k_swaps, 1u);
  EXPECT_GE(res.round_stats.at(0).conflicts, 1u);
}

TEST_F(OneKSwapTest, CascadeNeedsOneRoundPerTriple) {
  // Figure 5's worst case: k triples, exactly one 1-2 swap per round.
  const VertexId k = 6;
  Graph g = GenerateCascadeSwap(k);
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector initial(g.NumVertices());
  for (VertexId i = 0; i < k; ++i) initial.Set(3 * i);
  AlgoResult res;
  ASSERT_OK(RunOneKSwap(path, initial, {}, &res));
  EXPECT_EQ(res.set_size, 2u * k);  // all b_i, c_i
  // k swap rounds + 1 final round that discovers convergence.
  EXPECT_EQ(res.rounds, static_cast<uint64_t>(k) + 1);
  for (VertexId i = 0; i < k; ++i) {
    EXPECT_FALSE(res.in_set.Test(3 * i));
    EXPECT_TRUE(res.in_set.Test(3 * i + 1));
    EXPECT_TRUE(res.in_set.Test(3 * i + 2));
  }
  // Exactly one 1-2 skeleton fires per swap round.
  for (uint64_t r = 0; r + 1 < res.rounds; ++r) {
    EXPECT_EQ(res.round_stats[r].one_k_swaps, 1u) << "round " << r;
  }
}

TEST_F(OneKSwapTest, EarlyStopCapsRounds) {
  const VertexId k = 6;
  Graph g = GenerateCascadeSwap(k);
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector initial(g.NumVertices());
  for (VertexId i = 0; i < k; ++i) initial.Set(3 * i);
  OneKSwapOptions opts;
  opts.max_rounds = 2;
  AlgoResult res;
  ASSERT_OK(RunOneKSwap(path, initial, opts, &res));
  EXPECT_EQ(res.rounds, 2u);
  // Two cascade steps happened: net gain 2.
  EXPECT_EQ(res.set_size, static_cast<uint64_t>(k) + 2);
  VerifyResult vr = VerifyIndependentSet(g, res.in_set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);  // completion pass keeps maximality
}

TEST_F(OneKSwapTest, NeverShrinksTheSet) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = GenerateErdosRenyi(200, 500, seed);
    std::string path = WriteGraphFile(&scratch_, g);
    BitVector initial = RandomMaximalSet(g, seed * 7 + 1);
    AlgoResult res;
    ASSERT_OK(RunOneKSwap(path, initial, {}, &res));
    EXPECT_GE(res.set_size, initial.Count()) << "seed " << seed;
    VerifyResult vr = VerifyIndependentSet(g, res.in_set);
    EXPECT_TRUE(vr.independent) << "seed " << seed;
    EXPECT_TRUE(vr.maximal) << "seed " << seed;
  }
}

TEST_F(OneKSwapTest, CountingTrickMatchesExplicitIndex) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(2000, 2.0), seed + 50);
    std::string path = WriteGraphFile(&scratch_, g);
    BitVector initial = RandomMaximalSet(g, seed);
    OneKSwapOptions with_trick, without_trick;
    with_trick.use_counting_trick = true;
    without_trick.use_counting_trick = false;
    AlgoResult a, b;
    ASSERT_OK(RunOneKSwap(path, initial, with_trick, &a));
    ASSERT_OK(RunOneKSwap(path, initial, without_trick, &b));
    // The ablation replaces the counter with an explicit inverse index
    // answering the same existence question: identical behaviour.
    EXPECT_EQ(a.set_size, b.set_size) << "seed " << seed;
    EXPECT_EQ(a.rounds, b.rounds) << "seed " << seed;
    EXPECT_EQ(SetToVector(a.in_set), SetToVector(b.in_set));
  }
}

TEST_F(OneKSwapTest, ImprovesGreedyOnPowerLawGraphs) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(30000, 2.0), 4);
  std::string path = WriteGraphFile(&scratch_, g);
  AlgoResult greedy;
  ASSERT_OK(RunGreedy(path, {}, &greedy));
  AlgoResult swap;
  ASSERT_OK(RunOneKSwap(path, greedy.in_set, {}, &swap));
  EXPECT_GT(swap.set_size, greedy.set_size);
}

TEST_F(OneKSwapTest, RoundStatsAddUp) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 12);
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector initial = RandomMaximalSet(g, 99);
  AlgoResult res;
  OneKSwapOptions opts;
  opts.final_maximality_pass = false;  // keep accounting exact
  ASSERT_OK(RunOneKSwap(path, initial, opts, &res));
  int64_t size = static_cast<int64_t>(initial.Count());
  for (const RoundStats& r : res.round_stats) {
    size += static_cast<int64_t>(r.new_is_vertices) -
            static_cast<int64_t>(r.removed_is_vertices);
    EXPECT_EQ(static_cast<uint64_t>(size), r.is_size_after);
  }
  EXPECT_EQ(static_cast<uint64_t>(size), res.set_size);
}

TEST_F(OneKSwapTest, ScansPerRoundIsTwoPlusInit) {
  Graph g = GenerateCycle(30);
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector initial = RandomMaximalSet(g, 3);
  OneKSwapOptions opts;
  opts.final_maximality_pass = false;
  AlgoResult res;
  ASSERT_OK(RunOneKSwap(path, initial, opts, &res));
  // Open (1) + init already part of open scan? init uses the open scan;
  // each round rewinds twice (pre-swap, post-swap).
  EXPECT_EQ(res.io.sequential_scans, 1 + 2 * res.rounds);
}

TEST_F(OneKSwapTest, MismatchedInitialSetRejected) {
  Graph g = GenerateCycle(10);
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector wrong(5);
  AlgoResult res;
  EXPECT_TRUE(RunOneKSwap(path, wrong, {}, &res).IsInvalidArgument());
}

TEST_F(OneKSwapTest, EmptyInitialSetOnEdgelessGraph) {
  Graph g = Graph::FromEdges(4, {});
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector initial(4);  // empty (not maximal; completion pass must fix)
  AlgoResult res;
  ASSERT_OK(RunOneKSwap(path, initial, {}, &res));
  EXPECT_EQ(res.set_size, 4u);
}

}  // namespace
}  // namespace semis
