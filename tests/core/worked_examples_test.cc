// End-to-end encodings of the paper's figures and narrated examples.
#include <gtest/gtest.h>

#include "baselines/exact.h"
#include "core/greedy.h"
#include "core/one_k_swap.h"
#include "core/two_k_swap.h"
#include "core/upper_bound.h"
#include "core/verify.h"
#include "gen/paper_figures.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::SetToVector;
using testing_util::WriteGraphFileInOrder;

class WorkedExamplesTest : public ScratchTest {};

TEST_F(WorkedExamplesTest, Figure1IndependenceNumberIsFour) {
  PaperExample ex = Figure1Example();
  ExactResult exact;
  ASSERT_OK(ExactMaxIndependentSet(ex.graph, &exact));
  EXPECT_EQ(exact.alpha, 4u);  // {v2, v3, v4, v5}
  EXPECT_EQ(ComputeIndependenceUpperBound(ex.graph), 4u);
}

TEST_F(WorkedExamplesTest, Figure1MaximalSetOfSizeTwoExists) {
  // {v1, v2} is independent and maximal (every other vertex touches v1).
  PaperExample ex = Figure1Example();
  BitVector set(5);
  set.Set(0);
  set.Set(1);
  VerifyResult vr = VerifyIndependentSet(ex.graph, set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
}

TEST_F(WorkedExamplesTest, Figure1GreedyOnDegreeSortedFileIsOptimal) {
  // Degree order: v2 (0), then the leaves (1), then v1 (3). Greedy takes
  // v2 and all leaves: the maximum independent set.
  PaperExample ex = Figure1Example();
  std::vector<VertexId> degree_order = {1, 2, 3, 4, 0};
  std::string path = WriteGraphFileInOrder(&scratch_, ex.graph, degree_order,
                                           kAdjFlagDegreeSorted);
  AlgoResult res;
  ASSERT_OK(RunGreedy(path, {}, &res));
  EXPECT_EQ(res.set_size, 4u);
  EXPECT_EQ(SetToVector(res.in_set), (std::vector<VertexId>{1, 2, 3, 4}));
}

TEST_F(WorkedExamplesTest, Figure2BothSkeletonsExistButConflict) {
  PaperExample ex = Figure2Example();
  // (v2,v3,v1): v2,v3 not adjacent, both only-IS-neighbor v1.
  EXPECT_FALSE(ex.graph.HasEdge(1, 2));
  // (v5,v6,v4): v5,v6 not adjacent, both only-IS-neighbor v4.
  EXPECT_FALSE(ex.graph.HasEdge(4, 5));
  // The conflict: v3 and v6 are adjacent, so both swaps cannot fire.
  EXPECT_TRUE(ex.graph.HasEdge(2, 5));
  ExactResult exact;
  ASSERT_OK(ExactMaxIndependentSet(ex.graph, &exact));
  EXPECT_EQ(exact.alpha, 3u);
}

TEST_F(WorkedExamplesTest, Figure5CascadeIsThreeRoundsOfSingleSwaps) {
  PaperExample ex = Figure5Example();
  std::string path = WriteGraphFileInOrder(&scratch_, ex.graph, ex.scan_order);
  BitVector initial(ex.graph.NumVertices());
  for (VertexId v : ex.initial_set) initial.Set(v);
  AlgoResult res;
  ASSERT_OK(RunOneKSwap(path, initial, {}, &res));
  // Paper: "this graph needs three rounds of swaps": v7 -> {v8,v9},
  // v4 -> {v5,v6}, v1 -> {v2,v3} (one per round), plus the convergence
  // round.
  EXPECT_EQ(res.rounds, 4u);
  EXPECT_EQ(res.set_size, 6u);
  EXPECT_EQ(res.round_stats[0].one_k_swaps, 1u);
  EXPECT_EQ(res.round_stats[1].one_k_swaps, 1u);
  EXPECT_EQ(res.round_stats[2].one_k_swaps, 1u);
  EXPECT_EQ(res.round_stats[3].one_k_swaps, 0u);
}

TEST_F(WorkedExamplesTest, Figure7TwoKBeatsOneK) {
  PaperExample ex = Figure7Example();
  std::string path = WriteGraphFileInOrder(&scratch_, ex.graph, ex.scan_order);
  BitVector initial(ex.graph.NumVertices());
  for (VertexId v : ex.initial_set) initial.Set(v);
  AlgoResult one_k, two_k;
  ASSERT_OK(RunOneKSwap(path, initial, {}, &one_k));
  ASSERT_OK(RunTwoKSwap(path, initial, {}, &two_k));
  EXPECT_EQ(two_k.set_size, 5u);
  EXPECT_LT(one_k.set_size, two_k.set_size);
  ExactResult exact;
  ASSERT_OK(ExactMaxIndependentSet(ex.graph, &exact));
  EXPECT_EQ(two_k.set_size, exact.alpha);  // two-k is optimal here
}

}  // namespace
}  // namespace semis
