#include "core/greedy.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/verify.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::SetToVector;
using testing_util::WriteGraphFile;
using testing_util::WriteGraphFileInOrder;

class GreedyTest : public ScratchTest {};

// Helper: degree-ascending record order for a graph.
std::vector<VertexId> DegreeOrder(const Graph& g) {
  std::vector<VertexId> order(g.NumVertices());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g.Degree(a) < g.Degree(b);
  });
  return order;
}

TEST_F(GreedyTest, StarDegreeSortedPicksAllLeaves) {
  Graph g = GenerateStar(50);
  std::string path = WriteGraphFileInOrder(&scratch_, g, DegreeOrder(g),
                                           kAdjFlagDegreeSorted);
  AlgoResult res;
  ASSERT_OK(RunGreedy(path, {}, &res));
  EXPECT_EQ(res.set_size, 49u);  // all leaves; the center is excluded
  EXPECT_FALSE(res.in_set.Test(0));
}

TEST_F(GreedyTest, StarIdOrderPicksOnlyCenter) {
  // BASELINE behaviour: the id-ordered file scans the hub first and the
  // whole star collapses to a single vertex -- the ordering is the entire
  // difference between GREEDY and BASELINE.
  Graph g = GenerateStar(50);
  std::string path = WriteGraphFile(&scratch_, g);
  AlgoResult res;
  ASSERT_OK(RunGreedy(path, {}, &res));
  EXPECT_EQ(res.set_size, 1u);
  EXPECT_TRUE(res.in_set.Test(0));
}

TEST_F(GreedyTest, RequireDegreeSortedFlagEnforced) {
  Graph g = GenerateStar(5);
  std::string path = WriteGraphFile(&scratch_, g);
  GreedyOptions opts;
  opts.require_degree_sorted = true;
  AlgoResult res;
  EXPECT_TRUE(RunGreedy(path, opts, &res).IsInvalidArgument());
}

TEST_F(GreedyTest, ResultIsMaximalIndependentSet) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Graph g = GenerateErdosRenyi(300, 900, seed);
    std::string path = WriteGraphFileInOrder(&scratch_, g, DegreeOrder(g),
                                             kAdjFlagDegreeSorted);
    AlgoResult res;
    ASSERT_OK(RunGreedy(path, {}, &res));
    VerifyResult vr = VerifyIndependentSet(g, res.in_set);
    EXPECT_TRUE(vr.independent) << "edge " << vr.witness_u << "-"
                                << vr.witness_v;
    EXPECT_TRUE(vr.maximal) << "addable " << vr.witness_u;
    EXPECT_EQ(res.in_set.Count(), res.set_size);
  }
}

TEST_F(GreedyTest, PathOptimal) {
  // Path 0-1-2-3-4: degree order puts endpoints first; greedy should find
  // an optimal set of size 3.
  Graph g = GeneratePath(5);
  std::string path = WriteGraphFileInOrder(&scratch_, g, DegreeOrder(g),
                                           kAdjFlagDegreeSorted);
  AlgoResult res;
  ASSERT_OK(RunGreedy(path, {}, &res));
  EXPECT_EQ(res.set_size, 3u);
}

TEST_F(GreedyTest, CompleteGraphAlwaysSizeOne) {
  Graph g = GenerateComplete(10);
  std::string path = WriteGraphFile(&scratch_, g);
  AlgoResult res;
  ASSERT_OK(RunGreedy(path, {}, &res));
  EXPECT_EQ(res.set_size, 1u);
}

TEST_F(GreedyTest, EmptyAndEdgelessGraphs) {
  {
    Graph g = Graph::FromEdges(0, {});
    std::string path = WriteGraphFile(&scratch_, g);
    AlgoResult res;
    ASSERT_OK(RunGreedy(path, {}, &res));
    EXPECT_EQ(res.set_size, 0u);
  }
  {
    Graph g = Graph::FromEdges(7, {});
    std::string path = WriteGraphFile(&scratch_, g);
    AlgoResult res;
    ASSERT_OK(RunGreedy(path, {}, &res));
    EXPECT_EQ(res.set_size, 7u);  // every isolated vertex joins
  }
}

TEST_F(GreedyTest, SingleScanOnly) {
  Graph g = GenerateErdosRenyi(1000, 3000, 4);
  std::string path = WriteGraphFile(&scratch_, g);
  AlgoResult res;
  ASSERT_OK(RunGreedy(path, {}, &res));
  EXPECT_EQ(res.io.sequential_scans, 1u);  // Algorithm 1: ONE scan
  uint64_t file_size = 0;
  ASSERT_OK(GetFileSize(path, &file_size));
  EXPECT_LE(res.io.bytes_read, file_size);
}

TEST_F(GreedyTest, MemoryIsOneBytePerVertexPlusResult) {
  Graph g = GenerateErdosRenyi(10000, 30000, 4);
  std::string path = WriteGraphFile(&scratch_, g);
  AlgoResult res;
  ASSERT_OK(RunGreedy(path, {}, &res));
  EXPECT_EQ(res.memory.CategoryBytes("state"), 10000u);
  EXPECT_LE(res.peak_memory_bytes, 10000u + 10000u / 8 + 64);
}

TEST_F(GreedyTest, DegreeSortPipelineBeatsBaselineOnPowerLaw) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.0), 21);
  std::string unsorted = WriteGraphFile(&scratch_, g);
  std::string sorted = NewPath("sorted");
  ASSERT_OK(BuildDegreeSortedAdjacencyFile(unsorted, sorted, {}));
  AlgoResult baseline, greedy;
  ASSERT_OK(RunGreedy(unsorted, {}, &baseline));
  ASSERT_OK(RunGreedy(sorted, {}, &greedy));
  // Table 5's consistent observation: GREEDY > BASELINE on power-law
  // graphs.
  EXPECT_GT(greedy.set_size, baseline.set_size);
}

TEST_F(GreedyTest, StatesMatchBitset) {
  Graph g = GenerateErdosRenyi(100, 200, 9);
  std::string path = WriteGraphFile(&scratch_, g);
  AlgoResult res;
  std::vector<VState> states;
  ASSERT_OK(RunGreedyWithStates(path, {}, &res, &states));
  ASSERT_EQ(states.size(), 100u);
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_EQ(states[v] == VState::kI, res.in_set.Test(v));
    EXPECT_TRUE(states[v] == VState::kI || states[v] == VState::kN);
  }
}

}  // namespace
}  // namespace semis
