// Lifecycle tests for the resident MisEngine (core/engine.h):
//
//   * differential replay: the epoch sequence published by an engine
//     driving apply -> repair -> publish equals, byte for byte, a
//     standalone ShardedStreamingMis (and the sequential IncrementalMis
//     reference) fed the same update script -- across the full
//     1/3/7-shard x 1/2/8-thread matrix, so every combination publishes
//     the identical epochs (the determinism contract);
//   * epoch snapshots are immutable: a reference held across later
//     publications (and Close) keeps showing its own epoch's set;
//   * Publish() is a no-op without mutation, per-epoch stats carry the
//     deltas since the previous publication, staleness tracks unpublished
//     updates;
//   * reader/mutator stress: reader threads snapshotting concurrently
//     with apply/repair/publish only ever observe fully-published epochs
//     (every observed (epoch, checksum) pair matches the publisher's
//     record of that epoch).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/incremental.h"
#include "core/incremental_stream.h"
#include "core/solver.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/graph_io.h"
#include "graph/sharded_adjacency_file.h"
#include "io/env.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::RandomMaximalSet;
using testing_util::ScratchTest;
using testing_util::SetToVector;
using testing_util::WriteGraphFile;

class EngineTest : public ScratchTest {};

constexpr uint32_t kShardCounts[] = {1, 3, 7};
constexpr uint32_t kThreadCounts[] = {1, 2, 8};

// Order-sensitive fingerprint of a set; collisions are irrelevant here,
// the tests only compare fingerprints of sets that must be EQUAL.
uint64_t Fingerprint(const BitVector& set) {
  uint64_t h = 1469598103934665603ull;
  for (size_t v = 0; v < set.size(); ++v) {
    if (set.Test(v)) {
      h ^= v;
      h *= 1099511628211ull;
    }
  }
  return h;
}

// A deterministic update script over `n` vertices: mostly edge flips,
// with some redundant traffic mixed in. Batches of `batch` updates.
std::vector<std::vector<EdgeUpdate>> MakeScript(uint64_t seed, VertexId n,
                                                int batches, int batch) {
  Random rng(seed * 977 + 13);
  std::vector<std::vector<EdgeUpdate>> script;
  for (int b = 0; b < batches; ++b) {
    script.emplace_back();
    while (static_cast<int>(script.back().size()) < batch) {
      VertexId u = static_cast<VertexId>(rng.Uniform(n));
      VertexId v = static_cast<VertexId>(rng.Uniform(n));
      if (u == v) continue;
      script.back().push_back(rng.OneIn(0.45)
                                  ? EdgeUpdate::Delete(u, v)
                                  : EdgeUpdate::Insert(u, v));
    }
  }
  return script;
}

// Drives `script` through (a) the sequential IncrementalMis reference,
// (b) a standalone ShardedStreamingMis, and (c) a MisEngine, per
// shard/thread combination, asserting the engine's published epoch equals
// both after every batch.
void RunDifferentialLifecycle(ScratchDir* scratch, const Graph& base,
                              uint64_t seed, int batches, int batch,
                              bool compact_midway) {
  std::string mono = scratch->NewFilePath("eng" + std::to_string(seed) +
                                          ".adj");
  ASSERT_OK(WriteGraphToAdjacencyFile(base, mono));
  const BitVector initial = RandomMaximalSet(base, seed + 77);
  const auto script =
      MakeScript(seed, base.NumVertices(), batches, batch);

  // Sequential reference over the monolithic file.
  IncrementalMis reference;
  ASSERT_OK(reference.Initialize(mono, initial));
  std::vector<std::vector<VertexId>> expected;
  for (const auto& updates : script) {
    for (const EdgeUpdate& u : updates) {
      if (u.op == EdgeDeltaOp::kInsert) {
        ASSERT_OK(reference.InsertEdge(u.u, u.v));
      } else {
        ASSERT_OK(reference.DeleteEdge(u.u, u.v));
      }
    }
    ASSERT_OK(reference.Repair());
    expected.push_back(SetToVector(reference.set()));
  }

  for (uint32_t shards : kShardCounts) {
    for (uint32_t threads : kThreadCounts) {
      const std::string tag = "eng" + std::to_string(seed) + "_s" +
                              std::to_string(shards) + "_t" +
                              std::to_string(threads);
      // Standalone maintainer on its own sharded copy.
      std::string standalone_manifest =
          scratch->NewFilePath(tag + "_sa.sadjs");
      ASSERT_OK(ShardAdjacencyFile(mono, standalone_manifest, shards));
      ShardedStreamingMis standalone;
      EnginePipelineOptions popts;
      popts.num_threads = threads;
      ASSERT_OK(standalone.Initialize(standalone_manifest, initial, popts));

      // Engine adopting the same initial set on another sharded copy.
      std::string engine_manifest =
          scratch->NewFilePath(tag + "_en.sadjs");
      ASSERT_OK(ShardAdjacencyFile(mono, engine_manifest, shards));
      MisEngineOptions eopts;
      eopts.pipeline.num_threads = threads;
      MisEngine engine(eopts);
      ASSERT_OK(engine.OpenSharded(engine_manifest, initial));
      ASSERT_TRUE(engine.is_open());
      ASSERT_EQ(engine.Snapshot()->epoch(), 1u);
      ASSERT_EQ(SetToVector(engine.Snapshot()->set()),
                SetToVector(initial));

      for (size_t b = 0; b < script.size(); ++b) {
        ASSERT_OK(standalone.ApplyBatch(script[b]));
        ASSERT_OK(standalone.Repair());

        ASSERT_OK(engine.ApplyBatch(script[b]));
        ASSERT_OK(engine.Repair());
        if (compact_midway && b == script.size() / 2) {
          ASSERT_OK(engine.Compact(/*force=*/true));
        }
        EpochSnapshotRef epoch = engine.Publish();
        ASSERT_NE(epoch, nullptr);
        // Epoch numbering: 1 was the adopted open, +1 per publish.
        ASSERT_EQ(epoch->epoch(), 2 + b) << tag;
        // Byte-identical to the standalone maintainer AND the sequential
        // monolithic reference -- which also proves every shard/thread
        // combination publishes the identical epoch sequence.
        ASSERT_EQ(SetToVector(epoch->set()), expected[b])
            << tag << " batch " << b;
        ASSERT_EQ(SetToVector(standalone.set()), expected[b])
            << tag << " batch " << b;
        ASSERT_EQ(epoch->set_size(), epoch->set().Count());
        // The served snapshot IS the published epoch.
        ASSERT_EQ(engine.Snapshot()->epoch(), epoch->epoch());
        ASSERT_EQ(engine.staleness(), 0u);
      }
    }
  }
}

TEST_F(EngineTest, DifferentialLifecycleErdosRenyi) {
  Graph base = GenerateErdosRenyi(90, 220, 7);
  RunDifferentialLifecycle(&scratch_, base, /*seed=*/1, /*batches=*/4,
                           /*batch=*/25, /*compact_midway=*/false);
}

TEST_F(EngineTest, DifferentialLifecyclePlrg) {
  Graph base = GeneratePlrg(PlrgSpec::ForVertexCount(250, 2.0), 19);
  RunDifferentialLifecycle(&scratch_, base, /*seed=*/2, /*batches=*/3,
                           /*batch=*/30, /*compact_midway=*/false);
}

TEST_F(EngineTest, DifferentialLifecycleWithCompaction) {
  // Compact(force) mid-stream is storage-only: the epoch sequence must
  // not change.
  Graph base = GenerateErdosRenyi(80, 200, 23);
  RunDifferentialLifecycle(&scratch_, base, /*seed=*/3, /*batches=*/4,
                           /*batch=*/20, /*compact_midway=*/true);
}

TEST_F(EngineTest, OpenSolvesAndPublishesEpochOne) {
  Graph base = GeneratePlrg(PlrgSpec::ForVertexCount(200, 2.0), 5);
  std::string mono = WriteGraphFile(&scratch_, base);

  MisEngineOptions opts;
  opts.verify = true;
  MisEngine engine(opts);
  ASSERT_OK(engine.Open(mono));
  EpochSnapshotRef snap = engine.Snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch(), 1u);
  EXPECT_EQ(snap->set_size(), engine.open_result().set_size);
  EXPECT_EQ(SetToVector(snap->set()), SetToVector(engine.open_result().set));
  EXPECT_TRUE(engine.open_result().degree_sorted);
  // Epoch 1 carries no streaming deltas.
  EXPECT_EQ(snap->stats().batches, 0u);
  EXPECT_EQ(snap->stats().updates, 0u);

  // The one-shot Solver facade must produce the identical result.
  Solver solver(opts);
  SolveResult res;
  ASSERT_OK(solver.SolveFile(mono, &res));
  EXPECT_EQ(SetToVector(res.set), SetToVector(snap->set()));
}

TEST_F(EngineTest, MonolithicOpenThenMutate) {
  // A sequential monolithic open shards lazily on the first mutation;
  // the maintained set must still match the sequential reference.
  Graph base = GenerateErdosRenyi(70, 160, 31);
  std::string mono = WriteGraphFile(&scratch_, base);

  MisEngine engine(MisEngineOptions{});
  ASSERT_OK(engine.Open(mono));
  EXPECT_TRUE(engine.manifest_path().empty());
  EXPECT_EQ(engine.streaming_stats(), nullptr);

  IncrementalMis reference;
  // The engine's post-solve set is the reference's initial set; mirror it
  // from the published epoch. Note the reference binds to the SORTED file
  // order only through the set, which is order-independent.
  const auto script = MakeScript(/*seed=*/9, base.NumVertices(), 3, 15);
  ASSERT_OK(reference.Initialize(mono, engine.Snapshot()->set()));
  for (const auto& updates : script) {
    for (const EdgeUpdate& u : updates) {
      if (u.op == EdgeDeltaOp::kInsert) {
        ASSERT_OK(reference.InsertEdge(u.u, u.v));
      } else {
        ASSERT_OK(reference.DeleteEdge(u.u, u.v));
      }
    }
    ASSERT_OK(reference.Repair());
    ASSERT_OK(engine.ApplyBatch(updates));
    ASSERT_OK(engine.Repair());
    EpochSnapshotRef epoch = engine.Publish();
    ASSERT_EQ(SetToVector(epoch->set()), SetToVector(reference.set()));
  }
  // Mutation materialized the shard substrate in the engine's scratch.
  EXPECT_FALSE(engine.manifest_path().empty());
  ASSERT_NE(engine.streaming_stats(), nullptr);
  EXPECT_EQ(engine.streaming_stats()->updates_applied, 3u * 15u);
  ASSERT_OK(engine.Close());
  EXPECT_FALSE(engine.is_open());
  EXPECT_EQ(engine.Snapshot(), nullptr);
}

TEST_F(EngineTest, SnapshotsAreImmutableAcrossPublications) {
  Graph base = GenerateErdosRenyi(60, 140, 3);
  std::string mono = WriteGraphFile(&scratch_, base);
  std::string manifest = scratch_.NewFilePath("imm.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 3));
  const BitVector initial = RandomMaximalSet(base, 11);

  MisEngine engine(MisEngineOptions{});
  ASSERT_OK(engine.OpenSharded(manifest, initial));
  EpochSnapshotRef first = engine.Snapshot();
  const std::vector<VertexId> first_set = SetToVector(first->set());
  const uint64_t first_fp = Fingerprint(first->set());

  const auto script = MakeScript(/*seed=*/4, base.NumVertices(), 2, 20);
  for (const auto& updates : script) {
    ASSERT_OK(engine.ApplyBatch(updates));
    ASSERT_OK(engine.Repair());
    engine.Publish();
  }
  // The old epoch is untouched by later publications...
  EXPECT_EQ(first->epoch(), 1u);
  EXPECT_EQ(SetToVector(first->set()), first_set);
  EXPECT_EQ(Fingerprint(first->set()), first_fp);
  EXPECT_EQ(engine.Snapshot()->epoch(), 3u);
  // ...and by Close: a held reference outlives the engine's interest.
  ASSERT_OK(engine.Close());
  EXPECT_EQ(SetToVector(first->set()), first_set);
}

TEST_F(EngineTest, PublishIsNoOpWithoutMutation) {
  Graph base = GenerateErdosRenyi(50, 100, 13);
  std::string mono = WriteGraphFile(&scratch_, base);
  std::string manifest = scratch_.NewFilePath("noop.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 2));

  MisEngine engine(MisEngineOptions{});
  ASSERT_OK(engine.OpenSharded(manifest, RandomMaximalSet(base, 1)));
  EpochSnapshotRef before = engine.Snapshot();
  // No mutation yet: Publish returns the current epoch unchanged.
  EXPECT_EQ(engine.Publish(), before);
  EXPECT_EQ(engine.Snapshot()->epoch(), 1u);
  // Prepare alone (no overlay to replay) is not a mutation either.
  ASSERT_OK(engine.Prepare());
  EXPECT_EQ(engine.Publish()->epoch(), 1u);
  // A mutation makes exactly one new epoch, then Publish is a no-op
  // again.
  ASSERT_OK(engine.ApplyBatch({EdgeUpdate::Insert(0, 1)}));
  EXPECT_EQ(engine.Publish()->epoch(), 2u);
  EXPECT_EQ(engine.Publish()->epoch(), 2u);
}

TEST_F(EngineTest, EpochStatsCarryDeltasAndStalenessTracks) {
  Graph base = GenerateErdosRenyi(60, 130, 17);
  std::string mono = WriteGraphFile(&scratch_, base);
  std::string manifest = scratch_.NewFilePath("stats.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 3));

  MisEngine engine(MisEngineOptions{});
  ASSERT_OK(engine.OpenSharded(manifest, RandomMaximalSet(base, 2)));
  const auto script = MakeScript(/*seed=*/6, base.NumVertices(), 3, 10);

  // Two batches + one repair into epoch 2.
  ASSERT_OK(engine.ApplyBatch(script[0]));
  EXPECT_EQ(engine.staleness(), 10u);
  ASSERT_OK(engine.ApplyBatch(script[1]));
  EXPECT_EQ(engine.staleness(), 20u);
  ASSERT_OK(engine.Repair());
  EpochSnapshotRef e2 = engine.Publish();
  EXPECT_EQ(e2->epoch(), 2u);
  EXPECT_EQ(e2->stats().batches, 2u);
  EXPECT_EQ(e2->stats().updates, 20u);
  EXPECT_EQ(e2->stats().repair_passes, 1u);
  EXPECT_EQ(engine.staleness(), 0u);

  // One batch + two repairs into epoch 3: the deltas reset per epoch.
  ASSERT_OK(engine.ApplyBatch(script[2]));
  ASSERT_OK(engine.Repair());
  ASSERT_OK(engine.Repair());
  EpochSnapshotRef e3 = engine.Publish();
  EXPECT_EQ(e3->epoch(), 3u);
  EXPECT_EQ(e3->stats().batches, 1u);
  EXPECT_EQ(e3->stats().updates, 10u);
  EXPECT_EQ(e3->stats().repair_passes, 2u);
  // Cumulative session stats keep the running totals.
  ASSERT_NE(engine.streaming_stats(), nullptr);
  EXPECT_EQ(engine.streaming_stats()->updates_applied, 30u);
  EXPECT_EQ(engine.streaming_stats()->repair_passes, 3u);
}

TEST_F(EngineTest, AdoptedSetMustMatchVertexCount) {
  Graph base = GenerateErdosRenyi(40, 80, 29);
  std::string mono = WriteGraphFile(&scratch_, base);
  std::string manifest = scratch_.NewFilePath("adopt.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 2));

  MisEngine engine(MisEngineOptions{});
  BitVector wrong(17);
  Status s = engine.OpenSharded(manifest, wrong);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(engine.is_open());
}

TEST_F(EngineTest, OpenShardedRejectsMonolithicFile) {
  Graph base = GenerateErdosRenyi(40, 80, 37);
  std::string mono = WriteGraphFile(&scratch_, base);
  MisEngine engine(MisEngineOptions{});
  Status s = engine.OpenSharded(mono);
  EXPECT_FALSE(s.ok());
  // Open() on the same file auto-detects and succeeds.
  ASSERT_OK(engine.Open(mono));
  EXPECT_EQ(engine.Snapshot()->epoch(), 1u);
}

TEST_F(EngineTest, ReaderMutatorStressObservesOnlyPublishedEpochs) {
  Graph base = GeneratePlrg(PlrgSpec::ForVertexCount(300, 2.0), 41);
  std::string mono = WriteGraphFile(&scratch_, base);
  std::string manifest = scratch_.NewFilePath("stress.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 3));

  MisEngineOptions opts;
  opts.pipeline.num_threads = 2;
  MisEngine engine(opts);
  ASSERT_OK(engine.OpenSharded(manifest, RandomMaximalSet(base, 8)));

  // The publisher's record of every epoch it made available.
  std::map<uint64_t, uint64_t> published;  // epoch -> fingerprint
  {
    EpochSnapshotRef e1 = engine.Snapshot();
    published[e1->epoch()] = Fingerprint(e1->set());
  }

  constexpr int kReaders = 8;
  constexpr int kEpochs = 6;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_reads{0};
  // Each reader records the distinct (epoch, fingerprint) pairs it saw.
  std::vector<std::map<uint64_t, uint64_t>> seen(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochSnapshotRef snap = engine.Snapshot();
        ASSERT_NE(snap, nullptr);
        // Reading the whole set through the snapshot must be safe while
        // the mutator repairs/publishes underneath.
        const uint64_t fp = Fingerprint(snap->set());
        auto it = seen[r].find(snap->epoch());
        if (it == seen[r].end()) {
          seen[r][snap->epoch()] = fp;
        } else {
          // The same epoch must never change its contents.
          ASSERT_EQ(it->second, fp) << "epoch " << snap->epoch();
        }
        ASSERT_EQ(snap->set_size(), snap->set().Count());
        total_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const auto script =
      MakeScript(/*seed=*/12, base.NumVertices(), kEpochs, 40);
  for (const auto& updates : script) {
    ASSERT_OK(engine.ApplyBatch(updates));
    ASSERT_OK(engine.Repair());
    EpochSnapshotRef epoch = engine.Publish();
    published[epoch->epoch()] = Fingerprint(epoch->set());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_GT(total_reads.load(), 0u);
  // Every observation was of a fully-published epoch: its fingerprint
  // matches what the publisher recorded for that epoch number. A torn or
  // half-published snapshot would show an unknown epoch or a mismatched
  // fingerprint.
  for (int r = 0; r < kReaders; ++r) {
    for (const auto& [epoch, fp] : seen[r]) {
      auto it = published.find(epoch);
      ASSERT_NE(it, published.end())
          << "reader " << r << " saw unpublished epoch " << epoch;
      EXPECT_EQ(it->second, fp) << "reader " << r << " epoch " << epoch;
    }
  }
}

// ----------------------------------------------------- degraded serving --

FaultSpec EngineFaultSpec(const std::string& text) {
  FaultSpec out;
  Status s = FaultSpec::Parse(text, &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST_F(EngineTest, DegradedModeServesLastEpochAfterStorageFailure) {
  // An injected storage failure mid-mutation must flip the engine into
  // sticky read-only: the last published epoch keeps serving, every
  // mutator reports FailedPrecondition, and Publish never exposes the
  // half-applied successor.
  Graph base = GenerateErdosRenyi(60, 140, 47);
  std::string mono = WriteGraphFile(&scratch_, base);
  std::string manifest = scratch_.NewFilePath("deg.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 3));
  const BitVector initial = RandomMaximalSet(base, 5);

  MisEngine engine(MisEngineOptions{});
  ASSERT_OK(engine.OpenSharded(manifest, initial));
  const auto script = MakeScript(/*seed=*/31, base.NumVertices(), 2, 15);

  // One healthy round first: epoch 2 is the last good state.
  ASSERT_OK(engine.ApplyBatch(script[0]));
  ASSERT_OK(engine.Repair());
  EpochSnapshotRef good = engine.Publish();
  ASSERT_EQ(good->epoch(), 2u);
  const std::vector<VertexId> good_set = SetToVector(good->set());
  EXPECT_FALSE(engine.read_only());

  // Fail the batch commit: first write of the next mutation hits ENOSPC
  // (permanent and sticky, so no retry site can absorb it).
  Status failed;
  {
    FaultInjectionFileSystem fs(PosixFileSystem(),
                                EngineFaultSpec("write:1:ENOSPC:sticky"));
    ScopedFileSystem scoped(&fs);
    failed = engine.ApplyBatch(script[1]);
  }
  ASSERT_TRUE(failed.IsIOError()) << failed.ToString();

  // Sticky read-only -- the fault filesystem is long gone, but the engine
  // cannot know how much of the mutation landed.
  EXPECT_TRUE(engine.read_only());
  EXPECT_TRUE(engine.degraded_reason().IsIOError());
  EXPECT_TRUE(engine.is_open());

  // Reads keep serving the last published epoch, bit for bit.
  EpochSnapshotRef snap = engine.Snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch(), 2u);
  EXPECT_EQ(SetToVector(snap->set()), good_set);

  // Every mutator is rejected with FailedPrecondition naming the cause.
  EXPECT_TRUE(engine.ApplyBatch(script[1]).IsFailedPrecondition());
  EXPECT_TRUE(engine.Repair().IsFailedPrecondition());
  EXPECT_TRUE(engine.Compact(/*force=*/true).IsFailedPrecondition());
  EXPECT_TRUE(engine.Resort().IsFailedPrecondition());
  EXPECT_TRUE(engine.Prepare().IsFailedPrecondition());

  // Publish must NOT mint an epoch from the half-applied state: it keeps
  // returning the current one.
  EXPECT_EQ(engine.Publish()->epoch(), 2u);
  EXPECT_EQ(SetToVector(engine.Publish()->set()), good_set);

  // Close clears the latch; a fresh open on intact storage is healthy.
  ASSERT_OK(engine.Close());
  std::string manifest2 = scratch_.NewFilePath("deg2.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest2, 3));
  ASSERT_OK(engine.OpenSharded(manifest2, initial));
  EXPECT_FALSE(engine.read_only());
  ASSERT_OK(engine.ApplyBatch(script[0]));
  ASSERT_OK(engine.Repair());
  EXPECT_EQ(engine.Publish()->epoch(), 2u);
}

TEST_F(EngineTest, InvalidArgumentDoesNotLatchReadOnly) {
  // Caller mistakes (here: mutating a closed engine) are not storage
  // failures -- they must not poison the engine.
  MisEngine engine(MisEngineOptions{});
  Status s = engine.ApplyBatch({EdgeUpdate::Insert(0, 1)});
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_FALSE(engine.read_only());
}

TEST_F(EngineTest, SnapshotDoesNotWaitOnInFlightRepair) {
  // Snapshot() only copies a pointer under the publication mutex, so a
  // reader makes progress while a repair is running. Run Repair on a
  // helper thread and keep snapshotting until it finishes: every
  // observation must be the PRE-repair epoch (repair alone publishes
  // nothing), and the loop must complete at least one read.
  Graph base = GeneratePlrg(PlrgSpec::ForVertexCount(300, 2.0), 43);
  std::string mono = WriteGraphFile(&scratch_, base);
  std::string manifest = scratch_.NewFilePath("nb.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 3));

  MisEngine engine(MisEngineOptions{});
  ASSERT_OK(engine.OpenSharded(manifest, RandomMaximalSet(base, 4)));
  const auto script = MakeScript(/*seed=*/21, base.NumVertices(), 1, 200);
  ASSERT_OK(engine.ApplyBatch(script[0]));
  const uint64_t pre_epoch = engine.Snapshot()->epoch();

  std::atomic<bool> done{false};
  std::thread mutator([&] {
    Status s = engine.Repair();
    done.store(true, std::memory_order_release);
    ASSERT_TRUE(s.ok()) << s.ToString();
  });
  uint64_t reads = 0;
  do {
    EpochSnapshotRef snap = engine.Snapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->epoch(), pre_epoch);
    reads++;
  } while (!done.load(std::memory_order_acquire));
  mutator.join();
  EXPECT_GE(reads, 1u);
  // The repaired state surfaces only on the next Publish.
  EXPECT_EQ(engine.Publish()->epoch(), pre_epoch + 1);
}

}  // namespace
}  // namespace semis
