#include "core/verify.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

class VerifyTest : public ScratchTest {};

TEST_F(VerifyTest, AcceptsValidMaximalSet) {
  Graph g = GeneratePath(5);  // 0-1-2-3-4
  BitVector set(5);
  set.Set(0);
  set.Set(2);
  set.Set(4);
  VerifyResult vr = VerifyIndependentSet(g, set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
}

TEST_F(VerifyTest, DetectsEdgeInsideSet) {
  Graph g = GeneratePath(5);
  BitVector set(5);
  set.Set(0);
  set.Set(1);  // adjacent!
  VerifyResult vr = VerifyIndependentSet(g, set);
  EXPECT_FALSE(vr.independent);
  EXPECT_TRUE((vr.witness_u == 0 && vr.witness_v == 1) ||
              (vr.witness_u == 1 && vr.witness_v == 0));
}

TEST_F(VerifyTest, DetectsNonMaximality) {
  Graph g = GeneratePath(5);
  BitVector set(5);
  set.Set(0);  // vertices 2,3,4 untouched; 3 is addable
  VerifyResult vr = VerifyIndependentSet(g, set);
  EXPECT_TRUE(vr.independent);
  EXPECT_FALSE(vr.maximal);
}

TEST_F(VerifyTest, EmptySetOnEdgelessGraphIsNotMaximal) {
  Graph g = Graph::FromEdges(3, {});
  BitVector set(3);
  VerifyResult vr = VerifyIndependentSet(g, set);
  EXPECT_TRUE(vr.independent);
  EXPECT_FALSE(vr.maximal);
}

TEST_F(VerifyTest, FileVariantMatchesInMemory) {
  Graph g = GenerateErdosRenyi(100, 300, 5);
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector set = testing_util::RandomMaximalSet(g, 9);
  VerifyResult mem = VerifyIndependentSet(g, set);
  VerifyResult file;
  ASSERT_OK(VerifyIndependentSetFile(path, set, &file));
  EXPECT_EQ(mem.independent, file.independent);
  EXPECT_EQ(mem.maximal, file.maximal);
  EXPECT_TRUE(file.independent);
  EXPECT_TRUE(file.maximal);
}

TEST_F(VerifyTest, FileVariantSizeMismatchRejected) {
  Graph g = GenerateCycle(10);
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector wrong(3);
  VerifyResult vr;
  EXPECT_TRUE(VerifyIndependentSetFile(path, wrong, &vr).IsInvalidArgument());
}

TEST_F(VerifyTest, SingleScanOnly) {
  Graph g = GenerateErdosRenyi(200, 600, 6);
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector set = testing_util::RandomMaximalSet(g, 3);
  IoStats stats;
  VerifyResult vr;
  ASSERT_OK(VerifyIndependentSetFile(path, set, &vr, &stats));
  EXPECT_EQ(stats.sequential_scans, 1u);
}

}  // namespace
}  // namespace semis
