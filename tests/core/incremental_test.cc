// Tests for incremental MIS maintenance under edge updates (the paper's
// future-work scenario). Reference semantics: after any sequence of
// updates, set() must be independent on the UPDATED graph; after
// Repair(), also maximal.
#include <gtest/gtest.h>

#include <set>

#include "core/incremental.h"
#include "core/solver.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::RandomMaximalSet;
using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

class IncrementalTest : public ScratchTest {};

// Rebuilds the updated graph in memory for verification.
Graph ApplyDelta(const Graph& base, const std::set<Edge>& inserted,
                 const std::set<Edge>& deleted) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v < base.NumVertices(); ++v) {
    for (VertexId u : base.Neighbors(v)) {
      if (v < u && deleted.find({v, u}) == deleted.end()) {
        edges.emplace_back(v, u);
      }
    }
  }
  for (const Edge& e : inserted) edges.push_back(e);
  return Graph::FromEdges(base.NumVertices(), std::move(edges));
}

TEST_F(IncrementalTest, InsertBetweenSetMembersEvicts) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector set(4);
  set.Set(0);
  set.Set(2);
  IncrementalMis inc;
  ASSERT_OK(inc.Initialize(path, set));
  ASSERT_OK(inc.InsertEdge(0, 2));
  EXPECT_EQ(inc.set_size(), 1u);
  EXPECT_TRUE(inc.set().Test(0));   // smaller id stays
  EXPECT_FALSE(inc.set().Test(2));
  EXPECT_EQ(inc.pending_evictions(), 1u);
  // Repair can re-add 3 (its set neighbor 2 left) but not 1 or 2.
  ASSERT_OK(inc.Repair());
  EXPECT_TRUE(inc.set().Test(3));
  EXPECT_EQ(inc.pending_evictions(), 0u);
}

TEST_F(IncrementalTest, DeleteOpensMaximalityGapRepairCloses) {
  Graph g = GenerateStar(5);  // center 0
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector set(5);
  set.Set(0);  // {center} is maximal
  IncrementalMis inc;
  ASSERT_OK(inc.Initialize(path, set));
  ASSERT_OK(inc.DeleteEdge(0, 3));
  // Independence unaffected; 3 is now addable.
  ASSERT_OK(inc.Repair());
  EXPECT_TRUE(inc.set().Test(3));
  EXPECT_EQ(inc.set_size(), 2u);
}

TEST_F(IncrementalTest, DuplicateAndCancellingUpdates) {
  Graph g = GeneratePath(3);
  std::string path = WriteGraphFile(&scratch_, g);
  IncrementalMis inc;
  BitVector set(3);
  set.Set(0);
  set.Set(2);
  ASSERT_OK(inc.Initialize(path, set));
  ASSERT_OK(inc.InsertEdge(0, 2));  // evicts 2
  EXPECT_EQ(inc.set_size(), 1u);
  ASSERT_OK(inc.InsertEdge(0, 2));  // duplicate: no-op
  EXPECT_EQ(inc.set_size(), 1u);
  ASSERT_OK(inc.DeleteEdge(0, 2));  // cancels the insert
  ASSERT_OK(inc.Repair());          // 2 is addable again
  EXPECT_TRUE(inc.set().Test(2));
  EXPECT_EQ(inc.set_size(), 2u);
}

TEST_F(IncrementalTest, DuplicateBaseEdgeInsertThenDeleteRemovesTheEdge) {
  // Hand-traced gadget for the duplicate-edge accounting bug: the base
  // graph is the single edge {0,1} with set {0}.
  //   InsertEdge(0,1)  duplicates the base edge (the maintainer cannot
  //                    know that without scanning the base);
  //   DeleteEdge(0,1)  must remove the edge -- both copies.
  // The old accounting erased the duplicate from the insert delta and,
  // concluding the edge was delta-only, never recorded the delete, so
  // Repair's merge scan still saw the base copy alive and refused to add
  // vertex 1. The updated graph is edgeless: {0,1} is the only maximal
  // answer.
  Graph g = Graph::FromEdges(2, {{0, 1}});
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector set(2);
  set.Set(0);
  IncrementalMis inc;
  ASSERT_OK(inc.Initialize(path, set));
  ASSERT_OK(inc.InsertEdge(0, 1));  // duplicate of a base edge
  EXPECT_EQ(inc.set_size(), 1u);
  ASSERT_OK(inc.DeleteEdge(0, 1));
  ASSERT_OK(inc.Repair());
  EXPECT_TRUE(inc.set().Test(0));
  EXPECT_TRUE(inc.set().Test(1)) << "delete after a duplicate insert left "
                                    "the base copy of the edge alive";
  EXPECT_EQ(inc.set_size(), 2u);
  // Re-inserting restores the edge: the eager rule evicts the larger id.
  ASSERT_OK(inc.InsertEdge(0, 1));
  EXPECT_FALSE(inc.set().Test(1));
  EXPECT_EQ(inc.set_size(), 1u);
  ASSERT_OK(inc.Repair());
  EXPECT_EQ(inc.set_size(), 1u);  // {0} is maximal again
}

TEST_F(IncrementalTest, RandomStormWithRedundantUpdatesKeepsInvariants) {
  // Like RandomUpdateStormKeepsInvariants, but the stream may re-insert
  // edges that already exist (in base or delta) and delete edges that do
  // not -- the redundant traffic the duplicate-accounting fix is about.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph base = GenerateErdosRenyi(80, 200, seed + 40);
    std::string path = WriteGraphFile(&scratch_, base);
    BitVector initial = RandomMaximalSet(base, seed + 900);
    IncrementalMis inc;
    ASSERT_OK(inc.Initialize(path, initial));

    std::set<Edge> inserted, deleted;
    Random rng(seed * 17 + 3);
    for (int step = 0; step < 300; ++step) {
      VertexId u = static_cast<VertexId>(rng.Uniform(80));
      VertexId v = static_cast<VertexId>(rng.Uniform(80));
      if (u == v) continue;
      Edge e{std::min(u, v), std::max(u, v)};
      const bool in_base = base.HasEdge(u, v);
      // No `exists` gate: half the traffic is redundant on purpose.
      if (rng.OneIn(0.5)) {
        ASSERT_OK(inc.DeleteEdge(u, v));
        inserted.erase(e);
        if (in_base) deleted.insert(e);
      } else {
        ASSERT_OK(inc.InsertEdge(u, v));
        deleted.erase(e);
        if (!in_base) inserted.insert(e);
      }
      if (step % 60 == 59) ASSERT_OK(inc.Repair());
      Graph updated = ApplyDelta(base, inserted, deleted);
      VerifyResult vr = VerifyIndependentSet(updated, inc.set());
      ASSERT_TRUE(vr.independent)
          << "seed " << seed << " step " << step << " edge " << vr.witness_u
          << "-" << vr.witness_v;
    }
    ASSERT_OK(inc.Repair());
    Graph updated = ApplyDelta(base, inserted, deleted);
    VerifyResult vr = VerifyIndependentSet(updated, inc.set());
    EXPECT_TRUE(vr.independent) << "seed " << seed;
    EXPECT_TRUE(vr.maximal) << "seed " << seed << " vertex " << vr.witness_u;
  }
}

TEST_F(IncrementalTest, InvalidUpdatesRejected) {
  Graph g = GeneratePath(3);
  std::string path = WriteGraphFile(&scratch_, g);
  IncrementalMis inc;
  ASSERT_OK(inc.Initialize(path, BitVector(3)));
  EXPECT_TRUE(inc.InsertEdge(1, 1).IsInvalidArgument());
  EXPECT_TRUE(inc.InsertEdge(0, 9).IsInvalidArgument());
  EXPECT_TRUE(inc.DeleteEdge(2, 2).IsInvalidArgument());
}

TEST_F(IncrementalTest, RandomUpdateStormKeepsInvariants) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph base = GenerateErdosRenyi(120, 300, seed);
    std::string path = WriteGraphFile(&scratch_, base);
    BitVector initial = RandomMaximalSet(base, seed + 500);
    IncrementalMis inc;
    ASSERT_OK(inc.Initialize(path, initial));

    std::set<Edge> inserted, deleted;
    Random rng(seed * 31 + 7);
    for (int step = 0; step < 200; ++step) {
      VertexId u = static_cast<VertexId>(rng.Uniform(120));
      VertexId v = static_cast<VertexId>(rng.Uniform(120));
      if (u == v) continue;
      Edge e{std::min(u, v), std::max(u, v)};
      const bool in_base = base.HasEdge(u, v);
      const bool exists = (in_base && deleted.find(e) == deleted.end()) ||
                          inserted.find(e) != inserted.end();
      if (exists && rng.OneIn(0.5)) {
        ASSERT_OK(inc.DeleteEdge(u, v));
        if (inserted.erase(e) == 0) deleted.insert(e);
      } else if (!exists) {
        ASSERT_OK(inc.InsertEdge(u, v));
        if (deleted.erase(e) == 0) inserted.insert(e);
      }
      if (step % 50 == 49) {
        ASSERT_OK(inc.Repair());
      }
      // Independence must hold after EVERY update.
      Graph updated = ApplyDelta(base, inserted, deleted);
      VerifyResult vr = VerifyIndependentSet(updated, inc.set());
      ASSERT_TRUE(vr.independent)
          << "seed " << seed << " step " << step << " edge " << vr.witness_u
          << "-" << vr.witness_v;
    }
    ASSERT_OK(inc.Repair());
    Graph updated = ApplyDelta(base, inserted, deleted);
    VerifyResult vr = VerifyIndependentSet(updated, inc.set());
    EXPECT_TRUE(vr.independent) << "seed " << seed;
    EXPECT_TRUE(vr.maximal) << "seed " << seed << " vertex "
                            << vr.witness_u;
    EXPECT_EQ(inc.set().Count(), inc.set_size());
  }
}

TEST_F(IncrementalTest, StartsFromSolverResult) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 3);
  std::string path = WriteGraphFile(&scratch_, g);
  Solver solver(SolverOptions{});
  SolveResult solved;
  ASSERT_OK(solver.SolveFile(path, &solved));
  IncrementalMis inc;
  ASSERT_OK(inc.Initialize(path, solved.set));
  EXPECT_EQ(inc.set_size(), solved.set_size);
  // A burst of random insertions then one repair.
  Random rng(11);
  for (int i = 0; i < 500; ++i) {
    VertexId u = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    VertexId v = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    if (u != v) ASSERT_OK(inc.InsertEdge(u, v));
  }
  ASSERT_OK(inc.Repair());
  // The maintained set stays close to the from-scratch quality (about
  // half of 500 random insertions land on two set members and evict one;
  // Repair recovers most of the loss).
  EXPECT_GT(inc.set_size(), solved.set_size * 90 / 100);
}

}  // namespace
}  // namespace semis
