// Copyright (c) the semis authors.
// Property/fuzz suite for the min-id rounds engine: 200+ seeded random
// graphs at mixed shard/thread geometries, checking the per-round
// invariants through the observer hook --
//
//   * every round's winners are pairwise non-adjacent,
//   * the frontier strictly shrinks every round until it is empty,
//   * the round count never exceeds the vertex count (and stays small on
//     the random corpus),
//   * the final set is independent, maximal, and equal to the sequential
//     reference,
//
// plus the hostile geometries the cursor tests taught us to fear (more
// shards than records, interior empty shards, degenerate block knobs)
// and record-order independence (a shuffled file yields the same set).
#include "core/rounds_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "core/solver.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/adjacency_file.h"
#include "graph/sharded_adjacency_file.h"
#include "io/file.h"
#include "test_util.h"
#include "util/random.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::SetToVector;
using testing_util::WriteGraphFile;
using testing_util::WriteGraphFileInOrder;

class RoundsPropertyTest : public ScratchTest {
 protected:
  std::string Shard(const std::string& mono, uint32_t num_shards) {
    std::string manifest =
        NewPath("sharded" + std::to_string(num_shards));
    Status s = ShardAdjacencyFile(mono, manifest, num_shards);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return manifest;
  }

  // Checks every per-round invariant of one run and returns the result.
  // `threads` > 1 exercises the parallel executor, <= 1 the reference.
  AlgoResult CheckedRun(const Graph& g, const std::string& manifest,
                        uint32_t threads, const std::string& tag) {
    const uint64_t n = g.NumVertices();
    MinIdRoundsOptions opts;
    opts.pipeline.num_threads = threads;
    uint64_t prev_frontier = n;
    uint64_t rounds_seen = 0;
    uint64_t winners_total = 0;
    opts.observer = [&](const RoundObservation& obs) {
      rounds_seen++;
      EXPECT_EQ(obs.round, rounds_seen) << tag;
      EXPECT_FALSE(obs.winners.empty()) << tag << " round " << obs.round;
      EXPECT_TRUE(
          std::is_sorted(obs.winners.begin(), obs.winners.end()))
          << tag << " round " << obs.round;
      // Winners are pairwise non-adjacent: no winner may see another
      // winner in its (sorted) neighbor list.
      for (const VertexId w : obs.winners) {
        for (const VertexId u : g.Neighbors(w)) {
          EXPECT_FALSE(std::binary_search(obs.winners.begin(),
                                          obs.winners.end(), u))
              << tag << " round " << obs.round << ": adjacent winners "
              << w << " and " << u;
        }
      }
      // The frontier loses at least the winners each round.
      EXPECT_LT(obs.frontier_after, prev_frontier)
          << tag << " round " << obs.round;
      prev_frontier = obs.frontier_after;
      winners_total += obs.winners.size();
    };
    AlgoResult res;
    Status s = RunMinIdRounds(manifest, opts, &res);
    EXPECT_TRUE(s.ok()) << tag << ": " << s.ToString();
    EXPECT_EQ(res.rounds, rounds_seen) << tag;
    EXPECT_EQ(res.set_size, winners_total) << tag;
    EXPECT_LE(res.rounds, n == 0 ? 0 : n) << tag;
    if (n > 0) {
      EXPECT_EQ(prev_frontier, 0u) << tag;
    }
    VerifyResult vr = VerifyIndependentSet(g, res.in_set);
    EXPECT_TRUE(vr.independent) << tag;
    EXPECT_TRUE(vr.maximal) << tag;
    return res;
  }
};

// The fuzz sweep: 200 seeded ER/Gnp graphs, geometry varied with the
// seed, parallel run cross-checked against the sequential reference.
// Everything is seed-pinned, so a failure replays exactly.
TEST_F(RoundsPropertyTest, SeededRandomGraphSweep) {
  uint64_t max_rounds_seen = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    const VertexId n = static_cast<VertexId>(2 + (i * 13) % 150);
    Graph g;
    if (i % 2 == 0) {
      const uint64_t m = (i * 37) % (static_cast<uint64_t>(n) * 3);
      g = GenerateErdosRenyi(n, m, 1000 + i);
    } else {
      const double p = 0.02 + 0.3 * static_cast<double>(i % 7) / 7.0;
      g = GenerateGnp(n, p, 2000 + i);
    }
    const std::string tag = "seed " + std::to_string(i);
    std::string mono = WriteGraphFile(&scratch_, g);
    std::string manifest = Shard(mono, 1 + i % 4);
    const uint32_t threads = 2 + i % 3;

    AlgoResult res = CheckedRun(g, manifest, threads, tag);
    AlgoResult ref;
    ASSERT_OK(RunMinIdRoundsReference(manifest, {}, &ref, nullptr));
    EXPECT_EQ(SetToVector(res.in_set), SetToVector(ref.in_set)) << tag;
    EXPECT_EQ(res.rounds, ref.rounds) << tag;
    max_rounds_seen = std::max(max_rounds_seen, res.rounds);
  }
  // The corpus is fixed, so its round counts are too: min-id on these
  // random graphs settles in a handful of rounds. A jump past this bound
  // means the round rule changed -- update deliberately, never silently.
  EXPECT_LE(max_rounds_seen, 16u);
}

// Record order must not matter: the same graph written in shuffled
// record order yields the identical set (greedy cannot say that --
// min-id rounds can, it is the whole determinism argument).
TEST_F(RoundsPropertyTest, RecordOrderIndependence) {
  for (uint64_t seed : {3u, 17u, 91u}) {
    Graph g = GenerateErdosRenyi(600, 1800, seed);
    std::string manifest = Shard(WriteGraphFile(&scratch_, g), 3);
    AlgoResult ref;
    ASSERT_OK(RunMinIdRounds(manifest, {}, &ref));

    std::vector<VertexId> order(g.NumVertices());
    std::iota(order.begin(), order.end(), 0);
    Random rng(seed);
    rng.Shuffle(order.data(), order.size());
    std::string shuffled =
        Shard(WriteGraphFileInOrder(&scratch_, g, order), 3);
    for (uint32_t threads : {1u, 4u}) {
      MinIdRoundsOptions opts;
      opts.pipeline.num_threads = threads;
      AlgoResult res;
      ASSERT_OK(RunMinIdRounds(shuffled, opts, &res));
      EXPECT_EQ(SetToVector(res.in_set), SetToVector(ref.in_set))
          << "seed " << seed << ", " << threads << " threads";
    }
  }
}

// More shards than records: trailing empty shards must be skipped
// harmlessly at every thread count.
TEST_F(RoundsPropertyTest, MoreShardsThanRecords) {
  Graph g = GeneratePath(3);
  std::string manifest = Shard(WriteGraphFile(&scratch_, g), 7);
  for (uint32_t threads : {1u, 2u, 8u}) {
    MinIdRoundsOptions opts;
    opts.pipeline.num_threads = threads;
    AlgoResult res = CheckedRun(g, manifest, threads,
                                "3 records / 7 shards");
    EXPECT_EQ(res.set_size, 2u);  // path 0-1-2: {0, 2}
    EXPECT_TRUE(res.in_set.Test(0));
    EXPECT_TRUE(res.in_set.Test(2));
  }
}

// Interior empty shards (the cursor tests' hand-built hole geometry):
// shard 1 and shard 3 of four hold no records at all.
TEST_F(RoundsPropertyTest, InteriorEmptyShards) {
  Graph g = GenerateErdosRenyi(200, 600, 36);
  std::string mono = WriteGraphFile(&scratch_, g);

  // Drain the monolithic records, then rewrite them as
  // [0..99][empty][100..199][empty].
  std::vector<std::pair<VertexId, std::vector<VertexId>>> records;
  AdjacencyFileHeader header;
  {
    AdjacencyFileScanner scanner;
    ASSERT_OK(scanner.Open(mono));
    header = scanner.header();
    VertexRecordView rec;
    bool has_next = false;
    while (true) {
      ASSERT_OK(scanner.Next(&rec, &has_next));
      if (!has_next) break;
      records.emplace_back(
          rec.id, std::vector<VertexId>(rec.begin(), rec.end()));
    }
    ASSERT_OK(scanner.Close());
  }
  ASSERT_EQ(records.size(), 200u);

  std::string manifest = NewPath("holey");
  ShardedAdjacencyManifest m;
  m.header = header;
  m.shards.resize(4);
  const size_t split = 100;
  for (uint32_t k = 0; k < 4; ++k) {
    SequentialFileWriter writer;
    ASSERT_OK(writer.Open(ShardFilePath(manifest, k)));
    ASSERT_OK(WriteAdjacencyShardHeader(&writer, k, m.header.num_vertices));
    const size_t begin = k == 0 ? 0 : (k == 2 ? split : records.size());
    const size_t end = k == 0 ? split : (k == 2 ? records.size() : begin);
    for (size_t i = begin; i < end; ++i) {
      ASSERT_OK(writer.AppendU32(records[i].first));
      ASSERT_OK(writer.AppendU32(
          static_cast<uint32_t>(records[i].second.size())));
      if (!records[i].second.empty()) {
        ASSERT_OK(writer.Append(
            records[i].second.data(),
            records[i].second.size() * sizeof(VertexId)));
      }
      m.shards[k].num_records++;
      m.shards[k].num_directed_edges += records[i].second.size();
    }
    ASSERT_OK(writer.Close());
  }
  ASSERT_OK(WriteShardedAdjacencyManifest(manifest, m));

  AlgoResult ref;
  ASSERT_OK(RunMinIdRoundsReference(Shard(mono, 2), {}, &ref, nullptr));
  for (uint32_t threads : {1u, 2u, 8u}) {
    AlgoResult res =
        CheckedRun(g, manifest, threads, "interior empty shards");
    EXPECT_EQ(SetToVector(res.in_set), SetToVector(ref.in_set))
        << threads << " threads";
  }
}

// Degenerate pipeline knobs through the full solver pipeline (block
// smaller than one record, one-byte buffer budget): the rounds engine
// ignores them and the swap stage must shrug them off -- the set stays
// the reference one.
TEST_F(RoundsPropertyTest, HostilePipelineKnobsThroughSolver) {
  Graph g = GenerateErdosRenyi(1500, 4500, 77);
  std::string manifest = Shard(WriteGraphFile(&scratch_, g), 5);
  BitVector reference;
  {
    SolverOptions opts;
    opts.degree_sort = false;
    opts.swap = SwapMode::kTwoK;
    opts.pipeline.engine = SolveEngine::kRounds;
    opts.pipeline.num_threads = 1;
    Solver solver(opts);
    SolveResult res;
    ASSERT_OK(solver.SolveShardedFile(manifest, &res));
    reference = std::move(res.set);
  }
  SolverOptions opts;
  opts.degree_sort = false;
  opts.swap = SwapMode::kTwoK;
  opts.verify = true;
  opts.pipeline.engine = SolveEngine::kRounds;
  opts.pipeline.num_threads = 8;
  opts.pipeline.decode_block_bytes = 8;
  opts.pipeline.max_buffered_bytes = 1;
  Solver solver(opts);
  SolveResult res;
  ASSERT_OK(solver.SolveShardedFile(manifest, &res));
  EXPECT_EQ(SetToVector(res.set), SetToVector(reference));
  EXPECT_GT(res.rounds.rounds, 0u);
  EXPECT_EQ(res.rounds.round_stats.back().frontier_after, 0u);
}

// A capped run (max_rounds) must stop early, stay independent, and
// report the surviving frontier in its last round's stats.
TEST_F(RoundsPropertyTest, MaxRoundsCapStopsEarly) {
  Graph g = GeneratePath(40);  // ids increase along the path: many rounds
  std::string manifest = Shard(WriteGraphFile(&scratch_, g), 2);
  AlgoResult full;
  ASSERT_OK(RunMinIdRounds(manifest, {}, &full));
  ASSERT_GT(full.rounds, 2u);
  MinIdRoundsOptions opts;
  opts.max_rounds = 1;
  opts.pipeline.num_threads = 4;
  AlgoResult res;
  ASSERT_OK(RunMinIdRounds(manifest, opts, &res));
  EXPECT_EQ(res.rounds, 1u);
  EXPECT_GT(res.round_stats.back().frontier_after, 0u);
  VerifyResult vr = VerifyIndependentSet(g, res.in_set);
  EXPECT_TRUE(vr.independent);
  EXPECT_FALSE(vr.maximal);  // the cap left undecided vertices behind
}

}  // namespace
}  // namespace semis
