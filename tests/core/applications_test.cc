// Tests for the future-work extensions the paper's conclusion names:
// minimum vertex cover and graph coloring on top of the semi-external
// MIS machinery.
#include <gtest/gtest.h>

#include "baselines/exact.h"
#include "core/coloring.h"
#include "core/vertex_cover.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

class VertexCoverTest : public ScratchTest {};

TEST_F(VertexCoverTest, CoverIsComplementOfSet) {
  Graph g = GenerateErdosRenyi(300, 900, 3);
  std::string path = WriteGraphFile(&scratch_, g);
  VertexCoverResult res;
  ASSERT_OK(ComputeVertexCoverFile(path, SolverOptions{}, &res));
  EXPECT_EQ(res.cover_size + res.mis.set_size, g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NE(res.cover.Test(v), res.mis.set.Test(v));
  }
}

TEST_F(VertexCoverTest, CoverCoversEveryEdge) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(3000, 2.0), seed);
    std::string path = WriteGraphFile(&scratch_, g);
    VertexCoverResult res;
    ASSERT_OK(ComputeVertexCoverFile(path, SolverOptions{}, &res));
    uint64_t uncovered = 0;
    ASSERT_OK(VerifyVertexCoverFile(path, res.cover, &uncovered));
    EXPECT_EQ(uncovered, 0u) << "seed " << seed;
  }
}

TEST_F(VertexCoverTest, NearOptimalOnTinyGraphs) {
  // Optimal VC = |V| - alpha(G).
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = GenerateErdosRenyi(20, 50, seed);
    std::string path = WriteGraphFile(&scratch_, g);
    VertexCoverResult res;
    ASSERT_OK(ComputeVertexCoverFile(path, SolverOptions{}, &res));
    ExactResult exact;
    ASSERT_OK(ExactMaxIndependentSet(g, &exact));
    const uint64_t optimal = g.NumVertices() - exact.alpha;
    EXPECT_GE(res.cover_size, optimal);
    EXPECT_LE(res.cover_size, optimal + 2) << "seed " << seed;
  }
}

TEST_F(VertexCoverTest, VerifierDetectsUncoveredEdge) {
  Graph g = GeneratePath(4);  // edges 0-1, 1-2, 2-3
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector bogus(4);
  bogus.Set(0);  // edge 1-2 and 2-3 uncovered
  uint64_t uncovered = 0;
  ASSERT_OK(VerifyVertexCoverFile(path, bogus, &uncovered));
  EXPECT_EQ(uncovered, 2u);
}

class ColoringTest : public ScratchTest {};

ColoringResult ColorGraph(ScratchDir* scratch, const Graph& g,
                          uint32_t mis_rounds = 8) {
  std::string unsorted = testing_util::WriteGraphFile(scratch, g);
  std::string sorted = scratch->NewFilePath("sorted");
  EXPECT_TRUE(BuildDegreeSortedAdjacencyFile(unsorted, sorted, {}).ok());
  ColoringOptions opts;
  opts.max_mis_rounds = mis_rounds;
  ColoringResult res;
  Status s = ComputeGreedyColoringFile(sorted, opts, &res);
  EXPECT_TRUE(s.ok()) << s.ToString();
  uint64_t conflicts = 1;
  EXPECT_TRUE(VerifyColoringFile(sorted, res.color, &conflicts).ok());
  EXPECT_EQ(conflicts, 0u);
  return res;
}

TEST_F(ColoringTest, BipartiteUsesTwoColors) {
  ColoringResult res = ColorGraph(&scratch_, GenerateCompleteBipartite(5, 9));
  EXPECT_EQ(res.num_colors, 2u);
}

TEST_F(ColoringTest, EvenCycleTwoOddCycleThree) {
  EXPECT_EQ(ColorGraph(&scratch_, GenerateCycle(10)).num_colors, 2u);
  EXPECT_EQ(ColorGraph(&scratch_, GenerateCycle(11)).num_colors, 3u);
}

TEST_F(ColoringTest, CompleteGraphNeedsNColors) {
  EXPECT_EQ(ColorGraph(&scratch_, GenerateComplete(7)).num_colors, 7u);
}

TEST_F(ColoringTest, EdgelessGraphOneColor) {
  ColoringResult res = ColorGraph(&scratch_, Graph::FromEdges(5, {}));
  EXPECT_EQ(res.num_colors, 1u);
}

TEST_F(ColoringTest, ColorsBoundedByMaxDegreePlusOne) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = GenerateErdosRenyi(200, 800, seed);
    ColoringResult res = ColorGraph(&scratch_, g);
    EXPECT_LE(res.num_colors, g.MaxDegree() + 1) << "seed " << seed;
  }
}

TEST_F(ColoringTest, PowerLawGraphsColorCheaply) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.0), 7);
  ColoringResult res = ColorGraph(&scratch_, g);
  // Power-law graphs have tiny chromatic number relative to max degree.
  EXPECT_LT(res.num_colors, g.MaxDegree() / 2);
  EXPECT_GT(res.colored_by_mis, g.NumVertices() / 2);
}

TEST_F(ColoringTest, ZeroMisRoundsIsPureFirstFit) {
  Graph g = GenerateErdosRenyi(100, 400, 1);
  ColoringResult res = ColorGraph(&scratch_, g, /*mis_rounds=*/0);
  EXPECT_EQ(res.colored_by_mis, 0u);
  EXPECT_GE(res.num_colors, 2u);
}

TEST_F(ColoringTest, VerifierCountsConflicts) {
  Graph g = GeneratePath(3);
  std::string path = WriteGraphFile(&scratch_, g);
  std::vector<uint32_t> bad = {0, 0, 0};  // both edges monochromatic
  uint64_t conflicts = 0;
  ASSERT_OK(VerifyColoringFile(path, bad, &conflicts));
  EXPECT_EQ(conflicts, 2u);
  std::vector<uint32_t> partial = {0, kUncolored, 0};
  ASSERT_OK(VerifyColoringFile(path, partial, &conflicts));
  EXPECT_EQ(conflicts, 1u);  // the uncolored vertex
}

}  // namespace
}  // namespace semis
