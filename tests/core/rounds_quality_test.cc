// Copyright (c) the semis authors.
// Quality regression gate for the rounds engine: min-id ignores degrees,
// so its set trails the paper's degree-greedy -- that gap is a property
// we accepted deliberately, and this suite pins it. Every input is
// seed-pinned and both engines are deterministic, so the ratio
// rounds|IS| / degree-greedy|IS| is an exact number per graph; the
// golden values below were recorded from a real run and may only move by
// a deliberate edit here, never silently. The tolerance absorbs nothing
// at head -- it exists so an intentional generator/engine change shows
// up as a small drift with a clear diff instead of a flaky equality.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/greedy.h"
#include "core/rounds_engine.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "graph/sharded_adjacency_file.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

class RoundsQualityTest : public ScratchTest {
 protected:
  // Degree-greedy |IS| (the paper's GREEDY: Algorithm 1 over the
  // degree-sorted file).
  uint64_t DegreeGreedySize(const std::string& mono) {
    std::string sorted = NewPath("sorted");
    Status s =
        BuildDegreeSortedAdjacencyFile(mono, sorted, DegreeSortOptions{});
    EXPECT_TRUE(s.ok()) << s.ToString();
    AlgoResult res;
    s = RunGreedy(sorted, {}, &res);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return res.set_size;
  }

  uint64_t RoundsSize(const std::string& mono) {
    std::string manifest = NewPath("sharded");
    Status s = ShardAdjacencyFile(mono, manifest, 4);
    EXPECT_TRUE(s.ok()) << s.ToString();
    MinIdRoundsOptions opts;
    opts.pipeline.num_threads = 4;
    AlgoResult res;
    s = RunMinIdRounds(manifest, opts, &res);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return res.set_size;
  }
};

TEST_F(RoundsQualityTest, RatioVsDegreeGreedyStaysPinned) {
  struct QualityCase {
    std::string name;
    Graph graph;
    // rounds |IS| / degree-greedy |IS|, recorded from a real run.
    double golden_ratio;
  };
  // Update a golden only together with the change that moved it, and say
  // why in the commit. 0.02 of slack covers rounding of the recorded
  // value, not behavioral drift.
  const double kTolerance = 0.02;
  std::vector<QualityCase> cases;
  cases.push_back({"plrg-20k-beta2.0",
                   GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.0), 41),
                   0.9342});
  cases.push_back(
      {"plrg-10k-avg8",
       GeneratePlrg(PlrgSpec::ForVerticesAndAvgDegree(10000, 8.0), 4321),
       0.9305});
  cases.push_back({"er-10k-m40k", GenerateErdosRenyi(10000, 40000, 17),
                   0.8845});
  cases.push_back({"er-5k-m25k", GenerateErdosRenyi(5000, 25000, 99),
                   0.8665});

  for (const QualityCase& c : cases) {
    std::string mono = WriteGraphFile(&scratch_, c.graph);
    const uint64_t greedy = DegreeGreedySize(mono);
    const uint64_t rounds = RoundsSize(mono);
    ASSERT_GT(greedy, 0u) << c.name;
    const double ratio =
        static_cast<double>(rounds) / static_cast<double>(greedy);
    EXPECT_NEAR(ratio, c.golden_ratio, kTolerance)
        << c.name << ": rounds |IS| = " << rounds
        << ", degree-greedy |IS| = " << greedy;
  }
}

}  // namespace
}  // namespace semis
