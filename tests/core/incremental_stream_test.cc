// Differential-testing harness for the shard-native streaming update
// pipeline (core/incremental_stream.h). Reference semantics, checked on
// seeded random update streams over PLRG, Erdos-Renyi and the paper's
// worked-example graphs:
//
//   * after every ApplyBatch the maintained set is independent on the
//     UPDATED graph; after every Repair it is also maximal (the
//     quality invariant a from-scratch solve guarantees);
//   * the repaired set is byte-identical to sequential
//     IncrementalMis::Repair on the equivalent monolithic file, and
//     identical across every tested shard/thread combination
//     (1/2/8 threads x 1/3/7 shards) -- the determinism contract;
//   * compaction never changes the effective graph or the maintained
//     set, and a restarted session replays the on-disk delta back to the
//     exact same state.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "core/incremental_stream.h"
#include "core/solver.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "gen/paper_figures.h"
#include "gen/plrg.h"
#include "graph/graph_io.h"
#include "graph/sharded_adjacency_file.h"
#include "io/edge_delta_file.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::RandomMaximalSet;
using testing_util::ScratchTest;
using testing_util::SetToVector;
using testing_util::WriteGraphFile;

class IncrementalStreamTest : public ScratchTest {};

constexpr uint32_t kShardCounts[] = {1, 3, 7};
constexpr uint32_t kThreadCounts[] = {1, 2, 8};

// Rebuilds the updated graph in memory for verification.
Graph ApplyDelta(const Graph& base, const std::set<Edge>& inserted,
                 const std::set<Edge>& deleted) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v < base.NumVertices(); ++v) {
    for (VertexId u : base.Neighbors(v)) {
      if (v < u && deleted.find({v, u}) == deleted.end()) {
        edges.emplace_back(v, u);
      }
    }
  }
  for (const Edge& e : inserted) edges.push_back(e);
  return Graph::FromEdges(base.NumVertices(), std::move(edges));
}

// One maintainer bound to its own sharded copy of the base graph.
struct Instance {
  std::string manifest;
  ShardedStreamingMis mis;
};

// Shards `mono_path` into one copy per (shard count x thread count)
// combination and initializes a maintainer on each.
void MakeInstances(ScratchDir* scratch, const std::string& mono_path,
                   const BitVector& initial, const std::string& tag,
                   uint64_t compact_threshold,
                   std::vector<Instance>* instances) {
  for (uint32_t shards : kShardCounts) {
    for (uint32_t threads : kThreadCounts) {
      instances->emplace_back();
      Instance& i = instances->back();
      i.manifest = scratch->NewFilePath(tag + "_s" + std::to_string(shards) +
                                        "_t" + std::to_string(threads) +
                                        ".sadjs");
      ASSERT_OK(ShardAdjacencyFile(mono_path, i.manifest, shards));
      EnginePipelineOptions opts;
      opts.num_threads = threads;
      opts.compact_threshold_entries = compact_threshold;
      ASSERT_OK(i.mis.Initialize(i.manifest, initial, opts));
    }
  }
}

// Drives a seeded random update stream over `base` through a sequential
// IncrementalMis and the full shard/thread matrix, checking equality and
// the independence/maximality invariants after every batch + repair.
void RunDifferentialStream(ScratchDir* scratch, const Graph& base,
                           uint64_t seed, int steps, int batch,
                           uint64_t compact_threshold) {
  const VertexId n = base.NumVertices();
  std::string tag = "base";
  tag += std::to_string(seed);
  tag += ".adj";
  std::string mono = scratch->NewFilePath(tag);
  ASSERT_OK(WriteGraphToAdjacencyFile(base, mono));
  BitVector initial = RandomMaximalSet(base, seed + 77);

  IncrementalMis reference;
  ASSERT_OK(reference.Initialize(mono, initial));
  std::vector<Instance> instances;
  std::string graph_tag = "g";
  graph_tag += std::to_string(seed);
  MakeInstances(scratch, mono, initial, graph_tag, compact_threshold,
                &instances);

  std::set<Edge> inserted, deleted;
  Random rng(seed * 131 + 9);
  std::vector<EdgeUpdate> batch_updates;
  for (int step = 0; step < steps; ++step) {
    VertexId u = static_cast<VertexId>(rng.Uniform(n));
    VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v) continue;
    Edge e{std::min(u, v), std::max(u, v)};
    const bool in_base = base.HasEdge(u, v);
    const bool exists = (in_base && deleted.find(e) == deleted.end()) ||
                        inserted.find(e) != inserted.end();
    // Mostly flip the edge's existence; sometimes send redundant traffic
    // (duplicate insert / delete of an absent edge) on purpose.
    const bool redundant = rng.OneIn(0.15);
    if ((exists && !redundant) || (!exists && redundant)) {
      batch_updates.push_back(EdgeUpdate::Delete(u, v));
      ASSERT_OK(reference.DeleteEdge(u, v));
      inserted.erase(e);
      if (in_base) deleted.insert(e);
    } else {
      batch_updates.push_back(EdgeUpdate::Insert(u, v));
      ASSERT_OK(reference.InsertEdge(u, v));
      deleted.erase(e);
      if (!in_base) inserted.insert(e);
    }

    if (static_cast<int>(batch_updates.size()) < batch &&
        step + 1 < steps) {
      continue;
    }
    ASSERT_OK(reference.Repair());
    const std::vector<VertexId> expected = SetToVector(reference.set());
    Graph updated = ApplyDelta(base, inserted, deleted);
    for (Instance& inst : instances) {
      ASSERT_OK(inst.mis.ApplyBatch(batch_updates));
      // Independence must hold after every batch, before any repair.
      VerifyResult pre = VerifyIndependentSet(updated, inst.mis.set());
      ASSERT_TRUE(pre.independent)
          << "seed " << seed << " step " << step << " manifest "
          << inst.manifest << " edge " << pre.witness_u << "-"
          << pre.witness_v;
      ASSERT_OK(inst.mis.Repair());
      // Byte-identical to the sequential monolithic reference -- which
      // also proves every shard/thread combination identical to every
      // other.
      ASSERT_EQ(SetToVector(inst.mis.set()), expected)
          << "seed " << seed << " step " << step << " manifest "
          << inst.manifest;
      ASSERT_EQ(inst.mis.set_size(), inst.mis.set().Count());
      // The quality invariant of a from-scratch solve: independent AND
      // maximal on the updated graph.
      VerifyResult vr = VerifyIndependentSet(updated, inst.mis.set());
      ASSERT_TRUE(vr.independent) << "seed " << seed << " step " << step;
      ASSERT_TRUE(vr.maximal)
          << "seed " << seed << " step " << step << " manifest "
          << inst.manifest << " vertex " << vr.witness_u;
    }
    batch_updates.clear();
  }
}

TEST_F(IncrementalStreamTest, DifferentialRandomStreamsErdosRenyi) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph base = GenerateErdosRenyi(90, 220, seed + 5);
    RunDifferentialStream(&scratch_, base, seed, /*steps=*/120,
                          /*batch=*/25, /*compact_threshold=*/0);
  }
}

TEST_F(IncrementalStreamTest, DifferentialRandomStreamPlrg) {
  Graph base = GeneratePlrg(PlrgSpec::ForVertexCount(300, 2.0), 11);
  RunDifferentialStream(&scratch_, base, 42, /*steps=*/150, /*batch=*/30,
                        /*compact_threshold=*/0);
}

TEST_F(IncrementalStreamTest, DifferentialStreamWithAutoCompaction) {
  // Same differential matrix, but with a low compaction threshold so
  // shards are rewritten mid-stream: folding the delta into the base must
  // never change any answer.
  Graph base = GenerateErdosRenyi(80, 180, 33);
  RunDifferentialStream(&scratch_, base, 7, /*steps=*/120, /*batch=*/20,
                        /*compact_threshold=*/8);
}

TEST_F(IncrementalStreamTest, DifferentialStreamOnWorkedExamples) {
  int tag = 0;
  for (const PaperExample& ex :
       {Figure1Example(), Figure2Example(), Figure7Example(),
        Figure5Example()}) {
    RunDifferentialStream(&scratch_, ex.graph, 1000 + tag, /*steps=*/60,
                          /*batch=*/10, /*compact_threshold=*/0);
    tag++;
  }
}

TEST_F(IncrementalStreamTest, InsertBetweenSetMembersEvictsEagerly) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("evict.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 2));
  BitVector set(4);
  set.Set(0);
  set.Set(2);
  ShardedStreamingMis mis;
  ASSERT_OK(mis.Initialize(manifest, set, EnginePipelineOptions{}));
  ASSERT_OK(mis.ApplyBatch({EdgeUpdate::Insert(0, 2)}));
  EXPECT_EQ(mis.set_size(), 1u);
  EXPECT_TRUE(mis.set().Test(0));  // smaller id stays
  EXPECT_FALSE(mis.set().Test(2));
  EXPECT_EQ(mis.stats().evictions, 1u);
  ASSERT_OK(mis.Repair());
  EXPECT_TRUE(mis.set().Test(3));  // its set neighbor 2 left
  EXPECT_EQ(mis.stats().repair_added, 1u);
}

TEST_F(IncrementalStreamTest, BatchValidationFailsWholeBatchUpFront) {
  Graph g = GeneratePath(5);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("val.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 2));
  ShardedStreamingMis mis;
  ASSERT_OK(mis.Initialize(manifest, BitVector(5), EnginePipelineOptions{}));
  // Self-loop and out-of-range updates are rejected and nothing -- not
  // even the valid first update -- is applied.
  EXPECT_TRUE(mis.ApplyBatch({EdgeUpdate::Insert(0, 2),
                              EdgeUpdate::Insert(3, 3)})
                  .IsInvalidArgument());
  EXPECT_TRUE(mis.ApplyBatch({EdgeUpdate::Insert(0, 2),
                              EdgeUpdate::Insert(0, 5)})
                  .IsInvalidArgument());
  EXPECT_TRUE(mis.ApplyBatch({EdgeUpdate::Delete(9, 2)})
                  .IsInvalidArgument());
  EXPECT_EQ(mis.stats().updates_applied, 0u);
  EXPECT_EQ(mis.stats().pending_delta_entries, 0u);
}

TEST_F(IncrementalStreamTest, RedundantUpdatesAreNotLogged) {
  Graph g = GeneratePath(4);  // 0-1-2-3
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("red.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 2));
  ShardedStreamingMis mis;
  ASSERT_OK(mis.Initialize(manifest, BitVector(4), EnginePipelineOptions{}));
  ASSERT_OK(mis.ApplyBatch({EdgeUpdate::Insert(0, 2),
                            EdgeUpdate::Insert(0, 2),    // duplicate
                            EdgeUpdate::Delete(1, 3),
                            EdgeUpdate::Delete(1, 3)})); // duplicate
  EXPECT_EQ(mis.stats().updates_applied, 4u);
  EXPECT_EQ(mis.stats().redundant_updates, 2u);
  // Only the two effective updates carry sequence numbers / log entries.
  EdgeDeltaManifest dm;
  ASSERT_OK(ReadEdgeDeltaManifest(EdgeDeltaManifestPath(manifest), &dm));
  EXPECT_EQ(dm.next_sequence, 2u);
}

TEST_F(IncrementalStreamTest, DuplicateBaseEdgeInsertThenDeleteCompacts) {
  // The streaming twin of the IncrementalMis duplicate-accounting gadget,
  // extended through compaction: insert a copy of base edge 0-1, delete
  // it, and the compacted base must no longer contain the edge (and must
  // not have gained a duplicate neighbor entry either way).
  Graph g = Graph::FromEdges(2, {{0, 1}});
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("dup.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 2));
  BitVector set(2);
  set.Set(0);
  ShardedStreamingMis mis;
  ASSERT_OK(mis.Initialize(manifest, set, EnginePipelineOptions{}));
  ASSERT_OK(mis.ApplyBatch({EdgeUpdate::Insert(0, 1)}));  // duplicates base
  ASSERT_OK(mis.ApplyBatch({EdgeUpdate::Delete(0, 1)}));
  ASSERT_OK(mis.Repair());
  EXPECT_TRUE(mis.set().Test(1)) << "base copy survived its deletion";
  EXPECT_EQ(mis.set_size(), 2u);
  ASSERT_OK(mis.Compact(/*force=*/true));
  ShardedAdjacencyScanner scanner;
  ASSERT_OK(scanner.Open(manifest));
  EXPECT_EQ(scanner.header().num_directed_edges, 0u);
  VertexRecord rec;
  bool has_next = false;
  uint64_t records = 0;
  while (true) {
    ASSERT_OK(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    EXPECT_EQ(rec.degree, 0u);
    records++;
  }
  EXPECT_EQ(records, 2u);

  // And folding a duplicate insert WITHOUT the delete must not create a
  // doubled neighbor entry.
  std::string manifest2 = NewPath("dup2.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest2, 1));
  ShardedStreamingMis mis2;
  ASSERT_OK(mis2.Initialize(manifest2, set, EnginePipelineOptions{}));
  ASSERT_OK(mis2.ApplyBatch({EdgeUpdate::Insert(0, 1)}));
  ASSERT_OK(mis2.Compact(/*force=*/true));
  ShardedAdjacencyScanner scanner2;
  ASSERT_OK(scanner2.Open(manifest2));
  EXPECT_EQ(scanner2.header().num_directed_edges, 2u);  // one edge, not two
  while (true) {
    ASSERT_OK(scanner2.Next(&rec, &has_next));
    if (!has_next) break;
    EXPECT_EQ(rec.degree, 1u);
  }
}

TEST_F(IncrementalStreamTest, CompactionFoldsDeltaAndPreservesAnswers) {
  Graph base = GenerateErdosRenyi(70, 150, 21);
  std::string mono = WriteGraphFile(&scratch_, base);
  std::string manifest = NewPath("comp.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 3));
  BitVector initial = RandomMaximalSet(base, 4);
  ShardedStreamingMis mis;
  EnginePipelineOptions opts;
  opts.num_threads = 2;
  ASSERT_OK(mis.Initialize(manifest, initial, opts));

  std::set<Edge> inserted, deleted;
  Random rng(99);
  std::vector<EdgeUpdate> updates;
  for (int i = 0; i < 120; ++i) {
    VertexId u = static_cast<VertexId>(rng.Uniform(70));
    VertexId v = static_cast<VertexId>(rng.Uniform(70));
    if (u == v) continue;
    Edge e{std::min(u, v), std::max(u, v)};
    const bool in_base = base.HasEdge(u, v);
    const bool exists = (in_base && deleted.find(e) == deleted.end()) ||
                        inserted.find(e) != inserted.end();
    if (exists) {
      updates.push_back(EdgeUpdate::Delete(u, v));
      inserted.erase(e);
      if (in_base) deleted.insert(e);
    } else {
      updates.push_back(EdgeUpdate::Insert(u, v));
      deleted.erase(e);
      if (!in_base) inserted.insert(e);
    }
  }
  ASSERT_OK(mis.ApplyBatch(updates));
  ASSERT_OK(mis.Repair());
  const std::vector<VertexId> before = SetToVector(mis.set());

  ASSERT_OK(mis.Compact(/*force=*/true));
  EXPECT_EQ(mis.stats().pending_delta_entries, 0u);
  EXPECT_GT(mis.stats().shards_rewritten, 0u);
  // The set is untouched and a repair over the compacted base agrees.
  EXPECT_EQ(SetToVector(mis.set()), before);
  ASSERT_OK(mis.Repair());
  EXPECT_EQ(SetToVector(mis.set()), before);

  // The compacted base IS the updated graph: re-read it and compare
  // adjacency with the in-memory reference.
  Graph updated = ApplyDelta(base, inserted, deleted);
  ShardedAdjacencyScanner scanner;
  ASSERT_OK(scanner.Open(manifest));
  EXPECT_EQ(scanner.header().num_directed_edges,
            updated.NumDirectedEdges());
  VertexRecord rec;
  bool has_next = false;
  uint64_t records = 0;
  while (true) {
    ASSERT_OK(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    records++;
    std::set<VertexId> got(rec.neighbors, rec.neighbors + rec.degree);
    std::set<VertexId> want(updated.Neighbors(rec.id).begin(),
                            updated.Neighbors(rec.id).end());
    ASSERT_EQ(got, want) << "vertex " << rec.id;
  }
  EXPECT_EQ(records, updated.NumVertices());

  // The effective graph still matches a verification scan, and updates
  // keep flowing after the compaction.
  VerifyResult vr;
  ASSERT_OK(VerifyIndependentSetShardedFile(manifest, mis.set(), &vr));
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
  ASSERT_OK(mis.ApplyBatch({EdgeUpdate::Insert(
      SetToVector(mis.set())[0], SetToVector(mis.set())[1])}));
  ASSERT_OK(mis.Repair());
}

TEST_F(IncrementalStreamTest, RestartReplaysTheOverlayExactly) {
  Graph base = GenerateErdosRenyi(60, 130, 8);
  std::string mono = WriteGraphFile(&scratch_, base);
  std::string manifest = NewPath("restart.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 3));
  BitVector initial = RandomMaximalSet(base, 15);

  ShardedStreamingMis first;
  ASSERT_OK(first.Initialize(manifest, initial, EnginePipelineOptions{}));
  Random rng(5);
  std::vector<EdgeUpdate> updates;
  for (int i = 0; i < 80; ++i) {
    VertexId u = static_cast<VertexId>(rng.Uniform(60));
    VertexId v = static_cast<VertexId>(rng.Uniform(60));
    if (u == v) continue;
    updates.push_back(rng.OneIn(0.3) ? EdgeUpdate::Delete(u, v)
                                     : EdgeUpdate::Insert(u, v));
  }
  ASSERT_OK(first.ApplyBatch(updates));

  // A second session binds to the same files with the same BASE set and
  // must come back in the exact same state (the logs are the redo
  // stream).
  ShardedStreamingMis second;
  ASSERT_OK(second.Initialize(manifest, initial, EnginePipelineOptions{}));
  EXPECT_EQ(SetToVector(second.set()), SetToVector(first.set()));
  EXPECT_EQ(second.stats().pending_delta_entries,
            first.stats().pending_delta_entries);
  ASSERT_OK(first.Repair());
  ASSERT_OK(second.Repair());
  EXPECT_EQ(SetToVector(second.set()), SetToVector(first.set()));

  // Overlay/base mismatches are rejected, not misread: bind the overlay
  // to a differently-sharded copy of the same graph.
  std::string other = NewPath("restart_other.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, other, 2));
  ShardedStreamingMis third;
  // Hand the 3-shard overlay to the 2-shard file.
  SequentialFileReader src;
  ASSERT_OK(src.Open(EdgeDeltaManifestPath(manifest)));
  std::vector<char> bytes(4096);
  size_t n = 0;
  std::vector<char> all;
  while (true) {
    ASSERT_OK(src.Read(bytes.data(), bytes.size(), &n));
    if (n == 0) break;
    all.insert(all.end(), bytes.begin(), bytes.begin() + n);
  }
  SequentialFileWriter dst;
  ASSERT_OK(dst.Open(EdgeDeltaManifestPath(other)));
  ASSERT_OK(dst.Append(all.data(), all.size()));
  ASSERT_OK(dst.Close());
  Status s = third.Initialize(other, initial, EnginePipelineOptions{});
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(IncrementalStreamTest, RestartDropsCrashTornLogTail) {
  // A crash between a log append and the delta-manifest republish leaves
  // bytes past the declared count -- the unflushed batch. Initialize must
  // drop that tail (not brick with Corruption), rewrite the log clean,
  // and land in the state of the last republished manifest.
  Graph base = GenerateErdosRenyi(40, 80, 3);
  std::string mono = WriteGraphFile(&scratch_, base);
  std::string manifest = NewPath("torn.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 2));
  BitVector initial = RandomMaximalSet(base, 2);

  ShardedStreamingMis first;
  ASSERT_OK(first.Initialize(manifest, initial, EnginePipelineOptions{}));
  ASSERT_OK(first.ApplyBatch({EdgeUpdate::Insert(0, 1),
                              EdgeUpdate::Insert(2, 3)}));
  const std::vector<VertexId> flushed_state = SetToVector(first.set());

  // Simulate the torn append: extra entries land in a shard log without
  // the delta manifest ever being republished.
  const std::string delta = EdgeDeltaManifestPath(manifest);
  {
    EdgeDeltaShardWriter writer;
    ASSERT_OK(writer.Open(delta, 0, base.NumVertices()));
    ASSERT_OK(writer.Append({99, EdgeDeltaOp::kInsert, 5, 6}));
    ASSERT_OK(writer.Close());
  }
  // Strict read reports the tail...
  EdgeDeltaManifest dm;
  ASSERT_OK(ReadEdgeDeltaManifest(delta, &dm));
  std::vector<EdgeDeltaEntry> entries;
  EXPECT_TRUE(
      ReadEdgeDeltaShardLog(delta, dm, 0, &entries).IsCorruption());

  // ...while a restarted session recovers: same state as the last flush,
  // tail gone, and the overlay fully consistent again.
  ShardedStreamingMis second;
  ASSERT_OK(second.Initialize(manifest, initial, EnginePipelineOptions{}));
  EXPECT_EQ(SetToVector(second.set()), flushed_state);
  EXPECT_EQ(second.stats().recovered_log_tails, 1u);
  entries.clear();
  ASSERT_OK(ReadEdgeDeltaShardLog(delta, dm, 0, &entries));  // clean now
  ASSERT_OK(second.ApplyBatch({EdgeUpdate::Insert(7, 8)}));
  ShardedStreamingMis third;
  ASSERT_OK(third.Initialize(manifest, initial, EnginePipelineOptions{}));
  EXPECT_EQ(SetToVector(third.set()), SetToVector(second.set()));
  EXPECT_EQ(third.stats().recovered_log_tails, 0u);
}

TEST_F(IncrementalStreamTest, StreamQualityTracksFromScratchSolve) {
  // After a burst of random insertions and one repair, the maintained set
  // stays close to a from-scratch sharded solve of the updated
  // (compacted) graph -- the streaming path trades a few percent of
  // quality for not re-solving.
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(3000, 2.0), 13);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("q.sadjs");
  {
    Solver solver(SolverOptions{});
    SolveResult solved;
    ASSERT_OK(solver.SolveFile(mono, &solved));
    ASSERT_OK(ShardAdjacencyFile(mono, manifest, 5));
    ShardedStreamingMis mis;
    EnginePipelineOptions opts;
    opts.num_threads = 2;
    ASSERT_OK(mis.Initialize(manifest, solved.set, opts));

    Random rng(17);
    std::vector<EdgeUpdate> updates;
    for (int i = 0; i < 400; ++i) {
      VertexId u = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
      VertexId v = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
      if (u != v) updates.push_back(EdgeUpdate::Insert(u, v));
    }
    ASSERT_OK(mis.ApplyBatch(updates));
    ASSERT_OK(mis.Repair());
    ASSERT_OK(mis.Compact(/*force=*/true));

    // From-scratch: solve the compacted graph directly from the shards.
    SolverOptions sopts;
    sopts.degree_sort = false;  // compaction cleared the sorted flag
    sopts.swap = SwapMode::kNone;
    sopts.pipeline.num_threads = 2;
    Solver fresh(sopts);
    SolveResult from_scratch;
    ASSERT_OK(fresh.SolveShardedFile(manifest, &from_scratch));
    EXPECT_GT(mis.set_size(), from_scratch.set_size * 85 / 100);
    // Both satisfy the same invariants on the same graph.
    VerifyResult vr;
    ASSERT_OK(VerifyIndependentSetShardedFile(manifest, mis.set(), &vr));
    EXPECT_TRUE(vr.independent);
    EXPECT_TRUE(vr.maximal);
  }
}

TEST_F(IncrementalStreamTest, InitializeRejectsMismatchedSet) {
  Graph g = GeneratePath(4);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("mm.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 2));
  ShardedStreamingMis mis;
  EXPECT_TRUE(mis.Initialize(manifest, BitVector(3), EnginePipelineOptions{})
                  .IsInvalidArgument());
  // Uninitialized use is rejected too.
  ShardedStreamingMis unbound;
  EXPECT_TRUE(unbound.ApplyBatch({EdgeUpdate::Insert(0, 1)})
                  .IsInvalidArgument());
  EXPECT_TRUE(unbound.Repair().IsInvalidArgument());
  EXPECT_TRUE(unbound.Compact(true).IsInvalidArgument());
}

TEST_F(IncrementalStreamTest, EmptyGraphAndEmptyBatches) {
  Graph g = Graph::FromEdges(0, {});
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = NewPath("empty.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, manifest, 3));
  ShardedStreamingMis mis;
  ASSERT_OK(mis.Initialize(manifest, BitVector(0), EnginePipelineOptions{}));
  ASSERT_OK(mis.ApplyBatch({}));
  ASSERT_OK(mis.Repair());
  ASSERT_OK(mis.Compact(true));
  EXPECT_EQ(mis.set_size(), 0u);

  // Empty batches on a real graph are no-ops as well.
  Graph p = GeneratePath(3);
  std::string mono2 = WriteGraphFile(&scratch_, p);
  std::string manifest2 = NewPath("empty2.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono2, manifest2, 1));
  ShardedStreamingMis mis2;
  EnginePipelineOptions opts;
  opts.num_threads = 4;
  ASSERT_OK(mis2.Initialize(manifest2, BitVector(3), opts));
  ASSERT_OK(mis2.ApplyBatch({}));
  ASSERT_OK(mis2.Repair());
  EXPECT_EQ(mis2.set_size(), 3u - 1u);  // path 0-1-2: repair adds 0 and 2
}

}  // namespace
}  // namespace semis
