// Stress tests for the swap-conflict mechanism: under no circumstances may
// two adjacent vertices end up in the set, regardless of scan order or
// initial set. These tests hammer the order-dependent P/C race that
// Section 5 is about.
#include <gtest/gtest.h>

#include <numeric>

#include "core/one_k_swap.h"
#include "core/two_k_swap.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::RandomMaximalSet;
using testing_util::ScratchTest;
using testing_util::WriteGraphFileInOrder;

class SwapConflictTest : public ScratchTest {};

// Runs both swap algorithms over `graph` with `orders` many random scan
// orders and initial sets, asserting validity every time.
void StressOrders(ScratchDir* scratch, const Graph& graph, int orders,
                  uint64_t base_seed) {
  std::vector<VertexId> order(graph.NumVertices());
  std::iota(order.begin(), order.end(), 0);
  for (int i = 0; i < orders; ++i) {
    Random rng(base_seed + i);
    rng.Shuffle(order.data(), order.size());
    std::string path = WriteGraphFileInOrder(scratch, graph, order);
    BitVector initial = RandomMaximalSet(graph, base_seed * 31 + i);
    {
      AlgoResult res;
      ASSERT_OK(RunOneKSwap(path, initial, {}, &res));
      VerifyResult vr = VerifyIndependentSet(graph, res.in_set);
      ASSERT_TRUE(vr.independent)
          << "one-k order " << i << ": edge " << vr.witness_u << "-"
          << vr.witness_v;
      ASSERT_TRUE(vr.maximal) << "one-k order " << i;
      ASSERT_GE(res.set_size, initial.Count());
    }
    {
      AlgoResult res;
      ASSERT_OK(RunTwoKSwap(path, initial, {}, &res));
      VerifyResult vr = VerifyIndependentSet(graph, res.in_set);
      ASSERT_TRUE(vr.independent)
          << "two-k order " << i << ": edge " << vr.witness_u << "-"
          << vr.witness_v;
      ASSERT_TRUE(vr.maximal) << "two-k order " << i;
      ASSERT_GE(res.set_size, initial.Count());
    }
  }
}

TEST_F(SwapConflictTest, ChainedConflictGadget) {
  // A long path: every internal swap candidate conflicts with neighbors'
  // candidates; adversarial for the P/C race.
  StressOrders(&scratch_, GeneratePath(40), 10, 1000);
}

TEST_F(SwapConflictTest, CycleGadget) {
  StressOrders(&scratch_, GenerateCycle(41), 10, 2000);
}

TEST_F(SwapConflictTest, SharedAnchorGadget) {
  // Many degree-1 vertices around few hubs: all candidates share ISN
  // anchors, maximizing counter-trick contention.
  StressOrders(&scratch_, GenerateCaterpillar(8, 5), 10, 3000);
}

TEST_F(SwapConflictTest, BipartiteGadget) {
  // Complete bipartite: all 2-3 skeletons share the same bucket.
  StressOrders(&scratch_, GenerateCompleteBipartite(3, 7), 10, 4000);
}

TEST_F(SwapConflictTest, DensePlrgCore) {
  StressOrders(&scratch_, GeneratePlrg(PlrgSpec::ForVertexCount(300, 1.7), 5),
               6, 5000);
}

TEST_F(SwapConflictTest, RandomGraphsManySeeds) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    StressOrders(&scratch_, GenerateErdosRenyi(120, 300, seed), 4,
                 6000 + seed * 100);
  }
}

TEST_F(SwapConflictTest, CascadeUnderRandomOrders) {
  // The cascade gadget is tuned for id order, but validity must hold for
  // any order.
  StressOrders(&scratch_, GenerateCascadeSwap(8), 10, 7000);
}

}  // namespace
}  // namespace semis
