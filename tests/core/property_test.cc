// Parameterized property sweep: every algorithm, over a grid of graph
// families and seeds, must satisfy the core invariants:
//   1. output is an independent set,
//   2. output is maximal,
//   3. sizes are ordered: initial <= after-swap <= Algorithm 5 bound,
//   4. on tiny graphs, everything is <= the exact independence number,
//   5. the set bit count equals the reported size.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/dynamic_update.h"
#include "baselines/exact.h"
#include "core/greedy.h"
#include "core/one_k_swap.h"
#include "core/two_k_swap.h"
#include "core/upper_bound.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

struct PropertyCase {
  const char* family;
  VertexId size_knob;
  uint64_t seed;
};

void PrintTo(const PropertyCase& c, std::ostream* os) {
  *os << c.family << "/n" << c.size_knob << "/s" << c.seed;
}

Graph MakeGraph(const PropertyCase& c) {
  std::string family = c.family;
  if (family == "er_sparse") {
    return GenerateErdosRenyi(c.size_knob, c.size_knob * 2, c.seed);
  }
  if (family == "er_dense") {
    return GenerateErdosRenyi(c.size_knob, c.size_knob * 8, c.seed);
  }
  if (family == "plrg20") {
    return GeneratePlrg(PlrgSpec::ForVertexCount(c.size_knob, 2.0), c.seed);
  }
  if (family == "plrg27") {
    return GeneratePlrg(PlrgSpec::ForVertexCount(c.size_knob, 2.7), c.seed);
  }
  if (family == "plrg17") {
    return GeneratePlrg(PlrgSpec::ForVertexCount(c.size_knob, 1.7), c.seed);
  }
  if (family == "gnp") return GenerateGnp(c.size_knob, 0.1, c.seed);
  if (family == "bipartite") {
    return GenerateCompleteBipartite(c.size_knob / 3,
                                     c.size_knob - c.size_knob / 3);
  }
  if (family == "path") return GeneratePath(c.size_knob);
  if (family == "cycle") return GenerateCycle(c.size_knob);
  if (family == "star") return GenerateStar(c.size_knob);
  if (family == "caterpillar") return GenerateCaterpillar(c.size_knob / 4, 3);
  if (family == "cascade") return GenerateCascadeSwap(c.size_knob / 3);
  if (family == "triangles") return GenerateTriangles(c.size_knob / 3);
  ADD_FAILURE() << "unknown family " << family;
  return Graph();
}

class MisPropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    ASSERT_OK(ScratchDir::Create("semis-prop", &scratch_));
  }
  ScratchDir scratch_;
};

TEST_P(MisPropertyTest, AllInvariantsHold) {
  const PropertyCase& c = GetParam();
  Graph g = MakeGraph(c);
  std::string unsorted = WriteGraphFile(&scratch_, g);
  std::string sorted = scratch_.NewFilePath("sorted");
  ASSERT_OK(BuildDegreeSortedAdjacencyFile(unsorted, sorted, {}));

  const uint64_t upper = ComputeIndependenceUpperBound(g);
  uint64_t exact_alpha = 0;
  const bool tiny = g.NumVertices() <= 24 && g.NumVertices() > 0;
  if (tiny) exact_alpha = testing_util::BruteForceAlpha(g);

  auto check = [&](const char* label, const AlgoResult& res,
                   uint64_t floor_size) {
    SCOPED_TRACE(label);
    VerifyResult vr = VerifyIndependentSet(g, res.in_set);
    EXPECT_TRUE(vr.independent)
        << "edge " << vr.witness_u << "-" << vr.witness_v;
    EXPECT_TRUE(vr.maximal) << "addable " << vr.witness_u;
    EXPECT_EQ(res.in_set.Count(), res.set_size);
    EXPECT_GE(res.set_size, floor_size);
    EXPECT_LE(res.set_size, upper);
    if (tiny) {
      EXPECT_LE(res.set_size, exact_alpha);
    }
  };

  AlgoResult baseline, greedy;
  ASSERT_OK(RunGreedy(unsorted, {}, &baseline));
  ASSERT_OK(RunGreedy(sorted, {}, &greedy));
  check("baseline", baseline, 0);
  check("greedy", greedy, 0);

  AlgoResult one_k, two_k;
  ASSERT_OK(RunOneKSwap(sorted, greedy.in_set, {}, &one_k));
  ASSERT_OK(RunTwoKSwap(sorted, greedy.in_set, {}, &two_k));
  check("one-k(greedy)", one_k, greedy.set_size);
  check("two-k(greedy)", two_k, greedy.set_size);

  AlgoResult one_kb, two_kb;
  ASSERT_OK(RunOneKSwap(unsorted, baseline.in_set, {}, &one_kb));
  ASSERT_OK(RunTwoKSwap(unsorted, baseline.in_set, {}, &two_kb));
  check("one-k(baseline)", one_kb, baseline.set_size);
  check("two-k(baseline)", two_kb, baseline.set_size);

  AlgoResult dynamic;
  ASSERT_OK(RunDynamicUpdate(g, &dynamic));
  check("dynamic-update", dynamic, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Families, MisPropertyTest,
    ::testing::Values(
        PropertyCase{"er_sparse", 20, 1}, PropertyCase{"er_sparse", 20, 2},
        PropertyCase{"er_sparse", 200, 3}, PropertyCase{"er_sparse", 200, 4},
        PropertyCase{"er_dense", 20, 1}, PropertyCase{"er_dense", 200, 2},
        PropertyCase{"er_dense", 200, 3}, PropertyCase{"plrg20", 500, 1},
        PropertyCase{"plrg20", 2000, 2}, PropertyCase{"plrg20", 2000, 3},
        PropertyCase{"plrg27", 2000, 4}, PropertyCase{"plrg27", 500, 5},
        PropertyCase{"path", 17, 0}, PropertyCase{"path", 400, 0},
        PropertyCase{"cycle", 18, 0}, PropertyCase{"cycle", 401, 0},
        PropertyCase{"star", 21, 0}, PropertyCase{"star", 300, 0},
        PropertyCase{"caterpillar", 80, 0},
        PropertyCase{"cascade", 21, 0}, PropertyCase{"cascade", 90, 0},
        PropertyCase{"triangles", 21, 0}, PropertyCase{"triangles", 120, 0},
        PropertyCase{"plrg17", 1000, 6}, PropertyCase{"plrg17", 3000, 7},
        PropertyCase{"gnp", 20, 8}, PropertyCase{"gnp", 120, 9},
        PropertyCase{"bipartite", 18, 0}, PropertyCase{"bipartite", 90, 0}));

}  // namespace
}  // namespace semis
