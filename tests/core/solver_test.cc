#include "core/solver.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/verify.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

class SolverTest : public ScratchTest {};

TEST_F(SolverTest, FullPipelineOnPowerLawGraph) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.0), 8);
  std::string path = WriteGraphFile(&scratch_, g);
  SolverOptions opts;
  opts.verify = true;  // paranoid self-check must pass
  Solver solver(opts);
  SolveResult res;
  ASSERT_OK(solver.SolveFile(path, &res));
  EXPECT_GT(res.set_size, 0u);
  EXPECT_EQ(res.set.Count(), res.set_size);
  EXPECT_GE(res.set_size, res.greedy.set_size);
  EXPECT_GT(res.sort_seconds, 0.0);  // input was unsorted
  VerifyResult vr = VerifyIndependentSet(g, res.set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
}

TEST_F(SolverTest, SwapModesOrdering) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(10000, 2.0), 9);
  std::string path = WriteGraphFile(&scratch_, g);
  auto run = [&](SwapMode mode) {
    SolverOptions opts;
    opts.swap = mode;
    Solver solver(opts);
    SolveResult res;
    Status s = solver.SolveFile(path, &res);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return res.set_size;
  };
  uint64_t none = run(SwapMode::kNone);
  uint64_t one_k = run(SwapMode::kOneK);
  uint64_t two_k = run(SwapMode::kTwoK);
  EXPECT_GE(one_k, none);
  EXPECT_GE(two_k, none);
  // two-k subsumes one-k swaps; allow 1% noise from order effects.
  EXPECT_GE(two_k + two_k / 100, one_k);
}

TEST_F(SolverTest, BaselineModeSkipsSorting) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 10);
  std::string path = WriteGraphFile(&scratch_, g);
  SolverOptions opts;
  opts.degree_sort = false;
  opts.swap = SwapMode::kNone;
  Solver solver(opts);
  SolveResult res;
  ASSERT_OK(solver.SolveFile(path, &res));
  EXPECT_EQ(res.sort_seconds, 0.0);
  EXPECT_EQ(res.io.sort_passes, 0u);
}

TEST_F(SolverTest, AlreadySortedInputNotResorted) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 11);
  std::string path = WriteGraphFile(&scratch_, g);
  SolverOptions opts;
  Solver solver(opts);
  SolveResult first;
  ASSERT_OK(solver.SolveFile(path, &first));
  EXPECT_GT(first.sort_seconds, 0.0);

  // Solve once with a persistent scratch dir to keep the sorted artifact,
  // then feed that artifact back: its header flag must suppress the sort.
  SolverOptions keep;
  keep.scratch_dir = scratch_.path();
  Solver solver2(keep);
  SolveResult res2;
  ASSERT_OK(solver2.SolveFile(path, &res2));
  SolveResult res3;
  ASSERT_OK(solver2.SolveFile(scratch_.path() + "/sorted.sadj", &res3));
  EXPECT_EQ(res3.sort_seconds, 0.0);  // header says degree-sorted
  EXPECT_EQ(res3.set_size, res2.set_size);
}

TEST_F(SolverTest, SolveGraphConvenience) {
  Graph g = GenerateErdosRenyi(500, 1500, 12);
  Solver solver(SolverOptions{});
  SolveResult res;
  ASSERT_OK(solver.SolveGraph(g, &res));
  VerifyResult vr = VerifyIndependentSet(g, res.set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
}

TEST_F(SolverTest, MissingFileSurfacesError) {
  Solver solver(SolverOptions{});
  SolveResult res;
  Status s = solver.SolveFile(NewPath("nope"), &res);
  EXPECT_FALSE(s.ok());
}

TEST_F(SolverTest, EarlyStopOptionPropagates) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(10000, 1.9), 13);
  std::string path = WriteGraphFile(&scratch_, g);
  SolverOptions opts;
  opts.max_swap_rounds = 1;
  Solver solver(opts);
  SolveResult res;
  ASSERT_OK(solver.SolveFile(path, &res));
  EXPECT_LE(res.swap.rounds, 1u);
}

TEST_F(SolverTest, AggregatedIoCoversAllStages) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 14);
  std::string path = WriteGraphFile(&scratch_, g);
  Solver solver(SolverOptions{});
  SolveResult res;
  ASSERT_OK(solver.SolveFile(path, &res));
  EXPECT_GE(res.io.sequential_scans,
            res.greedy.io.sequential_scans + res.swap.io.sequential_scans);
  EXPECT_GT(res.io.bytes_read, 0u);
  EXPECT_GT(res.peak_memory_bytes, 0u);
}

TEST_F(SolverTest, HeaderProbeReadIsAccounted) {
  // The degree-sort header probe must charge its I/O to the aggregate:
  // on an already-sorted input (no sort stage) the aggregate still
  // exceeds the algorithm stages by the probe's header bytes.
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(3000, 2.0), 15);
  std::string path = WriteGraphFile(&scratch_, g);
  SolverOptions keep;
  keep.scratch_dir = scratch_.path();
  Solver solver(keep);
  SolveResult first;
  ASSERT_OK(solver.SolveFile(path, &first));
  SolveResult res;
  ASSERT_OK(solver.SolveFile(scratch_.path() + "/sorted.sadj", &res));
  ASSERT_EQ(res.sort_seconds, 0.0);  // presorted: probe only, no sort
  EXPECT_GE(res.io.bytes_read,
            res.greedy.io.bytes_read + res.swap.io.bytes_read + 32);
  EXPECT_GE(res.io.files_opened,
            res.greedy.io.files_opened + res.swap.io.files_opened + 1);
}

TEST_F(SolverTest, PeakMemoryIncludesSortStage) {
  // Dense-ish graph: the sort's run buffer (~payload bytes) dwarfs the
  // O(|V|) state arrays of greedy and the swaps, so a peak that ignores
  // the sort stage would be several times smaller.
  Graph g = GenerateErdosRenyi(2000, 40000, 16);
  std::string path = WriteGraphFile(&scratch_, g);
  Solver solver(SolverOptions{});
  SolveResult res;
  ASSERT_OK(solver.SolveFile(path, &res));
  EXPECT_GT(res.sort_seconds, 0.0);
  EXPECT_GT(res.peak_memory_bytes,
            std::max(res.greedy.peak_memory_bytes,
                     res.swap.peak_memory_bytes));
}

}  // namespace
}  // namespace semis
