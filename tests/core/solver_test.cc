#include "core/solver.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/verify.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "graph/sharded_adjacency_file.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

class SolverTest : public ScratchTest {};

TEST_F(SolverTest, FullPipelineOnPowerLawGraph) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.0), 8);
  std::string path = WriteGraphFile(&scratch_, g);
  SolverOptions opts;
  opts.verify = true;  // paranoid self-check must pass
  Solver solver(opts);
  SolveResult res;
  ASSERT_OK(solver.SolveFile(path, &res));
  EXPECT_GT(res.set_size, 0u);
  EXPECT_EQ(res.set.Count(), res.set_size);
  EXPECT_GE(res.set_size, res.greedy.set_size);
  EXPECT_GT(res.sort_seconds, 0.0);  // input was unsorted
  VerifyResult vr = VerifyIndependentSet(g, res.set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
}

TEST_F(SolverTest, SwapModesOrdering) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(10000, 2.0), 9);
  std::string path = WriteGraphFile(&scratch_, g);
  auto run = [&](SwapMode mode) {
    SolverOptions opts;
    opts.swap = mode;
    Solver solver(opts);
    SolveResult res;
    Status s = solver.SolveFile(path, &res);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return res.set_size;
  };
  uint64_t none = run(SwapMode::kNone);
  uint64_t one_k = run(SwapMode::kOneK);
  uint64_t two_k = run(SwapMode::kTwoK);
  EXPECT_GE(one_k, none);
  EXPECT_GE(two_k, none);
  // two-k subsumes one-k swaps; allow 1% noise from order effects.
  EXPECT_GE(two_k + two_k / 100, one_k);
}

TEST_F(SolverTest, BaselineModeSkipsSorting) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 10);
  std::string path = WriteGraphFile(&scratch_, g);
  SolverOptions opts;
  opts.degree_sort = false;
  opts.swap = SwapMode::kNone;
  Solver solver(opts);
  SolveResult res;
  ASSERT_OK(solver.SolveFile(path, &res));
  EXPECT_EQ(res.sort_seconds, 0.0);
  EXPECT_EQ(res.io.sort_passes, 0u);
}

TEST_F(SolverTest, AlreadySortedInputNotResorted) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 11);
  std::string path = WriteGraphFile(&scratch_, g);
  SolverOptions opts;
  Solver solver(opts);
  SolveResult first;
  ASSERT_OK(solver.SolveFile(path, &first));
  EXPECT_GT(first.sort_seconds, 0.0);

  // Solve once with a persistent scratch dir to keep the sorted artifact,
  // then feed that artifact back: its header flag must suppress the sort.
  SolverOptions keep;
  keep.scratch_dir = scratch_.path();
  Solver solver2(keep);
  SolveResult res2;
  ASSERT_OK(solver2.SolveFile(path, &res2));
  SolveResult res3;
  ASSERT_OK(solver2.SolveFile(scratch_.path() + "/sorted.sadj", &res3));
  EXPECT_EQ(res3.sort_seconds, 0.0);  // header says degree-sorted
  EXPECT_EQ(res3.set_size, res2.set_size);
}

TEST_F(SolverTest, SolveGraphConvenience) {
  Graph g = GenerateErdosRenyi(500, 1500, 12);
  Solver solver(SolverOptions{});
  SolveResult res;
  ASSERT_OK(solver.SolveGraph(g, &res));
  VerifyResult vr = VerifyIndependentSet(g, res.set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
}

TEST_F(SolverTest, MissingFileSurfacesError) {
  Solver solver(SolverOptions{});
  SolveResult res;
  Status s = solver.SolveFile(NewPath("nope"), &res);
  EXPECT_FALSE(s.ok());
}

TEST_F(SolverTest, EarlyStopOptionPropagates) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(10000, 1.9), 13);
  std::string path = WriteGraphFile(&scratch_, g);
  SolverOptions opts;
  opts.max_swap_rounds = 1;
  Solver solver(opts);
  SolveResult res;
  ASSERT_OK(solver.SolveFile(path, &res));
  EXPECT_LE(res.swap.rounds, 1u);
}

TEST_F(SolverTest, AggregatedIoCoversAllStages) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 14);
  std::string path = WriteGraphFile(&scratch_, g);
  Solver solver(SolverOptions{});
  SolveResult res;
  ASSERT_OK(solver.SolveFile(path, &res));
  EXPECT_GE(res.io.sequential_scans,
            res.greedy.io.sequential_scans + res.swap.io.sequential_scans);
  EXPECT_GT(res.io.bytes_read, 0u);
  EXPECT_GT(res.peak_memory_bytes, 0u);
}

TEST_F(SolverTest, HeaderProbeReadIsAccounted) {
  // The degree-sort header probe must charge its I/O to the aggregate:
  // on an already-sorted input (no sort stage) the aggregate still
  // exceeds the algorithm stages by the probe's header bytes.
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(3000, 2.0), 15);
  std::string path = WriteGraphFile(&scratch_, g);
  SolverOptions keep;
  keep.scratch_dir = scratch_.path();
  Solver solver(keep);
  SolveResult first;
  ASSERT_OK(solver.SolveFile(path, &first));
  SolveResult res;
  ASSERT_OK(solver.SolveFile(scratch_.path() + "/sorted.sadj", &res));
  ASSERT_EQ(res.sort_seconds, 0.0);  // presorted: probe only, no sort
  EXPECT_GE(res.io.bytes_read,
            res.greedy.io.bytes_read + res.swap.io.bytes_read + 32);
  EXPECT_GE(res.io.files_opened,
            res.greedy.io.files_opened + res.swap.io.files_opened + 1);
}

TEST_F(SolverTest, ShardedGreedySolveMatchesSequentialSolve) {
  // With SwapMode::kNone the sharded pipeline is GREEDY alone, whose
  // commit order equals the monolithic scan order -- so the sharded,
  // multi-threaded solve must reproduce the plain sequential solve's
  // in_set bit for bit.
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(12000, 2.0), 17);
  std::string path = WriteGraphFile(&scratch_, g);
  SolverOptions seq_opts;
  seq_opts.swap = SwapMode::kNone;
  Solver seq(seq_opts);
  SolveResult seq_res;
  ASSERT_OK(seq.SolveFile(path, &seq_res));

  for (uint32_t shards : {3u, 5u}) {
    for (uint32_t threads : {1u, 2u, 4u}) {
      SolverOptions opts = seq_opts;
      opts.pipeline.num_shards = shards;
      opts.pipeline.num_threads = threads;
      Solver solver(opts);
      SolveResult res;
      ASSERT_OK(solver.SolveFile(path, &res));
      EXPECT_EQ(testing_util::SetToVector(res.set),
                testing_util::SetToVector(seq_res.set))
          << shards << " shards, " << threads << " threads";
      EXPECT_GT(res.shard_seconds, 0.0);
    }
  }
}

TEST_F(SolverTest, ShardedFullPipelineDeterministicAcrossThreads) {
  // greedy -> two-k over shards: the full pipeline result may differ from
  // the monolithic swap (conflict resolution is by vertex id there), but
  // it must be byte-identical across thread counts and verify maximal.
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(12000, 2.0), 18);
  std::string path = WriteGraphFile(&scratch_, g);
  SolverOptions opts;
  opts.pipeline.num_shards = 4;
  opts.pipeline.num_threads = 1;
  opts.verify = true;
  Solver solver1(opts);
  SolveResult res1;
  ASSERT_OK(solver1.SolveFile(path, &res1));
  EXPECT_GE(res1.set_size, res1.greedy.set_size);

  for (uint32_t threads : {2u, 8u}) {
    SolverOptions optsN = opts;
    optsN.pipeline.num_threads = threads;
    Solver solverN(optsN);
    SolveResult resN;
    ASSERT_OK(solverN.SolveFile(path, &resN));
    EXPECT_EQ(testing_util::SetToVector(resN.set),
              testing_util::SetToVector(res1.set))
        << threads << " threads";
  }
}

TEST_F(SolverTest, SolveShardedFileMatchesShardedSolveFile) {
  // SolveShardedFile consumes an existing SADJS manifest directly and
  // must reproduce the SolveFile sharded pipeline on the same shards,
  // thread for thread -- it is the re-solve entry point of the streaming
  // update path (e.g. after a compaction).
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(9000, 2.0), 23);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string sorted = NewPath("sorted.sadj");
  ASSERT_OK(BuildDegreeSortedAdjacencyFile(mono, sorted,
                                           DegreeSortOptions{}));
  std::string manifest = NewPath("sharded.sadjs");
  ASSERT_OK(ShardAdjacencyFile(sorted, manifest, 4));

  SolverOptions opts;
  opts.pipeline.num_shards = 4;
  opts.pipeline.num_threads = 2;
  opts.verify = true;
  Solver ref_solver(opts);
  SolveResult ref;
  ASSERT_OK(ref_solver.SolveFile(mono, &ref));

  SolveResult direct;
  ASSERT_OK(ref_solver.SolveShardedFile(manifest, &direct));
  EXPECT_EQ(testing_util::SetToVector(direct.set),
            testing_util::SetToVector(ref.set));
  EXPECT_EQ(direct.set_size, ref.set_size);
  EXPECT_GT(direct.io.bytes_read, 0u);

  // degree_sort demands the sorted flag on sharded input (shards cannot
  // be sorted in place)...
  std::string unsorted_manifest = NewPath("unsorted.sadjs");
  ASSERT_OK(ShardAdjacencyFile(mono, unsorted_manifest, 4));
  SolveResult rejected;
  EXPECT_TRUE(ref_solver.SolveShardedFile(unsorted_manifest, &rejected)
                  .IsInvalidArgument());
  // ...while degree_sort = false consumes the records as-is.
  SolverOptions baseline = opts;
  baseline.degree_sort = false;
  Solver baseline_solver(baseline);
  ASSERT_OK(baseline_solver.SolveShardedFile(unsorted_manifest, &rejected));
  EXPECT_GT(rejected.set_size, 0u);
}

TEST_F(SolverTest, ShardedGreedyCountersFoldIntoSolveResult) {
  // The sharded greedy stage's I/O and peak memory must aggregate into
  // SolveResult exactly like the sequential stage's counters do.
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(8000, 2.0), 19);
  std::string path = WriteGraphFile(&scratch_, g);
  SolverOptions opts;
  opts.pipeline.num_shards = 4;
  opts.pipeline.num_threads = 3;
  Solver solver(opts);
  SolveResult res;
  ASSERT_OK(solver.SolveFile(path, &res));
  EXPECT_GT(res.greedy.io.bytes_read, 0u);
  EXPECT_EQ(res.greedy.io.sequential_scans, 1u);
  EXPECT_GE(res.io.sequential_scans,
            res.greedy.io.sequential_scans + res.swap.io.sequential_scans);
  EXPECT_GE(res.io.bytes_read,
            res.greedy.io.bytes_read + res.swap.io.bytes_read);
  EXPECT_GE(res.peak_memory_bytes, res.greedy.peak_memory_bytes);
  // state array + pipeline shard buffers
  EXPECT_GT(res.greedy.peak_memory_bytes, g.NumVertices());
}

TEST_F(SolverTest, PeakMemoryIncludesSortStage) {
  // Dense-ish graph: the sort's run buffer (~payload bytes) dwarfs the
  // O(|V|) state arrays of greedy and the swaps, so a peak that ignores
  // the sort stage would be several times smaller.
  Graph g = GenerateErdosRenyi(2000, 40000, 16);
  std::string path = WriteGraphFile(&scratch_, g);
  Solver solver(SolverOptions{});
  SolveResult res;
  ASSERT_OK(solver.SolveFile(path, &res));
  EXPECT_GT(res.sort_seconds, 0.0);
  EXPECT_GT(res.peak_memory_bytes,
            std::max(res.greedy.peak_memory_bytes,
                     res.swap.peak_memory_bytes));
}

}  // namespace
}  // namespace semis
