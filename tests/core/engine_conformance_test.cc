// Copyright (c) the semis authors.
// Cross-engine conformance: every solve engine, present and future,
// registers in ONE table here and is held to the same contract over the
// same corpus -- the output is an independent AND maximal set, it is
// byte-identical across 1/2/8 threads x 1/3/7 shards (threads-only for
// the swap pipelines, whose contract pins the result per shard layout),
// and the rounds engine additionally matches its sequential reference
// loop bit for bit.
// Adding an engine means adding one EngineSpec entry; every suite below
// picks it up.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/parallel_greedy.h"
#include "core/rounds_engine.h"
#include "core/solver.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/sharded_adjacency_file.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::SetToVector;
using testing_util::WriteGraphFile;

// One registered engine: a name and a runner that solves the manifest
// with the given thread count. Runners must not read any other global
// knob -- the suite's whole point is that (manifest, threads) pins the
// output.
struct EngineSpec {
  std::string name;
  // True when the output is pinned by the graph alone; false when the
  // documented contract pins it per shard layout (the swap stage's SC
  // buckets are shard-local by design, see parallel_swap.h), in which
  // case only thread-count invariance is required.
  bool shard_invariant = true;
  std::function<Status(const std::string& manifest, uint32_t threads,
                       BitVector* set)>
      run;
};

std::vector<EngineSpec> Engines() {
  std::vector<EngineSpec> engines;
  engines.push_back({"greedy", true,
                     [](const std::string& manifest,
                                  uint32_t threads, BitVector* set) {
                       ParallelGreedyOptions opts;
                       opts.pipeline.num_threads = threads;
                       AlgoResult res;
                       SEMIS_RETURN_IF_ERROR(
                           RunParallelGreedy(manifest, opts, &res));
                       *set = std::move(res.in_set);
                       return Status::OK();
                     }});
  engines.push_back({"rounds", true,
                     [](const std::string& manifest,
                                  uint32_t threads, BitVector* set) {
                       MinIdRoundsOptions opts;
                       opts.pipeline.num_threads = threads;
                       AlgoResult res;
                       SEMIS_RETURN_IF_ERROR(
                           RunMinIdRounds(manifest, opts, &res));
                       *set = std::move(res.in_set);
                       return Status::OK();
                     }});
  // The full pipelines (engine + two-k swap) through the same
  // MisEngine::RunShardPipeline wiring the CLI uses.
  for (const SolveEngine engine :
       {SolveEngine::kGreedySwap, SolveEngine::kRounds}) {
    const std::string name = engine == SolveEngine::kRounds
                                 ? "rounds+twok"
                                 : "greedy+twok";
    engines.push_back({name, false,
                       [engine](const std::string& manifest,
                                      uint32_t threads, BitVector* set) {
                         SolverOptions opts;
                         opts.degree_sort = false;  // corpus is id-ordered
                         opts.swap = SwapMode::kTwoK;
                         opts.pipeline.engine = engine;
                         opts.pipeline.num_threads = threads;
                         Solver solver(opts);
                         SolveResult res;
                         SEMIS_RETURN_IF_ERROR(
                             solver.SolveShardedFile(manifest, &res));
                         *set = std::move(res.set);
                         return Status::OK();
                       }});
  }
  return engines;
}

// The shared corpus: the generator families the repo benchmarks plus the
// gadgets that historically break scan logic (hub fan-out, all-mutual
// conflicts, long dependency chains, nothing at all).
struct Gadget {
  std::string name;
  Graph graph;
};

std::vector<Gadget> Corpus() {
  std::vector<Gadget> corpus;
  corpus.push_back({"er", GenerateErdosRenyi(3000, 9000, 7)});
  corpus.push_back(
      {"plrg", GeneratePlrg(PlrgSpec::ForVertexCount(3000, 2.2), 11)});
  corpus.push_back({"star", GenerateStar(64)});
  corpus.push_back({"clique", GenerateComplete(24)});
  corpus.push_back({"path", GeneratePath(97)});
  corpus.push_back({"empty", Graph::FromEdges(0, {})});
  corpus.push_back({"single", Graph::FromEdges(1, {})});
  return corpus;
}

class EngineConformanceTest : public ScratchTest {
 protected:
  std::string Shard(const std::string& mono, uint32_t num_shards,
                    const std::string& tag) {
    std::string manifest = NewPath(tag + std::to_string(num_shards));
    Status s = ShardAdjacencyFile(mono, manifest, num_shards);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return manifest;
  }
};

// Contract 1: every engine emits an independent and maximal set on every
// corpus graph.
TEST_F(EngineConformanceTest, EveryEngineIndependentAndMaximal) {
  for (const Gadget& gadget : Corpus()) {
    std::string manifest =
        Shard(WriteGraphFile(&scratch_, gadget.graph), 2, gadget.name);
    for (const EngineSpec& engine : Engines()) {
      BitVector set;
      ASSERT_OK(engine.run(manifest, 4, &set));
      VerifyResult vr = VerifyIndependentSet(gadget.graph, set);
      EXPECT_TRUE(vr.independent) << engine.name << " on " << gadget.name;
      EXPECT_TRUE(vr.maximal) << engine.name << " on " << gadget.name;
    }
  }
}

// Contract 2: every engine is byte-identical at every thread count, and
// shard-invariant engines additionally at every shard count (anchor: the
// 1-shard/1-thread run). Engines flagged !shard_invariant (the swap
// pipelines, whose SC buckets are shard-local by documented design) are
// anchored per shard layout instead.
TEST_F(EngineConformanceTest, ByteIdenticalAcrossShardAndThreadCounts) {
  for (const Gadget& gadget : Corpus()) {
    std::string mono = WriteGraphFile(&scratch_, gadget.graph);
    for (const EngineSpec& engine : Engines()) {
      BitVector global_reference;
      ASSERT_OK(engine.run(Shard(mono, 1, gadget.name + engine.name), 1,
                           &global_reference));
      for (uint32_t shards : {1u, 3u, 7u}) {
        std::string manifest =
            Shard(mono, shards, gadget.name + engine.name);
        BitVector reference;
        if (engine.shard_invariant) {
          reference = global_reference;
        } else {
          ASSERT_OK(engine.run(manifest, 1, &reference));
        }
        for (uint32_t threads : {1u, 2u, 8u}) {
          BitVector set;
          ASSERT_OK(engine.run(manifest, threads, &set));
          EXPECT_EQ(SetToVector(set), SetToVector(reference))
              << engine.name << " on " << gadget.name << " at " << shards
              << " shards, " << threads << " threads";
        }
      }
    }
  }
}

// Contract 3 (rounds only): the parallel executor reproduces the
// sequential reference loop exactly -- the set, the final state array,
// the round count, and every per-round winner/frontier counter.
TEST_F(EngineConformanceTest, RoundsMatchSequentialReference) {
  for (const Gadget& gadget : Corpus()) {
    std::string mono = WriteGraphFile(&scratch_, gadget.graph);
    AlgoResult ref;
    std::vector<VState> ref_states;
    ASSERT_OK(RunMinIdRoundsReference(Shard(mono, 3, gadget.name), {}, &ref,
                                      &ref_states));
    for (uint32_t shards : {1u, 3u, 7u}) {
      std::string manifest = Shard(mono, shards, gadget.name + "r");
      for (uint32_t threads : {1u, 2u, 8u}) {
        MinIdRoundsOptions opts;
        opts.pipeline.num_threads = threads;
        AlgoResult res;
        std::vector<VState> states;
        ASSERT_OK(RunMinIdRoundsWithStates(manifest, opts, &res, &states));
        EXPECT_EQ(SetToVector(res.in_set), SetToVector(ref.in_set))
            << gadget.name << " at " << shards << "/" << threads;
        EXPECT_EQ(res.set_size, ref.set_size) << gadget.name;
        EXPECT_EQ(states, ref_states)
            << gadget.name << " state array at " << shards << "/" << threads;
        ASSERT_EQ(res.rounds, ref.rounds)
            << gadget.name << " at " << shards << "/" << threads;
        for (size_t r = 0; r < res.round_stats.size(); ++r) {
          EXPECT_EQ(res.round_stats[r].new_is_vertices,
                    ref.round_stats[r].new_is_vertices)
              << gadget.name << " round " << r;
          EXPECT_EQ(res.round_stats[r].is_size_after,
                    ref.round_stats[r].is_size_after)
              << gadget.name << " round " << r;
          EXPECT_EQ(res.round_stats[r].frontier_after,
                    ref.round_stats[r].frontier_after)
              << gadget.name << " round " << r;
        }
      }
    }
  }
}

}  // namespace
}  // namespace semis
