#include "core/parallel_greedy.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/greedy.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "graph/sharded_adjacency_file.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::SetToVector;
using testing_util::WriteGraphFile;

class ParallelGreedyTest : public ScratchTest {
 protected:
  // Shards `mono` into `num_shards` and returns the manifest path.
  std::string Shard(const std::string& mono, uint32_t num_shards) {
    std::string manifest =
        NewPath("sharded" + std::to_string(num_shards));
    Status s = ShardAdjacencyFile(mono, manifest, num_shards);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return manifest;
  }

  // Degree-sorts `mono` and returns the sorted path.
  std::string Sort(const std::string& mono) {
    std::string sorted = NewPath("sorted");
    Status s = BuildDegreeSortedAdjacencyFile(mono, sorted,
                                              DegreeSortOptions{});
    EXPECT_TRUE(s.ok()) << s.ToString();
    return sorted;
  }
};

// The acceptance contract: for every shard/thread combination the sharded
// executor reproduces sequential RunGreedy byte for byte -- both the set
// and the full state array.
TEST_F(ParallelGreedyTest, ByteIdenticalAcrossShardAndThreadCounts) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.0), 41);
  std::string sorted = Sort(WriteGraphFile(&scratch_, g));

  AlgoResult ref;
  std::vector<VState> ref_states;
  ASSERT_OK(RunGreedyWithStates(sorted, {}, &ref, &ref_states));

  for (uint32_t shards : {1u, 3u, 7u}) {
    std::string manifest = Shard(sorted, shards);
    for (uint32_t threads : {1u, 2u, 8u}) {
      ParallelGreedyOptions opts;
      opts.pipeline.num_threads = threads;
      AlgoResult res;
      std::vector<VState> states;
      ASSERT_OK(
          RunParallelGreedyWithStates(manifest, opts, &res, &states));
      EXPECT_EQ(res.set_size, ref.set_size)
          << shards << " shards, " << threads << " threads";
      EXPECT_EQ(SetToVector(res.in_set), SetToVector(ref.in_set))
          << shards << " shards, " << threads << " threads";
      EXPECT_EQ(states, ref_states)
          << "state array differs at " << shards << " shards, " << threads
          << " threads";
    }
  }
}

// Same matrix on id-ordered (BASELINE) input: the executor must not care
// whether the global order is the degree-sorted one.
TEST_F(ParallelGreedyTest, IdOrderedBaselineInputAlsoByteIdentical) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(15000, 2.1), 42);
  std::string mono = WriteGraphFile(&scratch_, g);

  AlgoResult ref;
  ASSERT_OK(RunGreedy(mono, {}, &ref));

  for (uint32_t shards : {1u, 3u, 7u}) {
    std::string manifest = Shard(mono, shards);
    for (uint32_t threads : {1u, 2u, 8u}) {
      ParallelGreedyOptions opts;
      opts.pipeline.num_threads = threads;
      AlgoResult res;
      ASSERT_OK(RunParallelGreedy(manifest, opts, &res));
      EXPECT_EQ(SetToVector(res.in_set), SetToVector(ref.in_set))
          << shards << " shards, " << threads << " threads";
    }
  }
}

TEST_F(ParallelGreedyTest, ResultIsMaximalIndependentSet) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(10000, 2.0), 43);
  std::string manifest = Shard(Sort(WriteGraphFile(&scratch_, g)), 5);
  ParallelGreedyOptions opts;
  opts.pipeline.num_threads = 4;
  AlgoResult res;
  ASSERT_OK(RunParallelGreedy(manifest, opts, &res));
  VerifyResult vr = VerifyIndependentSet(g, res.in_set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
  EXPECT_EQ(res.in_set.Count(), res.set_size);
}

TEST_F(ParallelGreedyTest, EmptyGraph) {
  Graph g = Graph::FromEdges(0, {});
  std::string manifest = Shard(WriteGraphFile(&scratch_, g), 3);
  for (uint32_t threads : {1u, 2u, 8u}) {
    ParallelGreedyOptions opts;
    opts.pipeline.num_threads = threads;
    AlgoResult res;
    ASSERT_OK(RunParallelGreedy(manifest, opts, &res));
    EXPECT_EQ(res.set_size, 0u) << threads << " threads";
  }
}

TEST_F(ParallelGreedyTest, SingleShardManifest) {
  Graph g = GenerateErdosRenyi(2000, 6000, 44);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = Shard(mono, 1);
  AlgoResult ref;
  ASSERT_OK(RunGreedy(mono, {}, &ref));
  for (uint32_t threads : {1u, 4u}) {
    ParallelGreedyOptions opts;
    opts.pipeline.num_threads = threads;
    AlgoResult res;
    ASSERT_OK(RunParallelGreedy(manifest, opts, &res));
    EXPECT_EQ(SetToVector(res.in_set), SetToVector(ref.in_set)) << threads;
  }
}

// The bugfix satellite: require_degree_sorted must reject an unsorted
// SADJS manifest on both the sequential and the pipelined path, with the
// same error text as the monolithic reader.
TEST_F(ParallelGreedyTest, RequireDegreeSortedEnforcedOnShardedPath) {
  Graph g = GenerateStar(50);
  std::string manifest = Shard(WriteGraphFile(&scratch_, g), 3);
  for (uint32_t threads : {1u, 4u}) {
    ParallelGreedyOptions opts;
    opts.pipeline.num_threads = threads;
    opts.greedy.require_degree_sorted = true;
    AlgoResult res;
    Status s = RunParallelGreedy(manifest, opts, &res);
    EXPECT_TRUE(s.IsInvalidArgument()) << threads << " threads";
    EXPECT_NE(s.ToString().find(
                  "greedy requires a degree-sorted adjacency file: "),
              std::string::npos)
        << s.ToString();
  }
  // A sorted manifest passes the same check.
  Graph g2 = GeneratePlrg(PlrgSpec::ForVertexCount(2000, 2.0), 45);
  std::string sorted_manifest = Shard(Sort(WriteGraphFile(&scratch_, g2)), 3);
  ParallelGreedyOptions opts;
  opts.pipeline.num_threads = 2;
  opts.greedy.require_degree_sorted = true;
  AlgoResult res;
  EXPECT_OK(RunParallelGreedy(sorted_manifest, opts, &res));
}

TEST_F(ParallelGreedyTest, IoAndMemoryCountersFold) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(10000, 2.0), 46);
  std::string manifest = Shard(Sort(WriteGraphFile(&scratch_, g)), 4);
  ParallelGreedyOptions opts;
  opts.pipeline.num_threads = 3;
  AlgoResult res;
  ASSERT_OK(RunParallelGreedy(manifest, opts, &res));
  // One logical scan of the graph, all shard bytes charged.
  EXPECT_EQ(res.io.sequential_scans, 1u);
  EXPECT_GT(res.io.bytes_read, 0u);
  EXPECT_GE(res.io.files_opened, 4u);  // manifest + at least the shards
  const uint64_t n = g.NumVertices();
  EXPECT_EQ(res.memory.CategoryBytes("state"), n);
  EXPECT_GT(res.memory.CategoryPeakBytes("shard-buffers"), 0u);
  EXPECT_GT(res.peak_memory_bytes, n);  // state + pipeline buffers
}

// A tight prefetch window must still drain every shard (no deadlock when
// workers outnumber the buffer slots).
TEST_F(ParallelGreedyTest, TightBufferWindowStillComplete) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(8000, 2.0), 47);
  std::string mono = WriteGraphFile(&scratch_, g);
  std::string manifest = Shard(mono, 7);
  AlgoResult ref;
  ASSERT_OK(RunGreedy(mono, {}, &ref));
  ParallelGreedyOptions opts;
  opts.pipeline.num_threads = 8;
  opts.pipeline.max_buffered_bytes = 1;
  AlgoResult res;
  ASSERT_OK(RunParallelGreedy(manifest, opts, &res));
  EXPECT_EQ(SetToVector(res.in_set), SetToVector(ref.in_set));
}

// The block path's degenerate geometries: a block smaller than one
// record's neighbor list, a single-block ring, and a tiny block with a
// huge budget must all stay byte-identical to the sequential reference.
TEST_F(ParallelGreedyTest, BlockGeometrySweepStaysByteIdentical) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(6000, 2.0), 48);
  std::string sorted = Sort(WriteGraphFile(&scratch_, g));
  std::string manifest = Shard(sorted, 5);
  AlgoResult ref;
  std::vector<VState> ref_states;
  ASSERT_OK(RunGreedyWithStates(sorted, {}, &ref, &ref_states));
  struct Geometry {
    size_t block_bytes;
    size_t max_buffered_bytes;
  };
  for (const Geometry& geo : {Geometry{8, 1}, Geometry{8, 1 << 20},
                              Geometry{4096, 4096}, Geometry{1 << 20, 64}}) {
    for (uint32_t threads : {2u, 8u}) {
      ParallelGreedyOptions opts;
      opts.pipeline.num_threads = threads;
      opts.pipeline.decode_block_bytes = geo.block_bytes;
      opts.pipeline.max_buffered_bytes = geo.max_buffered_bytes;
      AlgoResult res;
      std::vector<VState> states;
      ASSERT_OK(RunParallelGreedyWithStates(manifest, opts, &res, &states));
      EXPECT_EQ(states, ref_states)
          << "block=" << geo.block_bytes << " budget="
          << geo.max_buffered_bytes << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace semis
