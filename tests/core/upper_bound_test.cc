#include "core/upper_bound.h"

#include <gtest/gtest.h>

#include "baselines/exact.h"
#include "gen/generators.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::BruteForceAlpha;
using testing_util::ScratchTest;
using testing_util::WriteGraphFile;

TEST(UpperBoundTest, KnownFamilies) {
  // Star: one star covers everything; bound = n-1 = alpha.
  EXPECT_EQ(ComputeIndependenceUpperBound(GenerateStar(10)), 9u);
  // Edgeless: every vertex its own star, bound = n.
  EXPECT_EQ(ComputeIndependenceUpperBound(Graph::FromEdges(6, {})), 6u);
  // Triangles: each triangle is one star with 2 leaves; alpha = k, bound = 2k.
  EXPECT_EQ(ComputeIndependenceUpperBound(GenerateTriangles(5)), 10u);
  // Complete graph: one star with n-1 leaves; alpha = 1, bound = n-1.
  EXPECT_EQ(ComputeIndependenceUpperBound(GenerateComplete(8)), 7u);
}

TEST(UpperBoundTest, NeverBelowExactAlpha) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Graph g = GenerateErdosRenyi(18, 30 + seed, seed);
    ExactResult exact;
    ASSERT_OK(ExactMaxIndependentSet(g, &exact));
    uint64_t bound = ComputeIndependenceUpperBound(g);
    EXPECT_GE(bound, exact.alpha) << "seed " << seed;
    EXPECT_LE(bound, g.NumVertices());
  }
}

TEST(UpperBoundTest, BoundAtMostVertexCount) {
  Graph g = GenerateErdosRenyi(200, 50, 3);  // sparse: many isolated
  uint64_t bound = ComputeIndependenceUpperBound(g);
  EXPECT_LE(bound, 200u);
  EXPECT_GE(bound, 150u);  // at least the isolated vertices
}

class UpperBoundFileTest : public ScratchTest {};

TEST_F(UpperBoundFileTest, FileVariantMatchesScanOrderSemantics) {
  // On an id-ordered file the scan order differs from the in-memory
  // degree-ordered variant, so bounds may differ slightly -- but both
  // must remain upper bounds.
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = GenerateErdosRenyi(16, 28, seed);
    std::string path = WriteGraphFile(&scratch_, g);
    uint64_t file_bound = 0;
    ASSERT_OK(ComputeIndependenceUpperBoundFile(path, &file_bound));
    EXPECT_GE(file_bound, BruteForceAlpha(g));
  }
}

TEST_F(UpperBoundFileTest, OneScanOnly) {
  Graph g = GenerateErdosRenyi(500, 1500, 1);
  std::string path = WriteGraphFile(&scratch_, g);
  IoStats stats;
  uint64_t bound = 0;
  ASSERT_OK(ComputeIndependenceUpperBoundFile(path, &bound, &stats));
  EXPECT_EQ(stats.sequential_scans, 1u);
}

TEST(UpperBoundTest, EmptyGraph) {
  EXPECT_EQ(ComputeIndependenceUpperBound(Graph::FromEdges(0, {})), 0u);
}

}  // namespace
}  // namespace semis
