#include "core/parallel_swap.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/greedy.h"
#include "core/solver.h"
#include "core/two_k_swap.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "gen/plrg.h"
#include "graph/degree_sort.h"
#include "graph/sharded_adjacency_file.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::ScratchTest;
using testing_util::SetToVector;
using testing_util::WriteGraphFile;

class ParallelSwapTest : public ScratchTest {
 protected:
  // Writes `g` degree-sorted, shards it, and runs greedy for the initial
  // set. Returns the manifest path.
  std::string Prepare(const Graph& g, uint32_t num_shards) {
    std::string mono = WriteGraphFile(&scratch_, g);
    std::string sorted = NewPath("sorted");
    Status s = BuildDegreeSortedAdjacencyFile(mono, sorted,
                                              DegreeSortOptions{});
    EXPECT_TRUE(s.ok()) << s.ToString();
    std::string manifest = NewPath("sharded");
    s = ShardAdjacencyFile(sorted, manifest, num_shards);
    EXPECT_TRUE(s.ok()) << s.ToString();
    s = RunGreedy(sorted, GreedyOptions{}, &greedy_);
    EXPECT_TRUE(s.ok()) << s.ToString();
    sorted_path_ = sorted;
    return manifest;
  }

  AlgoResult greedy_;
  std::string sorted_path_;
};

TEST_F(ParallelSwapTest, ByteIdenticalAcrossThreadCounts) {
  // The acceptance contract of the parallel executor: the independent set
  // is byte-identical to the sequential path (num_threads == 1) at every
  // thread count, on a non-trivial power-law graph.
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(30000, 2.0), 31);
  std::string manifest = Prepare(g, 8);

  AlgoResult sequential;
  ParallelSwapOptions opts;
  opts.num_threads = 1;
  ASSERT_OK(RunParallelSwap(manifest, greedy_.in_set, opts, &sequential));
  EXPECT_GE(sequential.set_size, greedy_.set_size);

  for (uint32_t threads : {2u, 8u}) {
    AlgoResult parallel;
    ParallelSwapOptions popts;
    popts.num_threads = threads;
    ASSERT_OK(RunParallelSwap(manifest, greedy_.in_set, popts, &parallel));
    EXPECT_EQ(parallel.set_size, sequential.set_size) << threads;
    EXPECT_EQ(SetToVector(parallel.in_set), SetToVector(sequential.in_set))
        << "result depends on thread count at " << threads << " threads";
    EXPECT_EQ(parallel.rounds, sequential.rounds) << threads;
  }
}

TEST_F(ParallelSwapTest, ResultIsIndependentAndMaximal) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.2), 32);
  std::string manifest = Prepare(g, 6);
  AlgoResult res;
  ParallelSwapOptions opts;
  opts.num_threads = 4;
  ASSERT_OK(RunParallelSwap(manifest, greedy_.in_set, opts, &res));
  VerifyResult vr = VerifyIndependentSet(g, res.in_set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
  EXPECT_EQ(res.in_set.Count(), res.set_size);
}

TEST_F(ParallelSwapTest, ImprovesOnGreedyLikeSequentialTwoK) {
  // The parallel executor resolves conflicts differently from the
  // monolithic two-k-swap, but it must land in the same quality band.
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.0), 33);
  std::string manifest = Prepare(g, 6);

  AlgoResult parallel;
  ParallelSwapOptions opts;
  opts.num_threads = 2;
  ASSERT_OK(RunParallelSwap(manifest, greedy_.in_set, opts, &parallel));

  AlgoResult twok;
  ASSERT_OK(
      RunTwoKSwap(sorted_path_, greedy_.in_set, TwoKSwapOptions{}, &twok));

  EXPECT_GT(parallel.set_size, greedy_.set_size);
  // Within 1% of the sequential two-k result.
  EXPECT_GE(parallel.set_size + twok.set_size / 100, twok.set_size);
}

TEST_F(ParallelSwapTest, OneKModeAlsoDeterministic) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(15000, 2.1), 34);
  std::string manifest = Prepare(g, 5);
  AlgoResult base;
  ParallelSwapOptions opts;
  opts.enable_two_k = false;
  opts.num_threads = 1;
  ASSERT_OK(RunParallelSwap(manifest, greedy_.in_set, opts, &base));
  ParallelSwapOptions opts4 = opts;
  opts4.num_threads = 4;
  AlgoResult res4;
  ASSERT_OK(RunParallelSwap(manifest, greedy_.in_set, opts4, &res4));
  EXPECT_EQ(SetToVector(res4.in_set), SetToVector(base.in_set));
  VerifyResult vr = VerifyIndependentSet(g, base.in_set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
}

TEST_F(ParallelSwapTest, MaxRoundsRespected) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(10000, 2.0), 35);
  std::string manifest = Prepare(g, 4);
  AlgoResult res;
  ParallelSwapOptions opts;
  opts.max_rounds = 1;
  opts.num_threads = 2;
  ASSERT_OK(RunParallelSwap(manifest, greedy_.in_set, opts, &res));
  EXPECT_LE(res.rounds, 1u);
}

TEST_F(ParallelSwapTest, MergesPerThreadIoIntoAggregate) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(10000, 2.0), 36);
  std::string manifest = Prepare(g, 4);
  AlgoResult res;
  ParallelSwapOptions opts;
  opts.num_threads = 3;
  ASSERT_OK(RunParallelSwap(manifest, greedy_.in_set, opts, &res));
  // Every round is five full passes over the shards plus the completion
  // loop; all of that I/O must land in the merged counters.
  EXPECT_GT(res.io.bytes_read, 0u);
  EXPECT_GE(res.io.sequential_scans, 5u * res.rounds);
  EXPECT_GT(res.io.files_opened, 0u);
  EXPECT_GT(res.peak_memory_bytes, 0u);
}

TEST_F(ParallelSwapTest, InitialSetSizeMismatchRejected) {
  Graph g = GenerateErdosRenyi(100, 200, 37);
  std::string manifest = Prepare(g, 2);
  BitVector wrong(50);
  AlgoResult res;
  EXPECT_TRUE(RunParallelSwap(manifest, wrong, ParallelSwapOptions{}, &res)
                  .IsInvalidArgument());
}

TEST_F(ParallelSwapTest, SolverIntegrationEndToEnd) {
  // SolveFile with num_shards > 1 routes the swap stage through the
  // parallel executor; the result must verify and the thread count must
  // not change it.
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(15000, 2.0), 38);
  std::string path = WriteGraphFile(&scratch_, g);
  SolverOptions opts;
  opts.pipeline.num_shards = 4;
  opts.pipeline.num_threads = 2;
  opts.verify = true;
  Solver solver(opts);
  SolveResult res;
  ASSERT_OK(solver.SolveFile(path, &res));
  EXPECT_GE(res.set_size, res.greedy.set_size);
  EXPECT_GT(res.shard_seconds, 0.0);

  SolverOptions opts1 = opts;
  opts1.pipeline.num_threads = 1;
  Solver solver1(opts1);
  SolveResult res1;
  ASSERT_OK(solver1.SolveFile(path, &res1));
  EXPECT_EQ(SetToVector(res1.set), SetToVector(res.set));
}

}  // namespace
}  // namespace semis
