#include "core/two_k_swap.h"

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/one_k_swap.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "gen/paper_figures.h"
#include "gen/plrg.h"
#include "test_util.h"

namespace semis {
namespace {

using testing_util::RandomMaximalSet;
using testing_util::ScratchTest;
using testing_util::SetToVector;
using testing_util::WriteGraphFile;
using testing_util::WriteGraphFileInOrder;

class TwoKSwapTest : public ScratchTest {};

BitVector MakeSet(size_t n, std::initializer_list<VertexId> members) {
  BitVector set(n);
  for (VertexId v : members) set.Set(v);
  return set;
}

TEST_F(TwoKSwapTest, Figure7Example3ExactTrace) {
  // Example 3: initial {v1,v2,v3}; the 2-3 skeleton (v4,v5,v6,v2,v3)
  // fires, v8 follows through the all-R rule, v7 conflicts, and the final
  // set is {v1, v4, v5, v6, v8} -- a 2<->4 swap.
  PaperExample ex = Figure7Example();
  std::string path = WriteGraphFileInOrder(&scratch_, ex.graph, ex.scan_order);
  BitVector initial = MakeSet(8, {0, 1, 2});
  AlgoResult res;
  ASSERT_OK(RunTwoKSwap(path, initial, {}, &res));
  EXPECT_EQ(res.set_size, 5u);
  EXPECT_EQ(SetToVector(res.in_set),
            (std::vector<VertexId>{0, 3, 4, 5, 7}));  // v1,v4,v5,v6,v8
  ASSERT_GE(res.round_stats.size(), 1u);
  EXPECT_EQ(res.round_stats[0].two_k_swaps, 1u);
  EXPECT_EQ(res.round_stats[0].follower_joins, 1u);  // v8
  EXPECT_EQ(res.round_stats[0].conflicts, 1u);       // v7
  EXPECT_GE(res.sc_peak_vertices, 2u);  // v4 (anchor) + singles
}

TEST_F(TwoKSwapTest, OneKStuckTwoKProceeds) {
  // K_{2,3}: initial set = the two left vertices {0,1}. No single 1-k
  // swap helps (every right vertex has BOTH left vertices as neighbors),
  // but the 2-3 swap exchanges {0,1} for the three right vertices.
  Graph g = GenerateCompleteBipartite(2, 3);
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector initial = MakeSet(5, {0, 1});

  AlgoResult one_k;
  ASSERT_OK(RunOneKSwap(path, initial, {}, &one_k));
  EXPECT_EQ(one_k.set_size, 2u);  // one-k cannot move

  AlgoResult two_k;
  ASSERT_OK(RunTwoKSwap(path, initial, {}, &two_k));
  EXPECT_EQ(two_k.set_size, 3u);
  EXPECT_EQ(SetToVector(two_k.in_set), (std::vector<VertexId>{2, 3, 4}));
}

TEST_F(TwoKSwapTest, NeverShrinksAndStaysValid) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = GenerateErdosRenyi(200, 500, seed);
    std::string path = WriteGraphFile(&scratch_, g);
    BitVector initial = RandomMaximalSet(g, seed * 13 + 5);
    AlgoResult res;
    ASSERT_OK(RunTwoKSwap(path, initial, {}, &res));
    EXPECT_GE(res.set_size, initial.Count()) << "seed " << seed;
    VerifyResult vr = VerifyIndependentSet(g, res.in_set);
    EXPECT_TRUE(vr.independent)
        << "seed " << seed << " edge " << vr.witness_u << "-" << vr.witness_v;
    EXPECT_TRUE(vr.maximal) << "seed " << seed;
  }
}

TEST_F(TwoKSwapTest, AtLeastAsGoodAsOneKAfterGreedy) {
  // Not a theorem pointwise, but on power-law graphs after greedy the
  // two-k result should not lose to one-k by more than noise -- the paper
  // reports it consistently equal or better (Table 5).
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(10000, 2.0), seed + 7);
    std::string path = WriteGraphFile(&scratch_, g);
    AlgoResult greedy;
    ASSERT_OK(RunGreedy(path, {}, &greedy));
    AlgoResult one_k, two_k;
    ASSERT_OK(RunOneKSwap(path, greedy.in_set, {}, &one_k));
    ASSERT_OK(RunTwoKSwap(path, greedy.in_set, {}, &two_k));
    EXPECT_GE(two_k.set_size + two_k.set_size / 100, one_k.set_size)
        << "seed " << seed;
    EXPECT_GE(two_k.set_size, greedy.set_size);
  }
}

TEST_F(TwoKSwapTest, ScPeakIsBoundedByLemma6) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(20000, 2.0), 31);
  std::string path = WriteGraphFile(&scratch_, g);
  AlgoResult greedy;
  ASSERT_OK(RunGreedy(path, {}, &greedy));
  AlgoResult res;
  ASSERT_OK(RunTwoKSwap(path, greedy.in_set, {}, &res));
  // Lemma 6: |SC| < |V| - (number of degree-1 vertices); empirically the
  // paper observes ~0.13 |V| (Figure 10). Assert the hard bound.
  uint64_t degree_one = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(v) == 1) degree_one++;
  }
  EXPECT_LT(res.sc_peak_vertices, g.NumVertices() - degree_one);
}

TEST_F(TwoKSwapTest, EarlyStopStillValid) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 1.9), 77);
  std::string path = WriteGraphFile(&scratch_, g);
  AlgoResult greedy;
  ASSERT_OK(RunGreedy(path, {}, &greedy));
  TwoKSwapOptions opts;
  opts.max_rounds = 1;
  AlgoResult res;
  ASSERT_OK(RunTwoKSwap(path, greedy.in_set, opts, &res));
  EXPECT_EQ(res.rounds, 1u);
  VerifyResult vr = VerifyIndependentSet(g, res.in_set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
}

TEST_F(TwoKSwapTest, PairCapDegradesGracefully) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 13);
  std::string path = WriteGraphFile(&scratch_, g);
  AlgoResult greedy;
  ASSERT_OK(RunGreedy(path, {}, &greedy));
  TwoKSwapOptions tight;
  tight.max_pairs_per_bucket = 1;
  AlgoResult res;
  ASSERT_OK(RunTwoKSwap(path, greedy.in_set, tight, &res));
  VerifyResult vr = VerifyIndependentSet(g, res.in_set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
  EXPECT_GE(res.set_size, greedy.set_size);
}

TEST_F(TwoKSwapTest, MemoryStaysNearFourWordsPerVertex) {
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(50000, 2.0), 6);
  std::string path = WriteGraphFile(&scratch_, g);
  AlgoResult greedy;
  ASSERT_OK(RunGreedy(path, {}, &greedy));
  AlgoResult res;
  ASSERT_OK(RunTwoKSwap(path, greedy.in_set, {}, &res));
  // state (1B) + two ISN words (8B) + stamp (4B) + SC; the paper bounds
  // the whole footprint by ~4 words/vertex. Our accounting also charges
  // hash-map node overhead for SC, so allow 32B/vertex.
  EXPECT_LT(res.peak_memory_bytes, 32ull * g.NumVertices());
  // The non-SC part is exactly 13 bytes/vertex + the result bitset.
  EXPECT_EQ(res.memory.CategoryBytes("state") +
                res.memory.CategoryBytes("isn") +
                res.memory.CategoryBytes("stamp"),
            13ull * g.NumVertices());
}

TEST_F(TwoKSwapTest, ThreeScansPerRoundPlusInit) {
  // The paper: "one round of swap needs three iterations of scan". Our
  // two-k realizes all three as file scans (pre-swap, swap verification,
  // post-swap) on top of the opening/init scan.
  Graph g = GenerateCycle(30);
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector initial = RandomMaximalSet(g, 3);
  TwoKSwapOptions opts;
  opts.final_maximality_pass = false;
  AlgoResult res;
  ASSERT_OK(RunTwoKSwap(path, initial, opts, &res));
  EXPECT_EQ(res.io.sequential_scans, 1 + 3 * res.rounds);
}

TEST_F(TwoKSwapTest, MismatchedInitialSetRejected) {
  Graph g = GenerateCycle(10);
  std::string path = WriteGraphFile(&scratch_, g);
  BitVector wrong(3);
  AlgoResult res;
  EXPECT_TRUE(RunTwoKSwap(path, wrong, {}, &res).IsInvalidArgument());
}

// A 6-cycle whose file order makes every round fire two 1-2 swaps that
// deny each other's second candidate: the set oscillates {0,1} -> {2,4}
// -> {3,5} -> {2,4} -> ... with |IS| pinned at 2. Without the stall guard
// the loop would never terminate (every round removes and adds two
// vertices, so can_swap stays true); the guard must break after
// `stall_round_limit` consecutive gainless rounds.
//
// Cycle edges: 0-2, 2-5, 5-1, 1-4, 4-3, 3-0; scan order [2,4,3,5,0,1].
struct StallGadget {
  Graph graph = Graph::FromEdges(
      6, {{0, 2}, {2, 5}, {5, 1}, {1, 4}, {4, 3}, {3, 0}});
  std::vector<VertexId> order = {2, 4, 3, 5, 0, 1};
};

TEST_F(TwoKSwapTest, StallGuardBreaksPerpetualOscillation) {
  StallGadget gadget;
  std::string path = WriteGraphFileInOrder(&scratch_, gadget.graph,
                                           gadget.order);
  BitVector initial = MakeSet(6, {0, 1});
  AlgoResult res;
  ASSERT_OK(RunTwoKSwap(path, initial, TwoKSwapOptions{}, &res));
  // Default limit is 3: rounds 1..3 are all gainless swaps-of-two.
  EXPECT_EQ(res.rounds, 3u);
  ASSERT_EQ(res.round_stats.size(), 3u);
  for (const RoundStats& round : res.round_stats) {
    EXPECT_EQ(round.removed_is_vertices, 2u);
    EXPECT_EQ(round.new_is_vertices, 2u);
    EXPECT_EQ(round.is_size_after, 2u);
  }
  EXPECT_EQ(res.set_size, 2u);
  VerifyResult vr = VerifyIndependentSet(gadget.graph, res.in_set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
}

TEST_F(TwoKSwapTest, StallRoundLimitIsConfigurable) {
  StallGadget gadget;
  std::string path = WriteGraphFileInOrder(&scratch_, gadget.graph,
                                           gadget.order);
  BitVector initial = MakeSet(6, {0, 1});
  for (uint32_t limit : {1u, 2u}) {
    TwoKSwapOptions opts;
    opts.stall_round_limit = limit;
    AlgoResult res;
    ASSERT_OK(RunTwoKSwap(path, initial, opts, &res));
    EXPECT_EQ(res.rounds, limit) << "limit " << limit;
    EXPECT_EQ(res.set_size, 2u);
    VerifyResult vr = VerifyIndependentSet(gadget.graph, res.in_set);
    EXPECT_TRUE(vr.independent);
    EXPECT_TRUE(vr.maximal);
  }
}

TEST_F(TwoKSwapTest, StallGuardResetsAfterGainfulRound) {
  // On a normal power-law run, rounds that grow the set keep resetting
  // the stall counter, so even a tight limit of 1 does not truncate a
  // converging run below its gainful prefix.
  Graph g = GeneratePlrg(PlrgSpec::ForVertexCount(5000, 2.0), 91);
  std::string path = WriteGraphFile(&scratch_, g);
  AlgoResult greedy;
  ASSERT_OK(RunGreedy(path, GreedyOptions{}, &greedy));
  TwoKSwapOptions tight;
  tight.stall_round_limit = 1;
  AlgoResult res;
  ASSERT_OK(RunTwoKSwap(path, greedy.in_set, tight, &res));
  // Every round but the last must have grown the set (a single gainless
  // round trips the limit immediately).
  uint64_t prev = greedy.set_size;
  for (size_t i = 0; i + 1 < res.round_stats.size(); ++i) {
    EXPECT_GT(res.round_stats[i].is_size_after, prev) << "round " << i;
    prev = res.round_stats[i].is_size_after;
  }
  VerifyResult vr = VerifyIndependentSet(g, res.in_set);
  EXPECT_TRUE(vr.independent);
  EXPECT_TRUE(vr.maximal);
}

}  // namespace
}  // namespace semis
