// Copyright (c) the semis authors.
// The fully-external maximal-independent-set baseline the paper's
// experiments label "STXXL": Zeh's deterministic time-forward processing
// [27] (also Abello et al. [2]), re-implemented on our own external
// priority queue instead of the STXXL library (see DESIGN.md,
// Substitutions).
//
// Vertices are processed in ascending id order; when vertex v is decided,
// it sends a "taken" message to every neighbor u > v through the external
// priority queue keyed by u. A vertex joins the set iff it received no
// message. I/O: O(sort(|V| + |E|)); main memory: only the queue's buffer
// (NOT O(|V|)) -- this is what distinguishes "external" from the paper's
// "semi-external" model.
#ifndef SEMIS_BASELINES_TIME_FORWARD_H_
#define SEMIS_BASELINES_TIME_FORWARD_H_

#include <string>

#include "core/mis_common.h"
#include "util/status.h"

namespace semis {

/// Options for the time-forward baseline.
struct TimeForwardOptions {
  /// In-memory entry budget of the external priority queue.
  size_t pq_memory_entries = 1u << 20;
};

/// Runs time-forward maximal IS over the adjacency file at `path`. The
/// records must be in ascending id order (the natural, unsorted file);
/// a degree-sorted file is rejected, since messages only flow forward.
Status RunTimeForwardMIS(const std::string& path,
                         const TimeForwardOptions& options,
                         AlgoResult* result);

}  // namespace semis

#endif  // SEMIS_BASELINES_TIME_FORWARD_H_
