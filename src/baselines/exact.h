// Copyright (c) the semis authors.
// Exact maximum independent set via branch and bound, in the spirit of the
// exponential-time exact algorithms the paper cites (Robson [20],
// Xiao & Nagamochi [26]). Usable only on tiny graphs (<= 64 vertices);
// the test suite uses it as the ground-truth oracle for approximation
// ratios and for validating the Algorithm 5 upper bound.
#ifndef SEMIS_BASELINES_EXACT_H_
#define SEMIS_BASELINES_EXACT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace semis {

/// Result of an exact solve.
struct ExactResult {
  /// The independence number alpha(G).
  uint64_t alpha = 0;
  /// One maximum independent set.
  std::vector<VertexId> witness;
  /// Search-tree nodes explored (for tests on pruning behaviour).
  uint64_t nodes_explored = 0;
};

/// Computes alpha(G) exactly. Fails with InvalidArgument when the graph
/// has more than 64 vertices (bitmask representation).
Status ExactMaxIndependentSet(const Graph& graph, ExactResult* result);

}  // namespace semis

#endif  // SEMIS_BASELINES_EXACT_H_
