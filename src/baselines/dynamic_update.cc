#include "baselines/dynamic_update.h"

#include <algorithm>
#include <vector>

#include "util/timer.h"

namespace semis {

Status RunDynamicUpdate(const Graph& graph, AlgoResult* result) {
  WallTimer timer;
  AlgoResult res;
  const VertexId n = graph.NumVertices();

  // Bucket queue over current degrees, with lazy (stale) entries: a vertex
  // is pushed again whenever its degree drops; stale entries are skipped
  // on pop by re-checking the current degree. Every edge causes at most
  // two pushes over the whole run, so time is O(|V| + |E|).
  std::vector<uint32_t> degree(n);
  std::vector<uint8_t> removed(n, 0);
  const uint32_t max_degree = graph.MaxDegree();
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    buckets[degree[v]].push_back(v);
  }
  res.memory.Add("graph-csr", graph.MemoryBytes());
  res.memory.Add("degree", n * sizeof(uint32_t));
  res.memory.Add("removed", n * sizeof(uint8_t));

  std::vector<VState> state(n, VState::kN);
  res.memory.Add("state", n * sizeof(VState));
  size_t bucket_entries = n;

  // Smallest bucket index that received a push since the last pop; the
  // scan pointer rewinds there to preserve the min-degree invariant.
  uint32_t min_pushed = max_degree;
  auto remove_vertex = [&](VertexId v) {
    removed[v] = 1;
    for (VertexId w : graph.Neighbors(v)) {
      if (removed[w]) continue;
      degree[w]--;
      buckets[degree[w]].push_back(w);
      bucket_entries++;
      min_pushed = std::min(min_pushed, degree[w]);
    }
  };

  uint32_t d = 0;
  while (d <= max_degree) {
    if (buckets[d].empty()) {
      d++;
      continue;
    }
    VertexId v = buckets[d].back();
    buckets[d].pop_back();
    if (removed[v] || degree[v] != d) continue;  // stale entry
    state[v] = VState::kI;
    min_pushed = max_degree;
    remove_vertex(v);
    for (VertexId u : graph.Neighbors(v)) {
      if (!removed[u]) remove_vertex(u);
    }
    d = std::min(d, min_pushed);
  }
  res.memory.Add("buckets", bucket_entries * sizeof(VertexId));

  ExtractIndependentSet(state, &res.in_set, &res.set_size);
  res.memory.Add("result-bitset", res.in_set.MemoryBytes());
  res.peak_memory_bytes = res.memory.PeakBytes();
  res.seconds = timer.ElapsedSeconds();
  *result = std::move(res);
  return Status::OK();
}

}  // namespace semis
