#include "baselines/exact.h"

#include <bit>

namespace semis {

namespace {

// Branch and bound over candidate bitmasks. Branching vertex: the highest-
// degree candidate (its removal shrinks the candidate set fastest).
class ExactSolver {
 public:
  explicit ExactSolver(const Graph& graph) : n_(graph.NumVertices()) {
    adj_.resize(n_, 0);
    for (VertexId v = 0; v < n_; ++v) {
      for (VertexId u : graph.Neighbors(v)) {
        adj_[v] |= (1ull << u);
      }
    }
  }

  void Solve(uint64_t candidates, uint64_t chosen, uint32_t chosen_count) {
    nodes_++;
    if (candidates == 0) {
      if (chosen_count > best_count_) {
        best_count_ = chosen_count;
        best_mask_ = chosen;
      }
      return;
    }
    // Bound: even taking every candidate cannot beat the best.
    if (chosen_count + std::popcount(candidates) <= best_count_) return;
    // Pick the candidate with the most candidate-neighbors.
    uint64_t rest = candidates;
    VertexId pivot = 0;
    int best_deg = -1;
    while (rest != 0) {
      VertexId v = static_cast<VertexId>(std::countr_zero(rest));
      rest &= rest - 1;
      int deg = std::popcount(adj_[v] & candidates);
      if (deg > best_deg) {
        best_deg = deg;
        pivot = v;
      }
    }
    const uint64_t bit = 1ull << pivot;
    // Branch 1: include pivot.
    Solve(candidates & ~(adj_[pivot] | bit), chosen | bit, chosen_count + 1);
    // Branch 2: exclude pivot (worth trying only if pivot has candidate
    // neighbors; otherwise including it is always at least as good).
    if (best_deg > 0) {
      Solve(candidates & ~bit, chosen, chosen_count);
    }
  }

  uint32_t best_count() const { return best_count_; }
  uint64_t best_mask() const { return best_mask_; }
  uint64_t nodes() const { return nodes_; }

 private:
  VertexId n_;
  std::vector<uint64_t> adj_;
  uint32_t best_count_ = 0;
  uint64_t best_mask_ = 0;
  uint64_t nodes_ = 0;
};

}  // namespace

Status ExactMaxIndependentSet(const Graph& graph, ExactResult* result) {
  if (graph.NumVertices() > 64) {
    return Status::InvalidArgument(
        "exact solver supports at most 64 vertices");
  }
  ExactSolver solver(graph);
  const uint64_t all =
      graph.NumVertices() == 64
          ? ~0ull
          : ((1ull << graph.NumVertices()) - 1);
  solver.Solve(all, 0, 0);
  ExactResult r;
  r.alpha = solver.best_count();
  r.nodes_explored = solver.nodes();
  uint64_t mask = solver.best_mask();
  while (mask != 0) {
    r.witness.push_back(static_cast<VertexId>(std::countr_zero(mask)));
    mask &= mask - 1;
  }
  *result = r;
  return Status::OK();
}

}  // namespace semis
