// Copyright (c) the semis authors.
// DYNAMICUPDATE: the classical in-memory greedy of Halldorsson and
// Radhakrishnan [14] as used in the paper's experiments. Repeatedly picks
// a vertex of minimum CURRENT degree, adds it to the set, removes it and
// its neighbors, and updates the degrees of every affected vertex.
//
// This needs the whole graph mutable in memory -- exactly what the paper's
// semi-external algorithms avoid -- so the bench tables show it N/A on the
// large datasets. A bucket queue gives O(|V| + |E|) time.
#ifndef SEMIS_BASELINES_DYNAMIC_UPDATE_H_
#define SEMIS_BASELINES_DYNAMIC_UPDATE_H_

#include "core/mis_common.h"
#include "graph/graph.h"
#include "util/status.h"

namespace semis {

/// Runs the dynamic-update greedy on an in-memory graph. The reported
/// memory includes the CSR arrays -- the algorithm cannot run without
/// them, and that is the comparison the paper's Table 6 makes.
Status RunDynamicUpdate(const Graph& graph, AlgoResult* result);

}  // namespace semis

#endif  // SEMIS_BASELINES_DYNAMIC_UPDATE_H_
