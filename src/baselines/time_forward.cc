#include "baselines/time_forward.h"

#include "graph/adjacency_file.h"
#include "io/external_priority_queue.h"
#include "util/timer.h"

namespace semis {

Status RunTimeForwardMIS(const std::string& path,
                         const TimeForwardOptions& options,
                         AlgoResult* result) {
  WallTimer timer;
  AlgoResult res;
  AdjacencyFileScanner scanner(&res.io);
  SEMIS_RETURN_IF_ERROR(scanner.Open(path));
  const uint64_t n = scanner.header().num_vertices;

  ExternalPriorityQueueOptions pq_opts;
  pq_opts.memory_budget_entries = options.pq_memory_entries;
  pq_opts.stats = &res.io;
  ExternalPriorityQueue pq(pq_opts);
  res.memory.Add("pq-buffer",
                 options.pq_memory_entries * (sizeof(uint64_t) + sizeof(uint32_t)));

  res.in_set.Resize(n);
  res.memory.Add("result-bitset", res.in_set.MemoryBytes());

  VertexRecord rec;
  bool has_next = false;
  uint64_t expected_id = 0;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    if (rec.id != expected_id) {
      return Status::InvalidArgument(
          "time-forward processing requires id-ordered records (got id " +
          std::to_string(rec.id) + ", expected " +
          std::to_string(expected_id) + ")");
    }
    expected_id++;
    // Drain messages addressed to this vertex.
    bool blocked = false;
    while (!pq.Empty()) {
      uint64_t key = 0;
      uint32_t value = 0;
      SEMIS_RETURN_IF_ERROR(pq.PeekMin(&key, &value));
      if (key != rec.id) break;
      SEMIS_RETURN_IF_ERROR(pq.PopMin(&key, &value));
      blocked = true;
    }
    if (blocked) continue;
    res.in_set.Set(rec.id);
    res.set_size++;
    for (uint32_t i = 0; i < rec.degree; ++i) {
      const VertexId u = rec.neighbors[i];
      if (u > rec.id) {
        SEMIS_RETURN_IF_ERROR(pq.Push(u, rec.id));
      }
    }
  }
  res.peak_memory_bytes = res.memory.PeakBytes();
  res.seconds = timer.ElapsedSeconds();
  *result = std::move(res);
  return Status::OK();
}

}  // namespace semis
