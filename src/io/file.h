// Copyright (c) the semis authors.
// Buffered sequential file access. This is the only way graph data reaches
// the algorithms: the API intentionally offers no seek-to-offset read, so
// core code is structurally unable to perform the random accesses the
// semi-external model forbids. All bytes and metadata ops route through
// the process-wide FileSystem seam (io/env.h), so fault-injection tests
// exercise these exact code paths.
#ifndef SEMIS_IO_FILE_H_
#define SEMIS_IO_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/env.h"
#include "io/io_stats.h"
#include "util/status.h"

namespace semis {

/// Append-only buffered writer.
class SequentialFileWriter {
 public:
  /// `stats` may be null; if set, byte counters are charged to it.
  explicit SequentialFileWriter(IoStats* stats = nullptr,
                                size_t buffer_bytes = 1 << 20);
  ~SequentialFileWriter();

  SequentialFileWriter(const SequentialFileWriter&) = delete;
  SequentialFileWriter& operator=(const SequentialFileWriter&) = delete;

  /// Creates/truncates `path` for writing.
  Status Open(const std::string& path);

  /// Opens `path` for appending without truncation (the edge-delta logs
  /// grow across update batches). The file must already exist -- appending
  /// to a missing file almost always means a lost header, so it is
  /// reported instead of silently creating a headerless file.
  /// BytesWritten() counts only the bytes appended by this writer.
  Status OpenAppend(const std::string& path);

  /// Appends `n` raw bytes.
  Status Append(const void* data, size_t n);

  /// Appends one little-endian u32.
  Status AppendU32(uint32_t v) { return Append(&v, sizeof(v)); }

  /// Appends one little-endian u64.
  Status AppendU64(uint64_t v) { return Append(&v, sizeof(v)); }

  /// Flushes the user-space buffer to the OS. A failed flush poisons the
  /// writer: the error (with its errno) is latched, and every later
  /// Append/Flush/Sync/Close reports it instead of retrying the write --
  /// re-flushing a partially-accepted buffer would duplicate bytes.
  Status Flush();

  /// Flushes and fsync()s: on return the bytes written so far are durable
  /// (modulo the containing directory entry -- see SyncParentDirectory).
  Status Sync();

  /// Flushes and closes. Safe to call twice. After a failed flush the
  /// original error is returned (never masked by a later close result).
  Status Close();

  /// Bytes appended so far (including buffered, not yet flushed bytes).
  uint64_t BytesWritten() const { return bytes_written_; }

  /// Path passed to Open().
  const std::string& path() const { return path_; }

  /// True if Open() succeeded and Close() has not been called.
  bool IsOpen() const { return file_ != nullptr; }

 private:
  IoStats* stats_;
  std::vector<char> buffer_;
  size_t buffered_ = 0;
  std::unique_ptr<RawFile> file_;
  // First write/sync failure; sticky until Close (see Flush()).
  Status deferred_error_;
  std::string path_;
  uint64_t bytes_written_ = 0;
};

/// Forward-only buffered reader.
class SequentialFileReader {
 public:
  /// `stats` may be null; if set, byte counters are charged to it.
  explicit SequentialFileReader(IoStats* stats = nullptr,
                                size_t buffer_bytes = 1 << 20);
  ~SequentialFileReader();

  SequentialFileReader(const SequentialFileReader&) = delete;
  SequentialFileReader& operator=(const SequentialFileReader&) = delete;

  /// Opens `path` for reading from the beginning.
  Status Open(const std::string& path);

  /// Reads exactly `n` bytes into `out`. Fails with Corruption on a short
  /// read (graph files have self-describing lengths, so EOF mid-record
  /// means a truncated file).
  Status ReadExact(void* out, size_t n);

  /// Reads up to `n` bytes; `*out_n` receives the number actually read
  /// (0 at EOF).
  Status Read(void* out, size_t n, size_t* out_n);

  /// Reads one little-endian u32.
  Status ReadU32(uint32_t* v) { return ReadExact(v, sizeof(*v)); }

  /// Reads one little-endian u64.
  Status ReadU64(uint64_t* v) { return ReadExact(v, sizeof(*v)); }

  /// True when all bytes have been consumed. A read error is NOT end of
  /// file: after one, AtEof() returns false and the next Read/ReadExact/
  /// Close reports the latched error -- a mid-file I/O error must never
  /// be mistaken for clean truncation.
  bool AtEof();

  /// Closes the file. Safe to call twice. Reports a read error latched
  /// by an earlier fill (see AtEof()) if one is still pending.
  Status Close();

  /// Bytes consumed so far.
  uint64_t BytesRead() const { return bytes_read_; }

  /// Path passed to Open().
  const std::string& path() const { return path_; }

 private:
  Status FillBuffer();

  IoStats* stats_;
  std::vector<char> buffer_;
  size_t buf_pos_ = 0;
  size_t buf_len_ = 0;
  bool hit_eof_ = false;
  std::unique_ptr<RawFile> file_;
  // First fill failure; sticky so AtEof() cannot read an error as EOF.
  Status pending_error_;
  std::string path_;
  uint64_t bytes_read_ = 0;
};

/// Returns the size of `path` in bytes, or a NotFound/IOError status.
Status GetFileSize(const std::string& path, uint64_t* size);

/// Removes a file if it exists (missing file is not an error).
Status RemoveFileIfExists(const std::string& path);

/// fsync()s an existing file by path (open + fsync + close).
Status SyncFile(const std::string& path);

/// fsync()s the directory containing `path`, making renames/creates/links
/// of entries in it durable. "" and paths without '/' sync ".".
Status SyncParentDirectory(const std::string& path);

/// Creates hard link `dst` referring to `src`'s inode. Fails if `dst`
/// exists. Used by the epoch journal to carry unchanged store files into a
/// new epoch without copying bytes.
Status HardLinkFile(const std::string& src, const std::string& dst);

/// rename(2) with a Status-carrying error message.
Status RenameFile(const std::string& from, const std::string& to);

}  // namespace semis

#endif  // SEMIS_IO_FILE_H_
