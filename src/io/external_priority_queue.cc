#include "io/external_priority_queue.h"

#include <algorithm>

namespace semis {

struct ExternalPriorityQueue::RunCursor {
  explicit RunCursor(IoStats* stats) : reader(stats) {}

  Status Open(const std::string& path) {
    SEMIS_RETURN_IF_ERROR(reader.Open(path));
    return Advance();
  }

  Status Advance() {
    if (reader.AtEof()) {
      done = true;
      return Status::OK();
    }
    SEMIS_RETURN_IF_ERROR(reader.ReadU64(&key));
    SEMIS_RETURN_IF_ERROR(reader.ReadU32(&value));
    return Status::OK();
  }

  SequentialFileReader reader;
  uint64_t key = 0;
  uint32_t value = 0;
  bool done = false;
};

ExternalPriorityQueue::ExternalPriorityQueue(
    ExternalPriorityQueueOptions options)
    : options_(std::move(options)) {
  if (options_.memory_budget_entries < 16) options_.memory_budget_entries = 16;
}

ExternalPriorityQueue::~ExternalPriorityQueue() = default;

Status ExternalPriorityQueue::Push(uint64_t key, uint32_t value) {
  heap_.push_back(Entry{key, value});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const Entry& a, const Entry& b) { return a.key > b.key; });
  size_++;
  if (heap_.size() >= options_.memory_budget_entries) {
    SEMIS_RETURN_IF_ERROR(Spill());
  }
  return Status::OK();
}

Status ExternalPriorityQueue::Spill() {
  if (heap_.empty()) return Status::OK();
  if (scratch_path_.empty()) {
    if (!options_.scratch_dir.empty()) {
      scratch_path_ = options_.scratch_dir;
    } else {
      SEMIS_RETURN_IF_ERROR(ScratchDir::Create("semis-epq", &owned_scratch_));
      scratch_path_ = owned_scratch_.path();
    }
  }
  std::sort(heap_.begin(), heap_.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  std::string path = scratch_path_ + "/run." + std::to_string(runs_created_);
  SequentialFileWriter writer(options_.stats);
  SEMIS_RETURN_IF_ERROR(writer.Open(path));
  for (const Entry& e : heap_) {
    SEMIS_RETURN_IF_ERROR(writer.AppendU64(e.key));
    SEMIS_RETURN_IF_ERROR(writer.AppendU32(e.value));
  }
  SEMIS_RETURN_IF_ERROR(writer.Close());
  heap_.clear();
  runs_created_++;
  auto cursor = std::make_unique<RunCursor>(options_.stats);
  SEMIS_RETURN_IF_ERROR(cursor->Open(path));
  runs_.push_back(std::move(cursor));
  return Status::OK();
}

bool ExternalPriorityQueue::Empty() const { return size_ == 0; }

bool ExternalPriorityQueue::FindMin(int* source) const {
  bool found = false;
  uint64_t best_key = 0;
  if (!heap_.empty()) {
    best_key = heap_.front().key;
    *source = -1;
    found = true;
  }
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i]->done) continue;
    if (!found || runs_[i]->key < best_key) {
      best_key = runs_[i]->key;
      *source = static_cast<int>(i);
      found = true;
    }
  }
  return found;
}

Status ExternalPriorityQueue::PeekMin(uint64_t* key, uint32_t* value) {
  int source = 0;
  if (!FindMin(&source)) {
    return Status::InvalidArgument("PeekMin on empty queue");
  }
  if (source < 0) {
    *key = heap_.front().key;
    *value = heap_.front().value;
  } else {
    *key = runs_[source]->key;
    *value = runs_[source]->value;
  }
  return Status::OK();
}

Status ExternalPriorityQueue::PopMin(uint64_t* key, uint32_t* value) {
  int source = 0;
  if (!FindMin(&source)) {
    return Status::InvalidArgument("PopMin on empty queue");
  }
  if (source < 0) {
    *key = heap_.front().key;
    *value = heap_.front().value;
    std::pop_heap(heap_.begin(), heap_.end(),
                  [](const Entry& a, const Entry& b) { return a.key > b.key; });
    heap_.pop_back();
  } else {
    *key = runs_[source]->key;
    *value = runs_[source]->value;
    SEMIS_RETURN_IF_ERROR(runs_[source]->Advance());
  }
  size_--;
  return Status::OK();
}

}  // namespace semis
