// Copyright (c) the semis authors.
// External-memory priority queue: the substrate for the fully-external
// maximal-independent-set baseline (Zeh [27] / time-forward processing),
// which the paper's experiments call "STXXL".
//
// Design: inserts accumulate in an in-memory min-heap; when the heap
// exceeds its budget it is drained into a sorted spill run. PopMin takes
// the minimum of the heap top and all run heads. Runs are internally
// sorted, so their heads only increase; correctness holds for arbitrary
// push/pop interleavings, and I/O stays sequential per run.
#ifndef SEMIS_IO_EXTERNAL_PRIORITY_QUEUE_H_
#define SEMIS_IO_EXTERNAL_PRIORITY_QUEUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/file.h"
#include "io/io_stats.h"
#include "io/scratch.h"
#include "util/status.h"

namespace semis {

/// Tuning knobs for ExternalPriorityQueue.
struct ExternalPriorityQueueOptions {
  /// Max in-memory entries before spilling a run (12 bytes per entry).
  size_t memory_budget_entries = 4u << 20;
  /// Directory for spill runs. Empty = private ScratchDir.
  std::string scratch_dir;
  /// Optional I/O counters.
  IoStats* stats = nullptr;
};

/// Min-priority queue of (u64 key, u32 value) pairs with spilling.
/// Pop order: ascending key; ties in unspecified but deterministic order.
class ExternalPriorityQueue {
 public:
  explicit ExternalPriorityQueue(ExternalPriorityQueueOptions options);
  ~ExternalPriorityQueue();

  ExternalPriorityQueue(const ExternalPriorityQueue&) = delete;
  ExternalPriorityQueue& operator=(const ExternalPriorityQueue&) = delete;

  /// Inserts an entry.
  Status Push(uint64_t key, uint32_t value);

  /// True when no entries remain.
  bool Empty() const;

  /// Reads the minimum entry without removing it. Requires !Empty().
  Status PeekMin(uint64_t* key, uint32_t* value);

  /// Removes and returns the minimum entry. Requires !Empty().
  Status PopMin(uint64_t* key, uint32_t* value);

  /// Number of entries currently stored (memory + disk).
  uint64_t Size() const { return size_; }

  /// Number of spill runs created over the queue's lifetime.
  size_t RunsCreated() const { return runs_created_; }

 private:
  struct RunCursor;

  Status Spill();
  // Finds the source of the global minimum: -1 = in-memory heap, else run
  // index. Returns false if empty.
  bool FindMin(int* source) const;

  ExternalPriorityQueueOptions options_;
  ScratchDir owned_scratch_;
  std::string scratch_path_;

  struct Entry {
    uint64_t key;
    uint32_t value;
  };
  // Binary min-heap by key.
  std::vector<Entry> heap_;
  std::vector<std::unique_ptr<RunCursor>> runs_;
  uint64_t size_ = 0;
  size_t runs_created_ = 0;
};

}  // namespace semis

#endif  // SEMIS_IO_EXTERNAL_PRIORITY_QUEUE_H_
