#include "io/scratch.h"

#include <cstdlib>
#include <utility>

#include "io/env.h"

namespace semis {

ScratchDir::~ScratchDir() { Remove().IgnoreError(); }

ScratchDir::ScratchDir(ScratchDir&& other) noexcept
    : path_(std::move(other.path_)), counter_(other.counter_) {
  other.path_.clear();
}

ScratchDir& ScratchDir::operator=(ScratchDir&& other) noexcept {
  if (this != &other) {
    Remove().IgnoreError();  // noexcept move cannot propagate
    path_ = std::move(other.path_);
    counter_ = other.counter_;
    other.path_.clear();
  }
  return *this;
}

Status ScratchDir::Create(const std::string& prefix, ScratchDir* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("ScratchDir::Create: out must be non-null");
  }
  const char* env = std::getenv("TMPDIR");
  std::string base = (env != nullptr && env[0] != '\0') ? env : "/tmp";
  // A trailing slash in TMPDIR would otherwise yield "//" in the template.
  while (base.size() > 1 && base.back() == '/') base.pop_back();
  std::string tmpl =
      base + (base.back() == '/' ? "" : "/") + prefix + ".XXXXXX";
  std::string created;
  SEMIS_RETURN_IF_ERROR(GetFileSystem()->CreateTempDir(tmpl, &created));
  // Replacing an existing scratch dir: best effort, the fresh dir wins.
  out->Remove().IgnoreError();
  out->path_ = std::move(created);
  out->counter_ = 0;
  return Status::OK();
}

std::string ScratchDir::NewFilePath(const std::string& tag) {
  return path_ + "/" + tag + "." + std::to_string(counter_++);
}

Status ScratchDir::Remove() {
  if (path_.empty()) return Status::OK();
  std::string path = std::move(path_);
  path_.clear();
  return GetFileSystem()->RemoveTree(path);
}

}  // namespace semis
