#include "io/scratch.h"

#include <cstdlib>
#include <filesystem>
#include <utility>

namespace semis {

ScratchDir::~ScratchDir() { Remove().IgnoreError(); }

ScratchDir::ScratchDir(ScratchDir&& other) noexcept
    : path_(std::move(other.path_)), counter_(other.counter_) {
  other.path_.clear();
}

ScratchDir& ScratchDir::operator=(ScratchDir&& other) noexcept {
  if (this != &other) {
    Remove().IgnoreError();  // noexcept move cannot propagate
    path_ = std::move(other.path_);
    counter_ = other.counter_;
    other.path_.clear();
  }
  return *this;
}

Status ScratchDir::Create(const std::string& prefix, ScratchDir* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("ScratchDir::Create: out must be non-null");
  }
  const char* env = std::getenv("TMPDIR");
  std::string base = (env != nullptr && env[0] != '\0') ? env : "/tmp";
  // A trailing slash in TMPDIR would otherwise yield "//" in the template.
  while (base.size() > 1 && base.back() == '/') base.pop_back();
  std::string tmpl =
      base + (base.back() == '/' ? "" : "/") + prefix + ".XXXXXX";
  // mkdtemp mutates its argument in place.
  std::string buf = tmpl;
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::IOError("mkdtemp failed for template " + tmpl);
  }
  // Replacing an existing scratch dir: best effort, the fresh dir wins.
  out->Remove().IgnoreError();
  out->path_ = buf;
  out->counter_ = 0;
  return Status::OK();
}

std::string ScratchDir::NewFilePath(const std::string& tag) {
  return path_ + "/" + tag + "." + std::to_string(counter_++);
}

Status ScratchDir::Remove() {
  if (path_.empty()) return Status::OK();
  std::string path = std::move(path_);
  path_.clear();
  std::error_code ec;  // error surfaces as a Status; never throws
  std::filesystem::remove_all(path, ec);
  if (ec) {
    return Status::IOError("failed to remove scratch dir " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

}  // namespace semis
