#include "io/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

namespace semis {

namespace {

std::string ErrnoMessage(const std::string& prefix, const std::string& path,
                         int err) {
  return prefix + " '" + path + "': " + std::strerror(err);
}

// ---------------------------------------------------------------- posix --

// Raw-fd file handle. The buffered writer/reader above this layer issue
// one Read/Write per buffer fill/flush, so there is nothing to gain from
// stdio buffering here -- and raw fds give exact errno and short-count
// semantics, which the fault model depends on.
class PosixFile : public RawFile {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixFile() override { Close().IgnoreError(); }

  Status Read(void* out, size_t n, size_t* out_n) override {
    char* dst = static_cast<char*>(out);
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::read(fd_, dst + got, n - got);
      if (r < 0) {
        if (errno == EINTR) continue;
        *out_n = got;
        return Status::IOError(ErrnoMessage("read failed for", path_, errno),
                               errno);
      }
      if (r == 0) break;  // end of file
      got += static_cast<size_t>(r);
    }
    *out_n = got;
    return Status::OK();
  }

  Status Write(const void* data, size_t n) override {
    const char* src = static_cast<const char*>(data);
    size_t put = 0;
    while (put < n) {
      ssize_t w = ::write(fd_, src + put, n - put);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(
            ErrnoMessage("write failed for", path_, errno) + " (wrote " +
                std::to_string(put) + " of " + std::to_string(n) + " bytes)",
            errno);
      }
      put += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fsync failed for", path_, errno),
                             errno);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::IOError(ErrnoMessage("close failed for", path_, errno),
                             errno);
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileSystemImpl : public FileSystem {
 public:
  const char* Name() const override { return "posix"; }

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<RawFile>* out) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot create", path, errno),
                             errno);
    }
    *out = std::make_unique<PosixFile>(fd, path);
    return Status::OK();
  }

  Status NewAppendableFile(const std::string& path,
                           std::unique_ptr<RawFile>* out) override {
    // No O_CREAT: appending to a missing file almost always means a lost
    // header, so it is reported instead of silently creating one.
    int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) {
        return Status::NotFound(
            ErrnoMessage("cannot append to", path, errno));
      }
      return Status::IOError(
          ErrnoMessage("cannot open for append", path, errno), errno);
    }
    *out = std::make_unique<PosixFile>(fd, path);
    return Status::OK();
  }

  Status NewReadableFile(const std::string& path,
                         std::unique_ptr<RawFile>* out) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open", path, errno), errno);
    }
    *out = std::make_unique<PosixFile>(fd, path);
    return Status::OK();
  }

  Status GetFileSize(const std::string& path, uint64_t* size) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return Status::NotFound(ErrnoMessage("stat failed for", path, errno));
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) {
        return Status::NotFound(ErrnoMessage("remove failed for", path,
                                             errno));
      }
      return Status::IOError(ErrnoMessage("remove failed for", path, errno),
                             errno);
    }
    return Status::OK();
  }

  Status SyncFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open to sync", path, errno),
                             errno);
    }
    Status s = Status::OK();
    if (::fsync(fd) != 0) {
      s = Status::IOError(ErrnoMessage("fsync failed for", path, errno),
                          errno);
    }
    ::close(fd);
    return s;
  }

  Status SyncDirectory(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open dir", dir, errno),
                             errno);
    }
    Status s = Status::OK();
    // Some filesystems refuse fsync on directory fds (EINVAL); the rename
    // is still atomic there, so only real I/O errors are reported.
    if (::fsync(fd) != 0 && errno != EINVAL) {
      s = Status::IOError(ErrnoMessage("fsync failed for dir", dir, errno),
                          errno);
    }
    ::close(fd);
    return s;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(
          ErrnoMessage("cannot rename to '" + to + "' from", from, errno),
          errno);
    }
    return Status::OK();
  }

  Status HardLinkFile(const std::string& src,
                      const std::string& dst) override {
    if (::link(src.c_str(), dst.c_str()) != 0) {
      return Status::IOError(
          ErrnoMessage("cannot hard-link to '" + dst + "' from", src, errno),
          errno);
    }
    return Status::OK();
  }

  Status CreateTempDir(const std::string& tmpl,
                       std::string* out_path) override {
    // mkdtemp mutates its argument in place.
    std::string buf = tmpl;
    if (::mkdtemp(buf.data()) == nullptr) {
      return Status::IOError(
          ErrnoMessage("mkdtemp failed for template", tmpl, errno), errno);
    }
    *out_path = std::move(buf);
    return Status::OK();
  }

  Status RemoveTree(const std::string& path) override {
    std::error_code ec;  // error surfaces as a Status; never throws
    std::filesystem::remove_all(path, ec);
    if (ec) {
      return Status::IOError("failed to remove tree " + path + ": " +
                             ec.message());
    }
    return Status::OK();
  }
};

// ----------------------------------------------------------- seam state --

std::atomic<FileSystem*> g_file_system{nullptr};

// Lazily builds the default: a fault-injection wrapper when
// SEMIS_FAULT_SPEC is set, else plain POSIX. Mirrors crash_point.cc's
// parse-once pattern, but a malformed spec aborts instead of disarming:
// a sweep harness that silently ran fault-free would report success it
// never earned.
FileSystem* DefaultFileSystem() {
  static FileSystem* const fs = []() -> FileSystem* {
    const char* env = std::getenv("SEMIS_FAULT_SPEC");
    if (env == nullptr || *env == '\0') return PosixFileSystem();
    FaultSpec spec;
    Status s = FaultSpec::Parse(env, &spec);
    if (!s.ok()) {
      std::fprintf(stderr, "SEMIS_FAULT_SPEC: %s\n", s.ToString().c_str());
      std::abort();
    }
    spec.announce = true;
    static FaultInjectionFileSystem fault_fs(PosixFileSystem(), spec);
    return &fault_fs;
  }();
  return fs;
}

// -------------------------------------------------------- fault wrapper --

// Decorates a RawFile so read/write/sync faults hit mid-stream, not just
// at open. Short transfers really move half the bytes through `base`
// first: a torn write lands on disk, exactly like a device failing
// mid-transfer.
class FaultInjectionFile : public RawFile {
 public:
  FaultInjectionFile(std::unique_ptr<RawFile> base, std::string path,
                     FaultInjectionFileSystem* fs)
      : base_(std::move(base)), path_(std::move(path)), fs_(fs) {}

  Status Read(void* out, size_t n, size_t* out_n) override {
    Status injected;
    if (fs_->ShouldFault(IoOp::kRead, path_, &injected)) {
      *out_n = 0;
      if (fs_->short_transfer() && n > 1) {
        base_->Read(out, n / 2, out_n).IgnoreError();
      }
      return injected;
    }
    return base_->Read(out, n, out_n);
  }

  Status Write(const void* data, size_t n) override {
    Status injected;
    if (fs_->ShouldFault(IoOp::kWrite, path_, &injected)) {
      if (fs_->short_transfer() && n > 1) {
        base_->Write(data, n / 2).IgnoreError();
      }
      return injected;
    }
    return base_->Write(data, n);
  }

  Status Sync() override {
    Status injected;
    if (fs_->ShouldFault(IoOp::kSync, path_, &injected)) return injected;
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<RawFile> base_;
  std::string path_;
  FaultInjectionFileSystem* fs_;
};

const struct {
  const char* name;
  int value;
} kErrnoNames[] = {
    {"EIO", EIO},       {"ENOSPC", ENOSPC}, {"EINTR", EINTR},
    {"EAGAIN", EAGAIN}, {"EACCES", EACCES}, {"ENOENT", ENOENT},
    {"EROFS", EROFS},
};

const char* ErrnoName(int err) {
  for (const auto& e : kErrnoNames) {
    if (e.value == err) return e.name;
  }
  return nullptr;
}

std::vector<std::string> SplitColon(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t colon = s.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, colon - start));
    start = colon + 1;
  }
}

}  // namespace

const char* IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kOpen:
      return "open";
    case IoOp::kRead:
      return "read";
    case IoOp::kWrite:
      return "write";
    case IoOp::kSync:
      return "sync";
    case IoOp::kSyncDir:
      return "syncdir";
    case IoOp::kRename:
      return "rename";
    case IoOp::kLink:
      return "link";
    case IoOp::kRemove:
      return "remove";
    case IoOp::kStat:
      return "stat";
    case IoOp::kMkdir:
      return "mkdir";
    case IoOp::kRemoveTree:
      return "rmtree";
  }
  return "unknown";
}

FileSystem* PosixFileSystem() {
  static PosixFileSystemImpl* const fs = new PosixFileSystemImpl();
  return fs;
}

FileSystem* GetFileSystem() {
  FileSystem* fs = g_file_system.load(std::memory_order_acquire);
  return fs != nullptr ? fs : DefaultFileSystem();
}

void SetFileSystem(FileSystem* fs) {
  g_file_system.store(fs, std::memory_order_release);
}

ScopedFileSystem::ScopedFileSystem(FileSystem* fs)
    : prev_(g_file_system.load(std::memory_order_acquire)) {
  SetFileSystem(fs);
}

ScopedFileSystem::~ScopedFileSystem() { SetFileSystem(prev_); }

// ------------------------------------------------------------ FaultSpec --

Status FaultSpec::Parse(const std::string& spec, FaultSpec* out) {
  FaultSpec parsed;
  std::string body = spec;
  size_t at = body.find('@');
  if (at != std::string::npos) {
    parsed.path_substr = body.substr(at + 1);
    body = body.substr(0, at);
  }
  std::vector<std::string> parts = SplitColon(body);
  if (parts.size() < 2) {
    return Status::InvalidArgument("fault spec '" + spec +
                                   "': want <op>:<nth>[:ERRNO][:sticky]"
                                   "[:short][@substr]");
  }

  const std::string& op_name = parts[0];
  if (op_name == "any") {
    parsed.any_op = true;
  } else {
    static const IoOp kAllOps[] = {
        IoOp::kOpen,   IoOp::kRead,  IoOp::kWrite, IoOp::kSync,
        IoOp::kSyncDir, IoOp::kRename, IoOp::kLink, IoOp::kRemove,
        IoOp::kStat,   IoOp::kMkdir, IoOp::kRemoveTree,
    };
    bool found = false;
    for (IoOp op : kAllOps) {
      if (op_name == IoOpName(op)) {
        parsed.op = op;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("fault spec '" + spec +
                                     "': unknown op '" + op_name + "'");
    }
  }

  char* end = nullptr;
  errno = 0;
  unsigned long long nth = std::strtoull(parts[1].c_str(), &end, 10);
  if (parts[1].empty() || end == nullptr || *end != '\0' || errno != 0 ||
      nth < 1) {
    return Status::InvalidArgument("fault spec '" + spec + "': bad index '" +
                                   parts[1] + "' (want an integer >= 1)");
  }
  parsed.nth = nth;

  parsed.fault_errno = EIO;
  for (size_t i = 2; i < parts.size(); ++i) {
    const std::string& tok = parts[i];
    if (tok == "sticky") {
      parsed.sticky = true;
      continue;
    }
    if (tok == "short") {
      parsed.short_transfer = true;
      continue;
    }
    bool matched = false;
    for (const auto& e : kErrnoNames) {
      if (tok == e.name) {
        parsed.fault_errno = e.value;
        matched = true;
        break;
      }
    }
    if (!matched) {
      return Status::InvalidArgument("fault spec '" + spec +
                                     "': unknown token '" + tok + "'");
    }
  }

  *out = std::move(parsed);
  return Status::OK();
}

std::string FaultSpec::ToString() const {
  std::string s = any_op ? "any" : IoOpName(op);
  s += ":" + std::to_string(nth);
  const int err = fault_errno == 0 ? EIO : fault_errno;
  if (const char* name = ErrnoName(err)) {
    s += std::string(":") + name;
  }
  if (sticky) s += ":sticky";
  if (short_transfer) s += ":short";
  if (!path_substr.empty()) s += "@" + path_substr;
  return s;
}

// ---------------------------------------------- FaultInjectionFileSystem --

FaultInjectionFileSystem::FaultInjectionFileSystem(FileSystem* base,
                                                   FaultSpec spec)
    : base_(base), spec_(std::move(spec)) {
  if (spec_.fault_errno == 0) spec_.fault_errno = EIO;
}

bool FaultInjectionFileSystem::ShouldFault(IoOp op, const std::string& path,
                                           Status* error) {
  if (!spec_.any_op && op != spec_.op) return false;
  if (!spec_.path_substr.empty() &&
      path.find(spec_.path_substr) == std::string::npos) {
    return false;
  }
  const uint64_t index =
      matched_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (spec_.sticky ? index < spec_.nth : index != spec_.nth) return false;
  injected_.fetch_add(1, std::memory_order_relaxed);
  const int err = spec_.fault_errno;
  std::string msg = std::string("injected ") +
                    (ErrnoName(err) ? ErrnoName(err) : "error") + " at " +
                    IoOpName(op) + " #" + std::to_string(index) + " ('" +
                    path + "')";
  if (spec_.announce) {
    // stderr is unbuffered: the sweep harness greps this line to tell
    // "survived because the fault fired and was handled" apart from
    // "survived because the run never reached op #nth".
    std::fprintf(stderr, "SEMIS_FAULT_INJECTED op=%s n=%llu path=%s\n",
                 IoOpName(op), static_cast<unsigned long long>(index),
                 path.c_str());
  }
  *error = Status::IOError(std::move(msg), err);
  return true;
}

Status FaultInjectionFileSystem::NewWritableFile(
    const std::string& path, std::unique_ptr<RawFile>* out) {
  Status injected;
  if (ShouldFault(IoOp::kOpen, path, &injected)) return injected;
  std::unique_ptr<RawFile> base_file;
  SEMIS_RETURN_IF_ERROR(base_->NewWritableFile(path, &base_file));
  *out = std::make_unique<FaultInjectionFile>(std::move(base_file), path,
                                              this);
  return Status::OK();
}

Status FaultInjectionFileSystem::NewAppendableFile(
    const std::string& path, std::unique_ptr<RawFile>* out) {
  Status injected;
  if (ShouldFault(IoOp::kOpen, path, &injected)) return injected;
  std::unique_ptr<RawFile> base_file;
  SEMIS_RETURN_IF_ERROR(base_->NewAppendableFile(path, &base_file));
  *out = std::make_unique<FaultInjectionFile>(std::move(base_file), path,
                                              this);
  return Status::OK();
}

Status FaultInjectionFileSystem::NewReadableFile(
    const std::string& path, std::unique_ptr<RawFile>* out) {
  Status injected;
  if (ShouldFault(IoOp::kOpen, path, &injected)) return injected;
  std::unique_ptr<RawFile> base_file;
  SEMIS_RETURN_IF_ERROR(base_->NewReadableFile(path, &base_file));
  *out = std::make_unique<FaultInjectionFile>(std::move(base_file), path,
                                              this);
  return Status::OK();
}

Status FaultInjectionFileSystem::GetFileSize(const std::string& path,
                                             uint64_t* size) {
  Status injected;
  if (ShouldFault(IoOp::kStat, path, &injected)) return injected;
  return base_->GetFileSize(path, size);
}

Status FaultInjectionFileSystem::RemoveFile(const std::string& path) {
  Status injected;
  if (ShouldFault(IoOp::kRemove, path, &injected)) return injected;
  return base_->RemoveFile(path);
}

Status FaultInjectionFileSystem::SyncFile(const std::string& path) {
  Status injected;
  if (ShouldFault(IoOp::kSync, path, &injected)) return injected;
  return base_->SyncFile(path);
}

Status FaultInjectionFileSystem::SyncDirectory(const std::string& dir) {
  Status injected;
  if (ShouldFault(IoOp::kSyncDir, dir, &injected)) return injected;
  return base_->SyncDirectory(dir);
}

Status FaultInjectionFileSystem::RenameFile(const std::string& from,
                                            const std::string& to) {
  Status injected;
  if (ShouldFault(IoOp::kRename, to, &injected)) return injected;
  return base_->RenameFile(from, to);
}

Status FaultInjectionFileSystem::HardLinkFile(const std::string& src,
                                              const std::string& dst) {
  Status injected;
  if (ShouldFault(IoOp::kLink, dst, &injected)) return injected;
  return base_->HardLinkFile(src, dst);
}

Status FaultInjectionFileSystem::CreateTempDir(const std::string& tmpl,
                                               std::string* out_path) {
  Status injected;
  if (ShouldFault(IoOp::kMkdir, tmpl, &injected)) return injected;
  return base_->CreateTempDir(tmpl, out_path);
}

Status FaultInjectionFileSystem::RemoveTree(const std::string& path) {
  Status injected;
  if (ShouldFault(IoOp::kRemoveTree, path, &injected)) return injected;
  return base_->RemoveTree(path);
}

// ---------------------------------------------------------- retry policy --

const RetryPolicy& DefaultRetryPolicy() {
  static const RetryPolicy policy = [] {
    RetryPolicy p;
    if (const char* env = std::getenv("SEMIS_IO_RETRY_ATTEMPTS")) {
      char* end = nullptr;
      long v = std::strtol(env, &end, 10);
      if (end != nullptr && *end == '\0' && v >= 1 && v <= 100) {
        p.max_attempts = static_cast<int>(v);
      }
    }
    if (const char* env = std::getenv("SEMIS_IO_RETRY_BACKOFF_US")) {
      char* end = nullptr;
      long v = std::strtol(env, &end, 10);
      if (end != nullptr && *end == '\0' && v >= 0 && v <= 10'000'000) {
        p.backoff_us = static_cast<unsigned>(v);
      }
    }
    return p;
  }();
  return policy;
}

bool IsTransientIoError(const Status& s) {
  if (!s.IsIOError()) return false;
  const int err = s.sys_errno();
  return err == EINTR || err == EAGAIN || err == EIO;
}

void RetryBackoffSleep(const RetryPolicy& policy, int attempt) {
  if (policy.backoff_us == 0) return;
  const uint64_t us = static_cast<uint64_t>(policy.backoff_us)
                      << (attempt - 1);
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace semis
