#include "io/edge_delta_file.h"

#include "graph/sharded_adjacency_file.h"

namespace semis {

namespace {
constexpr uint32_t kDeltaManifestMagic = 0x4D4C4453u;  // 'SDLM' little-endian
constexpr uint32_t kDeltaShardMagic = 0x534C4453u;     // 'SDLS' little-endian
constexpr uint32_t kVersion = 1;

Status ValidateEntry(const EdgeDeltaEntry& entry, uint64_t num_vertices,
                     const std::string& context) {
  if (entry.op != EdgeDeltaOp::kInsert && entry.op != EdgeDeltaOp::kDelete) {
    return Status::Corruption("unknown delta op " +
                              std::to_string(static_cast<uint32_t>(entry.op)) +
                              " in " + context);
  }
  if (entry.u >= num_vertices || entry.v >= num_vertices) {
    return Status::Corruption("delta entry vertex id out of range in " +
                              context);
  }
  if (entry.u == entry.v) {
    return Status::Corruption("delta entry is a self-loop in " + context);
  }
  return Status::OK();
}
}  // namespace

std::string EdgeDeltaManifestPath(const std::string& sadjs_manifest_path) {
  return sadjs_manifest_path + ".delta";
}

std::string EdgeDeltaShardPath(const std::string& delta_path, uint32_t index) {
  return delta_path + ".shard" + std::to_string(index);
}

Status ReadEdgeDeltaManifest(const std::string& path, EdgeDeltaManifest* out,
                             IoStats* stats) {
  SequentialFileReader reader(stats);
  SEMIS_RETURN_IF_ERROR(reader.Open(path));
  uint32_t magic = 0, version = 0;
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&magic));
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (magic != kDeltaManifestMagic) {
    return Status::Corruption("bad magic in '" + path +
                              "': not an edge-delta manifest");
  }
  if (version != kVersion) {
    return Status::NotSupported("edge-delta manifest version " +
                                std::to_string(version) + " not supported");
  }
  EdgeDeltaManifest m;
  uint32_t num_shards = 0, reserved = 0;
  SEMIS_RETURN_IF_ERROR(reader.ReadU64(&m.num_vertices));
  SEMIS_RETURN_IF_ERROR(reader.ReadU64(&m.next_sequence));
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&num_shards));
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&reserved));
  if (num_shards == 0) {
    return Status::Corruption("edge-delta manifest '" + path +
                              "' declares zero shards");
  }
  // Bound BEFORE the resize: a hostile count must not make the reader
  // allocate gigabytes. Delta shards mirror SADJS shards, so the same
  // ceiling applies.
  if (num_shards > kMaxAdjacencyShards) {
    return Status::Corruption("edge-delta manifest '" + path +
                              "' declares an impossible shard count");
  }
  m.shard_entries.resize(num_shards);
  for (uint64_t& count : m.shard_entries) {
    SEMIS_RETURN_IF_ERROR(reader.ReadU64(&count));
    if (count > m.next_sequence) {
      return Status::Corruption("edge-delta manifest '" + path +
                                "' declares more entries in one shard than "
                                "updates in the stream");
    }
  }
  if (!reader.AtEof()) {
    return Status::Corruption("trailing bytes in edge-delta manifest '" +
                              path + "'");
  }
  *out = std::move(m);
  return Status::OK();
}

Status WriteEdgeDeltaManifest(const std::string& path,
                              const EdgeDeltaManifest& manifest,
                              IoStats* stats) {
  if (manifest.num_shards() == 0) {
    return Status::InvalidArgument("edge-delta manifest needs >= 1 shard");
  }
  // Write-then-rename so a crash mid-write never leaves a half manifest
  // (the manifest is rewritten after every flushed batch).
  const std::string tmp = path + ".tmp";
  SequentialFileWriter writer(stats);
  SEMIS_RETURN_IF_ERROR(writer.Open(tmp));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(kDeltaManifestMagic));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(kVersion));
  SEMIS_RETURN_IF_ERROR(writer.AppendU64(manifest.num_vertices));
  SEMIS_RETURN_IF_ERROR(writer.AppendU64(manifest.next_sequence));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(manifest.num_shards()));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(0));  // reserved
  for (uint64_t count : manifest.shard_entries) {
    SEMIS_RETURN_IF_ERROR(writer.AppendU64(count));
  }
  SEMIS_RETURN_IF_ERROR(writer.Close());
  SEMIS_RETURN_IF_ERROR(RenameFile(tmp, path));
  return Status::OK();
}

Status CreateEdgeDeltaShardLog(const std::string& delta_path, uint32_t index,
                               uint64_t num_vertices, IoStats* stats) {
  return CreateEdgeDeltaShardLogAtPath(EdgeDeltaShardPath(delta_path, index),
                                       index, num_vertices, stats);
}

Status CreateEdgeDeltaShardLogAtPath(const std::string& log_path,
                                     uint32_t index, uint64_t num_vertices,
                                     IoStats* stats) {
  SequentialFileWriter writer(stats);
  SEMIS_RETURN_IF_ERROR(writer.Open(log_path));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(kDeltaShardMagic));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(kVersion));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(index));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(0));  // reserved
  SEMIS_RETURN_IF_ERROR(writer.AppendU64(num_vertices));
  return writer.Close();
}

EdgeDeltaShardWriter::EdgeDeltaShardWriter(IoStats* stats) : writer_(stats) {}

Status EdgeDeltaShardWriter::Open(const std::string& delta_path,
                                  uint32_t index, uint64_t num_vertices) {
  return OpenAtPath(EdgeDeltaShardPath(delta_path, index), num_vertices);
}

Status EdgeDeltaShardWriter::OpenAtPath(const std::string& log_path,
                                        uint64_t num_vertices) {
  num_vertices_ = num_vertices;
  return writer_.OpenAppend(log_path);
}

Status EdgeDeltaShardWriter::Append(const EdgeDeltaEntry& entry) {
  if (entry.u >= num_vertices_ || entry.v >= num_vertices_) {
    return Status::InvalidArgument("delta entry vertex id out of range");
  }
  if (entry.u == entry.v) {
    return Status::InvalidArgument("delta entry is a self-loop");
  }
  SEMIS_RETURN_IF_ERROR(writer_.AppendU64(entry.seq));
  SEMIS_RETURN_IF_ERROR(
      writer_.AppendU32(static_cast<uint32_t>(entry.op)));
  SEMIS_RETURN_IF_ERROR(writer_.AppendU32(entry.u));
  return writer_.AppendU32(entry.v);
}

Status EdgeDeltaShardWriter::Close() { return writer_.Close(); }

EdgeDeltaShardReader::EdgeDeltaShardReader(IoStats* stats,
                                           bool tolerate_trailing_bytes)
    : reader_(stats), tolerate_trailing_bytes_(tolerate_trailing_bytes) {}

Status EdgeDeltaShardReader::Open(const std::string& delta_path,
                                  const EdgeDeltaManifest& manifest,
                                  uint32_t index) {
  if (index >= manifest.num_shards()) {
    return Status::InvalidArgument("delta shard index out of range");
  }
  path_ = EdgeDeltaShardPath(delta_path, index);
  num_vertices_ = manifest.num_vertices;
  num_entries_ = manifest.shard_entries[index];
  max_sequence_ = manifest.next_sequence;
  entries_seen_ = 0;
  last_seq_ = 0;
  any_seen_ = false;
  SEMIS_RETURN_IF_ERROR(reader_.Open(path_));
  uint32_t magic = 0, version = 0, file_index = 0, reserved = 0;
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&magic));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&version));
  if (magic != kDeltaShardMagic) {
    return Status::Corruption("bad magic in '" + path_ +
                              "': not an edge-delta shard log");
  }
  if (version != kVersion) {
    return Status::NotSupported("edge-delta shard log version " +
                                std::to_string(version) + " not supported");
  }
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&file_index));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&reserved));
  if (file_index != index) {
    return Status::Corruption("delta shard index mismatch in '" + path_ +
                              "'");
  }
  uint64_t file_vertices = 0;
  SEMIS_RETURN_IF_ERROR(reader_.ReadU64(&file_vertices));
  if (file_vertices != num_vertices_) {
    return Status::Corruption("delta shard log '" + path_ +
                              "' disagrees with manifest vertex count");
  }
  return Status::OK();
}

Status EdgeDeltaShardReader::Next(EdgeDeltaEntry* entry, bool* has_next) {
  if (entries_seen_ == num_entries_) {
    if (!reader_.AtEof()) {
      if (!tolerate_trailing_bytes_) {
        return Status::Corruption(
            "trailing bytes after last delta entry in '" + path_ + "'");
      }
      had_trailing_bytes_ = true;
    }
    *has_next = false;
    return Status::OK();
  }
  if (reader_.AtEof()) {
    return Status::Corruption(
        "delta shard log '" + path_ + "' truncated: expected " +
        std::to_string(num_entries_) + " entries, found " +
        std::to_string(entries_seen_));
  }
  EdgeDeltaEntry e;
  uint32_t op = 0;
  SEMIS_RETURN_IF_ERROR(reader_.ReadU64(&e.seq));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&op));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&e.u));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&e.v));
  e.op = static_cast<EdgeDeltaOp>(op);
  SEMIS_RETURN_IF_ERROR(ValidateEntry(e, num_vertices_, "'" + path_ + "'"));
  if (e.seq >= max_sequence_) {
    return Status::Corruption("delta entry sequence number beyond the "
                              "manifest's update count in '" + path_ + "'");
  }
  if (any_seen_ && e.seq <= last_seq_) {
    return Status::Corruption("delta entry sequence numbers not strictly "
                              "increasing in '" + path_ + "'");
  }
  last_seq_ = e.seq;
  any_seen_ = true;
  entries_seen_++;
  *entry = e;
  *has_next = true;
  return Status::OK();
}

Status EdgeDeltaShardReader::Close() { return reader_.Close(); }

Status ReadEdgeDeltaShardLog(const std::string& delta_path,
                             const EdgeDeltaManifest& manifest, uint32_t index,
                             std::vector<EdgeDeltaEntry>* out, IoStats* stats,
                             bool tolerate_trailing_bytes,
                             bool* had_trailing_bytes) {
  EdgeDeltaShardReader reader(stats, tolerate_trailing_bytes);
  SEMIS_RETURN_IF_ERROR(reader.Open(delta_path, manifest, index));
  EdgeDeltaEntry entry;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(reader.Next(&entry, &has_next));
    if (!has_next) break;
    out->push_back(entry);
  }
  if (had_trailing_bytes != nullptr) {
    *had_trailing_bytes = reader.had_trailing_bytes();
  }
  return reader.Close();
}

Status RemoveEdgeDelta(const std::string& delta_path, uint32_t num_shards) {
  SEMIS_RETURN_IF_ERROR(RemoveFileIfExists(delta_path));
  for (uint32_t i = 0; i < num_shards; ++i) {
    SEMIS_RETURN_IF_ERROR(
        RemoveFileIfExists(EdgeDeltaShardPath(delta_path, i)));
  }
  return Status::OK();
}

}  // namespace semis
