// Copyright (c) the semis authors.
// External-memory sort of (key, payload) records with a bounded main-memory
// budget: classic run formation + k-way merge. This is the substrate for
//   * converting raw edge lists into adjacency files (key = src vertex), and
//   * the paper's preprocessing step that orders adjacency lists by
//     ascending degree (key = (degree, id)), Section 4.1.
// The number of merge passes is log_{fan_in}(#runs), reproducing the
// (|V|+|E|)/B * (log_{M/B} |V|/B + 2) I/O shape of the paper's Table 1.
#ifndef SEMIS_IO_EXTERNAL_SORTER_H_
#define SEMIS_IO_EXTERNAL_SORTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/file.h"
#include "io/io_stats.h"
#include "io/scratch.h"
#include "util/status.h"

namespace semis {

class MemoryTracker;

/// Tuning knobs for ExternalSorter.
struct ExternalSorterOptions {
  /// Approximate bytes of record data buffered before a run is spilled.
  /// Must be positive: a zero budget would degenerate to one spilled run
  /// per record and is rejected with InvalidArgument.
  size_t memory_budget_bytes = 64ull << 20;
  /// Maximum number of runs merged at once (the paper's M/B). Must be at
  /// least 2; smaller values are rejected with InvalidArgument.
  size_t fan_in = 16;
  /// Directory for spill files. Empty = create a private ScratchDir.
  std::string scratch_dir;
  /// Optional I/O counters.
  IoStats* stats = nullptr;
  /// Optional logical-memory accounting: the sorter reports its buffered
  /// record bytes and merge-cursor buffers here, so a pipeline can fold
  /// the sort stage into its peak-memory figure.
  MemoryTracker* memory = nullptr;
};

/// Sorts records of the form (u64 key, u32 payload[len]) by ascending key;
/// ties are broken by insertion order of the run they landed in (stable
/// within a run, deterministic overall).
///
/// Usage:
///   ExternalSorter sorter(opts);
///   sorter.Add(key, data, len);  ... repeated ...
///   sorter.Finish();
///   while (sorter.Next(&key, &payload)) { ... }
class ExternalSorter {
 public:
  explicit ExternalSorter(ExternalSorterOptions options);
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Buffers one record, spilling a sorted run when the budget is hit.
  /// `payload` may be null when `len == 0`.
  Status Add(uint64_t key, const uint32_t* payload, uint32_t len);

  /// Convenience for payload-free keys.
  Status AddKey(uint64_t key) { return Add(key, nullptr, 0); }

  /// Seals input, runs intermediate merge passes if the number of runs
  /// exceeds the fan-in, and prepares the output stream.
  Status Finish();

  /// Produces the next record in ascending key order. Returns false at the
  /// end of the stream. Only valid after Finish(). Check status() when it
  /// returns false to distinguish EOF from an I/O failure.
  bool Next(uint64_t* key, std::vector<uint32_t>* payload);

  /// Error state of the output stream.
  const Status& status() const { return status_; }

  /// Total records added.
  uint64_t NumRecords() const { return num_records_; }

  /// Number of level-0 runs spilled (0 means fully in-memory sort).
  size_t NumInitialRuns() const { return initial_runs_; }

  /// Number of intermediate merge passes performed by Finish().
  size_t MergePasses() const { return merge_passes_; }

 private:
  struct RunCursor;

  Status ValidateOptions() const;
  Status SpillRun();
  Status MergeRuns(const std::vector<std::string>& inputs,
                   const std::string& output);
  bool NextFromMemory(uint64_t* key, std::vector<uint32_t>* payload);
  bool NextFromRuns(uint64_t* key, std::vector<uint32_t>* payload);

  ExternalSorterOptions options_;
  ScratchDir owned_scratch_;
  std::string scratch_path_;

  // In-memory buffer: index entries pointing into flat payload storage.
  struct IndexEntry {
    uint64_t key;
    uint64_t offset;  // into payload_pool_
    uint32_t len;
    uint32_t seq;  // insertion order for stable ties within a run
  };
  std::vector<IndexEntry> index_;
  std::vector<uint32_t> payload_pool_;

  std::vector<std::string> run_files_;
  std::vector<std::unique_ptr<RunCursor>> cursors_;

  Status status_;
  bool finished_ = false;
  size_t mem_used_ = 0;
  uint64_t num_records_ = 0;
  size_t initial_runs_ = 0;
  size_t merge_passes_ = 0;
  size_t mem_iter_ = 0;
};

}  // namespace semis

#endif  // SEMIS_IO_EXTERNAL_SORTER_H_
