// Copyright (c) the semis authors.
// The per-shard edge-delta overlay format ("SDELTA", version 1) layered on
// top of a sharded adjacency file (SADJS; see
// graph/sharded_adjacency_file.h). It records edge insertions and
// deletions relative to the base shards so a maintained independent set
// can follow an update stream without re-solving -- the paper's stated
// future-work scenario ("incremental massive graphs with frequent
// updates").
//
// Layout (little endian; full spec in docs/formats.md):
//
//   Delta manifest, at `<sadjs-manifest-path>.delta`:
//     u32 magic 'SDLM'  u32 version
//     u64 num_vertices   (must match the SADJS manifest)
//     u64 next_sequence  (sequence number of the next update)
//     u32 num_shards     (must match the SADJS manifest)
//     u32 reserved (0)
//     then per shard: u64 num_entries
//
//   Shard delta log, at `<delta-path>.shard<K>`:
//     u32 magic 'SDLS'  u32 version
//     u32 shard_index   u32 reserved (0)
//     u64 num_vertices  (global)
//     then entries: u64 seq  u32 op (0 insert / 1 delete)  u32 u  u32 v
//
// An update touching edge (u, v) is routed to the shard holding u's base
// record and (when different) the shard holding v's record; both copies
// carry the same sequence number, so a shard log holds every delta edge
// incident to the vertices whose records live in that shard, and a merge
// of all logs deduplicated by sequence number reproduces the exact global
// update stream. Within one log, sequence numbers are strictly
// increasing. Logs are append-only; the entry counts in the delta
// manifest are authoritative (rewritten after every flushed batch), so a
// crash mid-append loses at most the unflushed tail, never the counts'
// consistency.
//
// Readers validate everything they touch -- magic, version, shard index,
// vertex range, op codes, self-loops, sequence monotonicity, declared
// counts, trailing bytes -- and report Corruption instead of crashing on
// hostile or truncated input (the fuzz suite in
// tests/io/edge_delta_file_test.cc locks this in).
#ifndef SEMIS_IO_EDGE_DELTA_FILE_H_
#define SEMIS_IO_EDGE_DELTA_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/file.h"
#include "io/io_stats.h"
#include "util/common.h"
#include "util/status.h"

namespace semis {

/// Update kind of one delta entry.
enum class EdgeDeltaOp : uint32_t {
  kInsert = 0,
  kDelete = 1,
};

/// One logged edge update. `seq` is the position of the update in the
/// global stream; routed copies of the same update share it.
struct EdgeDeltaEntry {
  uint64_t seq = 0;
  EdgeDeltaOp op = EdgeDeltaOp::kInsert;
  VertexId u = 0;
  VertexId v = 0;
};

/// Parsed delta manifest.
struct EdgeDeltaManifest {
  uint64_t num_vertices = 0;
  /// Sequence number the next update will receive (== updates logged so
  /// far, counting each update once even when routed to two shards).
  uint64_t next_sequence = 0;
  /// Entries per shard log (authoritative; logs are append-only).
  std::vector<uint64_t> shard_entries;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shard_entries.size());
  }
};

/// Path of the delta manifest overlaying the SADJS file rooted at
/// `sadjs_manifest_path`.
std::string EdgeDeltaManifestPath(const std::string& sadjs_manifest_path);

/// Path of shard `index`'s delta log of the delta rooted at `delta_path`.
std::string EdgeDeltaShardPath(const std::string& delta_path, uint32_t index);

/// Reads and validates the delta manifest at `path`.
Status ReadEdgeDeltaManifest(const std::string& path, EdgeDeltaManifest* out,
                             IoStats* stats = nullptr);

/// Writes (or atomically overwrites) the delta manifest at `path`.
Status WriteEdgeDeltaManifest(const std::string& path,
                              const EdgeDeltaManifest& manifest,
                              IoStats* stats = nullptr);

/// Creates an empty delta log for shard `index` (header only).
Status CreateEdgeDeltaShardLog(const std::string& delta_path, uint32_t index,
                               uint64_t num_vertices,
                               IoStats* stats = nullptr);

/// As CreateEdgeDeltaShardLog, but at an explicit path instead of the
/// derived one. The epoch journal stages logs under temporary names
/// (write-new + rename) because a live log may be hard-linked into the
/// previous epoch's namespace, and truncating the shared inode in place
/// would corrupt the fallback epoch.
Status CreateEdgeDeltaShardLogAtPath(const std::string& log_path,
                                     uint32_t index, uint64_t num_vertices,
                                     IoStats* stats = nullptr);

/// Append-only writer for one shard's delta log. The log file must exist
/// (CreateEdgeDeltaShardLog); entries must arrive in strictly increasing
/// sequence order relative to the log's existing tail -- the writer only
/// validates the entries themselves (range, self-loop, op), ordering is
/// the caller's contract.
class EdgeDeltaShardWriter {
 public:
  /// `stats` may be null.
  explicit EdgeDeltaShardWriter(IoStats* stats = nullptr);

  /// Opens shard `index`'s log of the delta rooted at `delta_path` for
  /// appending.
  Status Open(const std::string& delta_path, uint32_t index,
              uint64_t num_vertices);

  /// Opens the log at an explicit path for appending (staging rewrites).
  Status OpenAtPath(const std::string& log_path, uint64_t num_vertices);

  /// Appends one entry.
  Status Append(const EdgeDeltaEntry& entry);

  /// Flushes and closes. Safe to call twice.
  Status Close();

 private:
  SequentialFileWriter writer_;
  uint64_t num_vertices_ = 0;
};

/// Forward-only validated reader of one shard's delta log.
class EdgeDeltaShardReader {
 public:
  /// `stats` may be null. With `tolerate_trailing_bytes`, bytes after the
  /// last manifest-declared entry end the stream instead of failing --
  /// the recovery path for a crash between a log append and the delta
  /// manifest republish, where the unmanifested tail is by definition an
  /// unflushed batch to be dropped. Default is strict.
  explicit EdgeDeltaShardReader(IoStats* stats = nullptr,
                                bool tolerate_trailing_bytes = false);

  /// Opens shard `index`'s log of the delta rooted at `delta_path`,
  /// validating the header against `manifest`.
  Status Open(const std::string& delta_path, const EdgeDeltaManifest& manifest,
              uint32_t index);

  /// Reads the next entry; `*has_next` is false after the last declared
  /// entry. Truncation, out-of-range ids, self-loops, unknown ops and
  /// non-increasing sequence numbers all yield Corruption; so do excess
  /// bytes unless the reader tolerates them.
  Status Next(EdgeDeltaEntry* entry, bool* has_next);

  /// True once Next() has hit (and swallowed) a trailing tail in
  /// tolerant mode. The caller is expected to rewrite the log.
  bool had_trailing_bytes() const { return had_trailing_bytes_; }

  /// Closes the underlying file. Safe to call twice.
  Status Close();

 private:
  SequentialFileReader reader_;
  std::string path_;
  bool tolerate_trailing_bytes_ = false;
  bool had_trailing_bytes_ = false;
  uint64_t num_vertices_ = 0;
  uint64_t num_entries_ = 0;
  uint64_t entries_seen_ = 0;
  uint64_t max_sequence_ = 0;
  uint64_t last_seq_ = 0;
  bool any_seen_ = false;
};

/// Convenience: reads shard `index`'s whole log into `out` (appended).
/// `had_trailing_bytes` (may be null) reports a swallowed tail when
/// `tolerate_trailing_bytes` is set.
Status ReadEdgeDeltaShardLog(const std::string& delta_path,
                             const EdgeDeltaManifest& manifest, uint32_t index,
                             std::vector<EdgeDeltaEntry>* out,
                             IoStats* stats = nullptr,
                             bool tolerate_trailing_bytes = false,
                             bool* had_trailing_bytes = nullptr);

/// Removes the delta manifest and every shard log of a `num_shards`-wide
/// delta rooted at `delta_path` (missing files are fine).
Status RemoveEdgeDelta(const std::string& delta_path, uint32_t num_shards);

}  // namespace semis

#endif  // SEMIS_IO_EDGE_DELTA_FILE_H_
