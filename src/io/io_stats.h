// Copyright (c) the semis authors.
// I/O accounting for the semi-external algorithms. The paper's cost model
// charges sequential scans of the adjacency file (|V|+|E|)/B blocks each;
// we count bytes moved and scans started so every bench can report the
// I/O column of its table.
#ifndef SEMIS_IO_IO_STATS_H_
#define SEMIS_IO_IO_STATS_H_

#include <algorithm>
#include <cstdint>

#include "util/common.h"

namespace semis {

/// Counters shared by all file-layer objects of one experiment. Plain
/// struct (RocksDB Statistics style); attach a pointer to readers/writers.
struct IoStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_calls = 0;
  uint64_t write_calls = 0;
  uint64_t files_opened = 0;
  /// Transient I/O failures absorbed by a RetryPolicy (io/env.h): each
  /// count is one extra attempt at a sound retry site (open, fsync,
  /// dir-fsync, root-pointer rename). Nonzero means the storage layer is
  /// degrading even though every operation eventually succeeded.
  uint64_t io_retries = 0;
  /// Number of full sequential scans of a graph file that were started.
  uint64_t sequential_scans = 0;
  /// Number of external-sort merge passes executed.
  uint64_t sort_passes = 0;
  /// Shard records decoded (every AdjacencyShardReader record; one
  /// logical pass over a sharded file decodes each record once).
  uint64_t records_decoded = 0;
  /// Record blocks published by the block-decode pipeline
  /// (ManifestOrderedShardCursor).
  uint64_t blocks_decoded = 0;
  /// Peak allocated arena capacity of one block ring's pool (high-water
  /// mark; merged with max, not sum).
  uint64_t arena_bytes = 0;
  /// Peak decoded-but-unconsumed payload bytes buffered in the block ring
  /// (high-water mark; merged with max, not sum).
  uint64_t peak_buffered_bytes = 0;

  /// Logical blocks read given `block_size` (the paper's B).
  uint64_t BlocksRead(uint64_t block_size = kDefaultBlockSize) const {
    return (bytes_read + block_size - 1) / block_size;
  }
  /// Logical blocks written given `block_size`.
  uint64_t BlocksWritten(uint64_t block_size = kDefaultBlockSize) const {
    return (bytes_written + block_size - 1) / block_size;
  }

  /// Accumulates another counter set into this one.
  void MergeFrom(const IoStats& other) {
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    read_calls += other.read_calls;
    write_calls += other.write_calls;
    files_opened += other.files_opened;
    io_retries += other.io_retries;
    sequential_scans += other.sequential_scans;
    sort_passes += other.sort_passes;
    records_decoded += other.records_decoded;
    blocks_decoded += other.blocks_decoded;
    // The peak counters describe a high-water mark, not traffic: merging
    // two stages keeps the larger mark instead of summing.
    arena_bytes = std::max(arena_bytes, other.arena_bytes);
    peak_buffered_bytes =
        std::max(peak_buffered_bytes, other.peak_buffered_bytes);
  }

  /// Resets all counters to zero.
  void Reset() { *this = IoStats(); }
};

}  // namespace semis

#endif  // SEMIS_IO_IO_STATS_H_
