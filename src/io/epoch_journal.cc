#include "io/epoch_journal.h"

#include <cstddef>

#include "io/file.h"
#include "util/crash_point.h"

namespace semis {

namespace {

// FNV-1a over the five leading u64-aligned words of the pointer record
// (magic, version, current, previous), mixed field by field so field
// order is part of the checksum.
uint64_t RootChecksum(const EpochRootPointer& root) {
  uint64_t h = 1469598103934665603ull;
  const uint64_t words[4] = {kEpochRootMagic, kEpochRootVersion,
                             root.current_epoch, root.previous_epoch};
  for (uint64_t w : words) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (w >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

std::string EpochManifestPath(const std::string& root_path, uint64_t epoch) {
  return root_path + ".epoch" + std::to_string(epoch);
}

Status ReadEpochRootPointer(const std::string& root_path,
                            EpochRootPointer* out, IoStats* stats) {
  uint64_t size = 0;
  SEMIS_RETURN_IF_ERROR(GetFileSize(root_path, &size));
  SequentialFileReader reader(stats, /*buffer_bytes=*/64);
  SEMIS_RETURN_IF_ERROR(reader.Open(root_path));
  uint32_t magic = 0;
  uint32_t version = 0;
  EpochRootPointer root;
  uint64_t checksum = 0;
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&magic));
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&version));
  SEMIS_RETURN_IF_ERROR(reader.ReadU64(&root.current_epoch));
  SEMIS_RETURN_IF_ERROR(reader.ReadU64(&root.previous_epoch));
  SEMIS_RETURN_IF_ERROR(reader.ReadU64(&checksum));
  if (magic != kEpochRootMagic) {
    return Status::Corruption("bad epoch root magic in '" + root_path + "'");
  }
  if (version != kEpochRootVersion) {
    return Status::Corruption("unsupported epoch root version " +
                              std::to_string(version) + " in '" + root_path +
                              "'");
  }
  if (!reader.AtEof()) {
    return Status::Corruption("trailing bytes after epoch root pointer in '" +
                              root_path + "'");
  }
  if (checksum != RootChecksum(root)) {
    return Status::Corruption("epoch root checksum mismatch in '" + root_path +
                              "'");
  }
  if (root.current_epoch == 0) {
    return Status::Corruption("epoch root names epoch 0 in '" + root_path +
                              "'");
  }
  if (root.previous_epoch >= root.current_epoch) {
    return Status::Corruption("epoch root previous >= current in '" +
                              root_path + "'");
  }
  *out = root;
  return Status::OK();
}

Status WriteEpochRootPointer(const std::string& root_path,
                             const EpochRootPointer& root, IoStats* stats) {
  if (root.current_epoch == 0 || root.previous_epoch >= root.current_epoch) {
    return Status::InvalidArgument("invalid epoch root pointer contents");
  }
  const std::string tmp = root_path + ".tmp";
  {
    SequentialFileWriter writer(stats, /*buffer_bytes=*/64);
    SEMIS_RETURN_IF_ERROR(writer.Open(tmp));
    SEMIS_RETURN_IF_ERROR(writer.AppendU32(kEpochRootMagic));
    SEMIS_RETURN_IF_ERROR(writer.AppendU32(kEpochRootVersion));
    SEMIS_RETURN_IF_ERROR(writer.AppendU64(root.current_epoch));
    SEMIS_RETURN_IF_ERROR(writer.AppendU64(root.previous_epoch));
    SEMIS_RETURN_IF_ERROR(writer.AppendU64(RootChecksum(root)));
    SEMIS_RETURN_IF_ERROR(writer.Sync());
    SEMIS_RETURN_IF_ERROR(writer.Close());
  }
  SEMIS_CRASH_POINT("epoch-root.tmp-durable");
  // The root-pointer rename is the commit point of the whole epoch
  // protocol and a sound retry site: rename(2) is atomic, so a transient
  // failure leaves either the old root or the new one, never a mixture --
  // re-issuing it cannot tear anything.
  SEMIS_RETURN_IF_ERROR(
      RetryIo(stats, [&] { return RenameFile(tmp, root_path); }));
  SEMIS_CRASH_POINT("epoch-root.renamed");
  SEMIS_RETURN_IF_ERROR(SyncParentDirectory(root_path));
  SEMIS_CRASH_POINT("epoch-root.dir-synced");
  return Status::OK();
}

Status ProbeFileMagic(const std::string& path, uint32_t* magic,
                      IoStats* stats) {
  uint64_t size = 0;
  SEMIS_RETURN_IF_ERROR(GetFileSize(path, &size));
  *magic = 0;
  if (size < sizeof(uint32_t)) return Status::OK();
  SequentialFileReader reader(stats, /*buffer_bytes=*/64);
  SEMIS_RETURN_IF_ERROR(reader.Open(path));
  return reader.ReadU32(magic);
}

}  // namespace semis
