#include "io/external_sorter.h"

#include <algorithm>
#include <queue>

#include "util/memory_tracker.h"

namespace semis {

namespace {
// Logical bytes charged per open run cursor (the reader's buffer size).
constexpr size_t kCursorBufferBytes = 1 << 20;
}  // namespace

// A sequential cursor over one sorted run file. Record layout:
//   u64 key, u32 len, u32 payload[len]
struct ExternalSorter::RunCursor {
  explicit RunCursor(IoStats* stats) : reader(stats) {}

  Status Open(const std::string& path) {
    SEMIS_RETURN_IF_ERROR(reader.Open(path));
    return Advance();
  }

  // Loads the next record into (key, payload). Sets `done` at EOF.
  Status Advance() {
    if (reader.AtEof()) {
      done = true;
      return Status::OK();
    }
    SEMIS_RETURN_IF_ERROR(reader.ReadU64(&key));
    uint32_t len = 0;
    SEMIS_RETURN_IF_ERROR(reader.ReadU32(&len));
    payload.resize(len);
    if (len > 0) {
      SEMIS_RETURN_IF_ERROR(
          reader.ReadExact(payload.data(), sizeof(uint32_t) * len));
    }
    return Status::OK();
  }

  SequentialFileReader reader;
  uint64_t key = 0;
  std::vector<uint32_t> payload;
  bool done = false;
};

ExternalSorter::ExternalSorter(ExternalSorterOptions options)
    : options_(std::move(options)) {}

ExternalSorter::~ExternalSorter() = default;

Status ExternalSorter::ValidateOptions() const {
  // Rejecting bad knobs loudly beats the historical behavior of silently
  // clamping fan_in to 2 and degenerating to one spilled run per record
  // when the budget was zero.
  if (options_.fan_in < 2) {
    return Status::InvalidArgument("fan_in must be at least 2, got " +
                                   std::to_string(options_.fan_in));
  }
  if (options_.memory_budget_bytes == 0) {
    return Status::InvalidArgument("memory_budget_bytes must be positive");
  }
  return Status::OK();
}

Status ExternalSorter::Add(uint64_t key, const uint32_t* payload,
                           uint32_t len) {
  SEMIS_RETURN_IF_ERROR(ValidateOptions());
  if (finished_) return Status::InvalidArgument("Add after Finish");
  IndexEntry e;
  e.key = key;
  e.offset = payload_pool_.size();
  e.len = len;
  e.seq = static_cast<uint32_t>(index_.size());
  if (len > 0) {
    payload_pool_.insert(payload_pool_.end(), payload, payload + len);
  }
  index_.push_back(e);
  num_records_++;
  mem_used_ += sizeof(IndexEntry) + sizeof(uint32_t) * len;
  if (mem_used_ >= options_.memory_budget_bytes) {
    SEMIS_RETURN_IF_ERROR(SpillRun());
  }
  return Status::OK();
}

Status ExternalSorter::SpillRun() {
  if (index_.empty()) return Status::OK();
  // The buffer is at its high-water mark right before a spill; recording
  // it here (and in Finish for the no-spill tail) keeps the tracker off
  // the per-record hot path while preserving the same observed peak.
  if (options_.memory != nullptr) {
    options_.memory->Set("sort-buffer", mem_used_);
  }
  if (scratch_path_.empty()) {
    if (!options_.scratch_dir.empty()) {
      scratch_path_ = options_.scratch_dir;
    } else {
      SEMIS_RETURN_IF_ERROR(ScratchDir::Create("semis-sort", &owned_scratch_));
      scratch_path_ = owned_scratch_.path();
    }
  }
  std::sort(index_.begin(), index_.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.seq < b.seq;
            });
  std::string path =
      scratch_path_ + "/run." + std::to_string(run_files_.size());
  SequentialFileWriter writer(options_.stats);
  SEMIS_RETURN_IF_ERROR(writer.Open(path));
  for (const IndexEntry& e : index_) {
    SEMIS_RETURN_IF_ERROR(writer.AppendU64(e.key));
    SEMIS_RETURN_IF_ERROR(writer.AppendU32(e.len));
    if (e.len > 0) {
      SEMIS_RETURN_IF_ERROR(writer.Append(payload_pool_.data() + e.offset,
                                          sizeof(uint32_t) * e.len));
    }
  }
  SEMIS_RETURN_IF_ERROR(writer.Close());
  run_files_.push_back(path);
  index_.clear();
  payload_pool_.clear();
  payload_pool_.shrink_to_fit();
  mem_used_ = 0;
  if (options_.memory != nullptr) options_.memory->Set("sort-buffer", 0);
  return Status::OK();
}

Status ExternalSorter::MergeRuns(const std::vector<std::string>& inputs,
                                 const std::string& output) {
  if (options_.memory != nullptr) {
    options_.memory->Set("sort-cursors", inputs.size() * kCursorBufferBytes);
  }
  std::vector<std::unique_ptr<RunCursor>> cursors;
  cursors.reserve(inputs.size());
  for (const std::string& in : inputs) {
    auto c = std::make_unique<RunCursor>(options_.stats);
    SEMIS_RETURN_IF_ERROR(c->Open(in));
    cursors.push_back(std::move(c));
  }
  // Min-heap over (key, cursor index); index tiebreak keeps the merge
  // deterministic.
  using HeapItem = std::pair<uint64_t, size_t>;
  auto cmp = [](const HeapItem& a, const HeapItem& b) { return a > b; };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(cmp)> heap(
      cmp);
  for (size_t i = 0; i < cursors.size(); ++i) {
    if (!cursors[i]->done) heap.emplace(cursors[i]->key, i);
  }
  SequentialFileWriter writer(options_.stats);
  SEMIS_RETURN_IF_ERROR(writer.Open(output));
  while (!heap.empty()) {
    auto [key, idx] = heap.top();
    heap.pop();
    RunCursor* c = cursors[idx].get();
    SEMIS_RETURN_IF_ERROR(writer.AppendU64(c->key));
    SEMIS_RETURN_IF_ERROR(
        writer.AppendU32(static_cast<uint32_t>(c->payload.size())));
    if (!c->payload.empty()) {
      SEMIS_RETURN_IF_ERROR(writer.Append(
          c->payload.data(), sizeof(uint32_t) * c->payload.size()));
    }
    SEMIS_RETURN_IF_ERROR(c->Advance());
    if (!c->done) heap.emplace(c->key, idx);
  }
  SEMIS_RETURN_IF_ERROR(writer.Close());
  for (const std::string& in : inputs) {
    SEMIS_RETURN_IF_ERROR(RemoveFileIfExists(in));
  }
  if (options_.memory != nullptr) options_.memory->Set("sort-cursors", 0);
  return Status::OK();
}

Status ExternalSorter::Finish() {
  SEMIS_RETURN_IF_ERROR(ValidateOptions());
  if (finished_) return Status::InvalidArgument("Finish called twice");
  finished_ = true;
  if (options_.memory != nullptr && mem_used_ > 0) {
    options_.memory->Set("sort-buffer", mem_used_);
  }
  if (run_files_.empty()) {
    // Everything fits in memory: sort in place and stream from the buffer.
    std::sort(index_.begin(), index_.end(),
              [](const IndexEntry& a, const IndexEntry& b) {
                if (a.key != b.key) return a.key < b.key;
                return a.seq < b.seq;
              });
    mem_iter_ = 0;
    return Status::OK();
  }
  // Input ended mid-buffer: spill the tail as one more run.
  SEMIS_RETURN_IF_ERROR(SpillRun());
  initial_runs_ = run_files_.size();
  // Intermediate passes until <= fan_in runs remain.
  while (run_files_.size() > options_.fan_in) {
    if (options_.stats != nullptr) options_.stats->sort_passes++;
    merge_passes_++;
    std::vector<std::string> next_level;
    for (size_t i = 0; i < run_files_.size(); i += options_.fan_in) {
      size_t end = std::min(i + options_.fan_in, run_files_.size());
      std::vector<std::string> group(run_files_.begin() + i,
                                     run_files_.begin() + end);
      if (group.size() == 1) {
        next_level.push_back(group[0]);
        continue;
      }
      std::string out = scratch_path_ + "/merge." +
                        std::to_string(merge_passes_) + "." +
                        std::to_string(next_level.size());
      SEMIS_RETURN_IF_ERROR(MergeRuns(group, out));
      next_level.push_back(out);
    }
    run_files_ = std::move(next_level);
  }
  // Final on-the-fly merge: open cursors for the surviving runs.
  if (options_.stats != nullptr) options_.stats->sort_passes++;
  if (options_.memory != nullptr) {
    options_.memory->Set("sort-cursors",
                         run_files_.size() * kCursorBufferBytes);
  }
  cursors_.reserve(run_files_.size());
  for (const std::string& path : run_files_) {
    auto c = std::make_unique<RunCursor>(options_.stats);
    SEMIS_RETURN_IF_ERROR(c->Open(path));
    cursors_.push_back(std::move(c));
  }
  return Status::OK();
}

bool ExternalSorter::NextFromMemory(uint64_t* key,
                                    std::vector<uint32_t>* payload) {
  if (mem_iter_ >= index_.size()) return false;
  const IndexEntry& e = index_[mem_iter_++];
  *key = e.key;
  payload->assign(payload_pool_.begin() + e.offset,
                  payload_pool_.begin() + e.offset + e.len);
  return true;
}

bool ExternalSorter::NextFromRuns(uint64_t* key,
                                  std::vector<uint32_t>* payload) {
  size_t best = cursors_.size();
  for (size_t i = 0; i < cursors_.size(); ++i) {
    if (cursors_[i]->done) continue;
    if (best == cursors_.size() || cursors_[i]->key < cursors_[best]->key) {
      best = i;
    }
  }
  if (best == cursors_.size()) return false;
  RunCursor* c = cursors_[best].get();
  *key = c->key;
  *payload = c->payload;
  Status s = c->Advance();
  if (!s.ok()) {
    status_ = s;
    return false;
  }
  return true;
}

bool ExternalSorter::Next(uint64_t* key, std::vector<uint32_t>* payload) {
  if (!finished_ || !status_.ok()) return false;
  if (run_files_.empty()) return NextFromMemory(key, payload);
  return NextFromRuns(key, payload);
}

}  // namespace semis
