#include "io/file.h"

#include <cstring>
#include <utility>

#include "io/env.h"

namespace semis {

// ---------------------------------------------------------------- writer --

SequentialFileWriter::SequentialFileWriter(IoStats* stats, size_t buffer_bytes)
    : stats_(stats), buffer_(buffer_bytes) {}

SequentialFileWriter::~SequentialFileWriter() { Close().IgnoreError(); }

Status SequentialFileWriter::Open(const std::string& path) {
  if (file_ != nullptr) return Status::InvalidArgument("writer already open");
  // Open is a sound retry site: nothing has been written yet, so a second
  // attempt cannot duplicate or reorder bytes.
  SEMIS_RETURN_IF_ERROR(RetryIo(
      stats_, [&] { return GetFileSystem()->NewWritableFile(path, &file_); }));
  path_ = path;
  buffered_ = 0;
  bytes_written_ = 0;
  deferred_error_ = Status::OK();
  if (stats_ != nullptr) stats_->files_opened++;
  return Status::OK();
}

Status SequentialFileWriter::OpenAppend(const std::string& path) {
  if (file_ != nullptr) return Status::InvalidArgument("writer already open");
  SEMIS_RETURN_IF_ERROR(RetryIo(stats_, [&] {
    return GetFileSystem()->NewAppendableFile(path, &file_);
  }));
  path_ = path;
  buffered_ = 0;
  bytes_written_ = 0;
  deferred_error_ = Status::OK();
  if (stats_ != nullptr) stats_->files_opened++;
  return Status::OK();
}

Status SequentialFileWriter::Append(const void* data, size_t n) {
  if (file_ == nullptr) return Status::InvalidArgument("writer not open");
  if (!deferred_error_.ok()) return deferred_error_;
  const char* src = static_cast<const char*>(data);
  bytes_written_ += n;
  if (stats_ != nullptr) {
    stats_->bytes_written += n;
    stats_->write_calls++;
  }
  while (n > 0) {
    size_t space = buffer_.size() - buffered_;
    if (space == 0) {
      SEMIS_RETURN_IF_ERROR(Flush());
      space = buffer_.size();
    }
    size_t chunk = n < space ? n : space;
    std::memcpy(buffer_.data() + buffered_, src, chunk);
    buffered_ += chunk;
    src += chunk;
    n -= chunk;
  }
  return Status::OK();
}

Status SequentialFileWriter::Flush() {
  if (file_ == nullptr) return Status::InvalidArgument("writer not open");
  if (!deferred_error_.ok()) return deferred_error_;
  if (buffered_ > 0) {
    Status s = file_->Write(buffer_.data(), buffered_);
    if (!s.ok()) {
      // Poison the writer: the kernel may have accepted part of the
      // buffer, so re-flushing would duplicate bytes. The error (which
      // carries strerror(errno) -- e.g. "No space left on device" -- from
      // the FileSystem layer) is what every later call reports.
      deferred_error_ = s;
      return s;
    }
    buffered_ = 0;
  }
  return Status::OK();
}

Status SequentialFileWriter::Sync() {
  SEMIS_RETURN_IF_ERROR(Flush());
  // fsync is a sound retry site: it transfers no new bytes, only asks the
  // kernel again for durability of what was already written.
  Status s = RetryIo(stats_, [&] { return file_->Sync(); });
  if (!s.ok()) {
    // A failed fsync leaves the page-cache state undefined (the kernel
    // may have dropped the dirty pages): poison the writer.
    deferred_error_ = s;
  }
  return s;
}

Status SequentialFileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status s = Flush();  // reports the deferred error, never re-writes
  Status close_status = file_->Close();
  if (!close_status.ok() && s.ok()) s = close_status;
  file_.reset();
  return s;
}

// ---------------------------------------------------------------- reader --

SequentialFileReader::SequentialFileReader(IoStats* stats, size_t buffer_bytes)
    : stats_(stats), buffer_(buffer_bytes) {}

SequentialFileReader::~SequentialFileReader() { Close().IgnoreError(); }

Status SequentialFileReader::Open(const std::string& path) {
  if (file_ != nullptr) return Status::InvalidArgument("reader already open");
  SEMIS_RETURN_IF_ERROR(RetryIo(
      stats_, [&] { return GetFileSystem()->NewReadableFile(path, &file_); }));
  path_ = path;
  buf_pos_ = buf_len_ = 0;
  hit_eof_ = false;
  pending_error_ = Status::OK();
  bytes_read_ = 0;
  if (stats_ != nullptr) stats_->files_opened++;
  return Status::OK();
}

Status SequentialFileReader::FillBuffer() {
  buf_pos_ = 0;
  buf_len_ = 0;
  Status s = file_->Read(buffer_.data(), buffer_.size(), &buf_len_);
  if (!s.ok()) {
    // Latch: a failed fill must keep failing. Without this, a caller
    // probing AtEof() after the error would see an empty buffer and
    // conclude "clean end of file" -- silently truncated data.
    pending_error_ = s;
    buf_len_ = 0;
    return s;
  }
  // RawFile::Read is short only at end of file.
  if (buf_len_ < buffer_.size()) hit_eof_ = true;
  return Status::OK();
}

Status SequentialFileReader::Read(void* out, size_t n, size_t* out_n) {
  if (file_ == nullptr) return Status::InvalidArgument("reader not open");
  if (!pending_error_.ok()) {
    *out_n = 0;
    return pending_error_;
  }
  char* dst = static_cast<char*>(out);
  size_t got = 0;
  while (n > 0) {
    if (buf_pos_ == buf_len_) {
      if (hit_eof_) break;
      Status s = FillBuffer();
      if (!s.ok()) {
        // Report how many bytes were delivered before the error; the
        // count must never be stale caller memory.
        *out_n = got;
        return s;
      }
      if (buf_len_ == 0) break;
    }
    size_t avail = buf_len_ - buf_pos_;
    size_t chunk = n < avail ? n : avail;
    std::memcpy(dst, buffer_.data() + buf_pos_, chunk);
    buf_pos_ += chunk;
    dst += chunk;
    got += chunk;
    n -= chunk;
  }
  bytes_read_ += got;
  if (stats_ != nullptr) {
    stats_->bytes_read += got;
    stats_->read_calls++;
  }
  *out_n = got;
  return Status::OK();
}

Status SequentialFileReader::ReadExact(void* out, size_t n) {
  size_t got = 0;
  SEMIS_RETURN_IF_ERROR(Read(out, n, &got));
  if (got != n) {
    return Status::Corruption("unexpected EOF in '" + path_ + "' (wanted " +
                              std::to_string(n) + " bytes, got " +
                              std::to_string(got) + ")");
  }
  return Status::OK();
}

bool SequentialFileReader::AtEof() {
  if (file_ == nullptr) return true;
  // An I/O error is not end of file: report "more to read" so the caller's
  // next Read surfaces the latched error instead of stopping cleanly.
  if (!pending_error_.ok()) return false;
  if (buf_pos_ < buf_len_) return false;
  if (hit_eof_) return true;
  // Peek one buffer ahead (a failed peek latches pending_error_).
  if (!FillBuffer().ok()) return false;
  return buf_len_ == 0;
}

Status SequentialFileReader::Close() {
  if (file_ == nullptr) return Status::OK();
  Status s = std::move(pending_error_);
  pending_error_ = Status::OK();
  Status close_status = file_->Close();
  if (!close_status.ok() && s.ok()) s = close_status;
  file_.reset();
  return s;
}

// --------------------------------------------------------------- helpers --

Status GetFileSize(const std::string& path, uint64_t* size) {
  return GetFileSystem()->GetFileSize(path, size);
}

Status RemoveFileIfExists(const std::string& path) {
  Status s = GetFileSystem()->RemoveFile(path);
  if (s.IsNotFound()) return Status::OK();
  return s;
}

Status SyncFile(const std::string& path) {
  // fsync-by-path retry: re-opening and re-syncing transfers no data.
  return RetryIo(nullptr,
                 [&] { return GetFileSystem()->SyncFile(path); });
}

Status SyncParentDirectory(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  return RetryIo(nullptr,
                 [&] { return GetFileSystem()->SyncDirectory(dir); });
}

Status HardLinkFile(const std::string& src, const std::string& dst) {
  return GetFileSystem()->HardLinkFile(src, dst);
}

Status RenameFile(const std::string& from, const std::string& to) {
  return GetFileSystem()->RenameFile(from, to);
}

}  // namespace semis
