#include "io/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace semis {

namespace {
std::string ErrnoMessage(const std::string& prefix, const std::string& path) {
  return prefix + " '" + path + "': " + std::strerror(errno);
}
}  // namespace

// ---------------------------------------------------------------- writer --

SequentialFileWriter::SequentialFileWriter(IoStats* stats, size_t buffer_bytes)
    : stats_(stats), buffer_(buffer_bytes) {}

SequentialFileWriter::~SequentialFileWriter() { Close().ok(); }

Status SequentialFileWriter::Open(const std::string& path) {
  if (file_ != nullptr) return Status::InvalidArgument("writer already open");
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError(ErrnoMessage("cannot create", path));
  }
  path_ = path;
  buffered_ = 0;
  bytes_written_ = 0;
  if (stats_ != nullptr) stats_->files_opened++;
  return Status::OK();
}

Status SequentialFileWriter::OpenAppend(const std::string& path) {
  if (file_ != nullptr) return Status::InvalidArgument("writer already open");
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound(ErrnoMessage("cannot append to", path));
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError(ErrnoMessage("cannot open for append", path));
  }
  path_ = path;
  buffered_ = 0;
  bytes_written_ = 0;
  if (stats_ != nullptr) stats_->files_opened++;
  return Status::OK();
}

Status SequentialFileWriter::Append(const void* data, size_t n) {
  if (file_ == nullptr) return Status::InvalidArgument("writer not open");
  const char* src = static_cast<const char*>(data);
  bytes_written_ += n;
  if (stats_ != nullptr) {
    stats_->bytes_written += n;
    stats_->write_calls++;
  }
  while (n > 0) {
    size_t space = buffer_.size() - buffered_;
    if (space == 0) {
      SEMIS_RETURN_IF_ERROR(Flush());
      space = buffer_.size();
    }
    size_t chunk = n < space ? n : space;
    std::memcpy(buffer_.data() + buffered_, src, chunk);
    buffered_ += chunk;
    src += chunk;
    n -= chunk;
  }
  return Status::OK();
}

Status SequentialFileWriter::Flush() {
  if (file_ == nullptr) return Status::InvalidArgument("writer not open");
  if (buffered_ > 0) {
    size_t written = std::fwrite(buffer_.data(), 1, buffered_, file_);
    if (written != buffered_) {
      return Status::IOError(ErrnoMessage("short write to", path_));
    }
    buffered_ = 0;
  }
  return Status::OK();
}

Status SequentialFileWriter::Sync() {
  SEMIS_RETURN_IF_ERROR(Flush());
  if (std::fflush(file_) != 0) {
    return Status::IOError(ErrnoMessage("fflush failed for", path_));
  }
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError(ErrnoMessage("fsync failed for", path_));
  }
  return Status::OK();
}

Status SequentialFileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status s = Flush();
  if (std::fclose(file_) != 0 && s.ok()) {
    s = Status::IOError(ErrnoMessage("close failed for", path_));
  }
  file_ = nullptr;
  return s;
}

// ---------------------------------------------------------------- reader --

SequentialFileReader::SequentialFileReader(IoStats* stats, size_t buffer_bytes)
    : stats_(stats), buffer_(buffer_bytes) {}

SequentialFileReader::~SequentialFileReader() { Close().ok(); }

Status SequentialFileReader::Open(const std::string& path) {
  if (file_ != nullptr) return Status::InvalidArgument("reader already open");
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError(ErrnoMessage("cannot open", path));
  }
  path_ = path;
  buf_pos_ = buf_len_ = 0;
  hit_eof_ = false;
  bytes_read_ = 0;
  if (stats_ != nullptr) stats_->files_opened++;
  return Status::OK();
}

Status SequentialFileReader::FillBuffer() {
  buf_pos_ = 0;
  buf_len_ = std::fread(buffer_.data(), 1, buffer_.size(), file_);
  if (buf_len_ < buffer_.size()) {
    if (std::ferror(file_)) {
      return Status::IOError(ErrnoMessage("read failed for", path_));
    }
    if (buf_len_ == 0) hit_eof_ = true;
  }
  return Status::OK();
}

Status SequentialFileReader::Read(void* out, size_t n, size_t* out_n) {
  if (file_ == nullptr) return Status::InvalidArgument("reader not open");
  char* dst = static_cast<char*>(out);
  size_t got = 0;
  while (n > 0) {
    if (buf_pos_ == buf_len_) {
      if (hit_eof_) break;
      SEMIS_RETURN_IF_ERROR(FillBuffer());
      if (buf_len_ == 0) break;
    }
    size_t avail = buf_len_ - buf_pos_;
    size_t chunk = n < avail ? n : avail;
    std::memcpy(dst, buffer_.data() + buf_pos_, chunk);
    buf_pos_ += chunk;
    dst += chunk;
    got += chunk;
    n -= chunk;
  }
  bytes_read_ += got;
  if (stats_ != nullptr) {
    stats_->bytes_read += got;
    stats_->read_calls++;
  }
  *out_n = got;
  return Status::OK();
}

Status SequentialFileReader::ReadExact(void* out, size_t n) {
  size_t got = 0;
  SEMIS_RETURN_IF_ERROR(Read(out, n, &got));
  if (got != n) {
    return Status::Corruption("unexpected EOF in '" + path_ + "' (wanted " +
                              std::to_string(n) + " bytes, got " +
                              std::to_string(got) + ")");
  }
  return Status::OK();
}

bool SequentialFileReader::AtEof() {
  if (file_ == nullptr) return true;
  if (buf_pos_ < buf_len_) return false;
  if (hit_eof_) return true;
  // Peek one buffer ahead.
  Status s = FillBuffer();
  if (!s.ok()) return true;
  return buf_len_ == 0;
}

Status SequentialFileReader::Close() {
  if (file_ == nullptr) return Status::OK();
  Status s = Status::OK();
  if (std::fclose(file_) != 0) {
    s = Status::IOError(ErrnoMessage("close failed for", path_));
  }
  file_ = nullptr;
  return s;
}

// --------------------------------------------------------------- helpers --

Status GetFileSize(const std::string& path, uint64_t* size) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound(ErrnoMessage("stat failed for", path));
  }
  *size = static_cast<uint64_t>(st.st_size);
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("remove failed for", path));
  }
  return Status::OK();
}

Status SyncFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot open to sync", path));
  Status s = Status::OK();
  if (::fsync(fd) != 0) s = Status::IOError(ErrnoMessage("fsync failed for", path));
  ::close(fd);
  return s;
}

Status SyncParentDirectory(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot open dir", dir));
  Status s = Status::OK();
  // Some filesystems refuse fsync on directory fds (EINVAL); the rename
  // is still atomic there, so only real I/O errors are reported.
  if (::fsync(fd) != 0 && errno != EINVAL) {
    s = Status::IOError(ErrnoMessage("fsync failed for dir", dir));
  }
  ::close(fd);
  return s;
}

Status HardLinkFile(const std::string& src, const std::string& dst) {
  if (::link(src.c_str(), dst.c_str()) != 0) {
    return Status::IOError(ErrnoMessage("cannot hard-link to '" + dst + "' from",
                                        src));
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError(ErrnoMessage("cannot rename to '" + to + "' from",
                                        from));
  }
  return Status::OK();
}

}  // namespace semis
