// Copyright (c) the semis authors.
// Scratch-space management for spill files (external sort runs, priority
// queue runs, intermediate adjacency files).
#ifndef SEMIS_IO_SCRATCH_H_
#define SEMIS_IO_SCRATCH_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace semis {

/// A uniquely-named temporary directory that removes itself (and its
/// contents) on destruction. Movable, not copyable.
class ScratchDir {
 public:
  ScratchDir() = default;
  ~ScratchDir();

  ScratchDir(ScratchDir&& other) noexcept;
  ScratchDir& operator=(ScratchDir&& other) noexcept;
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  /// Creates a fresh directory under $TMPDIR (or /tmp when unset/empty)
  /// named `<prefix>.XXXXXX`. Trailing slashes in $TMPDIR are ignored.
  /// Returns InvalidArgument when `out` is null.
  static Status Create(const std::string& prefix, ScratchDir* out);

  /// Absolute path of the directory ("" if not created).
  const std::string& path() const { return path_; }

  /// Returns a unique file path inside the directory, `<tag>.<counter>`.
  std::string NewFilePath(const std::string& tag);

  /// Removes the directory tree now (also done by the destructor, which
  /// ignores the result -- a destructor cannot propagate). Reports a
  /// failure to delete the tree instead of swallowing it: leaked scratch
  /// space on a long-lived engine is an operational bug the caller must
  /// hear about. The path is cleared either way, so a failed Remove does
  /// not retry forever.
  Status Remove();

 private:
  std::string path_;
  uint64_t counter_ = 0;
};

}  // namespace semis

#endif  // SEMIS_IO_SCRATCH_H_
