// Copyright (c) the semis authors.
// The epoch root pointer: the single small file whose atomic replacement
// commits a multi-file mutation of a sharded store.
//
// A journaled SADJS store rooted at `<root>` keeps its actual manifest
// (and everything derived from it: shards, delta manifest, delta logs)
// under per-epoch names `<root>.epoch<E>*`, and `<root>` itself holds a
// fixed-size SEPR root pointer naming the current epoch plus the previous
// one kept as a fallback. Commit protocol (see docs/formats.md "Epoch
// journal"):
//
//   1. write every file of epoch E+1 under its own names (fresh writes or
//      hard links to unchanged epoch-E files), fsync them;
//   2. fsync the parent directory (the new names are now durable);
//   3. write `<root>.tmp` with {current = E+1, previous = E}, fsync,
//      rename over `<root>`, fsync the directory.
//
// A crash anywhere before step 3's rename leaves `<root>` pointing at
// epoch E, whose files are untouched -- the half-written E+1 files are
// orphans removed by GC. After the rename the store IS epoch E+1.
// Recovery (graph/shard_store.h) validates the pointed-to epoch and falls
// back to `previous` if it is damaged.
//
// The pointer is checksummed so a torn or scribbled root reads as
// Corruption instead of as a bogus epoch number.
#ifndef SEMIS_IO_EPOCH_JOURNAL_H_
#define SEMIS_IO_EPOCH_JOURNAL_H_

#include <cstdint>
#include <string>

#include "io/io_stats.h"
#include "util/status.h"

namespace semis {

/// Magic of the root pointer file: "SEPR" little-endian.
inline constexpr uint32_t kEpochRootMagic = 0x52504553u;
inline constexpr uint32_t kEpochRootVersion = 1;

/// Contents of a root pointer. Epoch numbers start at 1; previous_epoch 0
/// means "no fallback epoch" (the store was just converted or the
/// previous epoch was already retired by a fallback).
struct EpochRootPointer {
  uint64_t current_epoch = 0;
  uint64_t previous_epoch = 0;
};

/// `<root>.epoch<E>`: the SADJS manifest path of epoch E. Shard and delta
/// paths derive from it through the usual ShardFilePath /
/// EdgeDeltaManifestPath functions.
std::string EpochManifestPath(const std::string& root_path, uint64_t epoch);

/// Reads and validates a root pointer: magic, version, checksum, a
/// current epoch >= 1 and previous < current. Corruption on any mismatch,
/// NotFound if the file is missing.
Status ReadEpochRootPointer(const std::string& root_path,
                            EpochRootPointer* out, IoStats* stats = nullptr);

/// Durably publishes `root`: writes `<root>.tmp`, fsyncs it, renames it
/// over `<root>`, and fsyncs the parent directory. This is the commit
/// point of the epoch protocol -- everything epoch `current` references
/// must already be durable when this is called.
Status WriteEpochRootPointer(const std::string& root_path,
                             const EpochRootPointer& root,
                             IoStats* stats = nullptr);

/// Cheap probe: reads the first 4 bytes of `path` into `*magic` (0 if the
/// file is shorter). NotFound if missing. Used to route journaled vs
/// legacy stores without parsing either format.
Status ProbeFileMagic(const std::string& path, uint32_t* magic,
                      IoStats* stats = nullptr);

}  // namespace semis

#endif  // SEMIS_IO_EPOCH_JOURNAL_H_
