// Copyright (c) the semis authors.
// Process-wide I/O environment seam (LevelDB/RocksDB Env style). Every
// byte the library moves to or from disk flows through the FileSystem
// returned by GetFileSystem(): the buffered SequentialFileWriter/Reader,
// the durability helpers (SyncFile / SyncParentDirectory), the metadata
// ops (rename / hard-link / remove / stat), and ScratchDir. Swapping the
// FileSystem makes the error path as deterministic and testable as the
// happy path: tests install a FaultInjectionFileSystem in-process, and
// SEMIS_FAULT_SPEC arms the same machinery process-wide for shell-level
// error sweeps (the errno twin of SEMIS_CRASH_POINT).
#ifndef SEMIS_IO_ENV_H_
#define SEMIS_IO_ENV_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "io/io_stats.h"
#include "util/status.h"

namespace semis {

/// Classes of filesystem operation, for fault matching and diagnostics.
/// One value per distinct failure surface: a fault spec names one of
/// these and an occurrence index.
enum class IoOp {
  kOpen,        // any file open (read, write, or append)
  kRead,        // RawFile::Read
  kWrite,       // RawFile::Write
  kSync,        // RawFile::Sync and FileSystem::SyncFile (fsync)
  kSyncDir,     // FileSystem::SyncDirectory (directory fsync)
  kRename,      // FileSystem::RenameFile
  kLink,        // FileSystem::HardLinkFile
  kRemove,      // FileSystem::RemoveFile
  kStat,        // FileSystem::GetFileSize
  kMkdir,       // FileSystem::CreateTempDir
  kRemoveTree,  // FileSystem::RemoveTree
};

/// Lower-case token for `op` ("open", "read", ...), as used in fault
/// specs and error messages.
const char* IoOpName(IoOp op);

/// An open file handle: unbuffered, sequential, position implicit.
/// SequentialFileWriter/Reader add user-space buffering on top, so
/// implementations see one Read/Write per buffer fill/flush, not per
/// record.
class RawFile {
 public:
  virtual ~RawFile() = default;

  /// Reads up to `n` bytes into `out`; `*out_n` receives the count
  /// actually read. A short count means end-of-file, never a swallowed
  /// error (implementations retry EINTR internally).
  virtual Status Read(void* out, size_t n, size_t* out_n) = 0;

  /// Writes exactly `n` bytes or returns an error carrying the failing
  /// errno (short kernel writes are continued internally).
  virtual Status Write(const void* data, size_t n) = 0;

  /// fsync(2)s the file.
  virtual Status Sync() = 0;

  /// Closes the handle. Safe to call twice; the second call is a no-op.
  virtual Status Close() = 0;
};

/// The seam. Pure-virtual so a fault-injection (or, later, remote /
/// object-store) implementation can wrap or replace the POSIX one.
/// All methods are thread-safe.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Implementation name for diagnostics ("posix", "fault-injection").
  virtual const char* Name() const = 0;

  /// Creates or truncates `path` for writing.
  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<RawFile>* out) = 0;
  /// Opens an existing `path` for appending (NotFound when missing --
  /// appending to a missing file almost always means a lost header).
  virtual Status NewAppendableFile(const std::string& path,
                                   std::unique_ptr<RawFile>* out) = 0;
  /// Opens `path` for reading from the beginning.
  virtual Status NewReadableFile(const std::string& path,
                                 std::unique_ptr<RawFile>* out) = 0;

  /// Size of `path` in bytes; NotFound when it does not exist.
  virtual Status GetFileSize(const std::string& path, uint64_t* size) = 0;
  /// Removes `path`; NotFound when it does not exist.
  virtual Status RemoveFile(const std::string& path) = 0;
  /// fsync(2)s an existing file by path (open + fsync + close).
  virtual Status SyncFile(const std::string& path) = 0;
  /// fsync(2)s directory `dir`, making renames/creates/links of entries
  /// in it durable. Filesystems that refuse directory fsync (EINVAL)
  /// are tolerated.
  virtual Status SyncDirectory(const std::string& dir) = 0;
  /// rename(2): atomically replaces `to` with `from`.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  /// link(2): hard link `dst` to `src`'s inode; fails if `dst` exists.
  virtual Status HardLinkFile(const std::string& src,
                              const std::string& dst) = 0;
  /// mkdtemp(3): `tmpl` must end in "XXXXXX"; `*out_path` receives the
  /// created directory's path.
  virtual Status CreateTempDir(const std::string& tmpl,
                               std::string* out_path) = 0;
  /// Recursively removes the tree rooted at `path` (missing is OK).
  virtual Status RemoveTree(const std::string& path) = 0;
};

/// The real thing: POSIX syscalls, errno carried into every Status.
/// Singleton; never destroyed.
FileSystem* PosixFileSystem();

/// The process-wide FileSystem all library I/O routes through. Default
/// resolution order: an explicit SetFileSystem() override, else a
/// FaultInjectionFileSystem when SEMIS_FAULT_SPEC is set in the
/// environment (parsed once, lazily), else PosixFileSystem().
FileSystem* GetFileSystem();

/// Installs `fs` as the process-wide FileSystem (nullptr restores the
/// default resolution). Intended for tests and tools; not synchronized
/// against in-flight I/O, so install before spawning worker threads.
void SetFileSystem(FileSystem* fs);

/// RAII override: installs `fs` for the scope, restores the previous
/// override on destruction.
class ScopedFileSystem {
 public:
  explicit ScopedFileSystem(FileSystem* fs);
  ~ScopedFileSystem();

  ScopedFileSystem(const ScopedFileSystem&) = delete;
  ScopedFileSystem& operator=(const ScopedFileSystem&) = delete;

 private:
  FileSystem* prev_;
};

// ------------------------------------------------------------------------
// Fault injection
// ------------------------------------------------------------------------

/// One deterministic fault: "the Nth operation of class `op` (whose path
/// contains `path_substr`, when set) fails with `fault_errno`".
///
/// Spec string grammar (SEMIS_FAULT_SPEC and FaultSpec::Parse):
///
///   <op>:<nth>[:<ERRNO>][:sticky][:short][@<path-substr>]
///
///   op       open|read|write|sync|syncdir|rename|link|remove|stat|
///            mkdir|rmtree|any
///   nth      1-based index of the matching operation to fault
///   ERRNO    EIO (default) | ENOSPC | EINTR | EAGAIN | EACCES | ENOENT
///            | EROFS
///   sticky   every matching op from the nth on fails (default: only the
///            nth -- a transient fault a RetryPolicy can absorb)
///   short    reads/writes transfer half the requested bytes into/out of
///            the real file before failing (a torn transfer, not a clean
///            rejection)
///
/// Examples: "write:3:ENOSPC", "sync:1", "rename:2:EIO:sticky",
/// "write:5:EIO:short@.epoch".
struct FaultSpec {
  IoOp op = IoOp::kWrite;
  bool any_op = false;        // match every op class
  uint64_t nth = 1;           // 1-based index of the matching op to fault
  int fault_errno = 0;        // EIO by default (set by Parse/ctor use)
  bool sticky = false;        // fault all matching ops from the nth on
  bool short_transfer = false;  // torn read/write instead of clean fail
  std::string path_substr;    // "" = match any path
  bool announce = false;      // print an injection line to stderr

  /// Parses the grammar above. On error returns InvalidArgument and
  /// leaves `*out` untouched.
  static Status Parse(const std::string& spec, FaultSpec* out);

  /// Round-trips back to spec-string form (for diagnostics).
  std::string ToString() const;
};

/// A FileSystem decorator that injects the fault described by a
/// FaultSpec and forwards everything else to `base`. Operation counting
/// is atomic, so the Nth-match rule is exact even under concurrent I/O
/// (which op wins the race is scheduling-dependent; the *number* of
/// faults injected is not).
class FaultInjectionFileSystem : public FileSystem {
 public:
  FaultInjectionFileSystem(FileSystem* base, FaultSpec spec);

  const char* Name() const override { return "fault-injection"; }

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<RawFile>* out) override;
  Status NewAppendableFile(const std::string& path,
                           std::unique_ptr<RawFile>* out) override;
  Status NewReadableFile(const std::string& path,
                         std::unique_ptr<RawFile>* out) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncFile(const std::string& path) override;
  Status SyncDirectory(const std::string& dir) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status HardLinkFile(const std::string& src,
                      const std::string& dst) override;
  Status CreateTempDir(const std::string& tmpl,
                       std::string* out_path) override;
  Status RemoveTree(const std::string& path) override;

  /// Operations seen that matched the spec's op class + path filter.
  uint64_t ops_matched() const {
    return matched_.load(std::memory_order_relaxed);
  }
  /// Faults actually injected (0 or 1 unless sticky).
  uint64_t faults_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// True (and fills `*error` with the injected Status) when the next
  /// occurrence of `op` on `path` must fail. Exposed for the RawFile
  /// wrappers; counts the occurrence either way.
  bool ShouldFault(IoOp op, const std::string& path, Status* error);

  /// Whether injected read/write faults tear the transfer (half the
  /// bytes move through the base file before the error).
  bool short_transfer() const { return spec_.short_transfer; }

 private:
  FileSystem* base_;
  FaultSpec spec_;
  std::atomic<uint64_t> matched_{0};
  std::atomic<uint64_t> injected_{0};
};

// ------------------------------------------------------------------------
// Retry policy
// ------------------------------------------------------------------------

/// Bounded, deterministic retry for the few I/O sites where a retry is
/// sound: open, fsync, directory fsync, and the epoch root-pointer
/// rename. Everything else propagates the first error -- retrying a
/// mid-stream buffered write would duplicate bytes.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retry).
  int max_attempts = 3;
  /// Sleep before retry k (1-based) is `backoff_us << (k - 1)`
  /// microseconds: deterministic exponential backoff, no jitter (this is
  /// a single-machine store, not a distributed lock).
  unsigned backoff_us = 1000;
};

/// The process-wide policy: defaults above, overridable via
/// SEMIS_IO_RETRY_ATTEMPTS / SEMIS_IO_RETRY_BACKOFF_US (parsed once).
const RetryPolicy& DefaultRetryPolicy();

/// True when `s` is an IOError whose captured errno is worth retrying:
/// EINTR, EAGAIN, or EIO (media hiccups are the paper's operational
/// reality on spinning disks). ENOSPC, ENOENT, EACCES, EROFS are
/// permanent -- retrying cannot help and only delays the caller.
bool IsTransientIoError(const Status& s);

/// Sleeps the deterministic backoff for 1-based retry `attempt`.
void RetryBackoffSleep(const RetryPolicy& policy, int attempt);

/// Runs `op` (a callable returning Status) up to `policy.max_attempts`
/// times, retrying only transient errors, charging each retry to
/// `stats->io_retries` (stats may be null). Returns the final Status.
/// A template rather than std::function so the happy path allocates
/// nothing.
template <typename Op>
Status RetryIo(const RetryPolicy& policy, IoStats* stats, Op&& op) {
  Status s = op();
  for (int attempt = 1; attempt < policy.max_attempts && IsTransientIoError(s);
       ++attempt) {
    if (stats != nullptr) stats->io_retries++;
    RetryBackoffSleep(policy, attempt);
    s = op();
  }
  return s;
}

/// RetryIo with the process-wide DefaultRetryPolicy().
template <typename Op>
Status RetryIo(IoStats* stats, Op&& op) {
  return RetryIo(DefaultRetryPolicy(), stats, std::forward<Op>(op));
}

}  // namespace semis

#endif  // SEMIS_IO_ENV_H_
