// Copyright (c) the semis authors.
// Logical memory accounting for the semi-external algorithms.
//
// The paper's Table 6 reports the main-memory footprint of each algorithm
// (state array, ISN entries, SC sets, ...). To make that column
// reproducible we do not sample the OS RSS -- we account the bytes of every
// in-memory structure an algorithm allocates, by category, and track the
// peak. This mirrors RocksDB's approach of explicit usage accounting
// (e.g. WriteBufferManager) rather than heap introspection.
#ifndef SEMIS_UTIL_MEMORY_TRACKER_H_
#define SEMIS_UTIL_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace semis {

/// Tracks logical bytes per named category plus the global peak.
/// Not thread-safe; each algorithm run owns its tracker.
class MemoryTracker {
 public:
  MemoryTracker() = default;

  /// Records an allocation of `bytes` under `category`.
  void Add(const std::string& category, size_t bytes);

  /// Records a release of `bytes` under `category`. Clamps at zero to stay
  /// robust against double-release bugs in callers (a warning-level event,
  /// not worth crashing a long experiment for).
  void Sub(const std::string& category, size_t bytes);

  /// Sets the absolute usage of `category` (convenience for structures that
  /// grow monotonically and are measured in place).
  void Set(const std::string& category, size_t bytes);

  /// Current total across categories.
  size_t CurrentBytes() const { return current_; }

  /// Highest value CurrentBytes() has reached.
  size_t PeakBytes() const { return peak_; }

  /// Current usage of one category (0 if absent).
  size_t CategoryBytes(const std::string& category) const;

  /// Peak usage of one category (0 if absent).
  size_t CategoryPeakBytes(const std::string& category) const;

  /// All category names seen so far, sorted.
  std::vector<std::string> Categories() const;

  /// Formats e.g. 483928 -> "472.6KB"; used by the bench tables.
  static std::string FormatBytes(size_t bytes);

 private:
  struct Entry {
    size_t current = 0;
    size_t peak = 0;
  };
  void Bump(Entry* e, size_t newval);

  std::map<std::string, Entry> categories_;
  size_t current_ = 0;
  size_t peak_ = 0;
};

}  // namespace semis

#endif  // SEMIS_UTIL_MEMORY_TRACKER_H_
