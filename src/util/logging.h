// Copyright (c) the semis authors.
// Minimal leveled logger for library diagnostics. Kept printf-flavoured so
// hot paths never pay for formatting when the level is filtered out.
#ifndef SEMIS_UTIL_LOGGING_H_
#define SEMIS_UTIL_LOGGING_H_

#include <cstdarg>

namespace semis {

/// Severity levels, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kWarn so
/// library consumers see problems but not chatter. Benches raise to kInfo.
void SetLogLevel(LogLevel level);

/// Current threshold.
LogLevel GetLogLevel();

/// printf-style log statement to stderr, prefixed with the level tag.
void Logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace semis

#endif  // SEMIS_UTIL_LOGGING_H_
