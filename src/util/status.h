// Copyright (c) the semis authors.
// LevelDB/RocksDB-style Status object: cheap success path, descriptive
// error path, no exceptions on hot code paths.
#ifndef SEMIS_UTIL_STATUS_H_
#define SEMIS_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace semis {

/// Outcome of an operation that can fail. Follows the database-engine
/// convention (LevelDB/RocksDB): functions return a `Status` instead of
/// throwing; callers test `ok()` and propagate.
///
/// `[[nodiscard]]`: silently dropping a Status is how I/O errors turn
/// into corrupted output, so the compiler rejects it. A call site that
/// genuinely cannot propagate (a destructor, a best-effort cleanup path)
/// must say so explicitly with `.IgnoreError()` -- that token is the
/// greppable audit trail of every swallowed error in the tree.
class [[nodiscard]] Status {
 public:
  /// Error category. Kept deliberately small; the message carries detail.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kIOError,
    kCorruption,
    kNotFound,
    kNotSupported,
    kFailedPrecondition,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with message `msg`.
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  /// Returns an IOError status with message `msg`. `sys_errno` optionally
  /// carries the originating errno value so retry policies can classify
  /// the failure as transient or permanent (0 = unknown/none).
  static Status IOError(std::string msg, int sys_errno = 0) {
    return Status(Code::kIOError, std::move(msg), sys_errno);
  }
  /// Returns a Corruption status with message `msg`.
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  /// Returns a NotFound status with message `msg`.
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  /// Returns a NotSupported status with message `msg`.
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  /// Returns a FailedPrecondition status with message `msg`: the operation
  /// was rejected because the object is in a state that forbids it (e.g. a
  /// degraded read-only engine), not because the request itself is
  /// malformed.
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == Code::kOk; }
  /// True iff this is an IOError.
  bool IsIOError() const { return code_ == Code::kIOError; }
  /// True iff this is a Corruption error.
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  /// True iff this is an InvalidArgument error.
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  /// True iff this is a NotFound error.
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  /// True iff this is a FailedPrecondition error.
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }

  /// Error category of this status.
  Code code() const { return code_; }
  /// The errno captured at the failing syscall, or 0 when unknown (only
  /// ever nonzero on IOError). Used by RetryPolicy classification.
  int sys_errno() const { return sys_errno_; }
  /// Human-readable message ("" when OK).
  const std::string& message() const { return msg_; }
  /// Renders "OK" or "<category>: <message>" for logs and test output.
  std::string ToString() const;

  /// The ONLY sanctioned way to drop a Status. Deliberately a named
  /// no-op rather than a void cast: `.IgnoreError()` survives grep and
  /// code review, `(void)` does not. Use it exclusively where
  /// propagation is impossible (destructors) or meaningless (cleanup of
  /// a path that is already failing).
  void IgnoreError() const {}

 private:
  Status(Code code, std::string msg, int sys_errno = 0)
      : code_(code), sys_errno_(sys_errno), msg_(std::move(msg)) {}

  Code code_;
  int sys_errno_ = 0;
  std::string msg_;
};

/// A `Status` or, on success, a value of type `T`. The lightweight
/// analogue of absl::StatusOr for APIs whose natural result is a value
/// rather than an out-parameter. Like `Status` it is `[[nodiscard]]`:
/// dropping one silently drops an error.
///
/// Accessors assert `ok()`; callers must test before dereferencing
/// (exactly the `Status` discipline, with the value riding along).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a value: `return result;` just works.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from a non-OK status: `return Status::IOError(...)` just
  /// works. Constructing from an OK status is a bug (there would be no
  /// value), reported as an assertion.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK without a value");
    if (status_.ok()) {
      status_ = Status::InvalidArgument(
          "StatusOr constructed from OK status without a value");
    }
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The status ( OK iff a value is present).
  const Status& status() const& { return status_; }
  /// Moves the status out (for propagation).
  Status status() && { return std::move(status_); }

  /// The value. Requires ok().
  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// See Status::IgnoreError().
  void IgnoreError() const {}

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller. Mirrors RocksDB's pattern.
#define SEMIS_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::semis::Status _semis_status = (expr);         \
    if (!_semis_status.ok()) return _semis_status;  \
  } while (0)

/// Unwraps a StatusOr into `lhs`, propagating a non-OK status. `lhs` may
/// be a declaration (`SEMIS_ASSIGN_OR_RETURN(auto x, MakeX())`).
#define SEMIS_ASSIGN_OR_RETURN(lhs, expr)                        \
  SEMIS_ASSIGN_OR_RETURN_IMPL_(                                  \
      SEMIS_STATUS_CONCAT_(_semis_statusor, __LINE__), lhs, expr)

#define SEMIS_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                 \
  if (!var.ok()) return std::move(var).status();     \
  lhs = std::move(var).value()

#define SEMIS_STATUS_CONCAT_(a, b) SEMIS_STATUS_CONCAT_IMPL_(a, b)
#define SEMIS_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace semis

#endif  // SEMIS_UTIL_STATUS_H_
