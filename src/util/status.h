// Copyright (c) the semis authors.
// LevelDB/RocksDB-style Status object: cheap success path, descriptive
// error path, no exceptions on hot code paths.
#ifndef SEMIS_UTIL_STATUS_H_
#define SEMIS_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace semis {

/// Outcome of an operation that can fail. Follows the database-engine
/// convention (LevelDB/RocksDB): functions return a `Status` instead of
/// throwing; callers test `ok()` and propagate.
class Status {
 public:
  /// Error category. Kept deliberately small; the message carries detail.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kIOError,
    kCorruption,
    kNotFound,
    kNotSupported,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with message `msg`.
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  /// Returns an IOError status with message `msg`.
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  /// Returns a Corruption status with message `msg`.
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  /// Returns a NotFound status with message `msg`.
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  /// Returns a NotSupported status with message `msg`.
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == Code::kOk; }
  /// True iff this is an IOError.
  bool IsIOError() const { return code_ == Code::kIOError; }
  /// True iff this is a Corruption error.
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  /// True iff this is an InvalidArgument error.
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  /// True iff this is a NotFound error.
  bool IsNotFound() const { return code_ == Code::kNotFound; }

  /// Error category of this status.
  Code code() const { return code_; }
  /// Human-readable message ("" when OK).
  const std::string& message() const { return msg_; }
  /// Renders "OK" or "<category>: <message>" for logs and test output.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Propagates a non-OK status to the caller. Mirrors RocksDB's pattern.
#define SEMIS_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::semis::Status _semis_status = (expr);         \
    if (!_semis_status.ok()) return _semis_status;  \
  } while (0)

}  // namespace semis

#endif  // SEMIS_UTIL_STATUS_H_
