#include "util/logging.h"

#include <cstdio>

namespace semis {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void Logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level) return;
  std::fprintf(stderr, "[semis %s] ", LevelTag(level));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace semis
