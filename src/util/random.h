// Copyright (c) the semis authors.
// Deterministic, fast pseudo-random number generation. Every stochastic
// component of the library (graph generators, property tests, benchmarks)
// takes an explicit seed so runs are exactly reproducible.
#ifndef SEMIS_UTIL_RANDOM_H_
#define SEMIS_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>

namespace semis {

/// xoshiro256** PRNG seeded via splitmix64. Not cryptographic; chosen for
/// speed and reproducibility across platforms (no libstdc++ distribution
/// dependence).
class Random {
 public:
  /// Creates a generator from a 64-bit seed. Two generators constructed
  /// with the same seed produce identical streams.
  explicit Random(uint64_t seed = 0x5eed5eedULL) { Reseed(seed); }

  /// Re-initializes the state from `seed`.
  void Reseed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&x);
  }

  /// Next raw 64-bit value.
  uint64_t Next64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  uint64_t Uniform(uint64_t n) {
    // Fast path for powers of two.
    if ((n & (n - 1)) == 0) return Next64() & (n - 1);
    uint64_t x, r;
    do {
      x = Next64();
      r = x % n;
    } while (x - r > UINT64_MAX - n + 1);
    return r;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool OneIn(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle of `data[0..n)`.
  template <typename T>
  void Shuffle(T* data, size_t n) {
    for (size_t i = n; i > 1; --i) {
      size_t j = Uniform(i);
      T tmp = data[i - 1];
      data[i - 1] = data[j];
      data[j] = tmp;
    }
  }

 private:
  static uint64_t SplitMix64(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace semis

#endif  // SEMIS_UTIL_RANDOM_H_
