// Copyright (c) the semis authors.
// Compact bit set used to return independent sets without spending a byte
// per vertex.
#ifndef SEMIS_UTIL_BIT_VECTOR_H_
#define SEMIS_UTIL_BIT_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace semis {

/// Fixed-size bit vector with O(1) test/set and popcount-based counting.
class BitVector {
 public:
  BitVector() = default;

  /// Creates a bit vector of `n` bits, all clear.
  explicit BitVector(size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  /// Number of bits.
  size_t size() const { return n_; }

  /// Resizes to `n` bits; new bits are clear.
  void Resize(size_t n) {
    n_ = n;
    words_.assign((n + 63) / 64, 0);
  }

  /// Sets bit `i`.
  void Set(size_t i) { words_[i >> 6] |= (1ull << (i & 63)); }

  /// Clears bit `i`.
  void Clear(size_t i) { words_[i >> 6] &= ~(1ull << (i & 63)); }

  /// Tests bit `i`.
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ull;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  /// Clears all bits.
  void Reset() {
    for (auto& w : words_) w = 0;
  }

  /// Bytes of heap storage (for MemoryTracker accounting).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  size_t n_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace semis

#endif  // SEMIS_UTIL_BIT_VECTOR_H_
