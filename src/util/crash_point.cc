#include "util/crash_point.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace semis {

namespace {

// 0 = unarmed; otherwise the 1-based index of the site that dies.
long ArmedTarget() {
  static const long target = [] {
    const char* env = std::getenv("SEMIS_CRASH_POINT");
    if (env == nullptr || *env == '\0') return 0L;
    char* end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end == nullptr || *end != '\0' || value < 1) return 0L;
    return value;
  }();
  return target;
}

std::atomic<long> g_sites_hit{0};

}  // namespace

bool CrashPointsArmed() { return ArmedTarget() != 0; }

void CrashPointHit(const char* site) {
  const long target = ArmedTarget();
  if (target == 0) return;
  const long index = g_sites_hit.fetch_add(1, std::memory_order_relaxed) + 1;
  if (index != target) return;
  // stderr is unbuffered; _exit skips every flush and destructor, like a
  // SIGKILL delivered right after this line.
  std::fprintf(stderr, "SEMIS_CRASH_POINT %ld: dying at site '%s'\n", index,
               site);
  _exit(137);
}

}  // namespace semis
