// Copyright (c) the semis authors.
// Basic shared typedefs and constants for the semis library.
#ifndef SEMIS_UTIL_COMMON_H_
#define SEMIS_UTIL_COMMON_H_

#include <cstddef>
#include <cstdint>

namespace semis {

/// Vertex identifier. The semi-external model assumes O(|V|) words of main
/// memory, so a compact 32-bit id keeps the per-vertex arrays small (the
/// paper stores vertex ids in 4 bytes; 0.4 GB for 10^8 vertices).
using VertexId = uint32_t;

/// Sentinel for "no vertex" (used for unset ISN entries and the like).
inline constexpr VertexId kInvalidVertex = 0xFFFFFFFFu;

/// Default logical block size used by the buffered file layer when counting
/// block I/Os. 64 KiB mirrors a commodity HDD-friendly transfer unit.
inline constexpr size_t kDefaultBlockSize = 64 * 1024;

}  // namespace semis

#endif  // SEMIS_UTIL_COMMON_H_
