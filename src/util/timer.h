// Copyright (c) the semis authors.
// Wall-clock timing helpers for the benchmark harness and algorithm stats.
#ifndef SEMIS_UTIL_TIMER_H_
#define SEMIS_UTIL_TIMER_H_

#include <chrono>

namespace semis {

/// Monotonic wall-clock stopwatch. Started on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace semis

#endif  // SEMIS_UTIL_TIMER_H_
