#include "util/thread_pool.h"

#include <cstdio>
#include <cstdlib>

namespace semis {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  job_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ParallelFor(
    size_t num_items, const std::function<void(size_t, size_t)>& fn) {
  BeginParallelFor(num_items, fn);
  WaitForCompletion();
}

void ThreadPool::BeginParallelFor(size_t num_items,
                                  std::function<void(size_t, size_t)> fn) {
  if (num_items == 0) return;  // job_active_ stays false; Wait is a no-op
  MutexLock lock(&mu_);
  // One job at a time: overlapping Begins would reset the completion
  // barrier mid-job and re-issue in-flight items under the new fn. Abort
  // unconditionally (not assert) so the contract holds under NDEBUG too.
  if (job_active_) {
    std::fprintf(stderr,
                 "ThreadPool::BeginParallelFor called while a job is in "
                 "flight; call WaitForCompletion first\n");
    std::abort();
  }
  job_fn_ = std::move(fn);
  job_items_ = num_items;
  next_item_.store(0, std::memory_order_relaxed);
  workers_done_ = 0;
  job_active_ = true;
  epoch_++;
  job_cv_.NotifyAll();
}

void ThreadPool::WaitForCompletion() {
  MutexLock lock(&mu_);
  if (!job_active_) return;
  while (workers_done_ != threads_.size()) done_cv_.Wait(&mu_);
  job_active_ = false;
  job_fn_ = nullptr;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t seen_epoch = 0;
  while (true) {
    size_t items = 0;
    const std::function<void(size_t, size_t)>* fn = nullptr;
    {
      MutexLock lock(&mu_);
      while (!stop_ && epoch_ == seen_epoch) job_cv_.Wait(&mu_);
      if (stop_) return;
      seen_epoch = epoch_;
      items = job_items_;
      // The pointer (not the guarded member) crosses the lock boundary:
      // job_fn_ stays valid until WaitForCompletion clears it, which
      // cannot happen before every worker has passed the workers_done_
      // barrier below, so invoking through `fn` unlocked is safe.
      fn = &job_fn_;
    }
    while (true) {
      const size_t item = next_item_.fetch_add(1, std::memory_order_relaxed);
      if (item >= items) break;
      (*fn)(item, worker_index);
    }
    {
      MutexLock lock(&mu_);
      workers_done_++;
      if (workers_done_ == threads_.size()) done_cv_.NotifyAll();
    }
  }
}

}  // namespace semis
