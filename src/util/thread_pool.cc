#include "util/thread_pool.h"

namespace semis {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ParallelFor(
    size_t num_items, const std::function<void(size_t, size_t)>& fn) {
  if (num_items == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  job_fn_ = &fn;
  job_items_ = num_items;
  next_item_.store(0, std::memory_order_relaxed);
  workers_done_ = 0;
  epoch_++;
  job_cv_.notify_all();
  done_cv_.wait(lock, [this] { return workers_done_ == threads_.size(); });
  job_fn_ = nullptr;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(size_t, size_t)>* fn = nullptr;
    size_t items = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      fn = job_fn_;
      items = job_items_;
    }
    while (true) {
      const size_t item = next_item_.fetch_add(1, std::memory_order_relaxed);
      if (item >= items) break;
      (*fn)(item, worker_index);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      workers_done_++;
      if (workers_done_ == threads_.size()) done_cv_.notify_all();
    }
  }
}

}  // namespace semis
