#include "util/thread_pool.h"

#include <cstdio>
#include <cstdlib>

namespace semis {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ParallelFor(
    size_t num_items, const std::function<void(size_t, size_t)>& fn) {
  BeginParallelFor(num_items, fn);
  WaitForCompletion();
}

void ThreadPool::BeginParallelFor(size_t num_items,
                                  std::function<void(size_t, size_t)> fn) {
  if (num_items == 0) return;  // job_active_ stays false; Wait is a no-op
  std::lock_guard<std::mutex> lock(mu_);
  // One job at a time: overlapping Begins would reset the completion
  // barrier mid-job and re-issue in-flight items under the new fn. Abort
  // unconditionally (not assert) so the contract holds under NDEBUG too.
  if (job_active_) {
    std::fprintf(stderr,
                 "ThreadPool::BeginParallelFor called while a job is in "
                 "flight; call WaitForCompletion first\n");
    std::abort();
  }
  job_fn_ = std::move(fn);
  job_items_ = num_items;
  next_item_.store(0, std::memory_order_relaxed);
  workers_done_ = 0;
  job_active_ = true;
  epoch_++;
  job_cv_.notify_all();
}

void ThreadPool::WaitForCompletion() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!job_active_) return;
  done_cv_.wait(lock, [this] { return workers_done_ == threads_.size(); });
  job_active_ = false;
  job_fn_ = nullptr;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t seen_epoch = 0;
  while (true) {
    size_t items = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      items = job_items_;
    }
    // job_fn_ stays valid until WaitForCompletion clears it, which cannot
    // happen before every worker has passed the workers_done_ barrier
    // below, so the unlocked reference is safe.
    while (true) {
      const size_t item = next_item_.fetch_add(1, std::memory_order_relaxed);
      if (item >= items) break;
      job_fn_(item, worker_index);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      workers_done_++;
      if (workers_done_ == threads_.size()) done_cv_.notify_all();
    }
  }
}

}  // namespace semis
