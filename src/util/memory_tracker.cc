#include "util/memory_tracker.h"

#include <cstdio>

namespace semis {

void MemoryTracker::Add(const std::string& category, size_t bytes) {
  Entry& e = categories_[category];
  e.current += bytes;
  if (e.current > e.peak) e.peak = e.current;
  current_ += bytes;
  if (current_ > peak_) peak_ = current_;
}

void MemoryTracker::Sub(const std::string& category, size_t bytes) {
  Entry& e = categories_[category];
  size_t delta = bytes > e.current ? e.current : bytes;
  e.current -= delta;
  current_ -= delta;
}

void MemoryTracker::Set(const std::string& category, size_t bytes) {
  Entry& e = categories_[category];
  if (bytes >= e.current) {
    Add(category, bytes - e.current);
  } else {
    Sub(category, e.current - bytes);
  }
}

size_t MemoryTracker::CategoryBytes(const std::string& category) const {
  auto it = categories_.find(category);
  return it == categories_.end() ? 0 : it->second.current;
}

size_t MemoryTracker::CategoryPeakBytes(const std::string& category) const {
  auto it = categories_.find(category);
  return it == categories_.end() ? 0 : it->second.peak;
}

std::vector<std::string> MemoryTracker::Categories() const {
  std::vector<std::string> names;
  names.reserve(categories_.size());
  for (const auto& kv : categories_) names.push_back(kv.first);
  return names;
}

std::string MemoryTracker::FormatBytes(size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", b / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", b / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", b / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

}  // namespace semis
