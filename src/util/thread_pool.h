// Copyright (c) the semis authors.
// A minimal fixed-size thread pool for the parallel executors (swap rounds
// and the sharded greedy prefetcher). Its primitive is a parallel-for over
// an index range: workers pull indices from a shared atomic counter, so
// work items of uneven cost (adjacency shards) balance automatically. With
// one worker the items are processed strictly in ascending order, which
// makes the single-threaded execution the sequential reference path of
// every algorithm built on top.
//
// The parallel-for comes in two flavors sharing one work queue: the
// blocking ParallelFor, and a BeginParallelFor/WaitForCompletion split for
// producer-consumer pipelines where the submitting thread keeps consuming
// results (e.g. the manifest-ordered shard cursor commits records while
// the pool decodes shards ahead of it).
#ifndef SEMIS_UTIL_THREAD_POOL_H_
#define SEMIS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace semis {

/// Fixed pool of worker threads executing parallel-for jobs.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = std::thread::hardware_concurrency(),
  /// itself clamped to at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t size() const { return threads_.size(); }

  /// Runs `fn(item, worker)` for every item in [0, num_items), distributing
  /// items over the workers, and returns when all items are done. `worker`
  /// is a stable index in [0, size()) identifying the executing thread, so
  /// callers can keep per-worker scratch state without synchronization.
  /// Not reentrant: one job at a time.
  void ParallelFor(size_t num_items,
                   const std::function<void(size_t item, size_t worker)>& fn)
      EXCLUDES(mu_);

  /// Non-blocking half of ParallelFor: hands the job to the workers and
  /// returns immediately, so the calling thread can consume what the
  /// workers produce. The pool keeps its own copy of `fn`. Exactly one
  /// job may be in flight; every Begin must be paired with a
  /// WaitForCompletion before the next Begin (or destruction).
  void BeginParallelFor(size_t num_items,
                        std::function<void(size_t item, size_t worker)> fn)
      EXCLUDES(mu_);

  /// Blocks until the job started by BeginParallelFor has finished (all
  /// items processed by all workers). No-op when no job is in flight.
  void WaitForCompletion() EXCLUDES(mu_);

 private:
  void WorkerLoop(size_t worker_index) EXCLUDES(mu_);

  std::vector<std::thread> threads_;
  Mutex mu_;
  CondVar job_cv_;   // workers wait for a new job epoch
  CondVar done_cv_;  // WaitForCompletion waits here
  // Written under mu_ by Begin/Wait; workers invoke it OUTSIDE mu_ via a
  // pointer taken under the lock. Safe because Wait cannot clear it until
  // every worker has passed the workers_done_ barrier (see WorkerLoop).
  std::function<void(size_t, size_t)> job_fn_ GUARDED_BY(mu_);
  bool job_active_ GUARDED_BY(mu_) = false;
  size_t job_items_ GUARDED_BY(mu_) = 0;
  std::atomic<size_t> next_item_{0};
  size_t workers_done_ GUARDED_BY(mu_) = 0;
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace semis

#endif  // SEMIS_UTIL_THREAD_POOL_H_
