// Copyright (c) the semis authors.
// Deterministic kill-point instrumentation for crash-recovery fuzzing.
//
// Production code marks the hazardous instants of a multi-file commit
// (file written, rename done, root pointer flipped, ...) with
// SEMIS_CRASH_POINT("site-name"). In normal runs the macro is a cheap
// predicted-false branch on one relaxed atomic load. When the process is
// started with the environment variable SEMIS_CRASH_POINT=<n> (n >= 1),
// the n-th site reached process-wide prints its name to stderr and dies
// with _exit(137) -- no stdio flush, no destructors, no atexit: the
// closest portable approximation of `kill -9` at exactly that point. The
// crash-recovery harness sweeps n = 1, 2, ... until a run survives,
// proving every intermediate crash state recovers.
//
// Sites must sit only on sequentially-executed paths (the single mutator
// thread's commit protocol), so the site numbering is deterministic for a
// given command line. tools/semis_lint.py does not flag this file: the
// branch never influences any output the determinism contract covers --
// either the process continues untouched or it is dead.
#ifndef SEMIS_UTIL_CRASH_POINT_H_
#define SEMIS_UTIL_CRASH_POINT_H_

namespace semis {

/// True when SEMIS_CRASH_POINT is set in the environment (checked once).
bool CrashPointsArmed();

/// Counts one crash site; kills the process if it is the configured one.
void CrashPointHit(const char* site);

}  // namespace semis

/// Marks one crash site. Expands to a single branch when unarmed.
#define SEMIS_CRASH_POINT(site)                          \
  do {                                                   \
    if (::semis::CrashPointsArmed()) {                   \
      ::semis::CrashPointHit(site);                      \
    }                                                    \
  } while (0)

#endif  // SEMIS_UTIL_CRASH_POINT_H_
