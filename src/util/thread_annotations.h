// Copyright (c) the semis authors.
// Clang Thread Safety Analysis: macros plus annotated Mutex / MutexLock /
// CondVar wrappers over the std primitives, so the locking discipline of
// every concurrent subsystem (thread pool, block ring, engine RCU) is a
// compile-time contract instead of a TSan-time observation.
//
// Under clang, `-Wthread-safety -Werror` (the `clang-tsa` preset, enforced
// in CI) rejects any access to a GUARDED_BY member without its mutex and
// any call that violates a REQUIRES/EXCLUDES contract. Under GCC (which
// has no thread-safety analysis) every macro expands to nothing and the
// wrappers behave exactly like the std types they wrap.
//
// Conventions (see docs/architecture.md, "Lock hierarchy"):
//   * every mutex member documents what it guards via GUARDED_BY on the
//     guarded members, not just a comment;
//   * functions that must (or must not) hold a mutex carry REQUIRES /
//     EXCLUDES on their declaration;
//   * lock ordering between two mutexes of one object is declared with
//     ACQUIRED_BEFORE on the member.
#ifndef SEMIS_UTIL_THREAD_ANNOTATIONS_H_
#define SEMIS_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define SEMIS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SEMIS_THREAD_ANNOTATION_(x)  // no-op on GCC/MSVC
#endif

/// Declares that a member is protected by the given capability (mutex):
/// reads require the mutex held shared or exclusive, writes exclusive.
#define GUARDED_BY(x) SEMIS_THREAD_ANNOTATION_(guarded_by(x))

/// As GUARDED_BY, for the data a pointer member points TO.
#define PT_GUARDED_BY(x) SEMIS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The annotated function must be called with the mutex(es) held.
#define REQUIRES(...) \
  SEMIS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The annotated function must be called with the mutex(es) NOT held
/// (it acquires them itself, or a deadlock/ordering rule forbids them).
#define EXCLUDES(...) SEMIS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The annotated function acquires the mutex(es) and returns holding them.
#define ACQUIRE(...) \
  SEMIS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The annotated function releases the mutex(es).
#define RELEASE(...) \
  SEMIS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The annotated function tries to acquire the mutex(es); the first
/// argument is the return value that means success.
#define TRY_ACQUIRE(...) \
  SEMIS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Declares a lock-ordering edge: this mutex is always taken before `x`.
#define ACQUIRED_BEFORE(...) \
  SEMIS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Declares a lock-ordering edge: this mutex is always taken after `x`.
#define ACQUIRED_AFTER(...) \
  SEMIS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Marks a type as a lockable capability (used on the Mutex wrapper).
#define CAPABILITY(x) SEMIS_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY SEMIS_THREAD_ANNOTATION_(scoped_lockable)

/// Returns a reference to the capability guarding the annotated function's
/// result (e.g. an accessor handing out a guarded member).
#define RETURN_CAPABILITY(x) SEMIS_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's locking cannot be expressed to the
/// analysis (e.g. lock handoff between threads). Use sparingly and
/// document why at the call site.
#define NO_THREAD_SAFETY_ANALYSIS \
  SEMIS_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace semis {

/// std::mutex with thread-safety-analysis annotations. Satisfies
/// BasicLockable (lowercase lock/unlock), so CondVar can wait on it
/// directly and std RAII types accept it.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling for std facilities (condition_variable_any,
  // std::scoped_lock). Same annotations as the PascalCase flavors.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex, annotated so the analysis tracks its scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. Wait() takes the Mutex directly
/// (condition_variable_any over the BasicLockable wrapper); the analysis
/// treats the mutex as held across the wait -- which is exactly the
/// caller-visible contract, since Wait reacquires before returning.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, waits, and reacquires before returning.
  void Wait(Mutex* mu) REQUIRES(mu) { cv_.wait(*mu); }

  /// Predicate flavor: waits until `pred()` holds. `pred` runs with the
  /// mutex held, so it may read GUARDED_BY(*mu) members freely.
  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) REQUIRES(mu) {
    cv_.wait(*mu, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace semis

#endif  // SEMIS_UTIL_THREAD_ANNOTATIONS_H_
