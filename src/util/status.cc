#include "util/status.h"

namespace semis {

std::string Status::ToString() const {
  if (ok()) return "OK";
  const char* name = "Unknown";
  switch (code_) {
    case Code::kOk:
      name = "OK";
      break;
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kIOError:
      name = "IOError";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kNotSupported:
      name = "NotSupported";
      break;
    case Code::kFailedPrecondition:
      name = "FailedPrecondition";
      break;
  }
  std::string out = name;
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace semis
