// Copyright (c) the semis authors.
// Descriptive statistics of a graph: degree distribution, averages, and a
// log-log least-squares fit of the power-law exponent beta (Equation 1 of
// the paper: log y = alpha - beta log x).
#ifndef SEMIS_GRAPH_GRAPH_STATS_H_
#define SEMIS_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "io/io_stats.h"
#include "util/status.h"

namespace semis {

/// Summary statistics of one graph.
struct GraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;  // undirected
  uint32_t min_degree = 0;
  uint32_t max_degree = 0;
  double avg_degree = 0.0;
  uint64_t isolated_vertices = 0;
  /// histogram[d] = number of vertices of degree d (size max_degree + 1).
  std::vector<uint64_t> degree_histogram;

  /// Least-squares estimate of the power-law exponent beta from the
  /// degree histogram (log y = alpha - beta log x). Returns 0 when the
  /// histogram has fewer than two populated degrees.
  double EstimateBeta() const;
  /// Companion estimate of alpha (log scale of the graph).
  double EstimateAlpha() const;
};

/// Computes statistics for an in-memory graph.
GraphStats ComputeGraphStats(const Graph& graph);

/// Computes statistics by a single sequential scan of an adjacency file
/// (semi-external: O(max_degree) extra memory).
Status ComputeGraphStatsFromFile(const std::string& path, GraphStats* stats,
                                 IoStats* io_stats = nullptr);

}  // namespace semis

#endif  // SEMIS_GRAPH_GRAPH_STATS_H_
