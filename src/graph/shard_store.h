// Copyright (c) the semis authors.
// Root resolution, recovery, and epoch garbage collection for sharded
// stores (SADJS + optional SDELTA overlay).
//
// A store rooted at `<root>` comes in two layouts:
//
//   * legacy: `<root>` IS the SADM manifest; shards and delta logs sit at
//     `<root>.shard<K>` / `<root>.delta*`. Mutations republish files
//     per-file atomically but not transactionally across files.
//   * journaled: `<root>` holds a SEPR root pointer (io/epoch_journal.h)
//     naming the current epoch E; the manifest lives at `<root>.epoch<E>`
//     and everything else derives from it. Multi-file mutations build
//     epoch E+1 under its own names and commit by atomically replacing
//     the root pointer -- any crash point resolves to a consistent epoch.
//
// Legacy stores convert to journaled on their first epoch commit (the
// first compaction or re-sort); plain solves never convert anything.
//
// ResolveShardStore is the read-only half (scanners, verify, stats): it
// routes on the root magic, validates the current epoch cheaply, and
// falls back to the previous epoch in memory when the current one is
// damaged. RecoverShardStore is the writer half (ShardedStreamingMis
// initialization, fsck --gc): it additionally makes a fallback durable by
// rewriting the root pointer and removes orphaned files (half-committed
// epochs, staging files, retired epochs, converted legacy names).
//
// GC keeps the current AND previous epochs, so a reader that resolved the
// store just before a commit can still finish its scan afterwards; only
// the epoch retired by the NEXT commit disappears.
#ifndef SEMIS_GRAPH_SHARD_STORE_H_
#define SEMIS_GRAPH_SHARD_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/sharded_adjacency_file.h"
#include "io/io_stats.h"
#include "util/status.h"

namespace semis {

/// Where a store root resolved to.
struct ResolvedShardStore {
  std::string root_path;
  /// The SADM manifest serving reads: `root_path` itself for a legacy
  /// store, `<root>.epoch<current_epoch>` for a journaled one.
  std::string manifest_path;
  bool journaled = false;
  /// 0 for legacy stores; >= 1 once journaled.
  uint64_t current_epoch = 0;
  /// 0 when no fallback epoch exists.
  uint64_t previous_epoch = 0;
  /// True when the root's current epoch failed validation and the
  /// previous epoch is serving instead.
  bool fell_back = false;
};

/// Outcome of RecoverShardStore beyond the resolution itself.
struct ShardStoreRecovery {
  bool fell_back = false;
  uint64_t orphan_files_removed = 0;
};

/// Cheap consistency check of one epoch (or legacy) manifest: the
/// manifest parses, every shard file has exactly the size its totals
/// imply, and -- when a delta overlay exists -- the delta manifest parses,
/// matches the SADM manifest, and every log holds at least its declared
/// entries (a longer log is a tolerated crash tail, a shorter one is
/// truncation). Reads O(shards) metadata, not the data itself.
Status ValidateShardStoreEpoch(const std::string& manifest_path,
                               IoStats* stats = nullptr);

/// Read-only root resolution (see the file comment). Never writes.
/// Fails with Corruption when neither the current nor the previous epoch
/// validates. A root that is neither SEPR nor SADM resolves as legacy and
/// leaves the format error to the manifest reader, preserving its
/// diagnostics.
Status ResolveShardStore(const std::string& root_path, ResolvedShardStore* out,
                         IoStats* stats = nullptr);

/// Writer-side resolution: ResolveShardStore, then makes any fallback
/// durable (rewrites the root pointer to name the surviving epoch) and
/// garbage-collects orphaned files. `recovery` may be null.
Status RecoverShardStore(const std::string& root_path, ResolvedShardStore* out,
                         ShardStoreRecovery* recovery = nullptr,
                         IoStats* stats = nullptr);

/// Lists files in the store's directory that belong to no live epoch:
/// staging files (`*.tmp`, `*.resort<k>`), epochs outside
/// {current, previous}, epoch files next to an unconverted legacy root
/// (a crashed conversion), and legacy-layout names left behind by a
/// completed conversion. Paths are returned sorted.
Status ListShardStoreOrphans(const ResolvedShardStore& resolved,
                             std::vector<std::string>* orphans);

/// Removes every orphan (ListShardStoreOrphans) and fsyncs the directory
/// once when anything was removed. `removed` may be null.
Status GarbageCollectShardStore(const ResolvedShardStore& resolved,
                                uint64_t* removed = nullptr);

/// Resolves `root_path` read-only and reads the serving SADM manifest.
/// Convenience for callers that only need totals/flags.
Status ReadShardStoreManifest(const std::string& root_path,
                              ShardedAdjacencyManifest* out,
                              IoStats* stats = nullptr);

}  // namespace semis

#endif  // SEMIS_GRAPH_SHARD_STORE_H_
