#include "graph/sharded_adjacency_file.h"

#include "graph/shard_store.h"

namespace semis {

namespace {
constexpr uint32_t kManifestMagic = kShardManifestMagic;
constexpr uint32_t kShardMagic = 0x53444153u;  // 'SADS' little-endian
constexpr uint32_t kVersion = 1;

// Record cost in u32 words: id + degree + neighbors. Shards are balanced
// on this, which is proportional to both file bytes and scan work.
uint64_t RecordWords(uint32_t degree) { return 2 + degree; }
}  // namespace

std::string ShardFilePath(const std::string& manifest_path, uint32_t index) {
  return manifest_path + ".shard" + std::to_string(index);
}

Status ReadShardedAdjacencyManifest(const std::string& path,
                                    ShardedAdjacencyManifest* out,
                                    IoStats* stats) {
  SequentialFileReader reader(stats);
  SEMIS_RETURN_IF_ERROR(reader.Open(path));
  uint32_t magic = 0, version = 0;
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&magic));
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (magic != kManifestMagic) {
    return Status::Corruption("bad magic in '" + path +
                              "': not a shard manifest");
  }
  if (version != kVersion) {
    return Status::NotSupported("shard manifest version " +
                                std::to_string(version) + " not supported");
  }
  ShardedAdjacencyManifest m;
  uint32_t num_shards = 0, reserved = 0;
  SEMIS_RETURN_IF_ERROR(reader.ReadU64(&m.header.num_vertices));
  SEMIS_RETURN_IF_ERROR(reader.ReadU64(&m.header.num_directed_edges));
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&m.header.flags));
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&m.header.max_degree));
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&num_shards));
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&reserved));
  if (num_shards == 0) {
    return Status::Corruption("manifest '" + path + "' declares zero shards");
  }
  // Bound BEFORE the resize so a corrupted count cannot make the reader
  // allocate gigabytes; the writer never produces more than
  // kMaxAdjacencyShards shards.
  if (num_shards > kMaxAdjacencyShards) {
    return Status::Corruption("manifest '" + path +
                              "' declares an impossible shard count");
  }
  m.shards.resize(num_shards);
  uint64_t total_records = 0, total_edges = 0;
  for (ShardInfo& s : m.shards) {
    SEMIS_RETURN_IF_ERROR(reader.ReadU64(&s.num_records));
    SEMIS_RETURN_IF_ERROR(reader.ReadU64(&s.num_directed_edges));
    total_records += s.num_records;
    total_edges += s.num_directed_edges;
  }
  if (!reader.AtEof()) {
    return Status::Corruption("trailing bytes in shard manifest '" + path +
                              "'");
  }
  if (total_records != m.header.num_vertices ||
      total_edges != m.header.num_directed_edges) {
    return Status::Corruption("shard totals disagree with global header in '" +
                              path + "'");
  }
  *out = std::move(m);
  return Status::OK();
}

Status WriteShardedAdjacencyManifest(const std::string& path,
                                     const ShardedAdjacencyManifest& manifest,
                                     IoStats* stats) {
  if (manifest.num_shards() == 0) {
    return Status::InvalidArgument("manifest needs >= 1 shard");
  }
  uint64_t total_records = 0, total_edges = 0;
  for (const ShardInfo& s : manifest.shards) {
    total_records += s.num_records;
    total_edges += s.num_directed_edges;
  }
  if (total_records != manifest.header.num_vertices ||
      total_edges != manifest.header.num_directed_edges) {
    return Status::InvalidArgument(
        "shard totals disagree with the global header");
  }
  // Write-then-rename: compaction overwrites a live manifest, and a crash
  // mid-write must not leave a torn one behind.
  const std::string tmp = path + ".tmp";
  SequentialFileWriter writer(stats);
  SEMIS_RETURN_IF_ERROR(writer.Open(tmp));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(kManifestMagic));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(kVersion));
  SEMIS_RETURN_IF_ERROR(writer.AppendU64(manifest.header.num_vertices));
  SEMIS_RETURN_IF_ERROR(writer.AppendU64(manifest.header.num_directed_edges));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(manifest.header.flags));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(manifest.header.max_degree));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(manifest.num_shards()));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(0));  // reserved
  for (const ShardInfo& s : manifest.shards) {
    SEMIS_RETURN_IF_ERROR(writer.AppendU64(s.num_records));
    SEMIS_RETURN_IF_ERROR(writer.AppendU64(s.num_directed_edges));
  }
  SEMIS_RETURN_IF_ERROR(writer.Close());
  SEMIS_RETURN_IF_ERROR(RenameFile(tmp, path));
  return Status::OK();
}

Status WriteAdjacencyShardHeader(SequentialFileWriter* writer, uint32_t index,
                                 uint64_t num_vertices) {
  SEMIS_RETURN_IF_ERROR(writer->AppendU32(kShardMagic));
  SEMIS_RETURN_IF_ERROR(writer->AppendU32(kVersion));
  SEMIS_RETURN_IF_ERROR(writer->AppendU32(index));
  SEMIS_RETURN_IF_ERROR(writer->AppendU32(0));  // reserved
  // Shard totals are not known until the shard is closed; the file stays
  // append-only, so they are written as zero here and recorded
  // authoritatively in the manifest. Readers take totals from the
  // manifest and treat the in-file pair as a hint.
  SEMIS_RETURN_IF_ERROR(writer->AppendU64(0));
  SEMIS_RETURN_IF_ERROR(writer->AppendU64(0));
  return writer->AppendU64(num_vertices);
}

ShardedAdjacencyFileWriter::ShardedAdjacencyFileWriter(IoStats* stats)
    : stats_(stats), writer_(stats) {}

Status ShardedAdjacencyFileWriter::Open(const std::string& manifest_path,
                                        uint64_t num_vertices,
                                        uint64_t num_directed_edges,
                                        uint32_t max_degree, uint32_t flags,
                                        uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  if (num_shards > kMaxAdjacencyShards) {
    return Status::InvalidArgument(
        "num_shards " + std::to_string(num_shards) + " exceeds the limit of " +
        std::to_string(kMaxAdjacencyShards));
  }
  manifest_path_ = manifest_path;
  declared_vertices_ = num_vertices;
  declared_directed_edges_ = num_directed_edges;
  declared_max_degree_ = max_degree;
  declared_flags_ = flags;
  num_shards_ = num_shards;
  const uint64_t total_words =
      2 * num_vertices + num_directed_edges;  // sum of RecordWords
  shard_budget_words_ = (total_words + num_shards - 1) / num_shards;
  if (shard_budget_words_ == 0) shard_budget_words_ = 1;
  finished_shards_.clear();
  appended_vertices_ = 0;
  appended_edges_ = 0;
  return StartShard(0);
}

Status ShardedAdjacencyFileWriter::StartShard(uint32_t index) {
  current_shard_ = index;
  shard_words_ = 0;
  current_info_ = ShardInfo();
  SEMIS_RETURN_IF_ERROR(writer_.Open(ShardFilePath(manifest_path_, index)));
  return WriteAdjacencyShardHeader(&writer_, index, declared_vertices_);
}

Status ShardedAdjacencyFileWriter::CloseShard() {
  SEMIS_RETURN_IF_ERROR(writer_.Close());
  finished_shards_.push_back(current_info_);
  return Status::OK();
}

Status ShardedAdjacencyFileWriter::AppendVertex(VertexId id,
                                                const VertexId* neighbors,
                                                uint32_t degree) {
  if (id >= declared_vertices_) {
    return Status::InvalidArgument("vertex id " + std::to_string(id) +
                                   " out of range");
  }
  if (degree > declared_max_degree_) {
    return Status::InvalidArgument(
        "vertex degree exceeds declared max_degree");
  }
  const uint64_t words = RecordWords(degree);
  // Roll to the next shard when this record would overflow the budget --
  // but never roll an empty shard, and keep the last shard open for the
  // remainder. The split depends only on the record stream, so it is
  // byte-stable across runs.
  if (shard_words_ > 0 && shard_words_ + words > shard_budget_words_ &&
      current_shard_ + 1 < num_shards_) {
    SEMIS_RETURN_IF_ERROR(CloseShard());
    SEMIS_RETURN_IF_ERROR(StartShard(current_shard_ + 1));
  }
  SEMIS_RETURN_IF_ERROR(writer_.AppendU32(id));
  SEMIS_RETURN_IF_ERROR(writer_.AppendU32(degree));
  if (degree > 0) {
    SEMIS_RETURN_IF_ERROR(
        writer_.Append(neighbors, sizeof(VertexId) * degree));
  }
  shard_words_ += words;
  current_info_.num_records++;
  current_info_.num_directed_edges += degree;
  appended_vertices_++;
  appended_edges_ += degree;
  return Status::OK();
}

Status ShardedAdjacencyFileWriter::Finish() {
  SEMIS_RETURN_IF_ERROR(CloseShard());
  // Materialize trailing empty shards so every manifest entry has a file.
  while (finished_shards_.size() < num_shards_) {
    SEMIS_RETURN_IF_ERROR(StartShard(current_shard_ + 1));
    SEMIS_RETURN_IF_ERROR(CloseShard());
  }
  if (appended_vertices_ != declared_vertices_) {
    return Status::InvalidArgument(
        "vertex count mismatch: declared " +
        std::to_string(declared_vertices_) + ", appended " +
        std::to_string(appended_vertices_));
  }
  if (appended_edges_ != declared_directed_edges_) {
    return Status::InvalidArgument(
        "edge count mismatch: declared " +
        std::to_string(declared_directed_edges_) + ", appended " +
        std::to_string(appended_edges_));
  }
  ShardedAdjacencyManifest manifest;
  manifest.header.num_vertices = declared_vertices_;
  manifest.header.num_directed_edges = declared_directed_edges_;
  manifest.header.flags = declared_flags_;
  manifest.header.max_degree = declared_max_degree_;
  manifest.shards = finished_shards_;
  return WriteShardedAdjacencyManifest(manifest_path_, manifest, stats_);
}

AdjacencyShardReader::AdjacencyShardReader(IoStats* stats)
    : stats_(stats), reader_(stats) {}

Status AdjacencyShardReader::Open(const std::string& manifest_path,
                                  const ShardedAdjacencyManifest& manifest,
                                  uint32_t index) {
  if (index >= manifest.num_shards()) {
    return Status::InvalidArgument("shard index out of range");
  }
  path_ = ShardFilePath(manifest_path, index);
  num_vertices_ = manifest.header.num_vertices;
  max_degree_ = manifest.header.max_degree;
  num_records_ = manifest.shards[index].num_records;
  num_edges_ = manifest.shards[index].num_directed_edges;
  records_seen_ = 0;
  edges_seen_ = 0;
  SEMIS_RETURN_IF_ERROR(reader_.Open(path_));
  uint32_t magic = 0, version = 0, file_index = 0, reserved = 0;
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&magic));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&version));
  if (magic != kShardMagic) {
    return Status::Corruption("bad magic in '" + path_ +
                              "': not an adjacency shard");
  }
  if (version != kVersion) {
    return Status::NotSupported("adjacency shard version " +
                                std::to_string(version) + " not supported");
  }
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&file_index));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&reserved));
  if (file_index != index) {
    return Status::Corruption("shard index mismatch in '" + path_ + "'");
  }
  uint64_t hint_records = 0, hint_edges = 0, global_vertices = 0;
  SEMIS_RETURN_IF_ERROR(reader_.ReadU64(&hint_records));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU64(&hint_edges));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU64(&global_vertices));
  if (global_vertices != num_vertices_) {
    return Status::Corruption("shard '" + path_ +
                              "' disagrees with manifest vertex count");
  }
  return Status::OK();
}

Status AdjacencyShardReader::NextInto(RecordBlock* block, bool* has_next) {
  if (records_seen_ == num_records_) {
    if (!reader_.AtEof()) {
      return Status::Corruption("trailing bytes after last record in '" +
                                path_ + "'");
    }
    if (edges_seen_ != num_edges_) {
      return Status::Corruption(
          "shard '" + path_ + "' holds " + std::to_string(edges_seen_) +
          " directed edges but the manifest declares " +
          std::to_string(num_edges_));
    }
    *has_next = false;
    return Status::OK();
  }
  if (reader_.AtEof()) {
    return Status::Corruption(
        "shard '" + path_ + "' truncated: expected " +
        std::to_string(num_records_) + " records, found " +
        std::to_string(records_seen_));
  }
  uint32_t id = 0, degree = 0;
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&id));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&degree));
  if (id >= num_vertices_) {
    return Status::Corruption("record id out of range in '" + path_ + "'");
  }
  if (degree > max_degree_) {
    return Status::Corruption("record degree exceeds header max_degree in '" +
                              path_ + "'");
  }
  // Decode straight into the block arena; a failed read or a bad neighbor
  // rolls the staged record back so the block never exposes a half-record.
  VertexId* dst = block->BeginRecord(id, degree);
  if (degree > 0) {
    Status read = reader_.ReadExact(dst, sizeof(VertexId) * degree);
    if (!read.ok()) {
      block->AbandonRecord();
      return read;
    }
    for (uint32_t i = 0; i < degree; ++i) {
      if (dst[i] >= num_vertices_) {
        block->AbandonRecord();
        return Status::Corruption("neighbor id out of range in '" + path_ +
                                  "'");
      }
    }
  }
  if (edges_seen_ + degree > num_edges_) {
    block->AbandonRecord();
    return Status::Corruption("more edges than declared in '" + path_ + "'");
  }
  block->CommitRecord();
  records_seen_++;
  edges_seen_ += degree;
  if (stats_ != nullptr) stats_->records_decoded++;
  *has_next = true;
  return Status::OK();
}

Status AdjacencyShardReader::Next(VertexRecordView* view, bool* has_next) {
  scratch_block_.Clear();  // keeps its arena capacity across records
  SEMIS_RETURN_IF_ERROR(NextInto(&scratch_block_, has_next));
  if (*has_next) *view = scratch_block_.view(0);
  return Status::OK();
}

Status AdjacencyShardReader::Close() { return reader_.Close(); }

ShardedAdjacencyScanner::ShardedAdjacencyScanner(IoStats* stats)
    : stats_(stats), reader_(stats) {}

Status ShardedAdjacencyScanner::Open(const std::string& manifest_path) {
  // The path may be a journaled store root (SEPR); shard paths must then
  // derive from the resolved epoch manifest, not the root.
  ResolvedShardStore resolved;
  SEMIS_RETURN_IF_ERROR(ResolveShardStore(manifest_path, &resolved, stats_));
  manifest_path_ = resolved.manifest_path;
  SEMIS_RETURN_IF_ERROR(
      ReadShardedAdjacencyManifest(manifest_path_, &manifest_, stats_));
  if (stats_ != nullptr) stats_->sequential_scans++;
  current_shard_ = 0;
  SEMIS_RETURN_IF_ERROR(reader_.Open(manifest_path_, manifest_, 0));
  shard_open_ = true;
  return Status::OK();
}

Status ShardedAdjacencyScanner::Next(VertexRecordView* view, bool* has_next) {
  while (true) {
    if (!shard_open_) {
      *has_next = false;
      return Status::OK();
    }
    bool shard_has_next = false;
    SEMIS_RETURN_IF_ERROR(reader_.Next(view, &shard_has_next));
    if (shard_has_next) {
      *has_next = true;
      return Status::OK();
    }
    SEMIS_RETURN_IF_ERROR(reader_.Close());
    shard_open_ = false;
    if (current_shard_ + 1 < manifest_.num_shards()) {
      current_shard_++;
      SEMIS_RETURN_IF_ERROR(
          reader_.Open(manifest_path_, manifest_, current_shard_));
      shard_open_ = true;
    }
  }
}

ManifestOrderedShardCursor::ManifestOrderedShardCursor(IoStats* stats)
    : stats_(stats) {}

ManifestOrderedShardCursor::~ManifestOrderedShardCursor() {
  Close().IgnoreError();  // a destructor cannot propagate
  ReleaseCurrentBlock();
}

// Returns the consumer's block (left alone by Close, which may race a
// concurrent Next) to the pool, so an abandoned scan does not strand a
// warmed arena -- that would quietly erode an external pool's
// steady-state zero-allocation property. Only called from contexts where
// no consumer can legitimately hold the block: Open and the destructor.
void ManifestOrderedShardCursor::ReleaseCurrentBlock() {
  if (current_loaded_ && blocks_ != nullptr) {
    current_loaded_ = false;
    blocks_->Release(std::move(current_));
  }
}

Status ManifestOrderedShardCursor::Open(const std::string& manifest_path,
                                        ThreadPool* pool,
                                        const BlockRingOptions& ring) {
  if (pool == nullptr) {
    return Status::InvalidArgument(
        "manifest-ordered cursor requires a thread pool");
  }
  if (open_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("cursor is already open");
  }
  // Resolve a possible journaled-store root to its current epoch manifest
  // so the decoder threads open the epoch's shard files.
  ResolvedShardStore resolved;
  SEMIS_RETURN_IF_ERROR(ResolveShardStore(manifest_path, &resolved, stats_));
  manifest_path_ = resolved.manifest_path;
  SEMIS_RETURN_IF_ERROR(
      ReadShardedAdjacencyManifest(manifest_path_, &manifest_, stats_));
  if (stats_ != nullptr) stats_->sequential_scans++;
  pool_ = pool;
  block_bytes_ = ring.block_bytes != 0 ? ring.block_bytes
                                       : kDefaultDecodeBlockBytes;
  // Default byte budget: double buffering per decoder plus the consumer's
  // block -- the record-granular analogue of the old "pool size + 1
  // shards" window, but independent of shard sizes.
  max_buffered_bytes_ = ring.max_buffered_bytes != 0
                            ? ring.max_buffered_bytes
                            : 2 * block_bytes_ * (pool->size() + 1);
  // A block abandoned by a previous scan goes back to ITS pool before the
  // pool pointer moves on.
  ReleaseCurrentBlock();
  blocks_ = ring.pool != nullptr ? ring.pool : &own_blocks_;
  {
    // No decoder is running yet, but the ring state is guarded by mu_ and
    // the lock is uncontended here -- take it so the discipline holds on
    // every write path.
    MutexLock lock(&mu_);
    // Fresh vector rather than resize: resize would move-or-copy existing
    // elements, and ShardStream is move-only with a non-noexcept move.
    streams_ = std::vector<ShardStream>(manifest_.num_shards());
    consume_shard_ = 0;
    cancel_ = false;
    buffered_bytes_ = 0;
    peak_buffered_bytes_ = 0;
  }
  worker_io_.assign(pool->size(), IoStats());
  blocks_decoded_.store(0, std::memory_order_relaxed);
  current_pos_ = 0;
  current_bytes_ = 0;
  current_loaded_ = false;
  open_.store(true, std::memory_order_release);
  pool_->BeginParallelFor(manifest_.num_shards(), [this](size_t shard,
                                                         size_t worker) {
    DecodeShard(static_cast<uint32_t>(shard), worker);
  });
  return Status::OK();
}

bool ManifestOrderedShardCursor::PublishBlock(uint32_t shard,
                                              RecordBlock* block) {
  const size_t bytes = block->payload_bytes();
  bool published = false;
  {
    MutexLock lock(&mu_);
    // Byte back-pressure with a starvation override: the shard the
    // consumer is waiting on (its queue is empty) may always publish, so
    // the consumer can make progress for ANY geometry -- even a budget
    // smaller than one block. Workers claim shards in ascending order, so
    // the consumer's shard is always either finished or owned by a worker
    // this override lets through; the ring cannot deadlock.
    while (!(cancel_ || buffered_bytes_ + bytes <= max_buffered_bytes_ ||
             (shard == consume_shard_ && streams_[shard].blocks.empty()))) {
      space_cv_.Wait(&mu_);
    }
    if (!cancel_) {
      buffered_bytes_ += bytes;
      if (buffered_bytes_ > peak_buffered_bytes_) {
        peak_buffered_bytes_ = buffered_bytes_;
      }
      streams_[shard].blocks.push_back(std::move(*block));
      blocks_decoded_.fetch_add(1, std::memory_order_relaxed);
      ready_cv_.NotifyAll();
      published = true;
    }
  }
  if (published) {
    // Refill outside mu_: the replacement block is thread-local until
    // the next publish, and Acquire takes the pool mutex (and may grow
    // an arena) -- no reason to stall the consumer or other decoders.
    *block = blocks_->Acquire();
    return true;
  }
  blocks_->Release(std::move(*block));
  return false;
}

void ManifestOrderedShardCursor::FinishShard(uint32_t shard, Status status) {
  MutexLock lock(&mu_);
  streams_[shard].status = std::move(status);
  streams_[shard].finished = true;
  ready_cv_.NotifyAll();
}

void ManifestOrderedShardCursor::DecodeShard(uint32_t shard, size_t worker) {
  {
    MutexLock lock(&mu_);
    if (cancel_) return;  // Close raced ahead; skip the file entirely
  }
  AdjacencyShardReader reader(&worker_io_[worker]);
  Status status = reader.Open(manifest_path_, manifest_, shard);
  if (status.ok()) {
    RecordBlock block = blocks_->Acquire();
    bool has_next = false;
    while (true) {
      status = reader.NextInto(&block, &has_next);
      if (!status.ok() || !has_next) break;
      if (block.payload_bytes() >= block_bytes_) {
        if (!PublishBlock(shard, &block)) return;  // cancelled
      }
    }
    Status close_status = reader.Close();
    if (status.ok()) status = close_status;
    if (!block.empty()) {
      if (!PublishBlock(shard, &block)) return;  // cancelled
    }
    blocks_->Release(std::move(block));
  }
  FinishShard(shard, std::move(status));
}

Status ManifestOrderedShardCursor::Next(VertexRecordView* view,
                                        bool* has_next) {
  if (!open_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("cursor is not open");
  }
  while (true) {
    // Fast path: serve the next record straight out of the current block,
    // no lock, no copy, no allocation.
    if (current_loaded_ && current_pos_ < current_.num_records()) {
      *view = current_.view(current_pos_++);
      *has_next = true;
      return Status::OK();
    }
    if (current_loaded_) {
      // Drained a block: uncharge its bytes and recycle it. The bytes
      // stayed charged while the consumer held it, so peak_buffered_bytes
      // covers the consumer's block like the old shard window did. The
      // pool Release happens outside mu_ (it takes the pool's own mutex).
      current_loaded_ = false;
      {
        MutexLock lock(&mu_);
        buffered_bytes_ -= current_bytes_;
        space_cv_.NotifyAll();
      }
      blocks_->Release(std::move(current_));
    }
    MutexLock lock(&mu_);
    while (true) {
      if (cancel_) {
        return Status::InvalidArgument("cursor was closed during the scan");
      }
      if (consume_shard_ >= manifest_.num_shards()) {
        *has_next = false;
        return Status::OK();
      }
      ShardStream& stream = streams_[consume_shard_];
      while (!cancel_ && stream.blocks.empty() && !stream.finished) {
        ready_cv_.Wait(&mu_);
      }
      if (cancel_) {
        return Status::InvalidArgument("cursor was closed during the scan");
      }
      if (!stream.blocks.empty()) {
        current_ = std::move(stream.blocks.front());
        stream.blocks.pop_front();
        current_pos_ = 0;
        current_bytes_ = current_.payload_bytes();
        current_loaded_ = true;
        break;
      }
      // Shard finished with nothing queued: surface its error here (the
      // manifest-order point where the failure sits) or advance.
      if (!stream.status.ok()) return stream.status;
      consume_shard_++;
      space_cv_.NotifyAll();
    }
  }
}

Status ManifestOrderedShardCursor::Close() {
  // Serialized so a destructor-driven Close and an explicit one (possibly
  // from another thread, while Next blocks) cannot interleave teardown.
  // Lock order close_mu_ -> mu_ (ACQUIRED_AFTER on mu_); nothing takes
  // them the other way around.
  MutexLock close_lock(&close_mu_);
  if (!open_.load(std::memory_order_acquire)) return Status::OK();
  {
    MutexLock lock(&mu_);
    cancel_ = true;
    // Wake BOTH sides: decoders blocked on byte headroom and a consumer
    // blocked in Next (which then fails instead of hanging forever).
    space_cv_.NotifyAll();
    ready_cv_.NotifyAll();
  }
  pool_->WaitForCompletion();
  // A shard can finish with an I/O error (including a failed reader
  // Close) that the consumer never reached -- either it stopped at an
  // earlier shard's error or the caller abandoned the scan. A fully
  // drained scan surfaced every status through Next already; otherwise
  // report the first one here instead of dropping it.
  Status first_error;
  {
    MutexLock lock(&mu_);
    const bool fully_drained = consume_shard_ >= manifest_.num_shards();
    uint32_t shard = 0;
    for (ShardStream& stream : streams_) {
      if (!fully_drained && first_error.ok() && shard >= consume_shard_ &&
          stream.finished && !stream.status.ok()) {
        first_error = stream.status;
      }
      while (!stream.blocks.empty()) {
        buffered_bytes_ -= stream.blocks.front().payload_bytes();
        blocks_->Release(std::move(stream.blocks.front()));
        stream.blocks.pop_front();
      }
      shard++;
    }
    streams_.clear();
    if (stats_ != nullptr) {
      if (peak_buffered_bytes_ > stats_->peak_buffered_bytes) {
        stats_->peak_buffered_bytes = peak_buffered_bytes_;
      }
    }
  }
  if (stats_ != nullptr) {
    for (const IoStats& io : worker_io_) stats_->MergeFrom(io);
    stats_->blocks_decoded += blocks_decoded_.load(std::memory_order_relaxed);
    const size_t arena = blocks_->pooled_capacity_bytes();
    if (arena > stats_->arena_bytes) stats_->arena_bytes = arena;
  }
  worker_io_.clear();
  // The consumer's current block (if any) is consumer-owned; leave it for
  // the next Open/destruction rather than racing a concurrent Next.
  open_.store(false, std::memory_order_release);
  pool_ = nullptr;
  return first_error;
}

Status ShardAdjacencyFile(const std::string& input_path,
                          const std::string& manifest_path,
                          uint32_t num_shards, IoStats* stats) {
  AdjacencyFileScanner scanner(stats);
  SEMIS_RETURN_IF_ERROR(scanner.Open(input_path));
  const AdjacencyFileHeader& h = scanner.header();
  ShardedAdjacencyFileWriter writer(stats);
  SEMIS_RETURN_IF_ERROR(writer.Open(manifest_path, h.num_vertices,
                                    h.num_directed_edges, h.max_degree,
                                    h.flags, num_shards));
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    SEMIS_RETURN_IF_ERROR(writer.AppendVertex(rec.id, rec.neighbors,
                                              rec.degree));
  }
  return writer.Finish();
}

}  // namespace semis
