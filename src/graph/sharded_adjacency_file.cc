#include "graph/sharded_adjacency_file.h"

#include <cstdio>

namespace semis {

namespace {
constexpr uint32_t kManifestMagic = kShardManifestMagic;
constexpr uint32_t kShardMagic = 0x53444153u;  // 'SADS' little-endian
constexpr uint32_t kVersion = 1;

// Record cost in u32 words: id + degree + neighbors. Shards are balanced
// on this, which is proportional to both file bytes and scan work.
uint64_t RecordWords(uint32_t degree) { return 2 + degree; }
}  // namespace

std::string ShardFilePath(const std::string& manifest_path, uint32_t index) {
  return manifest_path + ".shard" + std::to_string(index);
}

Status ReadShardedAdjacencyManifest(const std::string& path,
                                    ShardedAdjacencyManifest* out,
                                    IoStats* stats) {
  SequentialFileReader reader(stats);
  SEMIS_RETURN_IF_ERROR(reader.Open(path));
  uint32_t magic = 0, version = 0;
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&magic));
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (magic != kManifestMagic) {
    return Status::Corruption("bad magic in '" + path +
                              "': not a shard manifest");
  }
  if (version != kVersion) {
    return Status::NotSupported("shard manifest version " +
                                std::to_string(version) + " not supported");
  }
  ShardedAdjacencyManifest m;
  uint32_t num_shards = 0, reserved = 0;
  SEMIS_RETURN_IF_ERROR(reader.ReadU64(&m.header.num_vertices));
  SEMIS_RETURN_IF_ERROR(reader.ReadU64(&m.header.num_directed_edges));
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&m.header.flags));
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&m.header.max_degree));
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&num_shards));
  SEMIS_RETURN_IF_ERROR(reader.ReadU32(&reserved));
  if (num_shards == 0) {
    return Status::Corruption("manifest '" + path + "' declares zero shards");
  }
  // Bound BEFORE the resize so a corrupted count cannot make the reader
  // allocate gigabytes; the writer never produces more than
  // kMaxAdjacencyShards shards.
  if (num_shards > kMaxAdjacencyShards) {
    return Status::Corruption("manifest '" + path +
                              "' declares an impossible shard count");
  }
  m.shards.resize(num_shards);
  uint64_t total_records = 0, total_edges = 0;
  for (ShardInfo& s : m.shards) {
    SEMIS_RETURN_IF_ERROR(reader.ReadU64(&s.num_records));
    SEMIS_RETURN_IF_ERROR(reader.ReadU64(&s.num_directed_edges));
    total_records += s.num_records;
    total_edges += s.num_directed_edges;
  }
  if (!reader.AtEof()) {
    return Status::Corruption("trailing bytes in shard manifest '" + path +
                              "'");
  }
  if (total_records != m.header.num_vertices ||
      total_edges != m.header.num_directed_edges) {
    return Status::Corruption("shard totals disagree with global header in '" +
                              path + "'");
  }
  *out = std::move(m);
  return Status::OK();
}

Status WriteShardedAdjacencyManifest(const std::string& path,
                                     const ShardedAdjacencyManifest& manifest,
                                     IoStats* stats) {
  if (manifest.num_shards() == 0) {
    return Status::InvalidArgument("manifest needs >= 1 shard");
  }
  uint64_t total_records = 0, total_edges = 0;
  for (const ShardInfo& s : manifest.shards) {
    total_records += s.num_records;
    total_edges += s.num_directed_edges;
  }
  if (total_records != manifest.header.num_vertices ||
      total_edges != manifest.header.num_directed_edges) {
    return Status::InvalidArgument(
        "shard totals disagree with the global header");
  }
  // Write-then-rename: compaction overwrites a live manifest, and a crash
  // mid-write must not leave a torn one behind.
  const std::string tmp = path + ".tmp";
  SequentialFileWriter writer(stats);
  SEMIS_RETURN_IF_ERROR(writer.Open(tmp));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(kManifestMagic));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(kVersion));
  SEMIS_RETURN_IF_ERROR(writer.AppendU64(manifest.header.num_vertices));
  SEMIS_RETURN_IF_ERROR(writer.AppendU64(manifest.header.num_directed_edges));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(manifest.header.flags));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(manifest.header.max_degree));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(manifest.num_shards()));
  SEMIS_RETURN_IF_ERROR(writer.AppendU32(0));  // reserved
  for (const ShardInfo& s : manifest.shards) {
    SEMIS_RETURN_IF_ERROR(writer.AppendU64(s.num_records));
    SEMIS_RETURN_IF_ERROR(writer.AppendU64(s.num_directed_edges));
  }
  SEMIS_RETURN_IF_ERROR(writer.Close());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot move shard manifest into place at '" +
                           path + "'");
  }
  return Status::OK();
}

Status WriteAdjacencyShardHeader(SequentialFileWriter* writer, uint32_t index,
                                 uint64_t num_vertices) {
  SEMIS_RETURN_IF_ERROR(writer->AppendU32(kShardMagic));
  SEMIS_RETURN_IF_ERROR(writer->AppendU32(kVersion));
  SEMIS_RETURN_IF_ERROR(writer->AppendU32(index));
  SEMIS_RETURN_IF_ERROR(writer->AppendU32(0));  // reserved
  // Shard totals are not known until the shard is closed; the file stays
  // append-only, so they are written as zero here and recorded
  // authoritatively in the manifest. Readers take totals from the
  // manifest and treat the in-file pair as a hint.
  SEMIS_RETURN_IF_ERROR(writer->AppendU64(0));
  SEMIS_RETURN_IF_ERROR(writer->AppendU64(0));
  return writer->AppendU64(num_vertices);
}

ShardedAdjacencyFileWriter::ShardedAdjacencyFileWriter(IoStats* stats)
    : stats_(stats), writer_(stats) {}

Status ShardedAdjacencyFileWriter::Open(const std::string& manifest_path,
                                        uint64_t num_vertices,
                                        uint64_t num_directed_edges,
                                        uint32_t max_degree, uint32_t flags,
                                        uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be at least 1");
  }
  if (num_shards > kMaxAdjacencyShards) {
    return Status::InvalidArgument(
        "num_shards " + std::to_string(num_shards) + " exceeds the limit of " +
        std::to_string(kMaxAdjacencyShards));
  }
  manifest_path_ = manifest_path;
  declared_vertices_ = num_vertices;
  declared_directed_edges_ = num_directed_edges;
  declared_max_degree_ = max_degree;
  declared_flags_ = flags;
  num_shards_ = num_shards;
  const uint64_t total_words =
      2 * num_vertices + num_directed_edges;  // sum of RecordWords
  shard_budget_words_ = (total_words + num_shards - 1) / num_shards;
  if (shard_budget_words_ == 0) shard_budget_words_ = 1;
  finished_shards_.clear();
  appended_vertices_ = 0;
  appended_edges_ = 0;
  return StartShard(0);
}

Status ShardedAdjacencyFileWriter::StartShard(uint32_t index) {
  current_shard_ = index;
  shard_words_ = 0;
  current_info_ = ShardInfo();
  SEMIS_RETURN_IF_ERROR(writer_.Open(ShardFilePath(manifest_path_, index)));
  return WriteAdjacencyShardHeader(&writer_, index, declared_vertices_);
}

Status ShardedAdjacencyFileWriter::CloseShard() {
  SEMIS_RETURN_IF_ERROR(writer_.Close());
  finished_shards_.push_back(current_info_);
  return Status::OK();
}

Status ShardedAdjacencyFileWriter::AppendVertex(VertexId id,
                                                const VertexId* neighbors,
                                                uint32_t degree) {
  if (id >= declared_vertices_) {
    return Status::InvalidArgument("vertex id " + std::to_string(id) +
                                   " out of range");
  }
  if (degree > declared_max_degree_) {
    return Status::InvalidArgument(
        "vertex degree exceeds declared max_degree");
  }
  const uint64_t words = RecordWords(degree);
  // Roll to the next shard when this record would overflow the budget --
  // but never roll an empty shard, and keep the last shard open for the
  // remainder. The split depends only on the record stream, so it is
  // byte-stable across runs.
  if (shard_words_ > 0 && shard_words_ + words > shard_budget_words_ &&
      current_shard_ + 1 < num_shards_) {
    SEMIS_RETURN_IF_ERROR(CloseShard());
    SEMIS_RETURN_IF_ERROR(StartShard(current_shard_ + 1));
  }
  SEMIS_RETURN_IF_ERROR(writer_.AppendU32(id));
  SEMIS_RETURN_IF_ERROR(writer_.AppendU32(degree));
  if (degree > 0) {
    SEMIS_RETURN_IF_ERROR(
        writer_.Append(neighbors, sizeof(VertexId) * degree));
  }
  shard_words_ += words;
  current_info_.num_records++;
  current_info_.num_directed_edges += degree;
  appended_vertices_++;
  appended_edges_ += degree;
  return Status::OK();
}

Status ShardedAdjacencyFileWriter::Finish() {
  SEMIS_RETURN_IF_ERROR(CloseShard());
  // Materialize trailing empty shards so every manifest entry has a file.
  while (finished_shards_.size() < num_shards_) {
    SEMIS_RETURN_IF_ERROR(StartShard(current_shard_ + 1));
    SEMIS_RETURN_IF_ERROR(CloseShard());
  }
  if (appended_vertices_ != declared_vertices_) {
    return Status::InvalidArgument(
        "vertex count mismatch: declared " +
        std::to_string(declared_vertices_) + ", appended " +
        std::to_string(appended_vertices_));
  }
  if (appended_edges_ != declared_directed_edges_) {
    return Status::InvalidArgument(
        "edge count mismatch: declared " +
        std::to_string(declared_directed_edges_) + ", appended " +
        std::to_string(appended_edges_));
  }
  ShardedAdjacencyManifest manifest;
  manifest.header.num_vertices = declared_vertices_;
  manifest.header.num_directed_edges = declared_directed_edges_;
  manifest.header.flags = declared_flags_;
  manifest.header.max_degree = declared_max_degree_;
  manifest.shards = finished_shards_;
  return WriteShardedAdjacencyManifest(manifest_path_, manifest, stats_);
}

AdjacencyShardReader::AdjacencyShardReader(IoStats* stats)
    : stats_(stats), reader_(stats) {}

Status AdjacencyShardReader::Open(const std::string& manifest_path,
                                  const ShardedAdjacencyManifest& manifest,
                                  uint32_t index) {
  if (index >= manifest.num_shards()) {
    return Status::InvalidArgument("shard index out of range");
  }
  path_ = ShardFilePath(manifest_path, index);
  num_vertices_ = manifest.header.num_vertices;
  max_degree_ = manifest.header.max_degree;
  num_records_ = manifest.shards[index].num_records;
  num_edges_ = manifest.shards[index].num_directed_edges;
  records_seen_ = 0;
  edges_seen_ = 0;
  SEMIS_RETURN_IF_ERROR(reader_.Open(path_));
  uint32_t magic = 0, version = 0, file_index = 0, reserved = 0;
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&magic));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&version));
  if (magic != kShardMagic) {
    return Status::Corruption("bad magic in '" + path_ +
                              "': not an adjacency shard");
  }
  if (version != kVersion) {
    return Status::NotSupported("adjacency shard version " +
                                std::to_string(version) + " not supported");
  }
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&file_index));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&reserved));
  if (file_index != index) {
    return Status::Corruption("shard index mismatch in '" + path_ + "'");
  }
  uint64_t hint_records = 0, hint_edges = 0, global_vertices = 0;
  SEMIS_RETURN_IF_ERROR(reader_.ReadU64(&hint_records));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU64(&hint_edges));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU64(&global_vertices));
  if (global_vertices != num_vertices_) {
    return Status::Corruption("shard '" + path_ +
                              "' disagrees with manifest vertex count");
  }
  return Status::OK();
}

Status AdjacencyShardReader::Next(VertexRecord* rec, bool* has_next) {
  if (records_seen_ == num_records_) {
    if (!reader_.AtEof()) {
      return Status::Corruption("trailing bytes after last record in '" +
                                path_ + "'");
    }
    if (edges_seen_ != num_edges_) {
      return Status::Corruption(
          "shard '" + path_ + "' holds " + std::to_string(edges_seen_) +
          " directed edges but the manifest declares " +
          std::to_string(num_edges_));
    }
    *has_next = false;
    return Status::OK();
  }
  if (reader_.AtEof()) {
    return Status::Corruption(
        "shard '" + path_ + "' truncated: expected " +
        std::to_string(num_records_) + " records, found " +
        std::to_string(records_seen_));
  }
  uint32_t id = 0, degree = 0;
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&id));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&degree));
  if (id >= num_vertices_) {
    return Status::Corruption("record id out of range in '" + path_ + "'");
  }
  if (degree > max_degree_) {
    return Status::Corruption("record degree exceeds header max_degree in '" +
                              path_ + "'");
  }
  neighbor_buf_.resize(degree);
  if (degree > 0) {
    SEMIS_RETURN_IF_ERROR(
        reader_.ReadExact(neighbor_buf_.data(), sizeof(VertexId) * degree));
    for (VertexId nb : neighbor_buf_) {
      if (nb >= num_vertices_) {
        return Status::Corruption("neighbor id out of range in '" + path_ +
                                  "'");
      }
    }
  }
  records_seen_++;
  edges_seen_ += degree;
  if (edges_seen_ > num_edges_) {
    return Status::Corruption("more edges than declared in '" + path_ + "'");
  }
  rec->id = id;
  rec->degree = degree;
  rec->neighbors = neighbor_buf_.data();
  *has_next = true;
  return Status::OK();
}

Status AdjacencyShardReader::Close() { return reader_.Close(); }

ShardedAdjacencyScanner::ShardedAdjacencyScanner(IoStats* stats)
    : stats_(stats), reader_(stats) {}

Status ShardedAdjacencyScanner::Open(const std::string& manifest_path) {
  manifest_path_ = manifest_path;
  SEMIS_RETURN_IF_ERROR(
      ReadShardedAdjacencyManifest(manifest_path, &manifest_, stats_));
  if (stats_ != nullptr) stats_->sequential_scans++;
  current_shard_ = 0;
  SEMIS_RETURN_IF_ERROR(reader_.Open(manifest_path_, manifest_, 0));
  shard_open_ = true;
  return Status::OK();
}

Status ShardedAdjacencyScanner::Next(VertexRecord* rec, bool* has_next) {
  while (true) {
    if (!shard_open_) {
      *has_next = false;
      return Status::OK();
    }
    bool shard_has_next = false;
    SEMIS_RETURN_IF_ERROR(reader_.Next(rec, &shard_has_next));
    if (shard_has_next) {
      *has_next = true;
      return Status::OK();
    }
    SEMIS_RETURN_IF_ERROR(reader_.Close());
    shard_open_ = false;
    if (current_shard_ + 1 < manifest_.num_shards()) {
      current_shard_++;
      SEMIS_RETURN_IF_ERROR(
          reader_.Open(manifest_path_, manifest_, current_shard_));
      shard_open_ = true;
    }
  }
}

ManifestOrderedShardCursor::ManifestOrderedShardCursor(IoStats* stats)
    : stats_(stats) {}

ManifestOrderedShardCursor::~ManifestOrderedShardCursor() { (void)Close(); }

Status ManifestOrderedShardCursor::Open(const std::string& manifest_path,
                                        ThreadPool* pool,
                                        uint32_t max_buffered_shards) {
  if (pool == nullptr) {
    return Status::InvalidArgument(
        "manifest-ordered cursor requires a thread pool");
  }
  if (open_) {
    return Status::InvalidArgument("cursor is already open");
  }
  manifest_path_ = manifest_path;
  SEMIS_RETURN_IF_ERROR(
      ReadShardedAdjacencyManifest(manifest_path, &manifest_, stats_));
  if (stats_ != nullptr) stats_->sequential_scans++;
  pool_ = pool;
  window_ = max_buffered_shards != 0
                ? max_buffered_shards
                : static_cast<uint32_t>(pool->size()) + 1;
  slots_.assign(manifest_.num_shards(), Slot());
  worker_io_.assign(pool->size(), IoStats());
  consume_index_ = 0;
  cancel_ = false;
  buffered_bytes_ = 0;
  peak_buffered_bytes_ = 0;
  current_words_.clear();
  current_offset_ = 0;
  current_loaded_ = false;
  open_ = true;
  pool_->BeginParallelFor(manifest_.num_shards(), [this](size_t shard,
                                                         size_t worker) {
    DecodeShard(static_cast<uint32_t>(shard), worker);
  });
  return Status::OK();
}

void ManifestOrderedShardCursor::DecodeShard(uint32_t shard, size_t worker) {
  {
    // Workers pull shard indices in ascending order, so blocking on the
    // window here never starves a lower shard: everything the consumer is
    // waiting for is either decoded or within the window.
    std::unique_lock<std::mutex> lock(mu_);
    window_cv_.wait(lock, [&] {
      return cancel_ || shard < consume_index_ + window_;
    });
    if (cancel_) return;
  }
  Slot decoded;
  AdjacencyShardReader reader(&worker_io_[worker]);
  decoded.status = reader.Open(manifest_path_, manifest_, shard);
  if (decoded.status.ok()) {
    decoded.words.reserve(2 * manifest_.shards[shard].num_records +
                          manifest_.shards[shard].num_directed_edges);
    VertexRecord rec;
    bool has_next = false;
    while (true) {
      decoded.status = reader.Next(&rec, &has_next);
      if (!decoded.status.ok() || !has_next) break;
      decoded.words.push_back(rec.id);
      decoded.words.push_back(rec.degree);
      decoded.words.insert(decoded.words.end(), rec.neighbors,
                           rec.neighbors + rec.degree);
    }
    Status close_status = reader.Close();
    if (decoded.status.ok()) decoded.status = close_status;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = slots_[shard];
    slot.words = std::move(decoded.words);
    slot.status = std::move(decoded.status);
    slot.ready = true;
    buffered_bytes_ += slot.words.size() * sizeof(VertexId);
    if (buffered_bytes_ > peak_buffered_bytes_) {
      peak_buffered_bytes_ = buffered_bytes_;
    }
    ready_cv_.notify_all();
  }
}

Status ManifestOrderedShardCursor::Next(VertexRecord* rec, bool* has_next) {
  if (!open_) {
    return Status::InvalidArgument("cursor is not open");
  }
  while (true) {
    if (current_loaded_ && current_offset_ < current_words_.size()) {
      rec->id = current_words_[current_offset_];
      rec->degree = current_words_[current_offset_ + 1];
      rec->neighbors = current_words_.data() + current_offset_ + 2;
      current_offset_ += 2 + rec->degree;
      *has_next = true;
      return Status::OK();
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (current_loaded_) {
      // Finished a shard: drop its buffer and open the window one slot.
      current_loaded_ = false;
      buffered_bytes_ -= current_words_.size() * sizeof(VertexId);
      current_words_.clear();
      current_words_.shrink_to_fit();
      consume_index_++;
      window_cv_.notify_all();
    }
    if (consume_index_ >= manifest_.num_shards()) {
      *has_next = false;
      return Status::OK();
    }
    Slot& slot = slots_[consume_index_];
    ready_cv_.wait(lock, [&] { return slot.ready; });
    if (!slot.status.ok()) return slot.status;
    // The moved-out buffer stays charged to buffered_bytes_ until the
    // shard is fully consumed; size is preserved through the move.
    current_words_ = std::move(slot.words);
    current_offset_ = 0;
    current_loaded_ = true;
  }
}

Status ManifestOrderedShardCursor::Close() {
  if (!open_) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancel_ = true;
    window_cv_.notify_all();
  }
  pool_->WaitForCompletion();
  for (const IoStats& io : worker_io_) {
    if (stats_ != nullptr) stats_->MergeFrom(io);
  }
  worker_io_.clear();
  slots_.clear();
  current_words_.clear();
  current_loaded_ = false;
  open_ = false;
  pool_ = nullptr;
  return Status::OK();
}

Status ShardAdjacencyFile(const std::string& input_path,
                          const std::string& manifest_path,
                          uint32_t num_shards, IoStats* stats) {
  AdjacencyFileScanner scanner(stats);
  SEMIS_RETURN_IF_ERROR(scanner.Open(input_path));
  const AdjacencyFileHeader& h = scanner.header();
  ShardedAdjacencyFileWriter writer(stats);
  SEMIS_RETURN_IF_ERROR(writer.Open(manifest_path, h.num_vertices,
                                    h.num_directed_edges, h.max_degree,
                                    h.flags, num_shards));
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    SEMIS_RETURN_IF_ERROR(writer.AppendVertex(rec.id, rec.neighbors,
                                              rec.degree));
  }
  return writer.Finish();
}

}  // namespace semis
