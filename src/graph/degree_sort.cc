#include "graph/degree_sort.h"

#include <vector>

#include "graph/adjacency_file.h"
#include "io/external_sorter.h"

namespace semis {

Status BuildDegreeSortedAdjacencyFile(const std::string& input_path,
                                      const std::string& output_path,
                                      const DegreeSortOptions& options) {
  AdjacencyFileScanner scanner(options.stats);
  SEMIS_RETURN_IF_ERROR(scanner.Open(input_path));
  const AdjacencyFileHeader header = scanner.header();

  ExternalSorterOptions sorter_opts;
  sorter_opts.memory_budget_bytes = options.memory_budget_bytes;
  sorter_opts.fan_in = options.fan_in;
  sorter_opts.stats = options.stats;
  sorter_opts.memory = options.memory;
  ExternalSorter sorter(sorter_opts);

  // Key = (degree << 32) | id: ascending degree, ties by id. The id rides
  // in the key's low bits so the payload is just the neighbor list.
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    uint64_t key =
        (static_cast<uint64_t>(rec.degree) << 32) | static_cast<uint64_t>(rec.id);
    SEMIS_RETURN_IF_ERROR(sorter.Add(key, rec.neighbors, rec.degree));
  }
  SEMIS_RETURN_IF_ERROR(sorter.Finish());

  AdjacencyFileWriter writer(options.stats);
  SEMIS_RETURN_IF_ERROR(writer.Open(
      output_path, header.num_vertices, header.num_directed_edges,
      header.max_degree, header.flags | kAdjFlagDegreeSorted));
  uint64_t key = 0;
  std::vector<uint32_t> payload;
  while (sorter.Next(&key, &payload)) {
    VertexId id = static_cast<VertexId>(key & 0xFFFFFFFFull);
    uint32_t degree = static_cast<uint32_t>(key >> 32);
    if (degree != payload.size()) {
      return Status::Corruption("degree/payload mismatch during degree sort");
    }
    SEMIS_RETURN_IF_ERROR(writer.AppendVertex(id, payload.data(), degree));
  }
  SEMIS_RETURN_IF_ERROR(sorter.status());
  return writer.Finish();
}

}  // namespace semis
