#include "graph/graph.h"

#include <algorithm>

namespace semis {

Graph Graph::FromEdges(VertexId num_vertices, std::vector<Edge> edges) {
  // Normalize: drop self-loops and out-of-range endpoints, orient u < v.
  size_t kept = 0;
  for (const Edge& e : edges) {
    VertexId u = e.first, v = e.second;
    if (u == v || u >= num_vertices || v >= num_vertices) continue;
    if (u > v) std::swap(u, v);
    edges[kept++] = {u, v};
  }
  edges.resize(kept);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) {
    g.offsets_[e.first + 1]++;
    g.offsets_[e.second + 1]++;
  }
  for (size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adj_.resize(edges.size() * 2);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.adj_[cursor[e.first]++] = e.second;
    g.adj_[cursor[e.second]++] = e.first;
  }
  // Both directions were appended in (u < v) sorted edge order, so each
  // list is already ascending; still, enforce the invariant defensively.
  for (VertexId v = 0; v < num_vertices; ++v) {
    auto begin = g.adj_.begin() + static_cast<ptrdiff_t>(g.offsets_[v]);
    auto end = g.adj_.begin() + static_cast<ptrdiff_t>(g.offsets_[v + 1]);
    if (!std::is_sorted(begin, end)) std::sort(begin, end);
    g.max_degree_ = std::max(
        g.max_degree_, static_cast<uint32_t>(g.offsets_[v + 1] - g.offsets_[v]));
  }
  return g;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) return false;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace semis
