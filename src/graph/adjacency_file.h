// Copyright (c) the semis authors.
// The on-disk adjacency-list format ("SADJ", version 1) consumed by every
// semi-external algorithm in this library.
//
// Layout (little endian):
//   u32 magic 'SADJ'  u32 version
//   u64 num_vertices  u64 num_directed_edges (= sum of degrees)
//   u32 flags         u32 max_degree
//   then one record per vertex, in FILE order (which need not be id
//   order -- degree-sorted files permute the records):
//     u32 id  u32 degree  u32 neighbor[degree]
//
// The scanner exposes records strictly in file order; there is no random
// access, matching the paper's semi-external model.
#ifndef SEMIS_GRAPH_ADJACENCY_FILE_H_
#define SEMIS_GRAPH_ADJACENCY_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/record_block.h"
#include "io/file.h"
#include "io/io_stats.h"
#include "util/common.h"
#include "util/status.h"

namespace semis {

/// Flag: records appear in ascending order of (degree, id). Produced by
/// the preprocessing sort (Section 4.1) and required by GREEDY for its
/// approximation quality (BASELINE omits it).
inline constexpr uint32_t kAdjFlagDegreeSorted = 1u << 0;

/// Parsed header of an adjacency file.
struct AdjacencyFileHeader {
  uint64_t num_vertices = 0;
  uint64_t num_directed_edges = 0;  // sum of degrees = 2|E|
  uint32_t flags = 0;
  uint32_t max_degree = 0;

  /// True if the file is degree-sorted.
  bool IsDegreeSorted() const { return (flags & kAdjFlagDegreeSorted) != 0; }
};

/// Streaming writer. Vertex totals are declared up front so the header can
/// be written once without backwards seeks (the file stays append-only).
class AdjacencyFileWriter {
 public:
  /// `stats` may be null.
  explicit AdjacencyFileWriter(IoStats* stats = nullptr);

  /// Creates `path` and writes the header.
  Status Open(const std::string& path, uint64_t num_vertices,
              uint64_t num_directed_edges, uint32_t max_degree,
              uint32_t flags);

  /// Appends the record for vertex `id`. Every vertex must be appended
  /// exactly once (including degree-0 vertices).
  Status AppendVertex(VertexId id, const VertexId* neighbors, uint32_t degree);

  /// Validates the declared totals and closes the file.
  Status Finish();

 private:
  SequentialFileWriter writer_;
  uint64_t declared_vertices_ = 0;
  uint64_t declared_directed_edges_ = 0;
  uint32_t declared_max_degree_ = 0;
  uint64_t appended_vertices_ = 0;
  uint64_t appended_edges_ = 0;
};

/// One vertex record as exposed by the scanner. `neighbors` points into a
/// scanner-owned buffer that is invalidated by the next call to Next().
struct VertexRecord {
  VertexId id = 0;
  uint32_t degree = 0;
  const VertexId* neighbors = nullptr;
};

/// Shared shim behind every reader's VertexRecord-compat Next overload:
/// drives the source's view-API Next and repackages the view (same
/// lifetime rules). One definition so the field mapping cannot diverge
/// between readers.
template <typename Source>
Status NextRecordFromView(Source* source, VertexRecord* rec,
                          bool* has_next) {
  VertexRecordView view;
  SEMIS_RETURN_IF_ERROR(source->Next(&view, has_next));
  if (*has_next) {
    rec->id = view.id;
    rec->degree = view.degree;
    rec->neighbors = view.neighbors;
  }
  return Status::OK();
}

/// Forward-only reader of adjacency files. Rewind() restarts a scan (and
/// bumps IoStats::sequential_scans): this is the only iteration primitive
/// the semi-external algorithms get.
class AdjacencyFileScanner {
 public:
  /// `stats` may be null.
  explicit AdjacencyFileScanner(IoStats* stats = nullptr);

  /// Opens the file and parses/validates the header. Counts one
  /// sequential scan.
  Status Open(const std::string& path);

  /// Header of the open file.
  const AdjacencyFileHeader& header() const { return header_; }

  /// Reads the next record. `*has_next` is false at end-of-file (in which
  /// case `rec` is untouched). Validates ids, degrees and totals; a
  /// truncated or inconsistent file yields Corruption.
  Status Next(VertexRecord* rec, bool* has_next);

  /// View-API flavor of Next (graph/record_block.h): identical semantics,
  /// `view->neighbors` points into the scanner buffer until the next call.
  /// Lets generic scan code (RunGreedyScan, the streaming RepairScan) run
  /// unchanged over this scanner and the block-decode cursor.
  Status Next(VertexRecordView* view, bool* has_next) {
    VertexRecord rec;
    SEMIS_RETURN_IF_ERROR(Next(&rec, has_next));
    if (*has_next) *view = VertexRecordView{rec.id, rec.degree, rec.neighbors};
    return Status::OK();
  }

  /// Restarts the scan from the first record. Counts a sequential scan.
  Status Rewind();

  /// Closes the underlying file without waiting for the destructor. Used
  /// by callers (e.g. the Solver's header probe) that must not keep the
  /// file handle open across a long downstream stage. Safe to call twice.
  Status Close();

  /// Path of the open file.
  const std::string& path() const { return path_; }

 private:
  Status ReadHeader();

  IoStats* stats_;
  SequentialFileReader reader_;
  AdjacencyFileHeader header_;
  std::string path_;
  std::vector<VertexId> neighbor_buf_;
  uint64_t records_seen_ = 0;
  uint64_t edges_seen_ = 0;
};

}  // namespace semis

#endif  // SEMIS_GRAPH_ADJACENCY_FILE_H_
