#include "graph/record_block.h"

namespace semis {

VertexId* RecordBlock::BeginRecord(VertexId id, uint32_t degree) {
  // One staged record at a time; a second Begin without Commit/Abandon is
  // a programming error upstream, but recovering by dropping the earlier
  // stage keeps the arena consistent either way.
  staged_ = Entry{id, degree, arena_size_};
  staging_ = true;
  const size_t needed = arena_size_ + degree;
  if (arena_.size() < needed) {
    // Grow geometrically without value-initializing the live prefix over
    // and over (resize() would zero the new words every call).
    size_t grown = arena_.size() == 0 ? 1024 : arena_.size();
    while (grown < needed) grown *= 2;
    arena_.resize(grown);
  }
  return arena_.data() + arena_size_;
}

void RecordBlock::CommitRecord() {
  if (!staging_) return;
  arena_size_ = staged_.offset + staged_.degree;
  index_.push_back(staged_);
  staging_ = false;
}

void RecordBlock::AbandonRecord() { staging_ = false; }

void RecordBlock::Clear() {
  arena_size_ = 0;
  index_.clear();  // keeps capacity
  staging_ = false;
}

RecordBlock RecordBlockPool::Acquire() {
  {
    MutexLock lock(&mu_);
    if (!free_.empty()) {
      RecordBlock block = std::move(free_.back());
      free_.pop_back();
      return block;
    }
    blocks_created_++;
  }
  return RecordBlock();
}

void RecordBlockPool::Release(RecordBlock&& block) {
  block.Clear();
  MutexLock lock(&mu_);
  free_.push_back(std::move(block));
}

uint64_t RecordBlockPool::blocks_created() const {
  MutexLock lock(&mu_);
  return blocks_created_;
}

size_t RecordBlockPool::pooled_capacity_bytes() const {
  MutexLock lock(&mu_);
  size_t bytes = 0;
  for (const RecordBlock& block : free_) bytes += block.capacity_bytes();
  return bytes;
}

}  // namespace semis
