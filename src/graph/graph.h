// Copyright (c) the semis authors.
// In-memory CSR (compressed sparse row) representation of a simple
// undirected graph. Used by the generators, the in-memory baselines, the
// test oracles, and as the construction source for on-disk adjacency files.
// The semi-external algorithms themselves never touch this class.
#ifndef SEMIS_GRAPH_GRAPH_H_
#define SEMIS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/common.h"

namespace semis {

/// An undirected edge as an id pair. Orientation is irrelevant.
using Edge = std::pair<VertexId, VertexId>;

/// Immutable simple undirected graph in CSR form. Each undirected edge is
/// stored in both adjacency lists; lists are sorted ascending by neighbor
/// id and contain no duplicates or self-loops.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph on `num_vertices` vertices from an edge list.
  /// Self-loops and duplicate edges (in either orientation) are dropped;
  /// ids must be < num_vertices (edges violating this are dropped too).
  static Graph FromEdges(VertexId num_vertices, std::vector<Edge> edges);

  /// Number of vertices.
  VertexId NumVertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of undirected edges.
  uint64_t NumEdges() const { return adj_.size() / 2; }

  /// Sum of all degrees (= 2 * NumEdges()).
  uint64_t NumDirectedEdges() const { return adj_.size(); }

  /// Degree of vertex `v`.
  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbor list of `v`.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adj_.data() + offsets_[v],
            adj_.data() + offsets_[v + 1]};
  }

  /// Largest degree in the graph (0 for an empty graph).
  uint32_t MaxDegree() const { return max_degree_; }

  /// O(log deg) adjacency test.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Average degree (0 for an empty graph).
  double AverageDegree() const {
    return NumVertices() == 0
               ? 0.0
               : static_cast<double>(adj_.size()) / NumVertices();
  }

  /// Heap bytes of the CSR arrays.
  size_t MemoryBytes() const {
    return offsets_.size() * sizeof(uint64_t) + adj_.size() * sizeof(VertexId);
  }

 private:
  std::vector<uint64_t> offsets_;  // size NumVertices()+1
  std::vector<VertexId> adj_;      // size 2*NumEdges()
  uint32_t max_degree_ = 0;
};

}  // namespace semis

#endif  // SEMIS_GRAPH_GRAPH_H_
