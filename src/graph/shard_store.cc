#include "graph/shard_store.h"

#include <dirent.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "io/edge_delta_file.h"
#include "io/epoch_journal.h"
#include "io/file.h"
#include "util/crash_point.h"

namespace semis {

namespace {

// On-disk byte sizes implied by the formats (sharded_adjacency_file.h,
// edge_delta_file.h). Shard files are written in full and append-only, so
// their size is exact; delta logs may carry a crash-torn tail past the
// declared entry count, so only a lower bound holds.
constexpr uint64_t kShardHeaderBytes = 4 * 4 + 3 * 8;
constexpr uint64_t kDeltaLogHeaderBytes = 4 * 4 + 8;
constexpr uint64_t kDeltaEntryBytes = 8 + 3 * 4;

uint64_t ExpectedShardBytes(const ShardInfo& info) {
  return kShardHeaderBytes + 8 * info.num_records +
         4 * info.num_directed_edges;
}

// Splits `path` into directory (without trailing '/') and base name.
void SplitPath(const std::string& path, std::string* dir, std::string* base) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    *dir = ".";
    *base = path;
  } else {
    *dir = slash == 0 ? "/" : path.substr(0, slash);
    *base = path.substr(slash + 1);
  }
}

// Parses a run of decimal digits at the front of `s`; returns true and
// strips them into `*value` / `*rest` only if there is at least one.
bool ConsumeDigits(const std::string& s, uint64_t* value, std::string* rest) {
  size_t i = 0;
  uint64_t v = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + static_cast<uint64_t>(s[i] - '0');
    ++i;
  }
  if (i == 0) return false;
  *value = v;
  *rest = s.substr(i);
  return true;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsAllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

// True if `name` (a sibling of the root, already stripped of the
// "<base>." prefix) is an orphan of the resolved store. Conservative: an
// unrecognized name is never an orphan.
bool SuffixIsOrphan(const ResolvedShardStore& store, const std::string& sfx) {
  if (sfx == "tmp") return true;  // root-pointer staging
  if (sfx.rfind("epoch", 0) == 0) {
    uint64_t epoch = 0;
    std::string rest;
    if (!ConsumeDigits(sfx.substr(5), &epoch, &rest)) return false;
    if (!rest.empty() && rest[0] != '.') return false;  // not our naming
    // Staging inside any epoch namespace is always dead: `.tmp` from a
    // torn manifest republish, `.resort<k>` from an interrupted re-sort.
    if (EndsWith(rest, ".tmp")) return true;
    size_t resort = rest.rfind(".resort");
    if (resort != std::string::npos &&
        IsAllDigits(rest.substr(resort + 7))) {
      return true;
    }
    // Epoch files next to a legacy root are a crashed conversion; epoch
    // files outside {current, previous} are retired.
    if (!store.journaled) return true;
    return epoch != store.current_epoch && epoch != store.previous_epoch;
  }
  if (store.journaled) {
    // Once journaled, the legacy-layout names are stale (their inodes
    // were hard-linked into epoch 1 by the conversion commit).
    if (sfx == "delta") return true;
    if (sfx.rfind("delta.shard", 0) == 0 && IsAllDigits(sfx.substr(11))) {
      return true;
    }
    if (sfx.rfind("shard", 0) == 0 && IsAllDigits(sfx.substr(5))) return true;
  }
  return false;
}

}  // namespace

Status ValidateShardStoreEpoch(const std::string& manifest_path,
                               IoStats* stats) {
  ShardedAdjacencyManifest manifest;
  SEMIS_RETURN_IF_ERROR(
      ReadShardedAdjacencyManifest(manifest_path, &manifest, stats));
  for (uint32_t k = 0; k < manifest.num_shards(); ++k) {
    const std::string shard_path = ShardFilePath(manifest_path, k);
    uint64_t size = 0;
    SEMIS_RETURN_IF_ERROR(GetFileSize(shard_path, &size));
    const uint64_t expected = ExpectedShardBytes(manifest.shards[k]);
    if (size != expected) {
      return Status::Corruption(
          "shard file '" + shard_path + "' is " + std::to_string(size) +
          " bytes, manifest implies " + std::to_string(expected));
    }
  }
  const std::string delta_path = EdgeDeltaManifestPath(manifest_path);
  uint64_t delta_size = 0;
  if (!GetFileSize(delta_path, &delta_size).ok()) {
    return Status::OK();  // no overlay; the base alone is the store
  }
  EdgeDeltaManifest delta;
  SEMIS_RETURN_IF_ERROR(ReadEdgeDeltaManifest(delta_path, &delta, stats));
  if (delta.num_shards() != manifest.num_shards() ||
      delta.num_vertices != manifest.header.num_vertices) {
    return Status::Corruption("delta manifest '" + delta_path +
                              "' disagrees with SADM manifest '" +
                              manifest_path + "'");
  }
  for (uint32_t k = 0; k < delta.num_shards(); ++k) {
    const std::string log_path = EdgeDeltaShardPath(delta_path, k);
    uint64_t size = 0;
    SEMIS_RETURN_IF_ERROR(GetFileSize(log_path, &size));
    const uint64_t min_bytes =
        kDeltaLogHeaderBytes + kDeltaEntryBytes * delta.shard_entries[k];
    if (size < min_bytes) {
      return Status::Corruption(
          "delta log '" + log_path + "' is " + std::to_string(size) +
          " bytes, manifest declares at least " + std::to_string(min_bytes));
    }
  }
  return Status::OK();
}

namespace {

// Shared resolution. When `durable`, a fallback is committed back to the
// root pointer so later readers skip the damaged epoch.
Status ResolveInternal(const std::string& root_path, bool durable,
                       ResolvedShardStore* out, ShardStoreRecovery* recovery,
                       IoStats* stats) {
  ResolvedShardStore resolved;
  resolved.root_path = root_path;
  uint32_t magic = 0;
  SEMIS_RETURN_IF_ERROR(ProbeFileMagic(root_path, &magic, stats));
  if (magic != kEpochRootMagic) {
    // Legacy (SADM) store -- or not a store at all, in which case the
    // manifest reader's own diagnostics fire downstream.
    resolved.manifest_path = root_path;
    *out = resolved;
    return Status::OK();
  }
  EpochRootPointer root;
  SEMIS_RETURN_IF_ERROR(ReadEpochRootPointer(root_path, &root, stats));
  resolved.journaled = true;
  resolved.current_epoch = root.current_epoch;
  resolved.previous_epoch = root.previous_epoch;
  resolved.manifest_path = EpochManifestPath(root_path, root.current_epoch);
  Status current_ok = ValidateShardStoreEpoch(resolved.manifest_path, stats);
  if (!current_ok.ok()) {
    if (root.previous_epoch == 0) {
      return Status::Corruption("store '" + root_path + "' epoch " +
                                std::to_string(root.current_epoch) +
                                " is damaged and no fallback epoch exists: " +
                                current_ok.message());
    }
    const std::string prev_manifest =
        EpochManifestPath(root_path, root.previous_epoch);
    Status previous_ok = ValidateShardStoreEpoch(prev_manifest, stats);
    if (!previous_ok.ok()) {
      return Status::Corruption(
          "store '" + root_path + "' is damaged in both epochs (current " +
          std::to_string(root.current_epoch) + ": " + current_ok.message() +
          "; previous " + std::to_string(root.previous_epoch) + ": " +
          previous_ok.message() + ")");
    }
    resolved.fell_back = true;
    resolved.current_epoch = root.previous_epoch;
    resolved.previous_epoch = 0;
    resolved.manifest_path = prev_manifest;
    if (recovery != nullptr) recovery->fell_back = true;
    if (durable) {
      EpochRootPointer repaired;
      repaired.current_epoch = resolved.current_epoch;
      repaired.previous_epoch = 0;
      SEMIS_RETURN_IF_ERROR(WriteEpochRootPointer(root_path, repaired, stats));
    }
  }
  *out = resolved;
  return Status::OK();
}

}  // namespace

Status ResolveShardStore(const std::string& root_path, ResolvedShardStore* out,
                         IoStats* stats) {
  return ResolveInternal(root_path, /*durable=*/false, out, nullptr, stats);
}

Status RecoverShardStore(const std::string& root_path, ResolvedShardStore* out,
                         ShardStoreRecovery* recovery, IoStats* stats) {
  ShardStoreRecovery local;
  SEMIS_RETURN_IF_ERROR(
      ResolveInternal(root_path, /*durable=*/true, out, &local, stats));
  SEMIS_RETURN_IF_ERROR(GarbageCollectShardStore(*out, &local.orphan_files_removed));
  if (recovery != nullptr) *recovery = local;
  return Status::OK();
}

Status ListShardStoreOrphans(const ResolvedShardStore& resolved,
                             std::vector<std::string>* orphans) {
  orphans->clear();
  std::string dir, base;
  SplitPath(resolved.root_path, &dir, &base);
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError("cannot open directory '" + dir +
                           "': " + std::strerror(errno));
  }
  const std::string prefix = base + ".";
  for (struct dirent* entry = ::readdir(d); entry != nullptr;
       entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    if (SuffixIsOrphan(resolved, name.substr(prefix.size()))) {
      orphans->push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  // readdir order is filesystem-dependent; sort so reports and removal
  // order (and therefore crash-point numbering during GC) are stable.
  std::sort(orphans->begin(), orphans->end());
  return Status::OK();
}

Status GarbageCollectShardStore(const ResolvedShardStore& resolved,
                                uint64_t* removed) {
  std::vector<std::string> orphans;
  SEMIS_RETURN_IF_ERROR(ListShardStoreOrphans(resolved, &orphans));
  uint64_t count = 0;
  for (const std::string& path : orphans) {
    SEMIS_RETURN_IF_ERROR(RemoveFileIfExists(path));
    ++count;
    SEMIS_CRASH_POINT("gc.unlinked-orphan");
  }
  if (count > 0) {
    SEMIS_RETURN_IF_ERROR(SyncParentDirectory(resolved.root_path));
  }
  if (removed != nullptr) *removed = count;
  return Status::OK();
}

Status ReadShardStoreManifest(const std::string& root_path,
                              ShardedAdjacencyManifest* out, IoStats* stats) {
  ResolvedShardStore resolved;
  SEMIS_RETURN_IF_ERROR(ResolveShardStore(root_path, &resolved, stats));
  return ReadShardedAdjacencyManifest(resolved.manifest_path, out, stats);
}

}  // namespace semis
