// Copyright (c) the semis authors.
// Conversions between graph representations:
//   * in-memory CSR  <->  on-disk adjacency file,
//   * SNAP-style text edge lists  ->  adjacency file (external pipeline).
#ifndef SEMIS_GRAPH_GRAPH_IO_H_
#define SEMIS_GRAPH_GRAPH_IO_H_

#include <string>
#include <vector>

#include "graph/adjacency_file.h"
#include "graph/graph.h"
#include "io/external_sorter.h"
#include "io/io_stats.h"
#include "util/status.h"

namespace semis {

/// Writes `graph` as an adjacency file with records in ascending id order
/// (flags = 0: not degree-sorted).
Status WriteGraphToAdjacencyFile(const Graph& graph, const std::string& path,
                                 IoStats* stats = nullptr);

/// Writes `graph` as an adjacency file with records in the given explicit
/// order. `order` must be a permutation of [0, NumVertices()).
/// `flags` is stored verbatim in the header.
Status WriteGraphToAdjacencyFileInOrder(const Graph& graph,
                                        const std::vector<VertexId>& order,
                                        uint32_t flags,
                                        const std::string& path,
                                        IoStats* stats = nullptr);

/// Loads an adjacency file fully into memory (tests / small graphs only).
Status ReadGraphFromAdjacencyFile(const std::string& path, Graph* graph,
                                  IoStats* stats = nullptr);

/// Writes `graph` as a SNAP-style text edge list: '# comment' header lines,
/// then one "u<TAB>v" line per undirected edge.
Status WriteEdgeListText(const Graph& graph, const std::string& path,
                         IoStats* stats = nullptr);

/// Parses a SNAP-style text edge list into an in-memory graph. Lines
/// starting with '#' are comments; blank lines are skipped; endpoints are
/// whitespace separated. `num_vertices` is max id + 1.
Status ReadEdgeListText(const std::string& path, Graph* graph,
                        IoStats* stats = nullptr);

/// Options for the external edge-list -> adjacency-file pipeline.
struct EdgeListConvertOptions {
  /// Sorter budget for the by-source sort of the 2|E| directed edges.
  size_t memory_budget_bytes = 64ull << 20;
  size_t fan_in = 16;
  IoStats* stats = nullptr;
};

/// Builds an adjacency file from a text edge list without materializing the
/// graph in memory: pass 1 computes per-vertex degrees (O(|V|) memory,
/// legal under the semi-external model), pass 2 external-sorts directed
/// edges by source and streams adjacency records out. Duplicate edges and
/// self-loops in the input are removed.
Status ConvertEdgeListToAdjacencyFile(const std::string& edge_list_path,
                                      const std::string& adjacency_path,
                                      const EdgeListConvertOptions& options);

}  // namespace semis

#endif  // SEMIS_GRAPH_GRAPH_IO_H_
