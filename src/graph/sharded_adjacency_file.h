// Copyright (c) the semis authors.
// Sharded variant of the SADJ adjacency format (see adjacency_file.h):
// the record stream is split into N contiguous shard files plus a
// manifest, preserving the global record order across shard boundaries --
// concatenating the shards in index order reproduces the record stream of
// the equivalent monolithic file exactly. Shards are balanced by record
// payload (vertex words + neighbor words), not by record count, so the
// heavy tail of a power-law graph does not pile into one shard.
//
// Manifest layout (little endian), at `manifest_path`:
//   u32 magic 'SADM'  u32 version
//   u64 num_vertices  u64 num_directed_edges
//   u32 flags         u32 max_degree
//   u32 num_shards    u32 reserved (0)
//   then per shard: u64 num_records  u64 num_directed_edges
//
// Shard file layout, at `manifest_path + ".shard<K>"`:
//   u32 magic 'SADS'  u32 version
//   u32 shard_index   u32 reserved (0)
//   u64 num_records   u64 num_directed_edges (both shard-local)
//   u64 num_vertices  (global; record ids are global ids)
//   then records exactly as in SADJ: u32 id  u32 degree  u32 neighbor[deg]
//
// Every reader below is forward-only, matching the semi-external model;
// the parallel swap executor hands each worker its own AdjacencyShardReader
// so shards can be scanned concurrently without shared reader state.
#ifndef SEMIS_GRAPH_SHARDED_ADJACENCY_FILE_H_
#define SEMIS_GRAPH_SHARDED_ADJACENCY_FILE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "graph/adjacency_file.h"
#include "graph/record_block.h"
#include "io/file.h"
#include "io/io_stats.h"
#include "util/common.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace semis {

/// Upper bound on the shard count a writer accepts. Far above any sane
/// parallelism (shards exist to be scanned by threads), and low enough
/// that a mistyped or wrapped-negative count cannot ask the writer to
/// materialize millions of files.
inline constexpr uint32_t kMaxAdjacencyShards = 4096;

/// Magic of the SADM manifest file, exposed so callers accepting "either
/// a monolithic file or a manifest" can probe which one they were given
/// instead of guessing from a parse failure.
inline constexpr uint32_t kShardManifestMagic = 0x4D444153u;  // 'SADM'

/// Per-shard totals recorded in the manifest.
struct ShardInfo {
  uint64_t num_records = 0;
  uint64_t num_directed_edges = 0;
};

/// Parsed manifest of a sharded adjacency file.
struct ShardedAdjacencyManifest {
  /// Global totals and flags, identical in meaning to the monolithic
  /// header (kAdjFlagDegreeSorted refers to the global record order).
  AdjacencyFileHeader header;
  std::vector<ShardInfo> shards;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards.size()); }
};

/// Path of shard `index` of the sharded file rooted at `manifest_path`.
std::string ShardFilePath(const std::string& manifest_path, uint32_t index);

/// Reads and validates the manifest at `path`.
Status ReadShardedAdjacencyManifest(const std::string& path,
                                    ShardedAdjacencyManifest* out,
                                    IoStats* stats = nullptr);

/// Writes (or atomically overwrites) the manifest at `path`. Used by the
/// sharded writer's Finish and by delta compaction, which rewrites shards
/// in place and must republish their totals. The per-shard totals must
/// sum to the global header.
Status WriteShardedAdjacencyManifest(const std::string& path,
                                     const ShardedAdjacencyManifest& manifest,
                                     IoStats* stats = nullptr);

/// Appends the standard shard-file header (magic, version, index, zero
/// totals hint, global vertex count) to a freshly opened writer. Shared by
/// the sharded writer and the delta compactor so a rewritten shard is
/// byte-compatible with a freshly written one.
Status WriteAdjacencyShardHeader(SequentialFileWriter* writer, uint32_t index,
                                 uint64_t num_vertices);

/// Streaming writer: records are appended in global order and rolled into
/// the next shard when the current shard reaches its payload budget. All
/// `num_shards` shard files exist after Finish() (trailing ones may be
/// empty when the graph is small).
class ShardedAdjacencyFileWriter {
 public:
  /// `stats` may be null.
  explicit ShardedAdjacencyFileWriter(IoStats* stats = nullptr);

  /// Declares the totals (as in AdjacencyFileWriter::Open) and the shard
  /// count; creates the first shard file. `num_shards` must be >= 1.
  Status Open(const std::string& manifest_path, uint64_t num_vertices,
              uint64_t num_directed_edges, uint32_t max_degree, uint32_t flags,
              uint32_t num_shards);

  /// Appends the record for vertex `id` (global id). Records must arrive
  /// in the intended global order; every vertex exactly once.
  Status AppendVertex(VertexId id, const VertexId* neighbors, uint32_t degree);

  /// Closes the last shard, creates any remaining empty shards, validates
  /// the declared totals and writes the manifest.
  Status Finish();

 private:
  Status StartShard(uint32_t index);
  Status CloseShard();

  IoStats* stats_;
  SequentialFileWriter writer_;
  std::string manifest_path_;
  uint64_t declared_vertices_ = 0;
  uint64_t declared_directed_edges_ = 0;
  uint32_t declared_max_degree_ = 0;
  uint32_t declared_flags_ = 0;
  uint32_t num_shards_ = 0;
  uint64_t shard_budget_words_ = 0;  // u32 words of records per shard
  uint32_t current_shard_ = 0;
  uint64_t shard_words_ = 0;
  ShardInfo current_info_;
  std::vector<ShardInfo> finished_shards_;
  uint64_t appended_vertices_ = 0;
  uint64_t appended_edges_ = 0;
};

/// Forward-only reader of one shard. Each worker of a parallel scan owns
/// one reader (and one IoStats) so no reader state is shared.
class AdjacencyShardReader {
 public:
  /// `stats` may be null.
  explicit AdjacencyShardReader(IoStats* stats = nullptr);

  /// Opens shard `index` of the sharded file rooted at `manifest_path`,
  /// validating the shard header against `manifest`. Does not bump
  /// IoStats::sequential_scans -- a "scan" of a sharded file is one pass
  /// over all shards and is counted by the caller.
  Status Open(const std::string& manifest_path,
              const ShardedAdjacencyManifest& manifest, uint32_t index);

  /// Decodes the next record straight into `block`'s arena (the zero-copy
  /// hot path: no intermediate neighbor buffer). On success the record is
  /// committed to the block; on any error the block is left exactly as it
  /// was (a failed decode never publishes a half-record). `*has_next` is
  /// false after the last record, with nothing appended.
  /// Validation mirrors AdjacencyFileScanner::Next.
  Status NextInto(RecordBlock* block, bool* has_next);

  /// Reads the next record as a view into a reader-owned block
  /// (invalidated by the next call); `*has_next` is false after the last
  /// record.
  Status Next(VertexRecordView* view, bool* has_next);

  /// Compatibility flavor of Next for VertexRecord consumers.
  Status Next(VertexRecord* rec, bool* has_next) {
    return NextRecordFromView(this, rec, has_next);
  }

  /// Closes the underlying file. Safe to call twice.
  Status Close();

 private:
  IoStats* stats_;
  SequentialFileReader reader_;
  std::string path_;
  uint64_t num_vertices_ = 0;  // global, for id validation
  uint32_t max_degree_ = 0;
  uint64_t num_records_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t records_seen_ = 0;
  uint64_t edges_seen_ = 0;
  RecordBlock scratch_block_;  // backs the per-record Next flavors
};

/// Forward-only reader over all shards in index order: yields exactly the
/// record stream of the equivalent monolithic file. Used by tests and by
/// sequential consumers that receive a sharded input.
class ShardedAdjacencyScanner {
 public:
  explicit ShardedAdjacencyScanner(IoStats* stats = nullptr);

  /// Opens the manifest. Counts one sequential scan.
  Status Open(const std::string& manifest_path);

  const ShardedAdjacencyManifest& manifest() const { return manifest_; }
  const AdjacencyFileHeader& header() const { return manifest_.header; }

  /// Next record in global order, crossing shard boundaries transparently.
  Status Next(VertexRecordView* view, bool* has_next);

  /// Compatibility flavor of Next for VertexRecord consumers.
  Status Next(VertexRecord* rec, bool* has_next) {
    return NextRecordFromView(this, rec, has_next);
  }

 private:
  IoStats* stats_;
  std::string manifest_path_;
  ShardedAdjacencyManifest manifest_;
  AdjacencyShardReader reader_;
  uint32_t current_shard_ = 0;
  bool shard_open_ = false;
};

/// Geometry and budget of the cursor's record-granular block ring.
struct BlockRingOptions {
  /// Target payload bytes of one decode block: a decoder publishes its
  /// block as soon as the payload reaches this size. A single record
  /// larger than the block still fits (the block grows for it), so any
  /// geometry decodes any file. 0 = kDefaultDecodeBlockBytes.
  size_t block_bytes = 0;
  /// Back-pressure budget: decoders stall once this many payload bytes
  /// sit decoded-but-unconsumed in the ring. The consumer's current shard
  /// may always publish one block past the budget when the consumer is
  /// starved (the progress guarantee), so the ring can never deadlock --
  /// peak buffering is bounded by `max(budget, one block)` plus at most
  /// one in-flight block per decoder, independent of shard sizes.
  /// 0 = 2 * block_bytes * (pool size + 1).
  size_t max_buffered_bytes = 0;
  /// Optional external block pool, letting callers reuse arena capacity
  /// across cursors (e.g. repeated scans in a bench loop). nullptr = the
  /// cursor owns a private pool. Must outlive the cursor.
  RecordBlockPool* pool = nullptr;
};

/// Manifest-ordered multi-shard cursor: yields exactly the record stream
/// of the equivalent monolithic file (like ShardedAdjacencyScanner), but
/// decodes shards ahead of the consumer on a caller-provided thread pool
/// through a record-granular, double-buffered block ring: decoder threads
/// fill fixed-size arena-backed RecordBlocks (graph/record_block.h) and
/// publish each block the moment it is full, so the consumer starts
/// draining a shard long before it is fully decoded and peak memory is
/// bounded by the ring's byte budget, not by the largest shard.
///
/// Contract (see docs/formats.md):
///   * records are delivered strictly in global manifest order, crossing
///     shard boundaries transparently -- the pipelining never reorders,
///     drops, or duplicates a record, so any sequential algorithm driven
///     by this cursor produces output byte-identical to a run over the
///     monolithic file, at every pool size and block geometry;
///   * back-pressure is measured in buffered payload BYTES
///     (BlockRingOptions::max_buffered_bytes), with a starvation override
///     for the consumer's current shard that rules out deadlock for any
///     geometry -- including a budget smaller than one block and a block
///     smaller than one record;
///   * blocks recycle through a RecordBlockPool, so steady-state decode
///     performs no per-record heap allocation;
///   * each worker decodes with a private AdjacencyShardReader and
///     IoStats; per-worker I/O plus the ring counters (blocks_decoded,
///     arena_bytes, peak_buffered_bytes) merge into the caller's stats at
///     Close;
///   * a decode error in shard K surfaces from a Next() call within
///     shard K, after every record of shards 0..K-1 and every valid
///     record decoded before the error was yielded.
///
/// The cursor owns the pool's work queue from Open to Close (the pool's
/// one-job-at-a-time rule); callers reusing a pool across stages must
/// Close the cursor before submitting other work. Close may be called
/// from a thread other than the consumer's (and concurrently with a
/// blocked Next), which then fails with InvalidArgument instead of
/// hanging.
class ManifestOrderedShardCursor {
 public:
  /// `stats` may be null. Counts the manifest read and one sequential
  /// scan; per-worker shard I/O folds in at Close.
  explicit ManifestOrderedShardCursor(IoStats* stats = nullptr);
  ~ManifestOrderedShardCursor();

  ManifestOrderedShardCursor(const ManifestOrderedShardCursor&) = delete;
  ManifestOrderedShardCursor& operator=(const ManifestOrderedShardCursor&) =
      delete;

  /// Opens the manifest and starts decoding on `pool` (required, must
  /// outlive the cursor). `ring` configures block size and byte budget.
  Status Open(const std::string& manifest_path, ThreadPool* pool,
              const BlockRingOptions& ring = BlockRingOptions());

  const ShardedAdjacencyManifest& manifest() const { return manifest_; }
  const AdjacencyFileHeader& header() const { return manifest_.header; }

  /// Next record in global order. The view points into the current block
  /// and stays valid until the next call that crosses a block boundary;
  /// like every scanner in this library, consume it before advancing.
  Status Next(VertexRecordView* view, bool* has_next) EXCLUDES(mu_);

  /// Compatibility flavor of Next for VertexRecord consumers (tests and
  /// generic drains); same lifetime rules.
  Status Next(VertexRecord* rec, bool* has_next) {
    return NextRecordFromView(this, rec, has_next);
  }

  /// Cancels outstanding decodes, drains the pool job and merges
  /// per-worker IoStats plus the ring counters into the caller's stats.
  /// Safe to call twice, from the destructor, and from a different thread
  /// than the consumer's (a concurrently blocked Next wakes with an
  /// error). When the scan was abandoned before the last record, returns
  /// the first decode error of a shard the consumer never reached (a
  /// fully drained scan has already surfaced every error through Next).
  Status Close() EXCLUDES(close_mu_, mu_);

  /// Largest total of decoded-but-unconsumed payload bytes held at any
  /// point (for the memory accounting of algorithms driven by the
  /// cursor). Bounded by the ring budget, not by shard sizes.
  size_t peak_buffered_bytes() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return peak_buffered_bytes_;
  }

  /// Blocks published by the decoders so far.
  uint64_t blocks_decoded() const { return blocks_decoded_; }

 private:
  // Per-shard stream of published blocks, drained in shard index order.
  struct ShardStream {
    std::deque<RecordBlock> blocks;
    Status status;
    bool finished = false;  // decoder is done (status is final)
  };

  void DecodeShard(uint32_t shard, size_t worker) EXCLUDES(mu_);
  // Publishes `*block` to the ring (blocking on the byte budget) and
  // replaces it with a fresh block from the pool. Returns false when the
  // cursor was cancelled (the block is released, decode must stop).
  bool PublishBlock(uint32_t shard, RecordBlock* block) EXCLUDES(mu_);
  void FinishShard(uint32_t shard, Status status) EXCLUDES(mu_);
  void ReleaseCurrentBlock();

  IoStats* stats_;
  std::string manifest_path_;
  ShardedAdjacencyManifest manifest_;
  ThreadPool* pool_ = nullptr;
  size_t block_bytes_ = kDefaultDecodeBlockBytes;
  size_t max_buffered_bytes_ = 0;
  RecordBlockPool own_blocks_;
  RecordBlockPool* blocks_ = nullptr;
  std::atomic<bool> open_{false};

  // Lock hierarchy (docs/architecture.md): close_mu_ -> mu_. Close takes
  // close_mu_ first to serialize concurrent closers, then mu_ for the
  // cancel flag and teardown; no path ever takes them the other way
  // around. Decoders and the consumer take only mu_.
  mutable Mutex mu_ ACQUIRED_AFTER(close_mu_);
  CondVar ready_cv_;  // consumer waits for a block / eof
  CondVar space_cv_;  // decoders wait for byte headroom
  std::vector<ShardStream> streams_ GUARDED_BY(mu_);
  // Per-worker I/O counters: worker `w` writes only worker_io_[w] while
  // the decode job runs; Close reads them only after WaitForCompletion,
  // so the vector needs no lock (the pool barrier is the happens-before
  // edge).
  std::vector<IoStats> worker_io_;
  uint32_t consume_shard_ GUARDED_BY(mu_) = 0;  // shard being consumed
  bool cancel_ GUARDED_BY(mu_) = false;
  size_t buffered_bytes_ GUARDED_BY(mu_) = 0;
  size_t peak_buffered_bytes_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> blocks_decoded_{0};

  Mutex close_mu_;  // serializes concurrent Close calls; see mu_ above

  // Consumer-side walk state of the current block (consumer thread only).
  RecordBlock current_;
  size_t current_pos_ = 0;
  size_t current_bytes_ = 0;
  bool current_loaded_ = false;
};

/// Splits the monolithic adjacency file at `input_path` into `num_shards`
/// shards rooted at `manifest_path`, preserving record order.
Status ShardAdjacencyFile(const std::string& input_path,
                          const std::string& manifest_path,
                          uint32_t num_shards, IoStats* stats = nullptr);

}  // namespace semis

#endif  // SEMIS_GRAPH_SHARDED_ADJACENCY_FILE_H_
