// Copyright (c) the semis authors.
// Sharded variant of the SADJ adjacency format (see adjacency_file.h):
// the record stream is split into N contiguous shard files plus a
// manifest, preserving the global record order across shard boundaries --
// concatenating the shards in index order reproduces the record stream of
// the equivalent monolithic file exactly. Shards are balanced by record
// payload (vertex words + neighbor words), not by record count, so the
// heavy tail of a power-law graph does not pile into one shard.
//
// Manifest layout (little endian), at `manifest_path`:
//   u32 magic 'SADM'  u32 version
//   u64 num_vertices  u64 num_directed_edges
//   u32 flags         u32 max_degree
//   u32 num_shards    u32 reserved (0)
//   then per shard: u64 num_records  u64 num_directed_edges
//
// Shard file layout, at `manifest_path + ".shard<K>"`:
//   u32 magic 'SADS'  u32 version
//   u32 shard_index   u32 reserved (0)
//   u64 num_records   u64 num_directed_edges (both shard-local)
//   u64 num_vertices  (global; record ids are global ids)
//   then records exactly as in SADJ: u32 id  u32 degree  u32 neighbor[deg]
//
// Every reader below is forward-only, matching the semi-external model;
// the parallel swap executor hands each worker its own AdjacencyShardReader
// so shards can be scanned concurrently without shared reader state.
#ifndef SEMIS_GRAPH_SHARDED_ADJACENCY_FILE_H_
#define SEMIS_GRAPH_SHARDED_ADJACENCY_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/adjacency_file.h"
#include "io/file.h"
#include "io/io_stats.h"
#include "util/common.h"
#include "util/status.h"

namespace semis {

/// Upper bound on the shard count a writer accepts. Far above any sane
/// parallelism (shards exist to be scanned by threads), and low enough
/// that a mistyped or wrapped-negative count cannot ask the writer to
/// materialize millions of files.
inline constexpr uint32_t kMaxAdjacencyShards = 4096;

/// Per-shard totals recorded in the manifest.
struct ShardInfo {
  uint64_t num_records = 0;
  uint64_t num_directed_edges = 0;
};

/// Parsed manifest of a sharded adjacency file.
struct ShardedAdjacencyManifest {
  /// Global totals and flags, identical in meaning to the monolithic
  /// header (kAdjFlagDegreeSorted refers to the global record order).
  AdjacencyFileHeader header;
  std::vector<ShardInfo> shards;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards.size()); }
};

/// Path of shard `index` of the sharded file rooted at `manifest_path`.
std::string ShardFilePath(const std::string& manifest_path, uint32_t index);

/// Reads and validates the manifest at `path`.
Status ReadShardedAdjacencyManifest(const std::string& path,
                                    ShardedAdjacencyManifest* out,
                                    IoStats* stats = nullptr);

/// Streaming writer: records are appended in global order and rolled into
/// the next shard when the current shard reaches its payload budget. All
/// `num_shards` shard files exist after Finish() (trailing ones may be
/// empty when the graph is small).
class ShardedAdjacencyFileWriter {
 public:
  /// `stats` may be null.
  explicit ShardedAdjacencyFileWriter(IoStats* stats = nullptr);

  /// Declares the totals (as in AdjacencyFileWriter::Open) and the shard
  /// count; creates the first shard file. `num_shards` must be >= 1.
  Status Open(const std::string& manifest_path, uint64_t num_vertices,
              uint64_t num_directed_edges, uint32_t max_degree, uint32_t flags,
              uint32_t num_shards);

  /// Appends the record for vertex `id` (global id). Records must arrive
  /// in the intended global order; every vertex exactly once.
  Status AppendVertex(VertexId id, const VertexId* neighbors, uint32_t degree);

  /// Closes the last shard, creates any remaining empty shards, validates
  /// the declared totals and writes the manifest.
  Status Finish();

 private:
  Status StartShard(uint32_t index);
  Status CloseShard();

  IoStats* stats_;
  SequentialFileWriter writer_;
  std::string manifest_path_;
  uint64_t declared_vertices_ = 0;
  uint64_t declared_directed_edges_ = 0;
  uint32_t declared_max_degree_ = 0;
  uint32_t declared_flags_ = 0;
  uint32_t num_shards_ = 0;
  uint64_t shard_budget_words_ = 0;  // u32 words of records per shard
  uint32_t current_shard_ = 0;
  uint64_t shard_words_ = 0;
  ShardInfo current_info_;
  std::vector<ShardInfo> finished_shards_;
  uint64_t appended_vertices_ = 0;
  uint64_t appended_edges_ = 0;
};

/// Forward-only reader of one shard. Each worker of a parallel scan owns
/// one reader (and one IoStats) so no reader state is shared.
class AdjacencyShardReader {
 public:
  /// `stats` may be null.
  explicit AdjacencyShardReader(IoStats* stats = nullptr);

  /// Opens shard `index` of the sharded file rooted at `manifest_path`,
  /// validating the shard header against `manifest`. Does not bump
  /// IoStats::sequential_scans -- a "scan" of a sharded file is one pass
  /// over all shards and is counted by the caller.
  Status Open(const std::string& manifest_path,
              const ShardedAdjacencyManifest& manifest, uint32_t index);

  /// Reads the next record; `*has_next` is false after the last record.
  /// Validation mirrors AdjacencyFileScanner::Next.
  Status Next(VertexRecord* rec, bool* has_next);

  /// Closes the underlying file. Safe to call twice.
  Status Close();

 private:
  IoStats* stats_;
  SequentialFileReader reader_;
  std::string path_;
  uint64_t num_vertices_ = 0;  // global, for id validation
  uint32_t max_degree_ = 0;
  uint64_t num_records_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t records_seen_ = 0;
  uint64_t edges_seen_ = 0;
  std::vector<VertexId> neighbor_buf_;
};

/// Forward-only reader over all shards in index order: yields exactly the
/// record stream of the equivalent monolithic file. Used by tests and by
/// sequential consumers that receive a sharded input.
class ShardedAdjacencyScanner {
 public:
  explicit ShardedAdjacencyScanner(IoStats* stats = nullptr);

  /// Opens the manifest. Counts one sequential scan.
  Status Open(const std::string& manifest_path);

  const ShardedAdjacencyManifest& manifest() const { return manifest_; }
  const AdjacencyFileHeader& header() const { return manifest_.header; }

  /// Next record in global order, crossing shard boundaries transparently.
  Status Next(VertexRecord* rec, bool* has_next);

 private:
  IoStats* stats_;
  std::string manifest_path_;
  ShardedAdjacencyManifest manifest_;
  AdjacencyShardReader reader_;
  uint32_t current_shard_ = 0;
  bool shard_open_ = false;
};

/// Splits the monolithic adjacency file at `input_path` into `num_shards`
/// shards rooted at `manifest_path`, preserving record order.
Status ShardAdjacencyFile(const std::string& input_path,
                          const std::string& manifest_path,
                          uint32_t num_shards, IoStats* stats = nullptr);

}  // namespace semis

#endif  // SEMIS_GRAPH_SHARDED_ADJACENCY_FILE_H_
