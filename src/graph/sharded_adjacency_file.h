// Copyright (c) the semis authors.
// Sharded variant of the SADJ adjacency format (see adjacency_file.h):
// the record stream is split into N contiguous shard files plus a
// manifest, preserving the global record order across shard boundaries --
// concatenating the shards in index order reproduces the record stream of
// the equivalent monolithic file exactly. Shards are balanced by record
// payload (vertex words + neighbor words), not by record count, so the
// heavy tail of a power-law graph does not pile into one shard.
//
// Manifest layout (little endian), at `manifest_path`:
//   u32 magic 'SADM'  u32 version
//   u64 num_vertices  u64 num_directed_edges
//   u32 flags         u32 max_degree
//   u32 num_shards    u32 reserved (0)
//   then per shard: u64 num_records  u64 num_directed_edges
//
// Shard file layout, at `manifest_path + ".shard<K>"`:
//   u32 magic 'SADS'  u32 version
//   u32 shard_index   u32 reserved (0)
//   u64 num_records   u64 num_directed_edges (both shard-local)
//   u64 num_vertices  (global; record ids are global ids)
//   then records exactly as in SADJ: u32 id  u32 degree  u32 neighbor[deg]
//
// Every reader below is forward-only, matching the semi-external model;
// the parallel swap executor hands each worker its own AdjacencyShardReader
// so shards can be scanned concurrently without shared reader state.
#ifndef SEMIS_GRAPH_SHARDED_ADJACENCY_FILE_H_
#define SEMIS_GRAPH_SHARDED_ADJACENCY_FILE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "graph/adjacency_file.h"
#include "io/file.h"
#include "io/io_stats.h"
#include "util/common.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace semis {

/// Upper bound on the shard count a writer accepts. Far above any sane
/// parallelism (shards exist to be scanned by threads), and low enough
/// that a mistyped or wrapped-negative count cannot ask the writer to
/// materialize millions of files.
inline constexpr uint32_t kMaxAdjacencyShards = 4096;

/// Magic of the SADM manifest file, exposed so callers accepting "either
/// a monolithic file or a manifest" can probe which one they were given
/// instead of guessing from a parse failure.
inline constexpr uint32_t kShardManifestMagic = 0x4D444153u;  // 'SADM'

/// Per-shard totals recorded in the manifest.
struct ShardInfo {
  uint64_t num_records = 0;
  uint64_t num_directed_edges = 0;
};

/// Parsed manifest of a sharded adjacency file.
struct ShardedAdjacencyManifest {
  /// Global totals and flags, identical in meaning to the monolithic
  /// header (kAdjFlagDegreeSorted refers to the global record order).
  AdjacencyFileHeader header;
  std::vector<ShardInfo> shards;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards.size()); }
};

/// Path of shard `index` of the sharded file rooted at `manifest_path`.
std::string ShardFilePath(const std::string& manifest_path, uint32_t index);

/// Reads and validates the manifest at `path`.
Status ReadShardedAdjacencyManifest(const std::string& path,
                                    ShardedAdjacencyManifest* out,
                                    IoStats* stats = nullptr);

/// Writes (or atomically overwrites) the manifest at `path`. Used by the
/// sharded writer's Finish and by delta compaction, which rewrites shards
/// in place and must republish their totals. The per-shard totals must
/// sum to the global header.
Status WriteShardedAdjacencyManifest(const std::string& path,
                                     const ShardedAdjacencyManifest& manifest,
                                     IoStats* stats = nullptr);

/// Appends the standard shard-file header (magic, version, index, zero
/// totals hint, global vertex count) to a freshly opened writer. Shared by
/// the sharded writer and the delta compactor so a rewritten shard is
/// byte-compatible with a freshly written one.
Status WriteAdjacencyShardHeader(SequentialFileWriter* writer, uint32_t index,
                                 uint64_t num_vertices);

/// Streaming writer: records are appended in global order and rolled into
/// the next shard when the current shard reaches its payload budget. All
/// `num_shards` shard files exist after Finish() (trailing ones may be
/// empty when the graph is small).
class ShardedAdjacencyFileWriter {
 public:
  /// `stats` may be null.
  explicit ShardedAdjacencyFileWriter(IoStats* stats = nullptr);

  /// Declares the totals (as in AdjacencyFileWriter::Open) and the shard
  /// count; creates the first shard file. `num_shards` must be >= 1.
  Status Open(const std::string& manifest_path, uint64_t num_vertices,
              uint64_t num_directed_edges, uint32_t max_degree, uint32_t flags,
              uint32_t num_shards);

  /// Appends the record for vertex `id` (global id). Records must arrive
  /// in the intended global order; every vertex exactly once.
  Status AppendVertex(VertexId id, const VertexId* neighbors, uint32_t degree);

  /// Closes the last shard, creates any remaining empty shards, validates
  /// the declared totals and writes the manifest.
  Status Finish();

 private:
  Status StartShard(uint32_t index);
  Status CloseShard();

  IoStats* stats_;
  SequentialFileWriter writer_;
  std::string manifest_path_;
  uint64_t declared_vertices_ = 0;
  uint64_t declared_directed_edges_ = 0;
  uint32_t declared_max_degree_ = 0;
  uint32_t declared_flags_ = 0;
  uint32_t num_shards_ = 0;
  uint64_t shard_budget_words_ = 0;  // u32 words of records per shard
  uint32_t current_shard_ = 0;
  uint64_t shard_words_ = 0;
  ShardInfo current_info_;
  std::vector<ShardInfo> finished_shards_;
  uint64_t appended_vertices_ = 0;
  uint64_t appended_edges_ = 0;
};

/// Forward-only reader of one shard. Each worker of a parallel scan owns
/// one reader (and one IoStats) so no reader state is shared.
class AdjacencyShardReader {
 public:
  /// `stats` may be null.
  explicit AdjacencyShardReader(IoStats* stats = nullptr);

  /// Opens shard `index` of the sharded file rooted at `manifest_path`,
  /// validating the shard header against `manifest`. Does not bump
  /// IoStats::sequential_scans -- a "scan" of a sharded file is one pass
  /// over all shards and is counted by the caller.
  Status Open(const std::string& manifest_path,
              const ShardedAdjacencyManifest& manifest, uint32_t index);

  /// Reads the next record; `*has_next` is false after the last record.
  /// Validation mirrors AdjacencyFileScanner::Next.
  Status Next(VertexRecord* rec, bool* has_next);

  /// Closes the underlying file. Safe to call twice.
  Status Close();

 private:
  IoStats* stats_;
  SequentialFileReader reader_;
  std::string path_;
  uint64_t num_vertices_ = 0;  // global, for id validation
  uint32_t max_degree_ = 0;
  uint64_t num_records_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t records_seen_ = 0;
  uint64_t edges_seen_ = 0;
  std::vector<VertexId> neighbor_buf_;
};

/// Forward-only reader over all shards in index order: yields exactly the
/// record stream of the equivalent monolithic file. Used by tests and by
/// sequential consumers that receive a sharded input.
class ShardedAdjacencyScanner {
 public:
  explicit ShardedAdjacencyScanner(IoStats* stats = nullptr);

  /// Opens the manifest. Counts one sequential scan.
  Status Open(const std::string& manifest_path);

  const ShardedAdjacencyManifest& manifest() const { return manifest_; }
  const AdjacencyFileHeader& header() const { return manifest_.header; }

  /// Next record in global order, crossing shard boundaries transparently.
  Status Next(VertexRecord* rec, bool* has_next);

 private:
  IoStats* stats_;
  std::string manifest_path_;
  ShardedAdjacencyManifest manifest_;
  AdjacencyShardReader reader_;
  uint32_t current_shard_ = 0;
  bool shard_open_ = false;
};

/// Manifest-ordered multi-shard cursor: yields exactly the record stream
/// of the equivalent monolithic file (like ShardedAdjacencyScanner), but
/// decodes shards ahead of the consumer on a caller-provided thread pool.
///
/// Contract (see docs/formats.md):
///   * records are delivered strictly in global manifest order, crossing
///     shard boundaries transparently -- the prefetching never reorders,
///     drops, or duplicates a record, so any sequential algorithm driven
///     by this cursor produces output byte-identical to a run over the
///     monolithic file, at every pool size;
///   * at most `max_buffered_shards` decoded shards are held in memory at
///     once (the consumer's current shard plus the prefetch window);
///     workers that run ahead of the window block until the consumer
///     frees a slot, so the memory bound holds for any shard count;
///   * each worker decodes with a private AdjacencyShardReader and
///     IoStats; per-worker I/O merges into the caller's stats at Close;
///   * a decode error in shard K surfaces from the Next() call that
///     reaches shard K, after every record of shards 0..K-1 was yielded.
///
/// The cursor owns the pool's work queue from Open to Close (the pool's
/// one-job-at-a-time rule); callers reusing a pool across stages must
/// Close the cursor before submitting other work.
class ManifestOrderedShardCursor {
 public:
  /// `stats` may be null. Counts the manifest read and one sequential
  /// scan; per-worker shard I/O folds in at Close.
  explicit ManifestOrderedShardCursor(IoStats* stats = nullptr);
  ~ManifestOrderedShardCursor();

  ManifestOrderedShardCursor(const ManifestOrderedShardCursor&) = delete;
  ManifestOrderedShardCursor& operator=(const ManifestOrderedShardCursor&) =
      delete;

  /// Opens the manifest and starts prefetching on `pool` (required, must
  /// outlive the cursor). `max_buffered_shards` caps decoded shards held
  /// in memory (0 = pool->size() + 1).
  Status Open(const std::string& manifest_path, ThreadPool* pool,
              uint32_t max_buffered_shards = 0);

  const ShardedAdjacencyManifest& manifest() const { return manifest_; }
  const AdjacencyFileHeader& header() const { return manifest_.header; }

  /// Next record in global order. `rec->neighbors` stays valid until the
  /// next call.
  Status Next(VertexRecord* rec, bool* has_next);

  /// Cancels outstanding prefetches, drains the pool job and merges
  /// per-worker IoStats into the caller's stats. Safe to call twice; the
  /// destructor calls it.
  Status Close();

  /// Largest total of decoded-but-unconsumed shard bytes held at any
  /// point (for the memory accounting of algorithms driven by the
  /// cursor).
  size_t peak_buffered_bytes() const { return peak_buffered_bytes_; }

 private:
  // One decoded shard: the record stream as flat u32 words
  // (id, degree, neighbor[degree], ...), validated during decode.
  struct Slot {
    std::vector<VertexId> words;
    Status status;
    bool ready = false;
  };

  void DecodeShard(uint32_t shard, size_t worker);

  IoStats* stats_;
  std::string manifest_path_;
  ShardedAdjacencyManifest manifest_;
  ThreadPool* pool_ = nullptr;
  uint32_t window_ = 1;
  bool open_ = false;

  std::mutex mu_;
  std::condition_variable ready_cv_;   // consumer waits for a decoded slot
  std::condition_variable window_cv_;  // workers wait for window headroom
  std::vector<Slot> slots_;
  std::vector<IoStats> worker_io_;
  uint32_t consume_index_ = 0;  // shard currently being consumed
  bool cancel_ = false;
  size_t buffered_bytes_ = 0;
  size_t peak_buffered_bytes_ = 0;

  // Consumer-side walk state of the current shard.
  std::vector<VertexId> current_words_;
  size_t current_offset_ = 0;
  bool current_loaded_ = false;
};

/// Splits the monolithic adjacency file at `input_path` into `num_shards`
/// shards rooted at `manifest_path`, preserving record order.
Status ShardAdjacencyFile(const std::string& input_path,
                          const std::string& manifest_path,
                          uint32_t num_shards, IoStats* stats = nullptr);

}  // namespace semis

#endif  // SEMIS_GRAPH_SHARDED_ADJACENCY_FILE_H_
