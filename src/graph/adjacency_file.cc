#include "graph/adjacency_file.h"

namespace semis {

namespace {
constexpr uint32_t kMagic = 0x4A444153u;  // 'SADJ' little-endian
constexpr uint32_t kVersion = 1;
}  // namespace

AdjacencyFileWriter::AdjacencyFileWriter(IoStats* stats) : writer_(stats) {}

Status AdjacencyFileWriter::Open(const std::string& path,
                                 uint64_t num_vertices,
                                 uint64_t num_directed_edges,
                                 uint32_t max_degree, uint32_t flags) {
  SEMIS_RETURN_IF_ERROR(writer_.Open(path));
  declared_vertices_ = num_vertices;
  declared_directed_edges_ = num_directed_edges;
  declared_max_degree_ = max_degree;
  appended_vertices_ = 0;
  appended_edges_ = 0;
  SEMIS_RETURN_IF_ERROR(writer_.AppendU32(kMagic));
  SEMIS_RETURN_IF_ERROR(writer_.AppendU32(kVersion));
  SEMIS_RETURN_IF_ERROR(writer_.AppendU64(num_vertices));
  SEMIS_RETURN_IF_ERROR(writer_.AppendU64(num_directed_edges));
  SEMIS_RETURN_IF_ERROR(writer_.AppendU32(flags));
  SEMIS_RETURN_IF_ERROR(writer_.AppendU32(max_degree));
  return Status::OK();
}

Status AdjacencyFileWriter::AppendVertex(VertexId id,
                                         const VertexId* neighbors,
                                         uint32_t degree) {
  if (id >= declared_vertices_) {
    return Status::InvalidArgument("vertex id " + std::to_string(id) +
                                   " out of range");
  }
  if (degree > declared_max_degree_) {
    return Status::InvalidArgument(
        "vertex degree exceeds declared max_degree");
  }
  SEMIS_RETURN_IF_ERROR(writer_.AppendU32(id));
  SEMIS_RETURN_IF_ERROR(writer_.AppendU32(degree));
  if (degree > 0) {
    SEMIS_RETURN_IF_ERROR(
        writer_.Append(neighbors, sizeof(VertexId) * degree));
  }
  appended_vertices_++;
  appended_edges_ += degree;
  return Status::OK();
}

Status AdjacencyFileWriter::Finish() {
  if (appended_vertices_ != declared_vertices_) {
    return Status::InvalidArgument(
        "vertex count mismatch: declared " +
        std::to_string(declared_vertices_) + ", appended " +
        std::to_string(appended_vertices_));
  }
  if (appended_edges_ != declared_directed_edges_) {
    return Status::InvalidArgument(
        "edge count mismatch: declared " +
        std::to_string(declared_directed_edges_) + ", appended " +
        std::to_string(appended_edges_));
  }
  return writer_.Close();
}

AdjacencyFileScanner::AdjacencyFileScanner(IoStats* stats)
    : stats_(stats), reader_(stats) {}

Status AdjacencyFileScanner::ReadHeader() {
  uint32_t magic = 0, version = 0;
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&magic));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&version));
  if (magic != kMagic) {
    return Status::Corruption("bad magic in '" + path_ +
                              "': not an adjacency file");
  }
  if (version != kVersion) {
    return Status::NotSupported("adjacency file version " +
                                std::to_string(version) + " not supported");
  }
  SEMIS_RETURN_IF_ERROR(reader_.ReadU64(&header_.num_vertices));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU64(&header_.num_directed_edges));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&header_.flags));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&header_.max_degree));
  records_seen_ = 0;
  edges_seen_ = 0;
  return Status::OK();
}

Status AdjacencyFileScanner::Open(const std::string& path) {
  path_ = path;
  SEMIS_RETURN_IF_ERROR(reader_.Open(path));
  if (stats_ != nullptr) stats_->sequential_scans++;
  return ReadHeader();
}

Status AdjacencyFileScanner::Close() { return reader_.Close(); }

Status AdjacencyFileScanner::Rewind() {
  SEMIS_RETURN_IF_ERROR(reader_.Close());
  SEMIS_RETURN_IF_ERROR(reader_.Open(path_));
  if (stats_ != nullptr) stats_->sequential_scans++;
  return ReadHeader();
}

Status AdjacencyFileScanner::Next(VertexRecord* rec, bool* has_next) {
  if (records_seen_ == header_.num_vertices) {
    if (!reader_.AtEof()) {
      return Status::Corruption("trailing bytes after last record in '" +
                                path_ + "'");
    }
    *has_next = false;
    return Status::OK();
  }
  if (reader_.AtEof()) {
    return Status::Corruption(
        "file '" + path_ + "' truncated: expected " +
        std::to_string(header_.num_vertices) + " records, found " +
        std::to_string(records_seen_));
  }
  uint32_t id = 0, degree = 0;
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&id));
  SEMIS_RETURN_IF_ERROR(reader_.ReadU32(&degree));
  if (id >= header_.num_vertices) {
    return Status::Corruption("record id out of range in '" + path_ + "'");
  }
  if (degree > header_.max_degree) {
    return Status::Corruption("record degree exceeds header max_degree in '" +
                              path_ + "'");
  }
  neighbor_buf_.resize(degree);
  if (degree > 0) {
    SEMIS_RETURN_IF_ERROR(
        reader_.ReadExact(neighbor_buf_.data(), sizeof(VertexId) * degree));
    for (VertexId nb : neighbor_buf_) {
      if (nb >= header_.num_vertices) {
        return Status::Corruption("neighbor id out of range in '" + path_ +
                                  "'");
      }
    }
  }
  records_seen_++;
  edges_seen_ += degree;
  if (edges_seen_ > header_.num_directed_edges) {
    return Status::Corruption("more edges than declared in '" + path_ + "'");
  }
  rec->id = id;
  rec->degree = degree;
  rec->neighbors = neighbor_buf_.data();
  *has_next = true;
  return Status::OK();
}

}  // namespace semis
