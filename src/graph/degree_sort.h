// Copyright (c) the semis authors.
// The paper's preprocessing step (Section 4.1): reorder an adjacency file
// so that vertex records appear in ascending (degree, id) order. GREEDY's
// approximation quality depends on this ordering; BASELINE skips it.
//
// Implemented with the external run-formation/merge sorter, reproducing
// the paper's I/O bound (|V|+|E|)/B * (log_{M/B} |V|/B + 2): one scan to
// form runs, log_{fan_in} passes to merge, one scan to write.
#ifndef SEMIS_GRAPH_DEGREE_SORT_H_
#define SEMIS_GRAPH_DEGREE_SORT_H_

#include <string>

#include "io/io_stats.h"
#include "util/memory_tracker.h"
#include "util/status.h"

namespace semis {

/// Tuning for the degree sort.
struct DegreeSortOptions {
  /// Main-memory budget of the external sorter (the paper's M).
  size_t memory_budget_bytes = 64ull << 20;
  /// Merge fan-in (the paper's M/B).
  size_t fan_in = 16;
  /// Optional I/O counters.
  IoStats* stats = nullptr;
  /// Optional logical-memory accounting for the sort stage (run buffer +
  /// merge cursors), so callers can fold the preprocessing peak into their
  /// end-to-end peak-memory figure.
  MemoryTracker* memory = nullptr;
};

/// Reads the adjacency file at `input_path` and writes a record-permuted
/// copy to `output_path` with records in ascending (degree, id) order and
/// the kAdjFlagDegreeSorted header flag set.
Status BuildDegreeSortedAdjacencyFile(const std::string& input_path,
                                      const std::string& output_path,
                                      const DegreeSortOptions& options);

}  // namespace semis

#endif  // SEMIS_GRAPH_DEGREE_SORT_H_
