#include "graph/graph_io.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace semis {

Status WriteGraphToAdjacencyFile(const Graph& graph, const std::string& path,
                                 IoStats* stats) {
  AdjacencyFileWriter writer(stats);
  SEMIS_RETURN_IF_ERROR(writer.Open(path, graph.NumVertices(),
                                    graph.NumDirectedEdges(),
                                    graph.MaxDegree(), /*flags=*/0));
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    auto nbrs = graph.Neighbors(v);
    SEMIS_RETURN_IF_ERROR(
        writer.AppendVertex(v, nbrs.data(), static_cast<uint32_t>(nbrs.size())));
  }
  return writer.Finish();
}

Status WriteGraphToAdjacencyFileInOrder(const Graph& graph,
                                        const std::vector<VertexId>& order,
                                        uint32_t flags,
                                        const std::string& path,
                                        IoStats* stats) {
  if (order.size() != graph.NumVertices()) {
    return Status::InvalidArgument("order size != vertex count");
  }
  AdjacencyFileWriter writer(stats);
  SEMIS_RETURN_IF_ERROR(writer.Open(path, graph.NumVertices(),
                                    graph.NumDirectedEdges(),
                                    graph.MaxDegree(), flags));
  for (VertexId v : order) {
    if (v >= graph.NumVertices()) {
      return Status::InvalidArgument("order contains out-of-range id");
    }
    auto nbrs = graph.Neighbors(v);
    SEMIS_RETURN_IF_ERROR(
        writer.AppendVertex(v, nbrs.data(), static_cast<uint32_t>(nbrs.size())));
  }
  return writer.Finish();
}

Status ReadGraphFromAdjacencyFile(const std::string& path, Graph* graph,
                                  IoStats* stats) {
  AdjacencyFileScanner scanner(stats);
  SEMIS_RETURN_IF_ERROR(scanner.Open(path));
  const AdjacencyFileHeader& h = scanner.header();
  std::vector<Edge> edges;
  edges.reserve(h.num_directed_edges / 2);
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    for (uint32_t i = 0; i < rec.degree; ++i) {
      if (rec.id < rec.neighbors[i]) {
        edges.emplace_back(rec.id, rec.neighbors[i]);
      }
    }
  }
  *graph = Graph::FromEdges(static_cast<VertexId>(h.num_vertices),
                            std::move(edges));
  return Status::OK();
}

Status WriteEdgeListText(const Graph& graph, const std::string& path,
                         IoStats* stats) {
  SequentialFileWriter writer(stats);
  SEMIS_RETURN_IF_ERROR(writer.Open(path));
  char line[64];
  int n = std::snprintf(line, sizeof(line), "# semis edge list: %u vertices\n",
                        graph.NumVertices());
  SEMIS_RETURN_IF_ERROR(writer.Append(line, static_cast<size_t>(n)));
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (VertexId u : graph.Neighbors(v)) {
      if (v < u) {
        n = std::snprintf(line, sizeof(line), "%u\t%u\n", v, u);
        SEMIS_RETURN_IF_ERROR(writer.Append(line, static_cast<size_t>(n)));
      }
    }
  }
  return writer.Close();
}

namespace {

// Streaming tokenizer over a SequentialFileReader: yields unsigned integer
// pairs, skipping '#' comment lines and blank lines.
class EdgeListParser {
 public:
  explicit EdgeListParser(SequentialFileReader* reader) : reader_(reader) {}

  // Returns true and fills (u, v) if another edge was parsed; false at EOF.
  // Malformed content yields a Corruption status.
  Status NextEdge(VertexId* u, VertexId* v, bool* has_edge) {
    while (true) {
      SEMIS_RETURN_IF_ERROR(FillLine());
      if (line_.empty() && eof_) {
        *has_edge = false;
        return Status::OK();
      }
      // Trim and skip comments / blanks.
      size_t i = 0;
      while (i < line_.size() && std::isspace(static_cast<unsigned char>(
                                     line_[i]))) {
        ++i;
      }
      if (i == line_.size() || line_[i] == '#') continue;
      uint64_t a = 0, b = 0;
      if (std::sscanf(line_.c_str() + i, "%" SCNu64 " %" SCNu64, &a, &b) !=
          2) {
        return Status::Corruption("malformed edge list line: '" + line_ + "'");
      }
      if (a > 0xFFFFFFFEull || b > 0xFFFFFFFEull) {
        return Status::Corruption("vertex id exceeds 32-bit range");
      }
      *u = static_cast<VertexId>(a);
      *v = static_cast<VertexId>(b);
      *has_edge = true;
      return Status::OK();
    }
  }

 private:
  Status FillLine() {
    line_.clear();
    char c;
    size_t got = 0;
    while (true) {
      SEMIS_RETURN_IF_ERROR(reader_->Read(&c, 1, &got));
      if (got == 0) {
        eof_ = true;
        return Status::OK();
      }
      if (c == '\n') return Status::OK();
      line_.push_back(c);
    }
  }

  SequentialFileReader* reader_;
  std::string line_;
  bool eof_ = false;
};

}  // namespace

Status ReadEdgeListText(const std::string& path, Graph* graph,
                        IoStats* stats) {
  SequentialFileReader reader(stats);
  SEMIS_RETURN_IF_ERROR(reader.Open(path));
  EdgeListParser parser(&reader);
  std::vector<Edge> edges;
  VertexId max_id = 0;
  bool any = false;
  VertexId u = 0, v = 0;
  bool has_edge = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(parser.NextEdge(&u, &v, &has_edge));
    if (!has_edge) break;
    any = true;
    max_id = std::max({max_id, u, v});
    edges.emplace_back(u, v);
  }
  *graph = Graph::FromEdges(any ? max_id + 1 : 0, std::move(edges));
  return Status::OK();
}

Status ConvertEdgeListToAdjacencyFile(const std::string& edge_list_path,
                                      const std::string& adjacency_path,
                                      const EdgeListConvertOptions& options) {
  // Pass 1: count degrees (upper bound, before dedup) and find |V|.
  // Semi-external: one u32 per vertex.
  std::vector<uint32_t> degree;
  uint64_t directed = 0;
  {
    SequentialFileReader reader(options.stats);
    SEMIS_RETURN_IF_ERROR(reader.Open(edge_list_path));
    EdgeListParser parser(&reader);
    VertexId u = 0, v = 0;
    bool has_edge = false;
    while (true) {
      SEMIS_RETURN_IF_ERROR(parser.NextEdge(&u, &v, &has_edge));
      if (!has_edge) break;
      if (u == v) continue;
      VertexId m = std::max(u, v);
      if (m >= degree.size()) degree.resize(m + 1, 0);
      degree[u]++;
      degree[v]++;
      directed += 2;
    }
  }
  const uint64_t num_vertices = degree.size();

  // Pass 2: external sort directed edges by source id.
  ExternalSorterOptions sorter_opts;
  sorter_opts.memory_budget_bytes = options.memory_budget_bytes;
  sorter_opts.fan_in = options.fan_in;
  sorter_opts.stats = options.stats;
  ExternalSorter sorter(sorter_opts);
  {
    SequentialFileReader reader(options.stats);
    SEMIS_RETURN_IF_ERROR(reader.Open(edge_list_path));
    EdgeListParser parser(&reader);
    VertexId u = 0, v = 0;
    bool has_edge = false;
    while (true) {
      SEMIS_RETURN_IF_ERROR(parser.NextEdge(&u, &v, &has_edge));
      if (!has_edge) break;
      if (u == v) continue;
      uint32_t nb_u = v, nb_v = u;
      SEMIS_RETURN_IF_ERROR(sorter.Add(u, &nb_u, 1));
      SEMIS_RETURN_IF_ERROR(sorter.Add(v, &nb_v, 1));
    }
  }
  SEMIS_RETURN_IF_ERROR(sorter.Finish());

  // Pass 3: gather per-source neighbor lists from the sorted stream,
  // dedupe, and write records. To declare exact header totals we must know
  // the deduped counts first; stage the records to a temporary file, then
  // prepend the header. (Two sequential passes over the staged data.)
  ScratchDir scratch;
  SEMIS_RETURN_IF_ERROR(ScratchDir::Create("semis-conv", &scratch));
  std::string staged = scratch.NewFilePath("records");
  uint64_t dedup_directed = 0;
  uint32_t max_degree = 0;
  std::vector<uint32_t> dedup_degree(num_vertices, 0);
  {
    SequentialFileWriter writer(options.stats);
    SEMIS_RETURN_IF_ERROR(writer.Open(staged));
    uint64_t key = 0;
    std::vector<uint32_t> payload;
    std::vector<uint32_t> list;
    VertexId current = kInvalidVertex;
    auto flush_list = [&]() -> Status {
      if (current == kInvalidVertex) return Status::OK();
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
      SEMIS_RETURN_IF_ERROR(writer.AppendU32(current));
      SEMIS_RETURN_IF_ERROR(
          writer.AppendU32(static_cast<uint32_t>(list.size())));
      if (!list.empty()) {
        SEMIS_RETURN_IF_ERROR(
            writer.Append(list.data(), sizeof(uint32_t) * list.size()));
      }
      dedup_directed += list.size();
      dedup_degree[current] = static_cast<uint32_t>(list.size());
      max_degree = std::max(max_degree, static_cast<uint32_t>(list.size()));
      list.clear();
      return Status::OK();
    };
    while (sorter.Next(&key, &payload)) {
      VertexId src = static_cast<VertexId>(key);
      if (src != current) {
        SEMIS_RETURN_IF_ERROR(flush_list());
        current = src;
      }
      list.insert(list.end(), payload.begin(), payload.end());
    }
    SEMIS_RETURN_IF_ERROR(sorter.status());
    SEMIS_RETURN_IF_ERROR(flush_list());
    SEMIS_RETURN_IF_ERROR(writer.Close());
  }

  // Pass 4: emit the final adjacency file (degree-0 vertices get empty
  // records interleaved at their id position to keep record count = |V|).
  AdjacencyFileWriter writer(options.stats);
  SEMIS_RETURN_IF_ERROR(writer.Open(adjacency_path, num_vertices,
                                    dedup_directed, max_degree, /*flags=*/0));
  {
    SequentialFileReader reader(options.stats);
    SEMIS_RETURN_IF_ERROR(reader.Open(staged));
    std::vector<uint32_t> list;
    VertexId next_emit = 0;
    auto emit_empty_until = [&](VertexId stop) -> Status {
      for (; next_emit < stop; ++next_emit) {
        if (dedup_degree[next_emit] == 0) {
          SEMIS_RETURN_IF_ERROR(writer.AppendVertex(next_emit, nullptr, 0));
        }
      }
      return Status::OK();
    };
    while (!reader.AtEof()) {
      uint32_t src = 0, len = 0;
      SEMIS_RETURN_IF_ERROR(reader.ReadU32(&src));
      SEMIS_RETURN_IF_ERROR(reader.ReadU32(&len));
      list.resize(len);
      if (len > 0) {
        SEMIS_RETURN_IF_ERROR(
            reader.ReadExact(list.data(), sizeof(uint32_t) * len));
      }
      SEMIS_RETURN_IF_ERROR(emit_empty_until(src));
      SEMIS_RETURN_IF_ERROR(writer.AppendVertex(src, list.data(), len));
      next_emit = src + 1;
    }
    SEMIS_RETURN_IF_ERROR(
        emit_empty_until(static_cast<VertexId>(num_vertices)));
  }
  return writer.Finish();
}

}  // namespace semis
