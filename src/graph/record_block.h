// Copyright (c) the semis authors.
// Arena-backed vertex-record blocks: the in-memory decode unit of the
// sharded pipelines. A decoder fills one flat uint32 arena plus a compact
// per-record index (vertex id, degree, neighbor span offset); consumers
// read records through VertexRecordView, a span into the arena, so the
// decode hot path performs zero per-record heap allocation. Blocks are
// recycled through RecordBlockPool -- vectors keep their capacity across
// Clear(), so steady-state decode allocates nothing at all.
//
// Capacity is measured in payload bytes, not records: a block is "full"
// when its payload reaches the configured block size, but a single record
// larger than the block size still fits (the arena grows for it), so any
// block geometry can represent any record. See docs/formats.md, "In-memory
// block pipeline".
#ifndef SEMIS_GRAPH_RECORD_BLOCK_H_
#define SEMIS_GRAPH_RECORD_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/common.h"
#include "util/thread_annotations.h"

namespace semis {

/// Default payload capacity of one decode block (see BlockRingOptions).
inline constexpr size_t kDefaultDecodeBlockBytes = 256 * 1024;

/// One vertex record viewed inside a block: `neighbors` points into the
/// block's arena and stays valid until the block is cleared or released.
/// Field names match VertexRecord so generic scan code accepts either.
struct VertexRecordView {
  VertexId id = 0;
  uint32_t degree = 0;
  const VertexId* neighbors = nullptr;

  const VertexId* begin() const { return neighbors; }
  const VertexId* end() const { return neighbors + degree; }
  VertexId neighbor(uint32_t i) const { return neighbors[i]; }
};

/// A batch of decoded records backed by one flat arena.
///
/// Writing protocol: BeginRecord reserves arena space for the neighbors
/// and returns the destination pointer; the caller either CommitRecord()s
/// after filling (and validating) it, or AbandonRecord()s to roll the
/// arena back, so a failed decode never leaves a half-record behind.
/// At most one record may be staged at a time. Not thread-safe; a block
/// is owned by exactly one thread at a time (decoder, then consumer).
class RecordBlock {
 public:
  RecordBlock() = default;
  RecordBlock(RecordBlock&&) = default;
  RecordBlock& operator=(RecordBlock&&) = default;
  RecordBlock(const RecordBlock&) = delete;
  RecordBlock& operator=(const RecordBlock&) = delete;

  /// Stages a record and returns the arena slot for its `degree`
  /// neighbors: valid for exactly `degree` writes. For degree 0 the
  /// pointer must not be dereferenced (and may be null on a block whose
  /// arena never grew).
  VertexId* BeginRecord(VertexId id, uint32_t degree);

  /// Makes the staged record visible to view().
  void CommitRecord();

  /// Drops the staged record and rolls the arena back.
  void AbandonRecord();

  /// Number of committed records.
  size_t num_records() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  /// View of committed record `i` (valid until Clear / move).
  VertexRecordView view(size_t i) const {
    const Entry& e = index_[i];
    return VertexRecordView{e.id, e.degree, arena_.data() + e.offset};
  }

  /// Committed payload bytes (arena words + index entries) -- what the
  /// block ring's back-pressure is measured in.
  size_t payload_bytes() const {
    return arena_size_ * sizeof(VertexId) + index_.size() * sizeof(Entry);
  }

  /// Allocated capacity in bytes (arena + index). Monotone over a block's
  /// lifetime; the pool sums this for the `arena_bytes` statistic.
  size_t capacity_bytes() const {
    return arena_.capacity() * sizeof(VertexId) +
           index_.capacity() * sizeof(Entry);
  }

  /// Forgets all records, keeping the allocated capacity.
  void Clear();

 private:
  struct Entry {
    VertexId id;
    uint32_t degree;
    size_t offset;  // neighbor span start, in arena words
  };

  // arena_size_ tracks the committed prefix of arena_; the vector itself
  // only ever grows (resize would value-initialize, so growth goes
  // through EnsureArenaCapacity instead).
  std::vector<VertexId> arena_;
  size_t arena_size_ = 0;
  std::vector<Entry> index_;
  Entry staged_{};
  bool staging_ = false;
};

/// Free list of RecordBlocks shared by the decoder threads and the
/// consumer of one block ring. Thread-safe. Released blocks keep their
/// capacity, so steady-state Acquire/Release cycles allocate nothing.
class RecordBlockPool {
 public:
  RecordBlockPool() = default;
  RecordBlockPool(const RecordBlockPool&) = delete;
  RecordBlockPool& operator=(const RecordBlockPool&) = delete;

  /// Pops a pooled block (cleared, capacity retained) or creates a fresh
  /// empty one when the pool is dry.
  RecordBlock Acquire() EXCLUDES(mu_);

  /// Clears `block` and returns it to the free list.
  void Release(RecordBlock&& block) EXCLUDES(mu_);

  /// Blocks created because the pool was dry (the allocation count of the
  /// block layer: in steady state this stops growing).
  uint64_t blocks_created() const EXCLUDES(mu_);

  /// Total allocated capacity of the blocks currently in the free list.
  /// After a drained scan returned every block, this is the arena
  /// footprint of the whole ring.
  size_t pooled_capacity_bytes() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<RecordBlock> free_ GUARDED_BY(mu_);
  uint64_t blocks_created_ GUARDED_BY(mu_) = 0;
};

}  // namespace semis

#endif  // SEMIS_GRAPH_RECORD_BLOCK_H_
