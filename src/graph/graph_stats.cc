#include "graph/graph_stats.h"

#include <algorithm>
#include <cmath>

#include "graph/adjacency_file.h"

namespace semis {

namespace {

// Fits log(y) = a - b*log(x) over populated histogram cells x >= 1.
// Returns {a, b}; {0, 0} when underdetermined.
std::pair<double, double> FitLogLog(const std::vector<uint64_t>& hist) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t d = 1; d < hist.size(); ++d) {
    if (hist[d] == 0) continue;
    double x = std::log(static_cast<double>(d));
    double y = std::log(static_cast<double>(hist[d]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    n++;
  }
  if (n < 2) return {0.0, 0.0};
  double denom = n * sxx - sx * sx;
  if (denom == 0) return {0.0, 0.0};
  double slope = (n * sxy - sx * sy) / denom;
  double intercept = (sy - slope * sx) / n;
  return {intercept, -slope};
}

void FinalizeStats(GraphStats* s) {
  s->min_degree = 0;
  s->isolated_vertices =
      s->degree_histogram.empty() ? 0 : s->degree_histogram[0];
  bool found_min = false;
  for (size_t d = 0; d < s->degree_histogram.size(); ++d) {
    if (s->degree_histogram[d] > 0 && !found_min) {
      s->min_degree = static_cast<uint32_t>(d);
      found_min = true;
    }
  }
  s->avg_degree = s->num_vertices == 0
                      ? 0.0
                      : 2.0 * static_cast<double>(s->num_edges) /
                            static_cast<double>(s->num_vertices);
}

}  // namespace

double GraphStats::EstimateBeta() const {
  return FitLogLog(degree_histogram).second;
}

double GraphStats::EstimateAlpha() const {
  return FitLogLog(degree_histogram).first;
}

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats s;
  s.num_vertices = graph.NumVertices();
  s.num_edges = graph.NumEdges();
  s.max_degree = graph.MaxDegree();
  s.degree_histogram.assign(s.max_degree + 1, 0);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    s.degree_histogram[graph.Degree(v)]++;
  }
  FinalizeStats(&s);
  return s;
}

Status ComputeGraphStatsFromFile(const std::string& path, GraphStats* stats,
                                 IoStats* io_stats) {
  AdjacencyFileScanner scanner(io_stats);
  SEMIS_RETURN_IF_ERROR(scanner.Open(path));
  const AdjacencyFileHeader& h = scanner.header();
  GraphStats s;
  s.num_vertices = h.num_vertices;
  s.num_edges = h.num_directed_edges / 2;
  s.max_degree = h.max_degree;
  s.degree_histogram.assign(static_cast<size_t>(h.max_degree) + 1, 0);
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    s.degree_histogram[rec.degree]++;
  }
  FinalizeStats(&s);
  *stats = s;
  return Status::OK();
}

}  // namespace semis
