#include "core/one_k_swap.h"

#include <unordered_map>

#include "graph/adjacency_file.h"
#include "util/timer.h"

namespace semis {

namespace {

// Implementation state of one run. The per-vertex arrays are the
// algorithm's entire long-lived memory: state (1 byte) + isn (4 bytes),
// the paper's "2|V|" bookkeeping.
class OneKSwapRun {
 public:
  OneKSwapRun(const OneKSwapOptions& options, uint64_t n)
      : options_(options),
        n_(n),
        state_(n, VState::kN),
        isn_(n, kInvalidVertex) {}

  Status Execute(AdjacencyFileScanner* scanner, const BitVector& initial_set,
                 AlgoResult* res);

 private:
  // ISN^-1 counter of IS vertex w lives in isn_[w] (counting trick). The
  // ablation keeps an explicit index instead.
  void CounterReset(VertexId w) {
    if (options_.use_counting_trick) {
      isn_[w] = 0;
    } else {
      inv_index_[w].clear();
    }
  }
  void CounterAdd(VertexId w, VertexId u) {
    if (options_.use_counting_trick) {
      isn_[w]++;
    } else {
      inv_index_[w].push_back(u);
    }
  }
  void CounterRemove(VertexId w, VertexId u) {
    if (options_.use_counting_trick) {
      if (isn_[w] > 0) isn_[w]--;
    } else {
      auto& vec = inv_index_[w];
      for (size_t i = 0; i < vec.size(); ++i) {
        if (vec[i] == u) {
          vec[i] = vec.back();
          vec.pop_back();
          break;
        }
      }
    }
  }
  // Members of ISN^-1(w) that still have state A (the trick keeps the
  // count exact because transitions out of A decrement it immediately).
  uint64_t CounterGet(VertexId w) const {
    if (options_.use_counting_trick) return isn_[w];
    auto it = inv_index_.find(w);
    return it == inv_index_.end() ? 0 : it->second.size();
  }

  // Transitions u out of state A, maintaining the counter of its IS
  // anchor when that anchor is still an IS vertex.
  void LeaveA(VertexId u) {
    VertexId w = isn_[u];
    if (w != kInvalidVertex && state_[w] == VState::kI) CounterRemove(w, u);
  }

  Status InitialLabelScan(AdjacencyFileScanner* scanner);
  Status PreSwapScan(AdjacencyFileScanner* scanner, RoundStats* round);
  void SwapPass(RoundStats* round, bool* can_swap);
  Status PostSwapScan(AdjacencyFileScanner* scanner, RoundStats* round);
  Status CompletionScan(AdjacencyFileScanner* scanner, uint64_t* added);

  const OneKSwapOptions& options_;
  const uint64_t n_;
  std::vector<VState> state_;
  std::vector<VertexId> isn_;
  // Ablation only (use_counting_trick == false).
  std::unordered_map<VertexId, std::vector<VertexId>> inv_index_;
  uint64_t is_size_ = 0;
};

Status OneKSwapRun::InitialLabelScan(AdjacencyFileScanner* scanner) {
  // Lines 1-3 of Algorithm 2: a non-IS vertex with exactly one IS
  // neighbor e becomes A with ISN(u) = e.
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner->Next(&rec, &has_next));
    if (!has_next) break;
    if (state_[rec.id] == VState::kI) continue;
    VertexId e = kInvalidVertex;
    uint32_t is_neighbors = 0;
    for (uint32_t i = 0; i < rec.degree && is_neighbors < 2; ++i) {
      if (state_[rec.neighbors[i]] == VState::kI) {
        is_neighbors++;
        e = rec.neighbors[i];
      }
    }
    if (is_neighbors == 1) {
      state_[rec.id] = VState::kA;
      isn_[rec.id] = e;
      CounterAdd(e, rec.id);
    }
  }
  return Status::OK();
}

Status OneKSwapRun::PreSwapScan(AdjacencyFileScanner* scanner,
                                RoundStats* round) {
  // Lines 7-14 of Algorithm 2, in the paper's priority order:
  //   (i)  a P neighbor wins the race -> become C;
  //   (ii) a fresh 1-2 swap skeleton -> become P, demote w to R;
  //   (iii) our IS vertex already left (state R) -> join as P.
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner->Next(&rec, &has_next));
    if (!has_next) break;
    const VertexId u = rec.id;
    if (state_[u] != VState::kA) continue;
    const VertexId w = isn_[u];
    bool has_p_neighbor = false;
    uint64_t x = 0;  // neighbors that share our anchor and are still A
    for (uint32_t i = 0; i < rec.degree; ++i) {
      const VertexId nb = rec.neighbors[i];
      if (state_[nb] == VState::kP) {
        has_p_neighbor = true;
        break;
      }
      if (state_[nb] == VState::kA && isn_[nb] == w) x++;
    }
    if (has_p_neighbor) {
      LeaveA(u);
      state_[u] = VState::kC;
      round->conflicts++;
      continue;
    }
    if (state_[w] == VState::kI) {
      // 1-2 swap skeleton (u, v, w) exists iff some A vertex v != u with
      // ISN(v) = w is NOT adjacent to u. |ISN^-1(w)| counts u itself plus
      // its x conflicting neighbors plus any eligible v.
      if (CounterGet(w) >= x + 2) {
        LeaveA(u);
        state_[u] = VState::kP;
        state_[w] = VState::kR;
        round->one_k_swaps++;
      }
    } else if (state_[w] == VState::kR) {
      // Line 13-14: extend the running 1-k swap.
      state_[u] = VState::kP;
      round->follower_joins++;
    }
  }
  return Status::OK();
}

void OneKSwapRun::SwapPass(RoundStats* round, bool* can_swap) {
  // Lines 15-19: commit the round. Pure state-array pass; no file I/O.
  for (uint64_t v = 0; v < n_; ++v) {
    if (state_[v] == VState::kP) {
      state_[v] = VState::kI;
      CounterReset(static_cast<VertexId>(v));
      round->new_is_vertices++;
      is_size_++;
    } else if (state_[v] == VState::kR) {
      state_[v] = VState::kN;
      isn_[v] = kInvalidVertex;
      round->removed_is_vertices++;
      is_size_--;
      *can_swap = true;
    }
  }
}

Status OneKSwapRun::PostSwapScan(AdjacencyFileScanner* scanner,
                                 RoundStats* round) {
  // Lines 20-28. Counters of IS vertices are rebuilt from scratch here, so
  // zero them first (they may be stale after the pre-swap transitions).
  for (uint64_t v = 0; v < n_; ++v) {
    if (state_[v] == VState::kI) CounterReset(static_cast<VertexId>(v));
  }
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner->Next(&rec, &has_next));
    if (!has_next) break;
    const VertexId u = rec.id;
    if (state_[u] == VState::kN) {
      // Lines 21-23: 0<->1 swap. Only an all-C/N neighborhood is safe: an
      // A neighbor's ISN could go stale if we joined the set here.
      bool all_c_or_n = true;
      for (uint32_t i = 0; i < rec.degree; ++i) {
        const VState s = state_[rec.neighbors[i]];
        if (s != VState::kC && s != VState::kN) {
          all_c_or_n = false;
          break;
        }
      }
      if (all_c_or_n) {
        state_[u] = VState::kI;
        CounterReset(u);
        round->zero_one_swaps++;
        round->new_is_vertices++;
        is_size_++;
        continue;
      }
    }
    if (state_[u] == VState::kC || state_[u] == VState::kA ||
        state_[u] == VState::kN) {
      // Lines 24-28: relabel for the next round. The pseudo-code of
      // Algorithm 2 spells out C and A; N must be included as well
      // (exactly as Algorithm 3 line 16 does), otherwise a vertex that
      // starts with two IS neighbors and loses one can never become a
      // swap candidate -- and the paper's own cascade-swap worst case
      // (Figure 5) could not cascade.
      VertexId e = kInvalidVertex;
      uint32_t is_neighbors = 0;
      for (uint32_t i = 0; i < rec.degree && is_neighbors < 2; ++i) {
        if (state_[rec.neighbors[i]] == VState::kI) {
          is_neighbors++;
          e = rec.neighbors[i];
        }
      }
      if (is_neighbors == 1) {
        state_[u] = VState::kA;
        isn_[u] = e;
        CounterAdd(e, u);
      } else {
        state_[u] = VState::kN;
        isn_[u] = kInvalidVertex;
      }
    }
  }
  return Status::OK();
}

Status OneKSwapRun::CompletionScan(AdjacencyFileScanner* scanner,
                                   uint64_t* added) {
  // Implementation note (divergence from the paper, documented in
  // DESIGN.md): Algorithm 2's 0-1 rule only fires when the whole
  // neighborhood is C/N, so a vertex whose last IS neighbor was swapped
  // away can stay out of the set forever if one neighbor keeps state A.
  // After convergence no more swaps will happen, so it is safe to add any
  // vertex with no IS neighbor; doing it in scan order keeps independence
  // (once added, later vertices see the I state).
  *added = 0;
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner->Next(&rec, &has_next));
    if (!has_next) break;
    if (state_[rec.id] == VState::kI) continue;
    bool has_is_neighbor = false;
    for (uint32_t i = 0; i < rec.degree; ++i) {
      if (state_[rec.neighbors[i]] == VState::kI) {
        has_is_neighbor = true;
        break;
      }
    }
    if (!has_is_neighbor) {
      state_[rec.id] = VState::kI;
      is_size_++;
      (*added)++;
    }
  }
  return Status::OK();
}

Status OneKSwapRun::Execute(AdjacencyFileScanner* scanner,
                            const BitVector& initial_set, AlgoResult* res) {
  res->memory.Add("state", n_ * sizeof(VState));
  res->memory.Add("isn", n_ * sizeof(VertexId));

  for (uint64_t v = 0; v < n_; ++v) {
    if (initial_set.Test(v)) {
      state_[v] = VState::kI;
      CounterReset(static_cast<VertexId>(v));
      is_size_++;
    }
  }
  SEMIS_RETURN_IF_ERROR(InitialLabelScan(scanner));
  auto observe = [&](const char* phase, uint64_t round) {
    if (options_.observer) options_.observer(phase, round, state_);
  };
  observe("init", 0);

  // Lines 4-6: rounds until no swap fires (or the early-stop cap).
  bool can_swap = true;
  while (can_swap &&
         (options_.max_rounds == 0 || res->rounds < options_.max_rounds)) {
    can_swap = false;
    RoundStats round;
    WallTimer round_timer;
    SEMIS_RETURN_IF_ERROR(scanner->Rewind());
    SEMIS_RETURN_IF_ERROR(PreSwapScan(scanner, &round));
    observe("pre-swap", res->rounds);
    SwapPass(&round, &can_swap);
    observe("swap", res->rounds);
    SEMIS_RETURN_IF_ERROR(scanner->Rewind());
    SEMIS_RETURN_IF_ERROR(PostSwapScan(scanner, &round));
    observe("post-swap", res->rounds);
    round.is_size_after = is_size_;
    round.seconds = round_timer.ElapsedSeconds();
    res->round_stats.push_back(round);
    res->rounds++;
    if (!options_.use_counting_trick) {
      size_t bytes = 0;
      // Order-insensitive sum for memory accounting.
      // semis-lint: allow(unordered-iteration)
      for (const auto& kv : inv_index_) {
        bytes += sizeof(kv) + kv.second.capacity() * sizeof(VertexId);
      }
      res->memory.Set("inv-index", bytes);
    }
  }

  if (options_.final_maximality_pass) {
    uint64_t added = 0;
    SEMIS_RETURN_IF_ERROR(scanner->Rewind());
    SEMIS_RETURN_IF_ERROR(CompletionScan(scanner, &added));
    observe("completion", res->rounds);
  }

  ExtractIndependentSet(state_, &res->in_set, &res->set_size);
  res->memory.Add("result-bitset", res->in_set.MemoryBytes());
  res->peak_memory_bytes = res->memory.PeakBytes();
  return Status::OK();
}

}  // namespace

Status RunOneKSwap(const std::string& path, const BitVector& initial_set,
                   const OneKSwapOptions& options, AlgoResult* result) {
  WallTimer timer;
  AlgoResult res;
  AdjacencyFileScanner scanner(&res.io);
  SEMIS_RETURN_IF_ERROR(scanner.Open(path));
  const uint64_t n = scanner.header().num_vertices;
  if (initial_set.size() != n) {
    return Status::InvalidArgument(
        "initial set size does not match graph vertex count");
  }
  OneKSwapRun run(options, n);
  SEMIS_RETURN_IF_ERROR(run.Execute(&scanner, initial_set, &res));
  res.seconds = timer.ElapsedSeconds();
  *result = std::move(res);
  return Status::OK();
}

}  // namespace semis
