// Copyright (c) the semis authors.
// End-to-end pipeline: this is the public entry point a downstream user
// calls. It wires the paper's stages together:
//   [optional] degree-sort preprocessing  (Section 4.1)
//   greedy / baseline initial set         (Algorithm 1)
//   [optional] one-k-swap or two-k-swap   (Algorithms 2-4)
//   [optional] streaming verification
#ifndef SEMIS_CORE_SOLVER_H_
#define SEMIS_CORE_SOLVER_H_

#include <string>

#include "core/mis_common.h"
#include "graph/graph.h"
#include "util/bit_vector.h"
#include "util/status.h"

namespace semis {

/// Which swap stage to run after the initial greedy scan.
enum class SwapMode {
  kNone,  // greedy / baseline only
  kOneK,  // Algorithm 2
  kTwoK,  // Algorithms 3-4
};

/// Configuration of a Solver.
struct SolverOptions {
  /// Degree-sort the input before the greedy scan (paper GREEDY). When
  /// false the file is consumed as-is (paper BASELINE).
  bool degree_sort = true;
  /// Swap stage.
  SwapMode swap = SwapMode::kTwoK;
  /// Early-stop cap on swap rounds (0 = converge; Table 8 uses 1..3).
  uint32_t max_swap_rounds = 0;
  /// Memory budget of the preprocessing sort (the paper's M).
  size_t sort_memory_budget_bytes = 64ull << 20;
  /// Merge fan-in of the preprocessing sort.
  size_t sort_fan_in = 16;
  /// Directory for the sorted intermediate file ("" = private temp dir).
  std::string scratch_dir;
  /// Re-scan the graph at the end and fail on a non-independent or
  /// non-maximal result (paranoid mode).
  bool verify = false;
  /// Number of adjacency shards for the parallel executors. Values <= 1
  /// keep the sequential single-file path. With > 1 shards the (sorted)
  /// file is split into contiguous shards up front and the WHOLE pipeline
  /// runs over them: the greedy stage on the shard-pipelined executor
  /// (core/parallel_greedy.h) and the swap stage on the parallel round
  /// executor (core/parallel_swap.h), which is seeded with greedy's final
  /// state array instead of re-reading the monolithic file. Both stages
  /// are deterministic for any `num_threads`.
  uint32_t num_shards = 0;
  /// Worker threads of the parallel executors (0 = hardware concurrency).
  /// Only used when num_shards > 1.
  uint32_t num_threads = 1;
};

/// Everything a Solve call produced.
struct SolveResult {
  /// The independent set (bit per vertex id).
  BitVector set;
  /// Number of vertices in the set.
  uint64_t set_size = 0;
  /// Stage results (swap untouched when SwapMode::kNone).
  AlgoResult greedy;
  AlgoResult swap;
  /// Seconds spent in the preprocessing sort (0 when skipped).
  double sort_seconds = 0.0;
  /// Seconds spent splitting the file into shards (0 when not sharding).
  double shard_seconds = 0.0;
  /// Aggregated I/O over all stages (sort + shard + greedy + swaps).
  IoStats io;
  /// Peak logical memory over all stages, including the preprocessing
  /// sort's run buffer and merge cursors.
  size_t peak_memory_bytes = 0;
  /// Total wall-clock seconds.
  double seconds = 0.0;
};

/// Facade over the pipeline. Stateless between calls; safe to reuse.
class Solver {
 public:
  /// Creates a solver with `options`.
  explicit Solver(SolverOptions options) : options_(std::move(options)) {}

  /// Solves the graph stored at `adjacency_path` (SADJ format; see
  /// graph/adjacency_file.h). If `options.degree_sort` is set and the file
  /// is not already degree-sorted, a sorted copy is produced first.
  Status SolveFile(const std::string& adjacency_path, SolveResult* result);

  /// Convenience for in-memory graphs: writes `graph` to a scratch
  /// adjacency file and solves it semi-externally.
  Status SolveGraph(const Graph& graph, SolveResult* result);

  /// Solves a graph that is ALREADY sharded (SADJS manifest; see
  /// graph/sharded_adjacency_file.h) without re-sorting or re-splitting:
  /// greedy on the shard-pipelined executor, then the swap stage on the
  /// parallel round executor, both with `options.num_threads`
  /// (`options.num_shards` is ignored -- the file fixes the shard count).
  /// Used by the streaming-update pipeline to solve from scratch after a
  /// compaction, and byte-identical for every thread count like the
  /// sharded SolveFile path. Because shards cannot be degree-sorted in
  /// place, `options.degree_sort` demands the manifest's degree-sorted
  /// flag instead of sorting; pass degree_sort = false to consume the
  /// records as-is (paper BASELINE order semantics).
  Status SolveShardedFile(const std::string& manifest_path,
                          SolveResult* result);

  /// The options this solver was created with.
  const SolverOptions& options() const { return options_; }

 private:
  SolverOptions options_;
};

}  // namespace semis

#endif  // SEMIS_CORE_SOLVER_H_
