// Copyright (c) the semis authors.
// One-shot facade over the pipeline: this is the entry point a
// downstream user calls for a single solve. Since the engine refactor
// the stages themselves -- degree-sort preprocessing (Section 4.1),
// greedy/baseline initial set (Algorithm 1), the optional swap stage
// (Algorithms 2-4), and streaming verification -- live in
// core/engine.h's MisEngine; a Solver is a throwaway engine that opens,
// copies out the open-time result, and closes. Callers that want to stay
// resident (serve membership queries, absorb update batches) should hold
// a MisEngine directly.
#ifndef SEMIS_CORE_SOLVER_H_
#define SEMIS_CORE_SOLVER_H_

#include <string>
#include <utility>

#include "core/engine.h"
#include "graph/graph.h"
#include "util/status.h"

namespace semis {

/// Solver configuration IS the engine configuration: the facade adds no
/// knobs of its own. Shard/thread/buffering fields live under
/// `.pipeline` (EnginePipelineOptions).
using SolverOptions = MisEngineOptions;

/// Facade over the pipeline. Stateless between calls; safe to reuse.
class Solver {
 public:
  /// Creates a solver with `options`.
  explicit Solver(SolverOptions options) : options_(std::move(options)) {}

  /// Solves the graph stored at `adjacency_path` -- a SADJ monolithic
  /// file or (detected by magic) a SADJS manifest. If
  /// `options.degree_sort` is set and a monolithic file is not already
  /// degree-sorted, a sorted copy is produced first. With
  /// `options.pipeline.num_shards` > 1 the whole pipeline runs over
  /// shards (see MisEngine::Open).
  Status SolveFile(const std::string& adjacency_path, SolveResult* result);

  /// Convenience for in-memory graphs: writes `graph` to a scratch
  /// adjacency file and solves it semi-externally.
  Status SolveGraph(const Graph& graph, SolveResult* result);

  /// Solves a graph that is ALREADY sharded (SADJS manifest; see
  /// graph/sharded_adjacency_file.h) without re-sorting or re-splitting:
  /// greedy on the shard-pipelined executor, then the swap stage on the
  /// parallel round executor, both with `options.pipeline.num_threads`
  /// (`options.pipeline.num_shards` is ignored -- the file fixes the
  /// shard count). Used by the streaming-update pipeline to solve from
  /// scratch after a compaction, and byte-identical for every thread
  /// count like the sharded SolveFile path. Because shards cannot be
  /// degree-sorted in place, `options.degree_sort` demands the
  /// manifest's degree-sorted flag instead of sorting; pass degree_sort
  /// = false to consume the records as-is (paper BASELINE order
  /// semantics). Non-manifest input fails with the manifest reader's
  /// diagnosis.
  Status SolveShardedFile(const std::string& manifest_path,
                          SolveResult* result);

  /// The options this solver was created with.
  const SolverOptions& options() const { return options_; }

 private:
  SolverOptions options_;
};

}  // namespace semis

#endif  // SEMIS_CORE_SOLVER_H_
