// Copyright (c) the semis authors.
// Streaming verification of independence and maximality. Used by tests,
// by examples, and (optionally) by the Solver as a final self-check --
// the same discipline a storage engine applies with paranoid checks.
#ifndef SEMIS_CORE_VERIFY_H_
#define SEMIS_CORE_VERIFY_H_

#include <string>

#include "graph/graph.h"
#include "io/io_stats.h"
#include "util/bit_vector.h"
#include "util/status.h"

namespace semis {

/// Result of a set verification.
struct VerifyResult {
  /// No edge has both endpoints in the set.
  bool independent = false;
  /// Every vertex outside the set has a neighbor inside it.
  bool maximal = false;
  /// A witness when a property fails (edge in set / addable vertex).
  VertexId witness_u = kInvalidVertex;
  VertexId witness_v = kInvalidVertex;
};

/// Verifies `set` against the graph stored at `adjacency_path` with one
/// sequential scan and O(|V|) bits of memory.
Status VerifyIndependentSetFile(const std::string& adjacency_path,
                                const BitVector& set, VerifyResult* result,
                                IoStats* stats = nullptr);

/// As above for a sharded adjacency file (SADJS manifest): one pass over
/// the shards in manifest order. Lets sharded pipelines (and the
/// streaming update CLI) verify without materializing a monolithic copy.
Status VerifyIndependentSetShardedFile(const std::string& manifest_path,
                                       const BitVector& set,
                                       VerifyResult* result,
                                       IoStats* stats = nullptr);

/// In-memory variant for tests.
VerifyResult VerifyIndependentSet(const Graph& graph, const BitVector& set);

}  // namespace semis

#endif  // SEMIS_CORE_VERIFY_H_
