#include "core/engine.h"

#include <algorithm>
#include <utility>

#include "core/greedy.h"
#include "core/one_k_swap.h"
#include "core/parallel_greedy.h"
#include "core/parallel_swap.h"
#include "core/rounds_engine.h"
#include "core/two_k_swap.h"
#include "core/verify.h"
#include "graph/adjacency_file.h"
#include "graph/degree_sort.h"
#include "graph/shard_store.h"
#include "graph/sharded_adjacency_file.h"
#include "io/epoch_journal.h"
#include "io/file.h"
#include "util/timer.h"

namespace semis {

Status MisEngine::IntermediateDir(std::string* dir) {
  if (inter_dir_.empty()) {
    if (!options_.scratch_dir.empty()) {
      inter_dir_ = options_.scratch_dir;
    } else {
      SEMIS_RETURN_IF_ERROR(ScratchDir::Create("semis-engine", &scratch_));
      inter_dir_ = scratch_.path();
    }
  }
  *dir = inter_dir_;
  return Status::OK();
}

Status MisEngine::RunShardPipeline(const std::string& manifest_path,
                                   bool require_degree_sorted,
                                   SolveResult* res) {
  std::vector<VState> seed_states;
  const AlgoResult* final_stage = nullptr;
  if (options_.pipeline.engine == SolveEngine::kRounds) {
    MinIdRoundsOptions rounds_opts;
    rounds_opts.pipeline = options_.pipeline;
    SEMIS_RETURN_IF_ERROR(RunMinIdRoundsWithStates(
        manifest_path, rounds_opts, &res->rounds, &seed_states));
    final_stage = &res->rounds;
  } else {
    ParallelGreedyOptions greedy_opts;
    greedy_opts.greedy.require_degree_sorted = require_degree_sorted;
    greedy_opts.pipeline = options_.pipeline;
    SEMIS_RETURN_IF_ERROR(RunParallelGreedyWithStates(
        manifest_path, greedy_opts, &res->greedy, &seed_states));
    final_stage = &res->greedy;
  }
  if (options_.swap != SwapMode::kNone) {
    ParallelSwapOptions swap_opts;
    swap_opts.max_rounds = options_.max_swap_rounds;
    swap_opts.num_threads = options_.pipeline.num_threads;
    swap_opts.enable_two_k = options_.swap == SwapMode::kTwoK;
    SEMIS_RETURN_IF_ERROR(RunParallelSwap(manifest_path, seed_states,
                                          swap_opts, &res->swap));
    final_stage = &res->swap;
  }
  res->set = final_stage->in_set;
  res->set_size = final_stage->set_size;
  return Status::OK();
}

Status MisEngine::OpenMonolithic(const std::string& adjacency_path) {
  WallTimer timer;
  SolveResult res;
  std::string work_path = adjacency_path;
  MemoryTracker sort_memory;
  bool input_sorted = false;
  const bool rounds_engine =
      options_.pipeline.engine == SolveEngine::kRounds;

  if (options_.degree_sort && !rounds_engine) {
    // The probe reads only the header; it is closed before the (possibly
    // hours-long) sort so no file handle dangles across the stage, and
    // its I/O is charged to the aggregate like every other read.
    {
      AdjacencyFileScanner probe(&res.io);
      SEMIS_RETURN_IF_ERROR(probe.Open(adjacency_path));
      input_sorted = probe.header().IsDegreeSorted();
      SEMIS_RETURN_IF_ERROR(probe.Close());
    }
    if (!input_sorted) {
      WallTimer sort_timer;
      std::string dir;
      SEMIS_RETURN_IF_ERROR(IntermediateDir(&dir));
      work_path = dir + "/sorted.sadj";
      DegreeSortOptions sort_opts;
      sort_opts.memory_budget_bytes = options_.sort_memory_budget_bytes;
      sort_opts.fan_in = options_.sort_fan_in;
      sort_opts.stats = &res.io;
      sort_opts.memory = &sort_memory;
      SEMIS_RETURN_IF_ERROR(BuildDegreeSortedAdjacencyFile(
          adjacency_path, work_path, sort_opts));
      res.sort_seconds = sort_timer.ElapsedSeconds();
    }
  } else {
    // BASELINE order (or the rounds engine, which is order-free and
    // never sorts): consume as-is, but still report whether the input
    // happened to be degree-sorted. The uncharged peek keeps the I/O
    // accounting byte-identical to the pre-engine pipeline.
    AdjacencyFileScanner probe;
    SEMIS_RETURN_IF_ERROR(probe.Open(adjacency_path));
    input_sorted = probe.header().IsDegreeSorted();
    SEMIS_RETURN_IF_ERROR(probe.Close());
  }
  res.degree_sorted =
      (options_.degree_sort && !rounds_engine) || input_sorted;

  // Sharded pipeline: the (sorted) file is split into shards up front and
  // BOTH stages run over them -- greedy on the shard-pipelined executor,
  // swaps on the parallel round executor, which is seeded with greedy's
  // final state array so the monolithic file is never re-read. Every
  // stage's result is byte-identical for any num_threads. The rounds
  // engine is shard-native, so it always takes this path (1 shard unless
  // configured higher).
  const bool sharded = rounds_engine || options_.pipeline.num_shards > 1;
  if (sharded) {
    WallTimer shard_timer;
    std::string dir;
    SEMIS_RETURN_IF_ERROR(IntermediateDir(&dir));
    const std::string manifest_path = dir + "/sharded.sadjs";
    SEMIS_RETURN_IF_ERROR(ShardAdjacencyFile(
        work_path, manifest_path,
        std::max<uint32_t>(1, options_.pipeline.num_shards), &res.io));
    res.shard_seconds = shard_timer.ElapsedSeconds();
    SEMIS_RETURN_IF_ERROR(RunShardPipeline(
        manifest_path, /*require_degree_sorted=*/false, &res));
    manifest_path_ = manifest_path;
  } else {
    GreedyOptions greedy_opts;
    SEMIS_RETURN_IF_ERROR(RunGreedy(work_path, greedy_opts, &res.greedy));
    const AlgoResult* final_stage = &res.greedy;
    if (options_.swap == SwapMode::kOneK) {
      OneKSwapOptions swap_opts;
      swap_opts.max_rounds = options_.max_swap_rounds;
      SEMIS_RETURN_IF_ERROR(
          RunOneKSwap(work_path, res.greedy.in_set, swap_opts, &res.swap));
      final_stage = &res.swap;
    } else if (options_.swap == SwapMode::kTwoK) {
      TwoKSwapOptions swap_opts;
      swap_opts.max_rounds = options_.max_swap_rounds;
      SEMIS_RETURN_IF_ERROR(
          RunTwoKSwap(work_path, res.greedy.in_set, swap_opts, &res.swap));
      final_stage = &res.swap;
    }
    res.set = final_stage->in_set;
    res.set_size = final_stage->set_size;
  }

  res.io.MergeFrom(res.greedy.io);
  res.io.MergeFrom(res.rounds.io);
  res.io.MergeFrom(res.swap.io);
  res.peak_memory_bytes =
      std::max({res.greedy.peak_memory_bytes, res.rounds.peak_memory_bytes,
                res.swap.peak_memory_bytes, sort_memory.PeakBytes()});

  if (options_.verify) {
    VerifyResult vr;
    SEMIS_RETURN_IF_ERROR(VerifyIndependentSetFile(work_path, res.set, &vr));
    if (!vr.independent) {
      return Status::Corruption("solver produced a non-independent set");
    }
    if (!vr.maximal) {
      return Status::Corruption("solver produced a non-maximal set");
    }
  }

  res.seconds = timer.ElapsedSeconds();
  work_path_ = work_path;
  num_vertices_ = res.set.size();
  open_result_ = std::move(res);
  return Status::OK();
}

Status MisEngine::OpenShardedInternal(const std::string& manifest_path,
                                      SolveResult* res) {
  WallTimer timer;
  // `manifest_path` is the store ROOT: a plain SADM manifest or a SEPR
  // epoch root pointer. Resolve here for the direct manifest read, but
  // keep passing the root downstream -- every consumer (executors,
  // verifier, streaming maintainer) resolves it itself, so epoch flips
  // between stages are impossible to mis-path.
  ShardedAdjacencyManifest manifest;
  SEMIS_RETURN_IF_ERROR(
      ReadShardStoreManifest(manifest_path, &manifest, &res->io));
  const bool rounds_engine =
      options_.pipeline.engine == SolveEngine::kRounds;
  if (options_.degree_sort && !rounds_engine &&
      !manifest.header.IsDegreeSorted()) {
    return Status::InvalidArgument(
        "sharded input is not degree-sorted and cannot be sorted in place; "
        "sort before sharding or set degree_sort = false: " + manifest_path);
  }
  res->degree_sorted = manifest.header.IsDegreeSorted();

  SEMIS_RETURN_IF_ERROR(RunShardPipeline(
      manifest_path,
      /*require_degree_sorted=*/options_.degree_sort && !rounds_engine, res));

  res->io.MergeFrom(res->greedy.io);
  res->io.MergeFrom(res->rounds.io);
  res->io.MergeFrom(res->swap.io);
  res->peak_memory_bytes =
      std::max({res->greedy.peak_memory_bytes, res->rounds.peak_memory_bytes,
                res->swap.peak_memory_bytes});

  if (options_.verify) {
    VerifyResult vr;
    SEMIS_RETURN_IF_ERROR(
        VerifyIndependentSetShardedFile(manifest_path, res->set, &vr));
    if (!vr.independent) {
      return Status::Corruption("solver produced a non-independent set");
    }
    if (!vr.maximal) {
      return Status::Corruption("solver produced a non-maximal set");
    }
  }

  res->seconds = timer.ElapsedSeconds();
  manifest_path_ = manifest_path;
  num_vertices_ = manifest.header.num_vertices;
  return Status::OK();
}

Status MisEngine::Open(const std::string& path) {
  if (open_) {
    return Status::InvalidArgument("engine is already open; Close() first");
  }
  open_result_ = SolveResult();
  // Route on the file's magic: a file that CLAIMS to be a manifest but
  // fails to parse must surface the manifest reader's diagnosis, not a
  // misleading "not an adjacency file" from the monolithic scanner.
  bool is_manifest = false;
  {
    uint32_t magic = 0;
    if (ProbeFileMagic(path, &magic).ok()) {
      is_manifest = magic == kShardManifestMagic || magic == kEpochRootMagic;
    }
  }
  if (is_manifest) {
    SolveResult res;
    SEMIS_RETURN_IF_ERROR(OpenShardedInternal(path, &res));
    open_result_ = std::move(res);
  } else {
    SEMIS_RETURN_IF_ERROR(OpenMonolithic(path));
  }
  epoch_ = 1;
  Install(std::make_shared<const EpochSnapshot>(
      epoch_, open_result_.set, open_result_.set_size, EpochStats{}));
  open_ = true;
  return Status::OK();
}

Status MisEngine::OpenSharded(const std::string& manifest_path) {
  if (open_) {
    return Status::InvalidArgument("engine is already open; Close() first");
  }
  open_result_ = SolveResult();
  SolveResult res;
  SEMIS_RETURN_IF_ERROR(OpenShardedInternal(manifest_path, &res));
  open_result_ = std::move(res);
  epoch_ = 1;
  Install(std::make_shared<const EpochSnapshot>(
      epoch_, open_result_.set, open_result_.set_size, EpochStats{}));
  open_ = true;
  return Status::OK();
}

Status MisEngine::OpenSharded(const std::string& manifest_path,
                              const BitVector& initial_set) {
  if (open_) {
    return Status::InvalidArgument("engine is already open; Close() first");
  }
  open_result_ = SolveResult();
  SolveResult res;
  ShardedAdjacencyManifest manifest;
  SEMIS_RETURN_IF_ERROR(
      ReadShardStoreManifest(manifest_path, &manifest, &res.io));
  if (initial_set.size() != manifest.header.num_vertices) {
    return Status::InvalidArgument(
        "initial set covers " + std::to_string(initial_set.size()) +
        " vertices but the manifest holds " +
        std::to_string(manifest.header.num_vertices) + ": " + manifest_path);
  }
  res.degree_sorted = manifest.header.IsDegreeSorted();
  res.set = initial_set;
  res.set_size = res.set.Count();
  manifest_path_ = manifest_path;
  num_vertices_ = manifest.header.num_vertices;
  open_result_ = std::move(res);
  epoch_ = 1;
  Install(std::make_shared<const EpochSnapshot>(
      epoch_, open_result_.set, open_result_.set_size, EpochStats{}));
  open_ = true;
  return Status::OK();
}

EpochSnapshotRef MisEngine::Snapshot() const {
  MutexLock lock(&publish_mu_);
  return current_;
}

void MisEngine::Install(EpochSnapshotRef snapshot) {
  MutexLock lock(&publish_mu_);
  current_ = std::move(snapshot);
}

Status MisEngine::NoteMutationResult(Status s) {
  if (!s.ok() && (s.IsIOError() || s.IsCorruption())) {
    degraded_ = s;
  }
  return s;
}

Status MisEngine::GuardMutable(const char* verb) const {
  if (degraded_.ok()) return Status::OK();
  return Status::FailedPrecondition(
      std::string(verb) +
      " rejected: engine is read-only after a storage failure (" +
      degraded_.ToString() + ")");
}

Status MisEngine::Prepare() {
  SEMIS_RETURN_IF_ERROR(GuardMutable("Prepare"));
  return NoteMutationResult(PrepareInner());
}

Status MisEngine::PrepareInner() {
  if (!open_) {
    return Status::InvalidArgument("engine is not open");
  }
  if (mutant_ != nullptr) return Status::OK();
  if (manifest_path_.empty()) {
    // Sequential monolithic open: the mutation arm is shard-native, so
    // split the consumed file now (1 shard unless configured higher).
    std::string dir;
    SEMIS_RETURN_IF_ERROR(IntermediateDir(&dir));
    const std::string manifest_path = dir + "/sharded.sadjs";
    SEMIS_RETURN_IF_ERROR(ShardAdjacencyFile(
        work_path_, manifest_path,
        std::max<uint32_t>(1, options_.pipeline.num_shards),
        &open_result_.io));
    manifest_path_ = manifest_path;
  }
  auto mutant = std::make_unique<ShardedStreamingMis>();
  // The successor starts from the served epoch's set; an existing SDELTA
  // overlay (a previous session's unfinished stream) is replayed on top.
  SEMIS_RETURN_IF_ERROR(mutant->Initialize(manifest_path_, Snapshot()->set(),
                                           options_.pipeline));
  mutant_ = std::move(mutant);
  mark_ = PublishedMark{};
  // A replayed overlay (a previous session's unfinished stream) may have
  // moved the successor away from the served epoch; make sure the next
  // Publish() surfaces it even if this session applies nothing itself.
  if (mutant_->stats().pending_delta_entries > 0 ||
      mutant_->set_size() != Snapshot()->set_size()) {
    dirty_ = true;
  }
  return Status::OK();
}

Status MisEngine::ApplyBatch(const std::vector<EdgeUpdate>& updates) {
  SEMIS_RETURN_IF_ERROR(Prepare());
  SEMIS_RETURN_IF_ERROR(NoteMutationResult(mutant_->ApplyBatch(updates)));
  pending_batches_ += 1;
  pending_updates_ += updates.size();
  dirty_ = true;
  return Status::OK();
}

Status MisEngine::Repair() {
  SEMIS_RETURN_IF_ERROR(Prepare());
  SEMIS_RETURN_IF_ERROR(NoteMutationResult(mutant_->Repair()));
  dirty_ = true;
  return Status::OK();
}

Status MisEngine::Compact(bool force) {
  SEMIS_RETURN_IF_ERROR(Prepare());
  // Storage-only: folding the delta never changes the effective graph or
  // the membership, so the published epoch stays truthful.
  return NoteMutationResult(mutant_->Compact(force));
}

Status MisEngine::Resort() {
  SEMIS_RETURN_IF_ERROR(Prepare());
  // Storage-only like Compact: records move, membership does not.
  return NoteMutationResult(mutant_->Resort());
}

EpochSnapshotRef MisEngine::Publish() {
  if (!open_) return nullptr;
  // Read-only: the successor state may hold a half-applied batch, so it
  // must never become an epoch. Keep serving the last good one.
  if (!degraded_.ok()) return Snapshot();
  if (!dirty_ || mutant_ == nullptr) return Snapshot();
  const StreamingMisStats& st = mutant_->stats();
  EpochStats stats;
  stats.batches = pending_batches_;
  stats.updates = pending_updates_;
  stats.repair_passes = st.repair_passes - mark_.repair_passes;
  stats.repair_added = st.repair_added - mark_.repair_added;
  stats.apply_seconds = st.apply_seconds - mark_.apply_seconds;
  stats.repair_seconds = st.repair_seconds - mark_.repair_seconds;
  epoch_ += 1;
  auto snapshot = std::make_shared<const EpochSnapshot>(
      epoch_, mutant_->set(), mutant_->set_size(), stats);
  Install(snapshot);
  mark_.repair_passes = st.repair_passes;
  mark_.repair_added = st.repair_added;
  mark_.apply_seconds = st.apply_seconds;
  mark_.repair_seconds = st.repair_seconds;
  pending_batches_ = 0;
  pending_updates_ = 0;
  dirty_ = false;
  return snapshot;
}

Status MisEngine::Close() {
  mutant_.reset();
  Install(nullptr);
  open_ = false;
  epoch_ = 0;
  pending_batches_ = 0;
  pending_updates_ = 0;
  dirty_ = false;
  degraded_ = Status::OK();  // a reopened engine starts healthy
  mark_ = PublishedMark{};
  work_path_.clear();
  manifest_path_.clear();
  num_vertices_ = 0;
  inter_dir_.clear();
  return scratch_.Remove();
}

}  // namespace semis
