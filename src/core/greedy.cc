#include "core/greedy.h"

#include "graph/adjacency_file.h"
#include "util/timer.h"

namespace semis {

Status RunGreedyWithStates(const std::string& path,
                           const GreedyOptions& options, AlgoResult* result,
                           std::vector<VState>* states) {
  WallTimer timer;
  AlgoResult res;
  AdjacencyFileScanner scanner(&res.io);
  SEMIS_RETURN_IF_ERROR(scanner.Open(path));

  // One sequential scan in file order; the state array is the
  // algorithm's entire memory footprint, 1 byte per vertex.
  std::vector<VState> state;
  SEMIS_RETURN_IF_ERROR(RunGreedyScan(&scanner, path, options, &res, &state));

  ExtractIndependentSet(state, &res.in_set, &res.set_size);
  res.memory.Add("result-bitset", res.in_set.MemoryBytes());
  res.peak_memory_bytes = res.memory.PeakBytes();
  res.seconds = timer.ElapsedSeconds();
  if (states != nullptr) *states = std::move(state);
  *result = std::move(res);
  return Status::OK();
}

Status RunGreedy(const std::string& path, const GreedyOptions& options,
                 AlgoResult* result) {
  return RunGreedyWithStates(path, options, result, nullptr);
}

}  // namespace semis
