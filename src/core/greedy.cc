#include "core/greedy.h"

#include "graph/adjacency_file.h"
#include "util/timer.h"

namespace semis {

Status RunGreedyWithStates(const std::string& path,
                           const GreedyOptions& options, AlgoResult* result,
                           std::vector<VState>* states) {
  WallTimer timer;
  AlgoResult res;
  AdjacencyFileScanner scanner(&res.io);
  SEMIS_RETURN_IF_ERROR(scanner.Open(path));
  const uint64_t n = scanner.header().num_vertices;
  if (options.require_degree_sorted && !scanner.header().IsDegreeSorted()) {
    return Status::InvalidArgument(
        "greedy requires a degree-sorted adjacency file: " + path);
  }

  // Lines 1-2 of Algorithm 1: all vertices start INITIAL. The state array
  // is the algorithm's entire memory footprint: 1 byte per vertex.
  std::vector<VState> state(n, VState::kInitial);
  res.memory.Add("state", n * sizeof(VState));

  // Lines 3-8: one sequential scan in file order. A still-INITIAL vertex
  // joins the set; its INITIAL neighbors become non-IS. (The paper's
  // pseudo-code types line 8 as "IS"; the surrounding text and the
  // algorithm's correctness require non-IS.)
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    if (state[rec.id] != VState::kInitial) continue;
    state[rec.id] = VState::kI;
    for (uint32_t i = 0; i < rec.degree; ++i) {
      if (state[rec.neighbors[i]] == VState::kInitial) {
        state[rec.neighbors[i]] = VState::kN;
      }
    }
  }

  ExtractIndependentSet(state, &res.in_set, &res.set_size);
  res.memory.Add("result-bitset", res.in_set.MemoryBytes());
  res.peak_memory_bytes = res.memory.PeakBytes();
  res.seconds = timer.ElapsedSeconds();
  if (states != nullptr) *states = std::move(state);
  *result = std::move(res);
  return Status::OK();
}

Status RunGreedy(const std::string& path, const GreedyOptions& options,
                 AlgoResult* result) {
  return RunGreedyWithStates(path, options, result, nullptr);
}

}  // namespace semis
