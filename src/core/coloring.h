// Copyright (c) the semis authors.
// Semi-external graph coloring by iterated independent sets -- the second
// "other graph problem" from the paper's conclusion. Each color class is
// a maximal independent set of the still-uncolored subgraph, extracted
// with one sequential scan (exactly Algorithm 1 restricted to uncolored
// vertices); after `max_mis_rounds` classes, one final first-fit scan
// colors whatever remains (each vertex takes the smallest color unused by
// its already-colored neighbors -- proper because assignments earlier in
// the scan are visible to later vertices).
//
// Memory: one 4-byte color per vertex plus the scan state; the edges stay
// on disk throughout, like every algorithm in this library.
#ifndef SEMIS_CORE_COLORING_H_
#define SEMIS_CORE_COLORING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/io_stats.h"
#include "util/common.h"
#include "util/status.h"

namespace semis {

/// Sentinel for "not yet colored" during the run.
inline constexpr uint32_t kUncolored = 0xFFFFFFFFu;

/// Options for the coloring pipeline.
struct ColoringOptions {
  /// Number of MIS-extraction rounds before the first-fit completion
  /// scan. Each round costs one scan and produces one color class; on
  /// power-law graphs a handful of rounds colors the vast majority of
  /// vertices.
  uint32_t max_mis_rounds = 8;
};

/// Result of a coloring run.
struct ColoringResult {
  /// color[v] in [0, num_colors) for every vertex.
  std::vector<uint32_t> color;
  /// Number of distinct colors used.
  uint32_t num_colors = 0;
  /// Vertices colored by the MIS rounds (the rest used first-fit).
  uint64_t colored_by_mis = 0;
  /// I/O performed.
  IoStats io;
};

/// Colors the graph at `adjacency_path`. Feed the degree-sorted file for
/// the best results (the MIS rounds then favor low-degree vertices, like
/// GREEDY).
Status ComputeGreedyColoringFile(const std::string& adjacency_path,
                                 const ColoringOptions& options,
                                 ColoringResult* result);

/// Verifies with one scan that `color` is a proper coloring (no edge with
/// equal endpoint colors, nothing uncolored). `*conflicts` = violations.
Status VerifyColoringFile(const std::string& adjacency_path,
                          const std::vector<uint32_t>& color,
                          uint64_t* conflicts, IoStats* stats = nullptr);

}  // namespace semis

#endif  // SEMIS_CORE_COLORING_H_
