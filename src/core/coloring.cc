#include "core/coloring.h"

#include <algorithm>

#include "graph/adjacency_file.h"
#include "util/bit_vector.h"

namespace semis {

Status ComputeGreedyColoringFile(const std::string& adjacency_path,
                                 const ColoringOptions& options,
                                 ColoringResult* result) {
  ColoringResult res;
  AdjacencyFileScanner scanner(&res.io);
  SEMIS_RETURN_IF_ERROR(scanner.Open(adjacency_path));
  const uint64_t n = scanner.header().num_vertices;
  res.color.assign(n, kUncolored);

  uint64_t uncolored = n;
  uint32_t next_color = 0;

  // Phase 1: one maximal independent set of the uncolored subgraph per
  // scan; its members all receive the same fresh color.
  for (uint32_t round = 0;
       round < options.max_mis_rounds && uncolored > 0; ++round) {
    if (round > 0) SEMIS_RETURN_IF_ERROR(scanner.Rewind());
    // blocked[v]: v is adjacent to a vertex selected in THIS round.
    BitVector blocked(n);
    VertexRecord rec;
    bool has_next = false;
    uint64_t selected = 0;
    while (true) {
      SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
      if (!has_next) break;
      if (res.color[rec.id] != kUncolored || blocked.Test(rec.id)) continue;
      res.color[rec.id] = next_color;
      selected++;
      for (uint32_t i = 0; i < rec.degree; ++i) {
        blocked.Set(rec.neighbors[i]);
      }
    }
    if (selected == 0) break;  // uncolored subgraph is empty
    uncolored -= selected;
    res.colored_by_mis += selected;
    next_color++;
  }

  // Phase 2: first-fit completion. Assignments earlier in the scan are
  // visible to later vertices, so the result is proper.
  if (uncolored > 0) {
    SEMIS_RETURN_IF_ERROR(scanner.Rewind());
    std::vector<uint32_t> neighbor_colors;
    VertexRecord rec;
    bool has_next = false;
    while (true) {
      SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
      if (!has_next) break;
      if (res.color[rec.id] != kUncolored) continue;
      neighbor_colors.clear();
      for (uint32_t i = 0; i < rec.degree; ++i) {
        uint32_t c = res.color[rec.neighbors[i]];
        if (c != kUncolored) neighbor_colors.push_back(c);
      }
      std::sort(neighbor_colors.begin(), neighbor_colors.end());
      uint32_t chosen = 0;
      for (uint32_t c : neighbor_colors) {
        if (c == chosen) {
          chosen++;
        } else if (c > chosen) {
          break;
        }
      }
      res.color[rec.id] = chosen;
      next_color = std::max(next_color, chosen + 1);
    }
  }

  res.num_colors = next_color;
  *result = std::move(res);
  return Status::OK();
}

Status VerifyColoringFile(const std::string& adjacency_path,
                          const std::vector<uint32_t>& color,
                          uint64_t* conflicts, IoStats* stats) {
  AdjacencyFileScanner scanner(stats);
  SEMIS_RETURN_IF_ERROR(scanner.Open(adjacency_path));
  if (scanner.header().num_vertices != color.size()) {
    return Status::InvalidArgument("color array size != vertex count");
  }
  uint64_t bad = 0;
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    if (color[rec.id] == kUncolored) {
      bad++;
      continue;
    }
    for (uint32_t i = 0; i < rec.degree; ++i) {
      if (rec.id < rec.neighbors[i] &&
          color[rec.id] == color[rec.neighbors[i]]) {
        bad++;
      }
    }
  }
  *conflicts = bad;
  return Status::OK();
}

}  // namespace semis
