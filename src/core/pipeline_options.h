// Copyright (c) the semis authors.
// The one knob struct shared by every layer that drives the sharded
// execution pipeline: the solver facade, the engine, the shard-pipelined
// greedy executor, and the streaming maintainer. Before this header each
// layer carried its own copy of the same fields (num_shards here,
// num_threads there, block-ring geometry in two places), which meant a
// caller threading a configuration through the stack had to re-plumb it
// at every boundary. Each consumer documents which fields it reads;
// unread fields are ignored, never an error, so one filled-in struct can
// travel the whole stack.
#ifndef SEMIS_CORE_PIPELINE_OPTIONS_H_
#define SEMIS_CORE_PIPELINE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace semis {

/// Which solve engine produces the initial independent set (the stage an
/// optional swap phase then improves). Both engines are deterministic at
/// every shard/thread count; they differ in HOW vertices are ordered and
/// therefore in which (equally valid) maximal set comes out. See
/// docs/architecture.md "Engines" for the trade-off.
enum class SolveEngine : uint8_t {
  /// The paper's pipeline: Algorithm 1's strictly-ordered greedy commit
  /// scan (degree order when sorted), shard-pipelined for I/O overlap.
  kGreedySwap = 0,
  /// Min-id rounds (core/rounds_engine.h): synchronous rounds of
  /// "lowest-id active neighbor wins", fully parallel within a round.
  /// Ignores record order, so it neither needs nor exploits degree-
  /// sorted input.
  kRounds,
};

/// Execution-pipeline configuration shared across layers. Every knob
/// except `engine` preserves the byte-identical determinism contract: no
/// other field changes WHAT is computed, only how it is scheduled,
/// buffered, or stored. `engine` selects WHICH deterministic pipeline
/// runs -- each engine then holds the contract on its own output.
struct EnginePipelineOptions {
  /// The solve engine behind Solver/MisEngine opens (and `semis_cli
  /// solve --engine`). Executors that implement a single engine
  /// (RunParallelGreedy, RunMinIdRounds) ignore it.
  SolveEngine engine = SolveEngine::kGreedySwap;

  /// Number of adjacency shards when a monolithic input is split for the
  /// parallel executors (Solver/MisEngine monolithic opens). Values <= 1
  /// keep the sequential single-file path. Ignored by consumers whose
  /// input is already sharded -- the file fixes the shard count.
  uint32_t num_shards = 0;

  /// Worker threads of the parallel executors and of the repair pipeline
  /// (0 = hardware concurrency). <= 1 runs the plain sequential scan.
  /// The result is independent of this value by construction.
  uint32_t num_threads = 1;

  /// Payload bytes per decode block of the block ring feeding the
  /// manifest-ordered commit scans (0 = kDefaultDecodeBlockBytes). The
  /// result is independent of this value by construction.
  size_t decode_block_bytes = 0;

  /// Byte budget of decoded-but-unconsumed records buffered ahead of a
  /// commit scan (0 = 2 * block bytes * (threads + 1)). Bounds the
  /// pipeline's extra memory regardless of shard sizes; the result is
  /// independent of this value by construction.
  size_t max_buffered_bytes = 0;

  /// Streaming maintenance only: a shard whose delta log reaches this
  /// many live entries is saturated and compacted by the next Compact()
  /// (or automatically at the end of ApplyBatch). 0 disables automatic
  /// compaction; Compact(/*force=*/true) still compacts everything.
  uint64_t compact_threshold_entries = 0;

  /// Streaming maintenance only: when a compaction changes degrees and
  /// clears the degree-sorted flag, immediately run the background
  /// re-sort (ShardedStreamingMis::Resort) to restore global (degree, id)
  /// order, published through the same epoch commit. Storage-only like
  /// compaction itself: the effective graph and the maintained set are
  /// unchanged, so the determinism contract holds.
  bool auto_resort = false;
};

}  // namespace semis

#endif  // SEMIS_CORE_PIPELINE_OPTIONS_H_
