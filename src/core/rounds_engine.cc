#include "core/rounds_engine.h"

#include <thread>
#include <utility>

#include "graph/shard_store.h"
#include "graph/sharded_adjacency_file.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace semis {

namespace {

// The parallel executor. Per round, two shard passes with a pool barrier
// between them:
//
//   propose  writes winner_round_[v] only from the worker scanning v's
//            record, reading state_ frozen at the round's entry barrier;
//   commit   writes state_[v] only from the worker scanning v's record,
//            reading winner_round_ frozen at the propose barrier (a
//            vertex never inspects a neighbor's STATE here -- losing is
//            detected from the winner marks, so no cross-vertex write
//            ordering exists to race on).
//
// Every shared slot is written by exactly one worker per pass and read
// only across a barrier, so plain (non-atomic) arrays are race-free.
// Shards whose frontier count dropped to zero are skipped in both
// passes; the counts are per-shard slots under the same one-writer rule.
class MinIdRoundsRun {
 public:
  MinIdRoundsRun(const std::string& manifest_path,
                 ShardedAdjacencyManifest manifest,
                 const MinIdRoundsOptions& options, uint32_t num_threads)
      : options_(options),
        manifest_path_(manifest_path),
        manifest_(std::move(manifest)),
        n_(manifest_.header.num_vertices),
        pool_(num_threads),
        worker_io_(pool_.size()),
        state_(n_, VState::kInitial),
        winner_round_(n_, 0),
        shard_frontier_(manifest_.num_shards(), 0),
        shard_winners_(manifest_.num_shards(), 0) {}

  Status Execute(AlgoResult* res);

  std::vector<VState> TakeStates() { return std::move(state_); }

 private:
  // One pass over the shards that still hold undecided vertices,
  // distributed over the pool; a worker short-circuits after its first
  // error and the first per-worker error (in worker order) is returned.
  template <typename PerShard>
  Status RunFrontierPass(PerShard&& per_shard) {
    std::vector<Status> worker_status(pool_.size());
    pool_.ParallelFor(
        manifest_.num_shards(), [&](size_t shard, size_t worker) {
          if (!worker_status[worker].ok()) return;
          if (shard_frontier_[shard] == 0) return;  // settled shard
          worker_status[worker] =
              per_shard(static_cast<uint32_t>(shard), worker);
        });
    scans_started_++;
    for (const Status& s : worker_status) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  template <typename RecordFn>
  Status ScanOneShard(uint32_t shard, size_t worker, RecordFn&& fn) {
    AdjacencyShardReader reader(&worker_io_[worker]);
    SEMIS_RETURN_IF_ERROR(reader.Open(manifest_path_, manifest_, shard));
    VertexRecordView rec;
    bool has_next = false;
    while (true) {
      SEMIS_RETURN_IF_ERROR(reader.Next(&rec, &has_next));
      if (!has_next) break;
      fn(rec);
    }
    return reader.Close();
  }

  void Observe(uint32_t round, uint64_t round_winners,
               uint64_t frontier) const;

  const MinIdRoundsOptions& options_;
  const std::string manifest_path_;
  const ShardedAdjacencyManifest manifest_;
  const uint64_t n_;
  ThreadPool pool_;
  std::vector<IoStats> worker_io_;
  uint64_t scans_started_ = 0;

  std::vector<VState> state_;
  std::vector<uint32_t> winner_round_;
  // Undecided-vertex and winner counts per shard, each written only by
  // the worker that scanned the shard this pass; summed in shard order
  // after the barrier so every reduction is deterministic.
  std::vector<uint64_t> shard_frontier_;
  std::vector<uint64_t> shard_winners_;
};

void MinIdRoundsRun::Observe(uint32_t round, uint64_t round_winners,
                             uint64_t frontier) const {
  RoundObservation obs;
  obs.round = round;
  obs.frontier_after = frontier;
  obs.winners.reserve(round_winners);
  for (uint64_t v = 0; v < n_; ++v) {
    if (winner_round_[v] == round) {
      obs.winners.push_back(static_cast<VertexId>(v));
    }
  }
  options_.observer(obs);
}

Status MinIdRoundsRun::Execute(AlgoResult* res) {
  res->memory.Add("state", n_ * sizeof(VState));
  res->memory.Add("winner-rounds", n_ * sizeof(uint32_t));
  res->memory.Add("shard-frontier",
                  2 * shard_frontier_.size() * sizeof(uint64_t));

  uint64_t frontier = 0;
  for (uint32_t k = 0; k < manifest_.num_shards(); ++k) {
    shard_frontier_[k] = manifest_.shards[k].num_records;
    frontier += shard_frontier_[k];
  }

  uint64_t is_size = 0;
  uint32_t round = 0;
  while (frontier > 0 &&
         (options_.max_rounds == 0 || round < options_.max_rounds)) {
    ++round;
    WallTimer round_timer;
    SEMIS_RETURN_IF_ERROR(
        RunFrontierPass([&](uint32_t shard, size_t worker) {
          return ScanOneShard(shard, worker, [&](const VertexRecordView& rec) {
            if (MinIdProposeRecord(rec, state_)) {
              winner_round_[rec.id] = round;
            }
          });
        }));
    SEMIS_RETURN_IF_ERROR(
        RunFrontierPass([&](uint32_t shard, size_t worker) {
          uint64_t winners = 0;
          uint64_t survivors = 0;
          SEMIS_RETURN_IF_ERROR(
              ScanOneShard(shard, worker, [&](const VertexRecordView& rec) {
                if (state_[rec.id] != VState::kInitial) return;
                const VState next =
                    MinIdCommitRecord(rec, round, winner_round_);
                state_[rec.id] = next;
                if (next == VState::kI) {
                  winners++;
                } else if (next == VState::kInitial) {
                  survivors++;
                }
              }));
          shard_winners_[shard] = winners;
          shard_frontier_[shard] = survivors;
          return Status::OK();
        }));

    uint64_t round_winners = 0;
    frontier = 0;
    for (uint32_t k = 0; k < manifest_.num_shards(); ++k) {
      round_winners += shard_winners_[k];
      frontier += shard_frontier_[k];
      shard_winners_[k] = 0;
    }
    if (round_winners == 0) {
      // The smallest undecided id always wins, so a barren round means
      // some undecided vertex has no record (a coverage hole the shard
      // readers cannot see); erroring beats spinning forever.
      return Status::Corruption(
          "min-id round decided no vertex; the sharded file is missing "
          "records for undecided vertices: " + manifest_path_);
    }
    is_size += round_winners;

    RoundStats stats;
    stats.new_is_vertices = round_winners;
    stats.is_size_after = is_size;
    stats.frontier_after = frontier;
    stats.seconds = round_timer.ElapsedSeconds();
    res->round_stats.push_back(stats);
    res->rounds++;
    if (options_.observer) Observe(round, round_winners, frontier);
  }

  ExtractIndependentSet(state_, &res->in_set, &res->set_size);
  res->memory.Add("result-bitset", res->in_set.MemoryBytes());
  res->peak_memory_bytes = res->memory.PeakBytes();
  for (const IoStats& io : worker_io_) res->io.MergeFrom(io);
  res->io.sequential_scans += scans_started_;
  return Status::OK();
}

// The sequential reference loop: the same two per-record rules, applied
// in one thread over full passes of the whole file (no pool, no frontier
// skipping). The parallel executor must match this bit for bit.
Status RunReferenceRounds(const std::string& manifest_path, uint64_t n,
                          const MinIdRoundsOptions& options, AlgoResult* res,
                          std::vector<VState>* states) {
  std::vector<VState> state(n, VState::kInitial);
  std::vector<uint32_t> winner_round(n, 0);
  res->memory.Add("state", n * sizeof(VState));
  res->memory.Add("winner-rounds", n * sizeof(uint32_t));

  uint64_t frontier = n;
  uint64_t is_size = 0;
  uint32_t round = 0;
  while (frontier > 0 &&
         (options.max_rounds == 0 || round < options.max_rounds)) {
    ++round;
    WallTimer round_timer;
    {
      ShardedAdjacencyScanner scanner(&res->io);
      SEMIS_RETURN_IF_ERROR(scanner.Open(manifest_path));
      VertexRecordView rec;
      bool has_next = false;
      while (true) {
        SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
        if (!has_next) break;
        if (MinIdProposeRecord(rec, state)) winner_round[rec.id] = round;
      }
    }
    uint64_t round_winners = 0;
    uint64_t survivors = 0;
    {
      ShardedAdjacencyScanner scanner(&res->io);
      SEMIS_RETURN_IF_ERROR(scanner.Open(manifest_path));
      VertexRecordView rec;
      bool has_next = false;
      while (true) {
        SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
        if (!has_next) break;
        if (state[rec.id] != VState::kInitial) continue;
        const VState next = MinIdCommitRecord(rec, round, winner_round);
        state[rec.id] = next;
        if (next == VState::kI) {
          round_winners++;
        } else if (next == VState::kInitial) {
          survivors++;
        }
      }
    }
    if (round_winners == 0) {
      return Status::Corruption(
          "min-id round decided no vertex; the sharded file is missing "
          "records for undecided vertices: " + manifest_path);
    }
    frontier = survivors;
    is_size += round_winners;

    RoundStats stats;
    stats.new_is_vertices = round_winners;
    stats.is_size_after = is_size;
    stats.frontier_after = frontier;
    stats.seconds = round_timer.ElapsedSeconds();
    res->round_stats.push_back(stats);
    res->rounds++;
    if (options.observer) {
      RoundObservation obs;
      obs.round = round;
      obs.frontier_after = frontier;
      obs.winners.reserve(round_winners);
      for (uint64_t v = 0; v < n; ++v) {
        if (winner_round[v] == round) {
          obs.winners.push_back(static_cast<VertexId>(v));
        }
      }
      options.observer(obs);
    }
  }

  ExtractIndependentSet(state, &res->in_set, &res->set_size);
  res->memory.Add("result-bitset", res->in_set.MemoryBytes());
  res->peak_memory_bytes = res->memory.PeakBytes();
  if (states != nullptr) *states = std::move(state);
  return Status::OK();
}

Status RunMinIdRoundsImpl(const std::string& manifest_path,
                          const MinIdRoundsOptions& options,
                          bool force_reference, AlgoResult* result,
                          std::vector<VState>* states) {
  WallTimer timer;
  AlgoResult res;
  // Resolve a journaled-store root so the shard readers open the current
  // epoch's files (same move as the other executors).
  ResolvedShardStore resolved;
  SEMIS_RETURN_IF_ERROR(ResolveShardStore(manifest_path, &resolved, &res.io));
  ShardedAdjacencyManifest manifest;
  SEMIS_RETURN_IF_ERROR(
      ReadShardedAdjacencyManifest(resolved.manifest_path, &manifest, &res.io));

  uint32_t num_threads = options.pipeline.num_threads;
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }

  if (force_reference || num_threads <= 1) {
    // 1 thread IS the sequential reference, not a 1-worker pool.
    SEMIS_RETURN_IF_ERROR(RunReferenceRounds(resolved.manifest_path,
                                             manifest.header.num_vertices,
                                             options, &res, states));
  } else {
    MinIdRoundsRun run(resolved.manifest_path, std::move(manifest), options,
                       num_threads);
    SEMIS_RETURN_IF_ERROR(run.Execute(&res));
    if (states != nullptr) *states = run.TakeStates();
  }
  res.seconds = timer.ElapsedSeconds();
  *result = std::move(res);
  return Status::OK();
}

}  // namespace

Status RunMinIdRounds(const std::string& manifest_path,
                      const MinIdRoundsOptions& options, AlgoResult* result) {
  return RunMinIdRoundsImpl(manifest_path, options, /*force_reference=*/false,
                            result, nullptr);
}

Status RunMinIdRoundsWithStates(const std::string& manifest_path,
                                const MinIdRoundsOptions& options,
                                AlgoResult* result,
                                std::vector<VState>* states) {
  return RunMinIdRoundsImpl(manifest_path, options, /*force_reference=*/false,
                            result, states);
}

Status RunMinIdRoundsReference(const std::string& manifest_path,
                               const MinIdRoundsOptions& options,
                               AlgoResult* result,
                               std::vector<VState>* states) {
  return RunMinIdRoundsImpl(manifest_path, options, /*force_reference=*/true,
                            result, states);
}

}  // namespace semis
