// Copyright (c) the semis authors.
// Shard-native streaming maintenance of an independent set under edge
// updates: the incremental scenario of core/incremental.h lifted onto the
// sharded substrate (SADJS shards + SDELTA overlay logs), so dynamic
// workloads get the same deterministic parallelism as the solve pipeline.
//
// Model: the base graph lives in a sharded adjacency file; updates arrive
// as a stream of edge insertions/deletions. Each update is
//   * applied eagerly to the in-memory membership (an insertion between
//     two set members evicts the larger id, O(1), exactly like
//     IncrementalMis), and
//   * routed to the SDELTA log of every shard holding an endpoint's base
//     record, so each shard log carries the full delta incident to its
//     records and the logs double as a durable redo stream.
//
// Repair() restores maximality with ONE pass over the base shards merged
// with the per-shard delta. The pass commits the exact sequential rule of
// IncrementalMis::Repair strictly in global manifest order while worker
// threads prefetch and decode shards ahead of it through
// ManifestOrderedShardCursor -- the same pipeline (and the same
// determinism contract) as RunParallelGreedy:
//
//   the repaired set is byte-identical for EVERY shard/thread count, and
//   equal to sequential IncrementalMis::Repair on the equivalent
//   monolithic file; num_threads <= 1 is the plain sequential scan.
//
// Compact() folds saturated shards' deltas into the base: each saturated
// shard is rewritten with deletions dropped and insertions appended to
// its records. A cross-shard edge compacts independently on each side --
// the routed log copies make that safe. Compaction never changes the
// effective graph, only where it is stored.
//
// Durability: every multi-file mutation (compaction, re-sort) is an epoch
// commit of the journaled store layout (graph/shard_store.h): the new
// shard, log, and manifest files are staged under `<root>.epoch<E+1>*`
// names (unchanged files are hard-linked, not copied), fsynced, and
// published by atomically replacing the root pointer. A crash at ANY
// point leaves the store resolvable to a consistent epoch; Initialize
// recovers it (falling back one epoch when the current one is torn) and
// garbage-collects orphans. A legacy store (SADM manifest at the root)
// converts to the journaled layout on its first commit.
//
// Resort() restores the global (degree, id) record order that a
// degree-changing compaction invalidated: pending deltas are folded in
// (forced compaction), each shard is sorted into a run file by the
// degree-sort key on the thread pool, and the runs are merged into a
// fresh sharded file -- byte-identical to a fresh unshard -> degree-sort
// -> shard rebuild -- then published through the same epoch commit.
#ifndef SEMIS_CORE_INCREMENTAL_STREAM_H_
#define SEMIS_CORE_INCREMENTAL_STREAM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/pipeline_options.h"
#include "graph/shard_store.h"
#include "graph/sharded_adjacency_file.h"
#include "io/edge_delta_file.h"
#include "io/io_stats.h"
#include "util/bit_vector.h"
#include "util/common.h"
#include "util/status.h"

namespace semis {

/// One update of the edge stream.
struct EdgeUpdate {
  EdgeDeltaOp op = EdgeDeltaOp::kInsert;
  VertexId u = 0;
  VertexId v = 0;

  static EdgeUpdate Insert(VertexId u, VertexId v) {
    return {EdgeDeltaOp::kInsert, u, v};
  }
  static EdgeUpdate Delete(VertexId u, VertexId v) {
    return {EdgeDeltaOp::kDelete, u, v};
  }
};

/// Statistics of a streaming session (cumulative since Initialize).
struct StreamingMisStats {
  uint64_t updates_applied = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  /// Updates that were state no-ops (duplicate insert / duplicate delete)
  /// and were therefore not logged.
  uint64_t redundant_updates = 0;
  /// Vertices evicted by insertions (eager independence maintenance).
  uint64_t evictions = 0;
  /// Repair() passes executed, and vertices they re-added.
  uint64_t repair_passes = 0;
  uint64_t repair_added = 0;
  /// Compact() passes that rewrote at least one shard, and shards
  /// rewritten in total.
  uint64_t compactions = 0;
  uint64_t shards_rewritten = 0;
  /// Resort() passes that republished a degree-sorted base.
  uint64_t resorts = 0;
  /// Initialize() recoveries that had to fall back to the previous epoch
  /// because the current one was torn.
  uint64_t epoch_fallbacks = 0;
  /// Orphaned store files removed by epoch GC (recovery + commits).
  uint64_t orphan_files_removed = 0;
  /// Crash-torn log tails dropped (and rewritten clean) by Initialize:
  /// entries a previous session appended but never covered with a delta
  /// manifest republish, i.e. its unflushed final batch.
  uint64_t recovered_log_tails = 0;
  /// Live (uncompacted) delta entries currently held, summed over shards.
  uint64_t pending_delta_entries = 0;
  /// I/O of the whole session (routing, repair scans, compaction).
  IoStats io;
  /// Peak logical bytes of the maintainer's in-memory structures,
  /// including the repair pipeline's decoded-shard buffer high-water mark.
  size_t peak_memory_bytes = 0;
  /// Wall-clock seconds by stage.
  double apply_seconds = 0.0;
  double repair_seconds = 0.0;
  double compact_seconds = 0.0;
  double resort_seconds = 0.0;
};

/// Maintains an independent set over "sharded base file + SDELTA overlay".
///
/// Concurrency contract: this class holds no mutex on purpose. All
/// public methods are externally serialized per object (MisEngine is the
/// one concurrent caller and serializes them); Repair's internal
/// parallelism hands each worker a private slice and merges after the
/// thread-pool barrier, which is the happens-before edge. See
/// docs/architecture.md ("Static analysis") for the conventions.
class ShardedStreamingMis {
 public:
  ShardedStreamingMis() = default;

  /// Binds the maintainer to the sharded store rooted at `manifest_path`
  /// (a legacy SADM manifest or a journaled SEPR root; see
  /// graph/shard_store.h) and a starting independent set over its BASE
  /// graph. Runs crash recovery first: resolves the root, falls back to
  /// the previous epoch if the current one is torn (making the fallback
  /// durable), and garbage-collects orphaned epoch files. Builds the
  /// vertex-to-shard routing map with one pass over the shards. If an
  /// SDELTA overlay already exists next to the manifest, its logs are
  /// replayed in sequence order on top of `initial_set`, reproducing the
  /// previous session's delta state and eager evictions exactly. Repair
  /// additions are NOT logged, so if the previous session ran Repair()
  /// mid-stream the replayed membership may lag it -- it is still
  /// independent w.r.t. the updated graph, and the next Repair() restores
  /// maximality.
  ///
  /// `options` is the shared pipeline struct: this layer reads
  /// `num_threads` / `decode_block_bytes` / `max_buffered_bytes` (the
  /// Repair pipeline, as in ParallelGreedyOptions -- the repaired set is
  /// independent of all three by construction) and
  /// `compact_threshold_entries`; `num_shards` is ignored (the manifest
  /// fixes it).
  Status Initialize(const std::string& manifest_path,
                    const BitVector& initial_set,
                    const EnginePipelineOptions& options);

  /// Applies a batch of updates in order: eager eviction, delta-state
  /// bookkeeping, and routing to the shard logs (flushed, with the delta
  /// manifest republished, before returning). Self-loops and out-of-range
  /// ids fail the whole batch up front with InvalidArgument -- no partial
  /// application. A duplicate insert (edge already live in the delta) or
  /// duplicate delete is a state no-op and is not logged. When
  /// `compact_threshold_entries` is set, saturated shards are compacted
  /// after the batch.
  Status ApplyBatch(const std::vector<EdgeUpdate>& updates);

  /// Restores maximality with one merged pass over base shards + delta
  /// (see the file comment for the determinism contract). Safe to call at
  /// any time.
  Status Repair();

  /// Rewrites every saturated shard (every shard with a non-empty log
  /// when `force` is set) with its delta folded in and publishes the
  /// result as a new epoch of the journaled store: compacted shards are
  /// written fresh under the next epoch's names, untouched shards and
  /// logs are hard-linked across, compacted logs restart empty, and the
  /// whole file set commits atomically via the root pointer (converting a
  /// legacy store on its first commit). Clears the degree-sorted flag
  /// when a rewrite changed any record, since the global (degree, id)
  /// order can no longer be guaranteed -- then runs Resort() when
  /// `options.auto_resort` is set. A failure before the root flip leaves
  /// both the store and the maintainer untouched (the staged files are
  /// orphans for GC); only a failure in the flip itself wedges.
  Status Compact(bool force = false);

  /// Restores the global (degree, id) record order after degree-changing
  /// compactions cleared the degree-sorted flag. Folds pending deltas in
  /// first (forced compaction), then sorts each shard into a run file (on
  /// the thread pool; one shard per worker) and merges the runs into a
  /// fresh sharded base published as a new epoch. The result is
  /// byte-identical to a fresh unshard -> degree-sort -> shard rebuild of
  /// the same store, for every shard/thread count. No-op when the base is
  /// already degree-sorted. The effective graph and the maintained set
  /// are unchanged.
  Status Resort();

  /// Current membership (independent w.r.t. the updated graph after every
  /// ApplyBatch; additionally maximal right after Repair()).
  const BitVector& set() const { return set_; }

  /// Current |set|.
  uint64_t set_size() const { return set_size_; }

  /// Session statistics so far.
  const StreamingMisStats& stats() const { return stats_; }

  /// The SADJS manifest as of the last Initialize/Compact/Resort.
  const ShardedAdjacencyManifest& manifest() const { return manifest_; }

  /// Where the store root resolved to (epoch numbers, fallback state).
  const ResolvedShardStore& store() const { return store_; }

 private:
  static uint64_t EdgeKey(VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
  }

  Status ValidateUpdate(const EdgeUpdate& update) const;
  // Applies one validated update to the in-memory state; returns true if
  // it changed the delta state (and must be logged).
  bool ApplyToState(const EdgeUpdate& update);
  // Replays existing delta logs on top of the initial set (restart path).
  Status ReplayExistingDelta();
  // Rewrites shard `shard`'s log from pending_[shard] (header + entries).
  Status RewriteShardLog(uint32_t shard);
  // Merges pending_ across shards by sequence number, dropping the second
  // routed copy of cross-shard updates (and validating the copies agree),
  // and calls `fn` once per update in stream order.
  template <typename Fn>
  Status ForEachMergedPendingEntry(Fn&& fn) const;
  // Shard-local merged view of the pending delta, rebuilt per shard
  // during Repair/Compact.
  struct ShardDeltaView {
    std::unordered_set<uint64_t> deleted;
    // Flat inserted adjacency for the shard's records, built by replaying
    // the shard's entries in sequence order.
    std::unordered_map<VertexId, std::vector<VertexId>> inserted_adj;
  };
  void BuildShardDeltaView(uint32_t shard, ShardDeltaView* view) const;
  // The shared Repair commit rule, applied to records strictly in
  // manifest order. `Source` exposes the view-API Next(&view, &has_next).
  template <typename Source>
  Status RepairScan(Source* source, uint64_t* added);
  // Writes shard `shard` with its delta folded in to `out_path` (a staged
  // file of the next epoch).
  Status CompactShard(uint32_t shard, const std::string& out_path,
                      ShardInfo* new_info, uint32_t* max_degree_seen,
                      bool* records_changed);
  // Rebuilds the vertex-to-shard routing map by scanning the shards.
  Status BuildRouteMap();
  // The commit point of an epoch transaction: fsyncs the staged files of
  // epoch `next_epoch`, atomically flips the root pointer, and updates
  // store_/manifest_path_/delta_path_. Every staged path must be in
  // `staged_files`. GC of retired files is the caller's final step (after
  // its in-memory state matches the new epoch). A failure in the flip
  // itself wedges the maintainer -- disk may be either epoch.
  Status PublishEpoch(uint64_t next_epoch,
                      const std::vector<std::string>& staged_files);
  // Epoch GC + orphan accounting (after a successful commit).
  Status CollectStoreGarbage();
  Status ResortInternal();
  // Sorts shard `shard`'s records by the degree-sort key into the run
  // file at `run_path` (u64 key + u32 neighbors per record).
  Status BuildResortRun(uint32_t shard, const std::string& run_path,
                        IoStats* io);
  // Rebuilds inserted_/deleted_ from the pending per-shard entries (after
  // compaction retired some of them).
  Status RebuildDeltaState();
  size_t CurrentMemoryBytes() const;
  void AccountMemory();

  // The store root as given to Initialize (SEPR pointer or legacy SADM).
  std::string root_path_;
  // Where the root resolved: epoch numbers and the serving manifest path.
  ResolvedShardStore store_;
  // The SADM manifest path serving this epoch (== store_.manifest_path).
  std::string manifest_path_;
  std::string delta_path_;
  ShardedAdjacencyManifest manifest_;
  EnginePipelineOptions options_;
  uint64_t n_ = 0;
  // Shard holding each vertex's base record (records are permuted by the
  // degree sort, so this is not derivable from the id). kMaxAdjacencyShards
  // fits comfortably in 16 bits.
  std::vector<uint16_t> shard_of_;
  BitVector set_;
  uint64_t set_size_ = 0;
  // Global delta state (the CURRENT effective delta, deduplicated):
  // effective edges = (base \ deleted_) + inserted_. Same conventions as
  // IncrementalMis: inserted_ may overlap base edges, deleted_ may hold
  // keys the base never had.
  std::unordered_set<uint64_t> inserted_;
  std::unordered_set<uint64_t> deleted_;
  // Pending (uncompacted) entries per shard, in sequence order -- the
  // in-memory mirror of the on-disk logs.
  std::vector<std::vector<EdgeDeltaEntry>> pending_;
  uint64_t next_sequence_ = 0;
  StreamingMisStats stats_;
  bool initialized_ = false;
  // True while Resort() runs its internal forced compaction, so that
  // compaction does not recurse into auto-resort.
  bool in_resort_ = false;
  // Set when a flush/compaction failed after mutating state, leaving the
  // in-memory maintainer ahead of (or torn against) the on-disk overlay.
  // Further mutations are refused; re-Initialize to recover from disk.
  bool wedged_ = false;
};

}  // namespace semis

#endif  // SEMIS_CORE_INCREMENTAL_STREAM_H_
