// Copyright (c) the semis authors.
// Algorithm 1: the semi-external greedy algorithm. One sequential scan of
// an adjacency file; a vertex whose state is still INITIAL when its record
// arrives joins the independent set and lazily knocks out its (unvisited)
// neighbors. On a degree-sorted file this is the paper's GREEDY; on an
// id-ordered file it is the paper's BASELINE (same code, weaker ordering).
#ifndef SEMIS_CORE_GREEDY_H_
#define SEMIS_CORE_GREEDY_H_

#include <string>
#include <vector>

#include "core/mis_common.h"
#include "graph/adjacency_file.h"
#include "util/status.h"

namespace semis {

/// Options for the greedy scan.
struct GreedyOptions {
  /// When true, a non-degree-sorted input file is rejected so callers
  /// cannot silently run GREEDY quality experiments on BASELINE input.
  bool require_degree_sorted = false;
};

/// Lines 3-8 of Algorithm 1 -- THE commit rule, shared by the sequential
/// scan and the shard-pipelined executor (core/parallel_greedy.h) so the
/// byte-identical contract between them is enforced by construction: a
/// still-INITIAL vertex joins the set and its INITIAL neighbors become
/// non-IS. (The paper's pseudo-code types line 8 as "IS"; the
/// surrounding text and the algorithm's correctness require non-IS.)
inline void GreedyCommitRecord(const VertexRecordView& rec,
                               std::vector<VState>* state) {
  std::vector<VState>& s = *state;
  if (s[rec.id] != VState::kInitial) return;
  s[rec.id] = VState::kI;
  for (uint32_t i = 0; i < rec.degree; ++i) {
    if (s[rec.neighbors[i]] == VState::kInitial) {
      s[rec.neighbors[i]] = VState::kN;
    }
  }
}

/// The scan skeleton of Algorithm 1, shared by the monolithic path
/// (RunGreedyWithStates) and both paths of the sharded executor: the
/// degree-sorted gate (one error text everywhere), the O(|V|) state-array
/// init (lines 1-2), and one pass applying GreedyCommitRecord to every
/// record. `Source` is any open record source exposing header() and the
/// view-API Next(&view, &has_next) (graph/record_block.h) -- the paths
/// differ only in where records come from: the monolithic scanner, the
/// sequential sharded scanner, or the block-decode cursor. `path` is
/// quoted in the rejection error.
template <typename Source>
Status RunGreedyScan(Source* source, const std::string& path,
                     const GreedyOptions& options, AlgoResult* res,
                     std::vector<VState>* state_out) {
  if (options.require_degree_sorted && !source->header().IsDegreeSorted()) {
    return Status::InvalidArgument(
        "greedy requires a degree-sorted adjacency file: " + path);
  }
  const uint64_t n = source->header().num_vertices;
  std::vector<VState> state(n, VState::kInitial);
  res->memory.Add("state", n * sizeof(VState));
  VertexRecordView rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(source->Next(&rec, &has_next));
    if (!has_next) break;
    GreedyCommitRecord(rec, &state);
  }
  *state_out = std::move(state);
  return Status::OK();
}

/// Runs Algorithm 1 over the adjacency file at `path`.
/// On return `result->in_set` holds a maximal independent set.
Status RunGreedy(const std::string& path, const GreedyOptions& options,
                 AlgoResult* result);

/// As RunGreedy, but additionally exposes the final state array
/// (kI / kN per vertex) for callers that feed a swap algorithm.
Status RunGreedyWithStates(const std::string& path,
                           const GreedyOptions& options, AlgoResult* result,
                           std::vector<VState>* states);

}  // namespace semis

#endif  // SEMIS_CORE_GREEDY_H_
