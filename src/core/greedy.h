// Copyright (c) the semis authors.
// Algorithm 1: the semi-external greedy algorithm. One sequential scan of
// an adjacency file; a vertex whose state is still INITIAL when its record
// arrives joins the independent set and lazily knocks out its (unvisited)
// neighbors. On a degree-sorted file this is the paper's GREEDY; on an
// id-ordered file it is the paper's BASELINE (same code, weaker ordering).
#ifndef SEMIS_CORE_GREEDY_H_
#define SEMIS_CORE_GREEDY_H_

#include <string>
#include <vector>

#include "core/mis_common.h"
#include "util/status.h"

namespace semis {

/// Options for the greedy scan.
struct GreedyOptions {
  /// When true, a non-degree-sorted input file is rejected so callers
  /// cannot silently run GREEDY quality experiments on BASELINE input.
  bool require_degree_sorted = false;
};

/// Runs Algorithm 1 over the adjacency file at `path`.
/// On return `result->in_set` holds a maximal independent set.
Status RunGreedy(const std::string& path, const GreedyOptions& options,
                 AlgoResult* result);

/// As RunGreedy, but additionally exposes the final state array
/// (kI / kN per vertex) for callers that feed a swap algorithm.
Status RunGreedyWithStates(const std::string& path,
                           const GreedyOptions& options, AlgoResult* result,
                           std::vector<VState>* states);

}  // namespace semis

#endif  // SEMIS_CORE_GREEDY_H_
