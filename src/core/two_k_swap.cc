#include "core/two_k_swap.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "graph/adjacency_file.h"
#include "util/timer.h"

namespace semis {

namespace {

// Normalized key of an IS pair {w1, w2}.
uint64_t PairKey(VertexId a, VertexId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}
VertexId PairFirst(uint64_t key) { return static_cast<VertexId>(key >> 32); }
VertexId PairSecond(uint64_t key) {
  return static_cast<VertexId>(key & 0xFFFFFFFFull);
}

class TwoKSwapRun {
 public:
  TwoKSwapRun(const TwoKSwapOptions& options, uint64_t n)
      : options_(options),
        n_(n),
        state_(n, VState::kN),
        isn1_(n, kInvalidVertex),
        isn2_(n, kInvalidVertex),
        stamp_(n, 0) {}

  Status Execute(AdjacencyFileScanner* scanner, const BitVector& initial_set,
                 AlgoResult* res);

 private:
  struct Bucket {
    std::vector<VertexId> anchors;
    std::vector<std::pair<VertexId, VertexId>> pairs;
    bool freed = false;
  };

  bool IsAnchor(VertexId u) const { return isn2_[u] != kInvalidVertex; }

  // --- ISN^-1 counter for single-ISN vertices (1-2 skeleton test). As in
  // one-k-swap, the count lives in the (unused) isn1_ slot of IS vertices.
  void CounterReset(VertexId w) { isn1_[w] = 0; }
  void CounterAdd(VertexId w) { isn1_[w]++; }
  void CounterRemove(VertexId w) {
    if (isn1_[w] > 0) isn1_[w]--;
  }
  uint32_t CounterGet(VertexId w) const { return isn1_[w]; }

  // Transitions u out of A, maintaining the single-ISN counter.
  void LeaveA(VertexId u) {
    if (!IsAnchor(u) && isn1_[u] != kInvalidVertex &&
        state_[isn1_[u]] == VState::kI) {
      CounterRemove(isn1_[u]);
    }
  }

  // Marks u's neighborhood in the stamp array; call once per record.
  void StampNeighbors(const VertexRecord& rec) {
    if (++token_ == 0) {  // wrapped: clear and restart
      std::fill(stamp_.begin(), stamp_.end(), 0);
      token_ = 1;
    }
    for (uint32_t i = 0; i < rec.degree; ++i) stamp_[rec.neighbors[i]] = token_;
  }
  bool Adjacent(VertexId v) const { return stamp_[v] == token_; }

  void ClearScStructures() {
    buckets_.clear();
    keys_with_w_.clear();
    sc_vertices_this_scan_ = 0;
  }

  Status InitialLabelScan(AdjacencyFileScanner* scanner);
  Status PreSwapScan(AdjacencyFileScanner* scanner, RoundStats* round);
  void PreSwapVertex(const VertexRecord& rec, RoundStats* round);
  Status SwapScan(AdjacencyFileScanner* scanner, RoundStats* round,
                  bool* can_swap);
  Status PostSwapScan(AdjacencyFileScanner* scanner, RoundStats* round);
  Status CompletionScan(AdjacencyFileScanner* scanner);

  // Labels u from its current IS neighborhood (count, e1, e2).
  void LabelFromIsNeighbors(VertexId u, uint32_t count, VertexId e1,
                            VertexId e2) {
    if (count == 1) {
      state_[u] = VState::kA;
      isn1_[u] = e1;
      isn2_[u] = kInvalidVertex;
      CounterAdd(e1);
    } else if (count == 2) {
      state_[u] = VState::kA;
      isn1_[u] = e1;
      isn2_[u] = e2;
    } else {
      state_[u] = VState::kN;
      isn1_[u] = kInvalidVertex;
      isn2_[u] = kInvalidVertex;
    }
  }

  const TwoKSwapOptions& options_;
  const uint64_t n_;
  std::vector<VState> state_;
  std::vector<VertexId> isn1_;
  std::vector<VertexId> isn2_;

  // Per-pre-swap-scan SC structures (freed after every scan). Only
  // anchors (|ISN| = 2) are registered; a single-ISN vertex enters SC
  // solely as the second member of a candidate pair, matching the
  // paper's storage (and Lemma 6's |SC| accounting -- registering every
  // visited single would blow |SC| past the paper's 0.13|V|).
  std::unordered_map<uint64_t, Bucket> buckets_;
  std::unordered_map<VertexId, std::vector<uint64_t>> keys_with_w_;
  uint64_t sc_vertices_this_scan_ = 0;
  uint64_t sc_peak_vertices_ = 0;
  size_t sc_peak_bytes_ = 0;

  // Neighborhood stamping for O(1) adjacency tests against the record in
  // hand.
  std::vector<uint32_t> stamp_;
  uint32_t token_ = 0;

  uint64_t is_size_ = 0;
};

Status TwoKSwapRun::InitialLabelScan(AdjacencyFileScanner* scanner) {
  // Algorithm 3 lines 1-3: one or two IS neighbors -> A.
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner->Next(&rec, &has_next));
    if (!has_next) break;
    if (state_[rec.id] == VState::kI) continue;
    VertexId e1 = kInvalidVertex, e2 = kInvalidVertex;
    uint32_t count = 0;
    for (uint32_t i = 0; i < rec.degree && count < 3; ++i) {
      VertexId nb = rec.neighbors[i];
      if (state_[nb] == VState::kI) {
        if (count == 0) {
          e1 = nb;
        } else if (count == 1) {
          e2 = nb;
        }
        count++;
      }
    }
    LabelFromIsNeighbors(rec.id, count, e1, e2);
  }
  return Status::OK();
}

void TwoKSwapRun::PreSwapVertex(const VertexRecord& rec, RoundStats* round) {
  // Algorithm 4, in order:
  //   line 1-2 : add a swap-candidate pair to SC(w1, w2) if one exists;
  //   line 3-4 : conflict (a P neighbor) -> C;
  //   line 5-8 : 2-3 swap skeleton -> three P, two R, free the bucket;
  //   line 9-10: 1-2 swap skeleton (single-ISN case, counting trick);
  //   line 11-12: all ISN vertices already R -> join as P.
  const VertexId u = rec.id;
  StampNeighbors(rec);

  bool has_p_neighbor = false;
  uint32_t x1 = 0;  // A neighbors sharing our single anchor (1-2 test)
  const bool anchor = IsAnchor(u);
  const VertexId w1 = isn1_[u];
  const VertexId w2 = isn2_[u];
  for (uint32_t i = 0; i < rec.degree; ++i) {
    const VertexId nb = rec.neighbors[i];
    if (state_[nb] == VState::kP) {
      has_p_neighbor = true;
      break;
    }
    if (!anchor && state_[nb] == VState::kA && !IsAnchor(nb) &&
        isn1_[nb] == w1) {
      x1++;
    }
  }

  // ---- Line 1-2: register u in SC and add a pair when possible.
  // Definition 2 requires both IS vertices to still be in the set.
  if (anchor && state_[w1] == VState::kI && state_[w2] == VState::kI) {
    const uint64_t key = PairKey(w1, w2);
    auto [it, inserted] = buckets_.try_emplace(key);
    Bucket& bucket = it->second;
    if (inserted) {
      keys_with_w_[w1].push_back(key);
      keys_with_w_[w2].push_back(key);
    }
    if (bucket.pairs.size() < options_.max_pairs_per_bucket) {
      // Partner search among earlier anchors of the same pair. Every
      // candidate is checked against u's adjacency list (in hand) --
      // Definition 2's no-edge test.
      VertexId partner = kInvalidVertex;
      for (VertexId v : bucket.anchors) {
        if (v != u && state_[v] == VState::kA && !Adjacent(v)) {
          partner = v;
          break;
        }
      }
      if (partner != kInvalidVertex) bucket.pairs.emplace_back(u, partner);
    }
    bucket.anchors.push_back(u);
    sc_vertices_this_scan_++;
  } else if (!anchor && state_[w1] == VState::kI) {
    // A single can complete a pair with an earlier anchor of any bucket
    // containing w1 (Definition 2 with u2 = u). Singles are not
    // registered themselves: they enter SC only as pair members.
    auto kit = keys_with_w_.find(w1);
    if (kit != keys_with_w_.end()) {
      for (uint64_t key : kit->second) {
        Bucket& bucket = buckets_[key];
        if (bucket.freed ||
            bucket.pairs.size() >= options_.max_pairs_per_bucket) {
          continue;
        }
        VertexId partner = kInvalidVertex;
        for (VertexId v : bucket.anchors) {
          if (v != u && state_[v] == VState::kA && !Adjacent(v)) {
            partner = v;
            break;
          }
        }
        if (partner != kInvalidVertex) {
          bucket.pairs.emplace_back(partner, u);  // anchor first
          sc_vertices_this_scan_++;               // u joins SC via the pair
          break;
        }
      }
    }
  }

  // ---- Line 3-4: conflict.
  if (has_p_neighbor) {
    LeaveA(u);
    state_[u] = VState::kC;
    round->conflicts++;
    return;
  }

  // ---- Line 5-8: 2-3 swap skeleton with u as the third vertex.
  {
    const uint64_t single_key_storage[1] = {anchor ? PairKey(w1, w2) : 0};
    const std::vector<uint64_t>* keys = nullptr;
    std::vector<uint64_t> one_key;
    if (anchor) {
      if (state_[w1] == VState::kI && state_[w2] == VState::kI) {
        one_key.assign(single_key_storage, single_key_storage + 1);
        keys = &one_key;
      }
    } else {
      auto kit = keys_with_w_.find(w1);
      if (kit != keys_with_w_.end()) keys = &kit->second;
    }
    if (keys != nullptr) {
      for (uint64_t key : *keys) {
        auto bit = buckets_.find(key);
        if (bit == buckets_.end() || bit->second.freed) continue;
        const VertexId kw1 = PairFirst(key), kw2 = PairSecond(key);
        if (state_[kw1] != VState::kI || state_[kw2] != VState::kI) continue;
        for (const auto& [v1, v2] : bit->second.pairs) {
          if (v1 == u || v2 == u) continue;
          if (state_[v1] != VState::kA || state_[v2] != VState::kA) continue;
          if (Adjacent(v1) || Adjacent(v2)) continue;
          // Fire: (v1, v2, u) replace (kw1, kw2).
          LeaveA(u);
          LeaveA(v1);
          LeaveA(v2);
          state_[u] = state_[v1] = state_[v2] = VState::kP;
          state_[kw1] = VState::kR;
          state_[kw2] = VState::kR;
          bit->second.freed = true;  // Algorithm 4 line 8
          round->two_k_swaps++;
          return;
        }
      }
    }
  }

  // ---- Line 9-10: 1-2 swap skeleton (single-ISN vertices only; an anchor
  // cannot enter via a 1-k swap because its second IS neighbor stays).
  if (!anchor && state_[w1] == VState::kI && CounterGet(w1) >= x1 + 2) {
    LeaveA(u);
    state_[u] = VState::kP;
    state_[w1] = VState::kR;
    round->one_k_swaps++;
    return;
  }

  // ---- Line 11-12: every ISN vertex already retrograde -> join.
  const bool all_r =
      anchor ? (state_[w1] == VState::kR && state_[w2] == VState::kR)
             : (state_[w1] == VState::kR);
  if (all_r) {
    state_[u] = VState::kP;
    round->follower_joins++;
  }
}

Status TwoKSwapRun::PreSwapScan(AdjacencyFileScanner* scanner,
                                RoundStats* round) {
  ClearScStructures();
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner->Next(&rec, &has_next));
    if (!has_next) break;
    if (state_[rec.id] != VState::kA) continue;
    PreSwapVertex(rec, round);
  }
  sc_peak_vertices_ = std::max(sc_peak_vertices_, sc_vertices_this_scan_);
  size_t bytes = 0;
  // Order-insensitive sums for memory accounting.
  // semis-lint: allow(unordered-iteration)
  for (const auto& kv : buckets_) {
    bytes += sizeof(kv) + kv.second.anchors.capacity() * sizeof(VertexId) +
             kv.second.pairs.capacity() * sizeof(std::pair<VertexId, VertexId>);
  }
  // semis-lint: allow(unordered-iteration)
  for (const auto& kv : keys_with_w_) {
    bytes += sizeof(kv) + kv.second.capacity() * sizeof(uint64_t);
  }
  sc_peak_bytes_ = std::max(sc_peak_bytes_, bytes);
  ClearScStructures();
  return Status::OK();
}

Status TwoKSwapRun::SwapScan(AdjacencyFileScanner* scanner, RoundStats* round,
                             bool* can_swap) {
  // Algorithm 3 lines 10-14, realized as a full file scan -- the third of
  // the paper's "three iterations of scan" per round. The scan is what
  // makes simultaneous skeleton promotions sound: a 2-3 skeleton promotes
  // partner vertices that were scanned EARLIER in the pre-swap pass, and
  // such a partner may have acquired a P neighbor (from another skeleton)
  // after its own conflict check. Committing P -> I in file order with
  // the adjacency list in hand lets us deny any P that already has a
  // committed I neighbor, so the committed set stays independent. (A
  // pre-existing I neighbor is impossible: an A vertex's only IS
  // neighbors are its ISN entries, which are R by now.)
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner->Next(&rec, &has_next));
    if (!has_next) break;
    const VertexId u = rec.id;
    if (state_[u] == VState::kR) {
      state_[u] = VState::kN;
      isn1_[u] = kInvalidVertex;
      isn2_[u] = kInvalidVertex;
      round->removed_is_vertices++;
      is_size_--;
      *can_swap = true;
    } else if (state_[u] == VState::kP) {
      bool denied = false;
      for (uint32_t i = 0; i < rec.degree; ++i) {
        if (state_[rec.neighbors[i]] == VState::kI) {
          denied = true;
          break;
        }
      }
      if (denied) {
        state_[u] = VState::kC;  // lost the race; relabeled in post-swap
        round->denied_promotions++;
      } else {
        state_[u] = VState::kI;
        isn1_[u] = 0;  // fresh ISN^-1 counter
        isn2_[u] = kInvalidVertex;
        round->new_is_vertices++;
        is_size_++;
      }
    }
  }
  return Status::OK();
}

Status TwoKSwapRun::PostSwapScan(AdjacencyFileScanner* scanner,
                                 RoundStats* round) {
  // Algorithm 3 lines 15-23. Counters are rebuilt: zero them first.
  for (uint64_t v = 0; v < n_; ++v) {
    if (state_[v] == VState::kI) CounterReset(static_cast<VertexId>(v));
  }
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner->Next(&rec, &has_next));
    if (!has_next) break;
    const VertexId u = rec.id;
    if (state_[u] != VState::kC && state_[u] != VState::kA &&
        state_[u] != VState::kN) {
      continue;
    }
    // Lines 16-20: relabel from the current IS neighborhood.
    VertexId e1 = kInvalidVertex, e2 = kInvalidVertex;
    uint32_t count = 0;
    for (uint32_t i = 0; i < rec.degree && count < 3; ++i) {
      VertexId nb = rec.neighbors[i];
      if (state_[nb] == VState::kI) {
        if (count == 0) {
          e1 = nb;
        } else if (count == 1) {
          e2 = nb;
        }
        count++;
      }
    }
    LabelFromIsNeighbors(u, count, e1, e2);
    // Lines 21-23: 0<->1 swap.
    if (state_[u] == VState::kN) {
      bool all_c_or_n = true;
      for (uint32_t i = 0; i < rec.degree; ++i) {
        const VState s = state_[rec.neighbors[i]];
        if (s != VState::kC && s != VState::kN) {
          all_c_or_n = false;
          break;
        }
      }
      if (all_c_or_n) {
        state_[u] = VState::kI;
        CounterReset(u);
        isn2_[u] = kInvalidVertex;
        round->zero_one_swaps++;
        round->new_is_vertices++;
        is_size_++;
      }
    }
  }
  return Status::OK();
}

Status TwoKSwapRun::CompletionScan(AdjacencyFileScanner* scanner) {
  // Same completion rule as one-k-swap (see one_k_swap.cc): after
  // convergence, any vertex with no IS neighbor can join safely.
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner->Next(&rec, &has_next));
    if (!has_next) break;
    if (state_[rec.id] == VState::kI) continue;
    bool has_is_neighbor = false;
    for (uint32_t i = 0; i < rec.degree; ++i) {
      if (state_[rec.neighbors[i]] == VState::kI) {
        has_is_neighbor = true;
        break;
      }
    }
    if (!has_is_neighbor) {
      state_[rec.id] = VState::kI;
      is_size_++;
    }
  }
  return Status::OK();
}

Status TwoKSwapRun::Execute(AdjacencyFileScanner* scanner,
                            const BitVector& initial_set, AlgoResult* res) {
  res->memory.Add("state", n_ * sizeof(VState));
  res->memory.Add("isn", 2 * n_ * sizeof(VertexId));
  res->memory.Add("stamp", n_ * sizeof(uint32_t));

  for (uint64_t v = 0; v < n_; ++v) {
    if (initial_set.Test(v)) {
      state_[v] = VState::kI;
      CounterReset(static_cast<VertexId>(v));
      is_size_++;
    }
  }
  SEMIS_RETURN_IF_ERROR(InitialLabelScan(scanner));
  auto observe = [&](const char* phase, uint64_t round) {
    if (options_.observer) options_.observer(phase, round, state_);
  };
  observe("init", 0);

  bool can_swap = true;
  uint64_t stalled_rounds = 0;
  while (can_swap &&
         (options_.max_rounds == 0 || res->rounds < options_.max_rounds)) {
    can_swap = false;
    const uint64_t size_before = is_size_;
    RoundStats round;
    WallTimer round_timer;
    SEMIS_RETURN_IF_ERROR(scanner->Rewind());
    SEMIS_RETURN_IF_ERROR(PreSwapScan(scanner, &round));
    observe("pre-swap", res->rounds);
    SEMIS_RETURN_IF_ERROR(scanner->Rewind());
    SEMIS_RETURN_IF_ERROR(SwapScan(scanner, &round, &can_swap));
    observe("swap", res->rounds);
    SEMIS_RETURN_IF_ERROR(scanner->Rewind());
    SEMIS_RETURN_IF_ERROR(PostSwapScan(scanner, &round));
    observe("post-swap", res->rounds);
    round.is_size_after = is_size_;
    round.seconds = round_timer.ElapsedSeconds();
    res->round_stats.push_back(round);
    res->rounds++;
    res->memory.Set("sc", sc_peak_bytes_);
    // Denied promotions can make an individual round net-neutral; a run
    // of gainless rounds means the remaining skeletons keep losing the
    // same races, so stop rather than oscillate.
    stalled_rounds = is_size_ > size_before ? 0 : stalled_rounds + 1;
    if (options_.stall_round_limit > 0 &&
        stalled_rounds >= options_.stall_round_limit) {
      break;
    }
  }

  if (options_.final_maximality_pass) {
    SEMIS_RETURN_IF_ERROR(scanner->Rewind());
    SEMIS_RETURN_IF_ERROR(CompletionScan(scanner));
    observe("completion", res->rounds);
  }

  ExtractIndependentSet(state_, &res->in_set, &res->set_size);
  res->memory.Add("result-bitset", res->in_set.MemoryBytes());
  res->peak_memory_bytes = res->memory.PeakBytes();
  res->sc_peak_vertices = sc_peak_vertices_;
  return Status::OK();
}

}  // namespace

Status RunTwoKSwap(const std::string& path, const BitVector& initial_set,
                   const TwoKSwapOptions& options, AlgoResult* result) {
  WallTimer timer;
  AlgoResult res;
  AdjacencyFileScanner scanner(&res.io);
  SEMIS_RETURN_IF_ERROR(scanner.Open(path));
  const uint64_t n = scanner.header().num_vertices;
  if (initial_set.size() != n) {
    return Status::InvalidArgument(
        "initial set size does not match graph vertex count");
  }
  TwoKSwapRun run(options, n);
  SEMIS_RETURN_IF_ERROR(run.Execute(&scanner, initial_set, &res));
  res.seconds = timer.ElapsedSeconds();
  *result = std::move(res);
  return Status::OK();
}

}  // namespace semis
