// Copyright (c) the semis authors.
// Minimum vertex cover via maximum independent set -- the first of the
// "other graph problems" the paper's conclusion proposes to attack with
// the semi-external machinery (V \ IS is a vertex cover, and the smaller
// the cover the larger the IS, so near-optimal MIS gives near-optimal VC).
#ifndef SEMIS_CORE_VERTEX_COVER_H_
#define SEMIS_CORE_VERTEX_COVER_H_

#include <string>

#include "core/solver.h"
#include "io/io_stats.h"
#include "util/bit_vector.h"
#include "util/status.h"

namespace semis {

/// Result of a semi-external vertex-cover computation.
struct VertexCoverResult {
  /// Membership bit per vertex id (true = in the cover).
  BitVector cover;
  /// |cover| = |V| - |independent set|.
  uint64_t cover_size = 0;
  /// The underlying MIS run (timings, I/O, memory).
  SolveResult mis;
};

/// Computes a small vertex cover of the graph at `adjacency_path` as the
/// complement of the Solver's independent set.
Status ComputeVertexCoverFile(const std::string& adjacency_path,
                              const SolverOptions& options,
                              VertexCoverResult* result);

/// Verifies with one sequential scan that every edge has at least one
/// endpoint in `cover`. `*uncovered_edges` counts violations (0 = valid).
Status VerifyVertexCoverFile(const std::string& adjacency_path,
                             const BitVector& cover,
                             uint64_t* uncovered_edges,
                             IoStats* stats = nullptr);

}  // namespace semis

#endif  // SEMIS_CORE_VERTEX_COVER_H_
