#include "core/verify.h"

#include "graph/adjacency_file.h"

namespace semis {

Status VerifyIndependentSetFile(const std::string& adjacency_path,
                                const BitVector& set, VerifyResult* result,
                                IoStats* stats) {
  AdjacencyFileScanner scanner(stats);
  SEMIS_RETURN_IF_ERROR(scanner.Open(adjacency_path));
  if (scanner.header().num_vertices != set.size()) {
    return Status::InvalidArgument("set size != graph vertex count");
  }
  VerifyResult r;
  r.independent = true;
  r.maximal = true;
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    const bool in = set.Test(rec.id);
    bool has_set_neighbor = false;
    for (uint32_t i = 0; i < rec.degree; ++i) {
      if (set.Test(rec.neighbors[i])) {
        has_set_neighbor = true;
        if (in && r.independent) {
          r.independent = false;
          r.witness_u = rec.id;
          r.witness_v = rec.neighbors[i];
        }
      }
    }
    if (!in && !has_set_neighbor && r.maximal) {
      r.maximal = false;
      if (r.witness_u == kInvalidVertex) r.witness_u = rec.id;
    }
  }
  *result = r;
  return Status::OK();
}

VerifyResult VerifyIndependentSet(const Graph& graph, const BitVector& set) {
  VerifyResult r;
  r.independent = true;
  r.maximal = true;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const bool in = set.Test(v);
    bool has_set_neighbor = false;
    for (VertexId u : graph.Neighbors(v)) {
      if (set.Test(u)) {
        has_set_neighbor = true;
        if (in && r.independent) {
          r.independent = false;
          r.witness_u = v;
          r.witness_v = u;
        }
      }
    }
    if (!in && !has_set_neighbor && r.maximal) {
      r.maximal = false;
      if (r.witness_u == kInvalidVertex) r.witness_u = v;
    }
  }
  return r;
}

}  // namespace semis
