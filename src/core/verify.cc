#include "core/verify.h"

#include "graph/adjacency_file.h"
#include "graph/sharded_adjacency_file.h"

namespace semis {

namespace {

// One streaming verification pass; `Source` is any open record source
// exposing header() and the view-API Next(&view, &has_next) -- the
// monolithic and the sharded scanner yield the same record stream, so the
// check is shared.
template <typename Source>
Status VerifyScan(Source* scanner, const BitVector& set,
                  VerifyResult* result) {
  if (scanner->header().num_vertices != set.size()) {
    return Status::InvalidArgument("set size != graph vertex count");
  }
  VerifyResult r;
  r.independent = true;
  r.maximal = true;
  VertexRecordView rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner->Next(&rec, &has_next));
    if (!has_next) break;
    const bool in = set.Test(rec.id);
    bool has_set_neighbor = false;
    for (uint32_t i = 0; i < rec.degree; ++i) {
      if (set.Test(rec.neighbors[i])) {
        has_set_neighbor = true;
        if (in && r.independent) {
          r.independent = false;
          r.witness_u = rec.id;
          r.witness_v = rec.neighbors[i];
        }
      }
    }
    if (!in && !has_set_neighbor && r.maximal) {
      r.maximal = false;
      if (r.witness_u == kInvalidVertex) r.witness_u = rec.id;
    }
  }
  *result = r;
  return Status::OK();
}

}  // namespace

Status VerifyIndependentSetFile(const std::string& adjacency_path,
                                const BitVector& set, VerifyResult* result,
                                IoStats* stats) {
  AdjacencyFileScanner scanner(stats);
  SEMIS_RETURN_IF_ERROR(scanner.Open(adjacency_path));
  return VerifyScan(&scanner, set, result);
}

Status VerifyIndependentSetShardedFile(const std::string& manifest_path,
                                       const BitVector& set,
                                       VerifyResult* result, IoStats* stats) {
  ShardedAdjacencyScanner scanner(stats);
  SEMIS_RETURN_IF_ERROR(scanner.Open(manifest_path));
  return VerifyScan(&scanner, set, result);
}

VerifyResult VerifyIndependentSet(const Graph& graph, const BitVector& set) {
  VerifyResult r;
  r.independent = true;
  r.maximal = true;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const bool in = set.Test(v);
    bool has_set_neighbor = false;
    for (VertexId u : graph.Neighbors(v)) {
      if (set.Test(u)) {
        has_set_neighbor = true;
        if (in && r.independent) {
          r.independent = false;
          r.witness_u = v;
          r.witness_v = u;
        }
      }
    }
    if (!in && !has_set_neighbor && r.maximal) {
      r.maximal = false;
      if (r.witness_u == kInvalidVertex) r.witness_u = v;
    }
  }
  return r;
}

}  // namespace semis
