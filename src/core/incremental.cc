#include "core/incremental.h"

#include "graph/adjacency_file.h"

namespace semis {

Status IncrementalMis::Initialize(const std::string& adjacency_path,
                                  const BitVector& initial_set) {
  AdjacencyFileScanner scanner(nullptr);
  SEMIS_RETURN_IF_ERROR(scanner.Open(adjacency_path));
  if (scanner.header().num_vertices != initial_set.size()) {
    return Status::InvalidArgument("set size != graph vertex count");
  }
  path_ = adjacency_path;
  n_ = scanner.header().num_vertices;
  set_ = initial_set;
  set_size_ = set_.Count();
  inserted_.clear();
  deleted_.clear();
  inserted_adj_.clear();
  updates_ = 0;
  pending_evictions_ = 0;
  return Status::OK();
}

Status IncrementalMis::InsertEdge(VertexId u, VertexId v) {
  if (u == v) return Status::InvalidArgument("self-loop insertion");
  if (u >= n_ || v >= n_) {
    return Status::InvalidArgument("vertex id out of range");
  }
  const uint64_t key = EdgeKey(u, v);
  updates_++;
  // Record every insert in the delta, whether or not the base file also
  // holds the edge -- without scanning the base we cannot know, and a
  // delta insert overlapping a live base edge is harmless (Repair treats
  // (base \ deleted) + inserted as the effective edge set). What is NOT
  // harmless is assuming an insert that cancels a pending delete must be
  // a base edge: if the delete itself followed a duplicate insert of a
  // base edge, that assumption silently dropped the edge from the delta.
  deleted_.erase(key);
  if (inserted_.insert(key).second) {
    inserted_adj_[u].push_back(v);
    inserted_adj_[v].push_back(u);
  }
  // Eager independence maintenance.
  if (set_.Test(u) && set_.Test(v)) {
    const VertexId evicted = u > v ? u : v;
    set_.Clear(evicted);
    set_size_--;
    pending_evictions_++;
  }
  return Status::OK();
}

Status IncrementalMis::DeleteEdge(VertexId u, VertexId v) {
  if (u == v) return Status::InvalidArgument("self-loop deletion");
  if (u >= n_ || v >= n_) {
    return Status::InvalidArgument("vertex id out of range");
  }
  const uint64_t key = EdgeKey(u, v);
  updates_++;
  if (inserted_.erase(key) > 0) {
    // Remove from the delta adjacency (swap-erase).
    for (VertexId a : {u, v}) {
      VertexId b = (a == u) ? v : u;
      auto& vec = inserted_adj_[a];
      for (size_t i = 0; i < vec.size(); ++i) {
        if (vec[i] == b) {
          vec[i] = vec.back();
          vec.pop_back();
          break;
        }
      }
    }
  }
  // Always record the delete. If the base file also holds this edge --
  // possible even when the delete cancels a delta insert, because inserts
  // may duplicate base edges -- the entry masks the base copy during
  // Repair's merge scan; when the base does not hold it, the entry is
  // inert. Dropping it only when the delta insert existed double-counted
  // duplicate inserts and left the base copy alive after its deletion.
  deleted_.insert(key);
  // A deletion can only open a maximality gap; Repair() closes it.
  return Status::OK();
}

Status IncrementalMis::Repair() {
  AdjacencyFileScanner scanner(nullptr);
  SEMIS_RETURN_IF_ERROR(scanner.Open(path_));
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    const VertexId u = rec.id;
    if (set_.Test(u)) continue;
    bool has_set_neighbor = false;
    for (uint32_t i = 0; i < rec.degree && !has_set_neighbor; ++i) {
      const VertexId nb = rec.neighbors[i];
      if (set_.Test(nb) && deleted_.find(EdgeKey(u, nb)) == deleted_.end()) {
        has_set_neighbor = true;
      }
    }
    if (!has_set_neighbor) {
      auto it = inserted_adj_.find(u);
      if (it != inserted_adj_.end()) {
        for (VertexId nb : it->second) {
          if (set_.Test(nb)) {
            has_set_neighbor = true;
            break;
          }
        }
      }
    }
    if (!has_set_neighbor) {
      // Adding in scan order keeps independence: later vertices observe
      // this addition through set_.
      set_.Set(u);
      set_size_++;
    }
  }
  pending_evictions_ = 0;
  return Status::OK();
}

}  // namespace semis
