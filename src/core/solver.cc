#include "core/solver.h"

#include "graph/graph_io.h"
#include "io/scratch.h"

namespace semis {

// Both entry points are one-shot engine sessions: Open runs the full
// stage pipeline (the code that used to live here, deduplicated into
// MisEngine::RunShardPipeline and friends) and the result is copied out
// before the engine -- and its scratch intermediates -- are torn down.

Status Solver::SolveFile(const std::string& adjacency_path,
                         SolveResult* result) {
  MisEngine engine(options_);
  SEMIS_RETURN_IF_ERROR(engine.Open(adjacency_path));
  *result = engine.open_result();
  return Status::OK();
}

Status Solver::SolveShardedFile(const std::string& manifest_path,
                                SolveResult* result) {
  MisEngine engine(options_);
  SEMIS_RETURN_IF_ERROR(engine.OpenSharded(manifest_path));
  *result = engine.open_result();
  return Status::OK();
}

Status Solver::SolveGraph(const Graph& graph, SolveResult* result) {
  ScratchDir scratch;
  SEMIS_RETURN_IF_ERROR(ScratchDir::Create("semis-solveg", &scratch));
  std::string path = scratch.NewFilePath("graph.adj");
  SEMIS_RETURN_IF_ERROR(WriteGraphToAdjacencyFile(graph, path));
  return SolveFile(path, result);
}

}  // namespace semis
