#include "core/solver.h"

#include <algorithm>

#include "core/greedy.h"
#include "core/one_k_swap.h"
#include "core/two_k_swap.h"
#include "core/verify.h"
#include "graph/adjacency_file.h"
#include "graph/degree_sort.h"
#include "graph/graph_io.h"
#include "io/scratch.h"
#include "util/timer.h"

namespace semis {

Status Solver::SolveFile(const std::string& adjacency_path,
                         SolveResult* result) {
  WallTimer timer;
  SolveResult res;
  ScratchDir scratch;
  std::string work_path = adjacency_path;

  if (options_.degree_sort) {
    AdjacencyFileScanner probe(nullptr);
    SEMIS_RETURN_IF_ERROR(probe.Open(adjacency_path));
    if (!probe.header().IsDegreeSorted()) {
      WallTimer sort_timer;
      std::string dir = options_.scratch_dir;
      if (dir.empty()) {
        SEMIS_RETURN_IF_ERROR(ScratchDir::Create("semis-solver", &scratch));
        dir = scratch.path();
      }
      work_path = dir + "/sorted.sadj";
      DegreeSortOptions sort_opts;
      sort_opts.memory_budget_bytes = options_.sort_memory_budget_bytes;
      sort_opts.fan_in = options_.sort_fan_in;
      sort_opts.stats = &res.io;
      SEMIS_RETURN_IF_ERROR(BuildDegreeSortedAdjacencyFile(
          adjacency_path, work_path, sort_opts));
      res.sort_seconds = sort_timer.ElapsedSeconds();
    }
  }

  GreedyOptions greedy_opts;
  SEMIS_RETURN_IF_ERROR(RunGreedy(work_path, greedy_opts, &res.greedy));

  const AlgoResult* final_stage = &res.greedy;
  if (options_.swap == SwapMode::kOneK) {
    OneKSwapOptions swap_opts;
    swap_opts.max_rounds = options_.max_swap_rounds;
    SEMIS_RETURN_IF_ERROR(
        RunOneKSwap(work_path, res.greedy.in_set, swap_opts, &res.swap));
    final_stage = &res.swap;
  } else if (options_.swap == SwapMode::kTwoK) {
    TwoKSwapOptions swap_opts;
    swap_opts.max_rounds = options_.max_swap_rounds;
    SEMIS_RETURN_IF_ERROR(
        RunTwoKSwap(work_path, res.greedy.in_set, swap_opts, &res.swap));
    final_stage = &res.swap;
  }

  res.set = final_stage->in_set;
  res.set_size = final_stage->set_size;
  res.io.MergeFrom(res.greedy.io);
  res.io.MergeFrom(res.swap.io);
  res.peak_memory_bytes = std::max(res.greedy.peak_memory_bytes,
                                   res.swap.peak_memory_bytes);

  if (options_.verify) {
    VerifyResult vr;
    SEMIS_RETURN_IF_ERROR(VerifyIndependentSetFile(work_path, res.set, &vr));
    if (!vr.independent) {
      return Status::Corruption("solver produced a non-independent set");
    }
    if (!vr.maximal) {
      return Status::Corruption("solver produced a non-maximal set");
    }
  }

  res.seconds = timer.ElapsedSeconds();
  *result = std::move(res);
  return Status::OK();
}

Status Solver::SolveGraph(const Graph& graph, SolveResult* result) {
  ScratchDir scratch;
  SEMIS_RETURN_IF_ERROR(ScratchDir::Create("semis-solveg", &scratch));
  std::string path = scratch.NewFilePath("graph.adj");
  SEMIS_RETURN_IF_ERROR(WriteGraphToAdjacencyFile(graph, path));
  return SolveFile(path, result);
}

}  // namespace semis
