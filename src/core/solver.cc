#include "core/solver.h"

#include <algorithm>

#include "core/greedy.h"
#include "core/one_k_swap.h"
#include "core/parallel_greedy.h"
#include "core/parallel_swap.h"
#include "core/two_k_swap.h"
#include "core/verify.h"
#include "graph/adjacency_file.h"
#include "graph/degree_sort.h"
#include "graph/graph_io.h"
#include "graph/sharded_adjacency_file.h"
#include "io/scratch.h"
#include "util/timer.h"

namespace semis {

Status Solver::SolveFile(const std::string& adjacency_path,
                         SolveResult* result) {
  WallTimer timer;
  SolveResult res;
  ScratchDir scratch;
  std::string work_path = adjacency_path;
  MemoryTracker sort_memory;

  // Directory for intermediate artifacts (sorted copy, shard files),
  // created lazily on first use.
  std::string inter_dir = options_.scratch_dir;
  auto intermediate_dir = [&]() -> Status {
    if (inter_dir.empty()) {
      SEMIS_RETURN_IF_ERROR(ScratchDir::Create("semis-solver", &scratch));
      inter_dir = scratch.path();
    }
    return Status::OK();
  };

  if (options_.degree_sort) {
    // The probe reads only the header; it is closed before the (possibly
    // hours-long) sort so no file handle dangles across the stage, and
    // its I/O is charged to the aggregate like every other read.
    bool needs_sort = false;
    {
      AdjacencyFileScanner probe(&res.io);
      SEMIS_RETURN_IF_ERROR(probe.Open(adjacency_path));
      needs_sort = !probe.header().IsDegreeSorted();
      SEMIS_RETURN_IF_ERROR(probe.Close());
    }
    if (needs_sort) {
      WallTimer sort_timer;
      SEMIS_RETURN_IF_ERROR(intermediate_dir());
      work_path = inter_dir + "/sorted.sadj";
      DegreeSortOptions sort_opts;
      sort_opts.memory_budget_bytes = options_.sort_memory_budget_bytes;
      sort_opts.fan_in = options_.sort_fan_in;
      sort_opts.stats = &res.io;
      sort_opts.memory = &sort_memory;
      SEMIS_RETURN_IF_ERROR(BuildDegreeSortedAdjacencyFile(
          adjacency_path, work_path, sort_opts));
      res.sort_seconds = sort_timer.ElapsedSeconds();
    }
  }

  // Sharded pipeline: the (sorted) file is split into shards up front and
  // BOTH stages run over them -- greedy on the shard-pipelined executor,
  // swaps on the parallel round executor, which is seeded with greedy's
  // final state array so the monolithic file is never re-read. Every
  // stage's result is byte-identical for any num_threads.
  const bool sharded = options_.num_shards > 1;
  const AlgoResult* final_stage = &res.greedy;
  if (sharded) {
    WallTimer shard_timer;
    SEMIS_RETURN_IF_ERROR(intermediate_dir());
    const std::string manifest_path = inter_dir + "/sharded.sadjs";
    SEMIS_RETURN_IF_ERROR(ShardAdjacencyFile(work_path, manifest_path,
                                             options_.num_shards, &res.io));
    res.shard_seconds = shard_timer.ElapsedSeconds();
    ParallelGreedyOptions greedy_opts;
    greedy_opts.num_threads = options_.num_threads;
    std::vector<VState> greedy_states;
    SEMIS_RETURN_IF_ERROR(RunParallelGreedyWithStates(
        manifest_path, greedy_opts, &res.greedy, &greedy_states));
    if (options_.swap != SwapMode::kNone) {
      ParallelSwapOptions swap_opts;
      swap_opts.max_rounds = options_.max_swap_rounds;
      swap_opts.num_threads = options_.num_threads;
      swap_opts.enable_two_k = options_.swap == SwapMode::kTwoK;
      SEMIS_RETURN_IF_ERROR(RunParallelSwap(manifest_path, greedy_states,
                                            swap_opts, &res.swap));
      final_stage = &res.swap;
    }
  } else {
    GreedyOptions greedy_opts;
    SEMIS_RETURN_IF_ERROR(RunGreedy(work_path, greedy_opts, &res.greedy));
    if (options_.swap == SwapMode::kOneK) {
      OneKSwapOptions swap_opts;
      swap_opts.max_rounds = options_.max_swap_rounds;
      SEMIS_RETURN_IF_ERROR(
          RunOneKSwap(work_path, res.greedy.in_set, swap_opts, &res.swap));
      final_stage = &res.swap;
    } else if (options_.swap == SwapMode::kTwoK) {
      TwoKSwapOptions swap_opts;
      swap_opts.max_rounds = options_.max_swap_rounds;
      SEMIS_RETURN_IF_ERROR(
          RunTwoKSwap(work_path, res.greedy.in_set, swap_opts, &res.swap));
      final_stage = &res.swap;
    }
  }

  res.set = final_stage->in_set;
  res.set_size = final_stage->set_size;
  res.io.MergeFrom(res.greedy.io);
  res.io.MergeFrom(res.swap.io);
  res.peak_memory_bytes =
      std::max({res.greedy.peak_memory_bytes, res.swap.peak_memory_bytes,
                sort_memory.PeakBytes()});

  if (options_.verify) {
    VerifyResult vr;
    SEMIS_RETURN_IF_ERROR(VerifyIndependentSetFile(work_path, res.set, &vr));
    if (!vr.independent) {
      return Status::Corruption("solver produced a non-independent set");
    }
    if (!vr.maximal) {
      return Status::Corruption("solver produced a non-maximal set");
    }
  }

  res.seconds = timer.ElapsedSeconds();
  *result = std::move(res);
  return Status::OK();
}

Status Solver::SolveShardedFile(const std::string& manifest_path,
                                SolveResult* result) {
  WallTimer timer;
  SolveResult res;
  ShardedAdjacencyManifest manifest;
  SEMIS_RETURN_IF_ERROR(
      ReadShardedAdjacencyManifest(manifest_path, &manifest, &res.io));
  if (options_.degree_sort && !manifest.header.IsDegreeSorted()) {
    return Status::InvalidArgument(
        "sharded input is not degree-sorted and cannot be sorted in place; "
        "sort before sharding or set degree_sort = false: " + manifest_path);
  }

  ParallelGreedyOptions greedy_opts;
  greedy_opts.greedy.require_degree_sorted = options_.degree_sort;
  greedy_opts.num_threads = options_.num_threads;
  std::vector<VState> greedy_states;
  SEMIS_RETURN_IF_ERROR(RunParallelGreedyWithStates(
      manifest_path, greedy_opts, &res.greedy, &greedy_states));
  const AlgoResult* final_stage = &res.greedy;
  if (options_.swap != SwapMode::kNone) {
    ParallelSwapOptions swap_opts;
    swap_opts.max_rounds = options_.max_swap_rounds;
    swap_opts.num_threads = options_.num_threads;
    swap_opts.enable_two_k = options_.swap == SwapMode::kTwoK;
    SEMIS_RETURN_IF_ERROR(
        RunParallelSwap(manifest_path, greedy_states, swap_opts, &res.swap));
    final_stage = &res.swap;
  }

  res.set = final_stage->in_set;
  res.set_size = final_stage->set_size;
  res.io.MergeFrom(res.greedy.io);
  res.io.MergeFrom(res.swap.io);
  res.peak_memory_bytes =
      std::max(res.greedy.peak_memory_bytes, res.swap.peak_memory_bytes);

  if (options_.verify) {
    VerifyResult vr;
    SEMIS_RETURN_IF_ERROR(
        VerifyIndependentSetShardedFile(manifest_path, res.set, &vr));
    if (!vr.independent) {
      return Status::Corruption("solver produced a non-independent set");
    }
    if (!vr.maximal) {
      return Status::Corruption("solver produced a non-maximal set");
    }
  }

  res.seconds = timer.ElapsedSeconds();
  *result = std::move(res);
  return Status::OK();
}

Status Solver::SolveGraph(const Graph& graph, SolveResult* result) {
  ScratchDir scratch;
  SEMIS_RETURN_IF_ERROR(ScratchDir::Create("semis-solveg", &scratch));
  std::string path = scratch.NewFilePath("graph.adj");
  SEMIS_RETURN_IF_ERROR(WriteGraphToAdjacencyFile(graph, path));
  return SolveFile(path, result);
}

}  // namespace semis
