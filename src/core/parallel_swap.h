// Copyright (c) the semis authors.
// Parallel round executor for the swap algorithms over a *sharded*
// adjacency file (graph/sharded_adjacency_file.h): every scan phase of a
// round fans the shards out over a thread pool, each worker scanning its
// shard with a private reader and proposing swaps against shared
// vertex-state tables.
//
// Determinism contract (the reason results are byte-identical for every
// thread count, including one):
//   * each phase reads only state frozen by the previous phase barrier and
//     writes either (a) per-vertex slots owned by the record being scanned,
//     (b) commutative atomics (counters), or (c) idempotent atomic flags
//     (mark-removed); none of these depend on scan interleaving;
//   * swap-candidate discovery that needs scan-order context (the 2<->k
//     SC buckets of Algorithm 4) is shard-local: a worker only combines
//     records of the shard it is currently scanning, and shard contents
//     are fixed by the file, not by the thread count;
//   * conflicting promotions are resolved by a fixed priority: the lowest
//     vertex id wins, evaluated independently per vertex.
// Consequently the executor with num_threads == 1 IS the sequential path;
// any other thread count reproduces its output bit for bit. The result
// generally differs from the monolithic RunOneKSwap/RunTwoKSwap (conflict
// resolution is by vertex id, not file position), but satisfies the same
// invariants: the returned set is independent and, with the final
// maximality pass, maximal.
//
// Concurrency contract: no mutex -- shared per-vertex state is atomics
// with the ownership/commutativity rules above, per-worker scratch is
// indexed by worker id, and the phase barrier (ThreadPool completion) is
// the happens-before edge for everything a later phase reads. See
// docs/architecture.md ("Static analysis") for the conventions.
#ifndef SEMIS_CORE_PARALLEL_SWAP_H_
#define SEMIS_CORE_PARALLEL_SWAP_H_

#include <string>
#include <vector>

#include "core/mis_common.h"
#include "util/bit_vector.h"
#include "util/status.h"

namespace semis {

/// Options for the parallel swap executor.
struct ParallelSwapOptions {
  /// Stop after this many rounds (0 = until no proposals fire).
  uint32_t max_rounds = 0;
  /// Worker threads scanning shards (0 = hardware concurrency). The
  /// result is independent of this value by construction.
  uint32_t num_threads = 1;
  /// Enable 2<->k swap skeleton discovery (shard-local SC buckets) in
  /// addition to 1<->k swaps. Off reproduces one-k-swap semantics.
  bool enable_two_k = true;
  /// Final join loop guaranteeing maximality (see OneKSwapOptions).
  bool final_maximality_pass = true;
  /// Safety valve carried over from TwoKSwapOptions: max pairs per SC
  /// bucket during one shard scan.
  uint32_t max_pairs_per_bucket = 64;
  /// Stop after this many consecutive rounds without net set growth
  /// (0 = never; mirrors the sequential stall guard).
  uint32_t stall_round_limit = 3;
};

/// Runs parallel swap rounds on the sharded adjacency file rooted at
/// `manifest_path`, starting from `initial_set` (an independent set over
/// the same graph, e.g. the greedy result). Per-thread IoStats and
/// shard-local memory use are merged into `result`'s aggregates.
Status RunParallelSwap(const std::string& manifest_path,
                       const BitVector& initial_set,
                       const ParallelSwapOptions& options, AlgoResult* result);

/// As above, but seeded from a final greedy state array (kI per member)
/// so a sharded greedy -> parallel swap pipeline hands its states over
/// directly instead of round-tripping through a bit vector.
Status RunParallelSwap(const std::string& manifest_path,
                       const std::vector<VState>& initial_states,
                       const ParallelSwapOptions& options, AlgoResult* result);

}  // namespace semis

#endif  // SEMIS_CORE_PARALLEL_SWAP_H_
