#include "core/mis_common.h"

namespace semis {

char VStateChar(VState s) {
  switch (s) {
    case VState::kInitial:
      return '0';
    case VState::kI:
      return 'I';
    case VState::kN:
      return 'N';
    case VState::kA:
      return 'A';
    case VState::kP:
      return 'P';
    case VState::kC:
      return 'C';
    case VState::kR:
      return 'R';
  }
  return '?';
}

void ExtractIndependentSet(const std::vector<VState>& states,
                           BitVector* in_set, uint64_t* size) {
  in_set->Resize(states.size());
  uint64_t count = 0;
  for (size_t v = 0; v < states.size(); ++v) {
    if (states[v] == VState::kI) {
      in_set->Set(v);
      count++;
    }
  }
  *size = count;
}

std::string StatesToString(const std::vector<VState>& states) {
  std::string out;
  out.reserve(states.size());
  for (VState s : states) out.push_back(VStateChar(s));
  return out;
}

}  // namespace semis
