// Copyright (c) the semis authors.
// Min-id rounds engine: the third solve engine (ROADMAP item 2). Instead
// of the paper's strictly-ordered commit scan, vertices are decided in
// synchronous rounds of "lowest-id active neighbor wins" (the
// vertex-centric MIS of libgrape-lite's mis-2 / deterministic Luby):
//
//   propose  an undecided vertex wins the round iff every undecided
//            neighbor has a larger id;
//   commit   winners enter the set, their undecided neighbors leave,
//            everyone else survives to the next round's frontier.
//
// Both passes are embarrassingly parallel -- a pass only READS the state
// frozen at the previous barrier and writes per-vertex slots owned by the
// record being scanned -- so shards are scanned concurrently with no
// commit order at all, and only per-shard frontier counts cross rounds.
// The result is a pure function of the graph and its vertex ids: it is
// byte-identical at every shard/thread count BY CONSTRUCTION, not by
// scheduling discipline. The price is set quality: min-id ignores
// degrees, so the set trails degree-greedy (rounds_quality_test pins the
// ratio); the swap phase accepts the rounds state array to close the gap.
//
// Termination: the smallest-id member of a non-empty frontier has no
// undecided smaller neighbor, so every round decides at least one vertex
// -- at most n rounds, O(polylog n) expected on the random-id graphs the
// corpus draws.
#ifndef SEMIS_CORE_ROUNDS_ENGINE_H_
#define SEMIS_CORE_ROUNDS_ENGINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/mis_common.h"
#include "core/pipeline_options.h"
#include "graph/record_block.h"
#include "util/status.h"

namespace semis {

/// What one finished round looked like, for tests that check per-round
/// invariants (rounds_property_test): winners are pairwise non-adjacent
/// and the frontier strictly shrinks until it is empty.
struct RoundObservation {
  uint64_t round = 0;                 // 1-based
  std::vector<VertexId> winners;      // this round's winners, ascending id
  uint64_t frontier_after = 0;        // undecided vertices after the round
};

struct MinIdRoundsOptions {
  /// num_threads drives the per-round shard fan-out (<= 1 runs the
  /// sequential reference loop -- the same rules, one thread, no pool).
  /// The other pipeline knobs are accepted for uniformity and ignored:
  /// rounds re-scan shards every round, so there is no prefetch ring.
  EnginePipelineOptions pipeline;
  /// Safety cap on rounds (0 = run until the frontier is empty). A capped
  /// run returns with undecided vertices still in the frontier; the
  /// result is then independent but possibly not maximal.
  uint32_t max_rounds = 0;
  /// Test hook: called after every round's commit barrier, on the calling
  /// thread, with that round's winners and surviving frontier. Building
  /// the winner list costs an O(n) sweep per round; leave unset outside
  /// tests.
  std::function<void(const RoundObservation&)> observer;
};

/// The per-record round rules, shared verbatim by the parallel executor
/// and the sequential reference below so "1 thread == reference" is an
/// identity by construction (the same move greedy.h makes with
/// GreedyCommitRecord).
///
/// Propose: an undecided vertex wins iff no undecided neighbor has a
/// smaller id. Reads only state frozen at the round's entry barrier.
inline bool MinIdProposeRecord(const VertexRecordView& rec,
                               const std::vector<VState>& state) {
  if (state[rec.id] != VState::kInitial) return false;
  for (uint32_t i = 0; i < rec.degree; ++i) {
    const VertexId nb = rec.neighbors[i];
    if (nb < rec.id && state[nb] == VState::kInitial) return false;
  }
  return true;
}

/// Commit: a winner enters the set, an undecided neighbor of a winner
/// leaves, anyone else stays undecided. `winner_round[v] == round` marks
/// this round's winners; versioning by round number lets both executors
/// skip clearing the array between rounds.
inline VState MinIdCommitRecord(const VertexRecordView& rec, uint32_t round,
                                const std::vector<uint32_t>& winner_round) {
  if (winner_round[rec.id] == round) return VState::kI;
  for (uint32_t i = 0; i < rec.degree; ++i) {
    if (winner_round[rec.neighbors[i]] == round) return VState::kN;
  }
  return VState::kInitial;
}

/// Runs min-id rounds over the SADJS manifest (or journaled store root)
/// at `manifest_path`. Shards are scanned in parallel within each round;
/// shards whose frontier count dropped to zero are skipped entirely.
/// `result->rounds` counts executed rounds and `round_stats` carries
/// per-round winner/frontier counters (new_is_vertices, is_size_after,
/// frontier_after). Record order inside the file is irrelevant -- the
/// engine neither requires nor benefits from degree-sorted input.
Status RunMinIdRounds(const std::string& manifest_path,
                      const MinIdRoundsOptions& options, AlgoResult* result);

/// As RunMinIdRounds, also returning the final state array (kI/kN per
/// vertex; kInitial only if max_rounds capped the run) so the swap phase
/// can be seeded without re-deriving states from the bit vector.
Status RunMinIdRoundsWithStates(const std::string& manifest_path,
                                const MinIdRoundsOptions& options,
                                AlgoResult* result,
                                std::vector<VState>* states);

/// The sequential reference: the textbook round loop, one thread, one
/// full pass over all shards per phase, no frontier skipping. The
/// parallel executor must match it bit for bit at every geometry; the
/// conformance suite holds both to that.
Status RunMinIdRoundsReference(const std::string& manifest_path,
                               const MinIdRoundsOptions& options,
                               AlgoResult* result,
                               std::vector<VState>* states);

}  // namespace semis

#endif  // SEMIS_CORE_ROUNDS_ENGINE_H_
