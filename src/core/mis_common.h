// Copyright (c) the semis authors.
// Shared vocabulary of the semi-external MIS algorithms: the six-state
// vertex automaton of Table 3, per-round statistics, and the common result
// type every algorithm produces.
#ifndef SEMIS_CORE_MIS_COMMON_H_
#define SEMIS_CORE_MIS_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/io_stats.h"
#include "util/bit_vector.h"
#include "util/common.h"
#include "util/memory_tracker.h"

namespace semis {

/// Vertex states (paper Table 3). kInitial exists only during GREEDY.
enum class VState : uint8_t {
  kInitial = 0,  // unvisited (greedy only)
  kI,            // I: in the independent set
  kN,            // N: not in the independent set
  kA,            // A: adjacent to exactly one (one-k) / at most two (two-k)
                 //    IS vertices; a potential swap participant
  kP,            // P: protected -- will enter the IS this round
  kC,            // C: conflict -- lost this round's swap race
  kR,            // R: retrograde -- will leave the IS this round
};

/// One-letter tag for logs and tests ('0' for kInitial).
char VStateChar(VState s);

/// Statistics of one while-loop round of a swap algorithm.
struct RoundStats {
  uint64_t one_k_swaps = 0;    // 1-2 swap skeletons fired
  uint64_t two_k_swaps = 0;    // 2-3 swap skeletons fired (two-k only)
  uint64_t follower_joins = 0; // vertices joining via the all-ISN-R rule
  uint64_t zero_one_swaps = 0; // 0<->1 swaps in the post-swap phase
  uint64_t conflicts = 0;      // A -> C transitions
  /// P vertices denied during the swap scan because an adjacent P was
  /// committed first (two-k only; see TwoKSwapRun::SwapScan).
  uint64_t denied_promotions = 0;
  uint64_t new_is_vertices = 0;   // P->I plus 0-1 additions
  uint64_t removed_is_vertices = 0;  // R->N
  uint64_t is_size_after = 0;  // |IS| at the end of the round
  /// Rounds engine only: undecided vertices surviving the round (the
  /// next round's frontier). 0 for the swap algorithms.
  uint64_t frontier_after = 0;
  double seconds = 0.0;
};

/// Result of one algorithm run.
struct AlgoResult {
  /// Membership bit per vertex id.
  BitVector in_set;
  /// Number of set bits in `in_set`.
  uint64_t set_size = 0;
  /// Rounds executed (swap algorithms; 0 for greedy).
  uint64_t rounds = 0;
  /// Per-round breakdown (swap algorithms).
  std::vector<RoundStats> round_stats;
  /// I/O performed by this run.
  IoStats io;
  /// Peak logical bytes of the algorithm's in-memory structures.
  size_t peak_memory_bytes = 0;
  /// Wall-clock seconds.
  double seconds = 0.0;
  /// Two-k-swap only: the largest number of distinct vertices held in SC
  /// structures during any pre-swap scan (Figure 10's numerator).
  uint64_t sc_peak_vertices = 0;
  /// Memory breakdown by category (state array, ISN, SC, ...).
  MemoryTracker memory;
};

/// Builds the membership bit vector + count from a state array
/// (state == kI).
void ExtractIndependentSet(const std::vector<VState>& states,
                           BitVector* in_set, uint64_t* size);

/// Renders a state array as a string of one-letter tags (tests).
std::string StatesToString(const std::vector<VState>& states);

}  // namespace semis

#endif  // SEMIS_CORE_MIS_COMMON_H_
