#include "core/parallel_greedy.h"

#include <thread>

#include "graph/sharded_adjacency_file.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace semis {

Status RunParallelGreedyWithStates(const std::string& manifest_path,
                                   const ParallelGreedyOptions& options,
                                   AlgoResult* result,
                                   std::vector<VState>* states) {
  WallTimer timer;
  AlgoResult res;

  uint32_t num_threads = options.pipeline.num_threads;
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }

  std::vector<VState> state;
  if (num_threads <= 1) {
    // Sequential reference path: one forward scan over the shards in
    // manifest order, exactly like RunGreedy over the monolithic file.
    ShardedAdjacencyScanner scanner(&res.io);
    SEMIS_RETURN_IF_ERROR(scanner.Open(manifest_path));
    SEMIS_RETURN_IF_ERROR(
        RunGreedyScan(&scanner, manifest_path, options.greedy, &res, &state));
  } else {
    ThreadPool pool(num_threads);
    ManifestOrderedShardCursor cursor(&res.io);
    BlockRingOptions ring;
    ring.block_bytes = options.pipeline.decode_block_bytes;
    ring.max_buffered_bytes = options.pipeline.max_buffered_bytes;
    SEMIS_RETURN_IF_ERROR(cursor.Open(manifest_path, &pool, ring));
    SEMIS_RETURN_IF_ERROR(
        RunGreedyScan(&cursor, manifest_path, options.greedy, &res, &state));
    SEMIS_RETURN_IF_ERROR(cursor.Close());
    // The prefetch window's decoded shards are pipeline memory on top of
    // the O(|V|) state array; Set-then-zero records the peak.
    res.memory.Set("shard-buffers", cursor.peak_buffered_bytes());
    res.memory.Set("shard-buffers", 0);
  }

  ExtractIndependentSet(state, &res.in_set, &res.set_size);
  res.memory.Add("result-bitset", res.in_set.MemoryBytes());
  res.peak_memory_bytes = res.memory.PeakBytes();
  res.seconds = timer.ElapsedSeconds();
  if (states != nullptr) *states = std::move(state);
  *result = std::move(res);
  return Status::OK();
}

Status RunParallelGreedy(const std::string& manifest_path,
                         const ParallelGreedyOptions& options,
                         AlgoResult* result) {
  return RunParallelGreedyWithStates(manifest_path, options, result, nullptr);
}

}  // namespace semis
