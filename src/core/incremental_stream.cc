#include "core/incremental_stream.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <queue>
#include <thread>

#include "io/epoch_journal.h"
#include "util/crash_point.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace semis {

namespace {

// Approximate heap bytes of one hash-set slot holding a u64 key (bucket
// pointer + node). Accounting, not allocation truth.
constexpr size_t kHashSlotBytes = 4 * sizeof(uint64_t);

}  // namespace

Status ShardedStreamingMis::Initialize(const std::string& manifest_path,
                                       const BitVector& initial_set,
                                       const EnginePipelineOptions& options) {
  // Crash recovery first: resolve the root (legacy SADM or journaled
  // SEPR), fall back one epoch if the current one is torn, and remove
  // orphaned files a crashed commit left behind.
  ShardStoreRecovery recovery;
  SEMIS_RETURN_IF_ERROR(
      RecoverShardStore(manifest_path, &store_, &recovery, &stats_.io));
  if (recovery.fell_back) stats_.epoch_fallbacks++;
  stats_.orphan_files_removed += recovery.orphan_files_removed;
  root_path_ = manifest_path;
  manifest_path_ = store_.manifest_path;
  SEMIS_RETURN_IF_ERROR(
      ReadShardedAdjacencyManifest(manifest_path_, &manifest_, &stats_.io));
  if (manifest_.header.num_vertices != initial_set.size()) {
    return Status::InvalidArgument("set size != graph vertex count");
  }
  delta_path_ = EdgeDeltaManifestPath(manifest_path_);
  options_ = options;
  n_ = manifest_.header.num_vertices;
  set_ = initial_set;
  set_size_ = set_.Count();
  inserted_.clear();
  deleted_.clear();
  pending_.assign(manifest_.num_shards(), {});
  next_sequence_ = 0;

  SEMIS_RETURN_IF_ERROR(BuildRouteMap());

  // Resume from an existing overlay, or start a fresh (empty) one.
  uint64_t size = 0;
  const bool delta_exists = GetFileSize(delta_path_, &size).ok();
  if (delta_exists) {
    SEMIS_RETURN_IF_ERROR(ReplayExistingDelta());
  } else {
    EdgeDeltaManifest dm;
    dm.num_vertices = n_;
    dm.next_sequence = 0;
    dm.shard_entries.assign(manifest_.num_shards(), 0);
    for (uint32_t k = 0; k < manifest_.num_shards(); ++k) {
      SEMIS_RETURN_IF_ERROR(
          CreateEdgeDeltaShardLog(delta_path_, k, n_, &stats_.io));
    }
    SEMIS_RETURN_IF_ERROR(
        WriteEdgeDeltaManifest(delta_path_, dm, &stats_.io));
  }
  initialized_ = true;
  AccountMemory();
  return Status::OK();
}

Status ShardedStreamingMis::BuildRouteMap() {
  // Route map: records are permuted by the degree sort, so the shard
  // holding a vertex's record is only discoverable by scanning. One pass
  // over the shards; 2 bytes per vertex (kMaxAdjacencyShards = 4096).
  shard_of_.assign(n_, 0);
  stats_.io.sequential_scans++;
  for (uint32_t k = 0; k < manifest_.num_shards(); ++k) {
    AdjacencyShardReader reader(&stats_.io);
    SEMIS_RETURN_IF_ERROR(reader.Open(manifest_path_, manifest_, k));
    VertexRecordView rec;
    bool has_next = false;
    while (true) {
      SEMIS_RETURN_IF_ERROR(reader.Next(&rec, &has_next));
      if (!has_next) break;
      shard_of_[rec.id] = static_cast<uint16_t>(k);
    }
    SEMIS_RETURN_IF_ERROR(reader.Close());
  }
  return Status::OK();
}

template <typename Fn>
Status ShardedStreamingMis::ForEachMergedPendingEntry(Fn&& fn) const {
  // Merge the routed copies back into the global stream: sort by sequence
  // number and drop (after cross-checking) the second copy of cross-shard
  // updates.
  std::vector<EdgeDeltaEntry> merged;
  for (const auto& shard_entries : pending_) {
    merged.insert(merged.end(), shard_entries.begin(), shard_entries.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const EdgeDeltaEntry& a, const EdgeDeltaEntry& b) {
              return a.seq < b.seq;
            });
  for (size_t i = 0; i < merged.size(); ++i) {
    if (i > 0 && merged[i].seq == merged[i - 1].seq) {
      const EdgeDeltaEntry& a = merged[i - 1];
      const EdgeDeltaEntry& b = merged[i];
      if (a.op != b.op || a.u != b.u || a.v != b.v) {
        return Status::Corruption("routed delta copies with the same "
                                  "sequence number disagree");
      }
      continue;  // second routed copy of a cross-shard update
    }
    fn(merged[i]);
  }
  return Status::OK();
}

Status ShardedStreamingMis::RewriteShardLog(uint32_t shard) {
  // Write-new + rename rather than truncate in place: the live log may be
  // hard-linked into the previous epoch's namespace, and truncating the
  // shared inode would corrupt the fallback epoch the journal promises.
  const std::string log_path = EdgeDeltaShardPath(delta_path_, shard);
  const std::string tmp_path = log_path + ".tmp";
  SEMIS_RETURN_IF_ERROR(
      CreateEdgeDeltaShardLogAtPath(tmp_path, shard, n_, &stats_.io));
  if (!pending_[shard].empty()) {
    EdgeDeltaShardWriter writer(&stats_.io);
    SEMIS_RETURN_IF_ERROR(writer.OpenAtPath(tmp_path, n_));
    for (const EdgeDeltaEntry& entry : pending_[shard]) {
      SEMIS_RETURN_IF_ERROR(writer.Append(entry));
    }
    SEMIS_RETURN_IF_ERROR(writer.Close());
  }
  return RenameFile(tmp_path, log_path);
}

Status ShardedStreamingMis::ReplayExistingDelta() {
  EdgeDeltaManifest dm;
  SEMIS_RETURN_IF_ERROR(ReadEdgeDeltaManifest(delta_path_, &dm, &stats_.io));
  if (dm.num_vertices != n_) {
    return Status::Corruption("edge-delta overlay disagrees with the SADJS "
                              "manifest vertex count");
  }
  if (dm.num_shards() != manifest_.num_shards()) {
    return Status::Corruption("edge-delta overlay disagrees with the SADJS "
                              "manifest shard count");
  }
  uint64_t pending_total = 0;
  for (uint32_t k = 0; k < dm.num_shards(); ++k) {
    // Tolerate (and drop) bytes past the manifest-declared count: they
    // are a crashed session's unflushed final batch -- the manifest is
    // authoritative, and "a crash loses at most the unflushed tail" is
    // exactly this truncation. The log is rewritten clean so the dropped
    // junk cannot end up in the middle of future appends.
    bool had_tail = false;
    SEMIS_RETURN_IF_ERROR(ReadEdgeDeltaShardLog(
        delta_path_, dm, k, &pending_[k], &stats_.io,
        /*tolerate_trailing_bytes=*/true, &had_tail));
    if (pending_[k].size() != dm.shard_entries[k]) {
      return Status::Corruption("edge-delta shard log entry count "
                                "disagrees with the delta manifest");
    }
    if (had_tail) {
      SEMIS_RETURN_IF_ERROR(RewriteShardLog(k));
      stats_.recovered_log_tails++;
    }
    pending_total += pending_[k].size();
  }
  // Replay in stream order. Replay reproduces the original apply
  // decisions exactly -- every logged entry changed state when it was
  // applied, so it changes state again here.
  SEMIS_RETURN_IF_ERROR(ForEachMergedPendingEntry(
      [this](const EdgeDeltaEntry& entry) {
        (void)ApplyToState(EdgeUpdate{entry.op, entry.u, entry.v});
      }));
  next_sequence_ = dm.next_sequence;
  stats_.pending_delta_entries = pending_total;
  return Status::OK();
}

Status ShardedStreamingMis::ValidateUpdate(const EdgeUpdate& update) const {
  if (update.op != EdgeDeltaOp::kInsert && update.op != EdgeDeltaOp::kDelete) {
    return Status::InvalidArgument("unknown edge update op");
  }
  if (update.u == update.v) {
    return Status::InvalidArgument("self-loop edge update");
  }
  if (update.u >= n_ || update.v >= n_) {
    return Status::InvalidArgument("edge update vertex id out of range");
  }
  return Status::OK();
}

bool ShardedStreamingMis::ApplyToState(const EdgeUpdate& update) {
  const uint64_t key = EdgeKey(update.u, update.v);
  if (update.op == EdgeDeltaOp::kInsert) {
    if (inserted_.count(key) != 0) return false;  // already live in delta
    inserted_.insert(key);
    deleted_.erase(key);
    // Eager independence maintenance: the larger id leaves, as in
    // IncrementalMis (and the lowest-id-wins rule of the swap executor).
    if (set_.Test(update.u) && set_.Test(update.v)) {
      set_.Clear(update.u > update.v ? update.u : update.v);
      set_size_--;
      stats_.evictions++;
    }
    return true;
  }
  if (deleted_.count(key) != 0) return false;  // already deleted in delta
  deleted_.insert(key);
  inserted_.erase(key);
  // A deletion can only open a maximality gap; Repair() closes it.
  return true;
}

Status ShardedStreamingMis::ApplyBatch(const std::vector<EdgeUpdate>& updates) {
  if (!initialized_) {
    return Status::InvalidArgument("streaming maintainer not initialized");
  }
  if (wedged_) {
    return Status::InvalidArgument(
        "streaming maintainer wedged by an earlier flush failure; "
        "re-Initialize to recover from the on-disk overlay");
  }
  WallTimer timer;
  // Validate everything up front: a bad update fails the whole batch
  // before any state or log is touched, so callers never see a partially
  // applied batch.
  for (const EdgeUpdate& update : updates) {
    SEMIS_RETURN_IF_ERROR(ValidateUpdate(update));
  }
  // Apply in order and collect the logged tail per shard.
  std::vector<std::vector<EdgeDeltaEntry>> fresh(manifest_.num_shards());
  for (const EdgeUpdate& update : updates) {
    stats_.updates_applied++;
    if (update.op == EdgeDeltaOp::kInsert) {
      stats_.inserts++;
    } else {
      stats_.deletes++;
    }
    if (!ApplyToState(update)) {
      stats_.redundant_updates++;
      continue;
    }
    EdgeDeltaEntry entry{next_sequence_++, update.op, update.u, update.v};
    const uint32_t su = shard_of_[update.u];
    const uint32_t sv = shard_of_[update.v];
    fresh[su].push_back(entry);
    pending_[su].push_back(entry);
    if (sv != su) {
      fresh[sv].push_back(entry);
      pending_[sv].push_back(entry);
    }
  }
  // Flush: append the tails, then republish the (authoritative) counts.
  // A failure here leaves the in-memory state ahead of the on-disk
  // overlay; publishing counts for entries that never hit disk would
  // brick the redo stream, so the maintainer wedges instead: further
  // mutations are refused and a re-Initialize recovers from disk (the
  // unmanifested tail is dropped as a torn batch).
  const auto flush = [&]() -> Status {
    EdgeDeltaManifest dm;
    dm.num_vertices = n_;
    dm.next_sequence = next_sequence_;
    dm.shard_entries.resize(manifest_.num_shards());
    for (uint32_t k = 0; k < manifest_.num_shards(); ++k) {
      if (!fresh[k].empty()) {
        EdgeDeltaShardWriter writer(&stats_.io);
        SEMIS_RETURN_IF_ERROR(writer.Open(delta_path_, k, n_));
        for (const EdgeDeltaEntry& entry : fresh[k]) {
          SEMIS_RETURN_IF_ERROR(writer.Append(entry));
        }
        SEMIS_RETURN_IF_ERROR(writer.Close());
      }
      dm.shard_entries[k] = pending_[k].size();
    }
    return WriteEdgeDeltaManifest(delta_path_, dm, &stats_.io);
  };
  Status flushed = flush();
  if (!flushed.ok()) {
    wedged_ = true;
    return flushed;
  }
  uint64_t pending_total = 0;
  for (const auto& shard_entries : pending_) {
    pending_total += shard_entries.size();
  }
  stats_.pending_delta_entries = pending_total;
  stats_.apply_seconds += timer.ElapsedSeconds();
  AccountMemory();
  if (options_.compact_threshold_entries > 0) {
    SEMIS_RETURN_IF_ERROR(Compact(/*force=*/false));
  }
  return Status::OK();
}

void ShardedStreamingMis::BuildShardDeltaView(uint32_t shard,
                                              ShardDeltaView* view) const {
  // Replay the shard's entries in sequence order. The final view is the
  // shard-local restriction of the global delta state: every delta edge
  // incident to a vertex whose record lives in `shard` was routed here.
  for (const EdgeDeltaEntry& entry : pending_[shard]) {
    const uint64_t key = EdgeKey(entry.u, entry.v);
    if (entry.op == EdgeDeltaOp::kInsert) {
      view->deleted.erase(key);
      view->inserted_adj[entry.u].push_back(entry.v);
      view->inserted_adj[entry.v].push_back(entry.u);
    } else {
      view->deleted.insert(key);
      for (VertexId a : {entry.u, entry.v}) {
        const VertexId b = (a == entry.u) ? entry.v : entry.u;
        auto it = view->inserted_adj.find(a);
        if (it == view->inserted_adj.end()) continue;
        auto& vec = it->second;
        for (size_t i = 0; i < vec.size(); ++i) {
          if (vec[i] == b) {
            vec[i] = vec.back();
            vec.pop_back();
            break;
          }
        }
      }
    }
  }
}

template <typename Source>
Status ShardedStreamingMis::RepairScan(Source* source, uint64_t* added) {
  // The exact sequential rule of IncrementalMis::Repair, committed
  // strictly in global manifest order: a non-member with no live set
  // neighbor (base edges masked by deletes, plus inserted edges) joins,
  // and later records observe the addition through set_.
  ShardDeltaView view;
  uint32_t shard = 0;
  uint64_t remaining = manifest_.shards.empty()
                           ? 0
                           : manifest_.shards[0].num_records;
  bool view_built = false;
  VertexRecordView rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(source->Next(&rec, &has_next));
    if (!has_next) break;
    while (remaining == 0 && shard + 1 < manifest_.num_shards()) {
      shard++;
      remaining = manifest_.shards[shard].num_records;
      view_built = false;
    }
    if (remaining == 0) {
      return Status::Corruption("record stream longer than the manifest");
    }
    remaining--;
    if (!view_built) {
      view = ShardDeltaView();
      if (!pending_[shard].empty()) BuildShardDeltaView(shard, &view);
      view_built = true;
    }
    const VertexId u = rec.id;
    if (set_.Test(u)) continue;
    bool has_set_neighbor = false;
    for (uint32_t i = 0; i < rec.degree && !has_set_neighbor; ++i) {
      const VertexId nb = rec.neighbors[i];
      if (set_.Test(nb) &&
          (view.deleted.empty() ||
           view.deleted.find(EdgeKey(u, nb)) == view.deleted.end())) {
        has_set_neighbor = true;
      }
    }
    if (!has_set_neighbor && !view.inserted_adj.empty()) {
      auto it = view.inserted_adj.find(u);
      if (it != view.inserted_adj.end()) {
        for (VertexId nb : it->second) {
          if (set_.Test(nb)) {
            has_set_neighbor = true;
            break;
          }
        }
      }
    }
    if (!has_set_neighbor) {
      set_.Set(u);
      set_size_++;
      (*added)++;
    }
  }
  return Status::OK();
}

Status ShardedStreamingMis::Repair() {
  if (!initialized_) {
    return Status::InvalidArgument("streaming maintainer not initialized");
  }
  WallTimer timer;
  uint64_t added = 0;
  uint32_t num_threads = options_.num_threads;
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  if (num_threads <= 1) {
    // The sequential reference path: a plain forward scan over the shards.
    ShardedAdjacencyScanner scanner(&stats_.io);
    SEMIS_RETURN_IF_ERROR(scanner.Open(manifest_path_));
    SEMIS_RETURN_IF_ERROR(RepairScan(&scanner, &added));
  } else {
    // Decoder threads prefetch shards while this thread commits in
    // manifest order -- the RunParallelGreedy pipeline. The commit
    // sequence is identical to the sequential path by construction.
    ThreadPool pool(num_threads);
    ManifestOrderedShardCursor cursor(&stats_.io);
    BlockRingOptions ring;
    ring.block_bytes = options_.decode_block_bytes;
    ring.max_buffered_bytes = options_.max_buffered_bytes;
    SEMIS_RETURN_IF_ERROR(cursor.Open(manifest_path_, &pool, ring));
    Status scan = RepairScan(&cursor, &added);
    Status close = cursor.Close();
    SEMIS_RETURN_IF_ERROR(scan);
    SEMIS_RETURN_IF_ERROR(close);
    // The pipeline's decoded-shard buffer rides on top of the maintainer's
    // own state.
    stats_.peak_memory_bytes =
        std::max(stats_.peak_memory_bytes,
                 CurrentMemoryBytes() + cursor.peak_buffered_bytes());
  }
  stats_.repair_passes++;
  stats_.repair_added += added;
  stats_.repair_seconds += timer.ElapsedSeconds();
  AccountMemory();
  return Status::OK();
}

Status ShardedStreamingMis::CompactShard(uint32_t shard,
                                         const std::string& out_path,
                                         ShardInfo* new_info,
                                         uint32_t* max_degree_seen,
                                         bool* records_changed) {
  ShardDeltaView view;
  BuildShardDeltaView(shard, &view);

  AdjacencyShardReader reader(&stats_.io);
  SEMIS_RETURN_IF_ERROR(reader.Open(manifest_path_, manifest_, shard));
  SequentialFileWriter writer(&stats_.io);
  SEMIS_RETURN_IF_ERROR(writer.Open(out_path));
  SEMIS_RETURN_IF_ERROR(WriteAdjacencyShardHeader(&writer, shard, n_));

  std::vector<VertexId> neighbors;
  std::unordered_set<VertexId> present;
  VertexRecordView rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(reader.Next(&rec, &has_next));
    if (!has_next) break;
    const VertexId u = rec.id;
    neighbors.clear();
    // Base neighbors surviving the deletes, in base order.
    for (uint32_t i = 0; i < rec.degree; ++i) {
      const VertexId nb = rec.neighbors[i];
      if (!view.deleted.empty() &&
          view.deleted.find(EdgeKey(u, nb)) != view.deleted.end()) {
        continue;
      }
      neighbors.push_back(nb);
    }
    bool changed = neighbors.size() != rec.degree;
    // Inserted neighbors appended in ascending id order, deduplicated
    // against the surviving base list -- an insert may duplicate a base
    // edge, and folding it twice would corrupt the record.
    auto it = view.inserted_adj.find(u);
    if (it != view.inserted_adj.end() && !it->second.empty()) {
      present.clear();
      present.insert(neighbors.begin(), neighbors.end());
      std::vector<VertexId> extra = it->second;
      std::sort(extra.begin(), extra.end());
      for (VertexId nb : extra) {
        if (present.insert(nb).second) {
          neighbors.push_back(nb);
          changed = true;
        }
      }
    }
    const uint32_t degree = static_cast<uint32_t>(neighbors.size());
    SEMIS_RETURN_IF_ERROR(writer.AppendU32(u));
    SEMIS_RETURN_IF_ERROR(writer.AppendU32(degree));
    if (degree > 0) {
      SEMIS_RETURN_IF_ERROR(
          writer.Append(neighbors.data(), sizeof(VertexId) * degree));
    }
    new_info->num_records++;
    new_info->num_directed_edges += degree;
    *max_degree_seen = std::max(*max_degree_seen, degree);
    if (changed) *records_changed = true;
  }
  SEMIS_RETURN_IF_ERROR(reader.Close());
  return writer.Close();
}

Status ShardedStreamingMis::PublishEpoch(
    uint64_t next_epoch, const std::vector<std::string>& staged_files) {
  // Make every staged file durable, then the directory entries, THEN flip
  // the root -- the root must never name an epoch whose files could still
  // be lost by a power cut.
  for (const std::string& path : staged_files) {
    SEMIS_RETURN_IF_ERROR(SyncFile(path));
  }
  SEMIS_RETURN_IF_ERROR(SyncParentDirectory(root_path_));
  SEMIS_CRASH_POINT("epoch.staged-files-durable");
  EpochRootPointer root;
  root.current_epoch = next_epoch;
  root.previous_epoch = store_.journaled ? store_.current_epoch : 0;
  Status flipped = WriteEpochRootPointer(root_path_, root, &stats_.io);
  if (!flipped.ok()) {
    // The rename may or may not have happened; memory can no longer claim
    // to match disk on either assumption.
    wedged_ = true;
    return flipped;
  }
  store_.journaled = true;
  store_.fell_back = false;
  store_.previous_epoch = root.previous_epoch;
  store_.current_epoch = next_epoch;
  store_.manifest_path = EpochManifestPath(root_path_, next_epoch);
  manifest_path_ = store_.manifest_path;
  delta_path_ = EdgeDeltaManifestPath(manifest_path_);
  return Status::OK();
}

Status ShardedStreamingMis::CollectStoreGarbage() {
  uint64_t removed = 0;
  SEMIS_RETURN_IF_ERROR(GarbageCollectShardStore(store_, &removed));
  stats_.orphan_files_removed += removed;
  return Status::OK();
}

Status ShardedStreamingMis::RebuildDeltaState() {
  // Compaction retired some entries; the global delta state is the replay
  // of what is still pending, merged across shards by sequence number.
  inserted_.clear();
  deleted_.clear();
  return ForEachMergedPendingEntry([this](const EdgeDeltaEntry& entry) {
    const uint64_t key = EdgeKey(entry.u, entry.v);
    if (entry.op == EdgeDeltaOp::kInsert) {
      inserted_.insert(key);
      deleted_.erase(key);
    } else {
      deleted_.insert(key);
      inserted_.erase(key);
    }
  });
}

Status ShardedStreamingMis::Compact(bool force) {
  if (!initialized_) {
    return Status::InvalidArgument("streaming maintainer not initialized");
  }
  if (wedged_) {
    return Status::InvalidArgument(
        "streaming maintainer wedged by an earlier flush failure; "
        "re-Initialize to recover from the on-disk overlay");
  }
  WallTimer timer;
  std::vector<uint32_t> saturated;
  for (uint32_t k = 0; k < manifest_.num_shards(); ++k) {
    if (pending_[k].empty()) continue;
    if (force || (options_.compact_threshold_entries > 0 &&
                  pending_[k].size() >= options_.compact_threshold_entries)) {
      saturated.push_back(k);
    }
  }
  if (saturated.empty()) return Status::OK();

  // Stage the whole next epoch under its own names, then commit by
  // flipping the root pointer. Until PublishEpoch flips it, nothing here
  // mutates the maintainer or the current epoch, so any failure (or
  // crash) before the flip simply abandons the staged files as orphans --
  // no wedging, no torn store.
  const uint32_t num_shards = manifest_.num_shards();
  const uint64_t next_epoch = store_.current_epoch + 1;
  const std::string new_manifest = EpochManifestPath(root_path_, next_epoch);
  const std::string new_delta = EdgeDeltaManifestPath(new_manifest);
  std::vector<bool> is_saturated(num_shards, false);
  for (uint32_t k : saturated) is_saturated[k] = true;

  ShardedAdjacencyManifest staged = manifest_;
  bool records_changed = false;
  uint32_t max_degree_seen = 0;
  std::vector<std::string> staged_files;
  staged_files.reserve(2 * num_shards + 2);
  for (uint32_t k = 0; k < num_shards; ++k) {
    const std::string out_shard = ShardFilePath(new_manifest, k);
    // A retried commit of the same epoch may find leftovers of the failed
    // attempt; staging is idempotent.
    SEMIS_RETURN_IF_ERROR(RemoveFileIfExists(out_shard));
    if (is_saturated[k]) {
      ShardInfo new_info;
      SEMIS_RETURN_IF_ERROR(CompactShard(k, out_shard, &new_info,
                                         &max_degree_seen, &records_changed));
      staged.shards[k] = new_info;
    } else {
      // Unchanged shards carry over as hard links: one directory entry,
      // zero copied bytes, and the previous epoch keeps its own name.
      SEMIS_RETURN_IF_ERROR(
          HardLinkFile(ShardFilePath(manifest_path_, k), out_shard));
    }
    staged_files.push_back(out_shard);
    SEMIS_CRASH_POINT("compact.shard-staged");
  }
  for (uint32_t k = 0; k < num_shards; ++k) {
    const std::string out_log = EdgeDeltaShardPath(new_delta, k);
    SEMIS_RETURN_IF_ERROR(RemoveFileIfExists(out_log));
    if (is_saturated[k]) {
      // The compacted shard's delta is folded in; its log restarts empty.
      SEMIS_RETURN_IF_ERROR(
          CreateEdgeDeltaShardLogAtPath(out_log, k, n_, &stats_.io));
    } else {
      SEMIS_RETURN_IF_ERROR(
          HardLinkFile(EdgeDeltaShardPath(delta_path_, k), out_log));
    }
    staged_files.push_back(out_log);
    SEMIS_CRASH_POINT("compact.log-staged");
  }
  EdgeDeltaManifest dm;
  dm.num_vertices = n_;
  dm.next_sequence = next_sequence_;
  dm.shard_entries.resize(num_shards);
  for (uint32_t k = 0; k < num_shards; ++k) {
    dm.shard_entries[k] = is_saturated[k] ? 0 : pending_[k].size();
  }
  SEMIS_RETURN_IF_ERROR(WriteEdgeDeltaManifest(new_delta, dm, &stats_.io));
  staged_files.push_back(new_delta);
  SEMIS_CRASH_POINT("compact.delta-manifest-staged");

  uint64_t total_edges = 0;
  for (const ShardInfo& s : staged.shards) {
    total_edges += s.num_directed_edges;
  }
  staged.header.num_directed_edges = total_edges;
  // max_degree stays an upper bound: compaction only sees the rewritten
  // shards, so it can raise the bound but never safely lower it.
  staged.header.max_degree =
      std::max(staged.header.max_degree, max_degree_seen);
  if (records_changed) {
    // Folded inserts/deletes change degrees, so the global (degree, id)
    // order can no longer be guaranteed; Resort() restores it.
    staged.header.flags &= ~kAdjFlagDegreeSorted;
  }
  SEMIS_RETURN_IF_ERROR(
      WriteShardedAdjacencyManifest(new_manifest, staged, &stats_.io));
  staged_files.push_back(new_manifest);
  SEMIS_CRASH_POINT("compact.manifest-staged");

  SEMIS_RETURN_IF_ERROR(PublishEpoch(next_epoch, staged_files));

  // The commit succeeded; bring the maintainer in line with the new
  // epoch, then retire the old one.
  manifest_ = staged;
  for (uint32_t k : saturated) {
    pending_[k].clear();
    pending_[k].shrink_to_fit();
  }
  SEMIS_RETURN_IF_ERROR(RebuildDeltaState());
  uint64_t pending_total = 0;
  for (const auto& shard_entries : pending_) {
    pending_total += shard_entries.size();
  }
  stats_.compactions++;
  stats_.shards_rewritten += saturated.size();
  stats_.pending_delta_entries = pending_total;
  stats_.compact_seconds += timer.ElapsedSeconds();
  AccountMemory();
  SEMIS_RETURN_IF_ERROR(CollectStoreGarbage());
  if (options_.auto_resort && !in_resort_ &&
      !manifest_.header.IsDegreeSorted()) {
    return Resort();
  }
  return Status::OK();
}

Status ShardedStreamingMis::BuildResortRun(uint32_t shard,
                                           const std::string& run_path,
                                           IoStats* io) {
  // One shard's records, sorted by the degree-sort key
  // (degree << 32 | id, ascending) -- the exact key of graph/degree_sort.
  // Run format (private, staged, regenerated on any crash): per record
  // u64 key, then (key >> 32) u32 neighbors.
  AdjacencyShardReader reader(io);
  SEMIS_RETURN_IF_ERROR(reader.Open(manifest_path_, manifest_, shard));
  struct RecRef {
    uint64_t key = 0;
    uint64_t offset = 0;
  };
  std::vector<RecRef> recs;
  recs.reserve(manifest_.shards[shard].num_records);
  std::vector<VertexId> pool;
  pool.reserve(manifest_.shards[shard].num_directed_edges);
  VertexRecordView rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(reader.Next(&rec, &has_next));
    if (!has_next) break;
    const uint64_t key = (static_cast<uint64_t>(rec.degree) << 32) | rec.id;
    recs.push_back({key, pool.size()});
    pool.insert(pool.end(), rec.neighbors, rec.neighbors + rec.degree);
  }
  SEMIS_RETURN_IF_ERROR(reader.Close());
  std::sort(recs.begin(), recs.end(),
            [](const RecRef& a, const RecRef& b) { return a.key < b.key; });
  SequentialFileWriter writer(io);
  SEMIS_RETURN_IF_ERROR(writer.Open(run_path));
  for (const RecRef& r : recs) {
    SEMIS_RETURN_IF_ERROR(writer.AppendU64(r.key));
    const uint32_t degree = static_cast<uint32_t>(r.key >> 32);
    if (degree > 0) {
      SEMIS_RETURN_IF_ERROR(
          writer.Append(pool.data() + r.offset, sizeof(VertexId) * degree));
    }
  }
  return writer.Close();
}

Status ShardedStreamingMis::Resort() {
  if (!initialized_) {
    return Status::InvalidArgument("streaming maintainer not initialized");
  }
  if (wedged_) {
    return Status::InvalidArgument(
        "streaming maintainer wedged by an earlier flush failure; "
        "re-Initialize to recover from the on-disk overlay");
  }
  if (manifest_.header.IsDegreeSorted()) return Status::OK();
  WallTimer timer;
  in_resort_ = true;
  Status resorted = ResortInternal();
  in_resort_ = false;
  if (!resorted.ok()) return resorted;
  stats_.resorts++;
  stats_.resort_seconds += timer.ElapsedSeconds();
  AccountMemory();
  return Status::OK();
}

Status ShardedStreamingMis::ResortInternal() {
  // Fold every pending delta into the base first: the re-sorted base must
  // BE the effective graph, and re-sorting moves records across shards,
  // which would strand routed log entries in the wrong shard.
  uint64_t pending_total = 0;
  for (const auto& shard_entries : pending_) {
    pending_total += shard_entries.size();
  }
  if (pending_total > 0) {
    SEMIS_RETURN_IF_ERROR(Compact(/*force=*/true));
  }
  const uint32_t num_shards = manifest_.num_shards();
  const uint64_t next_epoch = store_.current_epoch + 1;
  const std::string new_manifest = EpochManifestPath(root_path_, next_epoch);
  const std::string new_delta = EdgeDeltaManifestPath(new_manifest);

  // Phase A: sort each shard into a run file, one shard per worker. The
  // runs are staged under the next epoch's namespace so a crash leaves
  // them as GC-able orphans.
  std::vector<std::string> run_paths(num_shards);
  for (uint32_t k = 0; k < num_shards; ++k) {
    run_paths[k] = new_manifest + ".resort" + std::to_string(k);
    SEMIS_RETURN_IF_ERROR(RemoveFileIfExists(run_paths[k]));
  }
  uint32_t num_threads = options_.num_threads;
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  if (num_threads <= 1 || num_shards <= 1) {
    for (uint32_t k = 0; k < num_shards; ++k) {
      SEMIS_RETURN_IF_ERROR(BuildResortRun(k, run_paths[k], &stats_.io));
    }
  } else {
    ThreadPool pool(num_threads);
    std::vector<Status> shard_status(num_shards);
    std::vector<IoStats> worker_io(pool.size());
    pool.ParallelFor(num_shards, [&](size_t k, size_t worker) {
      shard_status[k] = BuildResortRun(static_cast<uint32_t>(k),
                                       run_paths[k], &worker_io[worker]);
    });
    for (const IoStats& io : worker_io) stats_.io.MergeFrom(io);
    for (const Status& s : shard_status) {
      SEMIS_RETURN_IF_ERROR(s);
    }
  }
  // Phase A working set: one decoded shard per active worker.
  uint64_t max_shard_bytes = 0;
  for (const ShardInfo& s : manifest_.shards) {
    max_shard_bytes =
        std::max(max_shard_bytes, s.num_records * 2 * sizeof(uint64_t) +
                                      s.num_directed_edges * sizeof(VertexId));
  }
  stats_.peak_memory_bytes = std::max(
      stats_.peak_memory_bytes,
      CurrentMemoryBytes() +
          max_shard_bytes * std::min<uint64_t>(num_threads, num_shards));
  SEMIS_CRASH_POINT("resort.runs-staged");

  // Phase B: merge the runs (ascending key; keys are globally unique, id
  // breaks degree ties) into a fresh sharded base under the next epoch's
  // names. Totals, max_degree, and flags carry the current manifest's
  // values -- exactly what a fresh unshard -> degree-sort -> shard
  // rebuild would write -- so the published bytes are identical to that
  // rebuild's, shard split included.
  std::vector<std::string> staged_files;
  staged_files.reserve(2 * num_shards + 2);
  {
    struct RunCursor {
      explicit RunCursor(IoStats* io) : reader(io) {}
      SequentialFileReader reader;
      uint64_t remaining = 0;
      uint64_t key = 0;
      std::vector<VertexId> neighbors;
    };
    std::vector<std::unique_ptr<RunCursor>> runs;
    runs.reserve(num_shards);
    const auto advance = [this](RunCursor* run) -> Status {
      SEMIS_RETURN_IF_ERROR(run->reader.ReadU64(&run->key));
      const uint32_t degree = static_cast<uint32_t>(run->key >> 32);
      run->neighbors.resize(degree);
      if (degree > 0) {
        SEMIS_RETURN_IF_ERROR(run->reader.ReadExact(
            run->neighbors.data(), sizeof(VertexId) * degree));
      }
      run->remaining--;
      return Status::OK();
    };
    // Min-heap of (key, run index); unique keys make the pop order -- and
    // therefore the output -- independent of shard and thread counts.
    std::priority_queue<std::pair<uint64_t, uint32_t>,
                        std::vector<std::pair<uint64_t, uint32_t>>,
                        std::greater<std::pair<uint64_t, uint32_t>>>
        heap;
    for (uint32_t k = 0; k < num_shards; ++k) {
      auto run = std::make_unique<RunCursor>(&stats_.io);
      run->remaining = manifest_.shards[k].num_records;
      if (run->remaining > 0) {
        SEMIS_RETURN_IF_ERROR(run->reader.Open(run_paths[k]));
        SEMIS_RETURN_IF_ERROR(advance(run.get()));
        heap.emplace(run->key, k);
      }
      runs.push_back(std::move(run));
    }
    ShardedAdjacencyFileWriter writer(&stats_.io);
    SEMIS_RETURN_IF_ERROR(writer.Open(
        new_manifest, n_, manifest_.header.num_directed_edges,
        manifest_.header.max_degree,
        manifest_.header.flags | kAdjFlagDegreeSorted, num_shards));
    while (!heap.empty()) {
      const auto [key, k] = heap.top();
      heap.pop();
      RunCursor* run = runs[k].get();
      SEMIS_RETURN_IF_ERROR(writer.AppendVertex(
          static_cast<VertexId>(key & 0xFFFFFFFFull), run->neighbors.data(),
          static_cast<uint32_t>(key >> 32)));
      if (run->remaining > 0) {
        SEMIS_RETURN_IF_ERROR(advance(run));
        heap.emplace(run->key, k);
      } else {
        SEMIS_RETURN_IF_ERROR(run->reader.Close());
      }
    }
    SEMIS_RETURN_IF_ERROR(writer.Finish());
  }
  for (uint32_t k = 0; k < num_shards; ++k) {
    staged_files.push_back(ShardFilePath(new_manifest, k));
  }
  staged_files.push_back(new_manifest);
  // A fresh, empty overlay: the delta was fully folded by the compaction
  // above, and record placement changed anyway.
  for (uint32_t k = 0; k < num_shards; ++k) {
    const std::string out_log = EdgeDeltaShardPath(new_delta, k);
    SEMIS_RETURN_IF_ERROR(RemoveFileIfExists(out_log));
    SEMIS_RETURN_IF_ERROR(
        CreateEdgeDeltaShardLogAtPath(out_log, k, n_, &stats_.io));
    staged_files.push_back(out_log);
  }
  EdgeDeltaManifest dm;
  dm.num_vertices = n_;
  dm.next_sequence = next_sequence_;
  dm.shard_entries.assign(num_shards, 0);
  SEMIS_RETURN_IF_ERROR(WriteEdgeDeltaManifest(new_delta, dm, &stats_.io));
  staged_files.push_back(new_delta);
  // The runs are consumed; drop them before the flip so a post-commit
  // crash has nothing extra to GC.
  for (uint32_t k = 0; k < num_shards; ++k) {
    SEMIS_RETURN_IF_ERROR(RemoveFileIfExists(run_paths[k]));
  }
  SEMIS_CRASH_POINT("resort.epoch-staged");

  SEMIS_RETURN_IF_ERROR(PublishEpoch(next_epoch, staged_files));

  // Records moved shards: reload the manifest the writer computed and
  // rebuild the route map. The delta state is empty by construction.
  SEMIS_RETURN_IF_ERROR(
      ReadShardedAdjacencyManifest(manifest_path_, &manifest_, &stats_.io));
  pending_.assign(num_shards, {});
  inserted_.clear();
  deleted_.clear();
  stats_.pending_delta_entries = 0;
  SEMIS_RETURN_IF_ERROR(BuildRouteMap());
  return CollectStoreGarbage();
}

size_t ShardedStreamingMis::CurrentMemoryBytes() const {
  size_t bytes = shard_of_.capacity() * sizeof(uint16_t) +
                 set_.MemoryBytes() +
                 (inserted_.size() + deleted_.size()) * kHashSlotBytes;
  for (const auto& shard_entries : pending_) {
    bytes += shard_entries.capacity() * sizeof(EdgeDeltaEntry);
  }
  return bytes;
}

void ShardedStreamingMis::AccountMemory() {
  stats_.peak_memory_bytes =
      std::max(stats_.peak_memory_bytes, CurrentMemoryBytes());
}

}  // namespace semis
