#include "core/vertex_cover.h"

#include "graph/adjacency_file.h"

namespace semis {

Status ComputeVertexCoverFile(const std::string& adjacency_path,
                              const SolverOptions& options,
                              VertexCoverResult* result) {
  VertexCoverResult res;
  Solver solver(options);
  SEMIS_RETURN_IF_ERROR(solver.SolveFile(adjacency_path, &res.mis));
  const size_t n = res.mis.set.size();
  res.cover.Resize(n);
  for (size_t v = 0; v < n; ++v) {
    if (!res.mis.set.Test(v)) res.cover.Set(v);
  }
  res.cover_size = n - res.mis.set_size;
  *result = std::move(res);
  return Status::OK();
}

Status VerifyVertexCoverFile(const std::string& adjacency_path,
                             const BitVector& cover,
                             uint64_t* uncovered_edges, IoStats* stats) {
  AdjacencyFileScanner scanner(stats);
  SEMIS_RETURN_IF_ERROR(scanner.Open(adjacency_path));
  if (scanner.header().num_vertices != cover.size()) {
    return Status::InvalidArgument("cover size != graph vertex count");
  }
  uint64_t violations = 0;
  VertexRecord rec;
  bool has_next = false;
  while (true) {
    SEMIS_RETURN_IF_ERROR(scanner.Next(&rec, &has_next));
    if (!has_next) break;
    if (cover.Test(rec.id)) continue;
    for (uint32_t i = 0; i < rec.degree; ++i) {
      // Count each undirected edge once (from its smaller endpoint).
      if (rec.id < rec.neighbors[i] && !cover.Test(rec.neighbors[i])) {
        violations++;
      }
    }
  }
  *uncovered_edges = violations;
  return Status::OK();
}

}  // namespace semis
